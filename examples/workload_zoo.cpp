/**
 * @file
 * Example: characterize every workload model running alone.
 *
 * Prints the solo IPC, instruction mix, branch mispredict rate and
 * cache behaviour of each benchmark in the library -- the "natural
 * offer rates" that weighted speedup normalizes against. Also reports
 * raw simulator throughput, which is useful when choosing a cycle
 * scale for larger experiments.
 */

#include <chrono>
#include <cstdio>

#include "cpu/machine.hh"
#include "metrics/calibrator.hh"
#include "sched/job.hh"
#include "sim/config_env.hh"
#include "sim/reporting.hh"
#include "sim/sim_config.hh"
#include "trace/workload_library.hh"

int
main()
{
    using namespace sos;

    const SimConfig config = benchConfigFromEnv();
    const std::uint64_t warmup = 100000;
    const std::uint64_t measure = 400000;

    printBanner("Workload zoo: solo characteristics");
    TablePrinter table(
        {"workload", "IPC", "fp%", "ld%", "bmiss%", "L1D%", "L2miss%",
         "Mcyc/s"},
        {10, 6, 6, 6, 7, 6, 8, 7});
    table.printHeader();

    for (const std::string &name : WorkloadLibrary::instance().names()) {
        const WorkloadProfile &profile =
            WorkloadLibrary::instance().get(name);
        Job job(1, profile, 0xfeedULL, 1, false);

        Machine machine(config.coreFor(1), config.mem);
        SmtCore &core = machine.core(0);
        ThreadBinding binding;
        binding.gen = &job.generator(0);
        binding.sync = job.syncDomain();
        binding.asid = job.asid();
        core.attachThread(0, binding);

        PerfCounters discard;
        core.run(warmup, discard);

        PerfCounters pc;
        const auto start = std::chrono::steady_clock::now();
        core.run(measure, pc);
        const auto stop = std::chrono::steady_clock::now();
        const double seconds =
            std::chrono::duration<double>(stop - start).count();

        const double total_ops = static_cast<double>(pc.dispatched);
        const double fp_pct =
            100.0 * static_cast<double>(pc.fpOps) / total_ops;
        const double ld_pct =
            100.0 * static_cast<double>(pc.loads) / total_ops;
        const double bmiss_pct =
            pc.branches
                ? 100.0 * static_cast<double>(pc.branchMispredicts) /
                      static_cast<double>(pc.branches)
                : 0.0;
        const double l2_miss_pct =
            (pc.l2Hits + pc.l2Misses)
                ? 100.0 * static_cast<double>(pc.l2Misses) /
                      static_cast<double>(pc.l2Hits + pc.l2Misses)
                : 0.0;

        table.printRow({name, fmt(pc.ipc(), 2), fmt(fp_pct, 1),
                        fmt(ld_pct, 1), fmt(bmiss_pct, 2),
                        fmt(100.0 * pc.l1dHitRate(), 1),
                        fmt(l2_miss_pct, 1),
                        fmt(static_cast<double>(measure) / seconds / 1e6,
                            1)});
    }
    return 0;
}
