/**
 * @file
 * Heterogeneous machine: per-core params from an inline config.
 *
 * Demonstrates the machine-config subsystem end to end:
 *  1. parse a big.LITTLE description (text here; files via
 *     parseMachineConfig / --machine-config / SOS_MACHINE_CONFIG),
 *  2. inspect the instantiated topology and core classes,
 *  3. run a machine-level SOS experiment on the configured CMP,
 *  4. compare thread-to-core policies -- including the
 *     heterogeneity-aware big-core-first and synpa-class, which know
 *     that *which core* a group lands on now matters.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "config/machine_config.hh"
#include "sim/config_env.hh"
#include "sim/machine_experiment.hh"
#include "sim/reporting.hh"

int
main()
{
    using namespace sos;

    SimConfig config = makeFastConfig();

    // One big paper-default core and one narrow little core behind
    // the shared L2. (A file with these lines works identically.)
    const std::string description = R"(
        mem.l2.sizeBytes 2097152

        class big
        class little
          core.fetchWidth 4
          core.dispatchWidth 4
          core.commitWidth 4
          core.numIntUnits 2
          core.numLsPorts 1

        cores big little
    )";
    const ParsedMachineConfig parsed =
        parseMachineConfigText(description, "big_little.inline",
                               config);
    config.machineCores = parsed.numCores;
    config.core = parsed.core;
    config.mem = parsed.mem;
    config.heteroCores = parsed.cores;
    config.heteroCoreMem = parsed.coreMem;
    config.heteroCoreNames = parsed.coreNames;

    printBanner("Configured machine");
    const MachineParams machine = config.machineFor(2, parsed.numCores);
    const std::vector<int> classes = machine.coreClasses();
    for (int k = 0; k < machine.numCores; ++k) {
        std::printf("  core%d: class %d (%s), fetchWidth %d, "
                    "intUnits %d\n",
                    k, classes[static_cast<std::size_t>(k)],
                    parsed.coreNames.empty()
                        ? "-"
                        : parsed.coreNames[static_cast<std::size_t>(k)]
                              .c_str(),
                    machine.coreParams(k).fetchWidth,
                    machine.coreParams(k).numIntUnits);
    }

    // Four jobs on the 2-core machine: sample machine schedules --
    // under heterogeneity, swapping the groups across the two cores
    // is a *different* schedule -- then ask each policy to place.
    MachineExperimentSpec spec;
    spec.label = "Jm(4,2,2,2)-bigLITTLE";
    spec.workloads = {"FP", "MG", "GCC", "IS"};
    spec.numCores = parsed.numCores;
    spec.level = 2;
    spec.swap = 2;

    MachineExperiment experiment(spec, config);
    experiment.runSamplePhase();
    experiment.runSymbiosValidation();

    printBanner(spec.label);
    std::printf("distinct machine schedules: %llu (a homogeneous "
                "2-core machine would have %llu)\n\n",
                static_cast<unsigned long long>(
                    experiment.space().distinctCount()),
                static_cast<unsigned long long>(
                    MachineScheduleSpace(4, 2, 2, 2).distinctCount()));
    std::printf("WS: worst %.3f  avg %.3f  best %.3f\n\n",
                experiment.worstWs(), experiment.averageWs(),
                experiment.bestWs());

    TablePrinter table({"policy", "allocation", "avg WS", "best WS"},
                       {16, 18, 8, 8});
    table.printHeader();
    for (const char *name :
         {"naive", "balanced-icount", "big-core-first", "synpa-class"}) {
        const MachineExperiment::PolicyResult &result =
            experiment.evaluatePolicy(name);
        table.printRow({result.policy, result.allocationLabel,
                        fmt(result.avgWs, 3), fmt(result.bestWs, 3)});
    }
    std::printf("\n(big-core-first routes the highest solo-IPC jobs to "
                "the wide core; synpa-class\nre-ranks the synpa "
                "grouping so the most demanding group gets the most "
                "capable core.)\n");
    return 0;
}
