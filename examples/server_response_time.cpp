/**
 * @file
 * Example: SOS on a server with randomly arriving jobs.
 *
 * The Section 9 scenario as an application: jobs arrive with
 * exponential interarrival times and sizes; the same trace is run
 * under the naive arrival-order scheduler and under SOS (sample ->
 * symbios with resampling on arrivals, departures, and a backoff
 * timer), and per-job response times are compared.
 */

#include <algorithm>
#include <cstdio>

#include "sim/open_system.hh"
#include "sim/config_env.hh"
#include "sim/reporting.hh"

int
main()
{
    using namespace sos;

    const SimConfig config = benchConfigFromEnv();

    OpenSystemConfig open;
    open.level = 3;
    open.numJobs = 24;
    open.seed = config.seed ^ 0xd00dULL;

    printBanner("Server scenario: SMT level 3, random arrivals");
    const auto trace = makeArrivalTrace(config, open);
    std::printf("%d jobs, mean interarrival %s cycles, mean size %s "
                "paper-cycles solo\n\n",
                open.numJobs,
                fmtCycles(config.scaled(
                              open.effectiveInterarrivalPaper(config)))
                    .c_str(),
                fmtCycles(open.meanJobPaperCycles).c_str());

    const OpenSystemResult naive =
        runOpenSystem(config, open, trace, OpenPolicy::Naive);
    const OpenSystemResult sos =
        runOpenSystem(config, open, trace, OpenPolicy::Sos);

    TablePrinter table({"job", "workload", "naive resp", "SOS resp",
                        "delta%"},
                       {5, 9, 11, 10, 8});
    table.printHeader();
    for (std::size_t j = 0; j < trace.size(); ++j) {
        const double n =
            static_cast<double>(naive.responseByArrival[j]);
        const double s = static_cast<double>(sos.responseByArrival[j]);
        table.printRow({std::to_string(j), trace[j].workload,
                        fmtCycles(naive.responseByArrival[j]),
                        fmtCycles(sos.responseByArrival[j]),
                        fmt(100.0 * (s - n) / n, 1)});
    }

    const double improvement =
        100.0 *
        (naive.meanResponseCycles - sos.meanResponseCycles) /
        naive.meanResponseCycles;
    std::printf("\nmean response: naive %s, SOS %s  ->  SOS improves "
                "response time by %.1f%%\n",
                fmtCycles(static_cast<std::uint64_t>(
                    naive.meanResponseCycles))
                    .c_str(),
                fmtCycles(static_cast<std::uint64_t>(
                    sos.meanResponseCycles))
                    .c_str(),
                improvement);
    std::printf("SOS ran %d sample phases (%s cycles of sampling, "
                "included in the measurement)\n",
                sos.samplePhases, fmtCycles(sos.sampleCycles).c_str());
    return 0;
}
