/**
 * @file
 * Quickstart: symbiotic scheduling of four jobs on a 2-context SMT.
 *
 * Demonstrates the whole public API in one page:
 *  1. build a jobmix,
 *  2. calibrate solo IPC references,
 *  3. sample the schedule space while making fair progress,
 *  4. let the Score predictor pick a schedule,
 *  5. run the symbios phase and compare weighted speedups.
 */

#include <cstdio>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/config_env.hh"
#include "sim/reporting.hh"

int
main()
{
    using namespace sos;

    // Jsb(4,2,2): FP, MG, GCC, IS run two at a time; the whole running
    // set is replaced every timeslice. Only three schedules exist:
    // which pairs should run together?
    SimConfig config = benchConfigFromEnv();
    const ExperimentSpec &spec = experimentByLabel("Jsb(4,2,2)");

    BatchExperiment experiment(spec, config);
    experiment.runSamplePhase();
    experiment.runSymbiosValidation();

    printBanner("Quickstart: " + spec.label);
    std::printf("sample phase: %s simulated cycles (paper-equivalent "
                "%s)\n\n",
                fmtCycles(experiment.samplePhaseCycles()).c_str(),
                fmtCycles(experiment.samplePhaseCycles() *
                          config.cycleScale)
                    .c_str());

    TablePrinter table({"schedule", "sample WS", "symbios WS"},
                       {12, 10, 11});
    table.printHeader();
    for (std::size_t i = 0; i < experiment.schedules().size(); ++i) {
        table.printRow({experiment.schedules()[i].label(),
                        fmt(experiment.profiles()[i].sampleWs, 3),
                        fmt(experiment.symbiosWs()[i], 3)});
    }

    const auto score = makeScorePredictor();
    const int picked = experiment.predictedIndex(*score);
    std::printf("\nScore picks schedule %s\n",
                experiment.schedules()[static_cast<std::size_t>(picked)]
                    .label()
                    .c_str());
    std::printf("WS: best %.3f  worst %.3f  average %.3f  SOS %.3f\n",
                experiment.bestWs(), experiment.worstWs(),
                experiment.averageWs(), experiment.wsOfPredictor(*score));
    return 0;
}
