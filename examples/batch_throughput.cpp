/**
 * @file
 * Example: symbiotic scheduling of a batch workload.
 *
 * A throughput-oriented scenario: eight jobs must share a 4-context
 * SMT. The example runs the full SOS pipeline on Jsb(8,4,4), shows
 * what every sampled schedule would have delivered, and compares the
 * oblivious (random-schedule) expectation with SOS's pick -- the
 * paper's Figure 3 methodology on one mix.
 */

#include <cstdio>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/config_env.hh"
#include "sim/reporting.hh"

int
main()
{
    using namespace sos;

    SimConfig config = benchConfigFromEnv();
    const ExperimentSpec &spec = experimentByLabel("Jsb(8,4,4)");

    std::printf("Jobs: ");
    {
        const JobMix mix = spec.makeMix(config.seed);
        for (int u = 0; u < mix.numUnits(); ++u)
            std::printf("%s%s", u ? "," : "", mix.unitName(u).c_str());
    }
    std::printf("  (SMT level %d, full swap)\n", spec.level);

    BatchExperiment exp(spec, config);
    exp.runSamplePhase();
    std::printf("sampled %zu of %llu distinct schedules in %s cycles\n",
                exp.schedules().size(),
                static_cast<unsigned long long>(
                    ScheduleSpace(spec.numUnits(), spec.level, spec.swap)
                        .distinctCount()),
                fmtCycles(exp.samplePhaseCycles()).c_str());

    exp.runSymbiosValidation();

    printBanner("What each sampled schedule delivers");
    TablePrinter table({"schedule", "sample IPC", "balance",
                        "symbios WS"},
                       {22, 10, 8, 11});
    table.printHeader();
    for (std::size_t i = 0; i < exp.schedules().size(); ++i) {
        const ScheduleProfile &p = exp.profiles()[i];
        table.printRow({exp.schedules()[i].label(),
                        fmt(p.counters.ipc(), 2), fmt(p.balance(), 2),
                        fmt(exp.symbiosWs()[i], 3)});
    }

    const auto score = makeScorePredictor();
    const double sos_ws = exp.wsOfPredictor(*score);
    std::printf("\noblivious scheduler (expected): WS %.3f\n"
                "unlucky schedule:               WS %.3f\n"
                "SOS (Score predictor):          WS %.3f  "
                "(%+.1f%% vs oblivious)\n",
                exp.averageWs(), exp.worstWs(), sos_ws,
                100.0 * (sos_ws - exp.averageWs()) / exp.averageWs());
    return 0;
}
