/**
 * @file
 * Example: plugging a user-defined predictor into SOS.
 *
 * The Predictor interface is the library's main extension point: a
 * predictor sees only the sampled counter profiles and ranks the
 * candidate schedules. This example defines two custom predictors --
 * a cache-miss-rate predictor and the library's per-timeslice
 * diversity repair -- and pits them against the paper's set on
 * Jsb(6,3,3).
 */

#include <cstdio>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/config_env.hh"
#include "sim/reporting.hh"

namespace {

using namespace sos;

/** Fewest combined L1D + L2 misses per retired instruction wins. */
class MissesPerInstruction : public Predictor
{
  public:
    std::string name() const override { return "MPKI"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles) {
            const double misses = static_cast<double>(
                p.counters.l1dMisses + p.counters.l2Misses);
            const double retired = std::max<double>(
                1.0, static_cast<double>(p.counters.retired));
            out.push_back(-misses / retired);
        }
        return out;
    }
};

} // namespace

int
main()
{
    using namespace sos;

    const SimConfig config = benchConfigFromEnv();
    BatchExperiment exp(experimentByLabel("Jsb(6,3,3)"), config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();

    printBanner("Custom predictors vs the paper's set on Jsb(6,3,3)");
    std::printf("schedule WS range: worst %.3f, avg %.3f, best %.3f\n\n",
                exp.worstWs(), exp.averageWs(), exp.bestWs());

    TablePrinter table({"predictor", "picks", "symbios WS"},
                       {16, 10, 11});
    table.printHeader();

    auto report = [&](const Predictor &predictor) {
        const int index = exp.predictedIndex(predictor);
        table.printRow(
            {predictor.name(),
             exp.profiles()[static_cast<std::size_t>(index)].label,
             fmt(exp.symbiosWs()[static_cast<std::size_t>(index)],
                 3)});
    };

    const MissesPerInstruction mpki;
    report(mpki);
    report(*makePredictor("SliceDiversity")); // library extension
    for (const auto &predictor : makeAllPredictors())
        report(*predictor);
    return 0;
}
