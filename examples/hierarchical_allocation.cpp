/**
 * @file
 * Example: hierarchical symbiosis with adaptive multithreaded jobs.
 *
 * Section 7's scenario as an application: mt_EP and mt_ARRAY are
 * compiled (like Tera MTA code) to run with however many hardware
 * contexts the scheduler grants. SOS therefore chooses at two
 * levels -- which jobs to coschedule and how many contexts each
 * adaptive job receives -- by sampling (allocation, schedule) pairs.
 */

#include <cstdio>

#include "sim/hierarchical_experiment.hh"
#include "sim/config_env.hh"
#include "sim/reporting.hh"

int
main()
{
    using namespace sos;

    const SimConfig config = benchConfigFromEnv();

    HierarchicalSpec spec;
    spec.label = "mt_EP + mt_ARRAY + CG @ SMT 4";
    spec.level = 4;
    spec.workloads = {"CG", "mt_EP", "mt_ARRAY"};

    HierarchicalExperiment exp(spec, config, 18);
    exp.run();

    printBanner(spec.label);
    TablePrinter table({"allocation [CG,EP,ARRAY]", "schedule", "WS"},
                       {25, 18, 7});
    table.printHeader();
    for (const auto &candidate : exp.candidates()) {
        table.printRow({candidate.plan.label(),
                        candidate.schedule.label(),
                        fmt(candidate.symbiosWs, 3)});
    }

    const auto &picked = exp.candidates()[static_cast<std::size_t>(
        exp.scoreBestIndex())];
    std::printf("\nSOS picks %s with schedule %s -> WS %.3f\n",
                picked.plan.label().c_str(),
                picked.schedule.label().c_str(), picked.symbiosWs);
    std::printf("improvement: %+.1f%% vs the average candidate, "
                "%+.1f%% vs the worst\n",
                exp.improvementOverAveragePct(),
                exp.improvementOverWorstPct());
    return 0;
}
