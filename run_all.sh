#!/bin/sh
# Regenerates test_output.txt and bench_output.txt (the reproduction record).
set -u
cd "$(dirname "$0")"
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "===== $b ====="
        "$b"
    fi
done 2>&1 | tee bench_output.txt
