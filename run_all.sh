#!/bin/sh
# Regenerates test_output.txt and bench_output.txt (the reproduction
# record), exiting nonzero if ctest or any bench binary fails so CI
# can call this script directly.
#
# Every bench also writes its machine-readable run manifest to
# results/<bench>.json (via --out) and its wall-clock timing report to
# results/timing/<bench>.json (via --bench-sweep); the core-loop
# microbench report lands in results/core/ (via --bench-core) and the
# fig9 cluster scaling curve in results/cluster/ (via
# --bench-cluster). When python3 is available the manifests are
# consolidated into results/manifest.json, the timing reports into
# results/BENCH_sweep.json, the core reports into
# results/BENCH_core.json, and the cluster reports into
# results/BENCH_cluster.json -- skipping (and reporting) any report a
# failed bench left missing or truncated, so partial runs still
# produce the consolidated files. Timing stays out of the manifests so
# those remain bit-comparable across hosts.
#
# SOS_JOBS controls the sweep worker threads of every bench (and is
# also used as the ctest parallelism); unset means one worker per
# hardware thread.
set -u
cd "$(dirname "$0")"

status=0
jobs="${SOS_JOBS:-$(nproc 2>/dev/null || echo 2)}"

ctest --test-dir build --output-on-failure -j "$jobs" \
    >test_output.txt 2>&1 || status=$?
cat test_output.txt

mkdir -p results results/timing results/core results/cluster
: >bench_output.txt
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        name="$(basename "$b")"
        echo "===== $b =====" >>bench_output.txt
        # The cluster bench opts into its host-thread scaling curve
        # (wall-clock per worker count) via --bench-cluster.
        set -- --out "results/$name.json" \
            --bench-sweep "results/timing/$name.json"
        if [ "$name" = "fig9_cluster" ]; then
            set -- "$@" --bench-cluster "results/cluster/$name.json"
        fi
        # fig1's decision trace is the training set for the learned
        # WS model (see the sostrain block below).
        if [ "$name" = "fig1_ws_range" ]; then
            set -- "$@" --trace "results/$name.trace.jsonl"
        fi
        if ! "$b" "$@" >>bench_output.txt 2>&1
        then
            echo "FAILED: $b" >>bench_output.txt
            status=1
        fi
    fi
done
cat bench_output.txt

# Core-loop host throughput (cycles/sec): one run per invocation,
# via the micro_simulator harness. A failure here must not block the
# consolidation below -- partial results still get collected.
if [ -x build/bench/micro_simulator ]; then
    echo "===== micro_simulator --bench-core =====" >>bench_output.txt
    if ! build/bench/micro_simulator \
            --benchmark_filter='^$' \
            --bench-core results/core/micro_simulator.json \
            >>bench_output.txt 2>&1
    then
        echo "FAILED: micro_simulator --bench-core" >>bench_output.txt
        status=1
    fi
fi

# Sampled-mode fig1 sweep: the same golden sweep once more with the
# SMARTS sampler on, so every full run also records the sampled-mode
# wall-clock and fidelity next to the full-detail reference. Windows
# scale with SOS_CYCLE_SCALE (quarter-timeslice periods, 10% detailed,
# warm:measure 1:3 -- the tuning the CI smoke gates); an explicit
# SOS_SAMPLE wins.
if [ -x build/bench/fig1_ws_range ]; then
    scale="${SOS_CYCLE_SCALE:-100}"
    period=$((5000000 / scale / 4))
    det=$((period / 10))
    w=$((det / 4))
    sample="${SOS_SAMPLE:-$((period - det)):$w:$((det - w))}"
    mkdir -p results/sampled
    echo "===== fig1_ws_range (sampled $sample) =====" >>bench_output.txt
    if ! SOS_SAMPLE="$sample" build/bench/fig1_ws_range \
            --out results/sampled/fig1_ws_range.json \
            --bench-sweep results/sampled/timing.json \
            >>bench_output.txt 2>&1
    then
        echo "FAILED: fig1_ws_range (sampled)" >>bench_output.txt
        status=1
    fi
fi

# Learned-model leg: fit a WS model from the fig1 decision trace
# (sostrain writes results/model.txt plus the sos.train-report JSON),
# then rerun fig2 with the model so the reproduction record carries
# the learned predictor's bar next to the paper's ten.
if [ -x build/src/tools/sostrain ] \
    && [ -f results/fig1_ws_range.trace.jsonl ]; then
    mkdir -p results/learned
    echo "===== sostrain (fig1 trace) =====" >>bench_output.txt
    if ! build/src/tools/sostrain results/fig1_ws_range.trace.jsonl \
            --model-out results/model.txt \
            --report-out results/learned/train_report.json \
            >>bench_output.txt 2>&1
    then
        echo "FAILED: sostrain" >>bench_output.txt
        status=1
    elif [ -x build/bench/fig2_predictor_ws ]; then
        echo "===== fig2_predictor_ws (learned) =====" >>bench_output.txt
        if ! build/bench/fig2_predictor_ws \
                --model results/model.txt \
                --out results/learned/fig2_predictor_ws.json \
                >>bench_output.txt 2>&1
        then
            echo "FAILED: fig2_predictor_ws (learned)" >>bench_output.txt
            status=1
        fi
    fi
fi

# Consolidate the per-bench manifests (and validate that every one is
# well-formed JSON) when python3 is around; the simulator itself never
# depends on python.
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || status=1
import json
import os
import sys

failures = []


def load_docs(directory, schema, skip=()):
    """Load every well-formed JSON doc of one schema from a directory.

    A bench that crashed mid-run leaves a missing or truncated file;
    those are reported and skipped so one bad bench never takes down
    the consolidated reports of the others.
    """
    docs = {}
    if not os.path.isdir(directory):
        return docs
    for entry in sorted(os.listdir(directory)):
        if not entry.endswith(".json") or entry in skip:
            continue
        # The consolidated outputs live next to their inputs; never
        # re-ingest them on a second run.
        if entry.startswith("BENCH_") or entry == "manifest.json":
            continue
        path = os.path.join(directory, entry)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as exc:
            failures.append("%s: unreadable (%s)" % (path, exc))
            continue
        if doc.get("schema") != schema:
            failures.append(
                "%s: schema %r, wanted %r"
                % (path, doc.get("schema"), schema)
            )
            continue
        docs[entry[: -len(".json")]] = doc
    return docs


runs = load_docs("results", "sos.run-manifest")
with open("results/manifest.json", "w") as f:
    json.dump(
        {"schema": "sos.run-set", "schema_version": 1, "runs": runs},
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print("results/manifest.json: consolidated %d run manifests" % len(runs))

timing = load_docs("results/timing", "sos.bench-sweep")
total = sum(
    doc["stats"]["timing"]["elapsed_seconds"] for doc in timing.values()
)
with open("results/BENCH_sweep.json", "w") as f:
    json.dump(
        {
            "schema": "sos.bench-sweep-set",
            "schema_version": 1,
            "total_elapsed_seconds": total,
            "benches": timing,
        },
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print(
    "results/BENCH_sweep.json: %d bench timings, %.1fs total"
    % (len(timing), total)
)

# The sampled-mode report: wall-clock of the sampled fig1 sweep
# against its full-detail sibling, the manifest's sampling stats
# (windows, cycle split, error estimates), and the pick-regret of the
# sampled winner per jobmix scored in full detail.
sampled_doc = {
    "schema": "sos.bench-sampled",
    "schema_version": 1,
}
try:
    with open("results/sampled/fig1_ws_range.json") as f:
        sampled_manifest = json.load(f)
    with open("results/sampled/timing.json") as f:
        sampled_timing = json.load(f)
except (OSError, ValueError) as exc:
    sampled_manifest = sampled_timing = None
    failures.append("results/sampled: unreadable (%s)" % exc)
if sampled_manifest is not None:
    sampled_doc["sample"] = sampled_timing.get("sample")
    sampled_doc["sampling"] = sampled_manifest["stats"].get("sampling")
    sampled_doc["elapsed_seconds"] = (
        sampled_timing["stats"]["timing"]["elapsed_seconds"]
    )
    full_timing = timing.get("fig1_ws_range")
    if full_timing is not None:
        full_elapsed = full_timing["stats"]["timing"]["elapsed_seconds"]
        sampled_doc["full_elapsed_seconds"] = full_elapsed
        sampled_doc["speedup"] = (
            full_elapsed / sampled_doc["elapsed_seconds"]
            if sampled_doc["elapsed_seconds"] > 0 else 0.0
        )
    full_run = runs.get("fig1_ws_range")
    if full_run is not None:
        regret = {}
        fexp = full_run["stats"]["experiments"]
        sexp = sampled_manifest["stats"]["experiments"]
        for mix in fexp:
            fc = [v for k, v in fexp[mix].items()
                  if k.startswith("candidate")]
            sc = [v for k, v in sexp[mix].items()
                  if k.startswith("candidate")]
            pick = max(sc, key=lambda c: c["ws"])["schedule"]
            best = max(c["ws"] for c in fc)
            picked = next(c["ws"] for c in fc if c["schedule"] == pick)
            regret[mix] = (best - picked) / best if best > 0 else 0.0
        sampled_doc["pick_regret"] = regret
        sampled_doc["worst_pick_regret"] = max(
            regret.values(), default=0.0
        )
with open("results/BENCH_sampled.json", "w") as f:
    json.dump(sampled_doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(
    "results/BENCH_sampled.json: %.2fx speedup, worst pick-regret %.2f%%"
    % (
        sampled_doc.get("speedup", 0.0),
        100.0 * sampled_doc.get("worst_pick_regret", 0.0),
    )
)

cluster = load_docs("results/cluster", "sos.bench-cluster")
with open("results/BENCH_cluster.json", "w") as f:
    json.dump(
        {
            "schema": "sos.bench-cluster-set",
            "schema_version": 1,
            "benches": cluster,
        },
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print(
    "results/BENCH_cluster.json: %d cluster scaling reports"
    % len(cluster)
)

core = load_docs("results/core", "sos.bench-core")
with open("results/BENCH_core.json", "w") as f:
    json.dump(
        {
            "schema": "sos.bench-core-set",
            "schema_version": 1,
            "benches": core,
        },
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print("results/BENCH_core.json: %d core microbench reports" % len(core))

if failures:
    for failure in failures:
        print("consolidation: %s" % failure, file=sys.stderr)
    sys.exit(1)
EOF
else
    echo "python3 not found; skipping results/manifest.json" >&2
fi

if [ "$status" -ne 0 ]; then
    echo "run_all.sh: FAILURES DETECTED" >&2
fi
exit "$status"
