#!/bin/sh
# Regenerates test_output.txt and bench_output.txt (the reproduction
# record), exiting nonzero if ctest or any bench binary fails so CI
# can call this script directly.
#
# Every bench also writes its machine-readable run manifest to
# results/<bench>.json (via --out) and its wall-clock timing report to
# results/timing/<bench>.json (via --bench-sweep); when python3 is
# available the manifests are consolidated into results/manifest.json
# and the timing reports into results/BENCH_sweep.json. Timing stays
# out of the manifests so those remain bit-comparable across hosts.
#
# SOS_JOBS controls the sweep worker threads of every bench (and is
# also used as the ctest parallelism); unset means one worker per
# hardware thread.
set -u
cd "$(dirname "$0")"

status=0
jobs="${SOS_JOBS:-$(nproc 2>/dev/null || echo 2)}"

ctest --test-dir build --output-on-failure -j "$jobs" \
    >test_output.txt 2>&1 || status=$?
cat test_output.txt

mkdir -p results results/timing
: >bench_output.txt
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        name="$(basename "$b")"
        echo "===== $b =====" >>bench_output.txt
        if ! "$b" --out "results/$name.json" \
                --bench-sweep "results/timing/$name.json" \
                >>bench_output.txt 2>&1
        then
            echo "FAILED: $b" >>bench_output.txt
            status=1
        fi
    fi
done
cat bench_output.txt

# Consolidate the per-bench manifests (and validate that every one is
# well-formed JSON) when python3 is around; the simulator itself never
# depends on python.
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF' || status=1
import json
import os

runs = {}
for entry in sorted(os.listdir("results")):
    if not entry.endswith(".json") or entry == "manifest.json":
        continue
    with open(os.path.join("results", entry)) as f:
        doc = json.load(f)
    assert doc.get("schema") == "sos.run-manifest", entry
    runs[entry[: -len(".json")]] = doc

with open("results/manifest.json", "w") as f:
    json.dump(
        {"schema": "sos.run-set", "schema_version": 1, "runs": runs},
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print("results/manifest.json: consolidated %d run manifests" % len(runs))

timing = {}
total = 0.0
timing_dir = "results/timing"
if os.path.isdir(timing_dir):
    for entry in sorted(os.listdir(timing_dir)):
        if not entry.endswith(".json"):
            continue
        with open(os.path.join(timing_dir, entry)) as f:
            doc = json.load(f)
        assert doc.get("schema") == "sos.bench-sweep", entry
        timing[entry[: -len(".json")]] = doc
        total += doc["stats"]["timing"]["elapsed_seconds"]

with open("results/BENCH_sweep.json", "w") as f:
    json.dump(
        {
            "schema": "sos.bench-sweep-set",
            "schema_version": 1,
            "total_elapsed_seconds": total,
            "benches": timing,
        },
        f,
        indent=2,
        sort_keys=True,
    )
    f.write("\n")
print(
    "results/BENCH_sweep.json: %d bench timings, %.1fs total"
    % (len(timing), total)
)
EOF
else
    echo "python3 not found; skipping results/manifest.json" >&2
fi

if [ "$status" -ne 0 ]; then
    echo "run_all.sh: FAILURES DETECTED" >&2
fi
exit "$status"
