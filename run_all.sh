#!/bin/sh
# Regenerates test_output.txt and bench_output.txt (the reproduction
# record), exiting nonzero if ctest or any bench binary fails so CI
# can call this script directly.
#
# SOS_JOBS controls the sweep worker threads of every bench (and is
# also used as the ctest parallelism); unset means one worker per
# hardware thread.
set -u
cd "$(dirname "$0")"

status=0
jobs="${SOS_JOBS:-$(nproc 2>/dev/null || echo 2)}"

ctest --test-dir build --output-on-failure -j "$jobs" \
    >test_output.txt 2>&1 || status=$?
cat test_output.txt

: >bench_output.txt
for b in build/bench/*; do
    if [ -f "$b" ] && [ -x "$b" ]; then
        echo "===== $b =====" >>bench_output.txt
        if ! "$b" >>bench_output.txt 2>&1; then
            echo "FAILED: $b" >>bench_output.txt
            status=1
        fi
    fi
done
cat bench_output.txt

if [ "$status" -ne 0 ]; then
    echo "run_all.sh: FAILURES DETECTED" >&2
fi
exit "$status"
