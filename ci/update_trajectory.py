#!/usr/bin/env python3
"""Append a sweep measurement to the perf trajectory and gate on it.

The trajectory file (``BENCH_trajectory.json``) is a append-only list
of candidates/sec measurements of the fig1 sweep, one entry per CI run
(plus the seed entries recorded when the hot-path work landed). CI
restores the previous trajectory, appends the current measurement, and
fails the build when throughput regressed more than the allowed
fraction against the best directly comparable prior entry.

Entries are only compared when their configuration key matches: the
same tool, cycle scale, worker count, snapshot setting and sampling
windows (full-detail and sampled sweeps have different cost). A full-
scale measurement from a developer box therefore coexists with the
scaled-down CI smoke measurements without ever being compared against
them.

Usage:
    update_trajectory.py --trajectory FILE --bench-sweep FILE \
        --git-rev REV [--cycle-scale N] [--max-regression 0.15] \
        [--context LABEL]

Exit status: 0 on pass (or no comparable history), 1 on regression,
2 on malformed input.
"""

import argparse
import json
import sys

SCHEMA = "sos.bench-trajectory"
SCHEMA_VERSION = 1


def config_key(entry):
    # Entries predating the sampled-simulation mode carry no "sampled"
    # field; default it to "off" so the seed history keeps matching
    # today's full-detail runs.
    return (
        entry.get("tool"),
        entry.get("cycle_scale"),
        entry.get("jobs"),
        entry.get("snapshot"),
        entry.get("sampled", "off"),
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trajectory", required=True,
                        help="trajectory JSON (created when missing)")
    parser.add_argument("--bench-sweep", required=True,
                        help="sos.bench-sweep report of this run")
    parser.add_argument("--git-rev", required=True)
    parser.add_argument("--cycle-scale", type=int, default=1,
                        help="SOS_CYCLE_SCALE the sweep ran at")
    parser.add_argument("--max-regression", type=float, default=0.15,
                        help="fail when candidates/sec drops by more "
                             "than this fraction (default 0.15)")
    parser.add_argument("--context", default="",
                        help="free-form label (runner, branch, ...)")
    args = parser.parse_args()

    try:
        with open(args.bench_sweep) as f:
            sweep = json.load(f)
    except (OSError, ValueError) as exc:
        print("trajectory: cannot read bench-sweep report: %s" % exc,
              file=sys.stderr)
        return 2
    if sweep.get("schema") != "sos.bench-sweep":
        print("trajectory: %s is not a sos.bench-sweep report"
              % args.bench_sweep, file=sys.stderr)
        return 2
    timing = sweep["stats"]["timing"]

    try:
        with open(args.trajectory) as f:
            doc = json.load(f)
        if doc.get("schema") != SCHEMA:
            raise ValueError("wrong schema %r" % doc.get("schema"))
    except FileNotFoundError:
        doc = {"schema": SCHEMA, "schema_version": SCHEMA_VERSION,
               "entries": []}
    except (OSError, ValueError) as exc:
        # A corrupt restored artifact must not wedge CI forever; start
        # a fresh history and say so loudly.
        print("trajectory: resetting corrupt history (%s)" % exc,
              file=sys.stderr)
        doc = {"schema": SCHEMA, "schema_version": SCHEMA_VERSION,
               "entries": []}

    entry = {
        "git_rev": args.git_rev,
        "tool": sweep.get("tool"),
        "cycle_scale": args.cycle_scale,
        "jobs": sweep.get("jobs"),
        "snapshot": sweep.get("snapshot"),
        "sampled": sweep.get("sample", "off"),
        "candidates": timing["candidates"],
        "candidates_per_sec": timing["candidates_per_sec"],
        "elapsed_seconds": timing["elapsed_seconds"],
        "context": args.context,
    }

    comparable = [e for e in doc["entries"]
                  if config_key(e) == config_key(entry)]
    doc["entries"].append(entry)
    with open(args.trajectory, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")

    now = entry["candidates_per_sec"]
    if not comparable:
        print("trajectory: first entry for config %r: %.4f cand/s"
              % (config_key(entry), now))
        return 0

    # Gate against the most recent comparable entry: the trajectory
    # must never step down by more than the allowance in one commit.
    prev = comparable[-1]
    ref = prev["candidates_per_sec"]
    change = (now - ref) / ref if ref > 0 else 0.0
    print("trajectory: %.4f cand/s vs %.4f (rev %s): %+.1f%%"
          % (now, ref, prev["git_rev"][:12], 100.0 * change))
    if ref > 0 and now < (1.0 - args.max_regression) * ref:
        print("trajectory: REGRESSION beyond %.0f%% allowance"
              % (100.0 * args.max_regression), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
