/** @file Unit tests for the cache model and hierarchy. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/cache.hh"
#include "mem/cache_hierarchy.hh"

namespace sos {
namespace {

CacheParams
tiny(std::uint32_t size, std::uint32_t line, std::uint32_t assoc)
{
    return CacheParams{"tiny", size, line, assoc};
}

TEST(Cache, MissThenHit)
{
    Cache c(tiny(1024, 64, 2));
    EXPECT_FALSE(c.access(0, 0x100));
    EXPECT_TRUE(c.access(0, 0x100));
    EXPECT_TRUE(c.access(0, 0x13f)); // same line
    EXPECT_EQ(c.hits(), 2u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineGranularity)
{
    Cache c(tiny(1024, 64, 2));
    c.access(0, 0x000);
    EXPECT_FALSE(c.access(0, 0x040)); // next line
}

TEST(Cache, LruEvictsOldest)
{
    // 2-way, 64B lines, 2 sets: addresses 0, 128, 256 share set 0.
    Cache c(tiny(256, 64, 2));
    c.access(0, 0);
    c.access(0, 128);
    c.access(0, 256); // evicts line 0 (LRU)
    EXPECT_FALSE(c.probe(0, 0));
    EXPECT_TRUE(c.probe(0, 128)); // survived: was MRU before line 256
}

TEST(Cache, LruUpdatedOnHit)
{
    Cache c(tiny(256, 64, 2));
    c.access(0, 0);
    c.access(0, 128);
    c.access(0, 0);   // refresh line 0
    c.access(0, 256); // should evict 128 now
    EXPECT_TRUE(c.probe(0, 0));
    EXPECT_FALSE(c.probe(0, 128));
}

TEST(Cache, AsidsDoNotMatch)
{
    Cache c(tiny(1024, 64, 2));
    c.access(1, 0x100);
    EXPECT_FALSE(c.access(2, 0x100)); // same address, other job
}

TEST(Cache, AsidsConflictInSets)
{
    // Distinct jobs with the same hot line compete for the same set:
    // the mechanism behind cache-sweeping anti-symbiosis.
    Cache c(tiny(128, 64, 1)); // direct-mapped, 2 sets
    c.access(1, 0x000);
    c.access(2, 0x000); // evicts job 1's line
    EXPECT_FALSE(c.access(1, 0x000));
}

TEST(Cache, FlushInvalidatesAll)
{
    Cache c(tiny(1024, 64, 2));
    c.access(0, 0x100);
    c.flush();
    EXPECT_FALSE(c.access(0, 0x100));
    EXPECT_EQ(c.residentLines(), 1u);
}

TEST(Cache, FlushAsidIsSelective)
{
    Cache c(tiny(1024, 64, 2));
    c.access(1, 0x100);
    c.access(2, 0x200);
    c.flushAsid(1);
    EXPECT_FALSE(c.access(1, 0x100));
    EXPECT_TRUE(c.access(2, 0x200));
}

TEST(Cache, ProbeDoesNotAllocateOrTouch)
{
    Cache c(tiny(256, 64, 2));
    EXPECT_FALSE(c.probe(0, 0x000));
    EXPECT_EQ(c.residentLines(), 0u);
    c.access(0, 0x000);
    EXPECT_TRUE(c.probe(0, 0x000));
    const std::uint64_t hits_before = c.hits();
    c.probe(0, 0x000);
    EXPECT_EQ(c.hits(), hits_before); // probes are not accesses
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c(tiny(1024, 64, 2));
    c.access(0, 0x100);
    c.resetStats();
    EXPECT_EQ(c.misses(), 0u);
    EXPECT_TRUE(c.access(0, 0x100)); // line still resident
}

TEST(Cache, CapacityBound)
{
    Cache c(tiny(1024, 64, 4)); // 16 lines
    for (std::uint64_t a = 0; a < 64; ++a)
        c.access(0, a * 64);
    EXPECT_LE(c.residentLines(), 16u);
}

TEST(Cache, FullyUtilizedBySequentialFill)
{
    Cache c(tiny(1024, 64, 4));
    for (std::uint64_t a = 0; a < 16; ++a)
        c.access(0, a * 64);
    EXPECT_EQ(c.residentLines(), 16u);
    for (std::uint64_t a = 0; a < 16; ++a)
        EXPECT_TRUE(c.access(0, a * 64));
}

TEST(CacheHierarchy, L1HitIsFree)
{
    SharedL2 l2{MemParams{}, 1};
    CacheHierarchy mem{MemParams{}, l2, 0};
    mem.dataAccess(0, 0x1000, false); // warm TLB + L1
    EXPECT_EQ(mem.dataAccess(0, 0x1000, false), 0u);
}

TEST(CacheHierarchy, MissLatenciesCompose)
{
    MemParams params;
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    // Cold access: TLB miss + L1 miss + L2 miss.
    const std::uint32_t cold = mem.dataAccess(0, 0x400000, false);
    EXPECT_EQ(cold, params.tlbMissLatency + params.l2HitLatency +
                        params.memLatency);
}

TEST(CacheHierarchy, L2HitAfterL1Eviction)
{
    MemParams params;
    params.l1d = CacheParams{"l1d", 128, 64, 1}; // 2 lines only
    params.dtlb = CacheParams{"dtlb", 16 * 8192, 8192, 16};
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    mem.dataAccess(0, 0x0000, false);  // L1+L2 fill
    mem.dataAccess(0, 0x0080, false);  // conflicts in the 2-line L1
    mem.dataAccess(0, 0x0100, false);
    const std::uint32_t again = mem.dataAccess(0, 0x0000, false);
    EXPECT_EQ(again, params.l2HitLatency); // L1 miss, L2 hit, TLB hit
}

TEST(CacheHierarchy, InstAccessesUseIcachePath)
{
    MemParams params;
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    const std::uint32_t cold = mem.instAccess(0, 0x1000);
    EXPECT_GT(cold, 0u);
    EXPECT_EQ(mem.instAccess(0, 0x1000), 0u);
    EXPECT_EQ(mem.l1i().misses(), 1u);
    EXPECT_EQ(mem.l1d().misses(), 0u);
}

TEST(CacheHierarchy, FlushAllColdens)
{
    SharedL2 l2{MemParams{}, 1};
    CacheHierarchy mem{MemParams{}, l2, 0};
    mem.dataAccess(0, 0x2000, false);
    mem.flushAll();
    EXPECT_GT(mem.dataAccess(0, 0x2000, false), 0u);
}

TEST(CacheHierarchy, SharedL2SeesBothSides)
{
    MemParams params;
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    mem.instAccess(0, 0x3000);
    // Same line through the data path: L1D misses but L2 hits (shared).
    const std::uint32_t latency = mem.dataAccess(0, 0x3000, false);
    EXPECT_EQ(latency, params.tlbMissLatency + params.l2HitLatency);
}

/** Sweep: hit rate of a random working set tracks capacity ratio. */
class CapacitySweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(CapacitySweep, SteadyStateHitRate)
{
    const std::uint32_t ws_lines = GetParam();
    Cache c(tiny(64 * 64, 64, 4)); // 64 lines
    std::uint64_t state = 99;
    // Warm.
    for (int i = 0; i < 20000; ++i)
        c.access(0, (splitMix64(state) % ws_lines) * 64);
    c.resetStats();
    for (int i = 0; i < 50000; ++i)
        c.access(0, (splitMix64(state) % ws_lines) * 64);
    const double hit_rate =
        static_cast<double>(c.hits()) /
        static_cast<double>(c.hits() + c.misses());
    if (ws_lines <= 64)
        EXPECT_GT(hit_rate, 0.98);
    else
        EXPECT_NEAR(hit_rate, 64.0 / ws_lines, 0.1);
}

INSTANTIATE_TEST_SUITE_P(WorkingSets, CapacitySweep,
                         ::testing::Values(16, 32, 64, 128, 256, 512));

} // namespace
} // namespace sos
