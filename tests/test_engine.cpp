/** @file Unit tests for the timeslice engine. */

#include <gtest/gtest.h>

#include "cpu/machine.hh"
#include "sched/jobmix.hh"
#include "sched/schedule.hh"
#include "sim/timeslice_engine.hh"

namespace sos {
namespace {

class EngineTest : public ::testing::Test
{
  protected:
    EngineTest()
        : machine_(params(), MemParams{}), core_(machine_.core(0)),
          engine_(core_, 10000)
    {
    }

    static CoreParams
    params()
    {
        CoreParams p;
        p.numContexts = 2;
        return p;
    }

    Machine machine_;
    SmtCore &core_;
    TimesliceEngine engine_;
};

TEST_F(EngineTest, RunTimesliceCreditsJobs)
{
    JobMix mix(1);
    mix.addJob("EP");
    mix.addJob("FP");
    const auto result =
        engine_.runTimeslice({mix.unit(0), mix.unit(1)});
    EXPECT_EQ(result.counters.cycles, 10000u);
    ASSERT_EQ(result.unitRetired.size(), 2u);
    EXPECT_GT(result.unitRetired[0], 0u);
    EXPECT_GT(result.unitRetired[1], 0u);
    EXPECT_EQ(mix.job(0).retired(), result.unitRetired[0]);
    EXPECT_EQ(mix.job(1).retired(), result.unitRetired[1]);
    EXPECT_EQ(mix.job(0).residentCycles(), 10000u);
}

TEST_F(EngineTest, ResidentUnitsKeepTheirSlots)
{
    // Partial swap: the staying unit must not be detached (its
    // pipeline state carries over -- the warmstart effect).
    JobMix mix(2);
    mix.addJob("EP");
    mix.addJob("FP");
    mix.addJob("MG");

    engine_.runTimeslice({mix.unit(0), mix.unit(1)});
    const std::uint64_t before = core_.now();
    const int inflight_before = core_.inFlightCount();
    engine_.runTimeslice({mix.unit(0), mix.unit(2)});
    EXPECT_EQ(core_.now(), before + 10000);
    // If unit 0 had been detached its in-flight work would restart
    // from zero with unit 2's too; staying resident keeps the pipe
    // at least partially full across the boundary.
    (void)inflight_before;
    EXPECT_GT(mix.job(0).retired(), 0u);
    EXPECT_GT(mix.job(2).retired(), 0u);
}

TEST_F(EngineTest, RejectsDuplicateUnits)
{
    JobMix mix(3);
    mix.addJob("EP");
    EXPECT_DEATH(engine_.runTimeslice({mix.unit(0), mix.unit(0)}),
                 "two contexts");
}

TEST_F(EngineTest, RejectsOversizedRunningSet)
{
    JobMix mix(4);
    mix.addJob("EP");
    mix.addJob("FP");
    mix.addJob("MG");
    EXPECT_DEATH(
        engine_.runTimeslice({mix.unit(0), mix.unit(1), mix.unit(2)}),
        "more units");
}

TEST_F(EngineTest, EvictAllFreesSlots)
{
    JobMix mix(5);
    mix.addJob("EP");
    mix.addJob("FP");
    engine_.runTimeslice({mix.unit(0), mix.unit(1)});
    engine_.evictAll();
    EXPECT_EQ(core_.inFlightCount(), 0);
    EXPECT_FALSE(core_.slotActive(0));
    EXPECT_FALSE(core_.slotActive(1));
}

TEST_F(EngineTest, EvictJobIsSelective)
{
    JobMix mix(6);
    mix.addJob("EP");
    mix.addJob("FP");
    engine_.runTimeslice({mix.unit(0), mix.unit(1)});
    engine_.evictJob(mix.unit(0).job);
    EXPECT_TRUE(core_.slotActive(0) != core_.slotActive(1));
}

TEST_F(EngineTest, RunScheduleIsFairAcrossJobs)
{
    JobMix mix(7);
    for (const char *name : {"EP", "EP", "EP", "EP"})
        mix.addJob(name);
    const Schedule schedule =
        Schedule::fromPartition({{0, 1}, {2, 3}});
    const auto result = engine_.runSchedule(mix, schedule, 20);
    ASSERT_EQ(result.jobRetired.size(), 4u);
    // Identical jobs scheduled symmetrically retire similar counts.
    for (int j = 1; j < 4; ++j) {
        const double a = static_cast<double>(result.jobRetired[0]);
        const double b = static_cast<double>(
            result.jobRetired[static_cast<std::size_t>(j)]);
        EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.3);
    }
    EXPECT_EQ(result.cycles, 20u * 10000u);
    EXPECT_EQ(result.sliceIpc.size(), 20u);
}

TEST_F(EngineTest, RunScheduleAggregatesCounters)
{
    JobMix mix(8);
    mix.addJob("MG");
    mix.addJob("GCC");
    mix.addJob("FP");
    mix.addJob("GO");
    const Schedule schedule =
        Schedule::fromPartition({{0, 1}, {2, 3}});
    const auto result = engine_.runSchedule(mix, schedule, 10);
    EXPECT_EQ(result.total.cycles, 100000u);
    std::uint64_t sum = 0;
    for (std::uint64_t r : result.jobRetired)
        sum += r;
    EXPECT_EQ(sum, result.total.retired);
}

TEST_F(EngineTest, SetTimesliceTakesEffect)
{
    JobMix mix(9);
    mix.addJob("EP");
    engine_.setTimesliceCycles(5000);
    const auto result = engine_.runTimeslice({mix.unit(0)});
    EXPECT_EQ(result.counters.cycles, 5000u);
}

TEST_F(EngineTest, ParallelJobThreadsCanShareTimeslice)
{
    JobMix mix(10);
    mix.addParallelJob("ARRAY", 2);
    const auto result =
        engine_.runTimeslice({mix.unit(0), mix.unit(1)});
    EXPECT_GT(result.counters.retired, 1000u);
    // Residency is credited once per job, not per thread.
    EXPECT_EQ(mix.job(0).residentCycles(), 10000u);
}

} // namespace
} // namespace sos
