/** @file Unit tests for the performance-counter plumbing. */

#include <gtest/gtest.h>

#include "cpu/perf_counters.hh"

namespace sos {
namespace {

TEST(PerfCounters, StartsZeroed)
{
    const PerfCounters pc;
    EXPECT_EQ(pc.cycles, 0u);
    EXPECT_EQ(pc.retired, 0u);
    EXPECT_DOUBLE_EQ(pc.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(pc.l1dHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(pc.allConflictPct(), 0.0);
    EXPECT_DOUBLE_EQ(pc.mixImbalance(), 0.0);
}

TEST(PerfCounters, IpcIsRetiredOverCycles)
{
    PerfCounters pc;
    pc.cycles = 1000;
    pc.retired = 1500;
    EXPECT_DOUBLE_EQ(pc.ipc(), 1.5);
}

TEST(PerfCounters, ConflictPctAgainstCycles)
{
    PerfCounters pc;
    pc.cycles = 2000;
    pc.confFpQueue = 500;
    EXPECT_DOUBLE_EQ(pc.conflictPct(pc.confFpQueue), 25.0);
}

TEST(PerfCounters, AllConflictSumsEightResources)
{
    PerfCounters pc;
    pc.cycles = 100;
    pc.confIntQueue = 1;
    pc.confFpQueue = 2;
    pc.confIntRegs = 3;
    pc.confFpRegs = 4;
    pc.confRob = 5;
    pc.confIntUnits = 6;
    pc.confFpUnits = 7;
    pc.confLsPorts = 8;
    EXPECT_DOUBLE_EQ(pc.allConflictPct(), 36.0);
}

TEST(PerfCounters, MixImbalance)
{
    PerfCounters pc;
    pc.fpOps = 750;
    pc.intOps = 250;
    EXPECT_DOUBLE_EQ(pc.mixImbalance(), 0.5);
    pc.fpOps = 500;
    pc.intOps = 500;
    EXPECT_DOUBLE_EQ(pc.mixImbalance(), 0.0);
}

TEST(PerfCounters, L1dHitRate)
{
    PerfCounters pc;
    pc.l1dHits = 90;
    pc.l1dMisses = 10;
    EXPECT_DOUBLE_EQ(pc.l1dHitRate(), 0.9);
}

TEST(PerfCounters, AccumulationAddsEverything)
{
    PerfCounters a;
    a.cycles = 10;
    a.retired = 20;
    a.confFpUnits = 3;
    a.l2Misses = 7;
    a.spinOps = 5;
    a.slotRetired[2] = 11;

    PerfCounters b;
    b.cycles = 1;
    b.retired = 2;
    b.confFpUnits = 4;
    b.l2Misses = 1;
    b.spinOps = 1;
    b.slotRetired[2] = 9;

    a += b;
    EXPECT_EQ(a.cycles, 11u);
    EXPECT_EQ(a.retired, 22u);
    EXPECT_EQ(a.confFpUnits, 7u);
    EXPECT_EQ(a.l2Misses, 8u);
    EXPECT_EQ(a.spinOps, 6u);
    EXPECT_EQ(a.slotRetired[2], 20u);
}

TEST(PerfCounters, ClearResets)
{
    PerfCounters pc;
    pc.cycles = 5;
    pc.slotRetired[0] = 9;
    pc.clear();
    EXPECT_EQ(pc.cycles, 0u);
    EXPECT_EQ(pc.slotRetired[0], 0u);
}

} // namespace
} // namespace sos
