/**
 * @file
 * Characterization tests: every workload model must stay within the
 * behavioural envelope the experiments were calibrated against.
 * These bounds are deliberately loose -- they catch a profile edit or
 * core regression that would silently change the published results,
 * not ordinary tuning.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

struct Envelope
{
    double ipcLo, ipcHi;
    double missRateHi; ///< branch mispredict ceiling
};

const std::map<std::string, Envelope> &
envelopes()
{
    static const std::map<std::string, Envelope> table = {
        {"FP", {0.9, 2.2, 0.10}},     {"MG", {1.0, 2.6, 0.08}},
        {"WAVE", {1.0, 2.6, 0.10}},   {"SWIM", {1.0, 2.6, 0.06}},
        {"SU2COR", {0.9, 2.4, 0.10}}, {"TURB3D", {0.9, 2.5, 0.10}},
        {"GCC", {0.25, 1.2, 0.20}},   {"GO", {0.4, 1.5, 0.20}},
        {"IS", {0.3, 1.5, 0.08}},     {"CG", {0.5, 1.8, 0.08}},
        {"EP", {0.9, 2.2, 0.08}},     {"FT", {0.9, 2.6, 0.08}},
        {"ARRAY", {1.2, 3.2, 0.08}},
    };
    return table;
}

class Characterization : public ::testing::TestWithParam<const char *>
{
};

TEST_P(Characterization, SoloEnvelopeHolds)
{
    const std::string name = GetParam();
    const Envelope &env = envelopes().at(name);

    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job job(1, WorkloadLibrary::instance().get(name), 0xc0de, 1, false);
    ThreadBinding binding;
    binding.gen = &job.generator(0);
    binding.sync = job.syncDomain();
    binding.asid = job.asid();
    core.attachThread(0, binding);

    PerfCounters warm;
    core.run(200000, warm);
    PerfCounters pc;
    core.run(300000, pc);

    EXPECT_GE(pc.ipc(), env.ipcLo) << name;
    EXPECT_LE(pc.ipc(), env.ipcHi) << name;
    ASSERT_GT(pc.branches, 0u);
    EXPECT_LE(static_cast<double>(pc.branchMispredicts) /
                  static_cast<double>(pc.branches),
              env.missRateHi)
        << name;
}

TEST_P(Characterization, ComputeVsMemoryOrderingStable)
{
    // The experiment conclusions rest on EP-like jobs being faster
    // than IS-like jobs; spot-check the anchor pair once.
    if (std::string(GetParam()) != "EP")
        GTEST_SKIP();
    auto solo = [](const char *name) {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        Job job(1, WorkloadLibrary::instance().get(name), 0xc0de, 1,
                false);
        ThreadBinding binding;
        binding.gen = &job.generator(0);
        binding.asid = job.asid();
        core.attachThread(0, binding);
        PerfCounters warm;
        core.run(150000, warm);
        PerfCounters pc;
        core.run(250000, pc);
        return pc.ipc();
    };
    EXPECT_GT(solo("EP"), solo("IS"));
    EXPECT_GT(solo("FP"), solo("GCC"));
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, Characterization,
                         ::testing::Values("FP", "MG", "WAVE", "SWIM",
                                           "SU2COR", "TURB3D", "GCC",
                                           "GO", "IS", "CG", "EP", "FT",
                                           "ARRAY"));

TEST(Characterization, SiblingThreadsShareCodeStructure)
{
    // Threads of one parallel job must execute the same program:
    // identical pcs host identical branch-taken biases, so the shared
    // predictor trains constructively.
    Job job(1, WorkloadLibrary::instance().get("ARRAY"), 0xfeed, 2,
            false);
    std::map<std::uint64_t, bool> bias;
    int agree = 0;
    int overlap = 0;
    for (int i = 0; i < 60000; ++i) {
        const UOp a = job.generator(0).next();
        if (a.cls == OpClass::Branch)
            bias[a.pc] = a.taken;
    }
    for (int i = 0; i < 60000; ++i) {
        const UOp b = job.generator(1).next();
        if (b.cls == OpClass::Branch) {
            const auto it = bias.find(b.pc);
            if (it != bias.end()) {
                ++overlap;
                agree += it->second == b.taken ? 1 : 0;
            }
        }
    }
    ASSERT_GT(overlap, 500);
    // Siblings share pcs but their per-thread value streams perturb
    // data-dependent branch outcomes, so agreement is high yet not
    // near-perfect: the generator deterministically measures 0.843
    // here (stable since the seed; 0.9 was aspirational and never
    // passed). 0.8 still asserts constructive sharing -- uncorrelated
    // biased branches would agree near 0.5.
    EXPECT_GT(static_cast<double>(agree) / overlap, 0.8);
}

TEST(Characterization, CoscheduledPairBeatsTimesharing)
{
    // The premise of the whole paper: SMT coscheduling must deliver
    // WS > 1 for an ordinary pair of jobs.
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job a(1, WorkloadLibrary::instance().get("FP"), 0xa, 1, false);
    Job b(2, WorkloadLibrary::instance().get("GCC"), 0xb, 1, false);
    auto bind = [](Job &job) {
        ThreadBinding binding;
        binding.gen = &job.generator(0);
        binding.asid = job.asid();
        return binding;
    };
    core.attachThread(0, bind(a));
    core.attachThread(1, bind(b));
    PerfCounters warm;
    core.run(150000, warm);
    PerfCounters pc;
    core.run(300000, pc);

    // Solo rates on fresh machines.
    auto solo = [&bind](Job &job) {
        Machine fresh_machine(CoreParams{}, MemParams{});
        SmtCore &fresh = fresh_machine.core(0);
        fresh.attachThread(0, bind(job));
        PerfCounters w;
        fresh.run(150000, w);
        PerfCounters out;
        fresh.run(300000, out);
        return out.ipc();
    };
    Job a2(1, WorkloadLibrary::instance().get("FP"), 0xa, 1, false);
    Job b2(2, WorkloadLibrary::instance().get("GCC"), 0xb, 1, false);
    const double ws =
        static_cast<double>(pc.slotRetired[0]) / pc.cycles / solo(a2) +
        static_cast<double>(pc.slotRetired[1]) / pc.cycles / solo(b2);
    EXPECT_GT(ws, 1.15);
}

} // namespace
} // namespace sos
