/**
 * @file
 * Randomized property tests on the pure (non-simulation) invariants:
 * canonicalization, schedule periodicity, and generator statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/combinatorics.hh"
#include "common/rng.hh"
#include "sched/schedule.hh"
#include "trace/trace_generator.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

class Seeded : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(Seeded, CanonicalCircularIsInvariantUnderSymmetry)
{
    Rng rng(GetParam());
    const int n = 3 + static_cast<int>(rng.below(9));
    std::vector<int> order(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    const auto canon = canonicalCircular(order);

    // Any rotation has the same canonical form.
    std::vector<int> rotated = order;
    std::rotate(rotated.begin(),
                rotated.begin() +
                    static_cast<std::ptrdiff_t>(rng.below(
                        static_cast<std::uint64_t>(n))),
                rotated.end());
    EXPECT_EQ(canonicalCircular(rotated), canon);

    // So does the reflection of any rotation.
    std::reverse(rotated.begin(), rotated.end());
    EXPECT_EQ(canonicalCircular(rotated), canon);

    // Canonicalization is idempotent.
    EXPECT_EQ(canonicalCircular(canon), canon);
}

TEST_P(Seeded, CanonicalPartitionIsInvariantUnderShuffles)
{
    Rng rng(GetParam());
    const int groups = 2 + static_cast<int>(rng.below(3));
    const int size = 2 + static_cast<int>(rng.below(3));
    Partition p = randomEqualPartition(groups * size, size, rng);
    const Partition canon = canonicalPartition(p);

    rng.shuffle(p);
    for (auto &group : p)
        rng.shuffle(group);
    EXPECT_EQ(canonicalPartition(p), canon);
}

TEST_P(Seeded, ScheduleTuplesAreCircular)
{
    Rng rng(GetParam());
    const int x = 4 + static_cast<int>(rng.below(8));
    const Schedule s =
        Schedule::fromRotation(randomCircularOrder(x, rng),
                               /*window=*/2, /*step=*/1);
    const std::uint64_t period = s.periodTimeslices();
    for (std::uint64_t t = 0; t < period; ++t) {
        EXPECT_EQ(s.tupleAt(t), s.tupleAt(t + period));
        EXPECT_EQ(s.tupleAt(t), s.tupleAt(t + 7 * period));
    }
}

TEST_P(Seeded, RotationCoversEveryAdjacentPairOnce)
{
    // Window 2, step 1: the tuple multiset is exactly the circular
    // adjacency pairs, each once.
    Rng rng(GetParam());
    const int x = 4 + static_cast<int>(rng.below(8));
    const auto order = randomCircularOrder(x, rng);
    const Schedule s = Schedule::fromRotation(order, 2, 1);
    std::set<std::pair<int, int>> pairs;
    for (const auto &tuple : s.tuples()) {
        pairs.emplace(std::min(tuple[0], tuple[1]),
                      std::max(tuple[0], tuple[1]));
    }
    EXPECT_EQ(pairs.size(), static_cast<std::size_t>(x));
}

TEST_P(Seeded, GeneratorStreamsAreReproducible)
{
    const std::uint64_t seed = GetParam();
    const WorkloadProfile &profile =
        WorkloadLibrary::instance().get("SU2COR");
    TraceGenerator a(profile, seed);
    TraceGenerator b(profile, seed);
    std::uint64_t checksum_a = 0;
    std::uint64_t checksum_b = 0;
    for (int i = 0; i < 20000; ++i) {
        const UOp x = a.next();
        const UOp y = b.next();
        checksum_a = checksum_a * 31 + x.pc + x.addr +
                     static_cast<std::uint64_t>(x.cls);
        checksum_b = checksum_b * 31 + y.pc + y.addr +
                     static_cast<std::uint64_t>(y.cls);
    }
    EXPECT_EQ(checksum_a, checksum_b);
}

TEST_P(Seeded, EqualPartitionSamplingIsNearUniform)
{
    // Over the 3 partitions of 4 jobs into pairs, each should appear
    // roughly a third of the time.
    Rng rng(GetParam());
    std::map<Partition, int> counts;
    const int trials = 1200;
    for (int t = 0; t < trials; ++t)
        ++counts[randomEqualPartition(4, 2, rng)];
    ASSERT_EQ(counts.size(), 3u);
    for (const auto &[partition, count] : counts) {
        EXPECT_GT(count, trials / 5);
        EXPECT_LT(count, trials / 2);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Seeded,
                         ::testing::Values(11, 23, 37, 59, 71, 97, 131,
                                           173));

} // namespace
} // namespace sos
