/** @file Tests for the Table 1 / Table 2 experiment definitions. */

#include <gtest/gtest.h>

#include "sim/experiment_defs.hh"
#include "sim/sim_config.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

TEST(ExperimentDefs, ThirteenExperiments)
{
    EXPECT_EQ(paperExperiments().size(), 13u);
}

TEST(ExperimentDefs, LabelsFollowTable2Order)
{
    const std::vector<std::string> expected{
        "Jsb(4,2,2)",  "Jsb(5,2,2)",  "Jsb(5,2,1)",  "Jpb(10,2,2)",
        "J2pb(10,2,2)", "Jsb(6,3,3)", "Jsb(6,3,1)",  "Jsl(6,3,1)",
        "Jsb(8,4,4)",  "Jsb(8,4,1)",  "Jsl(8,4,1)",  "Jsb(12,4,4)",
        "Jsb(12,6,6)"};
    const auto &specs = paperExperiments();
    ASSERT_EQ(specs.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(specs[i].label, expected[i]);
}

TEST(ExperimentDefs, UnitCountsMatchLabels)
{
    EXPECT_EQ(experimentByLabel("Jsb(4,2,2)").numUnits(), 4);
    EXPECT_EQ(experimentByLabel("Jpb(10,2,2)").numUnits(), 10);
    EXPECT_EQ(experimentByLabel("Jsb(12,6,6)").numUnits(), 12);
}

TEST(ExperimentDefs, AllWorkloadsExist)
{
    const auto &lib = WorkloadLibrary::instance();
    for (const ExperimentSpec &spec : paperExperiments()) {
        for (const auto &entry : spec.entries)
            EXPECT_TRUE(lib.has(entry.workload))
                << spec.label << " " << entry.workload;
    }
}

// Table 2, column 2: the number of distinct schedules.
TEST(ExperimentDefs, DistinctSchedulesMatchTable2)
{
    const std::vector<std::pair<std::string, std::uint64_t>> expected{
        {"Jsb(4,2,2)", 3},    {"Jsb(5,2,2)", 12},
        {"Jsb(5,2,1)", 12},   {"Jpb(10,2,2)", 945},
        {"J2pb(10,2,2)", 945}, {"Jsb(6,3,3)", 10},
        {"Jsb(6,3,1)", 60},   {"Jsl(6,3,1)", 60},
        {"Jsb(8,4,4)", 35},   {"Jsb(8,4,1)", 2520},
        {"Jsl(8,4,1)", 2520}, {"Jsb(12,4,4)", 5775},
        {"Jsb(12,6,6)", 462}};
    for (const auto &[label, count] : expected) {
        EXPECT_EQ(expectedDistinctSchedules(experimentByLabel(label)),
                  count)
            << label;
    }
}

// Table 2, column 3: paper-time sample-phase cycles (in millions).
// Jsl(6,3,1) is the one documented deviation: the paper's unspecified
// "little" timeslice implies 1.67 M cycles there; ours is uniformly
// paperTimeslice/4, giving 75 M instead of 100 M.
TEST(ExperimentDefs, SamplePhaseCyclesMatchTable2)
{
    const std::vector<std::pair<std::string, std::uint64_t>> expected{
        {"Jsb(4,2,2)", 30},    {"Jsb(5,2,2)", 250},
        {"Jsb(5,2,1)", 250},   {"Jpb(10,2,2)", 250},
        {"J2pb(10,2,2)", 250}, {"Jsb(6,3,3)", 100},
        {"Jsb(6,3,1)", 300},   {"Jsl(6,3,1)", 75},
        {"Jsb(8,4,4)", 100},   {"Jsb(8,4,1)", 400},
        {"Jsl(8,4,1)", 100},   {"Jsb(12,4,4)", 150},
        {"Jsb(12,6,6)", 100}};
    for (const auto &[label, millions] : expected) {
        EXPECT_EQ(paperSamplePhaseCycles(experimentByLabel(label)),
                  millions * 1000000ULL)
            << label;
    }
}

TEST(ExperimentDefs, ParallelMixesPairArrayThreads)
{
    const ExperimentSpec &jpb = experimentByLabel("Jpb(10,2,2)");
    JobMix mix = jpb.makeMix(1);
    EXPECT_EQ(mix.numUnits(), 10);
    EXPECT_EQ(mix.numJobs(), 9); // ARRAY's two threads are one job
    EXPECT_EQ(mix.unit(8).job, mix.unit(9).job);
    EXPECT_EQ(mix.unit(8).job->name(), "ARRAY");

    const ExperimentSpec &j2pb = experimentByLabel("J2pb(10,2,2)");
    JobMix mix2 = j2pb.makeMix(1);
    EXPECT_EQ(mix2.unit(8).job->name(), "ARRAY2");
}

TEST(ExperimentDefs, LittleTimesliceFlag)
{
    EXPECT_FALSE(experimentByLabel("Jsb(6,3,1)").little);
    EXPECT_TRUE(experimentByLabel("Jsl(6,3,1)").little);
    EXPECT_TRUE(experimentByLabel("Jsl(8,4,1)").little);
}

TEST(ExperimentDefs, UnknownLabelIsFatal)
{
    EXPECT_DEATH(experimentByLabel("Jxx(9,9,9)"), "unknown experiment");
}

TEST(ExperimentDefs, HierarchicalSpecsMatchTable1)
{
    const auto &specs = hierarchicalExperiments();
    ASSERT_EQ(specs.size(), 4u);
    EXPECT_EQ(specs[0].level, 2);
    EXPECT_EQ(specs[1].level, 3);
    EXPECT_EQ(specs[2].level, 4);
    EXPECT_EQ(specs[3].level, 6);
    EXPECT_EQ(specs[0].workloads,
              (std::vector<std::string>{"CG", "mt_ARRAY", "EP"}));
    EXPECT_EQ(specs[3].workloads.size(), 10u);
}

TEST(ExperimentDefs, HierarchicalMixMarksAdaptive)
{
    JobMix mix = hierarchicalExperiments()[0].makeMix(1);
    EXPECT_FALSE(mix.job(0).adaptive()); // CG
    EXPECT_TRUE(mix.job(1).adaptive());  // mt_ARRAY
    EXPECT_FALSE(mix.job(2).adaptive()); // EP
}

TEST(ExperimentDefs, OpenSystemWorkloadsAreSequential)
{
    const auto &lib = WorkloadLibrary::instance();
    for (const std::string &name : openSystemWorkloads()) {
        ASSERT_TRUE(lib.has(name));
        EXPECT_EQ(lib.get(name).syncInterval, 0u) << name;
    }
    EXPECT_EQ(openSystemWorkloads().size(), 12u);
}

TEST(SimConfig, ScalingHelpers)
{
    SimConfig config;
    config.cycleScale = 100;
    EXPECT_EQ(config.timesliceCycles(), 50000u);
    EXPECT_EQ(config.littleTimesliceCycles(), 12500u);
    EXPECT_EQ(config.scaled(1000000), 10000u);
}

TEST(SimConfig, CoreForSetsContexts)
{
    SimConfig config;
    EXPECT_EQ(config.coreFor(6).numContexts, 6);
    EXPECT_EQ(config.coreFor(2).numContexts, 2);
}

} // namespace
} // namespace sos
