/** @file Unit tests for schedules and the schedule space (Table 2). */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "sched/schedule.hh"

namespace sos {
namespace {

TEST(Schedule, FromPartitionTuples)
{
    const Schedule s = Schedule::fromPartition({{3, 4, 5}, {0, 1, 2}});
    EXPECT_EQ(s.periodTimeslices(), 2u);
    EXPECT_EQ(s.tupleAt(0), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(s.tupleAt(1), (std::vector<int>{3, 4, 5}));
    EXPECT_EQ(s.tupleAt(2), s.tupleAt(0)); // circular
    EXPECT_EQ(s.label(), "012_345");
}

TEST(Schedule, PartitionKeyIgnoresTupleOrder)
{
    const Schedule a = Schedule::fromPartition({{0, 1, 2}, {3, 4, 5}});
    const Schedule b = Schedule::fromPartition({{5, 3, 4}, {2, 0, 1}});
    EXPECT_EQ(a.key(), b.key());
}

TEST(Schedule, RotationWindowAndStep)
{
    // Jsb(5,2,2): window 2, step 2 over a circular order of 5.
    const Schedule s =
        Schedule::fromRotation({0, 1, 2, 3, 4}, 2, 2);
    EXPECT_EQ(s.periodTimeslices(), 5u);
    EXPECT_EQ(s.tupleAt(0), (std::vector<int>{0, 1}));
    EXPECT_EQ(s.tupleAt(1), (std::vector<int>{2, 3}));
    EXPECT_EQ(s.tupleAt(2), (std::vector<int>{4, 0}));
    EXPECT_EQ(s.tupleAt(3), (std::vector<int>{1, 2}));
    EXPECT_EQ(s.tupleAt(4), (std::vector<int>{3, 4}));
}

TEST(Schedule, RotationSingleSwapIsFifo)
{
    // Jsb(6,3,1): swapping one job per timeslice slides the window.
    const Schedule s =
        Schedule::fromRotation({0, 1, 2, 3, 4, 5}, 3, 1);
    EXPECT_EQ(s.periodTimeslices(), 6u);
    EXPECT_EQ(s.tupleAt(0), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(s.tupleAt(1), (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(s.tupleAt(5), (std::vector<int>{5, 0, 1}));
}

TEST(Schedule, RotationKeyInvariantUnderRotationAndReflection)
{
    const Schedule a = Schedule::fromRotation({0, 1, 2, 3, 4}, 2, 1);
    const Schedule b = Schedule::fromRotation({2, 3, 4, 0, 1}, 2, 1);
    const Schedule c = Schedule::fromRotation({4, 3, 2, 1, 0}, 2, 1);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(a.key(), c.key());
}

TEST(Schedule, FairAppearancesPerPeriod)
{
    // Valid steps for X=6, Y=3 are those with gcd(6, Z) | 3.
    for (int step : {1, 3}) {
        const Schedule s =
            Schedule::fromRotation({0, 1, 2, 3, 4, 5}, 3, step);
        const int expected = s.appearancesPerPeriod(0);
        for (int job = 1; job < 6; ++job)
            EXPECT_EQ(s.appearancesPerPeriod(job), expected)
                << "step " << step;
    }
}

TEST(Schedule, UnfairRotationIsRejected)
{
    // gcd(6, 2) = 2 does not divide the window 3: jobs would appear
    // unequally often, violating the paper's fairness requirement.
    EXPECT_DEATH(Schedule::fromRotation({0, 1, 2, 3, 4, 5}, 3, 2),
                 "unfair");
}

TEST(Schedule, WideIndicesUseDots)
{
    const Schedule s =
        Schedule::fromPartition({{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11}});
    EXPECT_EQ(s.label(), "0.1.2.3.4.5_6.7.8.9.10.11");
}

// ---- ScheduleSpace: every row of the paper's Table 2. ----

struct Table2Row
{
    int x, y, z;
    std::uint64_t distinct;
};

class Table2 : public ::testing::TestWithParam<Table2Row>
{
};

TEST_P(Table2, DistinctCountMatchesPaper)
{
    const Table2Row row = GetParam();
    const ScheduleSpace space(row.x, row.y, row.z);
    EXPECT_EQ(space.distinctCount(), row.distinct);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2,
    ::testing::Values(Table2Row{4, 2, 2, 3},      // Jsb(4,2,2)
                      Table2Row{5, 2, 2, 12},     // Jsb(5,2,2)
                      Table2Row{5, 2, 1, 12},     // Jsb(5,2,1)
                      Table2Row{10, 2, 2, 945},   // Jpb(10,2,2)
                      Table2Row{6, 3, 3, 10},     // Jsb(6,3,3)
                      Table2Row{6, 3, 1, 60},     // Jsb(6,3,1) & Jsl
                      Table2Row{8, 4, 4, 35},     // Jsb(8,4,4)
                      Table2Row{8, 4, 1, 2520},   // Jsb(8,4,1) & Jsl
                      Table2Row{12, 4, 4, 5775},  // Jsb(12,4,4)
                      Table2Row{12, 6, 6, 462})); // Jsb(12,6,6)

TEST(ScheduleSpace, PeriodMatchesPaperSamplePhases)
{
    // One schedule evaluation takes one period of timeslices; the
    // paper's "Million Sample Cycles" column follows from these.
    EXPECT_EQ(ScheduleSpace(4, 2, 2).periodTimeslices(), 2u);
    EXPECT_EQ(ScheduleSpace(5, 2, 2).periodTimeslices(), 5u);
    EXPECT_EQ(ScheduleSpace(10, 2, 2).periodTimeslices(), 5u);
    EXPECT_EQ(ScheduleSpace(6, 3, 3).periodTimeslices(), 2u);
    EXPECT_EQ(ScheduleSpace(6, 3, 1).periodTimeslices(), 6u);
    EXPECT_EQ(ScheduleSpace(8, 4, 4).periodTimeslices(), 2u);
    EXPECT_EQ(ScheduleSpace(8, 4, 1).periodTimeslices(), 8u);
    EXPECT_EQ(ScheduleSpace(12, 4, 4).periodTimeslices(), 3u);
    EXPECT_EQ(ScheduleSpace(12, 6, 6).periodTimeslices(), 2u);
}

TEST(ScheduleSpace, EnumerationIsDistinctAndComplete)
{
    const ScheduleSpace space(6, 3, 3);
    const auto all = space.enumerateAll();
    EXPECT_EQ(all.size(), 10u);
    std::set<std::string> keys;
    for (const Schedule &s : all)
        keys.insert(s.key());
    EXPECT_EQ(keys.size(), 10u);
}

TEST(ScheduleSpace, EnumerationLimitGuards)
{
    const ScheduleSpace space(8, 4, 1); // 2520 schedules
    EXPECT_EQ(space.enumerateAll(3000).size(), 2520u);
}

TEST(ScheduleSpace, SampleReturnsWholeSmallSpace)
{
    Rng rng(1);
    const ScheduleSpace space(4, 2, 2);
    EXPECT_EQ(space.sample(10, rng).size(), 3u); // Jsb(4,2,2) quirk
}

TEST(ScheduleSpace, SampleDistinct)
{
    Rng rng(2);
    const ScheduleSpace space(10, 2, 2); // 945 schedules
    const auto sampled = space.sample(10, rng);
    EXPECT_EQ(sampled.size(), 10u);
    std::set<std::string> keys;
    for (const Schedule &s : sampled)
        keys.insert(s.key());
    EXPECT_EQ(keys.size(), 10u);
}

TEST(ScheduleSpace, SampleSchedulesAreFair)
{
    Rng rng(3);
    const ScheduleSpace space(8, 4, 1);
    for (const Schedule &s : space.sample(10, rng)) {
        for (int job = 0; job < 8; ++job)
            EXPECT_EQ(s.appearancesPerPeriod(job),
                      s.appearancesPerPeriod(0));
    }
}

TEST(ScheduleSpace, AllJobsFitIsSingleSchedule)
{
    const ScheduleSpace space(3, 3, 3);
    EXPECT_EQ(space.distinctCount(), 1u);
    const auto all = space.enumerateAll();
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(all.front().tupleAt(0), (std::vector<int>{0, 1, 2}));
}

TEST(ScheduleSpace, NonDivisibleFullSwapUsesRotation)
{
    // X=5, Y=2, Z=2: the paper's Jsb(5,2,2) rotates a circular order.
    const ScheduleSpace space(5, 2, 2);
    EXPECT_FALSE(space.fullSwap());
    EXPECT_EQ(space.distinctCount(), 12u);
}

TEST(ScheduleSpace, RandomDrawsValidSchedules)
{
    Rng rng(4);
    const ScheduleSpace space(12, 6, 6);
    for (int i = 0; i < 20; ++i) {
        const Schedule s = space.random(rng);
        EXPECT_EQ(s.periodTimeslices(), 2u);
        std::set<int> members;
        for (const auto &tuple : s.tuples())
            members.insert(tuple.begin(), tuple.end());
        EXPECT_EQ(members.size(), 12u);
    }
}

} // namespace
} // namespace sos
