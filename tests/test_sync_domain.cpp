/** @file Unit tests for the barrier synchronization domain. */

#include <gtest/gtest.h>

#include "cpu/sync_domain.hh"

namespace sos {
namespace {

TEST(SyncDomain, SingleThreadNeverBlocks)
{
    SyncDomain d(1);
    for (int i = 0; i < 5; ++i) {
        d.arrive(0);
        EXPECT_FALSE(d.blocked(0));
    }
    EXPECT_EQ(d.completed(), 5u);
}

TEST(SyncDomain, FirstArrivalBlocksUntilSibling)
{
    SyncDomain d(2);
    d.arrive(0);
    EXPECT_TRUE(d.blocked(0));
    EXPECT_FALSE(d.blocked(1)); // thread 1 has not arrived yet
    d.arrive(1);
    EXPECT_FALSE(d.blocked(0));
    EXPECT_FALSE(d.blocked(1));
    EXPECT_EQ(d.completed(), 1u);
}

TEST(SyncDomain, ArrivalsInDifferentEpochsStillComplete)
{
    // The paper's split-ARRAY case: siblings arrive in different
    // timeslices; the barrier completes when the laggard arrives.
    SyncDomain d(2);
    d.arrive(0); // timeslice 1: thread 0 runs alone, parks
    EXPECT_TRUE(d.blocked(0));
    d.arrive(1); // timeslice 2: thread 1 runs alone, releases barrier 1
    EXPECT_FALSE(d.blocked(0));
    d.arrive(1); // thread 1 reaches barrier 2, parks
    EXPECT_TRUE(d.blocked(1));
    EXPECT_FALSE(d.blocked(0));
    d.arrive(0);
    EXPECT_FALSE(d.blocked(1));
    EXPECT_EQ(d.completed(), 2u);
}

TEST(SyncDomain, ThreeThreadsNeedAll)
{
    SyncDomain d(3);
    d.arrive(0);
    d.arrive(1);
    EXPECT_TRUE(d.blocked(0));
    EXPECT_TRUE(d.blocked(1));
    d.arrive(2);
    EXPECT_FALSE(d.blocked(0));
    EXPECT_FALSE(d.blocked(1));
    EXPECT_FALSE(d.blocked(2));
}

TEST(SyncDomain, FastThreadCannotRunAhead)
{
    SyncDomain d(2);
    d.arrive(0);
    d.arrive(1); // barrier 1 complete
    d.arrive(0); // thread 0 reaches barrier 2 first
    EXPECT_TRUE(d.blocked(0));
    EXPECT_EQ(d.completed(), 1u);
}

TEST(SyncDomain, ResetRestartsGenerations)
{
    SyncDomain d(2);
    d.arrive(0);
    d.arrive(1);
    d.reset(3);
    EXPECT_EQ(d.numThreads(), 3);
    EXPECT_EQ(d.completed(), 0u);
    d.arrive(0);
    EXPECT_TRUE(d.blocked(0));
}

} // namespace
} // namespace sos
