/** @file Unit and invariant tests for the SMT out-of-order core. */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

std::unique_ptr<Job>
makeJob(std::uint32_t id, const std::string &workload, int threads = 1)
{
    return std::make_unique<Job>(
        id, WorkloadLibrary::instance().get(workload),
        0x900d5eedULL ^ id, threads, false);
}

ThreadBinding
bindingOf(Job &job, int thread = 0)
{
    ThreadBinding b;
    b.gen = &job.generator(thread);
    b.sync = job.syncDomain();
    b.syncIndex = thread;
    b.asid = job.asid();
    return b;
}

TEST(SmtCore, IdlesWithNoThreads)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    PerfCounters pc;
    core.run(1000, pc);
    EXPECT_EQ(pc.cycles, 1000u);
    EXPECT_EQ(pc.retired, 0u);
    EXPECT_EQ(pc.fetched, 0u);
}

TEST(SmtCore, SingleThreadMakesProgress)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "EP");
    core.attachThread(0, bindingOf(*job));
    PerfCounters pc;
    core.run(50000, pc);
    EXPECT_GT(pc.retired, 10000u);
    EXPECT_GT(pc.ipc(), 0.2);
}

TEST(SmtCore, SlotRetiredSumsToTotal)
{
    CoreParams params;
    params.numContexts = 3;
    Machine machine(params, MemParams{});
    SmtCore &core = machine.core(0);
    auto j1 = makeJob(1, "EP");
    auto j2 = makeJob(2, "GCC");
    auto j3 = makeJob(3, "MG");
    core.attachThread(0, bindingOf(*j1));
    core.attachThread(1, bindingOf(*j2));
    core.attachThread(2, bindingOf(*j3));
    PerfCounters pc;
    core.run(30000, pc);
    std::uint64_t sum = 0;
    for (std::uint64_t r : pc.slotRetired)
        sum += r;
    EXPECT_EQ(sum, pc.retired);
    for (int s = 0; s < 3; ++s)
        EXPECT_GT(pc.slotRetired[static_cast<std::size_t>(s)], 0u);
}

TEST(SmtCore, Deterministic)
{
    PerfCounters a;
    PerfCounters b;
    for (PerfCounters *pc : {&a, &b}) {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        auto j1 = makeJob(1, "FP");
        auto j2 = makeJob(2, "GO");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        core.run(20000, *pc);
    }
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.fetched, b.fetched);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.confFpQueue, b.confFpQueue);
}

TEST(SmtCore, ConflictCountersBoundedByCycles)
{
    CoreParams params;
    params.numContexts = 4;
    Machine machine(params, MemParams{});
    SmtCore &core = machine.core(0);
    auto j1 = makeJob(1, "FP");
    auto j2 = makeJob(2, "SWIM");
    auto j3 = makeJob(3, "MG");
    auto j4 = makeJob(4, "CG");
    core.attachThread(0, bindingOf(*j1));
    core.attachThread(1, bindingOf(*j2));
    core.attachThread(2, bindingOf(*j3));
    core.attachThread(3, bindingOf(*j4));
    PerfCounters pc;
    core.run(20000, pc);
    for (std::uint64_t conflict :
         {pc.confIntQueue, pc.confFpQueue, pc.confIntRegs, pc.confFpRegs,
          pc.confRob, pc.confIntUnits, pc.confFpUnits, pc.confLsPorts}) {
        EXPECT_LE(conflict, pc.cycles);
    }
}

TEST(SmtCore, PipelineOrderingInvariants)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "GCC");
    core.attachThread(0, bindingOf(*job));
    PerfCounters pc;
    core.run(30000, pc);
    EXPECT_GE(pc.fetched, pc.dispatched);
    EXPECT_GE(pc.dispatched, pc.issued);
    EXPECT_GE(pc.issued, pc.retired);
}

TEST(SmtCore, DetachSquashesInFlight)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "CG");
    core.attachThread(0, bindingOf(*job));
    PerfCounters pc;
    core.run(5000, pc);
    EXPECT_GT(core.inFlightCount(), 0);
    core.detachThread(0);
    EXPECT_EQ(core.inFlightCount(), 0);
    EXPECT_FALSE(core.slotActive(0));
}

TEST(SmtCore, ResourcesSurviveManySwaps)
{
    // If rename registers or ROB entries leaked at detach, throughput
    // would collapse after enough context switches.
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto j1 = makeJob(1, "FP");
    auto j2 = makeJob(2, "MG");
    PerfCounters first;
    PerfCounters last;
    for (int swap = 0; swap < 50; ++swap) {
        Job &job = (swap % 2 == 0) ? *j1 : *j2;
        core.attachThread(0, bindingOf(job));
        PerfCounters pc;
        core.run(3000, pc);
        if (swap == 10)
            first = pc;
        if (swap == 49)
            last = pc;
        core.detachThread(0);
    }
    EXPECT_GT(last.retired, first.retired / 2);
}

TEST(SmtCore, AttachRequiresFreeSlot)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "EP");
    core.attachThread(0, bindingOf(*job));
    EXPECT_TRUE(core.slotActive(0));
    EXPECT_FALSE(core.slotActive(1));
    EXPECT_DEATH(core.attachThread(0, bindingOf(*job)), "already bound");
}

TEST(SmtCore, DetachRequiresBoundSlot)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    EXPECT_DEATH(core.detachThread(0), "not bound");
}

TEST(SmtCore, CoscheduledThreadsBothProgress)
{
    // ICOUNT fairness: two copies of the same workload should retire
    // similar instruction counts.
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto j1 = makeJob(1, "WAVE");
    auto j2 = makeJob(2, "WAVE");
    core.attachThread(0, bindingOf(*j1));
    core.attachThread(1, bindingOf(*j2));
    PerfCounters pc;
    core.run(80000, pc);
    const double a = static_cast<double>(pc.slotRetired[0]);
    const double b = static_cast<double>(pc.slotRetired[1]);
    EXPECT_GT(a, 0.0);
    EXPECT_GT(b, 0.0);
    EXPECT_LT(std::abs(a - b) / std::max(a, b), 0.25);
}

TEST(SmtCore, MultithreadingRaisesThroughput)
{
    // Adding a compute-bound partner to a memory-bound thread must
    // raise total IPC (the basic promise of SMT).
    PerfCounters alone;
    {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        auto j1 = makeJob(1, "CG");
        core.attachThread(0, bindingOf(*j1));
        core.run(60000, alone);
    }
    PerfCounters both;
    {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        auto j1 = makeJob(1, "CG");
        auto j2 = makeJob(2, "EP");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        core.run(60000, both);
    }
    EXPECT_GT(both.ipc(), alone.ipc() * 1.3);
}

TEST(SmtCore, SplitParallelThreadStallsAtBarrier)
{
    // One thread of a tightly-synchronized job, run without its
    // sibling, must park at the first barrier (Section 6's effect).
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "ARRAY", 2);
    core.attachThread(0, bindingOf(*job, 0));
    PerfCounters pc;
    core.run(60000, pc);
    // Progress is capped near the sync interval (1500 instructions).
    EXPECT_LT(pc.retired, 3 * job->profile().syncInterval);
    EXPECT_GT(pc.retired, 0u);
}

TEST(SmtCore, CoscheduledParallelThreadsRunFreely)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "ARRAY", 2);
    core.attachThread(0, bindingOf(*job, 0));
    core.attachThread(1, bindingOf(*job, 1));
    PerfCounters pc;
    core.run(60000, pc);
    EXPECT_GT(pc.retired, 20000u);
    EXPECT_GT(pc.barriers, 10u);
}

TEST(SmtCore, BarrierStatePersistsAcrossDetach)
{
    // Thread 0 parks at a barrier, is descheduled, sibling arrives,
    // thread 0 reattaches and must resume.
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "ARRAY", 2);

    core.attachThread(0, bindingOf(*job, 0));
    PerfCounters pc0;
    core.run(20000, pc0); // parks at barrier 1
    core.detachThread(0);

    core.attachThread(0, bindingOf(*job, 1));
    PerfCounters pc1;
    core.run(20000, pc1); // sibling reaches barrier 1, parks at 2
    core.detachThread(0);

    core.attachThread(0, bindingOf(*job, 0));
    PerfCounters pc2;
    core.run(20000, pc2); // resumes past barrier 1
    EXPECT_GT(pc2.retired, 100u);
}

TEST(SmtCore, MemoryCountersConsistent)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "MG");
    core.attachThread(0, bindingOf(*job));
    PerfCounters pc;
    core.run(40000, pc);
    // Each memory op touches the L1D at most once (at issue), so the
    // L1D access count is bounded by the dispatched memory ops and is
    // nonzero for a load-heavy workload.
    EXPECT_LE(pc.l1dHits + pc.l1dMisses, pc.loads + pc.stores);
    EXPECT_GT(pc.l1dHits + pc.l1dMisses,
              (pc.loads + pc.stores) * 9 / 10);
}

TEST(SmtCore, BranchCountersConsistent)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto job = makeJob(1, "GO");
    core.attachThread(0, bindingOf(*job));
    PerfCounters warmup; // train the predictor and caches first
    core.run(200000, warmup);
    PerfCounters pc;
    core.run(100000, pc);
    EXPECT_GT(pc.branches, 0u);
    EXPECT_LT(pc.branchMispredicts, pc.branches);
    // GO's predictability is 0.82; the trained rate should sit well
    // under 30% and above 2%.
    const double rate = static_cast<double>(pc.branchMispredicts) /
                        static_cast<double>(pc.branches);
    EXPECT_LT(rate, 0.30);
    EXPECT_GT(rate, 0.02);
}

} // namespace
} // namespace sos
