/**
 * @file
 * Unit tests for the Section 9 resampling policy and the named
 * resample-timer registry behind makeResamplePolicy().
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/resample_policy.hh"

namespace sos {
namespace {

TEST(ResamplePolicy, StartsAtBase)
{
    ResamplePolicy policy(1000);
    EXPECT_EQ(policy.symbiosDuration(), 1000u);
    EXPECT_EQ(policy.baseInterval(), 1000u);
}

TEST(ResamplePolicy, StablePredictionBacksOffExponentially)
{
    ResamplePolicy policy(1000);
    policy.onTimerSample(false);
    EXPECT_EQ(policy.symbiosDuration(), 2000u);
    policy.onTimerSample(false);
    EXPECT_EQ(policy.symbiosDuration(), 4000u);
    policy.onTimerSample(false);
    EXPECT_EQ(policy.symbiosDuration(), 8000u);
}

TEST(ResamplePolicy, ChangedPredictionResets)
{
    ResamplePolicy policy(1000);
    policy.onTimerSample(false);
    policy.onTimerSample(false);
    policy.onTimerSample(true);
    EXPECT_EQ(policy.symbiosDuration(), 1000u);
}

TEST(ResamplePolicy, JobChangeResets)
{
    ResamplePolicy policy(1000);
    policy.onTimerSample(false);
    policy.onTimerSample(false);
    policy.onJobChange();
    EXPECT_EQ(policy.symbiosDuration(), 1000u);
}

TEST(ResamplePolicy, BackoffIsCapped)
{
    ResamplePolicy policy(1);
    for (int i = 0; i < 100; ++i)
        policy.onTimerSample(false);
    EXPECT_LT(policy.symbiosDuration(), std::uint64_t{1} << 62);
}

TEST(ResampleRegistry, BackoffTimerKeepsPaperSemantics)
{
    // The registry's "backoff" timer must behave exactly like the
    // ResamplePolicy it wraps: doubling on stable predictions, reset
    // on a changed prediction or any job change.
    const std::unique_ptr<ResampleTimer> timer =
        makeResamplePolicy("backoff", 1000);
    EXPECT_EQ(timer->name(), "backoff");
    EXPECT_EQ(timer->baseInterval(), 1000u);
    EXPECT_EQ(timer->symbiosDuration(), 1000u);
    timer->onTimerSample(false);
    EXPECT_EQ(timer->symbiosDuration(), 2000u);
    timer->onTimerSample(false);
    EXPECT_EQ(timer->symbiosDuration(), 4000u);
    timer->onTimerSample(true);
    EXPECT_EQ(timer->symbiosDuration(), 1000u);
    timer->onTimerSample(false);
    timer->onJobChange();
    EXPECT_EQ(timer->symbiosDuration(), 1000u);
}

TEST(ResampleRegistry, BackoffTimerIsCapped)
{
    const std::unique_ptr<ResampleTimer> timer =
        makeResamplePolicy("backoff", 1);
    for (int i = 0; i < 100; ++i)
        timer->onTimerSample(false);
    EXPECT_LT(timer->symbiosDuration(), std::uint64_t{1} << 62);
}

TEST(ResampleRegistry, FixedTimerNeverBacksOff)
{
    const std::unique_ptr<ResampleTimer> timer =
        makeResamplePolicy("fixed", 500);
    EXPECT_EQ(timer->name(), "fixed");
    EXPECT_EQ(timer->baseInterval(), 500u);
    timer->onTimerSample(false);
    timer->onTimerSample(false);
    EXPECT_EQ(timer->symbiosDuration(), 500u);
    timer->onJobChange();
    EXPECT_EQ(timer->symbiosDuration(), 500u);
}

TEST(ResampleRegistry, NamesListEveryRegisteredPolicy)
{
    const std::vector<std::string> &names = resamplePolicyNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "backoff");
    EXPECT_EQ(names[1], "fixed");
    for (const std::string &name : names)
        EXPECT_NE(makeResamplePolicy(name, 1), nullptr);
}

TEST(ResampleRegistry, UnknownNameIsFatalAndListsNames)
{
    // A typo must fail fast with the registered names, so the user
    // can correct the flag without reading the source.
    EXPECT_DEATH(makeResamplePolicy("bogus", 1000),
                 "unknown resample policy 'bogus' .known: backoff, "
                 "fixed.");
}

} // namespace
} // namespace sos
