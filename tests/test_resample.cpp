/** @file Unit tests for the Section 9 resampling policy. */

#include <gtest/gtest.h>

#include "core/resample_policy.hh"

namespace sos {
namespace {

TEST(ResamplePolicy, StartsAtBase)
{
    ResamplePolicy policy(1000);
    EXPECT_EQ(policy.symbiosDuration(), 1000u);
    EXPECT_EQ(policy.baseInterval(), 1000u);
}

TEST(ResamplePolicy, StablePredictionBacksOffExponentially)
{
    ResamplePolicy policy(1000);
    policy.onTimerSample(false);
    EXPECT_EQ(policy.symbiosDuration(), 2000u);
    policy.onTimerSample(false);
    EXPECT_EQ(policy.symbiosDuration(), 4000u);
    policy.onTimerSample(false);
    EXPECT_EQ(policy.symbiosDuration(), 8000u);
}

TEST(ResamplePolicy, ChangedPredictionResets)
{
    ResamplePolicy policy(1000);
    policy.onTimerSample(false);
    policy.onTimerSample(false);
    policy.onTimerSample(true);
    EXPECT_EQ(policy.symbiosDuration(), 1000u);
}

TEST(ResamplePolicy, JobChangeResets)
{
    ResamplePolicy policy(1000);
    policy.onTimerSample(false);
    policy.onTimerSample(false);
    policy.onJobChange();
    EXPECT_EQ(policy.symbiosDuration(), 1000u);
}

TEST(ResamplePolicy, BackoffIsCapped)
{
    ResamplePolicy policy(1);
    for (int i = 0; i < 100; ++i)
        policy.onTimerSample(false);
    EXPECT_LT(policy.symbiosDuration(), std::uint64_t{1} << 62);
}

} // namespace
} // namespace sos
