/**
 * @file
 * The parallel sweep layer's determinism contract: schedule profiles
 * are a pure function of the experiment, never of the worker count.
 * Parallel results must be bit-identical to serial (SOS_JOBS=1), for
 * both a full exhaustively-profiled space and a sampled one.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.hh"
#include "sim/batch_experiment.hh"
#include "sim/parallel_runner.hh"
#include "sim/params_io.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"

namespace sos {
namespace {

/** Every counter weighted speedup or a predictor could ever read. */
void
expectCountersIdentical(const PerfCounters &a, const PerfCounters &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.fetched, b.fetched);
    EXPECT_EQ(a.dispatched, b.dispatched);
    EXPECT_EQ(a.issued, b.issued);
    EXPECT_EQ(a.retired, b.retired);
    EXPECT_EQ(a.intOps, b.intOps);
    EXPECT_EQ(a.fpOps, b.fpOps);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.barriers, b.barriers);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.spinOps, b.spinOps);
    EXPECT_EQ(a.confIntQueue, b.confIntQueue);
    EXPECT_EQ(a.confFpQueue, b.confFpQueue);
    EXPECT_EQ(a.confIntRegs, b.confIntRegs);
    EXPECT_EQ(a.confFpRegs, b.confFpRegs);
    EXPECT_EQ(a.confRob, b.confRob);
    EXPECT_EQ(a.confIntUnits, b.confIntUnits);
    EXPECT_EQ(a.confFpUnits, b.confFpUnits);
    EXPECT_EQ(a.confLsPorts, b.confLsPorts);
    EXPECT_EQ(a.l1iHits, b.l1iHits);
    EXPECT_EQ(a.l1iMisses, b.l1iMisses);
    EXPECT_EQ(a.l1dHits, b.l1dHits);
    EXPECT_EQ(a.l1dMisses, b.l1dMisses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.itlbMisses, b.itlbMisses);
    EXPECT_EQ(a.dtlbMisses, b.dtlbMisses);
    EXPECT_EQ(a.slotRetired, b.slotRetired);
}

/** Bit-for-bit equality of two completed experiments. */
void
expectExperimentsIdentical(const BatchExperiment &a,
                           const BatchExperiment &b)
{
    ASSERT_EQ(a.schedules().size(), b.schedules().size());
    for (std::size_t i = 0; i < a.schedules().size(); ++i)
        EXPECT_EQ(a.schedules()[i].key(), b.schedules()[i].key());

    ASSERT_EQ(a.profiles().size(), b.profiles().size());
    for (std::size_t i = 0; i < a.profiles().size(); ++i) {
        const ScheduleProfile &pa = a.profiles()[i];
        const ScheduleProfile &pb = b.profiles()[i];
        EXPECT_EQ(pa.label, pb.label);
        expectCountersIdentical(pa.counters, pb.counters);
        EXPECT_EQ(pa.sliceIpc, pb.sliceIpc);
        EXPECT_EQ(pa.sliceMixImbalance, pb.sliceMixImbalance);
        EXPECT_EQ(pa.sampleWs, pb.sampleWs);
    }

    EXPECT_EQ(a.samplePhaseCycles(), b.samplePhaseCycles());
    ASSERT_EQ(a.symbiosWs().size(), b.symbiosWs().size());
    for (std::size_t i = 0; i < a.symbiosWs().size(); ++i)
        EXPECT_EQ(a.symbiosWs()[i], b.symbiosWs()[i]);
}

/** Run one full experiment with the given worker count. */
BatchExperiment
runWith(const char *label, int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    BatchExperiment exp(experimentByLabel(label), config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    return exp;
}

TEST(ParallelRunner, FullSpaceMatchesSerialBitForBit)
{
    // Jsb(4,2,2) has only 3 schedules: the sample IS the space.
    const BatchExperiment serial = runWith("Jsb(4,2,2)", 1);
    for (int jobs : {2, 8}) {
        const BatchExperiment parallel = runWith("Jsb(4,2,2)", jobs);
        expectExperimentsIdentical(serial, parallel);
    }
}

TEST(ParallelRunner, SampledSpaceMatchesSerialBitForBit)
{
    // Jsb(6,3,1) samples 10 of its 60 distinct schedules.
    const BatchExperiment serial = runWith("Jsb(6,3,1)", 1);
    const BatchExperiment parallel = runWith("Jsb(6,3,1)", 8);
    EXPECT_EQ(serial.schedules().size(), 10u);
    expectExperimentsIdentical(serial, parallel);
}

/** The experiment's full manifest document at a given worker count. */
std::string
manifestWith(const char *label, int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    BatchExperiment exp(experimentByLabel(label), config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();

    stats::Registry registry;
    exp.publishStats(stats::Group(registry, "experiment"));
    stats::Manifest manifest;
    manifest.tool = "test_parallel_runner";
    manifest.gitRev = "pinned";
    manifest.seed = config.seed;
    manifest.config = configPairs(config);
    return renderManifest(manifest, registry);
}

TEST(ParallelRunner, ManifestBitIdenticalAcrossWorkerCounts)
{
    // The PR-1 determinism contract extended to observability: the
    // machine-readable manifest -- every stat, every formatted double
    // -- is byte-identical no matter how the sweep was parallelized.
    // (The config is included, so the jobs knob itself must not leak
    // into the document; configPairs deliberately omits it.)
    const std::string serial = manifestWith("Jsb(4,2,2)", 1);
    for (int jobs : {2, 8})
        EXPECT_EQ(serial, manifestWith("Jsb(4,2,2)", jobs));
}

TEST(ParallelRunner, MapPreservesIndexOrder)
{
    const ParallelScheduleRunner runner(4);
    const std::vector<int> out = runner.map<int>(
        100, [](std::size_t i) { return static_cast<int>(i) * 3; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) * 3);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    for (int workers : {1, 2, 8}) {
        ThreadPool pool(workers);
        std::vector<std::atomic<int>> hits(257);
        pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
        for (const std::atomic<int> &hit : hits)
            EXPECT_EQ(hit.load(), 1);
    }
}

TEST(ThreadPool, ReusableAcrossBatches)
{
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> sum{0};
        pool.run(round + 1, [&](std::size_t) { ++sum; });
        EXPECT_EQ(sum.load(), round + 1);
    }
}

TEST(ThreadPool, ZeroTasksIsANoop)
{
    ThreadPool pool(4);
    pool.run(0, [](std::size_t) { FAIL() << "task ran"; });
}

TEST(ThreadPool, PropagatesTaskExceptions)
{
    for (int workers : {1, 4}) {
        ThreadPool pool(workers);
        EXPECT_THROW(pool.run(16,
                              [](std::size_t i) {
                                  if (i == 7)
                                      throw std::runtime_error("boom");
                              }),
                     std::runtime_error);
        // The pool survives a throwing batch.
        std::atomic<int> sum{0};
        pool.run(8, [&](std::size_t) { ++sum; });
        EXPECT_EQ(sum.load(), 8);
    }
}

TEST(ThreadPool, ResolveJobsPrefersExplicitRequest)
{
    EXPECT_EQ(resolveJobs(3), 3);
    EXPECT_GE(resolveJobs(0), 1);
}

} // namespace
} // namespace sos
