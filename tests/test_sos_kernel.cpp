/**
 * @file
 * Unit tests for the event-driven SOS kernel: the deterministic event
 * queue, the engine backends the open system schedules onto, and the
 * kernel's worker-count invariance (the SOS_JOBS acceptance check,
 * run in-process via config.jobs).
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "sim/open_system.hh"
#include "sos/event.hh"
#include "sos/kernel.hh"
#include "sos/open_backend.hh"
#include "stats/trace.hh"

namespace sos {
namespace {

SimConfig
fast()
{
    return makeFastConfig();
}

/**
 * A pool that outgrows the machine quickly (arrivals every quarter
 * job), so sample phases actually run. The explicit interarrival also
 * skips the capacity probe, keeping the test fast.
 */
OpenSystemConfig
busySystem(int level, int cores = 1)
{
    OpenSystemConfig config;
    config.level = level;
    config.numCores = cores;
    config.numJobs = 8;
    config.meanJobPaperCycles = 40000000;
    config.meanInterarrivalPaper = config.meanJobPaperCycles / 4;
    config.seed = 91;
    return config;
}

TEST(EventQueue, PopsInCycleOrder)
{
    EventQueue queue;
    queue.push(EventKind::JobArrival, 300, 2);
    queue.push(EventKind::JobArrival, 100, 0);
    queue.push(EventKind::JobArrival, 200, 1);
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.pop().index, 0);
    EXPECT_EQ(queue.pop().index, 1);
    EXPECT_EQ(queue.pop().index, 2);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SameCyclePopsInPushOrder)
{
    // The (cycle, seq) order is the determinism contract: two events
    // scheduled for the same cycle pop in scheduling order, never in
    // heap-internal order.
    EventQueue queue;
    queue.push(EventKind::PhaseComplete, 500, 10);
    queue.push(EventKind::JobArrival, 500, 11);
    queue.push(EventKind::BackoffTimer, 500, 12);
    queue.push(EventKind::JobDeparture, 400, 13);
    EXPECT_EQ(queue.pop().kind, EventKind::JobDeparture);
    EXPECT_EQ(queue.pop().kind, EventKind::PhaseComplete);
    EXPECT_EQ(queue.pop().kind, EventKind::JobArrival);
    EXPECT_EQ(queue.pop().kind, EventKind::BackoffTimer);
}

TEST(EventQueue, SequenceNumbersAreMonotonic)
{
    EventQueue queue;
    const std::uint64_t a = queue.push(EventKind::JobArrival, 7);
    const std::uint64_t b = queue.push(EventKind::JobArrival, 3);
    EXPECT_LT(a, b);
    EXPECT_EQ(queue.top().seq, b); // earliest cycle, later push
}

TEST(EventQueue, TimerGenerationsSurviveTheHeap)
{
    EventQueue queue;
    queue.push(EventKind::BackoffTimer, 900, -1, 4);
    queue.push(EventKind::BackoffTimer, 800, -1, 5);
    EXPECT_EQ(queue.pop().generation, 5u);
    EXPECT_EQ(queue.pop().generation, 4u);
}

TEST(OpenBackend, SpreadFillsCoresInIndexOrder)
{
    const SimConfig sim = fast();
    MachineBackend backend(sim.machineFor(2, 2),
                           sim.timesliceCycles());
    EXPECT_EQ(backend.capacity(), 4);
    const auto groups = backend.spread({0, 1, 2});
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(groups[1], (std::vector<int>{2}));
}

TEST(OpenBackend, TrivialCandidateCoversTheWholePool)
{
    const SimConfig sim = fast();
    TimesliceBackend backend(sim.machineFor(3, 1),
                             sim.timesliceCycles());
    const OpenCandidate candidate = backend.trivialCandidate(2);
    ASSERT_EQ(candidate.groups.size(), 1u);
    EXPECT_EQ(candidate.groups[0], (std::vector<int>{0, 1}));
    EXPECT_FALSE(candidate.key.empty());
    // The schedule wraps, so any period position yields a tuple.
    for (std::uint64_t t = 0; t < 4; ++t)
        EXPECT_FALSE(candidate.coreTupleAt(0, t).empty());
}

TEST(OpenBackend, DrawCandidatesIsDeterministicAndDistinct)
{
    const SimConfig sim = fast();
    TimesliceBackend backend(sim.machineFor(2, 1),
                             sim.timesliceCycles());
    Rng rng_a(1234);
    Rng rng_b(1234);
    const auto a = backend.drawCandidates(5, 6, rng_a);
    const auto b = backend.drawCandidates(5, 6, rng_b);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    std::set<std::string> keys;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key, b[i].key);
        EXPECT_EQ(a[i].label, b[i].label);
        keys.insert(a[i].key);
    }
    EXPECT_EQ(keys.size(), a.size()); // deduplicated by key
    EXPECT_GT(backend.windowSlices(5), 0u);
}

TEST(OpenBackend, MachineCandidatesAssignEveryJobToOneCore)
{
    const SimConfig sim = fast();
    MachineBackend backend(sim.machineFor(2, 2),
                           sim.timesliceCycles());
    Rng rng(99);
    const auto candidates = backend.drawCandidates(6, 5, rng);
    ASSERT_FALSE(candidates.empty());
    for (const OpenCandidate &candidate : candidates) {
        ASSERT_EQ(candidate.groups.size(), 2u);
        std::set<int> seen;
        for (const auto &group : candidate.groups)
            seen.insert(group.begin(), group.end());
        EXPECT_EQ(seen.size(), 6u); // a partition of the pool
        EXPECT_EQ(*seen.begin(), 0);
        EXPECT_EQ(*seen.rbegin(), 5);
    }
}

TEST(SosKernel, OpenRunOnCmpBackendCompletesAndSamples)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = busySystem(2, 2);
    const auto trace = makeArrivalTrace(sim, config);
    const auto result =
        runOpenSystem(sim, config, trace, OpenPolicy::Sos);
    EXPECT_EQ(result.completed, config.numJobs);
    EXPECT_GT(result.samplePhases, 0);
    EXPECT_GT(result.sampleCycles, 0u);
    for (std::uint64_t response : result.responseByArrival)
        EXPECT_GT(response, 0u);
}

TEST(SosKernel, OpenRunIsInvariantAcrossWorkerCounts)
{
    // The fork-profiled sample phases fan out through the parallel
    // runner; results and the decision trace must be bit-identical
    // whether one worker or four profile the candidates.
    const OpenSystemConfig config = busySystem(3);
    SimConfig serial = fast();
    serial.jobs = 1;
    SimConfig parallel = fast();
    parallel.jobs = 4;
    const auto trace = makeArrivalTrace(serial, config);

    stats::EventTrace events_serial;
    stats::EventTrace events_parallel;
    const auto a = runOpenSystem(serial, config, trace,
                                 OpenPolicy::Sos, &events_serial);
    const auto b = runOpenSystem(parallel, config, trace,
                                 OpenPolicy::Sos, &events_parallel);

    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.samplePhases, b.samplePhases);
    EXPECT_EQ(a.sampleCycles, b.sampleCycles);
    ASSERT_EQ(a.responseByArrival.size(), b.responseByArrival.size());
    for (std::size_t i = 0; i < a.responseByArrival.size(); ++i)
        EXPECT_EQ(a.responseByArrival[i], b.responseByArrival[i]);
    EXPECT_EQ(events_serial.render(), events_parallel.render());
    EXPECT_GT(a.samplePhases, 0); // the check must exercise sampling
}

TEST(SosKernel, FreshKernelStartsIdle)
{
    SosKernel kernel;
    EXPECT_EQ(kernel.phase(), SosKernel::Phase::Idle);
    EXPECT_EQ(kernel.samplePhaseCycles(), 0u);
    EXPECT_TRUE(kernel.profiles().empty());
    EXPECT_TRUE(kernel.symbiosWs().empty());
}

} // namespace
} // namespace sos
