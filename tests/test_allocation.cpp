/** @file Unit tests for hierarchical context-allocation plans. */

#include <gtest/gtest.h>

#include <set>

#include "core/allocation.hh"

namespace sos {
namespace {

TEST(AllocationPlan, TotalsAndLabel)
{
    AllocationPlan plan;
    plan.threadsPerJob = {1, 2, 1};
    EXPECT_EQ(plan.totalUnits(), 4);
    EXPECT_EQ(plan.label(), "[1,2,1]");
}

TEST(EnumerateAllocationPlans, NonAdaptiveIsSingleton)
{
    const auto plans =
        enumerateAllocationPlans({false, false, false}, 2, 2);
    ASSERT_EQ(plans.size(), 1u);
    EXPECT_EQ(plans.front().threadsPerJob,
              (std::vector<int>{1, 1, 1}));
}

TEST(EnumerateAllocationPlans, AdaptiveJobSweepsThreadCounts)
{
    // Section 7's SMT level 2 mix: CG, mt_ARRAY, EP.
    const auto plans =
        enumerateAllocationPlans({false, true, false}, 2, 2);
    ASSERT_EQ(plans.size(), 2u);
    EXPECT_EQ(plans[0].threadsPerJob, (std::vector<int>{1, 1, 1}));
    EXPECT_EQ(plans[1].threadsPerJob, (std::vector<int>{1, 2, 1}));
}

TEST(EnumerateAllocationPlans, TwoAdaptiveJobsCrossProduct)
{
    // Section 7's EP/ARRAY example at SMT 3: both jobs adaptive.
    const auto plans = enumerateAllocationPlans({true, true}, 3, 3);
    // 9 combinations minus (1,1) which cannot cover 3 contexts.
    EXPECT_EQ(plans.size(), 8u);
    std::set<std::vector<int>> seen;
    for (const auto &plan : plans) {
        EXPECT_GE(plan.totalUnits(), 3);
        for (int t : plan.threadsPerJob) {
            EXPECT_GE(t, 1);
            EXPECT_LE(t, 3);
        }
        seen.insert(plan.threadsPerJob);
    }
    EXPECT_EQ(seen.size(), plans.size());
    EXPECT_TRUE(seen.count({1, 2}));
    EXPECT_TRUE(seen.count({2, 1}));
    EXPECT_TRUE(seen.count({3, 3})); // the "alternate 3 with 3" case
}

TEST(EnumerateAllocationPlans, RespectsMaxThreadsPerJob)
{
    const auto plans = enumerateAllocationPlans({true, false}, 2, 1);
    ASSERT_EQ(plans.size(), 1u); // adaptive job capped at 1 thread
    EXPECT_EQ(plans.front().totalUnits(), 2);
}

TEST(EnumerateAllocationPlans, ImpossibleCoverageIsFatal)
{
    EXPECT_DEATH(enumerateAllocationPlans({false}, 2, 2), "cover");
}

} // namespace
} // namespace sos
