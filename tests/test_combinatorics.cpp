/**
 * @file
 * Unit tests for the schedule-space combinatorics, anchored on the
 * paper's Table 2 counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/combinatorics.hh"
#include "common/rng.hh"

namespace sos {
namespace {

TEST(Factorial, SmallValues)
{
    EXPECT_EQ(factorial(0), 1u);
    EXPECT_EQ(factorial(1), 1u);
    EXPECT_EQ(factorial(5), 120u);
    EXPECT_EQ(factorial(12), 479001600u);
}

TEST(Binomial, KnownValues)
{
    EXPECT_EQ(binomial(5, 2), 10u);
    EXPECT_EQ(binomial(10, 0), 1u);
    EXPECT_EQ(binomial(10, 10), 1u);
    EXPECT_EQ(binomial(4, 7), 0u);
    EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Binomial, Symmetry)
{
    for (int n = 1; n <= 20; ++n) {
        for (int k = 0; k <= n; ++k)
            EXPECT_EQ(binomial(n, k), binomial(n, n - k));
    }
}

// The paper's Table 2, full-swap rows: partitions into equal tuples.
TEST(EqualPartitionCount, PaperTable2FullSwapRows)
{
    EXPECT_EQ(equalPartitionCount(4, 2), 3u);     // Jsb(4,2,2)
    EXPECT_EQ(equalPartitionCount(10, 2), 945u);  // Jpb(10,2,2)
    EXPECT_EQ(equalPartitionCount(6, 3), 10u);    // Jsb(6,3,3)
    EXPECT_EQ(equalPartitionCount(8, 4), 35u);    // Jsb(8,4,4)
    EXPECT_EQ(equalPartitionCount(12, 4), 5775u); // Jsb(12,4,4)
    EXPECT_EQ(equalPartitionCount(12, 6), 462u);  // Jsb(12,6,6)
}

// The paper's Table 2, rotating rows: circular orders.
TEST(CircularOrderCount, PaperTable2RotatingRows)
{
    EXPECT_EQ(circularOrderCount(5), 12u);   // Jsb(5,2,2) / Jsb(5,2,1)
    EXPECT_EQ(circularOrderCount(6), 60u);   // Jsb(6,3,1) / Jsl(6,3,1)
    EXPECT_EQ(circularOrderCount(8), 2520u); // Jsb(8,4,1) / Jsl(8,4,1)
}

TEST(EqualPartitionCount, DegenerateCases)
{
    EXPECT_EQ(equalPartitionCount(4, 4), 1u);
    EXPECT_EQ(equalPartitionCount(4, 1), 1u);
    EXPECT_EQ(equalPartitionCount(2, 2), 1u);
}

TEST(EnumerateEqualPartitions, CountsMatchFormula)
{
    for (const auto &[n, k] :
         std::initializer_list<std::pair<int, int>>{
             {4, 2}, {6, 2}, {6, 3}, {8, 4}, {9, 3}, {10, 5}}) {
        const auto all = enumerateEqualPartitions(n, k);
        EXPECT_EQ(all.size(), equalPartitionCount(n, k))
            << "n=" << n << " k=" << k;
    }
}

TEST(EnumerateEqualPartitions, AllDistinctAndCanonical)
{
    const auto all = enumerateEqualPartitions(8, 4);
    std::set<Partition> seen(all.begin(), all.end());
    EXPECT_EQ(seen.size(), all.size());
    for (const Partition &p : all) {
        EXPECT_EQ(canonicalPartition(p), p);
        std::set<int> members;
        for (const auto &group : p) {
            EXPECT_EQ(group.size(), 4u);
            members.insert(group.begin(), group.end());
        }
        EXPECT_EQ(members.size(), 8u);
    }
}

TEST(EnumerateCircularOrders, CountsMatchFormula)
{
    for (int n : {3, 4, 5, 6, 7}) {
        const auto all = enumerateCircularOrders(n);
        EXPECT_EQ(all.size(), circularOrderCount(n)) << "n=" << n;
    }
}

TEST(EnumerateCircularOrders, CanonicalForm)
{
    for (const auto &order : enumerateCircularOrders(6)) {
        EXPECT_EQ(order.front(), 0);
        EXPECT_LT(order[1], order.back());
        EXPECT_EQ(canonicalCircular(order), order);
    }
}

TEST(CanonicalCircular, RotationInvariant)
{
    const std::vector<int> base{0, 3, 1, 4, 2};
    std::vector<int> rotated{1, 4, 2, 0, 3};
    EXPECT_EQ(canonicalCircular(base), canonicalCircular(rotated));
}

TEST(CanonicalCircular, ReflectionInvariant)
{
    const std::vector<int> base{0, 3, 1, 4, 2};
    std::vector<int> reflected(base.rbegin(), base.rend());
    EXPECT_EQ(canonicalCircular(base), canonicalCircular(reflected));
}

TEST(CanonicalPartition, OrderInvariant)
{
    const Partition a{{2, 0, 1}, {5, 4, 3}};
    const Partition b{{3, 4, 5}, {1, 2, 0}};
    EXPECT_EQ(canonicalPartition(a), canonicalPartition(b));
}

TEST(RandomEqualPartition, CanonicalAndValid)
{
    Rng rng(123);
    for (int trial = 0; trial < 50; ++trial) {
        const Partition p = randomEqualPartition(6, 3, rng);
        EXPECT_EQ(p.size(), 2u);
        EXPECT_EQ(canonicalPartition(p), p);
        std::set<int> members;
        for (const auto &group : p)
            members.insert(group.begin(), group.end());
        EXPECT_EQ(members.size(), 6u);
    }
}

TEST(RandomEqualPartition, CoversTheSpace)
{
    // Jsb(6,3,3) has exactly 10 partitions; random draws should reach
    // all of them in a modest number of trials.
    Rng rng(7);
    std::set<Partition> seen;
    for (int trial = 0; trial < 400; ++trial)
        seen.insert(randomEqualPartition(6, 3, rng));
    EXPECT_EQ(seen.size(), 10u);
}

TEST(RandomCircularOrder, CanonicalAndCovers)
{
    Rng rng(9);
    std::set<std::vector<int>> seen;
    for (int trial = 0; trial < 600; ++trial) {
        const auto order = randomCircularOrder(5, rng);
        EXPECT_EQ(canonicalCircular(order), order);
        seen.insert(order);
    }
    EXPECT_EQ(seen.size(), 12u); // all (5-1)!/2
}

TEST(GcdInt, Basics)
{
    EXPECT_EQ(gcdInt(12, 8), 4);
    EXPECT_EQ(gcdInt(7, 3), 1);
    EXPECT_EQ(gcdInt(6, 6), 6);
    EXPECT_EQ(gcdInt(1, 9), 1);
}

/** Property: enumeration size equals the closed-form count. */
class PartitionSweep
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(PartitionSweep, EnumerationMatchesCount)
{
    const auto [n, k] = GetParam();
    EXPECT_EQ(enumerateEqualPartitions(n, k).size(),
              equalPartitionCount(n, k));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PartitionSweep,
                         ::testing::Values(std::pair{2, 1}, std::pair{4, 2},
                                           std::pair{6, 2}, std::pair{6, 3},
                                           std::pair{8, 2}, std::pair{8, 4},
                                           std::pair{9, 3},
                                           std::pair{10, 5},
                                           std::pair{12, 6},
                                           std::pair{12, 4}));

} // namespace
} // namespace sos
