/**
 * @file
 * Adapter-equivalence goldens: the closed-system experiment drivers
 * (batch, hierarchical, machine) must keep producing byte-identical
 * run manifests as their SOS loops migrate onto the shared kernel.
 *
 * The golden files under tests/golden/ were generated from the
 * pre-kernel drivers (set SOS_REGEN_GOLDEN=1 to regenerate); any
 * refactor of the sample/symbios pipeline must reproduce them to the
 * byte, for every worker count (the SOS_JOBS=1/2/8 acceptance check,
 * run in-process via config.jobs).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>

#include "sim/batch_experiment.hh"
#include "sim/hierarchical_experiment.hh"
#include "sim/machine_experiment.hh"
#include "sim/params_io.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"

namespace sos {
namespace {

/** Render a manifest with everything host-dependent pinned. */
std::string
render(const char *tool, const SimConfig &config,
       const stats::Registry &registry)
{
    stats::Manifest manifest;
    manifest.tool = tool;
    manifest.gitRev = "golden"; // goldens must not depend on the
                                // building checkout's revision
    manifest.seed = config.seed;
    manifest.config = configPairs(config);
    return renderManifest(manifest, registry);
}

std::string
batchManifest(int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    stats::Registry registry;
    const stats::Group experiments =
        stats::Group(registry).group("experiments");
    std::string document;
    {
        // Both a full-space sweep (3 of 3 schedules) and a sampled
        // one (10 of 60), the two shapes the kernel must preserve.
        BatchExperiment small(experimentByLabel("Jsb(4,2,2)"), config);
        BatchExperiment sampled(experimentByLabel("Jsb(6,3,1)"),
                                config);
        for (BatchExperiment *exp : {&small, &sampled}) {
            exp->runSamplePhase();
            exp->runSymbiosValidation();
            exp->publishStats(experiments.group(
                stats::sanitizeSegment(exp->spec().label)));
        }
        // Stats bind to the experiments' storage: render in scope.
        document = render("adapter_equivalence_batch", config,
                          registry);
    }
    return document;
}

std::string
hierarchicalManifest(int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    stats::Registry registry;
    const stats::Group experiments =
        stats::Group(registry).group("experiments");
    std::string document;
    {
        const HierarchicalSpec &spec = hierarchicalExperiments()[0];
        HierarchicalExperiment exp(spec, config, 6);
        exp.run(200000);
        exp.publishStats(
            experiments.group(stats::sanitizeSegment(spec.label)));
        document = render("adapter_equivalence_hierarchical", config,
                          registry);
    }
    return document;
}

std::string
machineManifest(int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    stats::Registry registry;
    const stats::Group experiments =
        stats::Group(registry).group("experiments");
    std::string document;
    {
        MachineExperimentSpec spec;
        spec.label = "Jm(4,2,2,2)";
        spec.workloads = {"FP", "MG", "GCC", "IS"};
        spec.numCores = 2;
        spec.level = 2;
        spec.swap = 2;
        MachineExperiment exp(spec, config);
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        exp.publishStats(
            experiments.group(stats::sanitizeSegment(spec.label)));
        document = render("adapter_equivalence_machine", config,
                          registry);
    }
    return document;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(SOS_GOLDEN_DIR) + "/" + name + ".json";
}

void
checkAgainstGolden(const std::string &name,
                   const std::function<std::string(int)> &make)
{
    // Worker-count invariance first: the golden would be meaningless
    // if the document depended on the sweep's thread count.
    const std::string document = make(1);
    EXPECT_EQ(make(2), document) << name << ": jobs=2 differs";
    EXPECT_EQ(make(8), document) << name << ": jobs=8 differs";

    const std::string path = goldenPath(name);
    if (std::getenv("SOS_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << document;
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (generate with SOS_REGEN_GOLDEN=1)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(document, golden.str())
        << name << ": manifest diverged from the pre-kernel driver";
}

TEST(AdapterEquivalence, BatchManifestMatchesGolden)
{
    checkAgainstGolden("batch", batchManifest);
}

TEST(AdapterEquivalence, HierarchicalManifestMatchesGolden)
{
    checkAgainstGolden("hierarchical", hierarchicalManifest);
}

TEST(AdapterEquivalence, MachineManifestMatchesGolden)
{
    checkAgainstGolden("machine", machineManifest);
}

} // namespace
} // namespace sos
