/** @file Unit tests for weighted speedup and calibration. */

#include <gtest/gtest.h>

#include "metrics/calibrator.hh"
#include "metrics/weighted_speedup.hh"
#include "sched/jobmix.hh"

namespace sos {
namespace {

TEST(WeightedSpeedup, PaperWorkedExampleFairShare)
{
    // Section 4: solo IPCs 2 and 1; coscheduled for 1 M cycles the
    // jobs contribute 1 M and 0.5 M instructions -> WS = 1.
    const std::vector<JobProgress> jobs{{1000000, 2.0}, {500000, 1.0}};
    EXPECT_DOUBLE_EQ(weightedSpeedup(jobs, 1000000), 1.0);
}

TEST(WeightedSpeedup, PaperWorkedExampleSpeedup)
{
    // ...and 1.2 M / 0.6 M instructions -> WS = 1.2.
    const std::vector<JobProgress> jobs{{1200000, 2.0}, {600000, 1.0}};
    EXPECT_DOUBLE_EQ(weightedSpeedup(jobs, 1000000), 1.2);
}

TEST(WeightedSpeedup, SoloJobIsOne)
{
    const std::vector<JobProgress> jobs{{500000, 0.5}};
    EXPECT_DOUBLE_EQ(weightedSpeedup(jobs, 1000000), 1.0);
}

TEST(WeightedSpeedup, TimeSharingIsOneEvenWhenUnfair)
{
    // Two jobs time-shared 80/20 on one context: each contributes its
    // solo IPC for its share; WS is still 1 (Section 4's point).
    const std::vector<JobProgress> jobs{
        {static_cast<std::uint64_t>(0.8 * 1000000 * 2.0), 2.0},
        {static_cast<std::uint64_t>(0.2 * 1000000 * 1.0), 1.0}};
    EXPECT_DOUBLE_EQ(weightedSpeedup(jobs, 1000000), 1.0);
}

TEST(WeightedSpeedup, PathologicalInterferenceBelowOne)
{
    const std::vector<JobProgress> jobs{{300000, 2.0}, {200000, 1.0}};
    EXPECT_LT(weightedSpeedup(jobs, 1000000), 1.0);
}

TEST(WeightedSpeedup, HighIpcThreadCannotInflate)
{
    // Favouring the high-IPC job does not raise WS beyond what the
    // low-IPC job loses: normalization equalizes contributions.
    const std::vector<JobProgress> favored{{1900000, 2.0}, {50000, 1.0}};
    const std::vector<JobProgress> fair{{1000000, 2.0}, {500000, 1.0}};
    EXPECT_LE(weightedSpeedup(favored, 1000000),
              weightedSpeedup(fair, 1000000) + 1e-9);
}

TEST(WeightedSpeedup, MixOverloadUsesJobReferences)
{
    JobMix mix(3);
    mix.addJob("FP");
    mix.addJob("GCC");
    mix.job(0).soloIpc = 2.0;
    mix.job(1).soloIpc = 0.5;
    const double ws = weightedSpeedup(mix, {1000000, 250000}, 1000000);
    EXPECT_DOUBLE_EQ(ws, 1.0);
}

TEST(WeightedSpeedup, RequiresCalibration)
{
    const std::vector<JobProgress> jobs{{100, 0.0}};
    EXPECT_DEATH(weightedSpeedup(jobs, 1000), "calibrated");
}

TEST(Calibrator, ProducesPositiveIpc)
{
    Calibrator calib(CoreParams{}, MemParams{}, 20000, 50000);
    const double ipc = calib.soloIpc("EP");
    EXPECT_GT(ipc, 0.3);
    EXPECT_LT(ipc, 8.0);
}

TEST(Calibrator, CachesResults)
{
    Calibrator calib(CoreParams{}, MemParams{}, 20000, 50000);
    const double first = calib.soloIpc("GCC");
    const double second = calib.soloIpc("GCC");
    EXPECT_DOUBLE_EQ(first, second);
}

TEST(Calibrator, DeterministicAcrossInstances)
{
    Calibrator a(CoreParams{}, MemParams{}, 20000, 50000);
    Calibrator b(CoreParams{}, MemParams{}, 20000, 50000);
    EXPECT_DOUBLE_EQ(a.soloIpc("MG"), b.soloIpc("MG"));
}

TEST(Calibrator, RanksComputeAboveMemoryBound)
{
    Calibrator calib(CoreParams{}, MemParams{}, 40000, 100000);
    EXPECT_GT(calib.soloIpc("EP"), calib.soloIpc("IS"));
    EXPECT_GT(calib.soloIpc("FP"), calib.soloIpc("GCC"));
}

TEST(Calibrator, MultithreadedReferenceUsesAllThreads)
{
    CoreParams params;
    params.numContexts = 2;
    Calibrator calib(params, MemParams{}, 30000, 80000);
    const double one = calib.soloIpc("mt_EP", 1);
    const double two = calib.soloIpc("mt_EP", 2);
    EXPECT_GT(two, one * 1.1); // the parallel job uses both contexts
}

TEST(Calibrator, CalibratesWholeMix)
{
    JobMix mix(4);
    mix.addJob("FP");
    mix.addJob("GO");
    Calibrator calib(CoreParams{}, MemParams{}, 20000, 50000);
    calib.calibrate(mix);
    EXPECT_GT(mix.job(0).soloIpc, 0.0);
    EXPECT_GT(mix.job(1).soloIpc, 0.0);
}

} // namespace
} // namespace sos
