/**
 * @file
 * The JSONL trace reader: EventTrace round-trips, and every malformed
 * input is a named TraceReadError with file:line context (mirroring
 * MachineConfigError's contract in test_machine_config.cpp).
 */

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/trace.hh"
#include "stats/trace_reader.hh"

namespace {

using namespace sos;
using stats::TraceEvent;
using stats::TraceReadError;

std::vector<TraceEvent>
parse(const std::string &text,
      const std::vector<std::string> &known_types = {})
{
    return stats::parseTraceText(text, "test.jsonl", known_types);
}

/** EXPECT that parsing throws and what() contains every needle. */
void
expectError(const std::string &text,
            const std::vector<std::string> &needles,
            const std::vector<std::string> &known_types = {})
{
    try {
        parse(text, known_types);
        FAIL() << "expected TraceReadError for: " << text;
    } catch (const TraceReadError &err) {
        const std::string what = err.what();
        for (const std::string &needle : needles) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "missing '" << needle << "' in: " << what;
        }
    }
}

TEST(TraceReader, RoundTripsARenderedEventTrace)
{
    stats::EventTrace trace;
    trace.event("sample_candidate")
        .field("experiment", "Jsb(6,3,3)")
        .field("index", std::uint64_t{3})
        .field("sample_ws", 1.625)
        .field("little", false)
        .field("note", "a \"quoted\" back\\slash");
    trace.event("symbios_result").field("ws", 1.5);

    const std::vector<TraceEvent> events = parse(trace.render());
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, "sample_candidate");
    EXPECT_EQ(events[0].line, 1);
    EXPECT_EQ(events[0].text("experiment"), "Jsb(6,3,3)");
    EXPECT_EQ(events[0].number("index"), 3.0);
    EXPECT_EQ(events[0].number("sample_ws"), 1.625);
    EXPECT_EQ(events[0].number("little"), 0.0);
    EXPECT_EQ(events[0].text("note"), "a \"quoted\" back\\slash");
    EXPECT_EQ(events[1].type, "symbios_result");
    EXPECT_EQ(events[1].line, 2);
    EXPECT_EQ(events[1].number("ws"), 1.5);
}

TEST(TraceReader, SkipsBlankLines)
{
    const auto events =
        parse("\n{\"event\":\"a\",\"x\":1}\n\n{\"event\":\"b\",\"x\":2}\n\n");
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].line, 2);
    EXPECT_EQ(events[1].line, 4);
}

TEST(TraceReader, MalformedLinesAreNamedErrors)
{
    expectError("not json\n", {"test.jsonl:1"});
    expectError("{\"event\":\"a\",\"x\":1}\n{\"event\"\n",
                {"test.jsonl:2"});
    expectError("{}\n", {"test.jsonl:1", "no fields"});
    expectError("{\"event\":\"a\",\"x\":1} trailing\n",
                {"test.jsonl:1", "trailing"});
    expectError("{\"event\":\"a\",\"x\":bogus}\n",
                {"test.jsonl:1", "bogus"});
    expectError("{\"event\":\"a\",\"x\":{\"nested\":1}}\n",
                {"test.jsonl:1"});
}

TEST(TraceReader, TruncatedEventIsANamedError)
{
    // A file cut off mid-object (e.g. a killed run) must not parse.
    expectError("{\"event\":\"a\",\"x\":1}\n{\"event\":\"b\",\"x\":",
                {"test.jsonl:2"});
    expectError("{\"event\":\"a\",\"x\":1}\n{\"event\":\"b\"",
                {"test.jsonl:2"});
}

TEST(TraceReader, EventsNeedATypeField)
{
    expectError("{\"x\":1}\n", {"test.jsonl:1", "event"});
    expectError("{\"event\":7}\n", {"test.jsonl:1", "string"});
}

TEST(TraceReader, UnknownEventTypesAreRejectedWhenSchemaDeclared)
{
    const std::string line = "{\"event\":\"renamed_thing\",\"x\":1}\n";
    // Without a declared schema anything parses...
    EXPECT_EQ(parse(line).size(), 1u);
    // ...with one, unknown types fail and the error lists the schema.
    expectError(line,
                {"test.jsonl:1", "unknown event type", "renamed_thing",
                 "sample_candidate", "symbios_result"},
                {"sample_candidate", "symbios_result"});
}

TEST(TraceReader, MissingFieldAccessorsThrowNamedErrors)
{
    const auto events = parse("{\"event\":\"a\",\"n\":1,\"s\":\"x\"}\n");
    ASSERT_EQ(events.size(), 1u);
    EXPECT_TRUE(events[0].has("n"));
    EXPECT_FALSE(events[0].has("missing"));
    EXPECT_THROW((void)events[0].number("missing"), TraceReadError);
    EXPECT_THROW((void)events[0].text("missing"), TraceReadError);
    // Type confusion is an error too, not a silent 0/"".
    EXPECT_THROW((void)events[0].number("s"), TraceReadError);
    EXPECT_THROW((void)events[0].text("n"), TraceReadError);
}

TEST(TraceReader, ReadsFilesAndNamesThemInErrors)
{
    const std::string path = ::testing::TempDir() + "trace_reader.jsonl";
    {
        std::ofstream out(path);
        out << "{\"event\":\"a\",\"x\":4}\n{\"event\":\"b\",\"y\":";
    }
    try {
        stats::readTraceFile(path);
        FAIL() << "expected TraceReadError";
    } catch (const TraceReadError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find(path + ":2"), std::string::npos) << what;
    }
    std::remove(path.c_str());

    EXPECT_THROW(stats::readTraceFile("/no/such/trace.jsonl"),
                 TraceReadError);
}

} // namespace
