/**
 * @file
 * Property sweeps over the full experiment catalogue (no simulation):
 * every spec must yield a well-formed mix and a fair, distinct,
 * correctly-sized schedule sample.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "sched/schedule.hh"
#include "sim/experiment_defs.hh"
#include "sim/sim_config.hh"

namespace sos {
namespace {

class SpecSweep : public ::testing::TestWithParam<const char *>
{
  protected:
    const ExperimentSpec &
    spec() const
    {
        return experimentByLabel(GetParam());
    }
};

TEST_P(SpecSweep, MixMatchesSpec)
{
    JobMix mix = spec().makeMix(7);
    EXPECT_EQ(mix.numUnits(), spec().numUnits());
    // Every unit resolves and names a real workload.
    for (int u = 0; u < mix.numUnits(); ++u) {
        const ThreadRef ref = mix.unit(u);
        ASSERT_NE(ref.job, nullptr);
        EXPECT_FALSE(mix.unitName(u).empty());
    }
}

TEST_P(SpecSweep, SampledSchedulesAreFairAndDistinct)
{
    Rng rng(11);
    const ScheduleSpace space(spec().numUnits(), spec().level,
                              spec().swap);
    const auto sample = space.sample(10, rng);
    EXPECT_LE(sample.size(), 10u);
    EXPECT_GE(sample.size(), std::min<std::uint64_t>(
                                 10, space.distinctCount()));

    std::set<std::string> keys;
    for (const Schedule &s : sample) {
        keys.insert(s.key());
        EXPECT_EQ(s.periodTimeslices(), space.periodTimeslices());
        // Fair: every job appears equally often per period...
        for (int j = 1; j < spec().numUnits(); ++j)
            EXPECT_EQ(s.appearancesPerPeriod(j),
                      s.appearancesPerPeriod(0));
        // ...and every tuple is exactly the SMT level wide.
        for (const auto &tuple : s.tuples())
            EXPECT_EQ(static_cast<int>(tuple.size()), spec().level);
    }
    EXPECT_EQ(keys.size(), sample.size());
}

TEST_P(SpecSweep, SampleIsSeedDeterministic)
{
    const ScheduleSpace space(spec().numUnits(), spec().level,
                              spec().swap);
    Rng a(5);
    Rng b(5);
    const auto first = space.sample(10, a);
    const auto second = space.sample(10, b);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(first[i].key(), second[i].key());
}

TEST_P(SpecSweep, PaperSampleCyclesAreConsistent)
{
    const ScheduleSpace space(spec().numUnits(), spec().level,
                              spec().swap);
    const std::uint64_t sampled =
        std::min<std::uint64_t>(10, space.distinctCount());
    const std::uint64_t timeslice =
        spec().little ? SimConfig::paperLittleTimeslice
                      : SimConfig::paperTimeslice;
    EXPECT_EQ(paperSamplePhaseCycles(spec()),
              sampled * space.periodTimeslices() * timeslice);
}

INSTANTIATE_TEST_SUITE_P(
    AllExperiments, SpecSweep,
    ::testing::Values("Jsb(4,2,2)", "Jsb(5,2,2)", "Jsb(5,2,1)",
                      "Jpb(10,2,2)", "J2pb(10,2,2)", "Jsb(6,3,3)",
                      "Jsb(6,3,1)", "Jsl(6,3,1)", "Jsb(8,4,4)",
                      "Jsb(8,4,1)", "Jsl(8,4,1)", "Jsb(12,4,4)",
                      "Jsb(12,6,6)"));

} // namespace
} // namespace sos
