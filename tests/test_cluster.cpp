/**
 * @file
 * Cluster-layer regressions: deterministic arrival streams for every
 * arrival process, dispatcher routing invariants, and the cluster's
 * own determinism contract -- identical seeds produce byte-identical
 * decision traces and run manifests at every SOS_JOBS worker count
 * (1, 2, 8), which is what lets the node fan-out parallelize freely.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/arrival.hh"
#include "cluster/cluster.hh"
#include "cluster/dispatch.hh"
#include "sim/params_io.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {
namespace {

ArrivalSpec
smallSpec(const std::string &process)
{
    ArrivalSpec spec;
    spec.process = process;
    spec.numJobs = 64;
    spec.meanInterarrivalCycles = 40000.0;
    spec.meanJobCycles = 60000.0;
    spec.seed = 77;
    return spec;
}

TEST(ClusterArrivals, SameSeedIsByteIdenticalPerProcess)
{
    const SimConfig sim = makeFastConfig();
    for (const std::string &process : arrivalProcessNames()) {
        const std::vector<ClusterArrival> a =
            makeClusterArrivals(sim, smallSpec(process));
        const std::vector<ClusterArrival> b =
            makeClusterArrivals(sim, smallSpec(process));
        EXPECT_EQ(a, b) << process;
        ASSERT_EQ(a.size(), 64u) << process;
        for (std::size_t i = 1; i < a.size(); ++i)
            EXPECT_GE(a[i].arrivalCycle, a[i - 1].arrivalCycle);
        for (const ClusterArrival &arrival : a) {
            EXPECT_GT(arrival.sizeInstructions, 0u);
            EXPECT_EQ(arrival.klass, 0);
            EXPECT_FALSE(arrival.workload.empty());
        }
    }
}

TEST(ClusterArrivals, SeedsAndProcessesChangeTheStream)
{
    const SimConfig sim = makeFastConfig();
    ArrivalSpec other = smallSpec("poisson");
    other.seed = 78;
    EXPECT_NE(makeClusterArrivals(sim, smallSpec("poisson")),
              makeClusterArrivals(sim, other));
    EXPECT_NE(makeClusterArrivals(sim, smallSpec("poisson")),
              makeClusterArrivals(sim, smallSpec("mmpp")));
}

TEST(ClusterArrivals, ClassesAreDrawnAndSized)
{
    const SimConfig sim = makeFastConfig();
    ArrivalSpec spec = smallSpec("poisson");
    spec.numJobs = 200;
    spec.classes = {{"batch", 3.0, 2.0}, {"interactive", 1.0, 0.25}};
    const std::vector<ClusterArrival> arrivals =
        makeClusterArrivals(sim, spec);
    int batch = 0;
    int interactive = 0;
    for (const ClusterArrival &arrival : arrivals) {
        ASSERT_GE(arrival.klass, 0);
        ASSERT_LT(arrival.klass, 2);
        (arrival.klass == 0 ? batch : interactive)++;
    }
    // 3:1 weights; both classes must appear and batch must dominate.
    EXPECT_GT(interactive, 0);
    EXPECT_GT(batch, 2 * interactive);
}

std::vector<NodeView>
threeNodes()
{
    std::vector<NodeView> views(3);
    for (int k = 0; k < 3; ++k)
        views[static_cast<std::size_t>(k)].id = k;
    return views;
}

ClusterArrival
someArrival()
{
    ClusterArrival arrival;
    arrival.workload = "SWIM";
    arrival.sizeInstructions = 100000;
    return arrival;
}

TEST(Dispatchers, RoundRobinCycles)
{
    const auto dispatcher = makeDispatcher("round-robin", 1);
    const std::vector<NodeView> views = threeNodes();
    const ClusterArrival arrival = someArrival();
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(dispatcher->pick(arrival, views), i % 3);
}

TEST(Dispatchers, LeastLoadedPicksSmallestPool)
{
    const auto dispatcher = makeDispatcher("least-loaded", 1);
    std::vector<NodeView> views = threeNodes();
    views[0].poolSize = 2;
    views[1].poolSize = 1;
    views[2].poolSize = 2;
    EXPECT_EQ(dispatcher->pick(someArrival(), views), 1);
    // Pool tie broken by queued work.
    views[1].poolSize = 2;
    views[2].queuedWork = 50;
    views[0].queuedWork = 100;
    views[1].queuedWork = 100;
    EXPECT_EQ(dispatcher->pick(someArrival(), views), 2);
}

TEST(Dispatchers, RandomStaysInRangeAndIsSeeded)
{
    const auto a = makeDispatcher("random", 42);
    const auto b = makeDispatcher("random", 42);
    const std::vector<NodeView> views = threeNodes();
    const ClusterArrival arrival = someArrival();
    for (int i = 0; i < 50; ++i) {
        const int pick = a->pick(arrival, views);
        EXPECT_GE(pick, 0);
        EXPECT_LT(pick, 3);
        EXPECT_EQ(pick, b->pick(arrival, views));
    }
}

TEST(Dispatchers, SignatureFallsBackToLoadWithoutSamples)
{
    // With no counter signatures yet (cycles == 0) the symbiosis
    // terms vanish and the signature policy must degrade to load
    // balancing, not to an arbitrary node.
    const auto dispatcher = makeDispatcher("signature", 1);
    std::vector<NodeView> views = threeNodes();
    views[0].poolSize = 3;
    views[1].poolSize = 3;
    views[2].poolSize = 1;
    EXPECT_EQ(dispatcher->pick(someArrival(), views), 2);
}

TEST(Dispatchers, RegistryListsEveryPolicy)
{
    for (const std::string &name : dispatcherNames())
        EXPECT_EQ(makeDispatcher(name, 7)->name(), name);
}

/** A cluster run small enough for a unit test but with real forks. */
ClusterConfig
smallCluster()
{
    ClusterConfig config;
    config.numNodes = 2;
    config.numJobs = 10;
    config.level = 2;
    config.meanJobPaperCycles = 20000000;
    config.seed = 9001;
    config.classes = {{"batch", 1.0, 1.5}, {"interactive", 1.0, 0.5}};
    return config;
}

/** One cluster run rendered as (decision trace, manifest). */
struct Rendered
{
    std::string trace;
    std::string manifest;
    ClusterResult result;
};

Rendered
renderRun(int workers)
{
    SimConfig sim = makeFastConfig();
    sim.jobs = workers;
    Cluster cluster(sim, smallCluster());
    stats::EventTrace events;
    Rendered rendered;
    rendered.result = cluster.run(&events);

    stats::Registry registry;
    cluster.publishStats(stats::Group(registry).group("cluster"));
    stats::Manifest manifest;
    manifest.tool = "cluster_determinism";
    manifest.gitRev = "golden"; // pin the only host-dependent field
    manifest.seed = sim.seed;
    manifest.config = configPairs(sim);
    rendered.trace = events.render();
    rendered.manifest = renderManifest(manifest, registry);
    return rendered;
}

TEST(ClusterDeterminism, WorkerCountsAreByteIdentical)
{
    // The core determinism contract: SOS_JOBS=1/2/8 only change how
    // many nodes advance concurrently, never what they compute.
    const Rendered serial = renderRun(1);
    EXPECT_FALSE(serial.trace.empty());
    for (int workers : {2, 8}) {
        const Rendered threaded = renderRun(workers);
        EXPECT_EQ(serial.trace, threaded.trace) << workers;
        EXPECT_EQ(serial.manifest, threaded.manifest) << workers;
    }
}

TEST(ClusterDeterminism, RunDrainsEveryArrival)
{
    const Rendered run = renderRun(2);
    const ClusterResult &result = run.result;
    EXPECT_EQ(result.completed, 10u);
    EXPECT_GT(result.epochs, 0u);
    std::size_t dispatched = 0;
    for (const ClusterNodeSummary &node : result.nodes) {
        EXPECT_EQ(node.dispatched, node.completed);
        EXPECT_GE(node.utilization, 0.0);
        EXPECT_LE(node.utilization, 1.0);
        dispatched += node.dispatched;
    }
    EXPECT_EQ(dispatched, 10u);
    for (std::size_t i = 0; i < result.responseByArrival.size(); ++i) {
        EXPECT_GT(result.responseByArrival[i], 0u) << i;
        EXPECT_GE(result.nodeByArrival[i], 0) << i;
        EXPECT_LT(result.nodeByArrival[i], 2) << i;
    }
}

TEST(ClusterDeterminism, ManifestCarriesPercentilesAndNodes)
{
    const Rendered run = renderRun(1);
    // Cluster-wide and per-class streaming quantiles plus per-node
    // groups -- the shape the CI schema check validates end-to-end.
    EXPECT_NE(run.manifest.find("\"response_cycles\""),
              std::string::npos);
    EXPECT_NE(run.manifest.find("\"p95\""), std::string::npos);
    EXPECT_NE(run.manifest.find("\"batch\""), std::string::npos);
    EXPECT_NE(run.manifest.find("\"interactive\""),
              std::string::npos);
    EXPECT_NE(run.manifest.find("\"node0\""), std::string::npos);
    EXPECT_NE(run.manifest.find("\"node1\""), std::string::npos);
    EXPECT_NE(run.manifest.find("\"utilization\""),
              std::string::npos);
    // Dispatch decisions are tagged with their target node.
    EXPECT_NE(run.trace.find("\"event\":\"dispatch_epoch\""),
              std::string::npos);
    EXPECT_NE(run.trace.find("\"event\":\"dispatch\""),
              std::string::npos);
    EXPECT_NE(run.trace.find("\"node\":"), std::string::npos);
}

} // namespace
} // namespace sos
