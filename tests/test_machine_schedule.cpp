/**
 * @file
 * MachineSchedule / MachineScheduleSpace tests: the distinct counts
 * the header advertises, enumeration with canonical-key dedup,
 * core-permutation key invariance, rejection sampling, and the
 * fixed-allocation product used by the allocation policies.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "sched/machine_schedule.hh"

namespace sos {
namespace {

TEST(MachineScheduleSpace, DistinctCountsMatchTheClosedForm)
{
    // Jm(8,2,2,2): 35 partitions x 3 schedules per core-of-4.
    EXPECT_EQ(MachineScheduleSpace(8, 2, 2, 2).distinctCount(), 315u);
    // Jm(8,4,2,2): 105 pairings, one schedule per core-of-2.
    EXPECT_EQ(MachineScheduleSpace(8, 4, 2, 2).distinctCount(), 105u);
    // One core degenerates to the single-core space.
    EXPECT_EQ(MachineScheduleSpace(4, 1, 2, 2).distinctCount(),
              ScheduleSpace(4, 2, 2).distinctCount());
    // Rotation (non-full-swap) schedules per core: Jm(8,2,2,1) is
    // 35 * (C(4,2) partitions... no: ScheduleSpace(4,2,1) circular
    // orders) per core.
    const std::uint64_t per_core =
        ScheduleSpace(4, 2, 1).distinctCount();
    EXPECT_EQ(MachineScheduleSpace(8, 2, 2, 1).distinctCount(),
              35u * per_core * per_core);
}

TEST(MachineScheduleSpace, EnumerationIsDistinctAndComplete)
{
    const MachineScheduleSpace space(8, 4, 2, 2);
    const std::vector<MachineSchedule> all = space.enumerateAll();
    EXPECT_EQ(all.size(), space.distinctCount());
    std::set<std::string> keys;
    for (const MachineSchedule &s : all) {
        EXPECT_TRUE(s.valid());
        EXPECT_EQ(s.numCores(), 4);
        keys.insert(s.key());
    }
    EXPECT_EQ(keys.size(), all.size()) << "duplicate canonical keys";
}

TEST(MachineScheduleSpace, KeyIsInvariantUnderCorePermutation)
{
    // Same groups and per-core schedules, cores swapped: one machine.
    const Partition alloc_a = {{0, 1}, {2, 3}};
    const Partition alloc_b = {{2, 3}, {0, 1}};
    const MachineSchedule a(
        alloc_a, {Schedule::fromPartition({{0, 1}}),
                  Schedule::fromPartition({{2, 3}})});
    const MachineSchedule b(
        alloc_b, {Schedule::fromPartition({{2, 3}}),
                  Schedule::fromPartition({{0, 1}})});
    EXPECT_EQ(a.key(), b.key());
    EXPECT_NE(a.label(), b.label()) << "labels keep the core order";
}

TEST(MachineScheduleSpace, SampleDedupsOnKey)
{
    const MachineScheduleSpace space(8, 2, 2, 2);
    Rng rng(0x5eedULL);
    const std::vector<MachineSchedule> sample = space.sample(20, rng);
    EXPECT_EQ(sample.size(), 20u);
    std::set<std::string> keys;
    for (const MachineSchedule &s : sample)
        keys.insert(s.key());
    EXPECT_EQ(keys.size(), sample.size());
}

TEST(MachineScheduleSpace, SampleReturnsWholeSmallSpace)
{
    const MachineScheduleSpace space(4, 2, 2, 2);
    Rng rng(7);
    // 3 pairings x 1 schedule each: asking for more returns all 3.
    const std::vector<MachineSchedule> sample = space.sample(10, rng);
    EXPECT_EQ(sample.size(), space.distinctCount());
}

TEST(MachineScheduleSpace, SchedulesForAllocationIsTheProduct)
{
    const MachineScheduleSpace space(8, 2, 2, 2);
    const Partition allocation = {{0, 2, 4, 6}, {1, 3, 5, 7}};
    const std::vector<MachineSchedule> fixed =
        space.schedulesForAllocation(allocation);
    // 3 distinct schedules per core of 4 jobs at Y=Z=2.
    EXPECT_EQ(fixed.size(), 9u);
    for (const MachineSchedule &s : fixed) {
        EXPECT_EQ(s.allocation()[0], (std::vector<int>{0, 2, 4, 6}));
        EXPECT_EQ(s.allocation()[1], (std::vector<int>{1, 3, 5, 7}));
        // Every tuple stays inside its core's group.
        for (int k = 0; k < s.numCores(); ++k) {
            for (const auto &tuple : s.coreSchedule(k).tuples()) {
                for (int unit : tuple) {
                    EXPECT_TRUE(std::find(s.allocation()[k].begin(),
                                          s.allocation()[k].end(),
                                          unit) !=
                                s.allocation()[k].end());
                }
            }
        }
    }
}

TEST(MachineScheduleSpace, PeriodCoversEveryCore)
{
    const MachineScheduleSpace space(8, 2, 2, 2);
    EXPECT_EQ(space.periodTimeslices(), 2u); // 4 jobs / 2 contexts
    Rng rng(11);
    const MachineSchedule s = space.random(rng);
    EXPECT_EQ(s.periodTimeslices(), 2u);
}

TEST(MachineScheduleSpace, RandomIsDeterministicInTheSeed)
{
    const MachineScheduleSpace space(8, 2, 2, 2);
    Rng a(42), b(42), c(43);
    EXPECT_EQ(space.random(a).key(), space.random(b).key());
    // Different seed streams diverge quickly (not a hard guarantee,
    // but with 315 schedules a collision signals a seeding bug).
    Rng a2(42);
    std::vector<std::string> first, other;
    for (int i = 0; i < 4; ++i) {
        first.push_back(space.random(a2).key());
        other.push_back(space.random(c).key());
    }
    EXPECT_NE(first, other);
}

// --- Heterogeneous machines: core classes partition the symmetry ---

TEST(HeteroMachineScheduleSpace, DistinctCountScalesByClassPartition)
{
    // Two classes of two identical cores each: every homogeneous
    // allocation splits into C!/(n_big! n_little!) = 4!/(2!2!) = 6
    // distinct placements.
    const MachineScheduleSpace hetero(8, 4, 2, 2, {0, 0, 1, 1});
    EXPECT_TRUE(hetero.heterogeneous());
    EXPECT_EQ(hetero.distinctCount(), 105u * 6u);
    // All-distinct cores: the full 2! = 2 factor on the 2-core CMP.
    const MachineScheduleSpace two(8, 2, 2, 2, {0, 1});
    EXPECT_EQ(two.distinctCount(), 315u * 2u);
}

TEST(HeteroMachineScheduleSpace, EnumerationMatchesTheCount)
{
    // Jm(4,2,2,2) on a big.LITTLE pair: 3 pairings x 2 placements.
    const MachineScheduleSpace space(4, 2, 2, 2, {0, 1});
    const std::vector<MachineSchedule> all = space.enumerateAll();
    EXPECT_EQ(all.size(), space.distinctCount());
    EXPECT_EQ(all.size(), 6u);
    std::set<std::string> keys;
    for (const MachineSchedule &s : all) {
        EXPECT_TRUE(s.valid());
        keys.insert(s.key());
    }
    EXPECT_EQ(keys.size(), all.size()) << "duplicate canonical keys";
}

TEST(HeteroMachineScheduleSpace, KeyDistinguishesCrossClassSwaps)
{
    const Partition alloc_a = {{0, 1}, {2, 3}};
    const Partition alloc_b = {{2, 3}, {0, 1}};
    const std::vector<Schedule> sched_a = {
        Schedule::fromPartition({{0, 1}}),
        Schedule::fromPartition({{2, 3}})};
    const std::vector<Schedule> sched_b = {
        Schedule::fromPartition({{2, 3}}),
        Schedule::fromPartition({{0, 1}})};
    // Identical cores: the swap is the same machine schedule.
    EXPECT_EQ(MachineSchedule(alloc_a, sched_a, {0, 0}).key(),
              MachineSchedule(alloc_b, sched_b, {0, 0}).key());
    // Different classes: who runs on the big core matters.
    EXPECT_NE(MachineSchedule(alloc_a, sched_a, {0, 1}).key(),
              MachineSchedule(alloc_b, sched_b, {0, 1}).key());
    // Within-class permutation on a {0,0,1,1} machine still
    // collapses: swap the two class-0 cores only.
    const Partition four_a = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
    const Partition four_b = {{2, 3}, {0, 1}, {4, 5}, {6, 7}};
    const auto scheds = [](const Partition &p) {
        std::vector<Schedule> out;
        for (const auto &group : p)
            out.push_back(Schedule::fromPartition({group}));
        return out;
    };
    EXPECT_EQ(
        MachineSchedule(four_a, scheds(four_a), {0, 0, 1, 1}).key(),
        MachineSchedule(four_b, scheds(four_b), {0, 0, 1, 1}).key());
    // ...but swapping across the class boundary does not.
    const Partition four_c = {{4, 5}, {2, 3}, {0, 1}, {6, 7}};
    EXPECT_NE(
        MachineSchedule(four_a, scheds(four_a), {0, 0, 1, 1}).key(),
        MachineSchedule(four_c, scheds(four_c), {0, 0, 1, 1}).key());
}

TEST(HeteroMachineScheduleSpace, SingleClassCollapsesToHomogeneous)
{
    // A uniform class vector (whatever its label) is the homogeneous
    // machine: same flag, same counts, same keys, same RNG stream.
    const MachineScheduleSpace plain(8, 2, 2, 2);
    const MachineScheduleSpace labeled(8, 2, 2, 2, {5, 5});
    EXPECT_FALSE(labeled.heterogeneous());
    EXPECT_EQ(labeled.distinctCount(), plain.distinctCount());
    Rng a(42), b(42);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(plain.random(a).key(), labeled.random(b).key());
}

TEST(HeteroMachineScheduleSpace, SampleIsDeterministicAndDistinct)
{
    const MachineScheduleSpace space(8, 2, 2, 2, {0, 1});
    Rng a(0x5eedULL), b(0x5eedULL);
    const std::vector<MachineSchedule> first = space.sample(24, a);
    const std::vector<MachineSchedule> second = space.sample(24, b);
    ASSERT_EQ(first.size(), 24u);
    ASSERT_EQ(second.size(), 24u);
    std::set<std::string> keys;
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(first[i].key(), second[i].key());
        keys.insert(first[i].key());
    }
    EXPECT_EQ(keys.size(), first.size());
}

TEST(HeteroMachineScheduleSpace, ClassLabelsNormalizeByFirstUse)
{
    // {7, 3} and {0, 1} describe the same two-singleton partition.
    const MachineScheduleSpace odd(8, 2, 2, 2, {7, 3});
    const MachineScheduleSpace canon(8, 2, 2, 2, {0, 1});
    EXPECT_TRUE(odd.heterogeneous());
    EXPECT_EQ(odd.coreClasses(), canon.coreClasses());
    EXPECT_EQ(odd.distinctCount(), canon.distinctCount());
}

} // namespace
} // namespace sos
