/**
 * @file
 * Tests for the sampled-simulation stack: the sample=U:W:M knob, the
 * drain/fast-forward core surgery, the SamplingController contract
 * (disabled == full detail), and the headline accuracy claim (a
 * sampled sweep ranks coschedules like the full-detail sweep).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "sim/batch_experiment.hh"
#include "sim/params_io.hh"
#include "cpu/sampling.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

std::unique_ptr<Job>
makeJob(std::uint32_t id, const std::string &workload)
{
    return std::make_unique<Job>(
        id, WorkloadLibrary::instance().get(workload),
        0x900d5eedULL ^ id, 1, false);
}

ThreadBinding
bindingOf(Job &job, int thread = 0)
{
    ThreadBinding b;
    b.gen = &job.generator(thread);
    b.sync = job.syncDomain();
    b.syncIndex = thread;
    b.asid = job.asid();
    return b;
}

TEST(SampleWindowsParse, AcceptsTripleAndOff)
{
    const SampleWindows on = parseSampleWindows("42000:2000:6000");
    EXPECT_TRUE(on.enabled());
    EXPECT_EQ(on.fastForward, 42000u);
    EXPECT_EQ(on.warm, 2000u);
    EXPECT_EQ(on.measure, 6000u);
    EXPECT_FALSE(parseSampleWindows("off").enabled());
    EXPECT_FALSE(parseSampleWindows("0").enabled());
}

TEST(SampleWindowsParse, RenderRoundTrips)
{
    EXPECT_EQ(renderSampleWindows(SampleWindows{}), "off");
    EXPECT_EQ(renderSampleWindows(parseSampleWindows("100:10:20")),
              "100:10:20");
    EXPECT_EQ(parseSampleWindows(renderSampleWindows(SampleWindows{})),
              SampleWindows{});
}

TEST(SampleWindowsParse, MalformedShapeIsFatal)
{
    SimConfig config;
    EXPECT_DEATH(applyOverride(config, "sample=1000"), "U:W:M");
    EXPECT_DEATH(applyOverride(config, "sample=1000:10"), "U:W:M");
    EXPECT_DEATH(applyOverride(config, "sample=1:2:3:4"), "U:W:M");
    EXPECT_DEATH(applyOverride(config, "sample=on"), "U:W:M");
}

TEST(SampleWindowsParse, BadNumbersAreFatal)
{
    SimConfig config;
    EXPECT_DEATH(applyOverride(config, "sample=ten:1:1"),
                 "not an unsigned integer");
    EXPECT_DEATH(applyOverride(config, "sample=100:-5:10"),
                 "not an unsigned integer");
}

TEST(SampleWindowsParse, DegenerateWindowsAreFatal)
{
    SimConfig config;
    // Detailed-only "sampling" must be spelled 'off'.
    EXPECT_DEATH(applyOverride(config, "sample=0:100:200"),
                 "no fast-forward window");
    // Fast-forwarding with no measurement has no rate to replay.
    EXPECT_DEATH(applyOverride(config, "sample=1000:100:0"),
                 "never measures");
}

TEST(SampleWindowsParse, ConfigPairsOmitKeyWhenDisabled)
{
    // The golden manifests predate sampling; the key must only appear
    // once a run opts in, or every byte-pinned manifest would churn.
    SimConfig config;
    auto has_sample = [](const SimConfig &c) {
        for (const auto &pair : configPairs(c)) {
            if (pair.first == "sample")
                return true;
        }
        return false;
    };
    EXPECT_FALSE(has_sample(config));
    applyOverride(config, "sample=1000:100:200");
    EXPECT_TRUE(has_sample(config));
    applyOverride(config, "sample=off");
    EXPECT_FALSE(has_sample(config));
}

TEST(Sampling, DisabledControllerIsFullDetail)
{
    PerfCounters direct;
    PerfCounters via;
    for (const bool use_controller : {false, true}) {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        auto j1 = makeJob(1, "FP");
        auto j2 = makeJob(2, "GCC");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        if (use_controller) {
            SamplingController sampler(core, SampleWindows{});
            sampler.run(30000, via);
        } else {
            core.run(30000, direct);
        }
    }
    EXPECT_EQ(direct.cycles, via.cycles);
    EXPECT_EQ(direct.retired, via.retired);
    EXPECT_EQ(direct.fetched, via.fetched);
    EXPECT_EQ(direct.l1dMisses, via.l1dMisses);
    EXPECT_EQ(direct.l1iMisses, via.l1iMisses);
    EXPECT_EQ(direct.confIntQueue, via.confIntQueue);
    EXPECT_EQ(direct.confRob, via.confRob);
    EXPECT_EQ(direct.slotRetired, via.slotRetired);
}

TEST(Sampling, DrainEmptiesPipelineAndCoreRunsOn)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto j1 = makeJob(1, "GCC");
    auto j2 = makeJob(2, "MG");
    core.attachThread(0, bindingOf(*j1));
    core.attachThread(1, bindingOf(*j2));
    PerfCounters pc;
    core.run(5000, pc);
    EXPECT_GT(core.inFlightCount(), 0);

    PerfCounters drained;
    core.drainInFlight(drained);
    EXPECT_EQ(core.inFlightCount(), 0);
    // Every in-flight uop is credited as instantly retired.
    EXPECT_GT(drained.retired, 0u);
    EXPECT_EQ(drained.cycles, 0u);

    // The core must come back up from the drained state.
    PerfCounters after;
    core.run(5000, after);
    EXPECT_GT(after.retired, 0u);
}

TEST(Sampling, SampledRunAdvancesCycleAndRetires)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    auto j1 = makeJob(1, "EP");
    auto j2 = makeJob(2, "SWIM");
    core.attachThread(0, bindingOf(*j1));
    core.attachThread(1, bindingOf(*j2));
    resetSamplingStats();
    SamplingController sampler(core, parseSampleWindows("7000:1000:2000"));
    PerfCounters pc;
    sampler.run(20000, pc);
    EXPECT_EQ(pc.cycles, 20000u);
    EXPECT_EQ(core.now(), 20000u);
    EXPECT_GT(pc.retired, 0u);
    // Conflict counters are extrapolated but still bounded by the
    // interval length (they were bounded by detailed cycles before
    // scaling by total/detailed).
    EXPECT_LE(pc.confRob, pc.cycles);
    EXPECT_LE(pc.confIntQueue, pc.cycles);
    const SamplingStats &stats = samplingStats();
    EXPECT_GT(stats.periods.load(), 0u);
    EXPECT_GT(stats.fastForwardCycles.load(), 0u);
    EXPECT_GT(stats.detailedCycles.load(), 0u);
    EXPECT_EQ(stats.fastForwardCycles.load() +
                  stats.detailedCycles.load(),
              20000u);
    resetSamplingStats();
    EXPECT_EQ(samplingStats().periods.load(), 0u);
}

/** Index of the best (argmax) weighted speedup. */
std::size_t
winnerOf(const std::vector<double> &ws)
{
    return static_cast<std::size_t>(std::distance(
        ws.begin(), std::max_element(ws.begin(), ws.end())));
}

std::vector<double>
sweepWs(const SimConfig &config, const char *label = "Jsb(4,2,2)")
{
    BatchExperiment exp(experimentByLabel(label), config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    return exp.symbiosWs();
}

TEST(Sampling, SampledSweepPreservesRankingWithinTolerance)
{
    // The headline accuracy contract: on the small fig1-style config
    // the sampled sweep must pick the same best coschedule as full
    // detail, with every candidate's WS within a modest error bound.
    SimConfig full = makeFastConfig();
    SimConfig sampled = full;
    // The fast config's timeslice is only 10000 cycles and the three
    // candidates sit within ~4% of each other, so the test spends half
    // the interval in detail; production sampling at cycleScale=100
    // (50000-cycle timeslices) affords far leaner detailed fractions.
    applyOverride(sampled, "sample=5000:2000:3000");

    // Both golden batch experiments: the full space (3 candidates)
    // and the sampled-from-large-space shape (10 of 60).
    for (const char *label : {"Jsb(4,2,2)", "Jsb(6,3,1)"}) {
        const std::vector<double> full_ws = sweepWs(full, label);
        resetSamplingStats();
        const std::vector<double> sampled_ws = sweepWs(sampled, label);

        ASSERT_EQ(full_ws.size(), sampled_ws.size()) << label;
        EXPECT_EQ(winnerOf(full_ws), winnerOf(sampled_ws)) << label;
        for (std::size_t i = 0; i < full_ws.size(); ++i) {
            EXPECT_NEAR(sampled_ws[i], full_ws[i], full_ws[i] * 0.10)
                << label << " candidate " << i;
        }
    }
}

TEST(Sampling, SampledSweepDeterministicAcrossWorkersAndSnapshot)
{
    // The manifests' determinism contract extends to sampled mode:
    // worker count and the snapshot warm-sharing fast path must not
    // change a single number.
    SimConfig base = makeFastConfig();
    applyOverride(base, "sample=7000:1000:2000");

    std::vector<std::vector<double>> results;
    for (const char *variant :
         {"jobs=1", "jobs=2", "snapshot=off"}) {
        SimConfig config = base;
        applyOverride(config, variant);
        resetSamplingStats();
        results.push_back(sweepWs(config));
    }
    ASSERT_EQ(results[0].size(), results[1].size());
    ASSERT_EQ(results[0].size(), results[2].size());
    for (std::size_t i = 0; i < results[0].size(); ++i) {
        EXPECT_DOUBLE_EQ(results[0][i], results[1][i]) << i;
        EXPECT_DOUBLE_EQ(results[0][i], results[2][i]) << i;
    }
}

} // namespace
} // namespace sos
