/**
 * @file
 * Unit tests for the hierarchical statistics registry: typed stats,
 * bind-vs-own semantics, path validation, groups, and the text/JSON
 * sinks. Registration errors throw std::invalid_argument, so every
 * failure mode here is testable without death tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>

#include "stats/json.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos::stats {
namespace {

TEST(Registry, DuplicatePathThrows)
{
    Registry registry;
    registry.scalar("core.cycles");
    EXPECT_THROW(registry.scalar("core.cycles"), std::invalid_argument);
    // A duplicate of a different kind is still a duplicate.
    EXPECT_THROW(registry.value("core.cycles"), std::invalid_argument);
}

TEST(Registry, LeafMayNotShadowSubtree)
{
    Registry registry;
    registry.scalar("core.mem.l1d.hits");
    // "core.mem" would become both an interior node and a leaf.
    EXPECT_THROW(registry.scalar("core.mem"), std::invalid_argument);
    EXPECT_THROW(registry.scalar("core"), std::invalid_argument);
}

TEST(Registry, PathMayNotNestUnderLeaf)
{
    Registry registry;
    registry.scalar("core.cycles");
    EXPECT_THROW(registry.scalar("core.cycles.user"),
                 std::invalid_argument);
}

TEST(Registry, MalformedPathsThrow)
{
    Registry registry;
    EXPECT_THROW(registry.scalar(""), std::invalid_argument);
    EXPECT_THROW(registry.scalar(".cycles"), std::invalid_argument);
    EXPECT_THROW(registry.scalar("cycles."), std::invalid_argument);
    EXPECT_THROW(registry.scalar("a..b"), std::invalid_argument);
    EXPECT_THROW(registry.scalar("a b"), std::invalid_argument);
    EXPECT_THROW(registry.scalar("a\"b"), std::invalid_argument);
    EXPECT_THROW(registry.scalar("a\\b"), std::invalid_argument);
    EXPECT_TRUE(registry.empty());
}

TEST(Registry, SiblingsAndDistinctSubtreesCoexist)
{
    Registry registry;
    registry.scalar("core.mem.l1d.hits");
    registry.scalar("core.mem.l1d.misses");
    registry.scalar("core.mem.l2.hits");
    registry.value("sweep.candidate0.ws");
    EXPECT_EQ(registry.size(), 4u);
}

TEST(Registry, SortedIsLexicographicByPath)
{
    Registry registry;
    registry.scalar("b");
    registry.scalar("a.z");
    registry.scalar("a.b");
    const auto stats = registry.sorted();
    ASSERT_EQ(stats.size(), 3u);
    EXPECT_EQ(stats[0]->path(), "a.b");
    EXPECT_EQ(stats[1]->path(), "a.z");
    EXPECT_EQ(stats[2]->path(), "b");
}

TEST(Registry, FindReturnsNullForUnknown)
{
    Registry registry;
    registry.scalar("x");
    EXPECT_NE(registry.find("x"), nullptr);
    EXPECT_EQ(registry.find("y"), nullptr);
}

TEST(Scalar, OwnedValueAndIncrement)
{
    Registry registry;
    Scalar &s = registry.scalar("count");
    EXPECT_EQ(s.value(), 0u);
    s = 5;
    s += 3;
    EXPECT_EQ(s.value(), 8u);
}

TEST(Scalar, BoundReadsSourceAtDumpTime)
{
    Registry registry;
    std::uint64_t live = 1;
    Scalar &s = registry.scalar("cycles").bind(&live);
    // The binding reads through the pointer: later increments of the
    // simulator-owned counter are visible with no further stat calls.
    live = 42;
    EXPECT_EQ(s.value(), 42u);
    EXPECT_EQ(s.renderText(), "42");
}

TEST(Value, BoundAndOwned)
{
    Registry registry;
    double live = 0.0;
    Value &bound = registry.value("ws.bound").bind(&live);
    live = 1.75;
    EXPECT_DOUBLE_EQ(bound.value(), 1.75);

    Value &owned = registry.value("ws.owned");
    owned = 2.5;
    EXPECT_DOUBLE_EQ(owned.value(), 2.5);
}

TEST(Formula, EvaluatesAtDumpTime)
{
    Registry registry;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    Formula &rate =
        registry.formula("l1d.miss_rate", "misses per access", [&] {
            const double total =
                static_cast<double>(hits) + static_cast<double>(misses);
            return total == 0.0 ? 0.0
                                : static_cast<double>(misses) / total;
        });
    hits = 90;
    misses = 10;
    EXPECT_DOUBLE_EQ(rate.value(), 0.1);
}

TEST(Formula, NullCallableThrows)
{
    Registry registry;
    EXPECT_THROW(registry.formula("bad", "", nullptr),
                 std::invalid_argument);
}

TEST(Distribution, SummaryStatistics)
{
    Registry registry;
    Distribution &d = registry.distribution("improvement");
    d.samples({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
    EXPECT_EQ(d.count(), 8u);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_NEAR(d.stddev(), 2.0, 1e-12); // textbook population stddev
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 9.0);
}

TEST(Distribution, EmptyRendersZeros)
{
    Registry registry;
    Distribution &d = registry.distribution("empty");
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Vector, NamedAndUnnamedMayNotMix)
{
    Registry registry;
    Vector &unnamed = registry.vector("plain");
    unnamed.push(1.0).push(2.0);
    EXPECT_THROW(unnamed.push("late_name", 3.0), std::invalid_argument);

    Vector &named = registry.vector("named");
    named.push("a", 1.0).push("b", 2.0);
    EXPECT_THROW(named.push(3.0), std::invalid_argument);
    EXPECT_EQ(named.size(), 2u);
}

TEST(Info, HoldsStrings)
{
    Registry registry;
    Info &label = registry.info("schedule");
    label = "012|345";
    EXPECT_EQ(label.value(), "012|345");
    EXPECT_EQ(label.renderText(), "012|345");
}

TEST(SanitizeSegment, PassThroughAndReplacement)
{
    // Schedule-space labels survive verbatim.
    EXPECT_EQ(sanitizeSegment("Jsb(6,3,3)"), "Jsb(6,3,3)");
    EXPECT_EQ(sanitizeSegment("smt4"), "smt4");
    // Dots, whitespace and control characters become '_' so a raw
    // label can never change the tree shape.
    EXPECT_EQ(sanitizeSegment("x1.50"), "x1_50");
    EXPECT_EQ(sanitizeSegment("a b\tc"), "a_b_c");
    EXPECT_EQ(sanitizeSegment("012|345"), "012_345");
    EXPECT_EQ(sanitizeSegment(""), "_");
}

TEST(Group, PrefixesAndSanitizesChildSegments)
{
    Registry registry;
    const Group root(registry);
    const Group l1d = root.group("core0").group("mem").group("l1d");
    l1d.scalar("hits");
    EXPECT_NE(registry.find("core0.mem.l1d.hits"), nullptr);

    // A dotted child name cannot escape into a different subtree.
    const Group sneaky = root.group("a.b");
    sneaky.scalar("x");
    EXPECT_NE(registry.find("a_b.x"), nullptr);
    EXPECT_EQ(registry.find("a.b.x"), nullptr);
}

TEST(RenderText, AlignedWithDescriptions)
{
    Registry registry;
    registry.scalar("a.long.path.hits", "cache hits") = 7;
    registry.value("b") = 1.5;
    const std::string text = renderText(registry);
    EXPECT_EQ(text,
              "a.long.path.hits  7  # cache hits\n"
              "b                 1.5\n");
}

TEST(WriteJsonTree, NestsDottedPaths)
{
    Registry registry;
    registry.scalar("core.mem.l1d.hits") = 9;
    registry.scalar("core.mem.l1d.misses") = 1;
    registry.value("core.ipc") = 2.5;
    registry.info("label") = "mix";

    std::string out;
    JsonWriter json(&out);
    writeJsonTree(registry, json);
    EXPECT_TRUE(json.complete());
    EXPECT_EQ(out,
              "{\"core\":{\"ipc\":2.5,\"mem\":{\"l1d\":{\"hits\":9,"
              "\"misses\":1}}},\"label\":\"mix\"}");
}

TEST(WriteJsonTree, VectorAndDistributionLeaves)
{
    Registry registry;
    registry.vector("plain").push(1.0).push(2.5);
    registry.vector("named").push("a", 1.0);
    registry.distribution("dist").sample(3.0);

    std::string out;
    JsonWriter json(&out);
    writeJsonTree(registry, json);
    EXPECT_EQ(out,
              "{\"dist\":{\"count\":1,\"mean\":3,\"stddev\":0,"
              "\"min\":3,\"max\":3},\"named\":{\"a\":1},"
              "\"plain\":[1,2.5]}");
}

TEST(FormatDouble, RoundTripsExactly)
{
    for (const double v :
         {0.0, 1.0, -1.5, 1.0 / 3.0, 0.1, 1e-300, 1e300, 2.5e-7,
          3.141592653589793, std::numeric_limits<double>::denorm_min()}) {
        const std::string text = formatDouble(v);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), v)
            << "for " << text;
    }
    // Non-finite values have no JSON literal.
    EXPECT_EQ(formatDouble(std::nan("")), "null");
    EXPECT_EQ(formatDouble(std::numeric_limits<double>::infinity()),
              "null");
}

TEST(EscapeJson, ControlAndQuoteCharacters)
{
    EXPECT_EQ(escapeJson("plain"), "plain");
    EXPECT_EQ(escapeJson("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(escapeJson("line\nbreak"), "line\\nbreak");
}

TEST(EventTrace, RendersOneJsonObjectPerLine)
{
    EventTrace trace;
    trace.event("sample_candidate")
        .field("index", 3)
        .field("schedule", "012|345")
        .field("ws", 1.5)
        .field("warm", true);
    trace.event("symbios_pick").field("pick",
                                      static_cast<std::uint64_t>(7));
    EXPECT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.render(),
              "{\"event\":\"sample_candidate\",\"index\":3,"
              "\"schedule\":\"012|345\",\"ws\":1.5,\"warm\":true}\n"
              "{\"event\":\"symbios_pick\",\"pick\":7}\n");
}

TEST(EventTrace, PhaseStrideKeepsEveryNthGroup)
{
    EventTrace trace;
    trace.setPhaseStride(2);
    trace.event("preamble").field("kept", true); // before any opener
    for (int phase = 0; phase < 4; ++phase) {
        trace.event("sample_phase_begin").field("phase", phase);
        trace.event("symbios_pick").field("phase", phase);
    }
    // Groups 0 and 2 survive, each with its follower event.
    EXPECT_EQ(trace.size(), 5u);
    EXPECT_EQ(trace.render(),
              "{\"event\":\"preamble\",\"kept\":true}\n"
              "{\"event\":\"sample_phase_begin\",\"phase\":0}\n"
              "{\"event\":\"symbios_pick\",\"phase\":0}\n"
              "{\"event\":\"sample_phase_begin\",\"phase\":2}\n"
              "{\"event\":\"symbios_pick\",\"phase\":2}\n");
}

TEST(EventTrace, DefaultStrideRecordsEverything)
{
    EventTrace trace;
    for (int phase = 0; phase < 3; ++phase)
        trace.event("sample_phase_begin").field("phase", phase);
    EXPECT_EQ(trace.size(), 3u);
}

TEST(EventTrace, ContextFieldsStampEveryEvent)
{
    EventTrace trace;
    trace.setContextField("node", "3");
    trace.event("sample_phase_begin").field("phase", 0);
    EXPECT_EQ(trace.render(),
              "{\"event\":\"sample_phase_begin\",\"node\":3,"
              "\"phase\":0}\n");
}

TEST(EventTrace, AppendConcatenatesTraces)
{
    EventTrace main_trace;
    main_trace.event("dispatch_epoch").field("epoch", 0);
    EventTrace node_trace;
    node_trace.setContextField("node", "1");
    node_trace.event("sample_phase_begin").field("phase", 0);
    main_trace.append(node_trace);
    EXPECT_EQ(main_trace.render(),
              "{\"event\":\"dispatch_epoch\",\"epoch\":0}\n"
              "{\"event\":\"sample_phase_begin\",\"node\":1,"
              "\"phase\":0}\n");
}

TEST(JsonWriter, ArraysObjectsAndNull)
{
    std::string out;
    JsonWriter json(&out);
    json.beginObject();
    json.key("xs");
    json.beginArray();
    json.number(1);
    json.null();
    json.boolean(false);
    json.endArray();
    json.endObject();
    EXPECT_TRUE(json.complete());
    EXPECT_EQ(out, "{\"xs\":[1,null,false]}");
}

} // namespace
} // namespace sos::stats
