/**
 * @file
 * Machine-config parser tests: the grammar (keys, classes, cores,
 * include), file:line-carrying errors, validation hookup, and the
 * collapse-to-homogeneous rule that keeps config-free runs
 * byte-identical.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "config/machine_config.hh"
#include "sim/sim_config.hh"

namespace sos {
namespace {

SimConfig
base()
{
    return makeFastConfig();
}

ParsedMachineConfig
parse(const std::string &text)
{
    return parseMachineConfigText(text, "test.cfg", base());
}

/** EXPECT that parsing throws and what() contains every needle. */
void
expectError(const std::string &text,
            const std::vector<std::string> &needles)
{
    try {
        parse(text);
        FAIL() << "expected MachineConfigError";
    } catch (const MachineConfigError &err) {
        const std::string what = err.what();
        for (const std::string &needle : needles) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "missing '" << needle << "' in: " << what;
        }
    }
}

TEST(MachineConfig, MachineScopeKeysSetDefaults)
{
    const ParsedMachineConfig parsed = parse(R"(
        # comment-only and blank lines are skipped
        core.fetchWidth 4        # trailing comments too
        mem.l2.sizeBytes 524288
        cores 2
    )");
    EXPECT_EQ(parsed.numCores, 2);
    EXPECT_EQ(parsed.core.fetchWidth, 4);
    EXPECT_EQ(parsed.mem.l2.sizeBytes, 524288u);
    // `cores N` is the homogeneous form: no per-core entries.
    EXPECT_TRUE(parsed.cores.empty());
    EXPECT_TRUE(parsed.coreMem.empty());
}

TEST(MachineConfig, ClassesInstantiateInCoreOrder)
{
    const ParsedMachineConfig parsed = parse(R"(
        class big
        class little
          core.fetchWidth 4
          mem.l1d.sizeBytes 32768
        cores big*2 little*2
    )");
    EXPECT_EQ(parsed.numCores, 4);
    ASSERT_EQ(parsed.cores.size(), 4u);
    ASSERT_EQ(parsed.coreNames.size(), 4u);
    EXPECT_EQ(parsed.coreNames[0], "big");
    EXPECT_EQ(parsed.coreNames[1], "big");
    EXPECT_EQ(parsed.coreNames[2], "little");
    EXPECT_EQ(parsed.coreNames[3], "little");
    EXPECT_EQ(parsed.cores[0].fetchWidth, base().core.fetchWidth);
    EXPECT_EQ(parsed.cores[2].fetchWidth, 4);
    EXPECT_EQ(parsed.coreMem[2].l1d.sizeBytes, 32768u);
}

TEST(MachineConfig, BareClassNamesCountOnce)
{
    const ParsedMachineConfig parsed = parse(R"(
        class a
          core.numIntUnits 6
        class b
          core.numIntUnits 2
        cores a b
    )");
    EXPECT_EQ(parsed.numCores, 2);
    ASSERT_EQ(parsed.cores.size(), 2u);
    EXPECT_EQ(parsed.cores[0].numIntUnits, 6);
    EXPECT_EQ(parsed.cores[1].numIntUnits, 2);
}

TEST(MachineConfig, ClassSeedsFromMachineDefaultsAtDeclaration)
{
    // Machine-scope keys precede the first class; every class seeds
    // from those defaults and only its own keys refine it further.
    const ParsedMachineConfig parsed = parse(R"(
        core.fetchWidth 6
        class tuned
          core.numIntUnits 2
        class stock
        cores tuned stock
    )");
    ASSERT_EQ(parsed.cores.size(), 2u);
    EXPECT_EQ(parsed.cores[0].fetchWidth, 6);
    EXPECT_EQ(parsed.cores[0].numIntUnits, 2);
    EXPECT_EQ(parsed.cores[1].fetchWidth, 6);
    EXPECT_EQ(parsed.cores[1].numIntUnits, base().core.numIntUnits);
}

TEST(MachineConfig, IdenticalCoresCollapseToHomogeneous)
{
    // Two instantiations of one class -- and even two classes with
    // identical params -- are a homogeneous machine.
    const ParsedMachineConfig one_class = parse(R"(
        class only
          core.fetchWidth 4
        cores only*2
    )");
    EXPECT_EQ(one_class.numCores, 2);
    EXPECT_TRUE(one_class.cores.empty()) << "must collapse";
    EXPECT_EQ(one_class.core.fetchWidth, 4);

    const ParsedMachineConfig twins = parse(R"(
        class a
        class b
        cores a b
    )");
    EXPECT_TRUE(twins.cores.empty()) << "identical classes collapse";
}

TEST(MachineConfig, ClassL2IsOverwrittenByTheMachine)
{
    // The shared cache belongs to the machine: a class setting
    // mem.l2.* silently inherits the machine geometry, so the two
    // classes below differ only in L1 and still form two classes.
    const ParsedMachineConfig parsed = parse(R"(
        mem.l2.sizeBytes 1048576
        class a
          mem.l2.sizeBytes 65536
        class b
          mem.l1d.sizeBytes 32768
        cores a b
    )");
    ASSERT_EQ(parsed.coreMem.size(), 2u);
    EXPECT_EQ(parsed.coreMem[0].l2.sizeBytes, 1048576u);
    EXPECT_EQ(parsed.coreMem[1].l2.sizeBytes, 1048576u);
}

TEST(MachineConfig, ErrorsNameFileLineKeyAndValue)
{
    expectError("core.fetchWidth zap\ncores 1\n",
                {"test.cfg:1", "core.fetchWidth", "zap"});
    expectError("\n\ncore.noSuchKnob 3\n", {"test.cfg:3", "noSuchKnob"});
    expectError("seed 42\ncores 1\n", {"test.cfg:1", "core.*", "seed"});
    expectError("core.fetchWidth\n", {"test.cfg:1", "key value"});
    expectError("cores 0\n", {"test.cfg:1", "[1, "});
    expectError("cores 99\n", {"test.cfg:1", "[1, "});
    expectError("cores big\n", {"test.cfg:1", "undeclared", "big"});
    expectError("class 9lives\ncores 1\n",
                {"test.cfg:1", "start with a letter"});
    expectError("class a\nclass a\ncores a\n",
                {"test.cfg:2", "duplicate class", "test.cfg:1"});
    expectError("cores 1\ncores 1\n",
                {"test.cfg:2", "duplicate 'cores'", "test.cfg:1"});
    expectError("class a\n", {"never", "instantiated"});
}

TEST(MachineConfig, ValidationErrorsCarryTheClassContext)
{
    // Validation failures surface the class and the offending field
    // with its value, anchored at the class declaration line.
    expectError("class broken\n  core.fetchWidth -1\ncores broken\n",
                {"test.cfg:1", "class 'broken'", "fetchWidth"});
    expectError("mem.l2HitLatency 0\ncores 1\n",
                {"machine defaults", "l2HitLatency", "got 0"});
}

TEST(MachineConfig, IncludeResolvesRelativeToTheIncluder)
{
    // Write a pair of files under /tmp and include one from the other.
    const std::string dir = ::testing::TempDir();
    const std::string inc_path = dir + "sos_defaults.inc";
    const std::string cfg_path = dir + "sos_machine.cfg";
    {
        std::ofstream inc(inc_path);
        inc << "core.fetchWidth 4\n";
    }
    {
        std::ofstream cfg(cfg_path);
        cfg << "include sos_defaults.inc\ncores 2\n";
    }
    const ParsedMachineConfig parsed =
        parseMachineConfig(cfg_path, base());
    EXPECT_EQ(parsed.core.fetchWidth, 4);
    EXPECT_EQ(parsed.numCores, 2);
    std::remove(inc_path.c_str());
    std::remove(cfg_path.c_str());
}

TEST(MachineConfig, IncludeCyclesAreBounded)
{
    const std::string dir = ::testing::TempDir();
    const std::string path = dir + "sos_cycle.cfg";
    {
        std::ofstream cfg(path);
        cfg << "include sos_cycle.cfg\n";
    }
    EXPECT_THROW(parseMachineConfig(path, base()), MachineConfigError);
    std::remove(path.c_str());
}

TEST(MachineConfig, MissingFileThrows)
{
    EXPECT_THROW(
        parseMachineConfig("/no/such/dir/machine.cfg", base()),
        MachineConfigError);
}

TEST(MachineConfig, DefaultsOnlyFileLeavesCoreCountOpen)
{
    const ParsedMachineConfig parsed = parse("core.fetchWidth 4\n");
    EXPECT_EQ(parsed.numCores, 0) << "no 'cores' line = any machine";
    EXPECT_EQ(parsed.core.fetchWidth, 4);
    EXPECT_TRUE(parsed.cores.empty());
}

TEST(MachineConfig, ExampleConfigsParse)
{
    // The checked-in examples must stay valid. SOS_CONFIG_DIR points
    // at <repo>/configs (set by the test's CMake target).
    const std::string dir = SOS_CONFIG_DIR "/";
    const ParsedMachineConfig paper =
        parseMachineConfig(dir + "paper_default.cfg", base());
    EXPECT_EQ(paper.numCores, 0);
    EXPECT_TRUE(paper.cores.empty()) << "paper default is homogeneous";
    EXPECT_EQ(paper.core.fetchWidth, base().core.fetchWidth);
    EXPECT_EQ(paper.mem.l2.sizeBytes, base().mem.l2.sizeBytes);

    const ParsedMachineConfig bl =
        parseMachineConfig(dir + "big_little.cfg", base());
    EXPECT_EQ(bl.numCores, 4);
    ASSERT_EQ(bl.cores.size(), 4u);
    EXPECT_EQ(bl.coreNames[0], "big");
    EXPECT_EQ(bl.coreNames[3], "little");
    EXPECT_LT(bl.cores[3].fetchWidth, bl.cores[0].fetchWidth);

    const ParsedMachineConfig fu =
        parseMachineConfig(dir + "asymmetric_fu.cfg", base());
    EXPECT_EQ(fu.numCores, 2);
    ASSERT_EQ(fu.cores.size(), 2u);
    EXPECT_GT(fu.cores[0].numIntUnits, fu.cores[1].numIntUnits);
    EXPECT_LT(fu.cores[0].fpMulPipes, fu.cores[1].fpMulPipes);

    const ParsedMachineConfig l2 =
        parseMachineConfig(dir + "small_l2_slice.cfg", base());
    EXPECT_EQ(l2.numCores, 2);
    EXPECT_TRUE(l2.cores.empty()) << "homogeneous cores collapse";
    EXPECT_EQ(l2.mem.l2.sizeBytes, 524288u);
}

TEST(MachineConfig, ApplyFillsTheSimConfig)
{
    SimConfig config = base();
    const std::string dir = SOS_CONFIG_DIR "/";
    applyMachineConfig(config, dir + "big_little.cfg");
    EXPECT_EQ(config.machineCores, 4);
    EXPECT_EQ(config.heteroCores.size(), 4u);
    EXPECT_EQ(config.heteroCoreMem.size(), 4u);
    EXPECT_EQ(config.heteroCoreNames.size(), 4u);
    EXPECT_EQ(config.machineConfigPath, dir + "big_little.cfg");

    // machineFor threads the per-core params through and forces the
    // MT level onto every core.
    const MachineParams params = config.machineFor(2, 4);
    EXPECT_FALSE(params.homogeneous());
    for (int k = 0; k < 4; ++k)
        EXPECT_EQ(params.coreParams(k).numContexts, 2);
    const std::vector<int> classes = params.coreClasses();
    EXPECT_EQ(classes, (std::vector<int>{0, 0, 1, 1}));
}

} // namespace
} // namespace sos
