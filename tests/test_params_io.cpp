/** @file Unit tests for textual configuration overrides. */

#include <gtest/gtest.h>

#include "sim/params_io.hh"

namespace sos {
namespace {

TEST(ParamsIo, SetsHarnessFields)
{
    SimConfig config;
    applyOverride(config, "cycleScale=250");
    applyOverride(config, "sampleSchedules=5");
    applyOverride(config, "seed=777");
    EXPECT_EQ(config.cycleScale, 250u);
    EXPECT_EQ(config.sampleSchedules, 5);
    EXPECT_EQ(config.seed, 777u);
}

TEST(ParamsIo, SetsCoreFields)
{
    SimConfig config;
    applyOverride(config, "core.intQueueSize=32");
    applyOverride(config, "core.roundRobinFetch=true");
    applyOverride(config, "core.fpDivLat=20");
    EXPECT_EQ(config.core.intQueueSize, 32);
    EXPECT_TRUE(config.core.roundRobinFetch);
    EXPECT_EQ(config.core.fpDivLat, 20);
}

TEST(ParamsIo, SetsMemFields)
{
    SimConfig config;
    applyOverride(config, "mem.l2.sizeBytes=4194304");
    applyOverride(config, "mem.prefetch.enabled=on");
    applyOverride(config, "mem.memLatency=120");
    EXPECT_EQ(config.mem.l2.sizeBytes, 4194304u);
    EXPECT_TRUE(config.mem.prefetch.enabled);
    EXPECT_EQ(config.mem.memLatency, 120u);
}

TEST(ParamsIo, BooleanSpellings)
{
    SimConfig config;
    for (const char *yes : {"mem.prefetch.enabled=1",
                            "mem.prefetch.enabled=true",
                            "mem.prefetch.enabled=on"}) {
        config.mem.prefetch.enabled = false;
        applyOverride(config, yes);
        EXPECT_TRUE(config.mem.prefetch.enabled) << yes;
    }
    for (const char *no : {"mem.prefetch.enabled=0",
                           "mem.prefetch.enabled=false",
                           "mem.prefetch.enabled=off"}) {
        config.mem.prefetch.enabled = true;
        applyOverride(config, no);
        EXPECT_FALSE(config.mem.prefetch.enabled) << no;
    }
}

TEST(ParamsIo, AppliesInOrder)
{
    SimConfig config;
    applyOverrides(config, {"cycleScale=10", "cycleScale=20"});
    EXPECT_EQ(config.cycleScale, 20u);
}

TEST(ParamsIo, UnknownKeyIsFatal)
{
    SimConfig config;
    EXPECT_DEATH(applyOverride(config, "core.magic=1"),
                 "unknown configuration key");
}

TEST(ParamsIo, MalformedAssignmentIsFatal)
{
    SimConfig config;
    EXPECT_DEATH(applyOverride(config, "cycleScale"), "key=value");
    EXPECT_DEATH(applyOverride(config, "=5"), "key=value");
}

TEST(ParamsIo, BadValueIsFatal)
{
    SimConfig config;
    EXPECT_DEATH(applyOverride(config, "cycleScale=ten"),
                 "not an unsigned integer");
    EXPECT_DEATH(applyOverride(config, "mem.prefetch.enabled=maybe"),
                 "not a boolean");
}

TEST(ParamsIo, CatalogueCoversRoundTrip)
{
    // Every advertised key must accept its own rendered default.
    SimConfig config;
    for (const ParamInfo &info : configurableParams())
        applyOverride(config, info.key + "=" + info.currentValue);
    // And the render must list every key exactly once.
    const std::string rendered = renderConfig(config);
    for (const ParamInfo &info : configurableParams()) {
        const std::string line = info.key + "=";
        EXPECT_NE(rendered.find(line), std::string::npos) << info.key;
    }
}

TEST(ParamsIo, RenderReflectsOverrides)
{
    SimConfig config;
    applyOverride(config, "core.numLsPorts=3");
    EXPECT_NE(renderConfig(config).find("core.numLsPorts=3"),
              std::string::npos);
}

} // namespace
} // namespace sos
