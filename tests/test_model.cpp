/**
 * @file
 * The model subsystem: feature composition, the two fitters, the
 * versioned model-file format, and the trace-to-dataset join.
 */

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "model/features.hh"
#include "model/model.hh"
#include "model/trainer.hh"
#include "stats/trace.hh"
#include "stats/trace_reader.hh"

namespace {

using namespace sos;
using namespace sos::model;

ThreadSignature
signature(double solo, double fp, double ws)
{
    ThreadSignature sig;
    sig.soloIpc = solo;
    sig.fp = fp;
    sig.workingSet = ws;
    return sig;
}

TEST(Features, NamesMatchVectorLayout)
{
    EXPECT_EQ(featureNames().size(), static_cast<std::size_t>(numFeatures()));
    const std::vector<ThreadSignature> sigs{signature(1.0, 0.5, 0.25),
                                            signature(0.5, 0.0, 0.75)};
    const FeatureVector fv = composeScheduleFeatures(sigs, {{0, 1}});
    EXPECT_EQ(fv.size(), featureNames().size());
}

TEST(Features, CompositionIsDeterministicAndTupleSensitive)
{
    const std::vector<ThreadSignature> sigs{
        signature(1.2, 0.9, 0.3), signature(0.6, 0.1, 0.8),
        signature(0.9, 0.5, 0.5), signature(1.5, 0.0, 0.1)};
    const std::vector<std::vector<int>> paired{{0, 1}, {2, 3}};
    const std::vector<std::vector<int>> crossed{{0, 2}, {1, 3}};
    const FeatureVector a = composeScheduleFeatures(sigs, paired);
    const FeatureVector b = composeScheduleFeatures(sigs, paired);
    const FeatureVector c = composeScheduleFeatures(sigs, crossed);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c) << "tuple structure must be visible in features";
    // Schedule-independent aggregates agree across groupings.
    EXPECT_EQ(a[0], c[0]); // units
    EXPECT_EQ(a[1], c[1]); // tuple_size
}

TEST(Features, SiblingAndSyncPairsCountSameJobTuples)
{
    ThreadSignature t0 = signature(1.0, 0.2, 0.4);
    ThreadSignature t1 = t0;
    t0.jobId = t1.jobId = 7;
    t0.syncs = t1.syncs = true;
    ThreadSignature other = signature(0.8, 0.6, 0.2);
    other.jobId = 9;

    const std::vector<std::string> &names = featureNames();
    const auto index = [&names](const std::string &name) {
        for (std::size_t i = 0; i < names.size(); ++i) {
            if (names[i] == name)
                return i;
        }
        ADD_FAILURE() << "no feature " << name;
        return std::size_t{0};
    };
    const FeatureVector together =
        composeScheduleFeatures({t0, t1, other}, {{0, 1}, {2}});
    const FeatureVector apart =
        composeScheduleFeatures({t0, t1, other}, {{0, 2}, {1}});
    EXPECT_GT(together[index("sibling_pairs")],
              apart[index("sibling_pairs")]);
    EXPECT_GT(together[index("sync_pairs")], apart[index("sync_pairs")]);
}

/** Rows with ws = 2*f0 - f1 + 0.5 (plus a constant third feature). */
std::vector<TrainRow>
syntheticRows()
{
    std::vector<TrainRow> rows;
    for (int i = 0; i < 40; ++i) {
        TrainRow row;
        const double f0 = static_cast<double>(i % 8) / 4.0;
        const double f1 = static_cast<double>((i * 5) % 11) / 5.0;
        row.features = {f0, f1, 3.0};
        row.ws = 2.0 * f0 - f1 + 0.5;
        row.experiment = "mix" + std::to_string(i / 10);
        row.index = i % 10;
        rows.push_back(std::move(row));
    }
    return rows;
}

TEST(Trainer, LinearFitRecoversALinearTarget)
{
    FitOptions options;
    options.ridge = 1e-9;
    options.contrast = 0.0;
    const auto model =
        fitLinearModel({"f0", "f1", "const"}, syntheticRows(), options);
    for (const TrainRow &row : syntheticRows()) {
        EXPECT_NEAR(model->predict(row.features), row.ws, 1e-6)
            << "f0=" << row.features[0] << " f1=" << row.features[1];
    }
    EXPECT_NEAR(model->residualStd, 0.0, 1e-6);
    EXPECT_LT(meanAbsoluteError(*model, syntheticRows()), 1e-6);
    EXPECT_GT(rankCorrelation(*model, syntheticRows()), 0.999);
}

TEST(Trainer, ContrastAmplifiesWithinMixDeviations)
{
    // One mix with an exactly-linear target: contrast 1 fits
    // ws + (ws - mean), so predictions stretch around the mix mean
    // while the mean row itself is unchanged.
    std::vector<TrainRow> rows = syntheticRows();
    double mean = 0.0;
    for (TrainRow &row : rows) {
        row.experiment = "only";
        mean += row.ws;
    }
    mean /= static_cast<double>(rows.size());
    FitOptions options;
    options.ridge = 1e-9;
    options.contrast = 1.0;
    const auto contrasted =
        fitLinearModel({"f0", "f1", "c"}, rows, options);
    for (const TrainRow &row : rows) {
        EXPECT_NEAR(contrasted->predict(row.features),
                    row.ws + (row.ws - mean), 1e-5);
    }
}

TEST(Trainer, TreeFitsStepTargetsAndLeavesCarryUncertainty)
{
    std::vector<TrainRow> rows;
    for (int i = 0; i < 24; ++i) {
        TrainRow row;
        row.features = {static_cast<double>(i), 1.0};
        row.ws = i < 12 ? 1.0 : 2.0;
        row.experiment = "mix";
        row.index = i;
        rows.push_back(std::move(row));
    }
    FitOptions options;
    options.contrast = 0.0;
    const auto model = fitRegressionTree({"f0", "c"}, rows, options);
    EXPECT_NEAR(model->predict({3.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(model->predict({20.0, 1.0}), 2.0, 1e-12);
    // Perfect split: leaf stddev (the uncertainty) is zero.
    EXPECT_NEAR(model->uncertainty({3.0, 1.0}), 0.0, 1e-12);
    EXPECT_GE(model->uncertaintyThreshold(), 0.0);
}

TEST(Trainer, SplitDatasetHoldsOutEveryNthRow)
{
    const std::vector<TrainRow> rows = syntheticRows();
    std::vector<TrainRow> train, holdout;
    splitDataset(rows, 5, train, holdout);
    EXPECT_EQ(holdout.size(), rows.size() / 5);
    EXPECT_EQ(train.size() + holdout.size(), rows.size());
    EXPECT_EQ(holdout[0].index, rows[4].index);
    splitDataset(rows, 0, train, holdout);
    EXPECT_TRUE(holdout.empty());
    EXPECT_EQ(train.size(), rows.size());
}

template <typename Model>
void
expectRoundTripExact(const Model &model, const FeatureVector &probe)
{
    const std::string text = model.render();
    const auto loaded = parseModel(text, "<inline>");
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->kind(), model.kind());
    EXPECT_EQ(loaded->features(), model.features());
    // Bit-for-bit: formatDouble renders shortest-round-trip doubles.
    EXPECT_EQ(loaded->predict(probe), model.predict(probe));
    EXPECT_EQ(loaded->uncertainty(probe), model.uncertainty(probe));
    EXPECT_EQ(loaded->uncertaintyThreshold(),
              model.uncertaintyThreshold());
    EXPECT_EQ(loaded->render(), text) << "render must be a fixpoint";
}

TEST(ModelFormat, LinearRoundTripIsExact)
{
    FitOptions options;
    const auto model =
        fitLinearModel({"f0", "f1", "c"}, syntheticRows(), options);
    expectRoundTripExact(*model, {0.37, 1.21, 3.0});
}

TEST(ModelFormat, TreeRoundTripIsExact)
{
    FitOptions options;
    const auto model =
        fitRegressionTree({"f0", "f1", "c"}, syntheticRows(), options);
    expectRoundTripExact(*model, {0.37, 1.21, 3.0});
}

TEST(ModelFormat, SaveAndLoadThroughAFile)
{
    FitOptions options;
    const auto model =
        fitLinearModel({"f0", "f1", "c"}, syntheticRows(), options);
    const std::string path = ::testing::TempDir() + "ws_model.txt";
    model->save(path);
    const auto loaded = loadModel(path);
    EXPECT_EQ(loaded->render(), model->render());
    std::remove(path.c_str());
    EXPECT_THROW(loadModel("/no/such/model.txt"), ModelError);
}

/** EXPECT that parsing throws and what() contains every needle. */
void
expectModelError(const std::string &text,
                 const std::vector<std::string> &needles)
{
    try {
        parseModel(text, "m.txt");
        FAIL() << "expected ModelError";
    } catch (const ModelError &err) {
        const std::string what = err.what();
        for (const std::string &needle : needles) {
            EXPECT_NE(what.find(needle), std::string::npos)
                << "missing '" << needle << "' in: " << what;
        }
    }
}

TEST(ModelFormat, MalformedFilesAreNamedErrors)
{
    expectModelError("", {"m.txt"});
    expectModelError("sos-model 2\n", {"m.txt:1", "version"});
    expectModelError("sos-model 1\nfeatures 99\n",
                     {"m.txt:2", "feature schema"});
    expectModelError("sos-model 1\nfeatures 1\nkind spline\n",
                     {"m.txt:3", "spline"});
    const std::string header = "sos-model 1\nfeatures 1\nkind linear\n"
                               "uncertainty_threshold 0.5\n";
    expectModelError(header + "nfeatures 2\nfeature a 0 1\n",
                     {"m.txt"});
    // A complete model followed by trailing junk must not parse.
    FitOptions options;
    const auto model = fitLinearModel({"a"}, {}, options);
    expectModelError(model->render() + "junk\n", {"m.txt"});
    // ...and a truncated one (no "end") must not either.
    std::string text = model->render();
    text.resize(text.rfind("end"));
    expectModelError(text, {"m.txt"});
}

TEST(Dataset, JoinsCandidatesWithResultsAndCountsSkips)
{
    stats::EventTrace trace;
    const std::vector<std::string> &names = featureNames();
    const auto candidate = [&](const std::string &exp, int index,
                               double seed) {
        auto event = trace.event("sample_candidate")
                         .field("experiment", exp)
                         .field("index", index)
                         .field("sample_ws", seed)
                         .field("features_version",
                                kFeatureSchemaVersion);
        for (std::size_t f = 0; f < names.size(); ++f)
            event.field("feat_" + names[f],
                        seed + static_cast<double>(f));
    };
    candidate("A", 0, 0.25);
    candidate("A", 1, 0.5);
    candidate("A", 2, 0.75); // no symbios_result -> skippedNoResult
    // A featureless candidate (hierarchical driver style).
    trace.event("sample_candidate")
        .field("experiment", "H")
        .field("index", 0)
        .field("allocation", "4+2");
    trace.event("symbios_result")
        .field("experiment", "A")
        .field("index", 0)
        .field("ws", 1.25);
    trace.event("symbios_result")
        .field("experiment", "A")
        .field("index", 1)
        .field("ws", 1.5);

    const Dataset dataset =
        datasetFromTrace(stats::parseTraceText(trace.render(), "t"));
    EXPECT_EQ(dataset.featureNames, names);
    ASSERT_EQ(dataset.rows.size(), 2u);
    EXPECT_EQ(dataset.rows[0].experiment, "A");
    EXPECT_EQ(dataset.rows[0].ws, 1.25);
    EXPECT_EQ(dataset.rows[1].ws, 1.5);
    EXPECT_EQ(dataset.rows[1].sampleWs, 0.5);
    EXPECT_EQ(dataset.skippedNoResult, 1);
    EXPECT_EQ(dataset.skippedNoFeatures, 1);
}

TEST(Dataset, FeatureSchemaMismatchIsAnError)
{
    stats::EventTrace trace;
    trace.event("sample_candidate")
        .field("experiment", "A")
        .field("index", 0)
        .field("sample_ws", 0.5)
        .field("features_version", kFeatureSchemaVersion + 1)
        .field("feat_units", 4.0);
    EXPECT_THROW(
        datasetFromTrace(stats::parseTraceText(trace.render(), "t")),
        ModelError);
}

} // namespace

