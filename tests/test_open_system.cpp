/** @file Integration tests for the Section 9 open system. */

#include <gtest/gtest.h>

#include "sim/open_system.hh"

namespace sos {
namespace {

SimConfig
fast()
{
    return makeFastConfig();
}

OpenSystemConfig
smallSystem(int level)
{
    OpenSystemConfig config;
    config.level = level;
    config.numJobs = 10;
    config.meanJobPaperCycles = 40000000; // short jobs for tests
    config.seed = 77;
    return config;
}

TEST(OpenSystem, TraceIsDeterministic)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = smallSystem(2);
    const auto a = makeArrivalTrace(sim, config);
    const auto b = makeArrivalTrace(sim, config);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].workload, b[i].workload);
        EXPECT_EQ(a[i].arrivalCycle, b[i].arrivalCycle);
        EXPECT_EQ(a[i].sizeInstructions, b[i].sizeInstructions);
    }
}

TEST(OpenSystem, TraceIsOrderedAndSized)
{
    const auto trace = makeArrivalTrace(fast(), smallSystem(3));
    ASSERT_EQ(trace.size(), 10u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        EXPECT_GE(trace[i].arrivalCycle, trace[i - 1].arrivalCycle);
    for (const JobArrival &arrival : trace)
        EXPECT_GT(arrival.sizeInstructions, 0u);
}

TEST(OpenSystem, InterarrivalDefaultDerivedFromLoad)
{
    const SimConfig sim = fast();
    OpenSystemConfig config;
    config.level = 3;
    EXPECT_GT(config.effectiveInterarrivalPaper(sim), 0u);
    config.meanInterarrivalPaper = 12345;
    EXPECT_EQ(config.effectiveInterarrivalPaper(sim), 12345u);
}

TEST(OpenSystem, NaiveCompletesAllJobs)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = smallSystem(2);
    const auto trace = makeArrivalTrace(sim, config);
    const auto result =
        runOpenSystem(sim, config, trace, OpenPolicy::Naive);
    EXPECT_EQ(result.completed, 10);
    EXPECT_GT(result.meanResponseCycles, 0.0);
    for (std::uint64_t response : result.responseByArrival)
        EXPECT_GT(response, 0u);
    EXPECT_EQ(result.sampleCycles, 0u); // naive never samples
}

TEST(OpenSystem, SosCompletesAllJobsAndSamples)
{
    const SimConfig sim = fast();
    OpenSystemConfig config = smallSystem(3);
    // Push arrivals close together so the queue exceeds the SMT level
    // and SOS actually has schedules to sample.
    config.meanInterarrivalPaper = config.meanJobPaperCycles / 4;
    const auto trace = makeArrivalTrace(sim, config);
    const auto result =
        runOpenSystem(sim, config, trace, OpenPolicy::Sos);
    EXPECT_EQ(result.completed, 10);
    EXPECT_GT(result.samplePhases, 0);
}

TEST(OpenSystem, ResponseIncludesQueueingDelay)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = smallSystem(2);
    const auto trace = makeArrivalTrace(sim, config);
    const auto result =
        runOpenSystem(sim, config, trace, OpenPolicy::Naive);
    // Mean response must exceed the mean solo execution time: jobs
    // share the machine.
    const double mean_solo =
        static_cast<double>(sim.scaled(config.meanJobPaperCycles));
    EXPECT_GT(result.meanResponseCycles, 0.5 * mean_solo);
}

TEST(OpenSystem, SystemStaysStable)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = smallSystem(3);
    const auto trace = makeArrivalTrace(sim, config);
    const auto result =
        runOpenSystem(sim, config, trace, OpenPolicy::Naive);
    EXPECT_LT(result.meanJobsInSystem, 12.0);
}

TEST(OpenSystem, ComparisonCoversBothPolicies)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = smallSystem(2);
    const auto comparison = compareResponseTimes(sim, config);
    EXPECT_EQ(comparison.naive.completed, 10);
    EXPECT_EQ(comparison.sos.completed, 10);
    EXPECT_EQ(comparison.jobsCompared, 10);
    EXPECT_GT(comparison.naive.meanResponseCycles, 0.0);
    EXPECT_GT(comparison.sos.meanResponseCycles, 0.0);
    // Improvement is a finite percentage (sign depends on the tiny
    // test workload; Figures 5-6 use real sizes).
    EXPECT_LT(std::abs(comparison.improvementPct), 100.0);
}

TEST(OpenSystem, DeterministicPolicyRuns)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = smallSystem(2);
    const auto trace = makeArrivalTrace(sim, config);
    const auto a = runOpenSystem(sim, config, trace, OpenPolicy::Sos);
    const auto b = runOpenSystem(sim, config, trace, OpenPolicy::Sos);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_DOUBLE_EQ(a.meanResponseCycles, b.meanResponseCycles);
}

} // namespace
} // namespace sos
