/**
 * @file
 * stats::Quantile: streaming percentiles within log-bucket tolerance.
 */

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "stats/json.hh"
#include "stats/stats.hh"

namespace sos::stats {
namespace {

/** Exact quantile of a sorted sample: the ceil(q*n)-th smallest. */
double
exactQuantile(std::vector<double> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    const auto n = static_cast<double>(sorted.size());
    auto rank = static_cast<std::size_t>(std::ceil(q * n));
    rank = std::max<std::size_t>(1, std::min(sorted.size(), rank));
    return sorted[rank - 1];
}

/** One bucket of relative tolerance (2^-kSubBits), plus the unit. */
void
expectWithinBucket(double estimate, double exact)
{
    const double tolerance =
        exact / static_cast<double>(1 << Quantile::kSubBits) + 1.0;
    EXPECT_NEAR(estimate, exact, tolerance)
        << "exact=" << exact << " estimate=" << estimate;
}

TEST(Quantile, EmptyRendersZeros)
{
    Quantile stat("q", "");
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.quantile(0.5), 0.0);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.max(), 0.0);
}

TEST(Quantile, PinsPercentilesAgainstSortedValues)
{
    // Exponential-ish spread over five decades, like response times.
    Rng rng(0x9a11e7);
    std::vector<double> values;
    for (int i = 0; i < 20000; ++i)
        values.push_back(std::floor(rng.exponential(250000.0)));

    Quantile stat("q", "");
    stat.samples(values);
    ASSERT_EQ(stat.count(), values.size());

    for (const double q : {0.50, 0.95, 0.99})
        expectWithinBucket(stat.quantile(q), exactQuantile(values, q));

    // count/mean/min/max are tracked exactly, not via buckets.
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    EXPECT_DOUBLE_EQ(stat.mean(),
                     sum / static_cast<double>(values.size()));
    EXPECT_DOUBLE_EQ(stat.min(),
                     *std::min_element(values.begin(), values.end()));
    EXPECT_DOUBLE_EQ(stat.max(),
                     *std::max_element(values.begin(), values.end()));
}

TEST(Quantile, SmallIntegerSamplesAreExact)
{
    // Values below 2^kSubBits get unit-width buckets: percentiles of
    // small samples are exact, not approximated.
    Quantile stat("q", "");
    for (int v = 1; v <= 20; ++v)
        stat.sample(static_cast<double>(v));
    EXPECT_DOUBLE_EQ(stat.quantile(0.50), 10.0);
    EXPECT_DOUBLE_EQ(stat.quantile(0.95), 19.0);
    EXPECT_DOUBLE_EQ(stat.quantile(1.00), 20.0);
}

TEST(Quantile, OrderIndependent)
{
    // The histogram is a pure function of the multiset of samples, so
    // any accumulation order renders identically (the property that
    // lets per-node samples merge deterministically).
    std::vector<double> values;
    Rng rng(7);
    for (int i = 0; i < 500; ++i)
        values.push_back(std::floor(rng.exponential(9999.0)));

    Quantile forward("a", "");
    forward.samples(values);
    std::reverse(values.begin(), values.end());
    Quantile backward("b", "");
    backward.samples(values);
    EXPECT_EQ(forward.renderText(), backward.renderText());
}

TEST(Quantile, RegistersLikeDistribution)
{
    Registry registry;
    Quantile &q = Group(registry).group("cluster").quantile(
        "response", "response-time percentiles");
    q.sample(100.0);
    q.sample(200.0);
    EXPECT_EQ(registry.find("cluster.response"), &q);
    EXPECT_EQ(q.kind(), Kind::Quantile);
    // Duplicate registration still throws like every other kind.
    EXPECT_THROW(registry.quantile("cluster.response"),
                 std::invalid_argument);

    std::string document;
    JsonWriter json(&document);
    writeJsonTree(registry, json);
    EXPECT_NE(document.find("\"p50\""), std::string::npos);
    EXPECT_NE(document.find("\"p95\""), std::string::npos);
    EXPECT_NE(document.find("\"p99\""), std::string::npos);
}

} // namespace
} // namespace sos::stats
