/**
 * @file
 * The samplek online screen, end to end: train a model from one full
 * run's decision trace, re-run the same experiment with --set
 * samplek=K, and check the contract -- at most half the candidates are
 * detail-simulated, every predictor's pick stays within 2% WS of its
 * full-sample pick, and the default-off path is untouched.
 */

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/predictor.hh"
#include "model/trainer.hh"
#include "sim/batch_experiment.hh"
#include "stats/trace.hh"
#include "stats/trace_reader.hh"

namespace sos {
namespace {

constexpr const char *kLabel = "Jsb(6,3,1)"; // 10 candidates of 60

/** Fit a model on one experiment's own trace; return its file path. */
std::string
trainModelFrom(const BatchExperiment &exp)
{
    stats::EventTrace trace;
    exp.recordTrace(trace);
    const model::Dataset dataset = model::datasetFromTrace(
        stats::parseTraceText(trace.render(), "samplek-test"));
    EXPECT_EQ(dataset.rows.size(), exp.schedules().size());
    const model::FitOptions options;
    const auto ws_model = model::fitLinearModel(dataset.featureNames,
                                                dataset.rows, options);
    const std::string path = ::testing::TempDir() + "samplek_model.txt";
    ws_model->save(path);
    return path;
}

TEST(Samplek, ScreensToHalfTheCandidatesWithinTwoPercentWs)
{
    // Full-sample reference run; its symbios WS per candidate is the
    // ground truth (candidate drawing is deterministic per config, so
    // both runs see the same 10 schedules).
    BatchExperiment full(experimentByLabel(kLabel), makeFastConfig());
    full.runSamplePhase();
    full.runSymbiosValidation();
    const std::size_t count = full.schedules().size();
    ASSERT_EQ(count, 10u);

    const std::string model_path = trainModelFrom(full);

    SimConfig screened_config = makeFastConfig();
    screened_config.samplek = 3;
    screened_config.modelPath = model_path;
    BatchExperiment screened(experimentByLabel(kLabel), screened_config);
    screened.runSamplePhase();

    ASSERT_EQ(screened.schedules().size(), count);
    ASSERT_EQ(screened.profiles().size(), count);
    std::size_t detailed = 0;
    for (std::size_t i = 0; i < count; ++i) {
        const ScheduleProfile &profile = screened.profiles()[i];
        EXPECT_EQ(profile.label, full.schedules()[i].label());
        if (profile.detailed) {
            ++detailed;
            // Detailed profiles are bit-identical to the full run's.
            EXPECT_EQ(profile.counters.cycles,
                      full.profiles()[i].counters.cycles);
            EXPECT_DOUBLE_EQ(profile.sampleWs,
                             full.profiles()[i].sampleWs);
        } else {
            // Synthetic fill-ins carry the prediction, no counters.
            EXPECT_EQ(profile.counters.cycles, 0u);
            EXPECT_TRUE(profile.sliceIpc.empty());
        }
    }
    EXPECT_GE(detailed, 3u);
    EXPECT_LE(detailed, count / 2) << "screen must simulate <= half";
    EXPECT_LT(screened.samplePhaseCycles(), full.samplePhaseCycles());

    // Every predictor's screened pick must be a detailed candidate
    // whose realized WS is within 2% of its full-sample pick's.
    screened.runSymbiosValidation();
    for (const auto &predictor : makeAllPredictors()) {
        const int full_pick = full.predictedIndex(*predictor);
        const int pick = screened.predictedIndex(*predictor);
        ASSERT_GE(pick, 0);
        ASSERT_LT(static_cast<std::size_t>(pick), count);
        EXPECT_TRUE(screened.profiles()[pick].detailed)
            << predictor->name();
        const double full_ws =
            full.symbiosWs()[static_cast<std::size_t>(full_pick)];
        const double ws =
            screened.symbiosWs()[static_cast<std::size_t>(pick)];
        EXPECT_GE(ws, 0.98 * full_ws) << predictor->name();
    }

    std::remove(model_path.c_str());
}

TEST(Samplek, ModelPathAloneLeavesTheSamplePhaseUntouched)
{
    // samplek=0 (the default) must stay bit-identical even when a
    // model is configured -- the golden manifests pin the same thing
    // end to end; this isolates it to the profile level.
    BatchExperiment full(experimentByLabel(kLabel), makeFastConfig());
    full.runSamplePhase();
    full.runSymbiosValidation(); // recordTrace needs symbios_result
    const std::string model_path = trainModelFrom(full);

    SimConfig config = makeFastConfig();
    config.modelPath = model_path;
    BatchExperiment with_model(experimentByLabel(kLabel), config);
    with_model.runSamplePhase();

    ASSERT_EQ(with_model.profiles().size(), full.profiles().size());
    for (std::size_t i = 0; i < full.profiles().size(); ++i) {
        EXPECT_TRUE(with_model.profiles()[i].detailed);
        EXPECT_DOUBLE_EQ(with_model.profiles()[i].sampleWs,
                         full.profiles()[i].sampleWs);
        EXPECT_EQ(with_model.profiles()[i].counters.retired,
                  full.profiles()[i].counters.retired);
    }
    std::remove(model_path.c_str());
}

} // namespace
} // namespace sos
