/** @file Unit tests for statistics helpers. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "common/stats_util.hh"

namespace sos {
namespace {

TEST(RunningStat, EmptyIsZero)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleValue)
{
    RunningStat s;
    s.push(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
    EXPECT_DOUBLE_EQ(s.sum(), 4.5);
}

TEST(RunningStat, MatchesDirectComputation)
{
    Rng rng(1);
    std::vector<double> xs;
    RunningStat s;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform() * 100.0 - 50.0;
        xs.push_back(x);
        s.push(x);
    }
    EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
}

TEST(RunningStat, MinMaxTracked)
{
    RunningStat s;
    for (double x : {3.0, -1.0, 7.0, 2.0})
        s.push(x);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStat, ResetClears)
{
    RunningStat s;
    s.push(1.0);
    s.push(2.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(VectorStats, KnownValues)
{
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0); // classic textbook example
}

TEST(VectorStats, EmptyAndSingleton)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(SafeDiv, ZeroDenominator)
{
    EXPECT_DOUBLE_EQ(safeDiv(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(5.0, 2.0), 2.5);
}

TEST(Percentile, Endpoints)
{
    std::vector<double> xs{5.0, 1.0, 3.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> xs{0.0, 10.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Percentile, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

/** Property sweep: RunningStat agrees with the vector helpers. */
class StatAgreement : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(StatAgreement, RunningMatchesBatch)
{
    Rng rng(GetParam());
    const int n = 1 + static_cast<int>(rng.below(300));
    RunningStat s;
    std::vector<double> xs;
    for (int i = 0; i < n; ++i) {
        const double x = rng.exponential(10.0) - 5.0;
        s.push(x);
        xs.push_back(x);
    }
    EXPECT_NEAR(s.mean(), mean(xs), 1e-9);
    EXPECT_NEAR(s.stddev(), stddev(xs), 1e-9);
    EXPECT_EQ(s.count(), xs.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatAgreement,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55,
                                           89));

} // namespace
} // namespace sos
