/**
 * @file
 * Thread-to-core allocation-policy tests: every registered policy
 * returns a well-formed equal partition, the individual policies
 * honour their contracts (naive packing order, seeded-random
 * determinism, balanced-icount load spreading, synpa's affinity
 * grouping and its naive cold-start fallback).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/thread_to_core.hh"

namespace sos {
namespace {

AllocationContext
contextFor(int jobs, int cores)
{
    AllocationContext ctx;
    ctx.numJobs = jobs;
    ctx.numCores = cores;
    ctx.soloIpc.assign(static_cast<std::size_t>(jobs), 1.0);
    ctx.seed = 0xfeedULL;
    return ctx;
}

/** Every job exactly once, groups of equal size, sorted ascending. */
void
expectWellFormed(const Partition &allocation, int jobs, int cores)
{
    ASSERT_EQ(static_cast<int>(allocation.size()), cores);
    std::set<int> seen;
    for (const std::vector<int> &group : allocation) {
        EXPECT_EQ(static_cast<int>(group.size()), jobs / cores);
        EXPECT_TRUE(std::is_sorted(group.begin(), group.end()));
        seen.insert(group.begin(), group.end());
    }
    EXPECT_EQ(static_cast<int>(seen.size()), jobs);
}

TEST(ThreadToCore, RegistryListsTheFamily)
{
    const std::vector<std::string> names = threadToCorePolicyNames();
    for (const char *expected :
         {"balanced-icount", "big-core-first", "naive", "random",
          "synpa", "synpa-class"}) {
        EXPECT_TRUE(std::find(names.begin(), names.end(), expected) !=
                    names.end())
            << expected;
    }
}

TEST(ThreadToCore, EveryPolicyReturnsAWellFormedPartition)
{
    for (const std::string &name : threadToCorePolicyNames()) {
        const auto policy = makeThreadToCorePolicy(name);
        EXPECT_EQ(policy->name(), name);
        for (const auto &[jobs, cores] :
             {std::pair{8, 2}, {8, 4}, {12, 4}, {6, 1}}) {
            const Partition allocation =
                policy->allocate(contextFor(jobs, cores));
            expectWellFormed(allocation, jobs, cores);
        }
    }
}

TEST(ThreadToCore, NaivePacksInIndexOrder)
{
    const auto policy = makeThreadToCorePolicy("naive");
    const Partition allocation = policy->allocate(contextFor(8, 2));
    EXPECT_EQ(allocation[0], (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(allocation[1], (std::vector<int>{4, 5, 6, 7}));
}

TEST(ThreadToCore, RandomIsSeedDeterministic)
{
    const auto policy = makeThreadToCorePolicy("random");
    AllocationContext ctx = contextFor(8, 2);
    const Partition a = policy->allocate(ctx);
    const Partition b = policy->allocate(ctx);
    EXPECT_EQ(a, b);
    ctx.seed ^= 1;
    // A different seed is allowed to coincide, but across two draws
    // of 35 partitions a repeat of both would be suspicious.
    AllocationContext ctx2 = contextFor(12, 4);
    ctx2.seed = ctx.seed;
    const Partition c = policy->allocate(ctx);
    const Partition d = policy->allocate(ctx2);
    expectWellFormed(c, 8, 2);
    expectWellFormed(d, 12, 4);
}

TEST(ThreadToCore, BalancedIcountSpreadsTheFastJobs)
{
    const auto policy = makeThreadToCorePolicy("balanced-icount");
    AllocationContext ctx = contextFor(8, 2);
    // Jobs 0..3 fast, 4..7 slow: LPT must split the fast ones 2/2.
    ctx.soloIpc = {4.0, 4.0, 4.0, 4.0, 1.0, 1.0, 1.0, 1.0};
    const Partition allocation = policy->allocate(ctx);
    for (const std::vector<int> &group : allocation) {
        const int fast = static_cast<int>(
            std::count_if(group.begin(), group.end(),
                          [](int j) { return j < 4; }));
        EXPECT_EQ(fast, 2) << "a core hoarded the high-IPC jobs";
    }
}

TEST(ThreadToCore, SynpaFallsBackToNaiveWithoutSamples)
{
    const auto synpa = makeThreadToCorePolicy("synpa");
    const auto naive = makeThreadToCorePolicy("naive");
    const AllocationContext ctx = contextFor(8, 4);
    EXPECT_EQ(synpa->allocate(ctx), naive->allocate(ctx));
}

TEST(ThreadToCore, SynpaGroupsHighAffinityPairs)
{
    const auto policy = makeThreadToCorePolicy("synpa");
    AllocationContext ctx = contextFor(4, 2);
    // Sampled coschedules say {0,3} and {1,2} ran well together and
    // the naive pairs ran poorly.
    CoscheduleSample good;
    good.tuples = {{0, 3}, {1, 2}};
    good.ws = 2.0;
    CoscheduleSample bad;
    bad.tuples = {{0, 1}, {2, 3}};
    bad.ws = 1.0;
    ctx.samples = {good, bad};
    const Partition allocation = policy->allocate(ctx);
    EXPECT_EQ(allocation[0], (std::vector<int>{0, 3}));
    EXPECT_EQ(allocation[1], (std::vector<int>{1, 2}));
}

TEST(ThreadToCore, BigCoreFirstPacksByIpcOnHomogeneousMachines)
{
    // No class info: capability order is the identity, so the policy
    // is IPC-sorted in-order packing.
    const auto policy = makeThreadToCorePolicy("big-core-first");
    AllocationContext ctx = contextFor(8, 2);
    ctx.soloIpc = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
    const Partition allocation = policy->allocate(ctx);
    expectWellFormed(allocation, 8, 2);
    EXPECT_EQ(allocation[0], (std::vector<int>{4, 5, 6, 7}));
    EXPECT_EQ(allocation[1], (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadToCore, BigCoreFirstSendsFastJobsToTheCapableCore)
{
    // Core 1 belongs to the more capable class (higher mean solo
    // IPC), so the highest-IPC jobs must land there -- placement now
    // carries information, not just grouping.
    const auto policy = makeThreadToCorePolicy("big-core-first");
    AllocationContext ctx = contextFor(8, 2);
    ctx.soloIpc = {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0};
    ctx.coreClass = {0, 1};
    ctx.soloIpcByClass = {
        {0.3, 0.5, 0.8, 1.0, 1.2, 1.5, 1.8, 2.0},  // little class
        {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}}; // big class
    const Partition allocation = policy->allocate(ctx);
    expectWellFormed(allocation, 8, 2);
    EXPECT_EQ(allocation[1], (std::vector<int>{4, 5, 6, 7}))
        << "fast jobs belong on the big core";
    EXPECT_EQ(allocation[0], (std::vector<int>{0, 1, 2, 3}));
}

TEST(ThreadToCore, SynpaClassKeepsGroupsButRanksThePlacement)
{
    // synpa-class reuses synpa's affinity grouping, then gives the
    // group with the most solo throughput at stake to the most
    // capable core.
    const auto policy = makeThreadToCorePolicy("synpa-class");
    AllocationContext ctx = contextFor(4, 2);
    CoscheduleSample good;
    good.tuples = {{0, 3}, {1, 2}};
    good.ws = 2.0;
    CoscheduleSample bad;
    bad.tuples = {{0, 1}, {2, 3}};
    bad.ws = 1.0;
    ctx.samples = {good, bad};
    ctx.soloIpc = {4.0, 1.0, 1.0, 4.0};
    ctx.coreClass = {0, 1};
    ctx.soloIpcByClass = {{1.0, 0.5, 0.5, 1.0},  // little class
                          {4.0, 1.0, 1.0, 4.0}}; // big class
    const Partition allocation = policy->allocate(ctx);
    expectWellFormed(allocation, 4, 2);
    EXPECT_EQ(allocation[1], (std::vector<int>{0, 3}))
        << "the demanding affinity group gets the big core";
    EXPECT_EQ(allocation[0], (std::vector<int>{1, 2}));
}

TEST(ThreadToCore, HeteroPoliciesStayWellFormedEverywhere)
{
    // The class-aware policies must keep the partition contract on
    // every shape, including single-core and classless contexts.
    for (const char *name : {"big-core-first", "synpa-class"}) {
        const auto policy = makeThreadToCorePolicy(name);
        for (const auto &[jobs, cores] :
             {std::pair{8, 2}, {8, 4}, {12, 4}, {6, 1}}) {
            AllocationContext ctx = contextFor(jobs, cores);
            if (cores > 1) {
                // Alternate classes 0/1 across the cores.
                for (int k = 0; k < cores; ++k)
                    ctx.coreClass.push_back(k % 2);
                ctx.soloIpcByClass = {
                    std::vector<double>(
                        static_cast<std::size_t>(jobs), 2.0),
                    std::vector<double>(
                        static_cast<std::size_t>(jobs), 1.0)};
            }
            expectWellFormed(policy->allocate(ctx), jobs, cores);
        }
    }
}

} // namespace
} // namespace sos
