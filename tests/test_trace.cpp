/** @file Unit tests for the synthetic trace generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/trace_generator.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

const WorkloadProfile &
profileOf(const std::string &name)
{
    return WorkloadLibrary::instance().get(name);
}

TEST(WorkloadLibrary, HasAllPaperBenchmarks)
{
    const auto &lib = WorkloadLibrary::instance();
    for (const char *name :
         {"FP", "MG", "WAVE", "SWIM", "SU2COR", "TURB3D", "GCC", "GO",
          "IS", "CG", "EP", "FT", "ARRAY", "ARRAY2", "mt_ARRAY",
          "mt_EP"}) {
        EXPECT_TRUE(lib.has(name)) << name;
    }
}

TEST(WorkloadLibrary, MixFractionsSane)
{
    const auto &lib = WorkloadLibrary::instance();
    for (const std::string &name : lib.names()) {
        const WorkloadProfile &p = lib.get(name);
        const double total = p.fracFpAdd + p.fracFpMult + p.fracFpDiv +
                             p.fracIntMult + p.fracLoad + p.fracStore;
        EXPECT_GT(total, 0.0) << name;
        EXPECT_LT(total, 1.0) << name; // room for IntAlu remainder
        EXPECT_GE(p.avgBasicBlock, 2.0) << name;
        EXPECT_GT(p.workingSetBytes, 0u) << name;
    }
}

TEST(WorkloadLibrary, ParallelVariantsDiffer)
{
    EXPECT_GT(profileOf("ARRAY2").syncInterval,
              profileOf("ARRAY").syncInterval);
}

TEST(TraceGenerator, Deterministic)
{
    TraceGenerator a(profileOf("GCC"), 42);
    TraceGenerator b(profileOf("GCC"), 42);
    for (int i = 0; i < 5000; ++i) {
        const UOp x = a.next();
        const UOp y = b.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(x.srcA, y.srcA);
        ASSERT_EQ(x.srcB, y.srcB);
        ASSERT_EQ(x.dst, y.dst);
        ASSERT_EQ(x.taken, y.taken);
    }
}

TEST(TraceGenerator, SeedsProduceDifferentStreams)
{
    TraceGenerator a(profileOf("GCC"), 1);
    TraceGenerator b(profileOf("GCC"), 2);
    int same = 0;
    for (int i = 0; i < 500; ++i) {
        const UOp x = a.next();
        const UOp y = b.next();
        same += (x.pc == y.pc && x.addr == y.addr) ? 1 : 0;
    }
    EXPECT_LT(same, 100);
}

TEST(TraceGenerator, CopyResumesExactly)
{
    TraceGenerator gen(profileOf("MG"), 77);
    for (int i = 0; i < 1234; ++i)
        gen.next();
    TraceGenerator resumed = gen; // descheduled-job checkpoint
    for (int i = 0; i < 2000; ++i) {
        const UOp x = gen.next();
        const UOp y = resumed.next();
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.addr, y.addr);
        ASSERT_EQ(static_cast<int>(x.cls), static_cast<int>(y.cls));
    }
}

TEST(TraceGenerator, MixMatchesProfile)
{
    const WorkloadProfile &p = profileOf("FP");
    TraceGenerator gen(p, 3);
    std::map<OpClass, int> counts;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        ++counts[gen.next().cls];

    const double fp_share =
        static_cast<double>(counts[OpClass::FpAdd] +
                            counts[OpClass::FpMult] +
                            counts[OpClass::FpDiv]) /
        n;
    // Branches and barriers dilute the arithmetic slots slightly.
    EXPECT_NEAR(fp_share, p.fpFraction(), 0.05);

    const double load_share =
        static_cast<double>(counts[OpClass::Load]) / n;
    EXPECT_NEAR(load_share, p.fracLoad, 0.05);

    const double branch_share =
        static_cast<double>(counts[OpClass::Branch]) / n;
    EXPECT_NEAR(branch_share, 1.0 / p.avgBasicBlock, 0.02);
}

TEST(TraceGenerator, IntegerWorkloadHasNoFp)
{
    TraceGenerator gen(profileOf("GO"), 5);
    for (int i = 0; i < 20000; ++i) {
        const UOp op = gen.next();
        EXPECT_FALSE(op.isFp());
        if (op.dst != NoReg && op.cls != OpClass::Load) {
            EXPECT_FALSE(isFpReg(op.dst));
        }
    }
}

TEST(TraceGenerator, BarrierSpacingMatchesSyncInterval)
{
    const WorkloadProfile &p = profileOf("ARRAY");
    TraceGenerator gen(p, 9);
    std::uint64_t last = 0;
    std::uint64_t count = 0;
    int barriers = 0;
    for (int i = 0; i < 40000; ++i) {
        const UOp op = gen.next();
        ++count;
        if (op.cls == OpClass::Barrier) {
            if (barriers > 0) {
                EXPECT_EQ(count - last, p.syncInterval);
            }
            last = count;
            ++barriers;
        }
    }
    EXPECT_GT(barriers, 10);
}

TEST(TraceGenerator, NonSyncWorkloadNeverBarriers)
{
    TraceGenerator gen(profileOf("GCC"), 11);
    for (int i = 0; i < 30000; ++i)
        EXPECT_NE(static_cast<int>(gen.next().cls),
                  static_cast<int>(OpClass::Barrier));
}

TEST(TraceGenerator, AddressesWithinFootprint)
{
    const WorkloadProfile &p = profileOf("IS");
    TraceGenerator gen(p, 13);
    for (int i = 0; i < 50000; ++i) {
        const UOp op = gen.next();
        if (op.isMem()) {
            // Data lives in [0, ws) plus the hot region above it.
            EXPECT_LT(op.addr, p.workingSetBytes + p.hotBytes);
            EXPECT_EQ(op.addr % 8, 0u);
        }
        EXPECT_GE(op.pc, 0x1000u);
        EXPECT_LT(op.pc, 0x1000 + p.codeBytes);
    }
}

TEST(TraceGenerator, BranchTargetsDeterministicPerPc)
{
    // The synthetic CFG must be a fixed graph: every taken branch at a
    // given pc jumps to the same target.
    TraceGenerator gen(profileOf("GCC"), 17);
    std::map<std::uint64_t, std::uint64_t> targets;
    std::uint64_t branch_pc = 0;
    bool pending = false;
    for (int i = 0; i < 100000; ++i) {
        const UOp op = gen.next();
        if (pending) {
            const auto it = targets.find(branch_pc);
            if (it == targets.end())
                targets.emplace(branch_pc, op.pc);
            else
                ASSERT_EQ(it->second, op.pc) << "pc " << branch_pc;
            pending = false;
        }
        if (op.cls == OpClass::Branch && op.taken) {
            branch_pc = op.pc;
            pending = true;
        }
    }
    EXPECT_GT(targets.size(), 20u);
}

TEST(TraceGenerator, BranchOutcomeBiasStablePerPc)
{
    // Predictable branch sites must be strongly biased: the dominant
    // outcome share per site should be near 1 for a predictable code.
    TraceGenerator gen(profileOf("MG"), 19); // predictability 0.97
    std::map<std::uint64_t, std::pair<int, int>> outcomes;
    for (int i = 0; i < 300000; ++i) {
        const UOp op = gen.next();
        if (op.cls == OpClass::Branch) {
            auto &[taken, total] = outcomes[op.pc];
            taken += op.taken ? 1 : 0;
            total += 1;
        }
    }
    double dominant_weighted = 0.0;
    int total_branches = 0;
    for (const auto &[pc, counts] : outcomes) {
        const auto [taken, total] = counts;
        if (total < 10)
            continue;
        const double frac = static_cast<double>(taken) / total;
        dominant_weighted += std::max(frac, 1.0 - frac) * total;
        total_branches += total;
    }
    ASSERT_GT(total_branches, 1000);
    EXPECT_GT(dominant_weighted / total_branches, 0.93);
}

TEST(TraceGenerator, ChaseLoadsAreSerialized)
{
    // CG's pointer chases must form a register chain: dst feeds the
    // next chase's source through the dedicated chase register.
    TraceGenerator gen(profileOf("CG"), 23);
    int chase_loads = 0;
    for (int i = 0; i < 100000; ++i) {
        const UOp op = gen.next();
        if (op.cls == OpClass::Load && op.dst == 31) {
            EXPECT_EQ(op.srcA, 31);
            ++chase_loads;
        }
    }
    EXPECT_GT(chase_loads, 1000);
}

TEST(TraceGenerator, CountAdvances)
{
    TraceGenerator gen(profileOf("EP"), 29);
    EXPECT_EQ(gen.count(), 0u);
    for (int i = 0; i < 100; ++i)
        gen.next();
    EXPECT_EQ(gen.count(), 100u);
}

/** Mix conformance across every workload in the library. */
class MixSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(MixSweep, LoadStoreShareTracksProfile)
{
    const WorkloadProfile &p = profileOf(GetParam());
    TraceGenerator gen(p, 31);
    int loads = 0;
    int stores = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const UOp op = gen.next();
        loads += op.cls == OpClass::Load ? 1 : 0;
        stores += op.cls == OpClass::Store ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(loads) / n, p.fracLoad, 0.04);
    EXPECT_NEAR(static_cast<double>(stores) / n, p.fracStore, 0.04);
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, MixSweep,
                         ::testing::Values("FP", "MG", "WAVE", "SWIM",
                                           "SU2COR", "TURB3D", "GCC",
                                           "GO", "IS", "CG", "EP", "FT",
                                           "ARRAY"));

} // namespace
} // namespace sos
