/** @file Unit tests for formatting helpers and env configuration. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/reporting.hh"
#include "sim/sim_config.hh"

namespace sos {
namespace {

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.23456, 0), "1");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(FmtCycles, UnitsScale)
{
    EXPECT_EQ(fmtCycles(999), "999");
    EXPECT_EQ(fmtCycles(1500), "1.5K");
    EXPECT_EQ(fmtCycles(2500000), "2.5M");
    EXPECT_EQ(fmtCycles(3000000000ULL), "3.0G");
}

TEST(BenchConfig, DefaultsWithoutEnv)
{
    unsetenv("SOS_CYCLE_SCALE");
    unsetenv("SOS_SEED");
    const SimConfig config = benchConfigFromEnv();
    EXPECT_EQ(config.cycleScale, SimConfig{}.cycleScale);
    EXPECT_EQ(config.seed, SimConfig{}.seed);
}

TEST(BenchConfig, EnvOverrides)
{
    setenv("SOS_CYCLE_SCALE", "250", 1);
    setenv("SOS_SEED", "4242", 1);
    const SimConfig config = benchConfigFromEnv();
    EXPECT_EQ(config.cycleScale, 250u);
    EXPECT_EQ(config.seed, 4242u);
    unsetenv("SOS_CYCLE_SCALE");
    unsetenv("SOS_SEED");
}

TEST(BenchConfig, RejectsBadScale)
{
    setenv("SOS_CYCLE_SCALE", "-3", 1);
    EXPECT_DEATH(benchConfigFromEnv(), "positive");
    unsetenv("SOS_CYCLE_SCALE");
}

TEST(SimConfigChecks, ScaledDurationMustSurvive)
{
    SimConfig config;
    config.cycleScale = 10000000000ULL;
    EXPECT_DEATH(config.scaled(100), "vanished");
}

} // namespace
} // namespace sos
