/** @file Unit tests for formatting helpers and env configuration. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/config_env.hh"
#include "sim/reporting.hh"
#include "sim/sim_config.hh"

namespace sos {
namespace {

TEST(Fmt, FixedPrecision)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(1.23456, 0), "1");
    EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, EdgeValues)
{
    EXPECT_EQ(fmt(0.0, 0), "0");
    EXPECT_EQ(fmt(0.0, 3), "0.000");
    EXPECT_EQ(fmt(-0.0004, 3), "-0.000");
    EXPECT_EQ(fmt(99.999, 2), "100.00");
}

TEST(FmtCycles, UnitsScale)
{
    EXPECT_EQ(fmtCycles(999), "999");
    EXPECT_EQ(fmtCycles(1500), "1.5K");
    EXPECT_EQ(fmtCycles(2500000), "2.5M");
    EXPECT_EQ(fmtCycles(3000000000ULL), "3.0G");
}

TEST(FmtCycles, BoundaryValues)
{
    // Below 1000 the count prints verbatim (this branch used %llu on a
    // uint64_t, which is not portable; it now goes via to_string).
    EXPECT_EQ(fmtCycles(0), "0");
    EXPECT_EQ(fmtCycles(1), "1");
    // Exact unit boundaries land in the larger unit.
    EXPECT_EQ(fmtCycles(1000), "1.0K");
    EXPECT_EQ(fmtCycles(999999), "1000.0K");
    EXPECT_EQ(fmtCycles(1000000), "1.0M");
    EXPECT_EQ(fmtCycles(999999999), "1000.0M");
    EXPECT_EQ(fmtCycles(1000000000ULL), "1.0G");
    EXPECT_EQ(fmtCycles(18446744073709551615ULL),
              "18446744073.7G");
}

TEST(BenchConfig, DefaultsWithoutEnv)
{
    unsetenv("SOS_CYCLE_SCALE");
    unsetenv("SOS_SEED");
    const SimConfig config = benchConfigFromEnv();
    EXPECT_EQ(config.cycleScale, SimConfig{}.cycleScale);
    EXPECT_EQ(config.seed, SimConfig{}.seed);
}

TEST(BenchConfig, EnvOverrides)
{
    setenv("SOS_CYCLE_SCALE", "250", 1);
    setenv("SOS_SEED", "4242", 1);
    const SimConfig config = benchConfigFromEnv();
    EXPECT_EQ(config.cycleScale, 250u);
    EXPECT_EQ(config.seed, 4242u);
    unsetenv("SOS_CYCLE_SCALE");
    unsetenv("SOS_SEED");
}

TEST(BenchConfig, RejectsBadScale)
{
    setenv("SOS_CYCLE_SCALE", "-3", 1);
    EXPECT_DEATH(benchConfigFromEnv(), "positive");
    unsetenv("SOS_CYCLE_SCALE");
}

TEST(SimConfigChecks, ScaledDurationMustSurvive)
{
    SimConfig config;
    config.cycleScale = 10000000000ULL;
    EXPECT_DEATH(config.scaled(100), "vanished");
}

} // namespace
} // namespace sos
