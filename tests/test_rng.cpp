/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"

namespace sos {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, CopyCheckpointsState)
{
    Rng a(7);
    for (int i = 0; i < 17; ++i)
        a.next();
    Rng checkpoint = a; // a paused job's stream state
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 50; ++i)
        expected.push_back(a.next());
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(checkpoint.next(), expected[static_cast<std::size_t>(i)]);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(99);
    const std::uint64_t first = a.next();
    for (int i = 0; i < 10; ++i)
        a.next();
    a.reseed(99);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(3);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000007ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowOneAlwaysZero)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(17);
    const double mean = 250.0;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(Rng, GeometricAtLeastOne)
{
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(rng.geometric(1.0), 1u);
}

TEST(Rng, GeometricMeanTracksParameter)
{
    Rng rng(23);
    const double mean = 12.0;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.geometric(mean));
    // floor(Exp(mean)) + 1 has mean close to mean + 0.5 for large mean.
    EXPECT_NEAR(sum / n, mean + 0.5, mean * 0.08);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(29);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(31);
    std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
    rng.shuffle(v);
    std::set<int> seen(v.begin(), v.end());
    EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, ShuffleActuallyPermutes)
{
    Rng rng(37);
    int moved = 0;
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
        rng.shuffle(v);
        for (std::size_t i = 0; i < v.size(); ++i)
            moved += v[i] != static_cast<int>(i) ? 1 : 0;
    }
    EXPECT_GT(moved, 50);
}

TEST(Mix64, DeterministicAndSpreads)
{
    EXPECT_EQ(mix64(1), mix64(1));
    std::set<std::uint64_t> outputs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        outputs.insert(mix64(i));
    EXPECT_EQ(outputs.size(), 1000u);
}

} // namespace
} // namespace sos
