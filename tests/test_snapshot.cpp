/**
 * @file
 * The snapshot-fork determinism contract (DESIGN.md §5c): forking a
 * warmed simulation is semantics-preserving. A fork's measured
 * interval must be bit-identical to letting the original warmed run
 * continue, on one core and on a whole machine; and the experiment
 * sweeps must produce byte-identical manifests with the snapshot fast
 * path on or off, at any worker count.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hh"
#include "sim/batch_experiment.hh"
#include "sim/machine_experiment.hh"
#include "sim/params_io.hh"
#include "sim/snapshot.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"

namespace sos {
namespace {

TEST(Snapshot, SingleCoreForkMatchesOriginal)
{
    const SimConfig config = makeFastConfig();
    const ExperimentSpec &spec = experimentByLabel("Jsb(4,2,2)");

    JobMix mix = spec.makeMix(config.seed);
    Machine machine(config.coreFor(spec.level), config.mem);
    TimesliceEngine engine(machine.core(0), config.timesliceCycles());
    const Schedule warm =
        Schedule::fromRotation({0, 1, 2, 3}, spec.level, spec.swap);
    engine.runSchedule(mix, warm, warm.periodTimeslices());

    const MachineSnapshot snapshot(machine, mix, engine);

    // The original warmed run simply continues; the fork re-creates
    // that state from the snapshot. Same schedule, same interval.
    const Schedule measured =
        Schedule::fromRotation({3, 1, 0, 2}, spec.level, spec.swap);
    const TimesliceEngine::ScheduleRunResult original =
        engine.runSchedule(mix, measured, 6);

    MachineSnapshot::Fork fork(snapshot);
    TimesliceEngine forked_engine(fork.machine().core(0),
                                  config.timesliceCycles());
    fork.adopt(forked_engine);
    const TimesliceEngine::ScheduleRunResult forked =
        forked_engine.runSchedule(fork.mix(), measured, 6);

    EXPECT_EQ(forked.total, original.total);
    EXPECT_EQ(forked.jobRetired, original.jobRetired);
    EXPECT_EQ(forked.sliceIpc, original.sliceIpc);
    EXPECT_EQ(forked.sliceMixImbalance, original.sliceMixImbalance);
    EXPECT_EQ(forked.cycles, original.cycles);
    EXPECT_GT(forked.total.retired, 0u);
}

TEST(Snapshot, MachineForkMatchesOriginal)
{
    const SimConfig config = makeFastConfig();
    MachineExperimentSpec spec;
    spec.label = "Jm(4,2,2,2)";
    spec.workloads = {"FP", "MG", "GCC", "IS"};
    spec.numCores = 2;
    spec.level = 2;
    spec.swap = 2;

    const MachineScheduleSpace space(spec.numJobs(), spec.numCores,
                                     spec.level, spec.swap);
    Rng rng(7);
    const std::vector<MachineSchedule> schedules = space.sample(2, rng);
    ASSERT_EQ(schedules.size(), 2u);

    JobMix mix = spec.makeMix(0x5eed);
    Machine machine(config.coreFor(spec.level), config.mem,
                    spec.numCores);
    MachineEngine engine(machine, config.timesliceCycles());
    engine.runSchedule(mix, schedules[0],
                       schedules[0].periodTimeslices());

    const MachineSnapshot snapshot(machine, mix, engine);

    const MachineEngine::MachineRunResult original =
        engine.runSchedule(mix, schedules[1], 6);

    MachineSnapshot::Fork fork(snapshot);
    MachineEngine forked_engine(fork.machine(),
                                config.timesliceCycles());
    fork.adopt(forked_engine);
    const MachineEngine::MachineRunResult forked =
        forked_engine.runSchedule(fork.mix(), schedules[1], 6);

    EXPECT_EQ(forked.total, original.total);
    EXPECT_EQ(forked.perCore, original.perCore);
    EXPECT_EQ(forked.jobRetired, original.jobRetired);
    EXPECT_EQ(forked.sliceIpc, original.sliceIpc);
    EXPECT_EQ(forked.sliceMixImbalance, original.sliceMixImbalance);
    EXPECT_EQ(forked.cycles, original.cycles);
    EXPECT_GT(forked.total.retired, 0u);
}

TEST(Snapshot, RepeatedForksAreIndependent)
{
    const SimConfig config = makeFastConfig();
    const ExperimentSpec &spec = experimentByLabel("Jsb(4,2,2)");

    JobMix mix = spec.makeMix(config.seed);
    Machine machine(config.coreFor(spec.level), config.mem);
    TimesliceEngine engine(machine.core(0), config.timesliceCycles());
    const Schedule warm =
        Schedule::fromRotation({0, 1, 2, 3}, spec.level, spec.swap);
    engine.runSchedule(mix, warm, warm.periodTimeslices());
    const MachineSnapshot snapshot(machine, mix, engine);

    const Schedule measured =
        Schedule::fromRotation({2, 0, 3, 1}, spec.level, spec.swap);
    const auto run_fork = [&] {
        MachineSnapshot::Fork fork(snapshot);
        TimesliceEngine forked_engine(fork.machine().core(0),
                                      config.timesliceCycles());
        fork.adopt(forked_engine);
        return forked_engine.runSchedule(fork.mix(), measured, 4);
    };
    // Running one fork must not perturb the snapshot: a second fork
    // reproduces the first bit-for-bit.
    const TimesliceEngine::ScheduleRunResult first = run_fork();
    const TimesliceEngine::ScheduleRunResult second = run_fork();
    EXPECT_EQ(first.total, second.total);
    EXPECT_EQ(first.jobRetired, second.jobRetired);
    EXPECT_EQ(first.sliceIpc, second.sliceIpc);
}

/** Full manifest of a batch experiment under the given host knobs. */
std::string
batchManifest(bool snapshot, int jobs)
{
    SimConfig config = makeFastConfig();
    config.snapshot = snapshot;
    config.jobs = jobs;
    BatchExperiment exp(experimentByLabel("Jsb(4,2,2)"), config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();

    stats::Registry registry;
    exp.publishStats(stats::Group(registry, "experiment"));
    stats::Manifest manifest;
    manifest.tool = "test_snapshot";
    manifest.gitRev = "pinned";
    manifest.seed = config.seed;
    manifest.config = configPairs(config);
    return renderManifest(manifest, registry);
}

TEST(Snapshot, BatchManifestIdenticalAcrossSnapshotAndJobs)
{
    // The escape hatch (SOS_SNAPSHOT=0) and the fast path must be
    // observationally indistinguishable: every stat, every formatted
    // double, at every worker count. configPairs omits the snapshot
    // knob (like jobs), so the config blocks agree too.
    const std::string reference = batchManifest(false, 1);
    for (const bool snapshot : {false, true}) {
        for (const int jobs : {1, 2, 8})
            EXPECT_EQ(reference, batchManifest(snapshot, jobs));
    }
}

TEST(Snapshot, MachineExperimentIdenticalAcrossSnapshotAndJobs)
{
    MachineExperimentSpec spec;
    spec.label = "Jm(4,2,2,2)";
    spec.workloads = {"FP", "MG", "GCC", "IS"};
    spec.numCores = 2;
    spec.level = 2;
    spec.swap = 2;

    struct Observed
    {
        std::vector<std::string> keys;
        std::vector<double> sampleWs;
        std::vector<double> symbiosWs;
    };
    std::vector<Observed> runs;
    for (const bool snapshot : {false, true}) {
        for (const int jobs : {1, 8}) {
            SimConfig config = makeFastConfig();
            config.snapshot = snapshot;
            config.jobs = jobs;
            MachineExperiment exp(spec, config);
            exp.runSamplePhase();
            exp.runSymbiosValidation();
            Observed obs;
            for (const MachineSchedule &s : exp.schedules())
                obs.keys.push_back(s.key());
            for (const ScheduleProfile &p : exp.profiles())
                obs.sampleWs.push_back(p.sampleWs);
            obs.symbiosWs = exp.symbiosWs();
            runs.push_back(std::move(obs));
        }
    }
    ASSERT_EQ(runs.size(), 4u);
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].keys, runs[0].keys);
        EXPECT_EQ(runs[i].sampleWs, runs[0].sampleWs);
        EXPECT_EQ(runs[i].symbiosWs, runs[0].symbiosWs);
    }
    EXPECT_FALSE(runs[0].symbiosWs.empty());
}

} // namespace
} // namespace sos
