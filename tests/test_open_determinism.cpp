/**
 * @file
 * Open-system determinism regression: two identical SOS runs must
 * produce byte-identical JSONL decision traces and byte-identical run
 * manifests, on both engine backends. This is the contract the CI
 * smoke step checks end-to-end with `cmp`; the test pins the one
 * host-dependent manifest field (gitRev) the same way the
 * adapter-equivalence goldens do.
 */

#include <gtest/gtest.h>

#include <string>

#include "sim/open_system.hh"
#include "sim/params_io.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {
namespace {

SimConfig
fast()
{
    return makeFastConfig();
}

OpenSystemConfig
busySystem(int level, int cores)
{
    OpenSystemConfig config;
    config.level = level;
    config.numCores = cores;
    config.numJobs = 8;
    config.meanJobPaperCycles = 40000000;
    // Dense arrivals so sample phases run (a trace with no decisions
    // would make this test vacuous); also skips the capacity probe.
    config.meanInterarrivalPaper = config.meanJobPaperCycles / 4;
    config.seed = 1203;
    return config;
}

/** One full SOS run rendered as (decision trace, manifest). */
struct Rendered
{
    std::string trace;
    std::string manifest;
    int samplePhases = 0;
};

Rendered
renderRun(const SimConfig &sim, const OpenSystemConfig &config)
{
    const std::vector<JobArrival> arrivals =
        makeArrivalTrace(sim, config);
    stats::EventTrace events;
    const OpenSystemResult result = runOpenSystem(
        sim, config, arrivals, OpenPolicy::Sos, &events);

    stats::Registry registry;
    const stats::Group open = stats::Group(registry).group("open");
    open.scalar("completed", "jobs completed") =
        static_cast<std::uint64_t>(result.completed);
    open.scalar("sample_phases", "sample phases run") =
        static_cast<std::uint64_t>(result.samplePhases);
    open.scalar("sample_cycles", "cycles spent sampling") =
        result.sampleCycles;
    open.scalar("total_cycles", "simulated cycles") =
        result.totalCycles;
    open.value("mean_response_cycles", "mean job response time") =
        result.meanResponseCycles;
    open.value("mean_jobs_in_system", "mean queue length") =
        result.meanJobsInSystem;

    stats::Manifest manifest;
    manifest.tool = "open_determinism";
    manifest.gitRev = "golden"; // pin the only host-dependent field
    manifest.seed = sim.seed;
    manifest.config = configPairs(sim);

    Rendered rendered;
    rendered.trace = events.render();
    rendered.manifest = renderManifest(manifest, registry);
    rendered.samplePhases = result.samplePhases;
    return rendered;
}

TEST(OpenDeterminism, SmtCoreRunsAreByteIdentical)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = busySystem(3, 1);
    const Rendered a = renderRun(sim, config);
    const Rendered b = renderRun(sim, config);
    EXPECT_GT(a.samplePhases, 0);
    EXPECT_FALSE(a.trace.empty());
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.manifest, b.manifest);
}

TEST(OpenDeterminism, CmpRunsAreByteIdentical)
{
    const SimConfig sim = fast();
    const OpenSystemConfig config = busySystem(2, 2);
    const Rendered a = renderRun(sim, config);
    const Rendered b = renderRun(sim, config);
    EXPECT_GT(a.samplePhases, 0);
    EXPECT_EQ(a.trace, b.trace);
    EXPECT_EQ(a.manifest, b.manifest);
}

TEST(OpenDeterminism, TraceEventsCarryTheDecisionSchema)
{
    const SimConfig sim = fast();
    const Rendered run = renderRun(sim, busySystem(3, 1));
    // Every sample phase begins with a sample_phase_begin record and
    // phases that ran to completion commit with a symbios_pick.
    EXPECT_NE(run.trace.find("\"event\":\"sample_phase_begin\""),
              std::string::npos);
    EXPECT_NE(run.trace.find("\"event\":\"symbios_pick\""),
              std::string::npos);
    EXPECT_NE(run.trace.find("\"trigger\":"), std::string::npos);
    EXPECT_NE(run.trace.find("\"schedule\":"), std::string::npos);
}

} // namespace
} // namespace sos
