/**
 * @file
 * Machine model tests: parameter validation at construction, the
 * 1-core machine's bit-for-bit equivalence with a hand-assembled
 * single core, per-core L2 contention attribution, and the
 * context-switch determinism contract (attach/detach mid-run replays
 * identically from a fresh machine).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

std::unique_ptr<Job>
makeJob(std::uint32_t id, const std::string &workload)
{
    return std::make_unique<Job>(
        id, WorkloadLibrary::instance().get(workload),
        0x900d5eedULL ^ id, 1, false);
}

ThreadBinding
bindingOf(Job &job, int thread = 0)
{
    ThreadBinding b;
    b.gen = &job.generator(thread);
    b.sync = job.syncDomain();
    b.syncIndex = thread;
    b.asid = job.asid();
    return b;
}

TEST(MachineParams, RejectsBadCoreCount)
{
    MachineParams params;
    params.numCores = 0;
    EXPECT_THROW(validateMachineParams(params), std::invalid_argument);
    params.numCores = MaxCores + 1;
    EXPECT_THROW(validateMachineParams(params), std::invalid_argument);
    params.numCores = MaxCores;
    EXPECT_NO_THROW(validateMachineParams(params));
}

TEST(MachineParams, RejectsBadCoreParamsAtConstruction)
{
    CoreParams core;
    core.numContexts = MaxContexts + 1;
    EXPECT_THROW(Machine(core, MemParams{}), std::invalid_argument);

    core = CoreParams{};
    core.fetchWidth = 0;
    EXPECT_THROW(Machine(core, MemParams{}), std::invalid_argument);

    core = CoreParams{};
    core.fpMulPipes = 9; // beyond the core's fpBusyUntil_ capacity
    EXPECT_THROW(Machine(core, MemParams{}), std::invalid_argument);
}

TEST(MachineParams, RejectsBadMemParamsAtConstruction)
{
    MemParams mem;
    mem.l1d.lineBytes = 0;
    EXPECT_THROW(Machine(CoreParams{}, mem), std::invalid_argument);

    mem = MemParams{};
    mem.l1d.sizeBytes = 1000; // not divisible into sets of lines
    EXPECT_THROW(Machine(CoreParams{}, mem), std::invalid_argument);
}

TEST(MachineParams, SmtCoreValidatesDirectly)
{
    // The satellite contract: constructing the core itself (not just
    // a Machine) throws instead of silently clamping.
    SharedL2 l2{MemParams{}, 1};
    CacheHierarchy view{MemParams{}, l2, 0};
    CoreParams bad;
    bad.numContexts = 0;
    EXPECT_THROW(SmtCore(bad, view), std::invalid_argument);
}

TEST(Machine, OneCoreMatchesHandAssembledCore)
{
    // Ownership moved, behaviour must not: a 1-core Machine and a
    // hand-wired SharedL2 + view + SmtCore see the same access
    // sequence and retire identical counters.
    PerfCounters viaMachine;
    {
        Machine machine(CoreParams{}, MemParams{});
        auto j1 = makeJob(1, "GCC");
        auto j2 = makeJob(2, "MG");
        machine.core(0).attachThread(0, bindingOf(*j1));
        machine.core(0).attachThread(1, bindingOf(*j2));
        machine.core(0).run(40000, viaMachine);
    }
    PerfCounters byHand;
    {
        SharedL2 l2{MemParams{}, 1};
        CacheHierarchy view{MemParams{}, l2, 0};
        SmtCore core{CoreParams{}, view};
        auto j1 = makeJob(1, "GCC");
        auto j2 = makeJob(2, "MG");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        core.run(40000, byHand);
    }
    EXPECT_EQ(viaMachine, byHand);
}

TEST(Machine, CoresSeeSeparatePrivateLevelsAndOneL2)
{
    Machine machine(CoreParams{}, MemParams{}, 2);
    ASSERT_EQ(machine.numCores(), 2);
    auto j1 = makeJob(1, "GCC");
    auto j2 = makeJob(2, "SWIM");
    machine.core(0).attachThread(0, bindingOf(*j1));
    machine.core(1).attachThread(0, bindingOf(*j2));
    PerfCounters pc0, pc1;
    machine.core(0).run(30000, pc0);
    machine.core(1).run(30000, pc1);
    EXPECT_GT(pc0.retired, 0u);
    EXPECT_GT(pc1.retired, 0u);

    // Contention attribution: the per-core counters partition the
    // shared cache's demand traffic.
    const SharedL2 &l2 = machine.sharedL2();
    const auto &c0 = l2.coreCounters(0);
    const auto &c1 = l2.coreCounters(1);
    EXPECT_GT(c0.accesses, 0u);
    EXPECT_GT(c1.accesses, 0u);
    EXPECT_EQ(c0.hits + c1.hits, l2.cache().hits());
    EXPECT_EQ(c0.misses + c1.misses, l2.cache().misses());

    // The private levels really are private: core 1 never touched
    // core 0's L1D.
    EXPECT_EQ(machine.memory(0).l1d().hits() +
                  machine.memory(0).l1d().misses(),
              pc0.l1dHits + pc0.l1dMisses);
}

TEST(Machine, ContextSwitchReplaysBitIdentically)
{
    // The determinism regression of the satellite list: detach and
    // attach mid-run (squashing in-flight work), then replay the same
    // sequence on a fresh machine and expect bit-identical counters.
    const auto episode = [](PerfCounters &out) {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        auto j1 = makeJob(1, "FP");
        auto j2 = makeJob(2, "GO");
        auto j3 = makeJob(3, "IS");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        core.run(7000, out); // mid-flight: queues are full here
        core.detachThread(1); // context-switch squash
        core.run(3000, out);
        core.attachThread(1, bindingOf(*j3));
        core.run(7000, out);
        core.detachThread(0);
        core.detachThread(1);
        core.run(1000, out);
    };
    PerfCounters first, second;
    episode(first);
    episode(second);
    EXPECT_GT(first.retired, 0u);
    EXPECT_EQ(first, second);
}

TEST(Machine, DetachAllAndFlushAllReset)
{
    Machine machine(CoreParams{}, MemParams{}, 2);
    auto j1 = makeJob(1, "GCC");
    machine.core(0).attachThread(0, bindingOf(*j1));
    machine.detachAll();
    PerfCounters pc;
    machine.core(0).run(1000, pc);
    EXPECT_EQ(pc.retired, 0u);
    machine.flushAll();
    EXPECT_EQ(machine.memory(0).l1d().residentLines(), 0u);
}

} // namespace
} // namespace sos
