/**
 * @file
 * Machine model tests: parameter validation at construction, the
 * 1-core machine's bit-for-bit equivalence with a hand-assembled
 * single core, per-core L2 contention attribution, and the
 * context-switch determinism contract (attach/detach mid-run replays
 * identically from a fresh machine).
 */

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

std::unique_ptr<Job>
makeJob(std::uint32_t id, const std::string &workload)
{
    return std::make_unique<Job>(
        id, WorkloadLibrary::instance().get(workload),
        0x900d5eedULL ^ id, 1, false);
}

ThreadBinding
bindingOf(Job &job, int thread = 0)
{
    ThreadBinding b;
    b.gen = &job.generator(thread);
    b.sync = job.syncDomain();
    b.syncIndex = thread;
    b.asid = job.asid();
    return b;
}

TEST(MachineParams, RejectsBadCoreCount)
{
    MachineParams params;
    params.numCores = 0;
    EXPECT_THROW(validateMachineParams(params), std::invalid_argument);
    params.numCores = MaxCores + 1;
    EXPECT_THROW(validateMachineParams(params), std::invalid_argument);
    params.numCores = MaxCores;
    EXPECT_NO_THROW(validateMachineParams(params));
}

TEST(MachineParams, RejectsBadCoreParamsAtConstruction)
{
    CoreParams core;
    core.numContexts = MaxContexts + 1;
    EXPECT_THROW(Machine(core, MemParams{}), std::invalid_argument);

    core = CoreParams{};
    core.fetchWidth = 0;
    EXPECT_THROW(Machine(core, MemParams{}), std::invalid_argument);

    core = CoreParams{};
    core.fpMulPipes = 9; // beyond the core's fpBusyUntil_ capacity
    EXPECT_THROW(Machine(core, MemParams{}), std::invalid_argument);
}

TEST(MachineParams, RejectsBadMemParamsAtConstruction)
{
    MemParams mem;
    mem.l1d.lineBytes = 0;
    EXPECT_THROW(Machine(CoreParams{}, mem), std::invalid_argument);

    mem = MemParams{};
    mem.l1d.sizeBytes = 1000; // not divisible into sets of lines
    EXPECT_THROW(Machine(CoreParams{}, mem), std::invalid_argument);
}

/** what() of the invalid_argument a callable throws. */
template <typename Fn>
std::string
thrownMessage(Fn &&fn)
{
    try {
        fn();
    } catch (const std::invalid_argument &err) {
        return err.what();
    }
    return "";
}

TEST(MachineParams, ValidationNamesTheFieldAndValue)
{
    // The satellite contract: errors say which knob broke and what it
    // held, so a config-file typo is diagnosable from the message.
    CoreParams core;
    core.fetchWidth = -3;
    std::string what =
        thrownMessage([&] { validateCoreParams(core); });
    EXPECT_NE(what.find("fetchWidth"), std::string::npos) << what;
    EXPECT_NE(what.find("-3"), std::string::npos) << what;

    MemParams mem;
    mem.l2HitLatency = 0;
    what = thrownMessage([&] { validateMemParams(mem); });
    EXPECT_NE(what.find("l2HitLatency"), std::string::npos) << what;
    EXPECT_NE(what.find("got 0"), std::string::npos) << what;

    mem = MemParams{};
    mem.l1d.sizeBytes = 1000;
    what = thrownMessage([&] { validateMemParams(mem); });
    EXPECT_NE(what.find("l1d"), std::string::npos) << what;
    EXPECT_NE(what.find("1000"), std::string::npos) << what;
}

TEST(MachineParams, PerCoreValidationNamesTheCore)
{
    MachineParams params;
    params.numCores = 2;
    params.cores = {CoreParams{}, CoreParams{}};
    params.cores[1].fetchWidth = 0;
    params.coreMem = {MemParams{}, MemParams{}};
    const std::string what =
        thrownMessage([&] { validateMachineParams(params); });
    EXPECT_NE(what.find("core 1"), std::string::npos) << what;
    EXPECT_NE(what.find("fetchWidth"), std::string::npos) << what;

    // Sized wrong: one entry per core or none at all.
    params.cores = {CoreParams{}};
    EXPECT_THROW(validateMachineParams(params), std::invalid_argument);
}

TEST(MachineParams, CoreClassesPartitionByEquality)
{
    MachineParams params;
    params.numCores = 4;
    EXPECT_TRUE(params.homogeneous());
    EXPECT_EQ(params.coreClasses(), (std::vector<int>{0, 0, 0, 0}));

    params.cores.assign(4, CoreParams{});
    params.coreMem.assign(4, MemParams{});
    EXPECT_TRUE(params.homogeneous()) << "identical entries";

    params.cores[2].fetchWidth = 4;
    params.cores[3].fetchWidth = 4;
    EXPECT_FALSE(params.homogeneous());
    EXPECT_EQ(params.coreClasses(), (std::vector<int>{0, 0, 1, 1}));

    // A memory-only difference also splits the classes.
    params.cores[2].fetchWidth = params.cores[0].fetchWidth;
    params.cores[3].fetchWidth = params.cores[0].fetchWidth;
    params.coreMem[1].l1d.sizeBytes = 32 * 1024;
    EXPECT_EQ(params.coreClasses(), (std::vector<int>{0, 1, 0, 0}));
}

TEST(MachineParams, SmtCoreValidatesDirectly)
{
    // The satellite contract: constructing the core itself (not just
    // a Machine) throws instead of silently clamping.
    SharedL2 l2{MemParams{}, 1};
    CacheHierarchy view{MemParams{}, l2, 0};
    CoreParams bad;
    bad.numContexts = 0;
    EXPECT_THROW(SmtCore(bad, view), std::invalid_argument);
}

TEST(Machine, OneCoreMatchesHandAssembledCore)
{
    // Ownership moved, behaviour must not: a 1-core Machine and a
    // hand-wired SharedL2 + view + SmtCore see the same access
    // sequence and retire identical counters.
    PerfCounters viaMachine;
    {
        Machine machine(CoreParams{}, MemParams{});
        auto j1 = makeJob(1, "GCC");
        auto j2 = makeJob(2, "MG");
        machine.core(0).attachThread(0, bindingOf(*j1));
        machine.core(0).attachThread(1, bindingOf(*j2));
        machine.core(0).run(40000, viaMachine);
    }
    PerfCounters byHand;
    {
        SharedL2 l2{MemParams{}, 1};
        CacheHierarchy view{MemParams{}, l2, 0};
        SmtCore core{CoreParams{}, view};
        auto j1 = makeJob(1, "GCC");
        auto j2 = makeJob(2, "MG");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        core.run(40000, byHand);
    }
    EXPECT_EQ(viaMachine, byHand);
}

TEST(Machine, CoresSeeSeparatePrivateLevelsAndOneL2)
{
    Machine machine(CoreParams{}, MemParams{}, 2);
    ASSERT_EQ(machine.numCores(), 2);
    auto j1 = makeJob(1, "GCC");
    auto j2 = makeJob(2, "SWIM");
    machine.core(0).attachThread(0, bindingOf(*j1));
    machine.core(1).attachThread(0, bindingOf(*j2));
    PerfCounters pc0, pc1;
    machine.core(0).run(30000, pc0);
    machine.core(1).run(30000, pc1);
    EXPECT_GT(pc0.retired, 0u);
    EXPECT_GT(pc1.retired, 0u);

    // Contention attribution: the per-core counters partition the
    // shared cache's demand traffic.
    const SharedL2 &l2 = machine.sharedL2();
    const auto &c0 = l2.coreCounters(0);
    const auto &c1 = l2.coreCounters(1);
    EXPECT_GT(c0.accesses, 0u);
    EXPECT_GT(c1.accesses, 0u);
    EXPECT_EQ(c0.hits + c1.hits, l2.cache().hits());
    EXPECT_EQ(c0.misses + c1.misses, l2.cache().misses());

    // The private levels really are private: core 1 never touched
    // core 0's L1D.
    EXPECT_EQ(machine.memory(0).l1d().hits() +
                  machine.memory(0).l1d().misses(),
              pc0.l1dHits + pc0.l1dMisses);
}

TEST(Machine, ContextSwitchReplaysBitIdentically)
{
    // The determinism regression of the satellite list: detach and
    // attach mid-run (squashing in-flight work), then replay the same
    // sequence on a fresh machine and expect bit-identical counters.
    const auto episode = [](PerfCounters &out) {
        Machine machine(CoreParams{}, MemParams{});
        SmtCore &core = machine.core(0);
        auto j1 = makeJob(1, "FP");
        auto j2 = makeJob(2, "GO");
        auto j3 = makeJob(3, "IS");
        core.attachThread(0, bindingOf(*j1));
        core.attachThread(1, bindingOf(*j2));
        core.run(7000, out); // mid-flight: queues are full here
        core.detachThread(1); // context-switch squash
        core.run(3000, out);
        core.attachThread(1, bindingOf(*j3));
        core.run(7000, out);
        core.detachThread(0);
        core.detachThread(1);
        core.run(1000, out);
    };
    PerfCounters first, second;
    episode(first);
    episode(second);
    EXPECT_GT(first.retired, 0u);
    EXPECT_EQ(first, second);
}

TEST(Machine, ExplicitPerCoreVectorsStayBitIdentical)
{
    // A machine built from explicit-but-identical per-core vectors
    // must behave bit-for-bit like the legacy homogeneous form: the
    // refactor may not perturb pinned goldens.
    const auto episode = [](Machine &machine, PerfCounters &out) {
        auto j1 = makeJob(1, "GCC");
        auto j2 = makeJob(2, "MG");
        machine.core(0).attachThread(0, bindingOf(*j1));
        machine.core(1).attachThread(0, bindingOf(*j2));
        machine.core(0).run(30000, out);
        machine.core(1).run(30000, out);
    };
    PerfCounters legacy, explicit_vectors;
    {
        Machine machine(CoreParams{}, MemParams{}, 2);
        episode(machine, legacy);
    }
    {
        MachineParams params;
        params.numCores = 2;
        params.cores.assign(2, CoreParams{});
        params.coreMem.assign(2, MemParams{});
        Machine machine(params);
        episode(machine, explicit_vectors);
    }
    EXPECT_GT(legacy.retired, 0u);
    EXPECT_EQ(legacy, explicit_vectors);
}

TEST(Machine, HeterogeneousCoresDifferInThroughput)
{
    // The per-core vectors really reach the cores: a 2-core machine
    // with one narrowed core partitions into two classes, and the
    // narrow core retires strictly less on a cold solo run. The
    // throughput comparison uses two separate machines — on one
    // machine the second core would inherit an L2 warmed by the
    // first core's identical access stream.
    CoreParams narrow;
    narrow.fetchWidth = 2;
    narrow.dispatchWidth = 2;
    narrow.commitWidth = 2;
    narrow.numIntUnits = 1;
    narrow.numLsPorts = 1;

    MachineParams hetero;
    hetero.numCores = 2;
    hetero.cores = {CoreParams{}, narrow};
    hetero.coreMem.assign(2, MemParams{});
    EXPECT_EQ(Machine(hetero).params().coreClasses(),
              (std::vector<int>{0, 1}));

    const auto soloRun = [](const CoreParams &core) {
        MachineParams params;
        params.numCores = 1;
        params.cores.assign(1, core);
        params.coreMem.assign(1, MemParams{});
        Machine machine(params);
        auto job = makeJob(1, "GCC");
        machine.core(0).attachThread(0, bindingOf(*job));
        PerfCounters pc;
        machine.core(0).run(30000, pc);
        return pc;
    };
    const PerfCounters big = soloRun(CoreParams{});
    const PerfCounters little = soloRun(narrow);
    EXPECT_GT(big.retired, 0u);
    EXPECT_LT(little.retired, big.retired);
}

TEST(Machine, DetachAllAndFlushAllReset)
{
    Machine machine(CoreParams{}, MemParams{}, 2);
    auto j1 = makeJob(1, "GCC");
    machine.core(0).attachThread(0, bindingOf(*j1));
    machine.detachAll();
    PerfCounters pc;
    machine.core(0).run(1000, pc);
    EXPECT_EQ(pc.retired, 0u);
    machine.flushAll();
    EXPECT_EQ(machine.memory(0).l1d().residentLines(), 0u);
}

} // namespace
} // namespace sos
