/** @file Unit tests for jobs and jobmixes. */

#include <gtest/gtest.h>

#include "sched/jobmix.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

TEST(Job, SequentialBasics)
{
    Job job(7, WorkloadLibrary::instance().get("GCC"), 1, 1, false);
    EXPECT_EQ(job.id(), 7u);
    EXPECT_EQ(job.name(), "GCC");
    EXPECT_EQ(job.numThreads(), 1);
    EXPECT_FALSE(job.parallel());
    EXPECT_EQ(job.syncDomain(), nullptr);
    EXPECT_EQ(job.asid(), 7);
}

TEST(Job, ParallelJobHasSyncDomain)
{
    Job job(3, WorkloadLibrary::instance().get("ARRAY"), 1, 2, false);
    EXPECT_TRUE(job.parallel());
    ASSERT_NE(job.syncDomain(), nullptr);
    EXPECT_EQ(job.syncDomain()->numThreads(), 2);
}

TEST(Job, SoloSyncWorkloadStillGetsDomain)
{
    Job job(3, WorkloadLibrary::instance().get("ARRAY"), 1, 1, false);
    ASSERT_NE(job.syncDomain(), nullptr);
    EXPECT_EQ(job.syncDomain()->numThreads(), 1);
}

TEST(Job, ThreadsHaveIndependentStreams)
{
    Job job(1, WorkloadLibrary::instance().get("ARRAY"), 5, 2, false);
    // Sibling threads share a data sweep, so addresses may coincide;
    // the instruction streams themselves must diverge.
    TraceGenerator &a = job.generator(0);
    TraceGenerator &b = job.generator(1);
    int same = 0;
    for (int i = 0; i < 500; ++i) {
        const UOp x = a.next();
        const UOp y = b.next();
        same += (x.pc == y.pc && x.cls == y.cls && x.addr == y.addr)
                    ? 1
                    : 0;
    }
    EXPECT_LT(same, 125);
}

TEST(Job, RetiredAccumulates)
{
    Job job(1, WorkloadLibrary::instance().get("EP"), 1, 1, false);
    job.addRetired(100);
    job.addRetired(250);
    EXPECT_EQ(job.retired(), 350u);
    job.addResidentCycles(5000);
    EXPECT_EQ(job.residentCycles(), 5000u);
}

TEST(Job, AdaptiveRespawn)
{
    Job job(1, WorkloadLibrary::instance().get("mt_EP"), 1, 1, true);
    EXPECT_EQ(job.numThreads(), 1);
    job.setThreadCount(3);
    EXPECT_EQ(job.numThreads(), 3);
    ASSERT_NE(job.syncDomain(), nullptr);
    EXPECT_EQ(job.syncDomain()->numThreads(), 3);
    job.setThreadCount(1);
    EXPECT_EQ(job.numThreads(), 1);
}

TEST(Job, NonAdaptiveCannotRespawn)
{
    Job job(1, WorkloadLibrary::instance().get("EP"), 1, 1, false);
    EXPECT_DEATH(job.setThreadCount(2), "adaptive");
}

TEST(JobMix, UnitsFlattenThreads)
{
    JobMix mix(9);
    mix.addJob("FP");
    mix.addParallelJob("ARRAY", 2);
    mix.addJob("GCC");
    EXPECT_EQ(mix.numJobs(), 3);
    EXPECT_EQ(mix.numUnits(), 4);

    EXPECT_EQ(mix.unit(0).job->name(), "FP");
    EXPECT_EQ(mix.unit(1).job->name(), "ARRAY");
    EXPECT_EQ(mix.unit(1).thread, 0);
    EXPECT_EQ(mix.unit(2).job->name(), "ARRAY");
    EXPECT_EQ(mix.unit(2).thread, 1);
    EXPECT_EQ(mix.unit(3).job->name(), "GCC");

    EXPECT_EQ(mix.unitName(0), "FP");
    EXPECT_EQ(mix.unitName(1), "ARRAY.0");
    EXPECT_EQ(mix.unitName(2), "ARRAY.1");
}

TEST(JobMix, SiblingThreadsShareJob)
{
    JobMix mix(9);
    mix.addParallelJob("ARRAY", 2);
    EXPECT_EQ(mix.unit(0).job, mix.unit(1).job);
    EXPECT_EQ(mix.unit(0).job->asid(), mix.unit(1).job->asid());
}

TEST(JobMix, DuplicateWorkloadsAreDistinctJobs)
{
    JobMix mix(9);
    mix.addJob("GCC");
    mix.addJob("GCC");
    EXPECT_NE(mix.unit(0).job, mix.unit(1).job);
    EXPECT_NE(mix.unit(0).job->asid(), mix.unit(1).job->asid());
}

TEST(JobMix, JobIdsAreInsertionOrder)
{
    JobMix mix(1);
    mix.addJob("FP");
    mix.addJob("MG");
    EXPECT_EQ(mix.job(0).id(), 1u);
    EXPECT_EQ(mix.job(1).id(), 2u);
}

TEST(JobMix, UnitsVectorMatchesUnitAccessor)
{
    JobMix mix(2);
    mix.addJob("FP");
    mix.addParallelJob("ARRAY", 2);
    const auto units = mix.units();
    ASSERT_EQ(units.size(), 3u);
    for (int i = 0; i < 3; ++i)
        EXPECT_TRUE(units[static_cast<std::size_t>(i)] == mix.unit(i));
}

TEST(JobMix, UnknownWorkloadIsFatal)
{
    JobMix mix(1);
    EXPECT_DEATH(mix.addJob("NOPE"), "unknown workload");
}

} // namespace
} // namespace sos
