/** @file Unit tests for the SOS predictors (Table 3 / Figure 2). */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/predictor.hh"

namespace sos {
namespace {

/** Build a profile with the few counters predictors consume. */
ScheduleProfile
profile(double ipc, double fq_pct, double fp_pct, double dcache,
        double diversity, std::vector<double> slice_ipc)
{
    ScheduleProfile p;
    p.counters.cycles = 100000;
    p.counters.retired =
        static_cast<std::uint64_t>(ipc * 100000.0);
    p.counters.confFpQueue =
        static_cast<std::uint64_t>(fq_pct * 1000.0);
    p.counters.confFpUnits =
        static_cast<std::uint64_t>(fp_pct * 1000.0);
    p.counters.l1dHits =
        static_cast<std::uint64_t>(dcache * 10000.0);
    p.counters.l1dMisses =
        static_cast<std::uint64_t>((1.0 - dcache) * 10000.0);
    // Mix imbalance: fpOps share vs intOps share.
    const double fp_share = 0.5 + diversity / 2.0;
    p.counters.fpOps = static_cast<std::uint64_t>(fp_share * 10000.0);
    p.counters.intOps =
        static_cast<std::uint64_t>((1.0 - fp_share) * 10000.0);
    p.sliceIpc = std::move(slice_ipc);
    return p;
}

std::unique_ptr<Predictor>
predictor(const std::string &name)
{
    return makePredictor(name);
}

TEST(Predictors, FactoryProvidesAllTen)
{
    const auto all = makeAllPredictors();
    ASSERT_EQ(all.size(), 10u);
    const std::vector<std::string> expected{
        "IPC",  "AllConf",   "Dcache",  "FQ",        "FP",
        "Sum2", "Diversity", "Balance", "Composite", "Score"};
    for (std::size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(all[i]->name(), expected[i]);
}

TEST(Predictors, UnknownNameIsFatal)
{
    // The failure must list the registered names, so the user can
    // correct a typo without reading the source.
    EXPECT_DEATH(makePredictor("Oracle"),
                 "unknown predictor 'Oracle' .known: .*IPC.*Score");
}

TEST(Predictors, NamesListEveryConstructibleName)
{
    const std::vector<std::string> &names = predictorNames();
    EXPECT_GE(names.size(), 10u);
    for (const std::string &name : names) {
        const auto made = makePredictor(name);
        ASSERT_NE(made, nullptr);
        EXPECT_EQ(made->name(), name);
    }
}

TEST(Predictors, IpcPicksHighestIpc)
{
    const std::vector<ScheduleProfile> profiles{
        profile(1.0, 5, 5, 0.9, 0.1, {1.0, 1.0}),
        profile(2.5, 50, 50, 0.5, 0.5, {2.5, 2.5}),
        profile(1.8, 1, 1, 0.99, 0.0, {1.8, 1.8})};
    EXPECT_EQ(predictor("IPC")->best(profiles), 1);
}

TEST(Predictors, FqPicksLowestFpQueueConflicts)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 30, 5, 0.9, 0.1, {2, 2}),
        profile(2.0, 10, 40, 0.9, 0.1, {2, 2}),
        profile(2.0, 20, 1, 0.9, 0.1, {2, 2})};
    EXPECT_EQ(predictor("FQ")->best(profiles), 1);
    EXPECT_EQ(predictor("FP")->best(profiles), 2);
}

TEST(Predictors, Sum2CombinesBoth)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 30, 5, 0.9, 0.1, {2, 2}),  // sum 35
        profile(2.0, 10, 40, 0.9, 0.1, {2, 2}), // sum 50
        profile(2.0, 20, 8, 0.9, 0.1, {2, 2})}; // sum 28 <- best
    EXPECT_EQ(predictor("Sum2")->best(profiles), 2);
}

TEST(Predictors, DcachePicksHighestHitRate)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 5, 5, 0.80, 0.1, {2, 2}),
        profile(2.0, 5, 5, 0.95, 0.1, {2, 2}),
        profile(2.0, 5, 5, 0.90, 0.1, {2, 2})};
    EXPECT_EQ(predictor("Dcache")->best(profiles), 1);
}

TEST(Predictors, DiversityPicksBalancedMix)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 5, 5, 0.9, 0.8, {2, 2}),
        profile(2.0, 5, 5, 0.9, 0.05, {2, 2}),
        profile(2.0, 5, 5, 0.9, 0.4, {2, 2})};
    EXPECT_EQ(predictor("Diversity")->best(profiles), 1);
}

TEST(Predictors, BalancePicksSmoothestSlices)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 5, 5, 0.9, 0.1, {3.0, 1.0, 3.0, 1.0}),
        profile(2.0, 5, 5, 0.9, 0.1, {2.0, 2.0, 2.0, 2.0}),
        profile(2.0, 5, 5, 0.9, 0.1, {2.5, 1.5, 2.5, 1.5})};
    EXPECT_EQ(predictor("Balance")->best(profiles), 1);
}

TEST(Predictors, AllConfSumsEverything)
{
    ScheduleProfile quiet = profile(2.0, 1, 1, 0.9, 0.1, {2, 2});
    ScheduleProfile noisy = profile(2.0, 1, 1, 0.9, 0.1, {2, 2});
    noisy.counters.confIntQueue = 50000; // 50% of cycles
    const std::vector<ScheduleProfile> profiles{noisy, quiet};
    EXPECT_EQ(predictor("AllConf")->best(profiles), 1);
}

TEST(Predictors, CompositeFavoursSmoothLowConflict)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 40, 40, 0.9, 0.1, {3.0, 1.0}),  // rough, conflicted
        profile(2.0, 10, 10, 0.9, 0.1, {2.0, 2.0}),  // smooth, quiet
        profile(2.0, 10, 10, 0.9, 0.1, {3.0, 1.0})}; // quiet but rough
    EXPECT_EQ(predictor("Composite")->best(profiles), 1);
}

TEST(Predictors, CompositeLiteralFormula)
{
    // Two profiles; the second has the lowest FQ/FP/Sum2, so its min
    // ratio is 1 and its score is 0.9/1 + 0.1/balance.
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 20, 20, 0.9, 0.1, {2.5, 1.5}), // balance 0.5
        profile(2.0, 10, 10, 0.9, 0.1, {2.2, 1.8})}; // balance 0.2
    const auto scores = predictor("Composite")->score(profiles);
    EXPECT_NEAR(scores[1], 0.9 / 1.0 + 0.1 / 0.2, 1e-6);
    EXPECT_NEAR(scores[0], 0.9 / 2.0 + 0.1 / 0.5, 1e-6);
}

TEST(Predictors, CompositeGuardsZeroConflicts)
{
    // All-zero conflicts must not divide by zero.
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 0, 0, 0.9, 0.1, {2.0, 2.0}),
        profile(2.0, 0, 0, 0.9, 0.1, {3.0, 1.0})};
    const auto scores = predictor("Composite")->score(profiles);
    EXPECT_TRUE(std::isfinite(scores[0]));
    EXPECT_TRUE(std::isfinite(scores[1]));
    EXPECT_GT(scores[0], scores[1]); // smoother wins on Balance term
}

TEST(Predictors, ScoreFollowsMajority)
{
    // Profile 1 wins IPC, Dcache, FQ, FP, Sum2, AllConf, Balance,
    // Composite; profile 0 only wins Diversity.
    const std::vector<ScheduleProfile> profiles{
        profile(1.0, 30, 30, 0.7, 0.0, {1.5, 0.5}),
        profile(2.0, 5, 5, 0.95, 0.3, {2.0, 2.0})};
    EXPECT_EQ(predictor("Score")->best(profiles), 1);
}

TEST(Predictors, ScoreMagnitudeBreaksTies)
{
    // Construct a standoff where each profile takes some votes; the
    // vote total plus magnitude term must still produce a stable,
    // deterministic winner.
    const std::vector<ScheduleProfile> profiles{
        profile(2.4, 30, 30, 0.70, 0.05, {2.4, 2.4}),
        profile(1.6, 4, 4, 0.95, 0.60, {1.6, 1.6})};
    const auto score = predictor("Score");
    const int first = score->best(profiles);
    EXPECT_EQ(score->best(profiles), first); // deterministic
}

TEST(Predictors, BestBreaksExactTiesByIndex)
{
    const std::vector<ScheduleProfile> profiles{
        profile(2.0, 5, 5, 0.9, 0.1, {2, 2}),
        profile(2.0, 5, 5, 0.9, 0.1, {2, 2})};
    EXPECT_EQ(predictor("IPC")->best(profiles), 0);
}

TEST(Predictors, EmptySampleIsFatal)
{
    const std::vector<ScheduleProfile> none;
    EXPECT_DEATH(predictor("IPC")->best(none), "empty");
}

TEST(Predictors, ScoresAlignWithProfiles)
{
    const std::vector<ScheduleProfile> profiles{
        profile(1.0, 10, 10, 0.9, 0.1, {1, 1}),
        profile(2.0, 20, 20, 0.8, 0.2, {2, 2}),
        profile(3.0, 30, 30, 0.7, 0.3, {3, 3})};
    for (const auto &p : makeAllPredictors()) {
        const auto scores = p->score(profiles);
        EXPECT_EQ(scores.size(), profiles.size()) << p->name();
    }
}

} // namespace
} // namespace sos
