/**
 * @file
 * Integration tests: the full sample -> predict -> symbios pipeline on
 * small experiments with the fast configuration.
 */

#include <gtest/gtest.h>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"

namespace sos {
namespace {

SimConfig
fast()
{
    return makeFastConfig();
}

TEST(BatchIntegration, SamplePhaseProfilesEverySchedule)
{
    BatchExperiment exp(experimentByLabel("Jsb(4,2,2)"), fast());
    exp.runSamplePhase();
    EXPECT_EQ(exp.schedules().size(), 3u); // the whole space
    EXPECT_EQ(exp.profiles().size(), 3u);
    for (const ScheduleProfile &p : exp.profiles()) {
        EXPECT_GT(p.counters.cycles, 0u);
        EXPECT_GT(p.counters.retired, 0u);
        EXPECT_FALSE(p.sliceIpc.empty());
        EXPECT_GT(p.sampleWs, 0.0);
        EXPECT_FALSE(p.label.empty());
    }
}

TEST(BatchIntegration, SampleCyclesMatchPeriodTimesSchedules)
{
    const SimConfig config = fast();
    BatchExperiment exp(experimentByLabel("Jsb(4,2,2)"), config);
    exp.runSamplePhase();
    // 3 schedules, period 2 timeslices each, samplePeriods repeats.
    EXPECT_EQ(exp.samplePhaseCycles(),
              3u * 2u *
                  static_cast<std::uint64_t>(config.samplePeriods) *
                  config.timesliceCycles());
}

TEST(BatchIntegration, SymbiosValidationProducesWs)
{
    BatchExperiment exp(experimentByLabel("Jsb(4,2,2)"), fast());
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    ASSERT_EQ(exp.symbiosWs().size(), 3u);
    for (double ws : exp.symbiosWs()) {
        EXPECT_GT(ws, 0.5);
        EXPECT_LT(ws, 3.0); // SMT level 2: WS cannot plausibly exceed 3
    }
    EXPECT_LE(exp.worstWs(), exp.averageWs());
    EXPECT_LE(exp.averageWs(), exp.bestWs());
}

TEST(BatchIntegration, PredictorsPickValidIndices)
{
    BatchExperiment exp(experimentByLabel("Jsb(4,2,2)"), fast());
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    for (const auto &predictor : makeAllPredictors()) {
        const int index = exp.predictedIndex(*predictor);
        EXPECT_GE(index, 0);
        EXPECT_LT(index, 3);
        const double ws = exp.wsOfPredictor(*predictor);
        EXPECT_GE(ws, exp.worstWs());
        EXPECT_LE(ws, exp.bestWs());
    }
}

TEST(BatchIntegration, SamplesTenSchedulesFromLargeSpace)
{
    BatchExperiment exp(experimentByLabel("Jsb(6,3,1)"), fast());
    exp.runSamplePhase();
    EXPECT_EQ(exp.schedules().size(), 10u); // of the 60 distinct
}

TEST(BatchIntegration, DeterministicAcrossRuns)
{
    const SimConfig config = fast();
    std::vector<double> first;
    std::vector<double> second;
    for (auto *out : {&first, &second}) {
        BatchExperiment exp(experimentByLabel("Jsb(4,2,2)"), config);
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        *out = exp.symbiosWs();
    }
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_DOUBLE_EQ(first[i], second[i]);
}

TEST(BatchIntegration, SplittingTightArrayThreadsIsPenalized)
{
    // Section 6's core claim, miniaturized: coschedule ARRAY's two
    // threads vs. split them, with one filler pair.
    SimConfig config = fast();
    ExperimentSpec spec;
    spec.label = "mini-parallel";
    spec.entries = {{"EP", 1}, {"MG", 1}, {"ARRAY", 2}};
    spec.level = 2;
    spec.swap = 2;

    BatchExperiment exp(spec, config);
    exp.runSamplePhase(); // only 3 schedules exist for 4 units
    exp.runSymbiosValidation();

    // Find the schedule that pairs units 2 and 3 (the ARRAY threads).
    int together = -1;
    for (std::size_t i = 0; i < exp.schedules().size(); ++i) {
        for (const auto &tuple : exp.schedules()[i].tuples()) {
            if (tuple == std::vector<int>{2, 3})
                together = static_cast<int>(i);
        }
    }
    ASSERT_GE(together, 0);
    const double ws_together =
        exp.symbiosWs()[static_cast<std::size_t>(together)];
    for (std::size_t i = 0; i < exp.symbiosWs().size(); ++i) {
        if (static_cast<int>(i) != together) {
            // Splitting the threads forfeits ARRAY's progress; the
            // partner's private-machine speedup offsets only part of
            // that in this small mix, so the ordering must still hold.
            EXPECT_GT(ws_together, exp.symbiosWs()[i]);
        }
    }
}

TEST(BatchIntegration, LittleTimesliceUsesSmallerQuantum)
{
    const SimConfig config = fast();
    BatchExperiment big(experimentByLabel("Jsb(6,3,1)"), config);
    BatchExperiment little(experimentByLabel("Jsl(6,3,1)"), config);
    big.runSamplePhase();
    little.runSamplePhase();
    EXPECT_EQ(little.samplePhaseCycles() * 4,
              big.samplePhaseCycles());
}

} // namespace
} // namespace sos
