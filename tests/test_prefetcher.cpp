/** @file Unit tests for the stride prefetcher. */

#include <gtest/gtest.h>

#include "mem/cache_hierarchy.hh"
#include "mem/prefetcher.hh"

namespace sos {
namespace {

PrefetcherParams
on()
{
    PrefetcherParams p;
    p.enabled = true;
    p.confidenceThreshold = 2;
    p.degree = 2;
    return p;
}

TEST(StridePrefetcher, DisabledEmitsNothing)
{
    StridePrefetcher pf{PrefetcherParams{}};
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 10; ++i)
        pf.observe(1, 0x100, 64 * static_cast<std::uint64_t>(i), out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(StridePrefetcher, LearnsAUnitStrideStream)
{
    StridePrefetcher pf{on()};
    std::vector<std::uint64_t> out;
    // Train: 0, 64, 128 establish a 64-byte stride with confidence 2.
    pf.observe(1, 0x100, 0, out);
    pf.observe(1, 0x100, 64, out);
    pf.observe(1, 0x100, 128, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 192u);
    EXPECT_EQ(out[1], 256u);
}

TEST(StridePrefetcher, NegativeStrides)
{
    StridePrefetcher pf{on()};
    std::vector<std::uint64_t> out;
    pf.observe(1, 0x200, 1000, out);
    pf.observe(1, 0x200, 900, out);
    pf.observe(1, 0x200, 800, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], 700u);
    EXPECT_EQ(out[1], 600u);
}

TEST(StridePrefetcher, RandomAccessStaysQuiet)
{
    StridePrefetcher pf{on()};
    std::vector<std::uint64_t> out;
    const std::uint64_t addrs[] = {10, 5000, 120, 9000, 3, 7777};
    for (std::uint64_t a : addrs)
        pf.observe(1, 0x300, a * 8, out);
    EXPECT_TRUE(out.empty());
}

TEST(StridePrefetcher, StrideChangeRetrains)
{
    StridePrefetcher pf{on()};
    std::vector<std::uint64_t> out;
    pf.observe(1, 0x400, 0, out);
    pf.observe(1, 0x400, 64, out);
    pf.observe(1, 0x400, 128, out); // confident at stride 64
    out.clear();
    pf.observe(1, 0x400, 128 + 256, out); // new stride: no prefetch yet
    EXPECT_TRUE(out.empty());
    pf.observe(1, 0x400, 128 + 512, out); // confidence rebuilt
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0], 128u + 768u);
}

TEST(StridePrefetcher, AsidsTrainSeparately)
{
    StridePrefetcher pf{on()};
    std::vector<std::uint64_t> out;
    // Same pc, interleaved jobs with different strides: each stream
    // must still learn (entries are tagged by asid).
    for (int i = 0; i < 6; ++i) {
        pf.observe(1, 0x500, 64 * static_cast<std::uint64_t>(i), out);
        pf.observe(2, 0x500, 128 * static_cast<std::uint64_t>(i), out);
    }
    EXPECT_GT(pf.issued(), 0u);
}

TEST(StridePrefetcher, ResetForgets)
{
    StridePrefetcher pf{on()};
    std::vector<std::uint64_t> out;
    pf.observe(1, 0x600, 0, out);
    pf.observe(1, 0x600, 64, out);
    pf.reset();
    pf.observe(1, 0x600, 128, out);
    EXPECT_TRUE(out.empty()); // training lost
    EXPECT_EQ(pf.issued(), 0u);
}

TEST(PrefetchInHierarchy, StreamMissesDisappear)
{
    MemParams params;
    params.prefetch.enabled = true;
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    // Stream 512 lines twice: with the prefetcher the second half of
    // the first pass should already be mostly resident.
    std::uint64_t demand_misses = 0;
    for (std::uint64_t i = 0; i < 512; ++i) {
        const std::uint64_t before = mem.l1d().misses();
        mem.dataAccess(1, i * 64, false, 0x9000);
        demand_misses += mem.l1d().misses() - before;
    }
    EXPECT_LT(demand_misses, 50u); // compulsory head only
    EXPECT_GT(mem.prefetcher().issued(), 400u);
}

TEST(PrefetchInHierarchy, FillsDoNotCountAsDemandHits)
{
    MemParams params;
    params.prefetch.enabled = true;
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    const std::uint64_t h0 = mem.l1d().hits();
    const std::uint64_t m0 = mem.l1d().misses();
    for (std::uint64_t i = 0; i < 64; ++i)
        mem.dataAccess(1, i * 64, false, 0x9100);
    // Every demand access is counted exactly once.
    EXPECT_EQ(mem.l1d().hits() + mem.l1d().misses() - h0 - m0, 64u);
}

TEST(PrefetchInHierarchy, DropsOnTlbMiss)
{
    MemParams params;
    params.prefetch.enabled = true;
    params.prefetch.degree = 4;
    SharedL2 l2{params, 1};
    CacheHierarchy mem{params, l2, 0};
    // Stride of nearly a page: prefetches quickly leave the mapped
    // page and must be dropped, not fault.
    for (std::uint64_t i = 0; i < 4; ++i)
        mem.dataAccess(1, i * 8000, false, 0x9200);
    SUCCEED(); // reaching here without touching unmapped pages is the test
}

TEST(PrefetchInHierarchy, OffByDefault)
{
    SharedL2 l2{MemParams{}, 1};
    CacheHierarchy mem{MemParams{}, l2, 0};
    for (std::uint64_t i = 0; i < 64; ++i)
        mem.dataAccess(1, i * 64, false, 0x9300);
    EXPECT_EQ(mem.prefetcher().issued(), 0u);
    EXPECT_EQ(mem.l1d().misses(), 64u); // every line is a cold miss
}

} // namespace
} // namespace sos
