/**
 * @file
 * Unit tests for the JSON run manifest: schema fields, golden-file
 * round trip through the filesystem, and the determinism contract (a
 * manifest is a pure function of tool, config, seed, and registry,
 * with no timestamps or hostnames).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "stats/manifest.hh"
#include "stats/stats.hh"

namespace sos::stats {
namespace {

/** A small, fully deterministic registry. */
void
populate(Registry &registry)
{
    registry.scalar("core.cycles", "simulated cycles") = 10000;
    registry.value("core.ipc", "retired per cycle") = 2.25;
    registry.info("experiment.label") = "Jsb(6,3,3)";
    registry.vector("sweep.ws").push(1.5).push(1.75);
}

Manifest
sampleManifest()
{
    Manifest manifest;
    manifest.tool = "unit_test";
    manifest.gitRev = "deadbeef"; // pinned: the golden must not depend
                                  // on the building checkout
    manifest.seed = 42;
    manifest.config = {{"cycleScale", "1000"}, {"seed", "42"}};
    return manifest;
}

TEST(Manifest, GoldenDocument)
{
    Registry registry;
    populate(registry);
    const std::string document =
        renderManifest(sampleManifest(), registry);
    EXPECT_EQ(document,
              "{\"schema\":\"sos.run-manifest\",\"schema_version\":1,"
              "\"tool\":\"unit_test\",\"git_rev\":\"deadbeef\","
              "\"seed\":42,"
              "\"config\":{\"cycleScale\":\"1000\",\"seed\":\"42\"},"
              "\"stats\":{\"core\":{\"cycles\":10000,\"ipc\":2.25},"
              "\"experiment\":{\"label\":\"Jsb(6,3,3)\"},"
              "\"sweep\":{\"ws\":[1.5,1.75]}}}\n");
}

TEST(Manifest, EndsWithExactlyOneNewline)
{
    Registry registry;
    const std::string document =
        renderManifest(sampleManifest(), registry);
    ASSERT_FALSE(document.empty());
    EXPECT_EQ(document.back(), '\n');
    EXPECT_NE(document[document.size() - 2], '\n');
}

TEST(Manifest, PureFunctionOfItsInputs)
{
    // Two independently built registries with the same contents must
    // render byte-identically -- this is what lets CI diff manifests
    // across runs and worker counts.
    Registry a;
    Registry b;
    populate(a);
    populate(b);
    EXPECT_EQ(renderManifest(sampleManifest(), a),
              renderManifest(sampleManifest(), b));
}

TEST(Manifest, RegistrationOrderDoesNotMatter)
{
    Registry forward;
    forward.scalar("a") = 1;
    forward.scalar("z.y") = 2;
    Registry backward;
    backward.scalar("z.y") = 2;
    backward.scalar("a") = 1;
    EXPECT_EQ(renderManifest(sampleManifest(), forward),
              renderManifest(sampleManifest(), backward));
}

TEST(Manifest, FileRoundTrip)
{
    Registry registry;
    populate(registry);
    const Manifest manifest = sampleManifest();
    const std::string path =
        ::testing::TempDir() + "sos_manifest_roundtrip.json";
    writeManifestFile(path, manifest, registry);

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), renderManifest(manifest, registry));
    std::remove(path.c_str());
}

TEST(Manifest, BuildGitRevIsNonEmpty)
{
    // The value is the building checkout's revision (or "unknown"),
    // so only its presence is checkable.
    EXPECT_FALSE(Manifest::buildGitRev().empty());
}

TEST(Manifest, EscapesConfigAndInfoStrings)
{
    Registry registry;
    registry.info("note") = "say \"hi\"\n";
    Manifest manifest = sampleManifest();
    manifest.config = {{"path", "C:\\tmp"}};
    const std::string document = renderManifest(manifest, registry);
    EXPECT_NE(document.find("\"path\":\"C:\\\\tmp\""),
              std::string::npos);
    EXPECT_NE(document.find("\"note\":\"say \\\"hi\\\"\\n\""),
              std::string::npos);
}

} // namespace
} // namespace sos::stats
