/** @file Integration tests for hierarchical symbiosis (Section 7). */

#include <gtest/gtest.h>

#include <set>

#include "sim/hierarchical_experiment.hh"

namespace sos {
namespace {

TEST(Hierarchical, Level2MixEnumeratesBothPlans)
{
    const HierarchicalSpec &spec = hierarchicalExperiments()[0];
    HierarchicalExperiment exp(spec, makeFastConfig(), 8);
    std::set<std::string> plans;
    for (const auto &candidate : exp.candidates())
        plans.insert(candidate.plan.label());
    EXPECT_TRUE(plans.count("[1,1,1]"));
    EXPECT_TRUE(plans.count("[1,2,1]"));
}

TEST(Hierarchical, RunProducesProfilesAndWs)
{
    const HierarchicalSpec &spec = hierarchicalExperiments()[0];
    HierarchicalExperiment exp(spec, makeFastConfig(), 6);
    exp.run(200000);
    for (const auto &candidate : exp.candidates()) {
        EXPECT_GT(candidate.profile.counters.cycles, 0u);
        EXPECT_GT(candidate.symbiosWs, 0.0);
        EXPECT_FALSE(candidate.profile.label.empty());
    }
    EXPECT_LE(exp.worstWs(), exp.averageWs());
    EXPECT_LE(exp.averageWs(), exp.bestWs());
    EXPECT_GE(exp.scoreWs(), exp.worstWs());
    EXPECT_LE(exp.scoreWs(), exp.bestWs());
}

TEST(Hierarchical, ImprovementOverWorstIsNonNegativeByConstruction)
{
    const HierarchicalSpec &spec = hierarchicalExperiments()[0];
    HierarchicalExperiment exp(spec, makeFastConfig(), 6);
    exp.run(200000);
    EXPECT_GE(exp.improvementOverWorstPct(), 0.0);
}

TEST(Hierarchical, EpArrayContextSplitExample)
{
    // Section 7: mt_EP and mt_ARRAY on SMT 3. The candidate set must
    // include both asymmetric splits and the 3+3 alternation.
    HierarchicalSpec spec;
    spec.label = "EP/ARRAY";
    spec.level = 3;
    spec.workloads = {"mt_EP", "mt_ARRAY"};
    HierarchicalExperiment exp(spec, makeFastConfig(), 16);
    std::set<std::string> plans;
    for (const auto &candidate : exp.candidates())
        plans.insert(candidate.plan.label());
    EXPECT_TRUE(plans.count("[1,2]"));
    EXPECT_TRUE(plans.count("[2,1]"));
    EXPECT_TRUE(plans.count("[3,3]"));
}

} // namespace
} // namespace sos
