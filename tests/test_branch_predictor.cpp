/** @file Unit tests for the shared branch predictor. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "cpu/branch_predictor.hh"

namespace sos {
namespace {

TEST(BranchPredictor, LearnsABiasedBranch)
{
    BranchPredictor bp(10);
    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        if (bp.predictAndUpdate(0, 0x1000, true) != true)
            ++wrong;
    }
    EXPECT_LE(wrong, 2); // only the warmup transitions
}

TEST(BranchPredictor, LearnsNotTakenToo)
{
    BranchPredictor bp(10);
    int wrong = 0;
    for (int i = 0; i < 100; ++i) {
        if (bp.predictAndUpdate(0, 0x2000, false) != false)
            ++wrong;
    }
    EXPECT_EQ(wrong, 0); // initialized weakly not-taken
}

TEST(BranchPredictor, TracksOppositeBiasesAtDifferentPcs)
{
    BranchPredictor bp(10);
    for (int i = 0; i < 50; ++i) {
        bp.predictAndUpdate(0, 0x1000, true);
        bp.predictAndUpdate(0, 0x1004, false);
    }
    EXPECT_TRUE(bp.predictAndUpdate(0, 0x1000, true));
    EXPECT_FALSE(bp.predictAndUpdate(0, 0x1004, false));
}

TEST(BranchPredictor, SaltSeparatesThreads)
{
    // Two jobs at the same pc with opposite biases: different salts
    // must keep their counters apart.
    BranchPredictor bp(12);
    for (int i = 0; i < 50; ++i) {
        bp.predictAndUpdate(0x111, 0x1000, true);
        bp.predictAndUpdate(0x777, 0x1000, false);
    }
    EXPECT_TRUE(bp.predictAndUpdate(0x111, 0x1000, true));
    EXPECT_FALSE(bp.predictAndUpdate(0x777, 0x1000, false));
}

TEST(BranchPredictor, SameSaltShares)
{
    BranchPredictor bp(12);
    for (int i = 0; i < 50; ++i)
        bp.predictAndUpdate(0x5, 0x1000, true);
    // The same salt and pc read the trained counter.
    EXPECT_TRUE(bp.predictAndUpdate(0x5, 0x1000, true));
}

TEST(BranchPredictor, CountsLookupsAndMispredicts)
{
    BranchPredictor bp(10);
    bp.predictAndUpdate(0, 0x100, true);  // predicts NT: mispredict
    bp.predictAndUpdate(0, 0x100, true);  // weakly T now: correct
    EXPECT_EQ(bp.lookups(), 2u);
    EXPECT_EQ(bp.mispredicts(), 1u);
}

TEST(BranchPredictor, ResetForgets)
{
    BranchPredictor bp(10);
    for (int i = 0; i < 10; ++i)
        bp.predictAndUpdate(0, 0x100, true);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_FALSE(bp.predictAndUpdate(0, 0x100, true)); // back to NT
}

TEST(BranchPredictor, HighAccuracyOnBiasedSiteMix)
{
    // A population of strongly biased sites, like the trace generator
    // emits, should predict with high accuracy once trained.
    BranchPredictor bp(14);
    Rng rng(5);
    const int sites = 300;
    for (int round = 0; round < 200; ++round) {
        for (int s = 0; s < sites; ++s) {
            const std::uint64_t pc = 0x1000 + 4 * s;
            const bool bias = (mix64(pc) & 1) != 0;
            bp.predictAndUpdate(9, pc, bias);
        }
    }
    const double accuracy =
        1.0 - static_cast<double>(bp.mispredicts()) /
                  static_cast<double>(bp.lookups());
    EXPECT_GT(accuracy, 0.97);
}

} // namespace
} // namespace sos
