/** @file Unit tests for the micro-op model helpers. */

#include <gtest/gtest.h>

#include "core/schedule_profile.hh"
#include "trace/uop.hh"

namespace sos {
namespace {

TEST(UOp, ClassPredicates)
{
    UOp op;
    for (OpClass cls : {OpClass::FpAdd, OpClass::FpMult, OpClass::FpDiv}) {
        op.cls = cls;
        EXPECT_TRUE(op.isFp());
        EXPECT_FALSE(op.isMem());
    }
    for (OpClass cls : {OpClass::Load, OpClass::Store}) {
        op.cls = cls;
        EXPECT_TRUE(op.isMem());
        EXPECT_FALSE(op.isFp());
    }
    for (OpClass cls : {OpClass::IntAlu, OpClass::IntMult,
                        OpClass::Branch, OpClass::Barrier}) {
        op.cls = cls;
        EXPECT_FALSE(op.isFp());
        EXPECT_FALSE(op.isMem());
    }
}

TEST(UOp, RegisterNamespace)
{
    EXPECT_FALSE(isFpReg(0));
    EXPECT_FALSE(isFpReg(31));
    EXPECT_TRUE(isFpReg(32));
    EXPECT_TRUE(isFpReg(63));
    EXPECT_FALSE(isFpReg(NoReg)); // the sentinel is never FP
    EXPECT_EQ(NumArchRegs, 64);
}

TEST(ScheduleProfile, BalanceFromSlices)
{
    ScheduleProfile p;
    p.sliceIpc = {2.0, 2.0, 2.0};
    EXPECT_DOUBLE_EQ(p.balance(), 0.0);
    p.sliceIpc = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(p.balance(), 1.0);
}

TEST(ScheduleProfile, DiversityFallsBackToAggregate)
{
    ScheduleProfile p;
    p.counters.fpOps = 900;
    p.counters.intOps = 100;
    EXPECT_DOUBLE_EQ(p.diversity(), 0.8); // no slice data: aggregate
    p.sliceMixImbalance = {0.1, 0.3};
    EXPECT_DOUBLE_EQ(p.diversity(), 0.2); // slice data wins
}

} // namespace
} // namespace sos
