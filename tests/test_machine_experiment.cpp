/**
 * @file
 * Machine-level experiment tests: the 1-core MachineEngine reproduces
 * the single-core TimesliceEngine bit-for-bit, and the machine sweep
 * obeys the PR 1 determinism contract -- profiles and symbios WS are
 * bit-identical for any worker count (the SOS_JOBS=1/2/8 acceptance
 * check, run in-process via config.jobs).
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine_experiment.hh"
#include "sim/timeslice_engine.hh"

namespace sos {
namespace {

MachineExperimentSpec
smallSpec()
{
    MachineExperimentSpec spec;
    spec.label = "Jm(4,2,2,2)";
    spec.workloads = {"FP", "MG", "GCC", "IS"};
    spec.numCores = 2;
    spec.level = 2;
    spec.swap = 2;
    return spec;
}

TEST(MachineEngine, OneCoreMatchesTimesliceEngine)
{
    // The machine-level driver on one core must be the old engine,
    // bit-for-bit: same tuples, same quantum, same counters.
    const MachineExperimentSpec spec = smallSpec();
    const Schedule core_schedule =
        Schedule::fromRotation({0, 1, 2, 3}, 2, 2);
    const std::uint64_t timeslices = 8;
    const std::uint64_t quantum = 10000;

    TimesliceEngine::ScheduleRunResult single;
    {
        JobMix mix = spec.makeMix(0x1234);
        Machine machine(CoreParams{}, MemParams{});
        TimesliceEngine engine(machine.core(0), quantum);
        single = engine.runSchedule(mix, core_schedule, timeslices);
    }
    MachineEngine::MachineRunResult lifted;
    {
        JobMix mix = spec.makeMix(0x1234);
        Machine machine(CoreParams{}, MemParams{});
        MachineEngine engine(machine, quantum);
        const MachineSchedule schedule({{0, 1, 2, 3}},
                                       {core_schedule});
        lifted = engine.runSchedule(mix, schedule, timeslices);
    }
    EXPECT_EQ(lifted.total, single.total);
    EXPECT_EQ(lifted.jobRetired, single.jobRetired);
    EXPECT_EQ(lifted.cycles, single.cycles);
    ASSERT_EQ(lifted.perCore.size(), 1u);
    EXPECT_EQ(lifted.perCore[0], single.total);
}

TEST(MachineExperiment, SweepIsBitIdenticalForAnyWorkerCount)
{
    const MachineExperimentSpec spec = smallSpec();

    struct Observed
    {
        std::vector<std::string> keys;
        std::vector<double> sampleWs;
        std::vector<double> symbiosWs;
    };
    std::vector<Observed> runs;
    for (const int jobs : {1, 2, 8}) {
        SimConfig config = makeFastConfig();
        config.jobs = jobs;
        MachineExperiment exp(spec, config);
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        Observed obs;
        for (const MachineSchedule &s : exp.schedules())
            obs.keys.push_back(s.key());
        for (const ScheduleProfile &p : exp.profiles())
            obs.sampleWs.push_back(p.sampleWs);
        obs.symbiosWs = exp.symbiosWs();
        runs.push_back(std::move(obs));
    }
    ASSERT_EQ(runs.size(), 3u);
    for (std::size_t i = 1; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].keys, runs[0].keys);
        // Bit-identical, not approximately equal: the determinism
        // contract promises the same floating-point results.
        EXPECT_EQ(runs[i].sampleWs, runs[0].sampleWs);
        EXPECT_EQ(runs[i].symbiosWs, runs[0].symbiosWs);
    }
    EXPECT_FALSE(runs[0].symbiosWs.empty());
    for (const double ws : runs[0].symbiosWs)
        EXPECT_GT(ws, 0.0);
}

TEST(MachineExperiment, PolicyEvaluationIsDeterministicAndWellFormed)
{
    const MachineExperimentSpec spec = smallSpec();
    SimConfig config = makeFastConfig();
    config.jobs = 2;
    MachineExperiment exp(spec, config);
    exp.runSamplePhase();

    for (const std::string &name : threadToCorePolicyNames()) {
        const MachineExperiment::PolicyResult &result =
            exp.evaluatePolicy(name);
        EXPECT_EQ(result.policy, name);
        EXPECT_EQ(static_cast<int>(result.allocation.size()),
                  spec.numCores);
        EXPECT_GT(result.schedulesRun, 0);
        EXPECT_GT(result.bestWs, 0.0);
        EXPECT_GE(result.bestWs, result.avgWs);
    }
    EXPECT_EQ(exp.policyResults().size(),
              threadToCorePolicyNames().size());

    // A second experiment replays the synpa evaluation identically.
    MachineExperiment again(spec, config);
    again.runSamplePhase();
    const auto &a = exp.policyResults().front();
    const auto &b = again.evaluatePolicy(a.policy);
    EXPECT_EQ(a.allocation, b.allocation);
    EXPECT_EQ(a.avgWs, b.avgWs);
}

TEST(MachineExperiment, CoscheduleSamplesCoverEveryCandidate)
{
    const MachineExperimentSpec spec = smallSpec();
    SimConfig config = makeFastConfig();
    config.jobs = 1;
    MachineExperiment exp(spec, config);
    exp.runSamplePhase();
    const std::vector<CoscheduleSample> samples =
        exp.coscheduleSamples();
    ASSERT_EQ(samples.size(), exp.schedules().size());
    for (const CoscheduleSample &sample : samples) {
        EXPECT_FALSE(sample.tuples.empty());
        EXPECT_GT(sample.ws, 0.0);
    }
}

} // namespace
} // namespace sos
