/**
 * @file
 * Tests of the barrier spin-wait model (the Section 6 mechanism).
 */

#include <gtest/gtest.h>

#include <memory>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

ThreadBinding
bindingOf(Job &job, int thread)
{
    ThreadBinding b;
    b.gen = &job.generator(thread);
    b.sync = job.syncDomain();
    b.syncIndex = thread;
    b.asid = job.asid();
    return b;
}

TEST(Spin, ParkedThreadEmitsSpinOpsNotProgress)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job job(1, WorkloadLibrary::instance().get("ARRAY"), 7, 2, false);
    core.attachThread(0, bindingOf(job, 0)); // sibling not scheduled
    PerfCounters pc;
    core.run(50000, pc);
    // Real progress caps at the first barrier...
    EXPECT_LT(pc.retired, 3 * job.profile().syncInterval);
    // ...but the context keeps the pipeline busy with spin ops.
    EXPECT_GT(pc.spinOps, 10000u);
}

TEST(Spin, SpinOpsNeverCountAsRetired)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job job(1, WorkloadLibrary::instance().get("ARRAY"), 7, 2, false);
    core.attachThread(0, bindingOf(job, 0));
    PerfCounters pc;
    core.run(50000, pc);
    EXPECT_LE(pc.retired, pc.dispatched);
    EXPECT_EQ(pc.slotRetired[0], pc.retired);
}

TEST(Spin, CoscheduledSiblingsDoNotSpin)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job job(1, WorkloadLibrary::instance().get("ARRAY"), 7, 2, false);
    core.attachThread(0, bindingOf(job, 0));
    core.attachThread(1, bindingOf(job, 1));
    PerfCounters pc;
    core.run(50000, pc);
    // Lockstep siblings spend at most brief moments at each barrier.
    EXPECT_LT(pc.spinOps, pc.retired / 4);
    EXPECT_GT(pc.retired, 20000u);
}

TEST(Spin, SpinnerConsumesRealResources)
{
    // The spin loop occupies issue-queue slots and load/store port
    // bandwidth: its L1D flag accesses are visible in the counters.
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job array(1, WorkloadLibrary::instance().get("ARRAY"), 7, 2, false);
    Job partner(2, WorkloadLibrary::instance().get("SWIM"), 9, 1,
                false);
    core.attachThread(0, bindingOf(array, 0)); // will spin
    ThreadBinding pb;
    pb.gen = &partner.generator(0);
    pb.asid = partner.asid();
    core.attachThread(1, pb);
    PerfCounters pc;
    core.run(50000, pc);
    EXPECT_GT(pc.spinOps, 1000u);
    // Partner still progresses: spinning degrades, not starves.
    EXPECT_GT(pc.slotRetired[1], 10000u);
}

TEST(Spin, ReleaseResumesRealStream)
{
    Machine machine(CoreParams{}, MemParams{});
    SmtCore &core = machine.core(0);
    Job job(1, WorkloadLibrary::instance().get("ARRAY"), 7, 2, false);

    // Thread 0 runs alone and parks; spin ops accumulate.
    core.attachThread(0, bindingOf(job, 0));
    PerfCounters parked;
    core.run(30000, parked);
    core.detachThread(0);
    EXPECT_GT(parked.spinOps, 0u);

    // Sibling catches up (it parks at the next barrier in turn).
    core.attachThread(0, bindingOf(job, 1));
    PerfCounters sibling;
    core.run(30000, sibling);
    core.detachThread(0);

    // Thread 0 must now make real progress again.
    core.attachThread(0, bindingOf(job, 0));
    PerfCounters resumed;
    core.run(30000, resumed);
    EXPECT_GT(resumed.retired, 500u);
}

} // namespace
} // namespace sos
