/**
 * @file
 * Hot-path rewrite pins for the SMT core (DESIGN.md section 9).
 *
 * The struct-of-arrays thread table, ring-buffer fetch/ROB queues,
 * issue-queue wake filter and batched PerfCounters flush are pure
 * layout/execution-strategy changes: every counter and every manifest
 * byte must match the pre-rewrite core.  Three families of pins:
 *
 *  - counter goldens: a fixed multi-thread scenario (including a
 *    detach/attach in the middle of the measured interval, which
 *    exercises the thread-table rebuild) rendered field-by-field and
 *    compared against tests/golden/fastpath_counters.txt, generated
 *    from the pre-rewrite core (SOS_REGEN_GOLDEN=1 to regenerate --
 *    only ever against a known-good revision);
 *
 *  - flush-boundary identity: one run(N) must equal the sum of any
 *    partition of N across run() calls, since the batched-delta flush
 *    happens at run() boundaries and no architectural state may leak
 *    between flushes;
 *
 *  - manifest identity: the fig1-shaped batch sweep and fig7-shaped
 *    machine sweep must keep producing byte-identical run manifests
 *    against the PR-5 goldens at jobs=1/2/8 (same files the adapter
 *    equivalence test pins, re-checked here from the core-rewrite
 *    angle).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>

#include "cpu/machine.hh"
#include "sched/job.hh"
#include "sim/batch_experiment.hh"
#include "sim/machine_experiment.hh"
#include "sim/params_io.hh"
#include "stats/manifest.hh"
#include "stats/stats.hh"
#include "trace/workload_library.hh"

namespace sos {
namespace {

std::unique_ptr<Job>
makeJob(std::uint32_t id, const std::string &workload, int threads = 1)
{
    return std::make_unique<Job>(
        id, WorkloadLibrary::instance().get(workload),
        0x900d5eedULL ^ id, threads, false);
}

ThreadBinding
bindingOf(Job &job, int thread = 0)
{
    ThreadBinding b;
    b.gen = &job.generator(thread);
    b.sync = job.syncDomain();
    b.syncIndex = thread;
    b.asid = job.asid();
    return b;
}

/** Render every PerfCounters field; any divergence shows as a diff. */
std::string
renderCounters(const char *label, const PerfCounters &pc)
{
    std::ostringstream os;
    os << "[" << label << "]\n";
    const auto field = [&os](const char *name, std::uint64_t v) {
        os << name << "=" << v << "\n";
    };
    field("cycles", pc.cycles);
    field("fetched", pc.fetched);
    field("dispatched", pc.dispatched);
    field("issued", pc.issued);
    field("retired", pc.retired);
    field("intOps", pc.intOps);
    field("fpOps", pc.fpOps);
    field("loads", pc.loads);
    field("stores", pc.stores);
    field("branches", pc.branches);
    field("barriers", pc.barriers);
    field("branchMispredicts", pc.branchMispredicts);
    field("spinOps", pc.spinOps);
    field("confIntQueue", pc.confIntQueue);
    field("confFpQueue", pc.confFpQueue);
    field("confIntRegs", pc.confIntRegs);
    field("confFpRegs", pc.confFpRegs);
    field("confRob", pc.confRob);
    field("confIntUnits", pc.confIntUnits);
    field("confFpUnits", pc.confFpUnits);
    field("confLsPorts", pc.confLsPorts);
    field("l1iHits", pc.l1iHits);
    field("l1iMisses", pc.l1iMisses);
    field("l1dHits", pc.l1dHits);
    field("l1dMisses", pc.l1dMisses);
    field("l2Hits", pc.l2Hits);
    field("l2Misses", pc.l2Misses);
    field("itlbMisses", pc.itlbMisses);
    field("dtlbMisses", pc.dtlbMisses);
    for (std::size_t s = 0; s < pc.slotRetired.size(); ++s)
        os << "slotRetired" << s << "=" << pc.slotRetired[s] << "\n";
    return os.str();
}

/**
 * The pinned scenario: a 4-context core running mixed workloads (one
 * parallel pair with barriers), a thread detached mid-interval, a new
 * job attached into the freed slot, and a final measured interval.
 * Every counter of every phase goes into the rendered document.
 */
std::string
fastpathScenario()
{
    CoreParams params;
    params.numContexts = 4;
    Machine machine(params, MemParams{});
    SmtCore &core = machine.core(0);

    auto ep = makeJob(1, "EP");
    auto gcc = makeJob(2, "GCC");
    auto array = makeJob(3, "ARRAY", 2);

    core.attachThread(0, bindingOf(*ep));
    core.attachThread(1, bindingOf(*gcc));
    core.attachThread(2, bindingOf(*array, 0));
    core.attachThread(3, bindingOf(*array, 1));

    std::string doc;
    PerfCounters warm;
    core.run(20000, warm);
    doc += renderCounters("warm", warm);

    // Mid-run context switch: squash the GCC thread, leave its slot
    // idle for a while, then attach a fresh job into it.
    core.detachThread(1);
    PerfCounters hole;
    core.run(5000, hole);
    doc += renderCounters("hole", hole);

    auto mg = makeJob(4, "MG");
    core.attachThread(1, bindingOf(*mg));
    PerfCounters refill;
    core.run(20000, refill);
    doc += renderCounters("refill", refill);

    // Tear down the parallel pair too (spin-loop squash path).
    core.detachThread(2);
    core.detachThread(3);
    PerfCounters tail;
    core.run(5000, tail);
    doc += renderCounters("tail", tail);
    return doc;
}

std::string
goldenPath(const std::string &name)
{
    return std::string(SOS_GOLDEN_DIR) + "/" + name + ".txt";
}

TEST(SmtCoreFastpath, CountersMatchPreRewriteGolden)
{
    const std::string document = fastpathScenario();
    const std::string path = goldenPath("fastpath_counters");
    if (std::getenv("SOS_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << document;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (generate with SOS_REGEN_GOLDEN=1 on a known-good rev)";
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(document, golden.str())
        << "counters diverged from the pre-rewrite core";
}

TEST(SmtCoreFastpath, RunBoundaryPartitionIsInvisible)
{
    // The batched-counter flush contract: counters accumulated over
    // one run(30000) equal the sum over any partition of the same
    // 30000 cycles, and the architectural stream does not depend on
    // where the run() boundaries fall.
    const auto scenario =
        [](const std::vector<std::uint64_t> &chunks) -> PerfCounters {
        CoreParams params;
        params.numContexts = 3;
        Machine machine(params, MemParams{});
        SmtCore &core = machine.core(0);
        auto a = makeJob(1, "FP");
        auto b = makeJob(2, "IS");
        auto c = makeJob(3, "WAVE");
        core.attachThread(0, bindingOf(*a));
        core.attachThread(1, bindingOf(*b));
        core.attachThread(2, bindingOf(*c));
        PerfCounters total;
        for (const std::uint64_t n : chunks)
            core.run(n, total);
        return total;
    };
    const PerfCounters whole = scenario({30000});
    const PerfCounters halves = scenario({15000, 15000});
    const PerfCounters ragged = scenario({1, 9999, 17000, 3000});
    EXPECT_EQ(renderCounters("x", whole), renderCounters("x", halves));
    EXPECT_EQ(renderCounters("x", whole), renderCounters("x", ragged));
}

/** Render a manifest with everything host-dependent pinned. */
std::string
render(const char *tool, const SimConfig &config,
       const stats::Registry &registry)
{
    stats::Manifest manifest;
    manifest.tool = tool;
    manifest.gitRev = "golden";
    manifest.seed = config.seed;
    manifest.config = configPairs(config);
    return renderManifest(manifest, registry);
}

/** fig1-shaped sweep: batch SOS over Jsb coschedule spaces. */
std::string
fig1ConfigManifest(int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    stats::Registry registry;
    const stats::Group experiments =
        stats::Group(registry).group("experiments");
    std::string document;
    {
        BatchExperiment small(experimentByLabel("Jsb(4,2,2)"), config);
        BatchExperiment sampled(experimentByLabel("Jsb(6,3,1)"),
                                config);
        for (BatchExperiment *exp : {&small, &sampled}) {
            exp->runSamplePhase();
            exp->runSymbiosValidation();
            exp->publishStats(experiments.group(
                stats::sanitizeSegment(exp->spec().label)));
        }
        document =
            render("adapter_equivalence_batch", config, registry);
    }
    return document;
}

/** fig7-shaped sweep: machine SOS over a 2-core Jm space. */
std::string
fig7ConfigManifest(int jobs)
{
    SimConfig config = makeFastConfig();
    config.jobs = jobs;
    stats::Registry registry;
    const stats::Group experiments =
        stats::Group(registry).group("experiments");
    std::string document;
    {
        MachineExperimentSpec spec;
        spec.label = "Jm(4,2,2,2)";
        spec.workloads = {"FP", "MG", "GCC", "IS"};
        spec.numCores = 2;
        spec.level = 2;
        spec.swap = 2;
        MachineExperiment exp(spec, config);
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        exp.publishStats(
            experiments.group(stats::sanitizeSegment(spec.label)));
        document =
            render("adapter_equivalence_machine", config, registry);
    }
    return document;
}

void
checkManifestGolden(const std::string &golden_name,
                    const std::function<std::string(int)> &make)
{
    const std::string document = make(1);
    EXPECT_EQ(make(2), document) << golden_name << ": jobs=2 differs";
    EXPECT_EQ(make(8), document) << golden_name << ": jobs=8 differs";

    const std::string path =
        std::string(SOS_GOLDEN_DIR) + "/" + golden_name + ".json";
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path;
    std::ostringstream golden;
    golden << in.rdbuf();
    EXPECT_EQ(document, golden.str())
        << golden_name
        << ": manifest diverged from the pre-rewrite core";
}

TEST(SmtCoreFastpath, Fig1ConfigManifestByteIdentical)
{
    checkManifestGolden("batch", fig1ConfigManifest);
}

TEST(SmtCoreFastpath, Fig7ConfigManifestByteIdentical)
{
    checkManifestGolden("machine", fig7ConfigManifest);
}

} // namespace
} // namespace sos
