/**
 * @file
 * Figure 9: cluster scale-out -- dispatch-policy comparison across
 * node counts, plus the host-thread scaling curve.
 *
 * The paper schedules jobs onto one SMT machine; this figure
 * extrapolates its symbiosis machinery one level up. A Cluster of N
 * single-machine open systems replays one deterministic arrival trace
 * per node count through each dispatch policy (random, round-robin,
 * least-loaded, signature), so policy differences are purely routing:
 * the signature dispatcher reads the same per-node counter signatures
 * the SOS kernel samples, and wins exactly when symbiosis-aware
 * placement beats load balancing alone.
 *
 * The manifest carries, per (nodes, policy), the cluster's streaming
 * response-time percentiles (cluster-wide and per class) and per-node
 * utilization. Wall-clock numbers never enter the manifest: when
 * --bench-cluster / SOS_BENCH_CLUSTER names a report file, a second
 * pass re-runs the largest configuration under 1, 2 and 4 host
 * workers (SOS_JOBS-style fan-out, one ThreadPool task per node),
 * asserts the results stay bit-identical, and writes the scaling
 * curve there -- the flag is the opt-in, as with --bench-core.
 *
 * Scale knobs (the defaults keep a laptop run in minutes; CI smoke
 * and large-trace runs override them):
 *   SOS_CLUSTER_JOBS      arrivals per run          (default 400)
 *   SOS_CLUSTER_NODES     single node count         (default 2 and 4)
 *   SOS_DISPATCH          single policy             (default all four)
 *   SOS_CLUSTER_MEAN_JOB  mean job, paper cycles    (default 30M)
 * A 10^5-10^6 job trace is a matter of SOS_CLUSTER_JOBS plus a
 * coarser SOS_CYCLE_SCALE (see EXPERIMENTS.md "Figure 9").
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats_util.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"
#include "stats/json.hh"

namespace {

using namespace sos;

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *value = std::getenv(name);
    return value != nullptr ? std::strtoull(value, nullptr, 10)
                            : fallback;
}

/** Exact percentile over the drained responses (doubles, cycles). */
double
responsePercentile(const ClusterResult &result, double pct)
{
    std::vector<double> xs;
    xs.reserve(result.responseByArrival.size());
    for (std::uint64_t response : result.responseByArrival)
        xs.push_back(static_cast<double>(response));
    return percentile(std::move(xs), pct);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig9_cluster", argc, argv);
    SimConfig &config = harness.config();
    // Cluster runs replay whole open systems per node; default to a
    // coarser scale than even the fig8 open-system bench.
    if (std::getenv("SOS_CYCLE_SCALE") == nullptr)
        config.cycleScale = 1000;

    const int jobs =
        static_cast<int>(envU64("SOS_CLUSTER_JOBS", 400));
    const std::uint64_t mean_job =
        envU64("SOS_CLUSTER_MEAN_JOB", 30000000ULL);
    std::vector<int> node_counts = {2, 4};
    if (const char *nodes = std::getenv("SOS_CLUSTER_NODES"))
        node_counts = {std::atoi(nodes)};
    std::vector<std::string> policies = dispatcherNames();
    if (const char *policy = std::getenv("SOS_DISPATCH"))
        policies = {policy};

    const auto clusterConfig = [&](int nodes,
                                   const std::string &policy) {
        ClusterConfig cc;
        cc.numNodes = nodes;
        cc.dispatch = policy;
        cc.numJobs = jobs;
        cc.meanJobPaperCycles = mean_job;
        // Same seed across policies: per node count, every policy
        // replays the identical arrival trace, so the comparison is
        // pure routing.
        cc.seed = config.seed ^ mix64(static_cast<std::uint64_t>(
                                    0xf19cULL + nodes));
        return cc;
    };

    printBanner(
        "Figure 9: cluster scale-out -- dispatch policy x node count "
        "(" + std::to_string(jobs) + " arrivals)");
    TablePrinter table({"nodes", "policy", "mean resp", "p50", "p95",
                        "p99", "makespan", "util%"},
                       {5, 12, 11, 9, 9, 9, 10, 6});
    table.printHeader();

    const stats::Group by_nodes = harness.group("nodes");
    for (int nodes : node_counts) {
        const stats::Group nodes_group =
            by_nodes.group(std::to_string(nodes));
        for (const std::string &policy : policies) {
            Cluster cluster(config, clusterConfig(nodes, policy));
            const ClusterResult result = cluster.run(
                harness.wantsTrace() ? &harness.trace() : nullptr);
            cluster.publishStats(nodes_group.group(policy));

            double util = 0.0;
            for (const ClusterNodeSummary &node : result.nodes)
                util += node.utilization;
            util /= static_cast<double>(result.nodes.size());
            table.printRow(
                {std::to_string(nodes), policy,
                 fmtCycles(static_cast<std::uint64_t>(
                     result.meanResponseCycles)),
                 fmtCycles(static_cast<std::uint64_t>(
                     responsePercentile(result, 50.0))),
                 fmtCycles(static_cast<std::uint64_t>(
                     responsePercentile(result, 95.0))),
                 fmtCycles(static_cast<std::uint64_t>(
                     responsePercentile(result, 99.0))),
                 fmtCycles(result.totalCycles),
                 fmt(100.0 * util, 1)});
        }
    }

    // Host-thread scaling curve: opt-in via --bench-cluster, timed
    // outside the manifest. The largest node count under the
    // signature policy is re-run at 1, 2 and 4 workers; results must
    // stay bit-identical (the cluster determinism contract), only the
    // wall clock may move.
    if (!harness.outputs().benchCluster.empty()) {
        const int nodes = node_counts.back();
        const std::string policy = "signature";
        const std::vector<int> workers = {1, 2, 4};
        std::printf("\nscaling curve: %d nodes, %s dispatch\n", nodes,
                    policy.c_str());

        std::vector<double> elapsed;
        std::vector<ClusterResult> results;
        for (int w : workers) {
            SimConfig run_config = config;
            run_config.jobs = w;
            Cluster cluster(run_config,
                            clusterConfig(nodes, policy));
            const auto start = std::chrono::steady_clock::now();
            results.push_back(cluster.run());
            elapsed.push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count());
            std::printf("  %d worker%s  %8.2fs  (speedup %.2fx)\n", w,
                        w == 1 ? ": " : "s:", elapsed.back(),
                        elapsed.front() / elapsed.back());
        }
        for (const ClusterResult &result : results) {
            SOS_ASSERT(result.responseByArrival ==
                               results.front().responseByArrival &&
                           result.nodeByArrival ==
                               results.front().nodeByArrival,
                       "cluster results drifted across worker counts");
        }

        std::string document;
        stats::JsonWriter json(&document);
        json.beginObject();
        json.key("schema");
        json.string("sos.bench-cluster");
        json.key("schema_version");
        json.number(1);
        json.key("tool");
        json.string("fig9_cluster");
        json.key("nodes");
        json.number(nodes);
        json.key("jobs");
        json.number(jobs);
        json.key("policy");
        json.string(policy);
        json.key("deterministic");
        json.boolean(true);
        json.key("points");
        json.beginArray();
        for (std::size_t i = 0; i < workers.size(); ++i) {
            json.beginObject();
            json.key("workers");
            json.number(workers[i]);
            json.key("elapsed_seconds");
            json.number(elapsed[i]);
            json.key("speedup");
            json.number(elapsed.front() / elapsed[i]);
            json.endObject();
        }
        json.endArray();
        json.endObject();
        SOS_ASSERT(json.complete());
        document += '\n';

        const std::string &path = harness.outputs().benchCluster;
        std::FILE *file = std::fopen(path.c_str(), "w");
        if (file == nullptr)
            fatal("cannot open bench-cluster output '", path, "'");
        const std::size_t written =
            std::fwrite(document.data(), 1, document.size(), file);
        if (written != document.size() || std::fclose(file) != 0)
            fatal("short write to bench-cluster output '", path, "'");
    }

    std::printf("\n(Extrapolation: the paper stops at one SMT "
                "machine; the signature dispatcher applies its "
                "counter-based symbiosis reasoning across nodes.)\n");
    return harness.finish();
}
