/**
 * @file
 * Figure 8: open-system response time vs arrival rate (lambda) on a
 * CMP of SMT cores, at 2 and 4 cores.
 *
 * The same kernel event loop that produces Figures 5-6 on one SMT
 * core runs here on the MachineBackend: every candidate coschedule
 * assigns a job group (and a per-core schedule over it) to each core,
 * and sample phases profile the candidates on parallel forks of the
 * whole machine. The paper stops at one core for its open system;
 * this figure extrapolates its methodology to the CMP substrate of
 * Figure 7.
 *
 * Per core count, one representative run is repeated serially with a
 * harness-owned backend so the manifest carries the machine's
 * per-core cache groups (machine.core<k>) and, when requested, the
 * kernel's decision trace.
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/stats_util.hh"
#include "sim/bench_harness.hh"
#include "sim/open_system.hh"
#include "sim/parallel_runner.hh"
#include "sim/reporting.hh"
#include "sos/open_backend.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig8_open_multicore", argc, argv);
    SimConfig &config = harness.config();
    // Open-system runs are long; default to a coarser scale than the
    // throughput benches unless the user chose one explicitly.
    if (std::getenv("SOS_CYCLE_SCALE") == nullptr)
        config.cycleScale = 200;
    const int level = 2;
    const int traces = 2;
    const std::vector<int> core_counts = {2, 4};
    const std::vector<double> factors = {0.85, 1.0, 1.4};

    printBanner("Figure 8: open-system response time vs lambda "
                "(CMP of SMT-" +
                std::to_string(level) + " cores)");
    TablePrinter table({"cores", "lambda(paper)", "load",
                        "improve% (avg)", "per trace", "mean N"},
                       {6, 13, 6, 14, 12, 7});
    table.printHeader();

    // Every (cores, lambda, trace) run is independent: fan them out.
    const ParallelScheduleRunner runner(config.jobs);
    std::vector<OpenSystemConfig> points;
    for (int cores : core_counts) {
        OpenSystemConfig base;
        base.level = level;
        base.numCores = cores;
        base.numJobs = 24;
        const std::uint64_t stable =
            base.effectiveInterarrivalPaper(config);
        for (double factor : factors) {
            for (int t = 0; t < traces; ++t) {
                OpenSystemConfig open = base;
                open.meanInterarrivalPaper =
                    static_cast<std::uint64_t>(
                        factor * static_cast<double>(stable));
                open.seed = config.seed ^
                            static_cast<std::uint64_t>(
                                1009 * cores + 31 * t) ^
                            open.meanInterarrivalPaper;
                points.push_back(open);
            }
        }
    }
    const std::vector<ResponseComparison> comparisons =
        runner.map<ResponseComparison>(
            points.size(), [&](std::size_t i) {
                return compareResponseTimes(config, points[i]);
            });

    const stats::Group by_cores = harness.group("cores");
    std::size_t cursor = 0;
    for (int cores : core_counts) {
        const stats::Group cores_group =
            by_cores.group(std::to_string(cores));
        for (double factor : factors) {
            RunningStat improvement;
            RunningStat mean_n;
            std::string per_trace;
            const stats::Group point =
                cores_group.group("x" + fmt(factor, 2));
            point.scalar("interarrival_paper_cycles",
                         "mean interarrival time in paper cycles") =
                points[cursor].meanInterarrivalPaper;
            stats::Distribution &per_trace_dist = point.distribution(
                "improvement_pct", "per-trace SOS improvement");
            for (int t = 0; t < traces; ++t, ++cursor) {
                const ResponseComparison &comparison =
                    comparisons[cursor];
                improvement.push(comparison.improvementPct);
                per_trace_dist.sample(comparison.improvementPct);
                mean_n.push(comparison.sos.meanJobsInSystem);
                if (t > 0)
                    per_trace += " ";
                per_trace += fmt(comparison.improvementPct, 1);
            }
            point.value("mean_jobs_in_system",
                        "mean queue length (Little's law)") =
                mean_n.mean();
            table.printRow(
                {std::to_string(cores),
                 fmtCycles(points[cursor - 1].meanInterarrivalPaper),
                 factor < 1.0 ? "heavy"
                              : (factor > 1.2 ? "light" : "ref"),
                 fmt(improvement.mean(), 1), per_trace,
                 fmt(mean_n.mean(), 1)});
        }
    }

    // One representative run per core count on a harness-owned
    // backend: serial, so the decision trace stays deterministic, and
    // alive past finish() so the manifest dump can read the machine's
    // per-core stat groups.
    std::vector<std::unique_ptr<EngineBackend>> backends;
    for (int cores : core_counts) {
        OpenSystemConfig open;
        open.level = level;
        open.numCores = cores;
        open.numJobs = 16;
        open.seed = config.seed ^
                    static_cast<std::uint64_t>(7001 * cores);
        const std::vector<JobArrival> arrivals =
            makeArrivalTrace(config, open);
        backends.push_back(makeOpenBackend(config, open));
        EngineBackend &backend = *backends.back();
        const OpenSystemResult sos = runOpenSystem(
            config, open, arrivals, OpenPolicy::Sos, backend,
            harness.wantsTrace() ? &harness.trace() : nullptr);

        const stats::Group machine =
            by_cores.group(std::to_string(cores)).group("machine");
        machine.info("backend", "engine backend substrate") =
            backend.name();
        machine.scalar("sample_phases", "sample phases run") =
            static_cast<std::uint64_t>(sos.samplePhases);
        machine.value("mean_response_cycles",
                      "mean job response time") =
            sos.meanResponseCycles;
        backend.machine().registerStats(machine);
    }

    std::printf("\n(Extrapolation: the paper's Figures 5-6 stop at "
                "one SMT core; response-time ratios at 2 and 4 cores "
                "use the same trace-replay methodology.)\n");
    return harness.finish();
}
