/**
 * @file
 * Reproduces Figure 3: weighted speedup achieved by SOS for all 13
 * jobmixes, per predictor, plus the Section 6 parallel-workload
 * readout (Jpb vs J2pb coscheduling decisions).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "common/stats_util.hh"
#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig3_sos_jobmixes", argc, argv);
    const SimConfig &config = harness.config();
    const stats::Group experiments = harness.group("experiments");
    std::vector<std::unique_ptr<BatchExperiment>> kept;
    const auto predictors = makeAllPredictors();

    printBanner("Figure 3: WS achieved by SOS per predictor");
    std::vector<std::string> headers{"Experiment", "worst", "best",
                                     "avg"};
    std::vector<int> widths{14, 6, 6, 6};
    for (const auto &predictor : predictors) {
        headers.push_back(predictor->name());
        widths.push_back(7);
    }
    TablePrinter table(headers, widths);
    table.printHeader();

    // Aggregates for the paper's headline numbers (which exclude the
    // Jpb outlier, as the paper does).
    RunningStat score_vs_avg;
    RunningStat score_vs_worst;

    struct ParallelResult
    {
        double score_ws = 0.0;
        double together_ws = 0.0;
        double split_ws = 0.0;
        bool score_coschedules = false;
    };
    ParallelResult jpb, j2pb;

    for (const ExperimentSpec &spec : paperExperiments()) {
        kept.push_back(std::make_unique<BatchExperiment>(spec, config));
        BatchExperiment &exp = *kept.back();
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        const stats::Group expGroup =
            experiments.group(stats::sanitizeSegment(spec.label));
        exp.publishStats(expGroup);
        if (harness.wantsTrace())
            exp.recordTrace(harness.trace());
        const stats::Group byPredictor = expGroup.group("predictors");
        for (const auto &predictor : predictors) {
            byPredictor.group(predictor->name())
                .value("ws", "symbios WS trusting this predictor") =
                exp.wsOfPredictor(*predictor);
        }

        std::vector<std::string> cells{spec.label,
                                       fmt(exp.worstWs(), 3),
                                       fmt(exp.bestWs(), 3),
                                       fmt(exp.averageWs(), 3)};
        for (const auto &predictor : predictors)
            cells.push_back(fmt(exp.wsOfPredictor(*predictor), 3));
        table.printRow(cells);

        const bool parallel = spec.label == "Jpb(10,2,2)" ||
                              spec.label == "J2pb(10,2,2)";
        const double score_ws = exp.wsOfPredictor(*predictors.back());
        if (!parallel) {
            score_vs_avg.push(100.0 * (score_ws - exp.averageWs()) /
                              exp.averageWs());
            score_vs_worst.push(100.0 * (score_ws - exp.worstWs()) /
                                exp.worstWs());
        } else {
            // Section 6: does the chosen schedule coschedule the two
            // ARRAY threads (units 8 and 9)?
            ParallelResult &result =
                spec.label == "Jpb(10,2,2)" ? jpb : j2pb;
            result.score_ws = score_ws;
            const int picked =
                exp.predictedIndex(*predictors.back());
            double together_best = 0.0;
            double split_best = 0.0;
            for (std::size_t i = 0; i < exp.schedules().size(); ++i) {
                bool together = false;
                for (const auto &tuple : exp.schedules()[i].tuples()) {
                    if (tuple == std::vector<int>{8, 9})
                        together = true;
                }
                auto &best = together ? together_best : split_best;
                best = std::max(best, exp.symbiosWs()[i]);
                if (static_cast<int>(i) == picked) {
                    result.score_coschedules = together;
                }
            }
            result.together_ws = together_best;
            result.split_ws = split_best;
        }
    }

    std::printf("\nScore predictor, excluding the parallel mixes "
                "(paper: +7%% over average, +22%% over worst):\n"
                "  vs average: %+.1f%%   vs worst: %+.1f%%\n",
                score_vs_avg.mean(), score_vs_worst.mean());
    {
        const stats::Group headline = harness.group("score_headline");
        headline.value("vs_avg_pct",
                       "Score WS gain over the oblivious average") =
            score_vs_avg.mean();
        headline.value("vs_worst_pct",
                       "Score WS gain over the worst schedule") =
            score_vs_worst.mean();
    }

    printBanner("Section 6: parallel workload scheduling");
    std::printf(
        "Jpb(10,2,2)  (tight sync): Score picks a schedule that %s "
        "the ARRAY threads.\n"
        "  best sampled WS with threads together: %.3f, split: %.3f\n",
        jpb.score_coschedules ? "COSCHEDULES" : "SPLITS",
        jpb.together_ws, jpb.split_ws);
    std::printf(
        "J2pb(10,2,2) (loose sync): Score picks a schedule that %s "
        "the ARRAY2 threads.\n"
        "  best sampled WS with threads together: %.3f, split: %.3f\n",
        j2pb.score_coschedules ? "COSCHEDULES" : "SPLITS",
        j2pb.together_ws, j2pb.split_ws);
    std::printf("\n(Paper: SOS coschedules tight-sync ARRAY threads; "
                "for the loose-sync variant the best schedule splits "
                "them, by ~13%%.)\n");
    return harness.finish();
}
