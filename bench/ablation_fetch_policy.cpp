/**
 * @file
 * Ablation: ICOUNT fetch vs naive round-robin fetch.
 *
 * The paper's substrate assumes ICOUNT.2.8 (Tullsen et al., ISCA'96).
 * This harness quantifies how much of the machine's throughput -- and
 * of SOS's headroom -- depends on that choice, by running Jsb(6,3,3)
 * under both fetch policies.
 */

#include <cstdio>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/reporting.hh"

int
main()
{
    using namespace sos;

    printBanner("Ablation: ICOUNT vs round-robin fetch on Jsb(6,3,3)");
    TablePrinter table({"fetch policy", "worst", "avg", "best",
                        "Score WS"},
                       {14, 7, 7, 7, 9});
    table.printHeader();

    const auto score = makeScorePredictor();
    for (const bool round_robin : {false, true}) {
        SimConfig config = benchConfigFromEnv();
        config.core.roundRobinFetch = round_robin;
        BatchExperiment exp(experimentByLabel("Jsb(6,3,3)"), config);
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        table.printRow({round_robin ? "round-robin" : "ICOUNT",
                        fmt(exp.worstWs(), 3), fmt(exp.averageWs(), 3),
                        fmt(exp.bestWs(), 3),
                        fmt(exp.wsOfPredictor(*score), 3)});
    }
    std::printf("\n(ICOUNT should raise throughput across the board "
                "by keeping fast-moving threads fed.)\n");
    return 0;
}
