/**
 * @file
 * Ablation: ICOUNT fetch vs naive round-robin fetch.
 *
 * The paper's substrate assumes ICOUNT.2.8 (Tullsen et al., ISCA'96).
 * This harness quantifies how much of the machine's throughput -- and
 * of SOS's headroom -- depends on that choice, by running Jsb(6,3,3)
 * under both fetch policies.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("ablation_fetch_policy", argc, argv);
    const stats::Group policies = harness.group("policies");
    std::vector<std::unique_ptr<BatchExperiment>> kept;

    printBanner("Ablation: ICOUNT vs round-robin fetch on Jsb(6,3,3)");
    TablePrinter table({"fetch policy", "worst", "avg", "best",
                        "Score WS"},
                       {14, 7, 7, 7, 9});
    table.printHeader();

    const auto score = makeScorePredictor();
    for (const bool round_robin : {false, true}) {
        SimConfig config = harness.config();
        config.core.roundRobinFetch = round_robin;
        kept.push_back(std::make_unique<BatchExperiment>(
            experimentByLabel("Jsb(6,3,3)"), config));
        BatchExperiment &exp = *kept.back();
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        const stats::Group policy = policies.group(
            round_robin ? "round_robin" : "icount");
        exp.publishStats(policy.group("experiment"));
        policy.value("score_ws", "symbios WS trusting Score") =
            exp.wsOfPredictor(*score);
        if (harness.wantsTrace())
            exp.recordTrace(harness.trace());
        table.printRow({round_robin ? "round-robin" : "ICOUNT",
                        fmt(exp.worstWs(), 3), fmt(exp.averageWs(), 3),
                        fmt(exp.bestWs(), 3),
                        fmt(exp.wsOfPredictor(*score), 3)});
    }
    std::printf("\n(ICOUNT should raise throughput across the board "
                "by keeping fast-moving threads fed.)\n");
    return harness.finish();
}
