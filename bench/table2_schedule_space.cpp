/**
 * @file
 * Reproduces Table 2: the number of distinct schedules per jobmix and
 * the paper-time length of a 10-schedule sample phase.
 *
 * The schedule counts are exact combinatorics (verified by
 * enumeration for every space small enough to materialize), so this
 * table reproduces the paper's numbers digit-for-digit; the one
 * deviation is Jsl(6,3,1)'s sample cycles, where the paper's
 * unspecified "little" timeslice is taken as paperTimeslice/4
 * (75 M instead of 100 M; see DESIGN.md).
 */

#include <algorithm>
#include <cstdio>
#include <set>

#include "sched/schedule.hh"
#include "sim/bench_harness.hh"
#include "sim/experiment_defs.hh"
#include "sim/reporting.hh"
#include "sim/sim_config.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("table2_schedule_space", argc, argv);
    const stats::Group spaces = harness.group("spaces");

    printBanner("Table 2: distinct schedules and sample-phase length");
    TablePrinter table({"Experiment", "Distinct Schedules",
                        "Million Sample Cycles", "enum check"},
                       {14, 20, 22, 12});
    table.printHeader();

    for (const ExperimentSpec &spec : paperExperiments()) {
        const ScheduleSpace space(spec.numUnits(), spec.level,
                                  spec.swap);
        const std::uint64_t count = space.distinctCount();

        // Cross-check the closed form by exhaustive enumeration where
        // the space is small enough to hold in memory.
        std::string check = "-";
        if (count <= 6000) {
            std::set<std::string> keys;
            for (const Schedule &s : space.enumerateAll())
                keys.insert(s.key());
            check = keys.size() == count ? "ok" : "MISMATCH";
        }

        table.printRow(
            {spec.label, std::to_string(count),
             std::to_string(paperSamplePhaseCycles(spec) / 1000000),
             check});

        const stats::Group entry =
            spaces.group(stats::sanitizeSegment(spec.label));
        entry.scalar("distinct_schedules",
                     "size of the schedule space") = count;
        entry.scalar("paper_sample_cycles",
                     "paper-time sample-phase length") =
            paperSamplePhaseCycles(spec);
        entry.info("enum_check",
                   "exhaustive-enumeration cross-check result") = check;
    }

    std::printf("\nPaper values: 3/12/12/945/945/10/60/60/35/2520/2520/"
                "5775/462 schedules;\n30/250/250/250/250/100/300/100*/"
                "100/400/100/150/100 M cycles (*our little timeslice "
                "gives 75).\n");
    return harness.finish();
}
