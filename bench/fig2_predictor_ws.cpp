/**
 * @file
 * Reproduces Figure 2: weighted speedup achieved with each dynamic
 * predictor on Jsb(6,3,3), against the best, worst and average of all
 * ten schedules.
 */

#include <cstdio>

#include "core/learned_predictor.hh"
#include "core/predictor.hh"
#include "model/model.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig2_predictor_ws", argc, argv);
    const SimConfig &config = harness.config();
    const ExperimentSpec &spec = experimentByLabel("Jsb(6,3,3)");

    BatchExperiment exp(spec, config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    exp.publishStats(
        harness.group(stats::sanitizeSegment(spec.label)));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());

    printBanner("Figure 2: predictor WS on " + spec.label);
    TablePrinter table({"bar", "WS", "vs avg%"}, {12, 6, 8});
    table.printHeader();

    const double avg = exp.averageWs();
    const stats::Group bars = harness.group("bars");
    auto bar = [&](const std::string &name, double ws) {
        table.printRow(
            {name, fmt(ws, 3), fmt(100.0 * (ws - avg) / avg, 1)});
        bars.group(name).value("ws", "Figure 2 bar height") = ws;
    };

    bar("Best", exp.bestWs());
    bar("Worst", exp.worstWs());
    bar("Average", avg);
    for (const auto &predictor : makeAllPredictors())
        bar(predictor->name(), exp.wsOfPredictor(*predictor));

    // With --model/SOS_MODEL, add the trained model's bar: it ranks
    // the same candidates from static features alone.
    if (!config.modelPath.empty()) {
        LearnedPredictor learned(model::loadModel(config.modelPath));
        learned.setCandidateFeatures(exp.candidateFeatures());
        bar(learned.name(), exp.wsOfPredictor(learned));
    }

    std::printf("\n(Paper: best is 17%% over worst and 9%% over "
                "average; IPC, Dcache, FQ, Composite and Score come "
                "within 2%% of best.)\n");
    return harness.finish();
}
