/**
 * @file
 * Reproduces Figure 1: worst and best weighted speedup of the 13
 * jobmix / multithreading-level / replacement-policy combinations.
 *
 * The paper reports an average best-worst spread of 8% and a maximum
 * of 25% across its sampled schedules; the harness prints the same
 * series plus the observed spread statistics, and a Section 8
 * warmstart readout comparing full-swap to single-swap variants.
 */

#include <cstdio>
#include <memory>

#include "common/stats_util.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig1_ws_range", argc, argv);
    const SimConfig &config = harness.config();
    const stats::Group experiments = harness.group("experiments");
    // publishStats binds into each experiment, so they must stay
    // alive until the manifest is written.
    std::vector<std::unique_ptr<BatchExperiment>> kept;

    printBanner("Figure 1: worst and best weighted speedup");
    TablePrinter table({"Experiment", "worst WS", "best WS", "avg WS",
                        "spread%"},
                       {14, 9, 8, 8, 8});
    table.printHeader();

    RunningStat spread;
    struct Entry
    {
        std::string label;
        double best, worst, avg;
    };
    std::vector<Entry> entries;

    for (const ExperimentSpec &spec : paperExperiments()) {
        kept.push_back(std::make_unique<BatchExperiment>(spec, config));
        BatchExperiment &exp = *kept.back();
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        exp.publishStats(
            experiments.group(stats::sanitizeSegment(spec.label)));
        if (harness.wantsTrace())
            exp.recordTrace(harness.trace());
        const double pct =
            100.0 * (exp.bestWs() - exp.worstWs()) / exp.worstWs();
        spread.push(pct);
        entries.push_back(
            {spec.label, exp.bestWs(), exp.worstWs(), exp.averageWs()});
        table.printRow({spec.label, fmt(exp.worstWs(), 3),
                        fmt(exp.bestWs(), 3), fmt(exp.averageWs(), 3),
                        fmt(pct, 1)});
    }

    std::printf("\nbest-vs-worst spread: average %.1f%%, max %.1f%% "
                "(paper: average 8%%, max 25%%)\n",
                spread.mean(), spread.max());
    {
        const stats::Group summary = harness.group("spread");
        summary.value("avg_pct", "mean best-vs-worst WS spread") =
            spread.mean();
        summary.value("max_pct", "maximum best-vs-worst WS spread") =
            spread.max();
    }

    // Section 8: warmstart scheduling. Compare each full-swap
    // experiment with its single-swap variants on best WS.
    printBanner("Section 8: warmstart (Z=1) vs full swap");
    TablePrinter warm({"family", "full swap", "Z=1 big", "Z=1 little",
                       "gain%"},
                      {10, 10, 9, 11, 7});
    warm.printHeader();
    auto find = [&](const std::string &label) -> const Entry & {
        for (const Entry &entry : entries) {
            if (entry.label == label)
                return entry;
        }
        fatal("missing ", label);
    };
    struct Family
    {
        const char *name, *full, *big, *little;
    };
    for (const Family &family :
         {Family{"6 jobs", "Jsb(6,3,3)", "Jsb(6,3,1)", "Jsl(6,3,1)"},
          Family{"8 jobs", "Jsb(8,4,4)", "Jsb(8,4,1)", "Jsl(8,4,1)"}}) {
        const Entry &full = find(family.full);
        const Entry &big = find(family.big);
        const Entry &little = find(family.little);
        warm.printRow({family.name, fmt(full.best, 3),
                       fmt(big.best, 3), fmt(little.best, 3),
                       fmt(100.0 * (big.best - full.best) / full.best,
                           1)});
    }
    {
        const Entry &full = find("Jsb(5,2,2)");
        const Entry &big = find("Jsb(5,2,1)");
        warm.printRow({"5 jobs", fmt(full.best, 3), fmt(big.best, 3),
                       "-",
                       fmt(100.0 * (big.best - full.best) / full.best,
                           1)});
    }
    std::printf("\n(The paper reports a ~7%% average warmstart gain "
                "for the big-timeslice Z=1 runs.)\n");
    return harness.finish();
}
