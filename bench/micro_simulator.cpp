/**
 * @file
 * Microbenchmarks of the simulator's own components (google-benchmark):
 * trace generation, cache access, branch prediction, core simulation
 * throughput, and predictor scoring. These bound how much simulated
 * time the experiment harnesses can afford.
 */

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/predictor.hh"
#include "cpu/machine.hh"
#include "mem/cache.hh"
#include "sched/job.hh"
#include "sim/bench_harness.hh"
#include "trace/trace_generator.hh"
#include "trace/workload_library.hh"

namespace {

using namespace sos;

void
BM_TraceGenerator(benchmark::State &state)
{
    TraceGenerator gen(WorkloadLibrary::instance().get("GCC"), 1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gen.next());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_TraceGenerator);

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheParams{"bench", 64 * 1024, 64, 4});
    Rng rng(7);
    std::uint64_t addr = 0;
    for (auto _ : state) {
        addr = rng.below(1 << 20);
        benchmark::DoNotOptimize(cache.access(1, addr));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_CacheAccess);

void
BM_BranchPredictor(benchmark::State &state)
{
    BranchPredictor bp(16);
    std::uint64_t pc = 0x1000;
    for (auto _ : state) {
        pc = (pc + 4) & 0xffff;
        benchmark::DoNotOptimize(
            bp.predictAndUpdate(3, pc, (pc & 8) != 0));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_BranchPredictor);

/** Core throughput in simulated cycles/second at a given SMT level. */
void
BM_SmtCoreCycles(benchmark::State &state)
{
    const int level = static_cast<int>(state.range(0));
    CoreParams params;
    params.numContexts = level;
    Machine machine(params, MemParams{});
    SmtCore &core = machine.core(0);
    const char *names[] = {"EP", "FP", "MG", "GCC", "GO", "WAVE"};
    std::vector<std::unique_ptr<Job>> jobs;
    for (int t = 0; t < level; ++t) {
        jobs.push_back(std::make_unique<Job>(
            static_cast<std::uint32_t>(t + 1),
            WorkloadLibrary::instance().get(names[t % 6]),
            0xb0b0 + static_cast<std::uint64_t>(t), 1, false));
        ThreadBinding binding;
        binding.gen = &jobs.back()->generator(0);
        binding.asid = jobs.back()->asid();
        core.attachThread(t, binding);
    }
    PerfCounters pc;
    for (auto _ : state) {
        core.run(10000, pc);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * 10000));
    state.counters["IPC"] = pc.ipc();
}
BENCHMARK(BM_SmtCoreCycles)->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void
BM_PredictorScoring(benchmark::State &state)
{
    std::vector<ScheduleProfile> profiles(10);
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        profiles[i].counters.cycles = 100000;
        profiles[i].counters.retired = 150000 + 1000 * i;
        profiles[i].counters.confFpQueue = 5000 + 700 * i;
        profiles[i].counters.confFpUnits = 3000 + 500 * i;
        profiles[i].counters.l1dHits = 90000;
        profiles[i].counters.l1dMisses = 10000;
        profiles[i].counters.fpOps = 40000;
        profiles[i].counters.intOps = 60000;
        profiles[i].sliceIpc = {1.5, 1.7, 1.6, 1.4 + 0.01 * i};
    }
    const auto score = makeScorePredictor();
    for (auto _ : state) {
        benchmark::DoNotOptimize(score->best(profiles));
    }
}
BENCHMARK(BM_PredictorScoring);

/**
 * Deterministic throughput counters for the manifest: wall-clock
 * timings vary run to run, so the manifest records the simulated-work
 * side of each core configuration instead (fixed workloads, fixed
 * cycle budget), which is reproducible bit for bit.
 */
void
registerCoreThroughputStats(const stats::Group &group)
{
    for (const int level : {1, 2, 4, 6}) {
        CoreParams params;
        params.numContexts = level;
        Machine machine(params, MemParams{});
        SmtCore &core = machine.core(0);
        const char *names[] = {"EP", "FP", "MG", "GCC", "GO", "WAVE"};
        std::vector<std::unique_ptr<Job>> jobs;
        for (int t = 0; t < level; ++t) {
            jobs.push_back(std::make_unique<Job>(
                static_cast<std::uint32_t>(t + 1),
                WorkloadLibrary::instance().get(names[t % 6]),
                0xb0b0 + static_cast<std::uint64_t>(t), 1, false));
            ThreadBinding binding;
            binding.gen = &jobs.back()->generator(0);
            binding.asid = jobs.back()->asid();
            core.attachThread(t, binding);
        }
        PerfCounters pc;
        core.run(10000, pc);
        const stats::Group entry =
            group.group("smt" + std::to_string(level));
        entry.scalar("cycles", "simulated cycles") = pc.cycles;
        entry.scalar("retired", "instructions retired") = pc.retired;
        entry.value("ipc", "retired instructions per cycle") = pc.ipc();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // google-benchmark owns the command line, so every harness output
    // flag is peeled off before Initialize() sees (and rejects) it.
    // run_all.sh passes --bench-sweep to all bench binaries alike, so
    // missing one here breaks the whole reproduction run.
    OutputPaths out = outputPathsFromEnv();
    std::vector<char *> forwarded;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (i + 1 < argc) {
            std::string *dest = nullptr;
            if (arg == "--out")
                dest = &out.manifest;
            else if (arg == "--trace")
                dest = &out.trace;
            else if (arg == "--bench-sweep")
                dest = &out.benchSweep;
            else if (arg == "--bench-core")
                dest = &out.benchCore;
            if (dest != nullptr) {
                *dest = argv[++i];
                continue;
            }
        }
        forwarded.push_back(argv[i]);
    }
    int forwarded_argc = static_cast<int>(forwarded.size());

    benchmark::Initialize(&forwarded_argc, forwarded.data());
    if (benchmark::ReportUnrecognizedArguments(forwarded_argc,
                                               forwarded.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();

    BenchHarness harness("micro_simulator", SimConfig{}, out);
    registerCoreThroughputStats(harness.group("core_throughput"));
    return harness.finish();
}
