/**
 * @file
 * Ablation: the Composite predictor's 0.9/0.1 weighting.
 *
 * The paper calls Composite "an experimental fit" of conflict and
 * smoothness signals. This harness sweeps the weight split on
 * Jsb(6,3,3) via a custom predictor built on the public Predictor
 * interface -- also a demonstration of extending SOS with one's own
 * predictor.
 */

#include <algorithm>
#include <cstdio>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

namespace {

using namespace sos;

/** Composite with a configurable conflict/balance weight split. */
class WeightedComposite : public Predictor
{
  public:
    explicit WeightedComposite(double conflict_weight)
        : conflictWeight_(conflict_weight)
    {
    }

    std::string
    name() const override
    {
        return "Composite(" + fmt(conflictWeight_, 2) + ")";
    }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        double low_fq = 1e300;
        double low_fp = 1e300;
        double low_sum2 = 1e300;
        for (const auto &p : profiles) {
            const double fq =
                p.counters.conflictPct(p.counters.confFpQueue);
            const double fp =
                p.counters.conflictPct(p.counters.confFpUnits);
            low_fq = std::min(low_fq, std::max(fq, 1e-6));
            low_fp = std::min(low_fp, std::max(fp, 1e-6));
            low_sum2 = std::min(low_sum2, std::max(fq + fp, 1e-6));
        }
        std::vector<double> out;
        for (const auto &p : profiles) {
            const double fq = std::max(
                p.counters.conflictPct(p.counters.confFpQueue), 1e-6);
            const double fp = std::max(
                p.counters.conflictPct(p.counters.confFpUnits), 1e-6);
            const double ratio = std::min(
                {fq / low_fq, fp / low_fp, (fq + fp) / low_sum2});
            const double balance = std::max(p.balance(), 0.01);
            out.push_back(conflictWeight_ / ratio +
                          (1.0 - conflictWeight_) / balance);
        }
        return out;
    }

  private:
    double conflictWeight_;
};

} // namespace

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("ablation_composite_weights", argc, argv);
    const SimConfig &config = harness.config();
    BatchExperiment exp(experimentByLabel("Jsb(6,3,3)"), config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    exp.publishStats(harness.group("experiment"));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());

    printBanner("Ablation: Composite weight split on Jsb(6,3,3)");
    std::printf("schedule WS range: worst %.3f, avg %.3f, best %.3f\n\n",
                exp.worstWs(), exp.averageWs(), exp.bestWs());

    TablePrinter table({"conflict weight", "picked", "WS"},
                       {16, 10, 7});
    table.printHeader();
    const stats::Group weights = harness.group("weights");
    for (const double w : {0.0, 0.25, 0.5, 0.75, 0.9, 1.0}) {
        const WeightedComposite predictor(w);
        const int index = exp.predictedIndex(predictor);
        table.printRow(
            {fmt(w, 2),
             exp.profiles()[static_cast<std::size_t>(index)].label,
             fmt(exp.symbiosWs()[static_cast<std::size_t>(index)],
                 3)});
        const stats::Group point = weights.group("w" + fmt(w, 2));
        point.info("picked", "schedule this weighting selects") =
            exp.profiles()[static_cast<std::size_t>(index)].label;
        point.value("ws", "symbios WS of the selected schedule") =
            exp.symbiosWs()[static_cast<std::size_t>(index)];
    }
    std::printf("\n(The paper's fit uses 0.9; weight 0.0 is pure "
                "Balance, 1.0 pure conflicts.)\n");
    return harness.finish();
}
