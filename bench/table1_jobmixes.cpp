/**
 * @file
 * Reproduces Table 1: the applications used in every experiment.
 *
 * Purely declarative, but printed by the harness so the reproduction
 * record (EXPERIMENTS.md) can be regenerated entirely from binaries.
 */

#include <cstdio>
#include <string>

#include "sim/bench_harness.hh"
#include "sim/experiment_defs.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("table1_jobmixes", argc, argv);
    const stats::Group mixes = harness.group("mixes");

    printBanner("Table 1: applications used in all experiments");
    TablePrinter table({"Experiment", "Jobs"}, {36, 54});
    table.printHeader();

    auto row = [&](const std::string &label, const JobMix &mix) {
        std::string jobs;
        for (int u = 0; u < mix.numUnits(); ++u) {
            if (u > 0)
                jobs += ",";
            jobs += mix.unitName(u);
        }
        table.printRow({label, jobs});
        const stats::Group entry =
            mixes.group(stats::sanitizeSegment(label));
        entry.info("jobs", "comma-separated unit names") = jobs;
        entry.scalar("units", "hardware units the mix occupies") =
            static_cast<std::uint64_t>(mix.numUnits());
    };

    // Group the throughput experiments that share a jobmix, as the
    // paper's Table 1 does.
    row("Jsb(4,2,2)", experimentByLabel("Jsb(4,2,2)").makeMix(1));
    row("Jsb(5,2,2), Jsb(5,2,1)",
        experimentByLabel("Jsb(5,2,2)").makeMix(1));
    row("Jpb(10,2,2)", experimentByLabel("Jpb(10,2,2)").makeMix(1));
    row("J2pb(10,2,2)", experimentByLabel("J2pb(10,2,2)").makeMix(1));
    row("Jsb(6,3,3), Jsb(6,3,1), Jsl(6,3,1)",
        experimentByLabel("Jsb(6,3,3)").makeMix(1));
    row("Jsb(8,4,4), Jsb(8,4,1), Jsl(8,4,1)",
        experimentByLabel("Jsb(8,4,4)").makeMix(1));
    row("Jsb(12,6,6), Jsb(12,4,4)",
        experimentByLabel("Jsb(12,6,6)").makeMix(1));

    for (const HierarchicalSpec &spec : hierarchicalExperiments())
        row(spec.label, spec.makeMix(1));

    std::printf("\n(FP is fpppp and MG is mgrid from SPEC95; mt_* jobs "
                "are adaptive multithreaded.)\n");
    return harness.finish();
}
