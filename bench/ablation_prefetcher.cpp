/**
 * @file
 * Ablation: does a stride prefetcher change what SOS can exploit?
 *
 * The paper's machine has no hardware prefetcher. This harness runs
 * Jsb(6,3,3) and Jsb(4,2,2) with the library's stride prefetcher on
 * and off, asking two questions: how much absolute weighted speedup
 * does prefetching add, and does hiding the streaming misses shrink
 * the best-vs-worst schedule spread that symbiotic scheduling feeds
 * on?
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/predictor.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("ablation_prefetcher", argc, argv);
    const stats::Group experiments = harness.group("experiments");
    std::vector<std::unique_ptr<BatchExperiment>> kept;

    printBanner("Ablation: stride prefetcher vs schedule sensitivity");
    TablePrinter table({"Experiment", "prefetch", "worst", "avg",
                        "best", "spread%", "Score WS"},
                       {12, 8, 7, 7, 7, 8, 9});
    table.printHeader();

    const auto score = makeScorePredictor();
    for (const char *label : {"Jsb(4,2,2)", "Jsb(6,3,3)"}) {
        for (const bool enabled : {false, true}) {
            SimConfig config = harness.config();
            config.mem.prefetch.enabled = enabled;
            kept.push_back(std::make_unique<BatchExperiment>(
                experimentByLabel(label), config));
            BatchExperiment &exp = *kept.back();
            exp.runSamplePhase();
            exp.runSymbiosValidation();
            const double spread = 100.0 *
                                  (exp.bestWs() - exp.worstWs()) /
                                  exp.worstWs();
            const stats::Group entry =
                experiments.group(stats::sanitizeSegment(label))
                    .group(enabled ? "prefetch_on" : "prefetch_off");
            exp.publishStats(entry.group("experiment"));
            entry.value("spread_pct", "best-vs-worst WS spread") =
                spread;
            entry.value("score_ws", "symbios WS trusting Score") =
                exp.wsOfPredictor(*score);
            if (harness.wantsTrace())
                exp.recordTrace(harness.trace());
            table.printRow({label, enabled ? "on" : "off",
                            fmt(exp.worstWs(), 3),
                            fmt(exp.averageWs(), 3),
                            fmt(exp.bestWs(), 3), fmt(spread, 1),
                            fmt(exp.wsOfPredictor(*score), 3)});
        }
    }
    std::printf("\n(Prefetching raises absolute WS for the streaming "
                "jobs; the schedule spread -- SOS's opportunity -- "
                "remains.)\n");
    return harness.finish();
}
