/**
 * @file
 * Reproduces Figure 6: response-time improvement of SOS over the
 * naive scheduler for various mean interarrival times (lambda), with
 * the SMT level held constant at 3. Several arrival traces are
 * averaged per point, as in Figure 5.
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats_util.hh"
#include "sim/bench_harness.hh"
#include "sim/open_system.hh"
#include "sim/parallel_runner.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig6_lambda_sweep", argc, argv);
    SimConfig &config = harness.config();
    if (std::getenv("SOS_CYCLE_SCALE") == nullptr)
        config.cycleScale = 200;
    const int level = 3;
    const int traces = 3;

    OpenSystemConfig base;
    base.level = level;
    const std::uint64_t stable = base.effectiveInterarrivalPaper(config);

    printBanner("Figure 6: response-time improvement vs lambda "
                "(SMT level 3)");
    TablePrinter table({"lambda(paper)", "load", "improve% (avg)",
                        "per trace", "mean N"},
                       {13, 6, 14, 22, 7});
    table.printHeader();

    // Every (lambda, trace) run is independent: fan them all out.
    const std::vector<double> factors = {0.85, 1.0, 1.25, 1.6, 2.2};
    const ParallelScheduleRunner runner(config.jobs);
    const std::vector<ResponseComparison> comparisons =
        runner.map<ResponseComparison>(
            factors.size() * static_cast<std::size_t>(traces),
            [&](std::size_t i) {
                const double factor =
                    factors[i / static_cast<std::size_t>(traces)];
                const auto t = static_cast<std::uint64_t>(
                    i % static_cast<std::size_t>(traces));
                const auto lambda = static_cast<std::uint64_t>(
                    factor * static_cast<double>(stable));
                OpenSystemConfig open = base;
                open.numJobs = 24;
                open.meanInterarrivalPaper = lambda;
                open.seed = config.seed ^ lambda ^ t;
                return compareResponseTimes(config, open);
            });

    const stats::Group byLambda = harness.group("lambda");
    for (std::size_t f = 0; f < factors.size(); ++f) {
        const double factor = factors[f];
        RunningStat improvement;
        RunningStat mean_n;
        std::string per_trace;
        const auto lambda = static_cast<std::uint64_t>(
            factor * static_cast<double>(stable));
        const stats::Group point =
            byLambda.group("x" + fmt(factor, 2));
        point.scalar("interarrival_paper_cycles",
                     "mean interarrival time in paper cycles") = lambda;
        stats::Distribution &per_trace_dist = point.distribution(
            "improvement_pct", "per-trace SOS improvement");
        for (int t = 0; t < traces; ++t) {
            const ResponseComparison &comparison =
                comparisons[f * static_cast<std::size_t>(traces) +
                            static_cast<std::size_t>(t)];
            improvement.push(comparison.improvementPct);
            per_trace_dist.sample(comparison.improvementPct);
            mean_n.push(comparison.sos.meanJobsInSystem);
            if (t > 0)
                per_trace += " ";
            per_trace += fmt(comparison.improvementPct, 1);
        }
        point.value("mean_jobs_in_system",
                    "mean queue length (Little's law)") = mean_n.mean();
        table.printRow(
            {fmtCycles(lambda),
             factor < 1.0 ? "heavy" : (factor > 1.3 ? "light" : "ref"),
             fmt(improvement.mean(), 1), per_trace,
             fmt(mean_n.mean(), 1)});
    }

    std::printf("\n(Paper: SOS improves response time across arrival "
                "rates; exact values differ per run because jobs, "
                "lengths and arrival order are random.)\n");
    return harness.finish();
}
