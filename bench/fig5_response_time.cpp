/**
 * @file
 * Reproduces Figure 5: response-time improvement of SOS over a naive
 * (arrival-order) jobscheduler on an open system with random job
 * arrivals and lengths, at SMT levels 2, 3, 4 and 6.
 *
 * The paper draws its conclusions "after many such experiments"; this
 * harness averages several independent arrival traces per level
 * (response-time means on a single trace are dominated by the luck of
 * the heaviest queueing episode).
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/stats_util.hh"
#include "sim/bench_harness.hh"
#include "sim/open_system.hh"
#include "sim/parallel_runner.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig5_response_time", argc, argv);
    SimConfig &config = harness.config();
    // Open-system runs are long; default to a coarser scale than the
    // throughput benches unless the user chose one explicitly.
    if (std::getenv("SOS_CYCLE_SCALE") == nullptr)
        config.cycleScale = 200;
    const int traces = 3;
    const std::vector<int> levels = {2, 3, 4, 6};

    printBanner("Figure 5: response-time improvement vs SMT level");
    TablePrinter table({"SMT level", "improve% (avg)", "per trace",
                        "mean N", "sample phases"},
                       {9, 14, 24, 7, 13});
    table.printHeader();

    // Every (level, trace) run is independent: fan them all out.
    const ParallelScheduleRunner runner(config.jobs);
    const std::vector<ResponseComparison> comparisons =
        runner.map<ResponseComparison>(
            levels.size() * static_cast<std::size_t>(traces),
            [&](std::size_t i) {
                const int level =
                    levels[i / static_cast<std::size_t>(traces)];
                const int t =
                    static_cast<int>(i % static_cast<std::size_t>(traces));
                OpenSystemConfig open;
                open.level = level;
                open.numJobs = 24;
                open.seed = config.seed ^
                            static_cast<std::uint64_t>(97 * level + t);
                return compareResponseTimes(config, open);
            });

    const stats::Group byLevel = harness.group("levels");
    for (std::size_t l = 0; l < levels.size(); ++l) {
        RunningStat improvement;
        RunningStat mean_n;
        int phases = 0;
        int resample_job = 0;
        int resample_timer = 0;
        std::string per_trace;
        const stats::Group level =
            byLevel.group(std::to_string(levels[l]));
        stats::Distribution &per_trace_dist = level.distribution(
            "improvement_pct", "per-trace SOS improvement");
        for (int t = 0; t < traces; ++t) {
            const ResponseComparison &comparison =
                comparisons[l * static_cast<std::size_t>(traces) +
                            static_cast<std::size_t>(t)];
            improvement.push(comparison.improvementPct);
            per_trace_dist.sample(comparison.improvementPct);
            mean_n.push(comparison.sos.meanJobsInSystem);
            phases += comparison.sos.samplePhases;
            resample_job += comparison.sos.resamplesOnJobChange;
            resample_timer += comparison.sos.resamplesOnTimer;
            if (t > 0)
                per_trace += " ";
            per_trace += fmt(comparison.improvementPct, 1);
        }
        level.value("mean_jobs_in_system",
                    "mean queue length (Little's law)") = mean_n.mean();
        level.scalar("sample_phases", "sample phases across traces") =
            static_cast<std::uint64_t>(phases);
        level.scalar("resamples_job_change",
                     "resamples triggered by arrivals/departures") =
            static_cast<std::uint64_t>(resample_job);
        level.scalar("resamples_timer",
                     "resamples triggered by the backoff timer") =
            static_cast<std::uint64_t>(resample_timer);
        table.printRow({std::to_string(levels[l]),
                        fmt(improvement.mean(), 1), per_trace,
                        fmt(mean_n.mean(), 1), std::to_string(phases)});
    }

    // The fanned-out comparisons cannot stream decisions (their
    // events would interleave across workers); when a trace was
    // requested, replay the canonical level-3 run serially so the
    // JSONL is deterministic and byte-comparable across runs.
    if (harness.wantsTrace()) {
        OpenSystemConfig open;
        open.level = 3;
        open.numJobs = 24;
        open.seed = config.seed ^ static_cast<std::uint64_t>(97 * 3);
        const std::vector<JobArrival> arrivals =
            makeArrivalTrace(config, open);
        runOpenSystem(config, open, arrivals, OpenPolicy::Sos,
                      &harness.trace());
    }

    std::printf("\n(Paper: improvements between 8%% and nearly 18%%, "
                "including all sampling overhead.)\n");
    return harness.finish();
}
