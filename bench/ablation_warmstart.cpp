/**
 * @file
 * Ablation: Section 8's warmstart scheduling, isolated.
 *
 * Runs the 6-job and 8-job mixes under full swap (Z=Y), single swap
 * with the big timeslice (both warmstart effects: longer residency
 * and less swap pressure), and single swap with the little timeslice
 * (which removes the longer-residency effect), reporting the average
 * symbios WS of the sampled schedules in each regime.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("ablation_warmstart", argc, argv);
    const SimConfig &config = harness.config();
    const stats::Group experiments = harness.group("experiments");
    std::vector<std::unique_ptr<BatchExperiment>> kept;

    printBanner("Ablation: warmstart scheduling (Section 8)");
    TablePrinter table({"Experiment", "avg WS", "best WS",
                        "resident slices/job"},
                       {12, 7, 8, 20});
    table.printHeader();

    for (const char *label :
         {"Jsb(6,3,3)", "Jsb(6,3,1)", "Jsl(6,3,1)", "Jsb(8,4,4)",
          "Jsb(8,4,1)", "Jsl(8,4,1)"}) {
        const ExperimentSpec &spec = experimentByLabel(label);
        kept.push_back(std::make_unique<BatchExperiment>(spec, config));
        BatchExperiment &exp = *kept.back();
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        // Consecutive resident timeslices per job: Y/Z, the residency
        // effect the paper credits for most of the warmstart gain.
        const int resident = spec.level / spec.swap;
        const stats::Group entry =
            experiments.group(stats::sanitizeSegment(label));
        exp.publishStats(entry.group("experiment"));
        entry.scalar("resident_slices_per_job",
                     "consecutive resident timeslices (Y/Z)") =
            static_cast<std::uint64_t>(resident);
        if (harness.wantsTrace())
            exp.recordTrace(harness.trace());
        table.printRow({spec.label, fmt(exp.averageWs(), 3),
                        fmt(exp.bestWs(), 3),
                        std::to_string(resident)});
    }

    std::printf("\n(Paper: swapping one job at a time with the big "
                "timeslice gains ~7%%; with the little timeslice the "
                "gain is negligible, isolating the residency effect.)\n");
    return harness.finish();
}
