/**
 * @file
 * Multicore figure: machine-level SOS on a CMP of SMT cores.
 *
 * Extends the paper's single-core result to the machine model: eight
 * Table 1 jobs on two and on four two-way SMT cores behind one shared
 * L2. For each machine the harness samples distinct machine schedules
 * (thread-to-core allocation + per-core coschedule sequence), runs the
 * symbios validation, and reports
 *
 *  - the best/worst/average machine WS over the sample (the span an
 *    allocation-aware scheduler can exploit), and
 *
 *  - the symbios WS achieved by each thread-to-core allocation policy
 *    (naive packing, random, balanced-icount, synpa) against the
 *    machine-level SOS pick -- the multicore analogue of Figure 1's
 *    best-vs-worst spread.
 */

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/bench_harness.hh"
#include "sim/machine_experiment.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig7_multicore", argc, argv);
    const SimConfig &config = harness.config();
    const stats::Group experiments = harness.group("experiments");
    // publishStats binds into each experiment, so they must stay
    // alive until the manifest is written.
    std::vector<std::unique_ptr<MachineExperiment>> kept;

    printBanner("Figure 7: machine-level SOS on a CMP of SMT cores");
    TablePrinter table({"Machine", "schedules", "worst WS", "best WS",
                        "avg WS", "spread%"},
                       {13, 10, 9, 8, 8, 8});
    table.printHeader();

    for (const MachineExperimentSpec &spec : machineExperiments()) {
        // A loaded machine config fixes the core count; skip the
        // machines the configured hardware cannot host. Without a
        // config every machine runs (the pre-config sweep).
        if (config.machineCores > 0 &&
            spec.numCores != config.machineCores)
            continue;
        kept.push_back(
            std::make_unique<MachineExperiment>(spec, config));
        MachineExperiment &exp = *kept.back();
        exp.runSamplePhase();
        exp.runSymbiosValidation();
        const double pct =
            100.0 * (exp.bestWs() - exp.worstWs()) / exp.worstWs();
        table.printRow({spec.label,
                        std::to_string(exp.space().distinctCount()),
                        fmt(exp.worstWs(), 3), fmt(exp.bestWs(), 3),
                        fmt(exp.averageWs(), 3), fmt(pct, 1)});
    }

    printBanner("Thread-to-core allocation policies vs machine SOS");
    TablePrinter policies({"Machine", "policy", "allocation", "avg WS",
                           "best WS"},
                          {13, 16, 22, 8, 8});
    policies.printHeader();

    // The paper's four policies; heterogeneous machines additionally
    // run the placement-aware ones (no goldens pin those manifests).
    std::vector<std::string> policy_names = {"naive", "random",
                                             "balanced-icount",
                                             "synpa"};
    if (!config.heteroCores.empty()) {
        policy_names.push_back("big-core-first");
        policy_names.push_back("synpa-class");
    }

    for (std::size_t i = 0; i < kept.size(); ++i) {
        MachineExperiment &exp = *kept[i];
        std::vector<MachineExperiment::PolicyResult> results;
        for (const std::string &name : policy_names) {
            results.push_back(exp.evaluatePolicy(name));
            const MachineExperiment::PolicyResult &result =
                results.back();
            policies.printRow({exp.spec().label, result.policy,
                               result.allocationLabel,
                               fmt(result.avgWs, 3),
                               fmt(result.bestWs, 3)});
        }
        // The machine-level SOS pick, for contrast: the best sampled
        // machine schedule an allocation-aware scheduler converges on.
        policies.printRow({exp.spec().label, "machine-SOS", "(best)",
                           fmt(exp.averageWs(), 3),
                           fmt(exp.bestWs(), 3)});

        const stats::Group expGroup = experiments.group(
            stats::sanitizeSegment(exp.spec().label));
        exp.publishStats(expGroup);
        // Policy outcomes enter the manifest only for heterogeneous
        // machines (no goldens pin those); the homogeneous manifest
        // stays byte-identical to the pre-config-file bench.
        if (!config.heteroCores.empty()) {
            const stats::Group policyStats = expGroup.group("policies");
            for (const MachineExperiment::PolicyResult &result :
                 results) {
                const stats::Group g = policyStats.group(
                    stats::sanitizeSegment(result.policy));
                g.info("allocation", "partition the policy chose") =
                    result.allocationLabel;
                g.value("avg_ws",
                        "mean symbios WS over the allocation") =
                    result.avgWs;
                g.value("best_ws",
                        "best symbios WS over the allocation") =
                    result.bestWs;
            }
        }
        if (harness.wantsTrace())
            exp.recordTrace(harness.trace());
    }

    std::printf("\n(Jobs on one core interact through every pipeline "
                "resource; jobs on different\ncores only through the "
                "shared L2 -- so the allocation dominates the "
                "machine WS\nand counter-driven placement recovers "
                "most of the SOS gain.)\n");
    return harness.finish();
}
