/**
 * @file
 * Reproduces Figure 4: improvement in weighted speedup achievable by
 * SOS with hierarchical symbiosis (choosing both the coschedule and
 * the number of contexts each adaptive job receives) at SMT levels
 * 2, 3, 4 and 6, plus the Section 7 EP/ARRAY context-split example.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "sim/bench_harness.hh"
#include "sim/hierarchical_experiment.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("fig4_hierarchical", argc, argv);
    const SimConfig &config = harness.config();
    const stats::Group experiments = harness.group("experiments");
    std::vector<std::unique_ptr<HierarchicalExperiment>> kept;

    printBanner("Figure 4: hierarchical symbiosis improvements");
    // The paper plots the improvement "potentially achievable by SOS"
    // with the extra allocation degree of freedom: the best candidate
    // against the random (average) and unlucky (worst) ones. The
    // Score-picked columns show what one concrete sample-phase run
    // attains.
    TablePrinter table({"Experiment", "worst", "avg", "best",
                        "potential +avg%", "+worst%", "Score WS",
                        "Score +avg%"},
                       {12, 7, 7, 7, 15, 8, 9, 11});
    table.printHeader();

    for (const HierarchicalSpec &spec : hierarchicalExperiments()) {
        kept.push_back(
            std::make_unique<HierarchicalExperiment>(spec, config));
        HierarchicalExperiment &exp = *kept.back();
        exp.run();
        exp.publishStats(
            experiments.group(stats::sanitizeSegment(spec.label)));
        if (harness.wantsTrace())
            exp.recordTrace(harness.trace());
        const double potential_avg =
            100.0 * (exp.bestWs() - exp.averageWs()) / exp.averageWs();
        const double potential_worst =
            100.0 * (exp.bestWs() - exp.worstWs()) / exp.worstWs();
        table.printRow({spec.label, fmt(exp.worstWs(), 3),
                        fmt(exp.averageWs(), 3), fmt(exp.bestWs(), 3),
                        fmt(potential_avg, 1), fmt(potential_worst, 1),
                        fmt(exp.scoreWs(), 3),
                        fmt(exp.improvementOverAveragePct(), 1)});
    }
    std::printf("\n(Paper: the two levels of choice give SOS a "
                "significant advantage over random and unlucky "
                "schedules at every SMT level.)\n");

    // Section 7 worked example: mt_EP and mt_ARRAY on a 3-context SMT.
    printBanner("Section 7: EP/ARRAY context allocation at SMT 3");
    HierarchicalSpec example;
    example.label = "EP+ARRAY";
    example.level = 3;
    example.workloads = {"mt_EP", "mt_ARRAY"};
    HierarchicalExperiment exp(example, config, 16);
    exp.run();
    exp.publishStats(
        experiments.group(stats::sanitizeSegment(example.label)));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());

    TablePrinter detail({"allocation [EP,ARRAY]", "schedule", "WS"},
                        {22, 16, 7});
    detail.printHeader();
    for (const auto &candidate : exp.candidates()) {
        detail.printRow({candidate.plan.label(),
                         candidate.schedule.label(),
                         fmt(candidate.symbiosWs, 3)});
    }
    std::printf("\n(Paper: 2 contexts for ARRAY + 1 for EP is 8%% "
                "more symbiotic than the complement; alternating 3 EP "
                "threads with 3 ARRAY threads is 9%% worse than the "
                "best.)\n");

    // ...and the Section 7 twist: adding CG changes the optimum.
    printBanner("Section 7: adding CG changes the optimal allocation");
    HierarchicalSpec with_cg;
    with_cg.label = "CG+EP+ARRAY";
    with_cg.level = 4;
    with_cg.workloads = {"CG", "mt_EP", "mt_ARRAY"};
    HierarchicalExperiment exp2(with_cg, config, 18);
    exp2.run();
    exp2.publishStats(
        experiments.group(stats::sanitizeSegment(with_cg.label)));
    if (harness.wantsTrace())
        exp2.recordTrace(harness.trace());
    const auto &best = exp2.candidates()[static_cast<std::size_t>(
        exp2.scoreBestIndex())];
    std::printf("SOS picks allocation %s (schedule %s), WS %.3f "
                "[best %.3f, avg %.3f]\n",
                best.plan.label().c_str(),
                best.schedule.label().c_str(), best.symbiosWs,
                exp2.bestWs(), exp2.averageWs());
    std::printf("(Paper: with CG in the mix the optimum becomes 1 "
                "context for CG, 2 for EP, 1 for ARRAY.)\n");
    return harness.finish();
}
