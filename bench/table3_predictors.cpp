/**
 * @file
 * Reproduces Table 3: per-schedule predictor data for Jsb(6,3,3).
 *
 * All 10 possible schedules of the 6-job mix are profiled in the
 * sample phase; the predictor columns are printed together with each
 * schedule's weighted speedup in a subsequent symbios phase. The best
 * value in each column is starred.
 */

#include <cstdio>
#include <vector>

#include "core/learned_predictor.hh"
#include "core/predictor.hh"
#include "model/model.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/reporting.hh"

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("table3_predictors", argc, argv);
    const SimConfig &config = harness.config();
    const ExperimentSpec &spec = experimentByLabel("Jsb(6,3,3)");

    BatchExperiment exp(spec, config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    exp.publishStats(
        harness.group(stats::sanitizeSegment(spec.label)));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());

    printBanner("Table 3: predictor data for " + spec.label);
    std::printf("sample phase: %s simulated cycles "
                "(paper-equivalent %s; paper used 100M)\n"
                "symbios per schedule: %s simulated cycles\n\n",
                fmtCycles(exp.samplePhaseCycles()).c_str(),
                fmtCycles(exp.samplePhaseCycles() * config.cycleScale)
                    .c_str(),
                fmtCycles(config.symbiosCycles()).c_str());

    const auto &profiles = exp.profiles();
    const std::size_t n = profiles.size();

    // Table 3's columns, in order. Values follow the paper's
    // conventions: conflicts as % of cycles, Dcache as hit %, and the
    // raw Composite score.
    struct Column
    {
        const char *name;
        std::vector<double> values;
        bool lower_is_better;
    };
    std::vector<Column> columns;

    auto collect = [&](const char *name, auto getter, bool lower) {
        Column column;
        column.name = name;
        column.lower_is_better = lower;
        for (const auto &p : profiles)
            column.values.push_back(getter(p));
        columns.push_back(std::move(column));
    };

    collect("IPC", [](const ScheduleProfile &p) {
        return p.counters.ipc();
    }, false);
    collect("AllConf", [](const ScheduleProfile &p) {
        return p.counters.allConflictPct();
    }, true);
    collect("Dcache", [](const ScheduleProfile &p) {
        return 100.0 * p.counters.l1dHitRate();
    }, false);
    collect("FQ", [](const ScheduleProfile &p) {
        return p.counters.conflictPct(p.counters.confFpQueue);
    }, true);
    collect("FP", [](const ScheduleProfile &p) {
        return p.counters.conflictPct(p.counters.confFpUnits);
    }, true);
    collect("Sum2", [](const ScheduleProfile &p) {
        return p.counters.conflictPct(p.counters.confFpQueue) +
               p.counters.conflictPct(p.counters.confFpUnits);
    }, true);
    collect("Diversity", [](const ScheduleProfile &p) {
        return p.counters.mixImbalance();
    }, true);
    collect("Balance", [](const ScheduleProfile &p) {
        return p.balance();
    }, true);
    {
        // Composite: the raw predictor score (higher is better).
        Column column;
        column.name = "Composite";
        column.lower_is_better = false;
        column.values = makePredictor("Composite")->score(profiles);
        columns.push_back(std::move(column));
    }
    // With --model/SOS_MODEL, add the trained model's predicted-WS
    // column (higher is better), scored from static features.
    std::unique_ptr<LearnedPredictor> learned;
    if (!config.modelPath.empty()) {
        learned = std::make_unique<LearnedPredictor>(
            model::loadModel(config.modelPath));
        learned->setCandidateFeatures(exp.candidateFeatures());
        Column column;
        column.name = "Learned";
        column.lower_is_better = false;
        column.values = learned->score(profiles);
        columns.push_back(std::move(column));
    }

    std::vector<std::string> headers{"Schedule"};
    std::vector<int> widths{10};
    for (const Column &column : columns) {
        headers.push_back(column.name);
        widths.push_back(9);
    }
    headers.push_back("WS(t)");
    widths.push_back(7);

    TablePrinter table(headers, widths);
    table.printHeader();
    for (std::size_t i = 0; i < n; ++i) {
        std::vector<std::string> cells{profiles[i].label};
        for (const Column &column : columns) {
            double best = column.values[0];
            for (double v : column.values) {
                best = column.lower_is_better ? std::min(best, v)
                                              : std::max(best, v);
            }
            std::string cell = fmt(column.values[i], 2);
            if (column.values[i] == best)
                cell += "*";
            cells.push_back(cell);
        }
        cells.push_back(fmt(exp.symbiosWs()[i], 3));
        table.printRow(cells);
    }

    std::printf("\n(* = best value in the column; the paper bolds "
                "these.)\n");
    std::printf("\nPredicted-best schedule per predictor:\n");
    const stats::Group picks = harness.group("predictors");
    const auto report_pick = [&](const Predictor &predictor) {
        const int index = exp.predictedIndex(predictor);
        std::printf("  %-10s -> %-10s (symbios WS %.3f)\n",
                    predictor.name().c_str(),
                    profiles[static_cast<std::size_t>(index)]
                        .label.c_str(),
                    exp.symbiosWs()[static_cast<std::size_t>(index)]);
        const stats::Group pick = picks.group(predictor.name());
        pick.info("schedule", "schedule this predictor selects") =
            profiles[static_cast<std::size_t>(index)].label;
        pick.value("ws", "symbios WS of the selected schedule") =
            exp.symbiosWs()[static_cast<std::size_t>(index)];
    };
    for (const auto &predictor : makeAllPredictors())
        report_pick(*predictor);
    if (learned)
        report_pick(*learned);
    return harness.finish();
}
