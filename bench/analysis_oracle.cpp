/**
 * @file
 * Analysis: oracle headroom and pairwise-symbiosis structure.
 *
 * Two questions the paper raises but cannot answer with 10 samples:
 *
 *  1. Oracle gap -- Jsb(6,3,3) has only 10 schedules, all of which the
 *     harness measures, so SOS's pick can be compared against the true
 *     optimum (for larger spaces the paper, and we, only sample).
 *
 *  2. Additivity -- is symbiosis approximately pairwise? The harness
 *     measures the weighted speedup of every *pair* of the 6-job mix
 *     coscheduled alone, then asks how well a schedule's measured WS
 *     is ranked by the sum of its tuples' pairwise scores. If the
 *     ranking is good, a scheduler could search the schedule space
 *     combinatorially instead of sampling (the "global optimization"
 *     SOS only approximates, Section 7).
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/predictor.hh"
#include "cpu/machine.hh"
#include "metrics/calibrator.hh"
#include "metrics/weighted_speedup.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/parallel_runner.hh"
#include "sim/reporting.hh"
#include "sim/timeslice_engine.hh"

namespace {

using namespace sos;

/** Measured WS of one pair coscheduled alone for a while. */
double
pairWs(const ExperimentSpec &spec, const SimConfig &config, int a,
       int b)
{
    JobMix mix = spec.makeMix(config.seed);
    Calibrator calibrator(config.coreFor(2), config.mem,
                          config.calibWarmupCycles,
                          config.calibMeasureCycles);
    calibrator.calibrate(mix);

    Machine machine(config.coreFor(2), config.mem);
    TimesliceEngine engine(machine.core(0), config.timesliceCycles());

    const Schedule schedule = Schedule::fromPartition({{a, b}});
    const std::uint64_t slices = 10;
    engine.runSchedule(mix, schedule, 2); // warm
    const auto run = engine.runSchedule(mix, schedule, slices);
    return weightedSpeedup(mix, run.jobRetired, run.cycles);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace sos;

    BenchHarness harness("analysis_oracle", argc, argv);
    const SimConfig &config = harness.config();
    const ExperimentSpec &spec = experimentByLabel("Jsb(6,3,3)");

    // Part 1: oracle vs SOS over the exhaustive space.
    BatchExperiment exp(spec, config);
    exp.runSamplePhase(); // all 10 schedules: the sample IS the space
    exp.runSymbiosValidation();
    exp.publishStats(harness.group("experiment"));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());

    printBanner("Oracle headroom on " + spec.label);
    const auto score = makeScorePredictor();
    const double sos_ws = exp.wsOfPredictor(*score);
    std::printf("oracle (true best) WS: %.3f\n", exp.bestWs());
    std::printf("SOS (Score) WS:        %.3f  (%.1f%% of the oracle's "
                "gain over worst)\n",
                sos_ws,
                100.0 * (sos_ws - exp.worstWs()) /
                    (exp.bestWs() - exp.worstWs()));
    std::printf("oblivious expectation: %.3f\n", exp.averageWs());
    {
        const stats::Group oracle = harness.group("oracle");
        oracle.value("oracle_ws", "true-best symbios WS") =
            exp.bestWs();
        oracle.value("sos_ws", "symbios WS of the Score pick") = sos_ws;
        oracle.value("captured_gain_pct",
                     "share of the oracle's gain over worst") =
            100.0 * (sos_ws - exp.worstWs()) /
            (exp.bestWs() - exp.worstWs());
    }

    // Part 2: pairwise symbiosis matrix for the 6 jobs. Every pair
    // run is independent, so they fan out across the sweep workers.
    printBanner("Pairwise weighted speedup (2 contexts)");
    const int n = spec.numUnits();
    std::vector<std::vector<double>> matrix(
        static_cast<std::size_t>(n),
        std::vector<double>(static_cast<std::size_t>(n), 0.0));
    {
        std::vector<std::pair<int, int>> pairs;
        for (int a = 0; a < n; ++a) {
            for (int b = a + 1; b < n; ++b)
                pairs.emplace_back(a, b);
        }
        const ParallelScheduleRunner runner(config.jobs);
        const std::vector<double> ws = runner.map<double>(
            pairs.size(), [&](std::size_t i) {
                return pairWs(spec, config, pairs[i].first,
                              pairs[i].second);
            });
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            matrix[static_cast<std::size_t>(pairs[i].first)]
                  [static_cast<std::size_t>(pairs[i].second)] = ws[i];
        }

        stats::Vector &pair_ws = harness.group("pairwise").vector(
            "ws", "WS of each job pair coscheduled alone");
        for (std::size_t i = 0; i < pairs.size(); ++i) {
            pair_ws.push(std::to_string(pairs[i].first) + "_" +
                             std::to_string(pairs[i].second),
                         ws[i]);
        }

        JobMix names = spec.makeMix(config.seed);
        std::vector<std::string> headers{""};
        std::vector<int> widths{8};
        for (int j = 0; j < n; ++j) {
            headers.push_back(names.unitName(j) + "(" +
                              std::to_string(j) + ")");
            widths.push_back(9);
        }
        TablePrinter table(headers, widths);
        table.printHeader();
        for (int a = 0; a < n; ++a) {
            std::vector<std::string> row{names.unitName(a) + "(" +
                                         std::to_string(a) + ")"};
            for (int b = 0; b < n; ++b) {
                if (b == a)
                    row.push_back("-");
                else
                    row.push_back(fmt(b < a ? matrix[b][a]
                                            : matrix[a][b],
                                      2));
            }
            table.printRow(row);
        }
    }

    // Part 3: does the pairwise sum rank whole schedules correctly?
    printBanner("Pairwise-sum prediction vs measured schedule WS");
    TablePrinter rank({"schedule", "pair-sum", "measured WS"},
                      {10, 9, 12});
    rank.printHeader();
    std::vector<std::pair<double, double>> points;
    for (std::size_t i = 0; i < exp.schedules().size(); ++i) {
        double sum = 0.0;
        for (const auto &tuple : exp.schedules()[i].tuples()) {
            for (std::size_t x = 0; x < tuple.size(); ++x) {
                for (std::size_t y = x + 1; y < tuple.size(); ++y) {
                    const int a = std::min(tuple[x], tuple[y]);
                    const int b = std::max(tuple[x], tuple[y]);
                    sum += matrix[static_cast<std::size_t>(a)]
                                 [static_cast<std::size_t>(b)];
                }
            }
        }
        points.emplace_back(sum, exp.symbiosWs()[i]);
        rank.printRow({exp.schedules()[i].label(), fmt(sum, 2),
                       fmt(exp.symbiosWs()[i], 3)});
    }

    // Rank correlation (Spearman via rank vectors).
    const std::size_t m = points.size();
    auto ranksOf = [m](std::vector<double> values) {
        std::vector<std::size_t> order(m);
        for (std::size_t i = 0; i < m; ++i)
            order[i] = i;
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) {
                      return values[a] < values[b];
                  });
        std::vector<double> ranks(m);
        for (std::size_t r = 0; r < m; ++r)
            ranks[order[r]] = static_cast<double>(r);
        return ranks;
    };
    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto &[x, y] : points) {
        xs.push_back(x);
        ys.push_back(y);
    }
    const auto rx = ranksOf(xs);
    const auto ry = ranksOf(ys);
    double d2 = 0.0;
    for (std::size_t i = 0; i < m; ++i)
        d2 += (rx[i] - ry[i]) * (rx[i] - ry[i]);
    const double spearman =
        1.0 - 6.0 * d2 /
                  (static_cast<double>(m) *
                   (static_cast<double>(m) * static_cast<double>(m) -
                    1.0));
    std::printf("\nSpearman rank correlation (pair-sum vs measured): "
                "%.2f\n",
                spearman);
    std::printf("(High correlation would justify combinatorial search "
                "over pairwise scores instead of schedule sampling.)\n");
    harness.group("pairwise")
            .value("spearman",
                   "rank correlation of pair-sum vs measured WS") =
        spearman;
    return harness.finish();
}
