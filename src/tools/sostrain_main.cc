/**
 * @file
 * sostrain: fit a WS model from a JSONL decision trace.
 *
 *   sostrain TRACE --model-out FILE [--report-out FILE]
 *            [--kind linear|tree] [--holdout N] [--depth D]
 *            [--min-leaf N] [--ridge X]
 *
 * TRACE is a decision trace written by the batch drivers (--trace /
 * SOS_TRACE): `sample_candidate` events carry the composed feat_*
 * vectors, `symbios_result` events the realized weighted speedups.
 * sostrain joins the two, fits the requested model on the training
 * split (every Nth row held out, default 5), writes the model file
 * (loadable via --model / SOS_MODEL), and reports train/held-out MAE
 * and Spearman rank correlation plus a per-mix comparison of the
 * model's pick against the paper predictors' recorded votes. The
 * report is a single "sos.train-report" JSON object; CI gates on its
 * held-out rank correlation.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "model/model.hh"
#include "model/trainer.hh"
#include "stats/json.hh"
#include "stats/trace_reader.hh"

namespace {

using namespace sos;

struct Options
{
    std::string trace;
    std::string modelOut;
    std::string reportOut;
    std::string kind = "linear";
    int holdout = 5;
    model::FitOptions fit;
};

Options
parseArgs(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto valueOf = [&](const char *flag) -> std::string {
            if (i + 1 >= argc)
                fatal(flag, " needs an argument");
            return argv[++i];
        };
        const auto intOf = [&](const char *flag) {
            const std::string value = valueOf(flag);
            char *end = nullptr;
            const long parsed = std::strtol(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0')
                fatal(flag, " needs an integer, got '", value, "'");
            return static_cast<int>(parsed);
        };
        if (arg == "--model-out")
            options.modelOut = valueOf("--model-out");
        else if (arg == "--report-out")
            options.reportOut = valueOf("--report-out");
        else if (arg == "--kind")
            options.kind = valueOf("--kind");
        else if (arg == "--holdout")
            options.holdout = intOf("--holdout");
        else if (arg == "--depth")
            options.fit.maxDepth = intOf("--depth");
        else if (arg == "--min-leaf")
            options.fit.minLeaf = intOf("--min-leaf");
        else if (arg == "--ridge")
            options.fit.ridge = std::atof(valueOf("--ridge").c_str());
        else if (arg == "--contrast")
            options.fit.contrast =
                std::atof(valueOf("--contrast").c_str());
        else if (arg == "--help" || arg == "-h") {
            std::printf(
                "usage: sostrain TRACE --model-out FILE "
                "[--report-out FILE] [--kind linear|tree]\n"
                "                [--holdout N] [--depth D] "
                "[--min-leaf N] [--ridge X] [--contrast X]\n");
            std::exit(0);
        } else if (!arg.empty() && arg[0] == '-')
            fatal("unknown argument '", arg, "' (see sostrain --help)");
        else if (options.trace.empty())
            options.trace = arg;
        else
            fatal("more than one trace file given");
    }
    if (options.trace.empty())
        fatal("sostrain needs a trace file (see sostrain --help)");
    if (options.modelOut.empty())
        fatal("sostrain needs --model-out FILE");
    if (options.kind != "linear" && options.kind != "tree")
        fatal("--kind must be 'linear' or 'tree', got '", options.kind,
              "'");
    if (options.holdout < 0)
        fatal("--holdout must be >= 0");
    return options;
}

/** Realized WS of the model's argmax pick, per experiment. */
struct MixEval
{
    std::string experiment;
    int modelPick = 0;
    double modelWs = 0.0;
    double bestWs = 0.0;
    double avgWs = 0.0;
    std::string bestPredictor;
    double bestPredictorWs = 0.0;
    bool hasVotes = false;
};

std::vector<MixEval>
evaluateMixes(const model::WsModel &ws_model,
              const std::vector<model::TrainRow> &rows,
              const std::vector<stats::TraceEvent> &events)
{
    // Best recorded paper-predictor vote per experiment ("learned" is
    // not in makeAllPredictors(), so votes are all hand-tuned ones).
    std::map<std::string, std::pair<std::string, double>> best_vote;
    for (const stats::TraceEvent &event : events) {
        if (event.type != "predictor_vote")
            continue;
        const std::string experiment = event.text("experiment");
        const std::string predictor = event.text("predictor");
        const double ws = event.number("ws");
        const auto hit = best_vote.find(experiment);
        if (hit == best_vote.end() || ws > hit->second.second)
            best_vote[experiment] = {predictor, ws};
    }

    std::vector<MixEval> evals;
    std::map<std::string, std::vector<const model::TrainRow *>> groups;
    std::vector<std::string> order;
    for (const model::TrainRow &row : rows) {
        if (groups.find(row.experiment) == groups.end())
            order.push_back(row.experiment);
        groups[row.experiment].push_back(&row);
    }
    for (const std::string &experiment : order) {
        const std::vector<const model::TrainRow *> &group =
            groups[experiment];
        MixEval eval;
        eval.experiment = experiment;
        double best_predicted = 0.0;
        double ws_total = 0.0;
        for (std::size_t i = 0; i < group.size(); ++i) {
            const model::TrainRow &row = *group[i];
            const double predicted = ws_model.predict(row.features);
            if (i == 0 || predicted > best_predicted) {
                best_predicted = predicted;
                eval.modelPick = row.index;
                eval.modelWs = row.ws;
            }
            eval.bestWs = i == 0 ? row.ws : std::max(eval.bestWs, row.ws);
            ws_total += row.ws;
        }
        eval.avgWs = ws_total / static_cast<double>(group.size());
        const auto vote = best_vote.find(experiment);
        if (vote != best_vote.end()) {
            eval.hasVotes = true;
            eval.bestPredictor = vote->second.first;
            eval.bestPredictorWs = vote->second.second;
        }
        evals.push_back(std::move(eval));
    }
    return evals;
}

void
writeReport(const Options &options, const model::WsModel &ws_model,
            const model::Dataset &dataset,
            const std::vector<model::TrainRow> &train,
            const std::vector<model::TrainRow> &holdout,
            const std::vector<MixEval> &evals)
{
    std::string out;
    stats::JsonWriter json(&out);
    json.beginObject();
    json.key("schema");
    json.string("sos.train-report");
    json.key("version");
    json.number(1);
    json.key("trace");
    json.string(options.trace);
    json.key("model_file");
    json.string(options.modelOut);
    json.key("kind");
    json.string(ws_model.kind());
    json.key("features_version");
    json.number(model::kFeatureSchemaVersion);
    json.key("rows");
    json.number(static_cast<std::uint64_t>(dataset.rows.size()));
    json.key("train_rows");
    json.number(static_cast<std::uint64_t>(train.size()));
    json.key("holdout_rows");
    json.number(static_cast<std::uint64_t>(holdout.size()));
    json.key("skipped_no_features");
    json.number(dataset.skippedNoFeatures);
    json.key("skipped_no_result");
    json.number(dataset.skippedNoResult);
    json.key("train_mae");
    json.number(model::meanAbsoluteError(ws_model, train));
    json.key("train_rank_correlation");
    json.number(model::rankCorrelation(ws_model, train));
    json.key("holdout_mae");
    json.number(model::meanAbsoluteError(ws_model, holdout));
    json.key("holdout_rank_correlation");
    json.number(model::rankCorrelation(ws_model, holdout));
    json.key("uncertainty_threshold");
    json.number(ws_model.uncertaintyThreshold());

    int at_least_best = 0;
    int with_votes = 0;
    json.key("mixes");
    json.beginArray();
    for (const MixEval &eval : evals) {
        json.beginObject();
        json.key("experiment");
        json.string(eval.experiment);
        json.key("model_pick");
        json.number(eval.modelPick);
        json.key("model_ws");
        json.number(eval.modelWs);
        json.key("best_ws");
        json.number(eval.bestWs);
        json.key("avg_ws");
        json.number(eval.avgWs);
        if (eval.hasVotes) {
            json.key("best_predictor");
            json.string(eval.bestPredictor);
            json.key("best_predictor_ws");
            json.number(eval.bestPredictorWs);
            ++with_votes;
            // Float-equality is fine: equal picks yield the same
            // recorded double.
            if (eval.modelWs >= eval.bestPredictorWs)
                ++at_least_best;
        }
        json.endObject();
    }
    json.endArray();
    json.key("mixes_with_votes");
    json.number(with_votes);
    json.key("mixes_model_at_least_best");
    json.number(at_least_best);
    json.endObject();
    out += "\n";

    if (options.reportOut.empty()) {
        std::fputs(out.c_str(), stdout);
        return;
    }
    std::ofstream file(options.reportOut);
    if (!file)
        fatal("cannot write report '", options.reportOut, "'");
    file << out;
    if (!file.good())
        fatal("failed writing report '", options.reportOut, "'");
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parseArgs(argc, argv);

    std::vector<stats::TraceEvent> events;
    try {
        events = stats::readTraceFile(options.trace);
    } catch (const stats::TraceReadError &error) {
        fatal(error.what());
    }

    model::Dataset dataset;
    try {
        dataset = model::datasetFromTrace(events);
    } catch (const model::ModelError &error) {
        fatal(error.what());
    }
    if (dataset.rows.empty())
        fatal("trace '", options.trace,
              "' holds no joinable sample_candidate/symbios_result "
              "pairs (run a batch driver with --trace)");

    std::vector<model::TrainRow> train;
    std::vector<model::TrainRow> holdout;
    model::splitDataset(dataset.rows, options.holdout, train, holdout);
    if (train.empty())
        fatal("the holdout split left no training rows");

    std::unique_ptr<model::WsModel> ws_model;
    if (options.kind == "linear")
        ws_model = model::fitLinearModel(dataset.featureNames, train,
                                         options.fit);
    else
        ws_model = model::fitRegressionTree(dataset.featureNames,
                                            train, options.fit);

    try {
        ws_model->save(options.modelOut);
    } catch (const model::ModelError &error) {
        fatal(error.what());
    }

    const std::vector<MixEval> evals =
        evaluateMixes(*ws_model, dataset.rows, events);
    writeReport(options, *ws_model, dataset, train, holdout, evals);

    std::fprintf(
        stderr,
        "sostrain: %s model on %zu rows (%zu held out), "
        "holdout MAE %.4f, holdout rank corr %.3f -> %s\n",
        ws_model->kind().c_str(), dataset.rows.size(), holdout.size(),
        model::meanAbsoluteError(*ws_model, holdout),
        model::rankCorrelation(*ws_model, holdout),
        options.modelOut.c_str());
    return 0;
}
