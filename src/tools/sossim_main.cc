/**
 * @file
 * sossim: command-line driver for the library.
 *
 * Subcommands:
 *   sossim workloads                     list the workload models
 *   sossim experiments                   list the paper's experiments
 *   sossim params                        list configurable keys
 *   sossim run <label> [--set k=v]...    run one throughput experiment
 *   sossim open [--level N] [--jobs N] [--set k=v]...
 *                                        naive-vs-SOS response times
 *   sossim hier [--level N] [--set k=v]...
 *                                        hierarchical symbiosis
 *   sossim machine [--cores N] [--set k=v]...
 *                                        machine-level SOS on a CMP
 *
 * Every subcommand accepts repeated --set key=value overrides (see
 * `sossim params`) and --help, plus the SOS_CYCLE_SCALE / SOS_SEED
 * environment variables handled by the bench harnesses.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.hh"
#include "common/logging.hh"
#include "config/machine_config.hh"
#include "core/predictor.hh"
#include "core/resample_policy.hh"
#include "sim/batch_experiment.hh"
#include "sim/bench_harness.hh"
#include "sim/config_env.hh"
#include "sim/hierarchical_experiment.hh"
#include "sim/machine_experiment.hh"
#include "sim/open_system.hh"
#include "sim/params_io.hh"
#include "sim/reporting.hh"
#include "sos/open_backend.hh"
#include "trace/workload_library.hh"

namespace {

using namespace sos;

/** Parsed command line: positionals plus --flag value pairs. */
struct Args
{
    std::vector<std::string> positional;
    std::vector<std::string> overrides; ///< from --set
    std::vector<std::pair<std::string, std::string>> flags;

    std::string
    flag(const std::string &name, const std::string &fallback) const
    {
        for (const auto &[key, value] : flags) {
            if (key == name)
                return value;
        }
        return fallback;
    }
};

/**
 * Per-subcommand usage, printed by `sossim <command> --help`. Every
 * line documents the shared output/worker knobs once so no subcommand
 * forgets them.
 */
void
printUsage(const std::string &command)
{
    const char *synopsis = "[options]";
    const char *specific = "";
    if (command == "run") {
        synopsis = "<label> [options]";
        specific = "  --jobs N            sweep worker threads\n";
    } else if (command == "open") {
        specific = "  --level N           SMT level (default 3)\n"
                   "  --cores N           SMT cores (default 1; more "
                   "build the CMP backend)\n"
                   "  --jobs N            jobs in the open system "
                   "(default 24)\n"
                   "  --set predictor=P   symbios predictor (see "
                   "`sossim open --set predictor=? ...`)\n"
                   "  --set policy=P      resample-timer policy "
                   "(backoff, fixed)\n";
    } else if (command == "hier") {
        specific = "  --level N           SMT level (default 2)\n"
                   "  --jobs N            sweep worker threads\n";
    } else if (command == "machine") {
        specific = "  --cores N           SMT cores on the machine "
                   "(default 2)\n"
                   "  --jobs N            sweep worker threads\n";
    } else if (command == "cluster") {
        specific =
            "  --nodes N           machines in the cluster (default "
            "2; env SOS_CLUSTER_NODES)\n"
            "  --dispatch P        dispatch policy: random, "
            "round-robin, least-loaded,\n"
            "                      signature (default; env "
            "SOS_DISPATCH)\n"
            "  --arrivals N        jobs in the arrival trace "
            "(default 1000)\n"
            "  --process P         arrival process: poisson "
            "(default), mmpp, diurnal\n"
            "  --epoch N           timeslices per dispatch epoch "
            "(default 8)\n"
            "  --level N           SMT level of every node (default "
            "3)\n"
            "  --cores N           SMT cores per node (default 1)\n"
            "  --mean-job C        mean job length in paper cycles\n"
            "  --mean-interarrival C\n"
            "                      front-door mean interarrival in "
            "paper cycles\n"
            "                      (default derives the stable load)\n"
            "  --classes SPEC      SLA classes as "
            "name:weight:sizeFactor[,...]\n"
            "  --jobs N            host worker threads for the node "
            "fan-out\n"
            "  (repeat --machine-config to give each node its own "
            "machine file)\n";
    }
    std::printf(
        "usage: sossim %s %s\n\n"
        "options:\n"
        "%s"
        "  --set key=value     configuration override (repeatable; "
        "see `sossim params`)\n"
        "  --machine-config F  machine description file (per-core "
        "params; env SOS_MACHINE_CONFIG)\n"
        "  --out FILE.json     write the JSON run manifest (env "
        "SOS_OUT)\n"
        "  --trace FILE.jsonl  write the scheduler decision trace "
        "(env SOS_TRACE)\n"
        "  --help              show this message and exit\n\n"
        "environment: SOS_CYCLE_SCALE, SOS_SEED, SOS_JOBS, "
        "SOS_MACHINE_CONFIG, SOS_OUT, SOS_TRACE\n",
        command.c_str(), synopsis, specific);
}

/** True when any argument past the subcommand asks for help. */
bool
wantsHelp(int argc, char **argv)
{
    for (int i = 2; i < argc; ++i) {
        if (std::strcmp(argv[i], "--help") == 0 ||
            std::strcmp(argv[i], "-h") == 0) {
            return true;
        }
    }
    return false;
}

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--set") {
            if (i + 1 >= argc)
                fatal("--set needs a key=value argument");
            args.overrides.push_back(argv[++i]);
        } else if (arg.rfind("--", 0) == 0) {
            if (i + 1 >= argc)
                fatal(arg, " needs a value");
            args.flags.emplace_back(arg.substr(2), argv[++i]);
        } else {
            args.positional.push_back(arg);
        }
    }
    return args;
}

SimConfig
configFor(const Args &args)
{
    SimConfig config = benchConfigFromEnv();
    // The machine file loads before the --set pass so explicit CLI
    // overrides still win over the file's machine-wide defaults.
    const std::string machine = args.flag("machine-config", "");
    if (!machine.empty())
        applyMachineConfig(config, machine);
    const std::string model = args.flag("model", "");
    if (!model.empty())
        config.modelPath = model;
    applyOverrides(config, args.overrides);
    return config;
}

/**
 * Sweep worker threads from --jobs (not used by `open`, where --jobs
 * already names the number of jobs in the system).
 */
SimConfig
configWithWorkers(const Args &args)
{
    SimConfig config = configFor(args);
    const std::string jobs = args.flag("jobs", "");
    if (!jobs.empty())
        applyOverride(config, "jobs=" + jobs);
    return config;
}

/** Manifest/trace destinations: --out / --trace, else environment. */
OutputPaths
outputsFor(const Args &args)
{
    OutputPaths out = outputPathsFromEnv();
    const std::string manifest = args.flag("out", "");
    if (!manifest.empty())
        out.manifest = manifest;
    const std::string trace = args.flag("trace", "");
    if (!trace.empty())
        out.trace = trace;
    return out;
}

int
cmdWorkloads()
{
    printBanner("Workload models");
    TablePrinter table({"name", "fp%", "load%", "store%", "avg BB",
                        "dep", "WS KiB", "code KiB", "sync"},
                       {10, 6, 6, 6, 6, 5, 7, 8, 8});
    table.printHeader();
    const auto &lib = WorkloadLibrary::instance();
    for (const std::string &name : lib.names()) {
        const WorkloadProfile &p = lib.get(name);
        table.printRow(
            {name, fmt(100.0 * p.fpFraction(), 0),
             fmt(100.0 * p.fracLoad, 0), fmt(100.0 * p.fracStore, 0),
             fmt(p.avgBasicBlock, 0), fmt(p.avgDepDistance, 1),
             std::to_string(p.workingSetBytes / 1024),
             std::to_string(p.codeBytes / 1024),
             p.syncInterval ? std::to_string(p.syncInterval) : "-"});
    }
    return 0;
}

int
cmdExperiments()
{
    printBanner("Throughput experiments (paper Table 1/2)");
    TablePrinter table({"label", "jobs", "level", "swap", "schedules"},
                       {14, 5, 6, 5, 10});
    table.printHeader();
    for (const ExperimentSpec &spec : paperExperiments()) {
        table.printRow({spec.label, std::to_string(spec.numUnits()),
                        std::to_string(spec.level),
                        std::to_string(spec.swap),
                        std::to_string(expectedDistinctSchedules(spec))});
    }
    printBanner("Hierarchical experiments (Section 7)");
    for (const HierarchicalSpec &spec : hierarchicalExperiments())
        std::printf("  %s\n", spec.label.c_str());
    return 0;
}

int
cmdParams()
{
    printBanner("Configurable parameters (--set key=value)");
    TablePrinter table({"key", "default", "description"}, {30, 10, 44});
    table.printHeader();
    for (const ParamInfo &info : configurableParams())
        table.printRow({info.key, info.currentValue, info.description});
    return 0;
}

int
cmdRun(const Args &args)
{
    if (args.positional.empty())
        fatal("usage: sossim run <experiment label>");
    BenchHarness harness("sossim run", configWithWorkers(args),
                         outputsFor(args));
    const SimConfig &config = harness.config();
    const ExperimentSpec &spec = experimentByLabel(args.positional[0]);

    BatchExperiment exp(spec, config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();
    exp.publishStats(
        harness.group(stats::sanitizeSegment(spec.label)));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());

    printBanner(spec.label);
    TablePrinter table({"schedule", "sample IPC", "symbios WS"},
                       {30, 10, 11});
    table.printHeader();
    for (std::size_t i = 0; i < exp.schedules().size(); ++i) {
        table.printRow({exp.schedules()[i].label(),
                        fmt(exp.profiles()[i].counters.ipc(), 2),
                        fmt(exp.symbiosWs()[i], 3)});
    }
    std::printf("\nWS: worst %.3f  avg %.3f  best %.3f\n",
                exp.worstWs(), exp.averageWs(), exp.bestWs());
    for (const auto &predictor : makeAllPredictors()) {
        std::printf("  %-10s -> WS %.3f\n", predictor->name().c_str(),
                    exp.wsOfPredictor(*predictor));
    }
    return harness.finish();
}

int
cmdOpen(const Args &args)
{
    OpenSystemConfig open;
    open.level = std::stoi(args.flag("level", "3"));
    open.numJobs = std::stoi(args.flag("jobs", "24"));

    // The open system has its own --set keys: predictor= and policy=
    // name registry entries, not SimConfig fields (the manifest's
    // config block must stay comparable across figures). Peel them
    // off before the SimConfig override pass sees them.
    Args sim_args = args;
    sim_args.overrides.clear();
    for (const std::string &override : args.overrides) {
        if (override.rfind("predictor=", 0) == 0)
            open.predictor = override.substr(10);
        else if (override.rfind("policy=", 0) == 0)
            open.resamplePolicy = override.substr(7);
        else
            sim_args.overrides.push_back(override);
    }
    // Fail fast on unknown names, before any simulation runs; the
    // registries list every registered name in their error message.
    makePredictor(open.predictor);
    makeResamplePolicy(open.resamplePolicy, 1);

    BenchHarness harness("sossim open", configFor(sim_args),
                         outputsFor(args));
    const SimConfig &config = harness.config();
    // --cores wins; otherwise a loaded machine config sets the core
    // count, and the default stays the paper's single SMT core.
    const std::string cores_flag = args.flag("cores", "");
    open.numCores = !cores_flag.empty()
                        ? std::stoi(cores_flag)
                        : std::max(1, config.machineCores);
    open.seed = config.seed ^ 0x09e2ULL;

    // Run the two policies here (rather than compareResponseTimes) so
    // the SOS run can stream its decisions into the trace; both runs
    // are serial, so the trace stays deterministic. The SOS backend is
    // owned here so its machine's stat groups survive into the
    // manifest dump.
    const std::vector<JobArrival> arrivals =
        makeArrivalTrace(config, open);
    const std::unique_ptr<EngineBackend> backend =
        makeOpenBackend(config, open);
    ResponseComparison comparison;
    comparison.naive =
        runOpenSystem(config, open, arrivals, OpenPolicy::Naive);
    comparison.sos = runOpenSystem(
        config, open, arrivals, OpenPolicy::Sos, *backend,
        harness.wantsTrace() ? &harness.trace() : nullptr);
    comparison.jobsCompared = static_cast<int>(arrivals.size());
    if (comparison.naive.meanResponseCycles > 0.0) {
        comparison.improvementPct =
            100.0 *
            (comparison.naive.meanResponseCycles -
             comparison.sos.meanResponseCycles) /
            comparison.naive.meanResponseCycles;
    }

    const stats::Group open_group = harness.group("open");
    open_group.scalar("jobs", "arrivals simulated") =
        static_cast<std::uint64_t>(comparison.jobsCompared);
    open_group.info("backend", "engine backend substrate") =
        backend->name();
    open_group.info("predictor", "symbios predictor") = open.predictor;
    open_group.info("resample_policy", "resample-timer policy") =
        open.resamplePolicy;
    open_group.scalar("cores", "SMT cores on the machine") =
        static_cast<std::uint64_t>(open.numCores);
    backend->machine().registerStats(open_group.group("machine"));
    const auto publishPolicy = [&](const char *name,
                                   const OpenSystemResult &result) {
        const stats::Group policy = open_group.group(name);
        policy.value("mean_response_cycles",
                     "mean job response time") =
            result.meanResponseCycles;
        policy.value("mean_jobs_in_system",
                     "mean queue length (Little's law)") =
            result.meanJobsInSystem;
        policy.scalar("total_cycles", "simulated cycles to drain") =
            result.totalCycles;
        policy.scalar("sample_cycles",
                      "cycles spent in sample phases") =
            result.sampleCycles;
        policy.scalar("sample_phases", "sample phases run") =
            static_cast<std::uint64_t>(result.samplePhases);
        policy.scalar("resamples_job_change",
                      "resamples from arrivals/departures") =
            static_cast<std::uint64_t>(result.resamplesOnJobChange);
        policy.scalar("resamples_timer",
                      "resamples from the backoff timer") =
            static_cast<std::uint64_t>(result.resamplesOnTimer);
    };
    publishPolicy("naive", comparison.naive);
    publishPolicy("sos", comparison.sos);
    open_group.value("improvement_pct",
                     "SOS mean-response gain over naive") =
        comparison.improvementPct;

    printBanner("Open system, SMT level " + std::to_string(open.level));
    std::printf("jobs completed: %d\n", comparison.jobsCompared);
    std::printf("naive mean response: %s cycles\n",
                fmtCycles(static_cast<std::uint64_t>(
                              comparison.naive.meanResponseCycles))
                    .c_str());
    std::printf("SOS mean response:   %s cycles (%d sample phases)\n",
                fmtCycles(static_cast<std::uint64_t>(
                              comparison.sos.meanResponseCycles))
                    .c_str(),
                comparison.sos.samplePhases);
    std::printf("improvement: %.1f%%\n", comparison.improvementPct);
    return harness.finish();
}

int
cmdHier(const Args &args)
{
    BenchHarness harness("sossim hier", configWithWorkers(args),
                         outputsFor(args));
    const SimConfig &config = harness.config();
    const int level = std::stoi(args.flag("level", "2"));
    const HierarchicalSpec *chosen = nullptr;
    for (const HierarchicalSpec &spec : hierarchicalExperiments()) {
        if (spec.level == level)
            chosen = &spec;
    }
    if (chosen == nullptr)
        fatal("no hierarchical experiment at SMT level ", level);

    HierarchicalExperiment exp(*chosen, config);
    exp.run();
    exp.publishStats(
        harness.group(stats::sanitizeSegment(chosen->label)));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());
    printBanner(chosen->label);
    TablePrinter table({"allocation", "schedule", "WS"}, {14, 22, 7});
    table.printHeader();
    for (const auto &candidate : exp.candidates()) {
        table.printRow({candidate.plan.label(),
                        candidate.schedule.label(),
                        fmt(candidate.symbiosWs, 3)});
    }
    std::printf("\nSOS: WS %.3f (%+.1f%% vs avg, %+.1f%% vs worst)\n",
                exp.scoreWs(), exp.improvementOverAveragePct(),
                exp.improvementOverWorstPct());
    return harness.finish();
}

int
cmdMachine(const Args &args)
{
    BenchHarness harness("sossim machine", configWithWorkers(args),
                         outputsFor(args));
    const SimConfig &config = harness.config();
    // --cores wins; otherwise a loaded machine config picks the
    // experiment its core count can host, defaulting to the 2-core CMP.
    const std::string cores_flag = args.flag("cores", "");
    const int cores = !cores_flag.empty()
                          ? std::stoi(cores_flag)
                          : (config.machineCores > 0
                                 ? config.machineCores
                                 : 2);
    const MachineExperimentSpec *chosen = nullptr;
    for (const MachineExperimentSpec &spec : machineExperiments()) {
        if (spec.numCores == cores)
            chosen = &spec;
    }
    if (chosen == nullptr)
        fatal("no machine experiment with ", cores,
              " cores (try `sossim machine --help`)");

    MachineExperiment exp(*chosen, config);
    exp.runSamplePhase();
    exp.runSymbiosValidation();

    printBanner(chosen->label);
    TablePrinter table({"machine schedule", "sample WS", "symbios WS"},
                       {34, 9, 11});
    table.printHeader();
    for (std::size_t i = 0; i < exp.schedules().size(); ++i) {
        table.printRow({exp.schedules()[i].label(),
                        fmt(exp.profiles()[i].sampleWs, 3),
                        fmt(exp.symbiosWs()[i], 3)});
    }
    std::printf("\nWS: worst %.3f  avg %.3f  best %.3f\n",
                exp.worstWs(), exp.averageWs(), exp.bestWs());

    std::printf("\nthread-to-core allocation policies:\n");
    for (const std::string &name : threadToCorePolicyNames()) {
        const MachineExperiment::PolicyResult &result =
            exp.evaluatePolicy(name);
        std::printf("  %-16s %-24s avg WS %.3f  best WS %.3f\n",
                    result.policy.c_str(),
                    result.allocationLabel.c_str(), result.avgWs,
                    result.bestWs);
    }

    exp.publishStats(
        harness.group(stats::sanitizeSegment(chosen->label)));
    if (harness.wantsTrace())
        exp.recordTrace(harness.trace());
    return harness.finish();
}

/** Parse an SLA class list: "name:weight:sizeFactor[,...]". */
std::vector<ArrivalClass>
parseClasses(const std::string &spec)
{
    std::vector<ArrivalClass> classes;
    std::size_t start = 0;
    while (start < spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(start, end - start);
        const std::size_t first = entry.find(':');
        const std::size_t second =
            first == std::string::npos ? std::string::npos
                                       : entry.find(':', first + 1);
        if (first == std::string::npos || second == std::string::npos)
            fatal("class entry '", entry,
                  "' is not name:weight:sizeFactor");
        ArrivalClass klass;
        klass.name = entry.substr(0, first);
        klass.weight =
            std::stod(entry.substr(first + 1, second - first - 1));
        klass.sizeFactor = std::stod(entry.substr(second + 1));
        classes.push_back(std::move(klass));
        start = end + 1;
    }
    return classes;
}

int
cmdCluster(const Args &args)
{
    ClusterConfig cluster;
    // Environment defaults; explicit flags win below.
    if (const char *nodes = std::getenv("SOS_CLUSTER_NODES"))
        cluster.numNodes = std::stoi(nodes);
    if (const char *dispatch = std::getenv("SOS_DISPATCH"))
        cluster.dispatch = dispatch;
    cluster.numNodes =
        std::stoi(args.flag("nodes", std::to_string(cluster.numNodes)));
    cluster.dispatch = args.flag("dispatch", cluster.dispatch);
    cluster.process = args.flag("process", cluster.process);
    cluster.numJobs = std::stoi(args.flag("arrivals", "1000"));
    cluster.level = std::stoi(args.flag("level", "3"));
    cluster.numCores = std::stoi(args.flag("cores", "1"));
    cluster.epochSlices = std::stoi(args.flag("epoch", "8"));
    cluster.meanJobPaperCycles = std::stoull(args.flag(
        "mean-job", std::to_string(cluster.meanJobPaperCycles)));
    cluster.meanInterarrivalPaper =
        std::stoull(args.flag("mean-interarrival", "0"));
    const std::string classes = args.flag("classes", "");
    if (!classes.empty())
        cluster.classes = parseClasses(classes);
    // Fail fast on unknown registry names, before any simulation.
    makeDispatcher(cluster.dispatch, 0);
    makePredictor(cluster.predictor);
    makeResamplePolicy(cluster.resamplePolicy, 1);

    // One --machine-config applies to every node; repeating the flag
    // gives each node its own machine file.
    std::vector<std::string> machines;
    for (const auto &[key, value] : args.flags) {
        if (key == "machine-config")
            machines.push_back(value);
    }
    SimConfig config = benchConfigFromEnv();
    if (machines.size() == 1)
        applyMachineConfig(config, machines.front());
    else if (machines.size() > 1)
        cluster.nodeMachineConfigs = machines;
    applyOverrides(config, args.overrides);
    const std::string jobs = args.flag("jobs", "");
    if (!jobs.empty())
        applyOverride(config, "jobs=" + jobs);

    BenchHarness harness("sossim cluster", config, outputsFor(args));
    cluster.seed = harness.config().seed ^ 0xc105edULL;

    Cluster machine_room(harness.config(), cluster);
    const ClusterResult result = machine_room.run(
        harness.wantsTrace() ? &harness.trace() : nullptr);
    machine_room.publishStats(harness.group("cluster"));

    printBanner("Cluster: " + std::to_string(cluster.numNodes) +
                " nodes, " + cluster.dispatch + " dispatch, " +
                cluster.process + " arrivals");
    TablePrinter table({"node", "dispatched", "completed", "util%",
                        "sample phases"},
                       {5, 10, 9, 6, 13});
    table.printHeader();
    for (const ClusterNodeSummary &node : result.nodes) {
        table.printRow({std::to_string(node.id),
                        std::to_string(node.dispatched),
                        std::to_string(node.completed),
                        fmt(100.0 * node.utilization, 1),
                        std::to_string(node.samplePhases)});
    }
    // Exact percentiles for the console; the manifest carries the
    // streaming histogram's (bounded-memory) approximations.
    std::vector<std::uint64_t> sorted = result.responseByArrival;
    std::sort(sorted.begin(), sorted.end());
    const auto at = [&](double q) {
        const std::size_t rank = std::min(
            sorted.size() - 1,
            static_cast<std::size_t>(
                q * static_cast<double>(sorted.size())));
        return sorted[rank];
    };
    std::printf("\njobs: %zu completed over %zu epochs\n",
                result.completed,
                static_cast<std::size_t>(result.epochs));
    std::printf("response cycles: mean %s  p50 %s  p95 %s  p99 %s\n",
                fmtCycles(static_cast<std::uint64_t>(
                              result.meanResponseCycles))
                    .c_str(),
                fmtCycles(at(0.50)).c_str(), fmtCycles(at(0.95)).c_str(),
                fmtCycles(at(0.99)).c_str());
    return harness.finish();
}

int
cmdHelp()
{
    std::printf(
        "sossim -- symbiotic jobscheduling simulator (Snavely & "
        "Tullsen, ASPLOS 2000)\n\n"
        "usage: sossim <command> [options]\n\n"
        "commands:\n"
        "  workloads              list the workload models\n"
        "  experiments            list the paper's experiments\n"
        "  params                 list --set keys\n"
        "  run <label> [--jobs N] run a throughput experiment\n"
        "  open [--level N] [--jobs N]\n"
        "                         naive-vs-SOS response times\n"
        "  hier [--level N] [--jobs N]\n"
        "                         hierarchical symbiosis\n"
        "  machine [--cores N]    machine-level SOS on a CMP of SMT "
        "cores\n"
        "  cluster [--nodes N] [--dispatch P] [--arrivals N]\n"
        "                         N machines behind a symbiosis-aware "
        "dispatcher\n"
        "  config                 print the effective configuration\n\n"
        "`sossim <command> --help` prints each subcommand's options.\n"
        "options: repeated --set key=value; env SOS_CYCLE_SCALE, "
        "SOS_SEED, SOS_JOBS (sweep worker threads; for run/hier "
        "--jobs N\n"
        "does the same, while `open --jobs` is the system's job "
        "count).\n"
        "run/open/hier also accept --out FILE.json (JSON run "
        "manifest, env SOS_OUT)\n"
        "and --trace FILE.jsonl (scheduler decision trace, env "
        "SOS_TRACE).\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return cmdHelp();
    const std::string command = argv[1];
    if (wantsHelp(argc, argv)) {
        printUsage(command);
        return 0;
    }
    const Args args = parseArgs(argc, argv);

    if (command == "workloads")
        return cmdWorkloads();
    if (command == "experiments")
        return cmdExperiments();
    if (command == "params")
        return cmdParams();
    if (command == "run")
        return cmdRun(args);
    if (command == "open")
        return cmdOpen(args);
    if (command == "hier")
        return cmdHier(args);
    if (command == "machine")
        return cmdMachine(args);
    if (command == "cluster")
        return cmdCluster(args);
    if (command == "config") {
        std::fputs(renderConfig(configFor(args)).c_str(), stdout);
        return 0;
    }
    if (command == "help" || command == "--help")
        return cmdHelp();
    fatal("unknown command '", command, "' (try `sossim help`)");
}
