/**
 * @file
 * Config-driven machine descriptions: heterogeneous CMPs from a file.
 *
 * A machine config is a small line-oriented file (one `key value`
 * line per tunable, in the spirit of simtrax's bigcache.config) that
 * declares what a run's machine looks like without recompiling:
 *
 *     # paper-default Alpha 21264 CMP
 *     include alpha21264.inc       # parsed in place, relative path
 *     mem.l2.sizeBytes 2097152     # machine scope: shared L2 + defaults
 *
 *     class big                    # a core class: defaults + overrides
 *       core.numIntUnits 6
 *       core.fpAddPipes 2
 *     class little
 *       core.fetchWidth 4
 *       mem.l1d.sizeBytes 32768
 *
 *     cores big*2 little*2         # instantiate: core0..1 big, 2..3 little
 *
 * Grammar, line by line (blank lines and `#` comments ignored):
 *
 *  - `key value`    -- any `core.*` / `mem.*` key of `sossim params`.
 *                      At machine scope (before the first `class`)
 *                      the pair sets the machine-wide defaults and the
 *                      shared-L2 geometry; inside a class it overrides
 *                      that class only.  A class's `mem.l2.*` is
 *                      ignored: the shared cache belongs to the
 *                      machine, not to a core.
 *  - `class NAME`   -- begin a core class seeded from the machine
 *                      defaults as of this line.
 *  - `cores SPEC..` -- instantiate the machine, once per file: either
 *                      a bare core count (`cores 4`, homogeneous) or
 *                      `NAME` / `NAME*COUNT` specs in core order.
 *  - `include PATH` -- parse PATH (relative to the including file) as
 *                      if its lines appeared here.
 *
 * Every error names the offending file:line, key and value.  A config
 * whose instantiated cores are all identical collapses to the
 * homogeneous representation, so e.g. the paper-default config
 * reproduces a no-config run byte-for-byte.
 */

#ifndef SOS_CONFIG_MACHINE_CONFIG_HH
#define SOS_CONFIG_MACHINE_CONFIG_HH

#include <stdexcept>
#include <string>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

/** Parse failure; what() carries "file:line: message". */
class MachineConfigError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** The machine a config file describes. */
struct ParsedMachineConfig
{
    /** Cores the file instantiates (0 = file never says). */
    int numCores = 0;

    /** Machine-wide core defaults (every core when homogeneous). */
    CoreParams core;

    /** Machine-wide memory defaults; .l2 is the shared geometry. */
    MemParams mem;

    /**
     * Per-core overrides in core order; empty when the instantiated
     * machine is homogeneous (identical per-core params collapse onto
     * `core`/`mem` so downstream paths stay bit-identical).
     */
    std::vector<CoreParams> cores;
    std::vector<MemParams> coreMem;

    /** Class name of each core (empty when homogeneous). */
    std::vector<std::string> coreNames;

    /** Top-level file the description came from. */
    std::string path;
};

/**
 * Parse @p path on top of @p base's core/mem defaults (a class or
 * machine-scope line only overrides what it names).
 *
 * @throws MachineConfigError naming file, line, key and value on any
 *         syntax, unknown-key, malformed-value or validation error.
 */
ParsedMachineConfig parseMachineConfig(const std::string &path,
                                       const SimConfig &base);

/**
 * Parse a config given as text (tests, here-docs). @p name stands in
 * for the file name in errors; `include` resolves against the current
 * working directory.
 */
ParsedMachineConfig parseMachineConfigText(const std::string &text,
                                           const std::string &name,
                                           const SimConfig &base);

/**
 * Load @p path into @p config: machine-wide defaults replace
 * config.core/config.mem, and the instantiated topology fills
 * config.machineCores / heteroCores / heteroCoreMem / heteroCoreNames
 * / machineConfigPath. fatal() on any parse error (CLI entry point;
 * parseMachineConfig is the throwing API underneath).
 */
void applyMachineConfig(SimConfig &config, const std::string &path);

} // namespace sos

#endif // SOS_CONFIG_MACHINE_CONFIG_HH
