#include "machine_config.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "sim/params_io.hh"

namespace sos {

namespace {

/** One `class NAME` section: defaults captured at declaration. */
struct ClassDef
{
    std::string name;
    SimConfig scratch; ///< machine defaults + this class's overrides
    std::string file;  ///< where the class was declared, for errors
    int line = 0;
};

struct ParseState
{
    SimConfig machine; ///< machine-scope scratch (core/mem defaults)
    std::vector<ClassDef> classes;
    int currentClass = -1; ///< -1 = machine scope
    bool sawCores = false;
    std::vector<int> coreClassIndex; ///< per core, into classes
    int homogeneousCount = 0;        ///< `cores N` form
    std::string coresFile;
    int coresLine = 0;
};

[[noreturn]] void
bad(const std::string &file, int line, const std::string &message)
{
    throw MachineConfigError(file + ":" + std::to_string(line) + ": " +
                             message);
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::istringstream is(line);
    std::vector<std::string> tokens;
    std::string token;
    while (is >> token)
        tokens.push_back(token);
    return tokens;
}

std::string
dirOf(const std::string &path)
{
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? std::string()
                                      : path.substr(0, slash + 1);
}

bool
isCount(const std::string &token)
{
    return !token.empty() &&
           std::all_of(token.begin(), token.end(), [](unsigned char c) {
               return std::isdigit(c) != 0;
           });
}

int
parseCount(const std::string &file, int line, const std::string &token)
{
    if (!isCount(token) || token.size() > 3)
        bad(file, line, "core count must be a small positive integer, "
                        "got '" + token + "'");
    const int count = std::stoi(token);
    if (count < 1 || count > MaxCores) {
        bad(file, line, "core count must be in [1, " +
                            std::to_string(MaxCores) + "], got " +
                            token);
    }
    return count;
}

void parseFile(const std::string &path, int depth, ParseState &state);

void
handleCores(const std::vector<std::string> &tokens,
            const std::string &file, int line, ParseState &state)
{
    if (state.sawCores) {
        bad(file, line, "duplicate 'cores' line (first at " +
                            state.coresFile + ":" +
                            std::to_string(state.coresLine) + ")");
    }
    if (tokens.size() < 2)
        bad(file, line, "'cores' needs a count or class specs");
    state.sawCores = true;
    state.coresFile = file;
    state.coresLine = line;
    state.currentClass = -1;

    if (tokens.size() == 2 && isCount(tokens[1])) {
        state.homogeneousCount = parseCount(file, line, tokens[1]);
        return;
    }
    for (std::size_t t = 1; t < tokens.size(); ++t) {
        const std::string &spec = tokens[t];
        const std::size_t star = spec.find('*');
        const std::string name =
            star == std::string::npos ? spec : spec.substr(0, star);
        const int count =
            star == std::string::npos
                ? 1
                : parseCount(file, line, spec.substr(star + 1));
        const auto it = std::find_if(
            state.classes.begin(), state.classes.end(),
            [&name](const ClassDef &c) { return c.name == name; });
        if (it == state.classes.end()) {
            bad(file, line, "core spec '" + spec +
                                "' names undeclared class '" + name +
                                "'");
        }
        const int index =
            static_cast<int>(it - state.classes.begin());
        for (int k = 0; k < count; ++k)
            state.coreClassIndex.push_back(index);
        if (static_cast<int>(state.coreClassIndex.size()) > MaxCores) {
            bad(file, line, "machine exceeds " +
                                std::to_string(MaxCores) + " cores");
        }
    }
}

void
handleLine(const std::vector<std::string> &tokens,
           const std::string &file, int line, int depth,
           ParseState &state)
{
    const std::string &head = tokens.front();
    if (head == "include") {
        if (tokens.size() != 2)
            bad(file, line, "'include' needs exactly one path");
        const std::string &target = tokens[1];
        parseFile(target.front() == '/' ? target
                                        : dirOf(file) + target,
                  depth + 1, state);
        return;
    }
    if (head == "class") {
        if (tokens.size() != 2)
            bad(file, line, "'class' needs exactly one name");
        const std::string &name = tokens[1];
        if (name.empty() || std::isalpha(static_cast<unsigned char>(
                                name.front())) == 0) {
            bad(file, line, "class name must start with a letter, "
                            "got '" + name + "'");
        }
        for (const ClassDef &c : state.classes) {
            if (c.name == name) {
                bad(file, line, "duplicate class '" + name +
                                    "' (first declared at " + c.file +
                                    ":" + std::to_string(c.line) + ")");
            }
        }
        // The class is seeded from the machine defaults as of this
        // line, so shared knobs set above apply to every class.
        state.classes.push_back(
            ClassDef{name, state.machine, file, line});
        state.currentClass =
            static_cast<int>(state.classes.size()) - 1;
        return;
    }
    if (head == "cores") {
        handleCores(tokens, file, line, state);
        return;
    }
    if (tokens.size() != 2) {
        bad(file, line, "expected 'key value', got '" + head + "' and " +
                            std::to_string(tokens.size() - 1) +
                            " operand(s)");
    }
    const std::string &key = head;
    const std::string &value = tokens[1];
    if (key.rfind("core.", 0) != 0 && key.rfind("mem.", 0) != 0) {
        bad(file, line, "machine configs may only set core.* and "
                        "mem.* keys, got '" + key + "'");
    }
    SimConfig &scratch =
        state.currentClass < 0
            ? state.machine
            : state.classes[static_cast<std::size_t>(
                                state.currentClass)]
                  .scratch;
    std::string error;
    if (!tryApplyOverride(scratch, key, value, error))
        bad(file, line, error);
}

void
parseLines(std::istream &in, const std::string &file, int depth,
           ParseState &state)
{
    std::string raw;
    int line = 0;
    while (std::getline(in, raw)) {
        ++line;
        const std::size_t hash = raw.find('#');
        if (hash != std::string::npos)
            raw.resize(hash);
        const std::vector<std::string> tokens = tokenize(raw);
        if (tokens.empty())
            continue;
        handleLine(tokens, file, line, depth, state);
    }
}

void
parseFile(const std::string &path, int depth, ParseState &state)
{
    constexpr int MaxIncludeDepth = 8;
    if (depth > MaxIncludeDepth) {
        throw MachineConfigError(
            path + ": includes nest deeper than " +
            std::to_string(MaxIncludeDepth) + " (include cycle?)");
    }
    std::ifstream in(path);
    if (!in) {
        throw MachineConfigError("cannot open machine config '" + path +
                                 "'");
    }
    parseLines(in, path, depth, state);
}

/** Build the result: instantiate, validate, collapse if uniform. */
ParsedMachineConfig
assemble(ParseState &state, const std::string &path)
{
    ParsedMachineConfig out;
    out.path = path;
    out.core = state.machine.core;
    out.mem = state.machine.mem;
    try {
        validateCoreParams(out.core);
        validateMemParams(out.mem);
    } catch (const std::invalid_argument &err) {
        throw MachineConfigError(path + ": machine defaults: " +
                                 err.what());
    }

    if (!state.sawCores) {
        if (!state.classes.empty()) {
            throw MachineConfigError(
                path + ": classes are declared but never "
                       "instantiated (missing 'cores' line)");
        }
        return out; // pure defaults file: numCores stays 0
    }
    if (state.coreClassIndex.empty()) {
        out.numCores = state.homogeneousCount;
        return out;
    }

    out.numCores = static_cast<int>(state.coreClassIndex.size());
    for (const int index : state.coreClassIndex) {
        const ClassDef &def =
            state.classes[static_cast<std::size_t>(index)];
        CoreParams core_params = def.scratch.core;
        MemParams mem_params = def.scratch.mem;
        // The shared cache belongs to the machine: a class's l2
        // geometry is overwritten so identical cores stay identical
        // (and a single class collapses to the homogeneous path).
        mem_params.l2 = out.mem.l2;
        try {
            validateCoreParams(core_params);
            validateMemParams(mem_params);
        } catch (const std::invalid_argument &err) {
            bad(def.file, def.line,
                "class '" + def.name + "': " + err.what());
        }
        out.cores.push_back(core_params);
        out.coreMem.push_back(mem_params);
        out.coreNames.push_back(def.name);
    }

    const bool identical =
        std::all_of(out.cores.begin(), out.cores.end(),
                    [&out](const CoreParams &c) {
                        return c == out.cores.front();
                    }) &&
        std::all_of(out.coreMem.begin(), out.coreMem.end(),
                    [&out](const MemParams &m) {
                        return m == out.coreMem.front();
                    });
    if (identical) {
        // All cores identical: collapse onto the homogeneous
        // representation so every downstream path (keys, goldens,
        // manifests) is bit-identical to a config-free run.
        out.core = out.cores.front();
        out.mem = out.coreMem.front();
        out.cores.clear();
        out.coreMem.clear();
        out.coreNames.clear();
    }
    return out;
}

} // namespace

ParsedMachineConfig
parseMachineConfig(const std::string &path, const SimConfig &base)
{
    ParseState state;
    state.machine = base;
    parseFile(path, 0, state);
    return assemble(state, path);
}

ParsedMachineConfig
parseMachineConfigText(const std::string &text, const std::string &name,
                       const SimConfig &base)
{
    ParseState state;
    state.machine = base;
    std::istringstream in(text);
    parseLines(in, name, 0, state);
    return assemble(state, name);
}

void
applyMachineConfig(SimConfig &config, const std::string &path)
{
    try {
        const ParsedMachineConfig parsed =
            parseMachineConfig(path, config);
        config.core = parsed.core;
        config.mem = parsed.mem;
        config.machineCores = parsed.numCores;
        config.heteroCores = parsed.cores;
        config.heteroCoreMem = parsed.coreMem;
        config.heteroCoreNames = parsed.coreNames;
        config.machineConfigPath = parsed.path;
    } catch (const MachineConfigError &err) {
        fatal("machine config: ", err.what());
    }
}

} // namespace sos
