#include "cache.hh"

#include "common/logging.hh"
#include "stats/stats.hh"

namespace sos {

namespace {

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params) : params_(params)
{
    SOS_ASSERT(isPow2(params.lineBytes), "line size must be a power of 2");
    SOS_ASSERT(params.assoc > 0);
    SOS_ASSERT(params.sizeBytes % (params.lineBytes * params.assoc) == 0,
               "capacity must be a whole number of sets");
    numSets_ = params.sizeBytes / params.lineBytes / params.assoc;
    SOS_ASSERT(numSets_ > 0 && isPow2(numSets_),
               "set count must be a power of 2");
    lineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(params.lineBytes));
    ways_.resize(static_cast<std::size_t>(numSets_) * params.assoc);
}

void
Cache::flush()
{
    for (Way &way : ways_)
        way.valid = false;
}

void
Cache::flushAsid(std::uint16_t asid)
{
    for (Way &way : ways_) {
        if (way.valid && (way.tag >> 48) == asid)
            way.valid = false;
    }
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Way &way : ways_)
        n += way.valid ? 1 : 0;
    return n;
}

void
Cache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

void
Cache::registerStats(const stats::Group &group) const
{
    group.scalar("hits", params_.name + " lifetime hits").bind(&hits_);
    group.scalar("misses", params_.name + " lifetime misses")
        .bind(&misses_);
    group.formula("miss_rate", params_.name + " lifetime miss rate",
                  [this] {
                      const double total =
                          static_cast<double>(hits_ + misses_);
                      return total == 0.0
                                 ? 0.0
                                 : static_cast<double>(misses_) / total;
                  });
}

} // namespace sos
