#include "cache.hh"

#include "common/logging.hh"
#include "stats/stats.hh"

namespace sos {

namespace {

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheParams &params) : params_(params)
{
    SOS_ASSERT(isPow2(params.lineBytes), "line size must be a power of 2");
    SOS_ASSERT(params.assoc > 0);
    SOS_ASSERT(params.sizeBytes % (params.lineBytes * params.assoc) == 0,
               "capacity must be a whole number of sets");
    numSets_ = params.sizeBytes / params.lineBytes / params.assoc;
    SOS_ASSERT(numSets_ > 0 && isPow2(numSets_),
               "set count must be a power of 2");
    ways_.resize(static_cast<std::size_t>(numSets_) * params.assoc);
}

std::uint64_t
Cache::lineFor(std::uint16_t asid, std::uint64_t addr) const
{
    // Fold the address space id into the high tag bits: same virtual
    // line in different jobs occupies the same set but never matches.
    return (addr / params_.lineBytes) |
           (static_cast<std::uint64_t>(asid) << 48);
}

bool
Cache::access(std::uint16_t asid, std::uint64_t addr)
{
    const std::uint64_t line = lineFor(asid, addr);
    const std::uint32_t set =
        static_cast<std::uint32_t>(line) & (numSets_ - 1);
    Way *const base = &ways_[static_cast<std::size_t>(set) * params_.assoc];

    ++lruClock_;
    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lruStamp = lruClock_;
            ++hits_;
            return true;
        }
        if (!way.valid) {
            victim = &way; // prefer an invalid way
        } else if (victim->valid && way.lruStamp < victim->lruStamp) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = lruClock_;
    ++misses_;
    return false;
}

void
Cache::prefetchFill(std::uint16_t asid, std::uint64_t addr)
{
    const std::uint64_t line = lineFor(asid, addr);
    const std::uint32_t set =
        static_cast<std::uint32_t>(line) & (numSets_ - 1);
    Way *const base = &ways_[static_cast<std::size_t>(set) * params_.assoc];

    ++lruClock_;
    Way *victim = base;
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lruStamp = lruClock_; // already resident: refresh only
            return;
        }
        if (!way.valid) {
            victim = &way;
        } else if (victim->valid && way.lruStamp < victim->lruStamp) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = lruClock_;
}

bool
Cache::probe(std::uint16_t asid, std::uint64_t addr) const
{
    const std::uint64_t line = lineFor(asid, addr);
    const std::uint32_t set =
        static_cast<std::uint32_t>(line) & (numSets_ - 1);
    const Way *const base =
        &ways_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

void
Cache::flush()
{
    for (Way &way : ways_)
        way.valid = false;
}

void
Cache::flushAsid(std::uint16_t asid)
{
    for (Way &way : ways_) {
        if (way.valid && (way.tag >> 48) == asid)
            way.valid = false;
    }
}

std::uint64_t
Cache::residentLines() const
{
    std::uint64_t n = 0;
    for (const Way &way : ways_)
        n += way.valid ? 1 : 0;
    return n;
}

void
Cache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

void
Cache::registerStats(const stats::Group &group) const
{
    group.scalar("hits", params_.name + " lifetime hits").bind(&hits_);
    group.scalar("misses", params_.name + " lifetime misses")
        .bind(&misses_);
    group.formula("miss_rate", params_.name + " lifetime miss rate",
                  [this] {
                      const double total =
                          static_cast<double>(hits_ + misses_);
                      return total == 0.0
                                 ? 0.0
                                 : static_cast<double>(misses_) / total;
                  });
}

} // namespace sos
