#include "cache_hierarchy.hh"

#include "stats/stats.hh"

namespace sos {

CacheHierarchy::CacheHierarchy(const MemParams &params)
    : params_(params), l1i_(params.l1i), l1d_(params.l1d), l2_(params.l2),
      itlb_(params.itlb), dtlb_(params.dtlb), prefetcher_(params.prefetch)
{
}

std::uint32_t
CacheHierarchy::dataAccess(std::uint16_t asid, std::uint64_t addr,
                           bool write, std::uint64_t pc)
{
    std::uint32_t extra = 0;
    if (!dtlb_.access(asid, addr))
        extra += params_.tlbMissLatency;
    if (!l1d_.access(asid, addr)) {
        extra += params_.l2HitLatency;
        if (!l2_.access(asid, addr))
            extra += params_.memLatency;
    }

    if (!write && pc != 0 && prefetcher_.enabled()) {
        prefetchScratch_.clear();
        prefetcher_.observe(asid, pc, addr, prefetchScratch_);
        for (std::uint64_t target : prefetchScratch_) {
            // Hardware prefetchers drop requests that would require a
            // page walk.
            if (!dtlb_.probe(asid, target))
                continue;
            l2_.prefetchFill(asid, target);
            l1d_.prefetchFill(asid, target);
        }
    }
    return extra;
}

std::uint32_t
CacheHierarchy::instAccess(std::uint16_t asid, std::uint64_t pc)
{
    std::uint32_t extra = 0;
    if (!itlb_.access(asid, pc))
        extra += params_.tlbMissLatency;
    if (!l1i_.access(asid, pc)) {
        extra += params_.l2HitLatency;
        if (!l2_.access(asid, pc))
            extra += params_.memLatency;
    }
    return extra;
}

void
CacheHierarchy::flushAll()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
    itlb_.flush();
    dtlb_.flush();
}

void
CacheHierarchy::registerStats(const stats::Group &group) const
{
    l1i_.registerStats(group.group("l1i"));
    l1d_.registerStats(group.group("l1d"));
    l2_.registerStats(group.group("l2"));
    itlb_.registerStats(group.group("itlb"));
    dtlb_.registerStats(group.group("dtlb"));
    // The prefetcher count goes through a formula: its counter is
    // private, and the accessor is only called at dump time anyway.
    group.group("prefetcher")
        .formula("issued", "prefetches issued", [this] {
            return static_cast<double>(prefetcher_.issued());
        });
}

} // namespace sos
