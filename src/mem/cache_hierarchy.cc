#include "cache_hierarchy.hh"

#include <stdexcept>
#include <string>

#include "stats/stats.hh"

namespace sos {

namespace {

void
validateCacheParams(const CacheParams &params)
{
    const auto bad = [&params](const std::string &what) {
        throw std::invalid_argument("cache '" + params.name +
                                    "': " + what);
    };
    const auto requirePositive = [&bad](std::uint32_t value,
                                        const char *field) {
        if (value == 0) {
            bad(std::string(field) + " must be positive, got " +
                std::to_string(value));
        }
    };
    requirePositive(params.sizeBytes, "sizeBytes");
    requirePositive(params.lineBytes, "lineBytes");
    requirePositive(params.assoc, "assoc");
    if (params.sizeBytes % params.lineBytes != 0) {
        bad("lineBytes must divide sizeBytes, got lineBytes=" +
            std::to_string(params.lineBytes) + " sizeBytes=" +
            std::to_string(params.sizeBytes));
    }
    const std::uint32_t lines = params.sizeBytes / params.lineBytes;
    if (lines % params.assoc != 0) {
        bad("assoc must divide the line count, got assoc=" +
            std::to_string(params.assoc) + " lines=" +
            std::to_string(lines));
    }
}

} // namespace

void
validateMemParams(const MemParams &params)
{
    validateCacheParams(params.l1i);
    validateCacheParams(params.l1d);
    validateCacheParams(params.l2);
    validateCacheParams(params.itlb);
    validateCacheParams(params.dtlb);
    const auto requirePositive = [](std::uint32_t value,
                                    const char *field) {
        if (value == 0) {
            throw std::invalid_argument(
                "MemParams: " + std::string(field) +
                " must be positive, got " + std::to_string(value));
        }
    };
    requirePositive(params.l2HitLatency, "l2HitLatency");
    requirePositive(params.memLatency, "memLatency");
}

SharedL2::SharedL2(const MemParams &params, int num_cores)
    : l2_(params.l2)
{
    if (num_cores < 1)
        throw std::invalid_argument("a machine needs at least one core");
    counters_.resize(static_cast<std::size_t>(num_cores));
}

void
SharedL2::prefetchFill(int core, std::uint16_t asid, std::uint64_t addr)
{
    ++counters_.at(static_cast<std::size_t>(core)).prefetchFills;
    l2_.prefetchFill(asid, addr);
}

void
SharedL2::flush()
{
    l2_.flush();
}

void
SharedL2::registerCoreStats(const stats::Group &group, int core) const
{
    const CoreCounters &c = coreCounters(core);
    group.scalar("accesses", "demand L2 lookups from this core")
        .bind(&c.accesses);
    group.scalar("hits", "shared-L2 hits of this core").bind(&c.hits);
    group.scalar("misses", "shared-L2 misses of this core")
        .bind(&c.misses);
    group.scalar("prefetch_fills", "prefetch fills issued by this core")
        .bind(&c.prefetchFills);
    group.formula("miss_share",
                  "this core's share of all shared-L2 misses", [this,
                                                                core] {
        std::uint64_t total = 0;
        for (const CoreCounters &cc : counters_)
            total += cc.misses;
        if (total == 0)
            return 0.0;
        return static_cast<double>(coreCounters(core).misses) /
               static_cast<double>(total);
    });
}

CacheHierarchy::CacheHierarchy(const MemParams &params, SharedL2 &l2,
                               int core_id)
    : params_(params), coreId_(core_id), l2_(l2), l1i_(params.l1i),
      l1d_(params.l1d), itlb_(params.itlb), dtlb_(params.dtlb),
      prefetcher_(params.prefetch)
{
    if (core_id < 0 || core_id >= l2.numCores()) {
        throw std::invalid_argument(
            "memory view core id out of range for the shared L2");
    }
}

CacheHierarchy::CacheHierarchy(const CacheHierarchy &other, SharedL2 &l2)
    : params_(other.params_), coreId_(other.coreId_), l2_(l2),
      l1i_(other.l1i_), l1d_(other.l1d_), itlb_(other.itlb_),
      dtlb_(other.dtlb_), prefetcher_(other.prefetcher_),
      prefetchScratch_(other.prefetchScratch_)
{
    if (coreId_ >= l2.numCores()) {
        throw std::invalid_argument(
            "memory view core id out of range for the shared L2");
    }
}

void
CacheHierarchy::trainPrefetcher(std::uint16_t asid, std::uint64_t addr,
                                std::uint64_t pc)
{
    prefetchScratch_.clear();
    prefetcher_.observe(asid, pc, addr, prefetchScratch_);
    for (std::uint64_t target : prefetchScratch_) {
        // Hardware prefetchers drop requests that would require a
        // page walk.
        if (!dtlb_.probe(asid, target))
            continue;
        l2_.prefetchFill(coreId_, asid, target);
        l1d_.prefetchFill(asid, target);
    }
}

void
CacheHierarchy::flushAll()
{
    l1i_.flush();
    l1d_.flush();
    l2_.flush();
    itlb_.flush();
    dtlb_.flush();
}

void
CacheHierarchy::registerStats(const stats::Group &group) const
{
    l1i_.registerStats(group.group("l1i"));
    l1d_.registerStats(group.group("l1d"));
    l2_.cache().registerStats(group.group("l2"));
    itlb_.registerStats(group.group("itlb"));
    dtlb_.registerStats(group.group("dtlb"));
    // The prefetcher count goes through a formula: its counter is
    // private, and the accessor is only called at dump time anyway.
    group.group("prefetcher")
        .formula("issued", "prefetches issued", [this] {
            return static_cast<double>(prefetcher_.issued());
        });
}

} // namespace sos
