/**
 * @file
 * Set-associative cache with LRU replacement.
 *
 * All caches in the hierarchy are shared among the hardware contexts
 * of the SMT core. Tags incorporate the accessor's address-space id,
 * so distinct jobs with overlapping virtual addresses conflict in the
 * cache exactly the way competing working sets do on real hardware --
 * this is what makes cache-sweeping jobs anti-symbiotic and produces
 * the cold-start effects of the paper's Section 8.
 */

#ifndef SOS_MEM_CACHE_HH
#define SOS_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sos {

namespace stats {
class Group;
} // namespace stats

/** Geometry of one cache (or, degenerately, a TLB). */
struct CacheParams
{
    /** Human-readable name for reporting. */
    std::string name = "cache";
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 32 * 1024;
    /** Line size in bytes (page size for a TLB). */
    std::uint32_t lineBytes = 64;
    /** Associativity; sizeBytes / lineBytes / assoc sets. */
    std::uint32_t assoc = 2;
};

/**
 * Timing-model cache: tracks only tags and recency, not data.
 *
 * Writes allocate (write-back write-allocate policy); write-back
 * traffic is not separately modelled, which affects only absolute
 * bandwidth numbers, not the relative contention the scheduler
 * observes.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up (and on miss, allocate) the line containing addr.
     *
     * @param asid Address-space id of the accessor (distinct per job).
     * @param addr Virtual byte address.
     * @return True on hit.
     */
    bool access(std::uint16_t asid, std::uint64_t addr);

    /** True if the line is resident (no allocation, no LRU update). */
    bool probe(std::uint16_t asid, std::uint64_t addr) const;

    /**
     * Allocate the line without touching the demand hit/miss counters
     * (prefetch fills must not pollute the Dcache predictor signal).
     */
    void prefetchFill(std::uint16_t asid, std::uint64_t addr);

    /** Invalidate every line. */
    void flush();

    /** Invalidate all lines belonging to one address space. */
    void flushAsid(std::uint16_t asid);

    /** Number of lines currently valid (for tests and reporting). */
    std::uint64_t residentLines() const;

    /** Lifetime hits. */
    std::uint64_t hits() const { return hits_; }

    /** Lifetime misses. */
    std::uint64_t misses() const { return misses_; }

    /** Zero the hit/miss counters (contents are kept). */
    void resetStats();

    /**
     * Register the lifetime counters under @p group ("hits",
     * "misses", the "miss_rate" formula). Stats bind to the live
     * counters -- sinks read them at dump time and access() pays
     * nothing -- so the cache must outlive any dump.
     */
    void registerStats(const stats::Group &group) const;

    const CacheParams &params() const { return params_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint32_t lruStamp = 0;
        bool valid = false;
    };

    std::uint64_t lineFor(std::uint16_t asid, std::uint64_t addr) const;

    CacheParams params_;
    std::uint32_t numSets_;
    std::uint32_t lruClock_ = 0;
    std::vector<Way> ways_; // numSets_ * assoc, set-major
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace sos

#endif // SOS_MEM_CACHE_HH
