/**
 * @file
 * Set-associative cache with LRU replacement.
 *
 * All caches in the hierarchy are shared among the hardware contexts
 * of the SMT core. Tags incorporate the accessor's address-space id,
 * so distinct jobs with overlapping virtual addresses conflict in the
 * cache exactly the way competing working sets do on real hardware --
 * this is what makes cache-sweeping jobs anti-symbiotic and produces
 * the cold-start effects of the paper's Section 8.
 */

#ifndef SOS_MEM_CACHE_HH
#define SOS_MEM_CACHE_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace sos {

namespace stats {
class Group;
} // namespace stats

/** Geometry of one cache (or, degenerately, a TLB). */
struct CacheParams
{
    /** Human-readable name for reporting. */
    std::string name = "cache";
    /** Total capacity in bytes. */
    std::uint32_t sizeBytes = 32 * 1024;
    /** Line size in bytes (page size for a TLB). */
    std::uint32_t lineBytes = 64;
    /** Associativity; sizeBytes / lineBytes / assoc sets. */
    std::uint32_t assoc = 2;

    /**
     * Geometry equality (name included: it names the unit's role).
     * Machine::coreClasses partitions cores by comparing params, so
     * every field that affects behaviour must participate.
     */
    bool operator==(const CacheParams &) const = default;
};

/**
 * Timing-model cache: tracks only tags and recency, not data.
 *
 * Writes allocate (write-back write-allocate policy); write-back
 * traffic is not separately modelled, which affects only absolute
 * bandwidth numbers, not the relative contention the scheduler
 * observes.
 */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Look up (and on miss, allocate) the line containing addr.
     *
     * Defined inline below: one lookup runs for every load, store and
     * icache-line fetch the core simulates, so the body must be
     * visible to the per-cycle loops (DESIGN.md section 9).
     *
     * @param asid Address-space id of the accessor (distinct per job).
     * @param addr Virtual byte address.
     * @return True on hit.
     */
    bool access(std::uint16_t asid, std::uint64_t addr);

    /** True if the line is resident (no allocation, no LRU update). */
    bool probe(std::uint16_t asid, std::uint64_t addr) const;

    /**
     * Allocate the line without touching the demand hit/miss counters
     * (prefetch fills must not pollute the Dcache predictor signal).
     */
    void prefetchFill(std::uint16_t asid, std::uint64_t addr);

    /** Invalidate every line. */
    void flush();

    /** Invalidate all lines belonging to one address space. */
    void flushAsid(std::uint16_t asid);

    /** Number of lines currently valid (for tests and reporting). */
    std::uint64_t residentLines() const;

    /** Lifetime hits. */
    std::uint64_t hits() const { return hits_; }

    /** Lifetime misses. */
    std::uint64_t misses() const { return misses_; }

    /** Zero the hit/miss counters (contents are kept). */
    void resetStats();

    /**
     * Register the lifetime counters under @p group ("hits",
     * "misses", the "miss_rate" formula). Stats bind to the live
     * counters -- sinks read them at dump time and access() pays
     * nothing -- so the cache must outlive any dump.
     */
    void registerStats(const stats::Group &group) const;

    const CacheParams &params() const { return params_; }

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        std::uint32_t lruStamp = 0;
        bool valid = false;
    };

    std::uint64_t lineFor(std::uint16_t asid, std::uint64_t addr) const;

    /** Find the LRU victim way for @p line's set (hit => nullptr). */
    Way *findOrVictim(std::uint64_t line);

    CacheParams params_;
    std::uint32_t numSets_;
    std::uint32_t lineShift_; ///< log2(lineBytes), avoids division
    std::uint32_t lruClock_ = 0;
    std::vector<Way> ways_; // numSets_ * assoc, set-major
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

inline std::uint64_t
Cache::lineFor(std::uint16_t asid, std::uint64_t addr) const
{
    // Fold the address space id into the high tag bits: same virtual
    // line in different jobs occupies the same set but never matches.
    return (addr >> lineShift_) |
           (static_cast<std::uint64_t>(asid) << 48);
}

inline Cache::Way *
Cache::findOrVictim(std::uint64_t line)
{
    const std::uint32_t set =
        static_cast<std::uint32_t>(line) & (numSets_ - 1);
    Way *const base = &ways_[static_cast<std::size_t>(set) * params_.assoc];

    ++lruClock_;
    const std::uint32_t assoc = params_.assoc;
    // Hit scan first: the common case exits without tracking a
    // victim, so the hot path is a bare tag compare per way.
    for (std::uint32_t w = 0; w < assoc; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == line) {
            way.lruStamp = lruClock_;
            return nullptr;
        }
    }
    // Miss: last invalid way if any, else the first least-recently
    // used way (the same choice the former fused scan made).
    Way *victim = base;
    for (std::uint32_t w = 0; w < assoc; ++w) {
        Way &way = base[w];
        if (!way.valid)
            victim = &way;
        else if (victim->valid && way.lruStamp < victim->lruStamp)
            victim = &way;
    }
    return victim;
}

inline bool
Cache::access(std::uint16_t asid, std::uint64_t addr)
{
    const std::uint64_t line = lineFor(asid, addr);
    Way *const victim = findOrVictim(line);
    if (victim == nullptr) {
        ++hits_;
        return true;
    }
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = lruClock_;
    ++misses_;
    return false;
}

inline void
Cache::prefetchFill(std::uint16_t asid, std::uint64_t addr)
{
    const std::uint64_t line = lineFor(asid, addr);
    Way *const victim = findOrVictim(line);
    if (victim == nullptr)
        return; // already resident: recency refreshed only
    victim->valid = true;
    victim->tag = line;
    victim->lruStamp = lruClock_;
}

inline bool
Cache::probe(std::uint16_t asid, std::uint64_t addr) const
{
    const std::uint64_t line = lineFor(asid, addr);
    const std::uint32_t set =
        static_cast<std::uint32_t>(line) & (numSets_ - 1);
    const Way *const base =
        &ways_[static_cast<std::size_t>(set) * params_.assoc];
    for (std::uint32_t w = 0; w < params_.assoc; ++w) {
        if (base[w].valid && base[w].tag == line)
            return true;
    }
    return false;
}

} // namespace sos

#endif // SOS_MEM_CACHE_HH
