/**
 * @file
 * Two-level cache hierarchy with TLBs, shared by all SMT contexts.
 */

#ifndef SOS_MEM_CACHE_HIERARCHY_HH
#define SOS_MEM_CACHE_HIERARCHY_HH

#include <cstdint>

#include "mem/cache.hh"
#include "mem/prefetcher.hh"

namespace sos {

/** Configuration of the memory subsystem. */
struct MemParams
{
    CacheParams l1i{"l1i", 64 * 1024, 64, 2};
    CacheParams l1d{"l1d", 64 * 1024, 64, 4};
    /**
     * Board-level cache: 21264 systems shipped 2-8 MB. Sized so a
     * whole 12-job mix's data fits, as in the paper's regime where
     * "none [of the kernels] are large enough to seriously stress the
     * capacity of the cache even when run in combination".
     */
    CacheParams l2{"l2", 2 * 1024 * 1024, 64, 8};
    CacheParams itlb{"itlb", 128 * 8192, 8192, 4}; // 128 x 8K pages
    CacheParams dtlb{"dtlb", 256 * 8192, 8192, 4}; // 256 entries

    /** Additional latency beyond L1 on an L1 miss that hits in L2. */
    std::uint32_t l2HitLatency = 12;
    /** Additional latency on an L2 miss (main memory). */
    std::uint32_t memLatency = 90;
    /** Added latency for a TLB miss (software/hardware walk). */
    std::uint32_t tlbMissLatency = 30;

    /** Optional stride prefetcher (off by default; see ablation). */
    PrefetcherParams prefetch;
};

/**
 * The shared memory system of the SMT core.
 *
 * Latency-only model: misses overlap freely (the out-of-order core
 * provides the MLP limit through its queues and rename registers).
 * All structures are shared and ASID-tagged, so coscheduled jobs evict
 * each other's lines -- the mechanism behind the Dcache predictor and
 * the Section 8 cold-start effects.
 */
class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const MemParams &params);

    /**
     * Perform a data access.
     *
     * @param asid Address space of the accessing job.
     * @param addr Virtual byte address.
     * @param write True for stores.
     * @param pc Address of the accessing instruction (trains the
     *        prefetcher on loads; 0 disables training for the access).
     * @return Extra cycles beyond the L1 hit latency (0 on L1 hit).
     */
    std::uint32_t dataAccess(std::uint16_t asid, std::uint64_t addr,
                             bool write, std::uint64_t pc = 0);

    /**
     * Perform an instruction fetch access for one cache line.
     *
     * @return Extra stall cycles (0 when the line is in L1I).
     */
    std::uint32_t instAccess(std::uint16_t asid, std::uint64_t pc);

    /** Invalidate everything (used between independent experiments). */
    void flushAll();

    /**
     * Register every level's counters under @p group: one subgroup
     * per cache/TLB ("l1i", "l1d", "l2", "itlb", "dtlb") plus the
     * prefetcher's issue count. Binding rules as Cache::registerStats.
     */
    void registerStats(const stats::Group &group) const;

    const MemParams &params() const { return params_; }

    /** @name Component access for stats and tests. @{ */
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_; }
    const Cache &itlb() const { return itlb_; }
    const Cache &dtlb() const { return dtlb_; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }
    /** @} */

  private:
    MemParams params_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    Cache itlb_;
    Cache dtlb_;
    StridePrefetcher prefetcher_;
    std::vector<std::uint64_t> prefetchScratch_;
};

} // namespace sos

#endif // SOS_MEM_CACHE_HIERARCHY_HH
