/**
 * @file
 * Memory system of a CMP of SMT cores.
 *
 * The hierarchy is split along the machine's sharing topology:
 *
 *  - SharedL2 models the board-level cache every core of the machine
 *    shares.  It keeps per-core contention counters (demand accesses,
 *    hits, misses, prefetch fills) so machine-level schedulers can see
 *    which core is pounding the shared level.
 *
 *  - CacheHierarchy is one core's *view* of memory: private L1s, TLBs
 *    and stride prefetcher, plus a reference to the machine's
 *    SharedL2.  SmtCore borrows a view by reference; the Machine owns
 *    both halves.
 *
 * A 1-core machine reproduces the former single-core hierarchy
 * bit-for-bit: the same caches see the same access sequence, only the
 * ownership moved.
 */

#ifndef SOS_MEM_CACHE_HIERARCHY_HH
#define SOS_MEM_CACHE_HIERARCHY_HH

#include <cstdint>
#include <vector>

#include "mem/cache.hh"
#include "mem/prefetcher.hh"

namespace sos {

/** Configuration of the memory subsystem. */
struct MemParams
{
    CacheParams l1i{"l1i", 64 * 1024, 64, 2};
    CacheParams l1d{"l1d", 64 * 1024, 64, 4};
    /**
     * Board-level cache: 21264 systems shipped 2-8 MB. Sized so a
     * whole 12-job mix's data fits, as in the paper's regime where
     * "none [of the kernels] are large enough to seriously stress the
     * capacity of the cache even when run in combination".
     */
    CacheParams l2{"l2", 2 * 1024 * 1024, 64, 8};
    CacheParams itlb{"itlb", 128 * 8192, 8192, 4}; // 128 x 8K pages
    CacheParams dtlb{"dtlb", 256 * 8192, 8192, 4}; // 256 entries
    /** Additional latency beyond L1 on an L1 miss that hits in L2. */
    std::uint32_t l2HitLatency = 12;
    /** Additional latency on an L2 miss (main memory). */
    std::uint32_t memLatency = 90;
    /** Added latency for a TLB miss (software/hardware walk). */
    std::uint32_t tlbMissLatency = 30;

    /** Optional stride prefetcher (off by default; see ablation). */
    PrefetcherParams prefetch;

    /**
     * Field-wise equality.  Machine::coreClasses partitions cores by
     * comparing params, so every behavioural field participates; any
     * new member is automatically included by the defaulted operator.
     */
    bool operator==(const MemParams &) const = default;
};

/**
 * Check a memory configuration for structural validity: every cache
 * must have a positive geometry that divides evenly into sets, and
 * latencies must be non-degenerate.
 *
 * @throws std::invalid_argument describing the first violation.
 */
void validateMemParams(const MemParams &params);

/**
 * The machine's shared board-level cache.
 *
 * One instance per Machine; every core's CacheHierarchy view routes
 * its L1-miss traffic here.  Besides the Cache's own aggregate
 * hit/miss counters, the shared level attributes demand accesses,
 * hits, misses and prefetch fills to the requesting core -- the
 * contention signal a thread-to-core allocation policy can read.
 */
class SharedL2
{
  public:
    /** Per-core contention counters at the shared level. */
    struct CoreCounters
    {
        std::uint64_t accesses = 0; ///< demand lookups from this core
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t prefetchFills = 0;
    };

    /**
     * @param params Machine memory configuration (uses .l2).
     * @param num_cores Cores sharing this cache (>= 1).
     */
    SharedL2(const MemParams &params, int num_cores);

    /**
     * Demand access from @p core; true on hit (allocates on miss).
     * Defined inline below: this sits on the simulator's per-L1-miss
     * path (DESIGN.md section 9).
     */
    bool access(int core, std::uint16_t asid, std::uint64_t addr);

    /** Prefetch fill from @p core (no demand counters touched). */
    void prefetchFill(int core, std::uint16_t asid, std::uint64_t addr);

    /** Invalidate every line (counters are kept). */
    void flush();

    int numCores() const { return static_cast<int>(counters_.size()); }

    /** The underlying cache (aggregate counters, geometry). */
    const Cache &cache() const { return l2_; }

    /** Contention counters of one core. */
    const CoreCounters &
    coreCounters(int core) const
    {
        return counters_.at(static_cast<std::size_t>(core));
    }

    /**
     * Register one core's contention counters under @p group
     * ("accesses", "hits", "misses", "prefetch_fills", plus the
     * "miss_share" formula: this core's misses over all cores').
     * Stats bind to live counters; this object must outlive dumps.
     */
    void registerCoreStats(const stats::Group &group, int core) const;

  private:
    Cache l2_;
    std::vector<CoreCounters> counters_;
};

/**
 * One core's view of the memory system: private L1 caches, TLBs and
 * prefetcher in front of the machine-shared L2.
 *
 * Latency-only model: misses overlap freely (the out-of-order core
 * provides the MLP limit through its queues and rename registers).
 * Private structures are still shared among the *contexts* of the
 * owning SMT core and ASID-tagged, so coscheduled jobs evict each
 * other's lines -- the mechanism behind the Dcache predictor and the
 * Section 8 cold-start effects.  Jobs on different cores contend only
 * through the shared L2.
 */
class CacheHierarchy
{
  public:
    /**
     * @param params Memory configuration (private level geometry).
     * @param l2 The machine's shared cache (must outlive the view).
     * @param core_id This core's index for contention attribution.
     */
    CacheHierarchy(const MemParams &params, SharedL2 &l2, int core_id);

    /**
     * Snapshot copy: duplicate @p other's private caches, TLBs and
     * prefetcher state exactly, but route shared-level traffic to
     * @p l2 (the copying Machine's own SharedL2).  Together with the
     * SharedL2's value copy this reproduces the memory system of a
     * warmed machine bit-for-bit.
     */
    CacheHierarchy(const CacheHierarchy &other, SharedL2 &l2);

    /**
     * Perform a data access.
     *
     * @param asid Address space of the accessing job.
     * @param addr Virtual byte address.
     * @param write True for stores.
     * @param pc Address of the accessing instruction (trains the
     *        prefetcher on loads; 0 disables training for the access).
     * @return Extra cycles beyond the L1 hit latency (0 on L1 hit).
     */
    std::uint32_t dataAccess(std::uint16_t asid, std::uint64_t addr,
                             bool write, std::uint64_t pc = 0);

    /**
     * Perform an instruction fetch access for one cache line.
     *
     * @return Extra stall cycles (0 when the line is in L1I).
     */
    std::uint32_t instAccess(std::uint16_t asid, std::uint64_t pc);

    /**
     * Invalidate the private levels *and* the shared L2 (used between
     * independent experiments; on a multicore machine prefer
     * Machine::flushAll, which flushes every view).
     */
    void flushAll();

    /**
     * Register this view's counters under @p group: one subgroup per
     * private cache/TLB ("l1i", "l1d", "itlb", "dtlb"), the shared
     * cache's aggregate counters under "l2", and the prefetcher's
     * issue count.  Register at most one view's stats per path (on a
     * multicore machine the "l2" aggregate belongs to the machine).
     * Binding rules as Cache::registerStats.
     */
    void registerStats(const stats::Group &group) const;

    const MemParams &params() const { return params_; }

    int coreId() const { return coreId_; }

    /** @name Component access for stats and tests. @{ */
    const Cache &l1i() const { return l1i_; }
    const Cache &l1d() const { return l1d_; }
    const Cache &l2() const { return l2_.cache(); }
    const Cache &itlb() const { return itlb_; }
    const Cache &dtlb() const { return dtlb_; }
    const StridePrefetcher &prefetcher() const { return prefetcher_; }
    const SharedL2 &sharedL2() const { return l2_; }
    /** This core's contention counters at the shared level. */
    const SharedL2::CoreCounters &
    l2CoreCounters() const
    {
        return l2_.coreCounters(coreId_);
    }
    /** @} */

  private:
    /** Prefetcher training + fills for a load (out of line: rare). */
    void trainPrefetcher(std::uint16_t asid, std::uint64_t addr,
                         std::uint64_t pc);

    MemParams params_;
    int coreId_;
    SharedL2 &l2_;
    Cache l1i_;
    Cache l1d_;
    Cache itlb_;
    Cache dtlb_;
    StridePrefetcher prefetcher_;
    std::vector<std::uint64_t> prefetchScratch_;
};

inline bool
SharedL2::access(int core, std::uint16_t asid, std::uint64_t addr)
{
    CoreCounters &c = counters_[static_cast<std::size_t>(core)];
    ++c.accesses;
    const bool hit = l2_.access(asid, addr);
    if (hit)
        ++c.hits;
    else
        ++c.misses;
    return hit;
}

inline std::uint32_t
CacheHierarchy::dataAccess(std::uint16_t asid, std::uint64_t addr,
                           bool write, std::uint64_t pc)
{
    std::uint32_t extra = 0;
    if (!dtlb_.access(asid, addr))
        extra += params_.tlbMissLatency;
    if (!l1d_.access(asid, addr)) {
        extra += params_.l2HitLatency;
        if (!l2_.access(coreId_, asid, addr))
            extra += params_.memLatency;
    }

    if (!write && pc != 0 && prefetcher_.enabled())
        trainPrefetcher(asid, addr, pc);
    return extra;
}

inline std::uint32_t
CacheHierarchy::instAccess(std::uint16_t asid, std::uint64_t pc)
{
    std::uint32_t extra = 0;
    if (!itlb_.access(asid, pc))
        extra += params_.tlbMissLatency;
    if (!l1i_.access(asid, pc)) {
        extra += params_.l2HitLatency;
        if (!l2_.access(coreId_, asid, pc))
            extra += params_.memLatency;
    }
    return extra;
}

} // namespace sos

#endif // SOS_MEM_CACHE_HIERARCHY_HH
