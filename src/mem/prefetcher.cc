#include "prefetcher.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace sos {

StridePrefetcher::StridePrefetcher(const PrefetcherParams &params)
    : params_(params)
{
    SOS_ASSERT(params.tableBits >= 4 && params.tableBits <= 20);
    SOS_ASSERT(params.degree >= 1 && params.degree <= 8);
    SOS_ASSERT(params.confidenceThreshold >= 1);
    table_.resize(std::size_t{1} << params.tableBits);
    mask_ = table_.size() - 1;
}

void
StridePrefetcher::observe(std::uint16_t asid, std::uint64_t pc,
                          std::uint64_t addr,
                          std::vector<std::uint64_t> &out)
{
    if (!params_.enabled)
        return;

    const std::uint64_t tag =
        pc ^ (mix64(asid) | 1); // never 0: 0 marks an invalid entry
    Entry &entry = table_[(tag >> 2) & mask_];

    if (entry.tag != tag) {
        entry.tag = tag;
        entry.lastAddr = addr;
        entry.stride = 0;
        entry.confidence = 0;
        return;
    }

    const std::int64_t stride =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(entry.lastAddr);
    entry.lastAddr = addr;
    if (stride == 0)
        return;

    if (stride == entry.stride) {
        if (entry.confidence < 16)
            ++entry.confidence;
    } else {
        entry.stride = stride;
        entry.confidence = 1;
        return;
    }

    if (entry.confidence < params_.confidenceThreshold)
        return;

    for (int d = 1; d <= params_.degree; ++d) {
        const std::int64_t target =
            static_cast<std::int64_t>(addr) +
            stride * static_cast<std::int64_t>(d);
        if (target < 0)
            break;
        out.push_back(static_cast<std::uint64_t>(target));
        ++issued_;
    }
}

void
StridePrefetcher::reset()
{
    for (Entry &entry : table_)
        entry = Entry();
    issued_ = 0;
}

} // namespace sos
