/**
 * @file
 * Reference-prediction-table stride prefetcher.
 *
 * An extension beyond the paper's machine (default off): a per-entry
 * PC-indexed table learns the stride of each load site and prefetches
 * ahead into the cache hierarchy. The ablation harness uses it to ask
 * a question the paper could not: does hiding streaming misses narrow
 * the schedule-sensitivity SOS exploits?
 *
 * Entries are tagged with the accessor's ASID so coscheduled jobs
 * train separate streams but still compete for table capacity -- one
 * more shared front-side resource, like the branch predictor.
 */

#ifndef SOS_MEM_PREFETCHER_HH
#define SOS_MEM_PREFETCHER_HH

#include <cstdint>
#include <vector>

namespace sos {

/** Configuration of the stride prefetcher. */
struct PrefetcherParams
{
    bool enabled = false;
    /** log2 of reference-prediction-table entries. */
    int tableBits = 9;
    /** Consecutive same-stride hits required before issuing. */
    int confidenceThreshold = 2;
    /** Lines prefetched ahead of a confident stream. */
    int degree = 2;

    bool operator==(const PrefetcherParams &) const = default;
};

/** Stride predictor over load addresses. */
class StridePrefetcher
{
  public:
    explicit StridePrefetcher(const PrefetcherParams &params);

    /**
     * Observe one demand load and emit prefetch addresses.
     *
     * @param asid Accessor's address space.
     * @param pc Load instruction address (table index).
     * @param addr Demand byte address.
     * @param out Receives 0..degree prefetch byte addresses.
     */
    void observe(std::uint16_t asid, std::uint64_t pc,
                 std::uint64_t addr,
                 std::vector<std::uint64_t> &out);

    bool enabled() const { return params_.enabled; }

    /** Lifetime prefetches issued. */
    std::uint64_t issued() const { return issued_; }

    /** Forget all training state. */
    void reset();

  private:
    struct Entry
    {
        std::uint64_t tag = 0; ///< pc ^ salted asid; 0 = invalid
        std::uint64_t lastAddr = 0;
        std::int64_t stride = 0;
        int confidence = 0;
    };

    PrefetcherParams params_;
    std::vector<Entry> table_;
    std::uint64_t mask_;
    std::uint64_t issued_ = 0;
};

} // namespace sos

#endif // SOS_MEM_PREFETCHER_HH
