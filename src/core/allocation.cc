#include "allocation.hh"

#include <algorithm>

#include "common/logging.hh"

namespace sos {

int
AllocationPlan::totalUnits() const
{
    int total = 0;
    for (int t : threadsPerJob)
        total += t;
    return total;
}

std::string
AllocationPlan::label() const
{
    std::string out = "[";
    for (std::size_t j = 0; j < threadsPerJob.size(); ++j) {
        if (j > 0)
            out += ",";
        out += std::to_string(threadsPerJob[j]);
    }
    out += "]";
    return out;
}

namespace {

void
recurse(const std::vector<bool> &adaptive, int level, int max_threads,
        std::size_t index, AllocationPlan &current,
        std::vector<AllocationPlan> &out)
{
    if (index == adaptive.size()) {
        if (current.totalUnits() >= level)
            out.push_back(current);
        return;
    }
    const int limit =
        adaptive[index] ? std::min(level, max_threads) : 1;
    for (int t = 1; t <= limit; ++t) {
        current.threadsPerJob.push_back(t);
        recurse(adaptive, level, max_threads, index + 1, current, out);
        current.threadsPerJob.pop_back();
    }
}

} // namespace

std::vector<AllocationPlan>
enumerateAllocationPlans(const std::vector<bool> &adaptive, int level,
                         int max_threads_per_job)
{
    SOS_ASSERT(!adaptive.empty());
    SOS_ASSERT(level >= 1 && max_threads_per_job >= 1);
    std::vector<AllocationPlan> out;
    AllocationPlan current;
    recurse(adaptive, level, max_threads_per_job, 0, current, out);
    SOS_ASSERT(!out.empty(),
               "no allocation plan can cover the SMT level");
    return out;
}

} // namespace sos
