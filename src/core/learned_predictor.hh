/**
 * @file
 * The "learned" predictor: ranks candidates with a trained WS model.
 *
 * Unlike the paper's hand-tuned predictors, the learned predictor
 * scores a candidate from its *static* feature vector (composed from
 * thread signatures before any simulation, model/features.hh), not
 * from sampled counters -- the driver that owns the candidate list
 * injects the per-candidate features via setCandidateFeatures()
 * before asking for a ranking. The ScheduleProfile argument only
 * supplies the candidate count.
 *
 * Registry contract: makePredictor("learned") must construct even
 * with no model configured (every registered name is constructible,
 * test_predictors.cpp), so the default constructor defers loading --
 * SOS_MODEL is read if set, and an inert instance fails with a clear
 * fatal() only when actually asked to score.
 */

#ifndef SOS_CORE_LEARNED_PREDICTOR_HH
#define SOS_CORE_LEARNED_PREDICTOR_HH

#include <memory>
#include <vector>

#include "core/predictor.hh"
#include "model/model.hh"

namespace sos {

/** Predictor backed by a trained model (SOS_MODEL / --model). */
class LearnedPredictor : public Predictor
{
  public:
    /** Loads the model named by SOS_MODEL; inert when unset. */
    LearnedPredictor();

    /** Uses an already-loaded model (the --model plumbing). */
    explicit LearnedPredictor(std::shared_ptr<const model::WsModel> ws_model);

    std::string name() const override { return "learned"; }

    /** True once a model is available for scoring. */
    bool hasModel() const { return model_ != nullptr; }

    /** The loaded model (null when inert). */
    const model::WsModel *wsModel() const { return model_.get(); }

    /**
     * Features of the candidates the next score() call will rank,
     * in candidate order.
     */
    void setCandidateFeatures(std::vector<model::FeatureVector> features);

    /**
     * Predicted WS per candidate. Fatal without a model or when the
     * injected features do not match the candidate count.
     */
    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override;

  private:
    std::shared_ptr<const model::WsModel> model_;
    std::vector<model::FeatureVector> features_;
};

} // namespace sos

#endif // SOS_CORE_LEARNED_PREDICTOR_HH
