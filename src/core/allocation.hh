/**
 * @file
 * Context-allocation plans for hierarchical symbiosis (Section 7).
 *
 * When the jobmix contains adaptive multithreaded jobs (compiled, like
 * MTA code, to run with however many contexts they are given), SOS
 * gains a second degree of freedom: besides choosing which jobs to
 * coschedule, it chooses how many hardware contexts each adaptive job
 * receives. An AllocationPlan fixes a thread count per job; for each
 * plan, the ordinary schedule space over the expanded thread units
 * applies.
 */

#ifndef SOS_CORE_ALLOCATION_HH
#define SOS_CORE_ALLOCATION_HH

#include <string>
#include <vector>

namespace sos {

/** One choice of thread counts, indexed like the jobmix's jobs. */
struct AllocationPlan
{
    std::vector<int> threadsPerJob;

    /** Total schedulable units under this plan. */
    int totalUnits() const;

    /** Display form, e.g. "[1,2,1]". */
    std::string label() const;
};

/**
 * Enumerate every allocation plan.
 *
 * @param adaptive Per-job flag; non-adaptive jobs always get 1 thread.
 * @param level SMT level: no job may have more threads than contexts,
 *        and every plan must provide at least @p level units in total
 *        (otherwise contexts would sit provably idle).
 * @param max_threads_per_job Upper bound on any single job's threads.
 */
std::vector<AllocationPlan>
enumerateAllocationPlans(const std::vector<bool> &adaptive, int level,
                         int max_threads_per_job);

} // namespace sos

#endif // SOS_CORE_ALLOCATION_HH
