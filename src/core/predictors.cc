#include "predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/learned_predictor.hh"
#include "model/features.hh"

namespace sos {

using model::ProfileSignature;
using model::profileSignature;

int
Predictor::best(const std::vector<ScheduleProfile> &profiles) const
{
    SOS_ASSERT(!profiles.empty(), "cannot rank an empty sample");
    const std::vector<double> scores = score(profiles);
    SOS_ASSERT(scores.size() == profiles.size());
    int best_index = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<std::size_t>(best_index)])
            best_index = static_cast<int>(i);
    }
    return best_index;
}

namespace {

/** Guard against division by an exactly-zero best conflict count. */
constexpr double confFloor = 1e-6;

/** Floor for the Balance denominator (a perfectly smooth sample). */
constexpr double balanceFloor = 0.01;

/**
 * A hand-tuned predictor defined on one field of the shared
 * ProfileSignature (model/features.hh). Every paper predictor is one
 * of these: extract the signature, read one normalized field, maybe
 * negate it ("lower is better" resources).
 */
class SignatureFieldPredictor : public Predictor
{
  public:
    using Field = double (*)(const ProfileSignature &);

    SignatureFieldPredictor(std::string name, Field field)
        : name_(std::move(name)), field_(field)
    {
    }

    std::string name() const override { return name_; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(field_(profileSignature(p)));
        return out;
    }

  private:
    std::string name_;
    Field field_;
};

std::unique_ptr<Predictor>
fieldPredictor(std::string name, SignatureFieldPredictor::Field field)
{
    return std::make_unique<SignatureFieldPredictor>(std::move(name), field);
}

/**
 * The paper's experimental fit:
 *
 *   0.9 / min(FQ/lowFQ, FP/lowFP, Sum2/lowSum2)  +  0.1 / Balance
 *
 * smoothness-dominated with weight on the critical FP resources (the
 * typeset formula in the paper is ambiguous; DESIGN.md records this
 * literal fractional reading). Note the asymmetry the original code
 * had and the goldens pin: the per-sample lows come from the raw
 * conflict percentages, while each schedule's own terms are floored
 * first (so its sum2 is the sum of the floored parts).
 */
class CompositePredictor : public Predictor
{
  public:
    std::string name() const override { return "Composite"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<ProfileSignature> sigs;
        sigs.reserve(profiles.size());
        for (const auto &p : profiles)
            sigs.push_back(profileSignature(p));

        double low_fq = 1e300;
        double low_fp = 1e300;
        double low_sum2 = 1e300;
        for (const auto &sig : sigs) {
            low_fq = std::min(low_fq, sig.fqConflictPct);
            low_fp = std::min(low_fp, sig.fpConflictPct);
            low_sum2 = std::min(low_sum2, sig.sum2ConflictPct);
        }
        low_fq = std::max(low_fq, confFloor);
        low_fp = std::max(low_fp, confFloor);
        low_sum2 = std::max(low_sum2, confFloor);

        std::vector<double> out;
        out.reserve(sigs.size());
        for (const auto &sig : sigs) {
            const double fq = std::max(sig.fqConflictPct, confFloor);
            const double fp = std::max(sig.fpConflictPct, confFloor);
            const double sum2 = std::max(fq + fp, confFloor);
            const double ratio = std::min(
                {fq / low_fq, fp / low_fp, sum2 / low_sum2});
            const double balance = std::max(sig.balance, balanceFloor);
            out.push_back(0.9 / ratio + 0.1 / balance);
        }
        return out;
    }
};

/**
 * Score: one vote per base predictor for its top-ranked schedule;
 * ties broken by the summed min-max-normalized goodness across all
 * base predictors ("relative magnitude of goodness").
 */
class ScorePredictor : public Predictor
{
  public:
    ScorePredictor() : components_(makeBasePredictors()) {}

    std::string name() const override { return "Score"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        SOS_ASSERT(!profiles.empty());
        std::vector<double> votes(profiles.size(), 0.0);
        std::vector<double> magnitude(profiles.size(), 0.0);
        for (const auto &predictor : components_) {
            const std::vector<double> raw = predictor->score(profiles);
            const auto [mn_it, mx_it] =
                std::minmax_element(raw.begin(), raw.end());
            const double mn = *mn_it;
            const double span = *mx_it - mn;
            int best_index = 0;
            for (std::size_t i = 0; i < raw.size(); ++i) {
                if (raw[i] >
                    raw[static_cast<std::size_t>(best_index)]) {
                    best_index = static_cast<int>(i);
                }
                if (span > 0.0)
                    magnitude[i] += (raw[i] - mn) / span;
            }
            votes[static_cast<std::size_t>(best_index)] += 1.0;
        }
        // Fold normalized magnitude in below the quantum of one vote.
        const double tiebreak =
            0.5 / static_cast<double>(components_.size());
        for (std::size_t i = 0; i < votes.size(); ++i) {
            votes[i] += tiebreak * magnitude[i] /
                        static_cast<double>(components_.size());
        }
        return votes;
    }

  private:
    std::vector<std::unique_ptr<Predictor>> components_;
};

} // namespace

std::vector<std::unique_ptr<Predictor>>
makeBasePredictors()
{
    std::vector<std::unique_ptr<Predictor>> out;
    // High observed IPC in the sample predicts symbiosis.
    out.push_back(fieldPredictor(
        "IPC", [](const ProfileSignature &s) { return s.ipc; }));
    // Low total conflicts across all eight shared resources.
    out.push_back(fieldPredictor(
        "AllConf",
        [](const ProfileSignature &s) { return -s.allConflictPct; }));
    // High L1 data-cache hit rate.
    out.push_back(fieldPredictor(
        "Dcache", [](const ProfileSignature &s) { return s.l1dHitRate; }));
    // Low conflicts on the floating-point issue queue.
    out.push_back(fieldPredictor(
        "FQ", [](const ProfileSignature &s) { return -s.fqConflictPct; }));
    // Low conflicts on the floating-point units.
    out.push_back(fieldPredictor(
        "FP", [](const ProfileSignature &s) { return -s.fpConflictPct; }));
    // Low combined FP-queue + FP-unit conflicts.
    out.push_back(fieldPredictor(
        "Sum2",
        [](const ProfileSignature &s) { return -s.sum2ConflictPct; }));
    // A balanced FP/integer mix over the whole schedule, as in the
    // paper's Table 3 (whose Diversity column scores the segregated
    // schedule best -- which is why the paper finds the predictor
    // ineffective; see "SliceDiversity" for the repaired variant this
    // library adds as an extension).
    out.push_back(fieldPredictor(
        "Diversity",
        [](const ProfileSignature &s) { return -s.mixImbalance; }));
    // Low variation of IPC between consecutive timeslices.
    out.push_back(fieldPredictor(
        "Balance", [](const ProfileSignature &s) { return -s.balance; }));
    out.push_back(std::make_unique<CompositePredictor>());
    return out;
}

std::unique_ptr<Predictor>
makeScorePredictor()
{
    return std::make_unique<ScorePredictor>();
}

std::vector<std::unique_ptr<Predictor>>
makeAllPredictors()
{
    std::vector<std::unique_ptr<Predictor>> out = makeBasePredictors();
    out.push_back(makeScorePredictor());
    return out;
}

std::unique_ptr<Predictor>
makePredictor(const std::string &name)
{
    // Extensions outside the paper's ten-predictor set.
    if (name == "SliceDiversity") {
        // Diversity evaluated per timeslice, so a schedule that
        // alternates an FP-only tuple with an integer-only tuple is
        // correctly penalized even though its aggregate mix looks
        // balanced.
        return fieldPredictor(
            "SliceDiversity",
            [](const ProfileSignature &s) { return -s.sliceDiversity; });
    }
    if (name == "learned")
        return std::make_unique<LearnedPredictor>();
    for (auto &predictor : makeAllPredictors()) {
        if (predictor->name() == name)
            return std::move(predictor);
    }
    std::string known;
    for (const std::string &key : predictorNames()) {
        if (!known.empty())
            known += ", ";
        known += key;
    }
    fatal("unknown predictor '", name, "' (known: ", known, ")");
}

const std::vector<std::string> &
predictorNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        out.push_back("SliceDiversity");
        for (const auto &predictor : makeAllPredictors())
            out.push_back(predictor->name());
        out.push_back("learned");
        return out;
    }();
    return names;
}

} // namespace sos
