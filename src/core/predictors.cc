#include "predictor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sos {

int
Predictor::best(const std::vector<ScheduleProfile> &profiles) const
{
    SOS_ASSERT(!profiles.empty(), "cannot rank an empty sample");
    const std::vector<double> scores = score(profiles);
    SOS_ASSERT(scores.size() == profiles.size());
    int best_index = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<std::size_t>(best_index)])
            best_index = static_cast<int>(i);
    }
    return best_index;
}

namespace {

/** Guard against division by an exactly-zero best conflict count. */
constexpr double confFloor = 1e-6;

/** Floor for the Balance denominator (a perfectly smooth sample). */
constexpr double balanceFloor = 0.01;

/** High observed IPC in the sample predicts symbiosis. */
class IpcPredictor : public Predictor
{
  public:
    std::string name() const override { return "IPC"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(p.counters.ipc());
        return out;
    }
};

/** Low total conflicts across all eight shared resources. */
class AllConfPredictor : public Predictor
{
  public:
    std::string name() const override { return "AllConf"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(-p.counters.allConflictPct());
        return out;
    }
};

/** High L1 data-cache hit rate. */
class DcachePredictor : public Predictor
{
  public:
    std::string name() const override { return "Dcache"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(p.counters.l1dHitRate());
        return out;
    }
};

/** Low conflicts on the floating-point issue queue. */
class FqPredictor : public Predictor
{
  public:
    std::string name() const override { return "FQ"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(-p.counters.conflictPct(p.counters.confFpQueue));
        return out;
    }
};

/** Low conflicts on the floating-point units. */
class FpPredictor : public Predictor
{
  public:
    std::string name() const override { return "FP"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(-p.counters.conflictPct(p.counters.confFpUnits));
        return out;
    }
};

/** Low combined FP-queue + FP-unit conflicts. */
class Sum2Predictor : public Predictor
{
  public:
    std::string name() const override { return "Sum2"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles) {
            out.push_back(
                -(p.counters.conflictPct(p.counters.confFpQueue) +
                  p.counters.conflictPct(p.counters.confFpUnits)));
        }
        return out;
    }
};

/**
 * A balanced FP/integer instruction mix, measured over the whole
 * schedule as in the paper's Table 3 (whose Diversity column scores
 * the segregated schedule best -- which is why the paper finds the
 * predictor ineffective; see SliceDiversityPredictor for the repaired
 * variant this library adds as an extension).
 */
class DiversityPredictor : public Predictor
{
  public:
    std::string name() const override { return "Diversity"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(-p.counters.mixImbalance());
        return out;
    }
};

/**
 * Extension (not part of the paper's predictor set): diversity
 * evaluated per timeslice, so a schedule that alternates an FP-only
 * tuple with an integer-only tuple is correctly penalized even though
 * its aggregate mix looks balanced.
 */
class SliceDiversityPredictor : public Predictor
{
  public:
    std::string name() const override { return "SliceDiversity"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(-p.diversity());
        return out;
    }
};

/** Low variation of IPC between consecutive timeslices. */
class BalancePredictor : public Predictor
{
  public:
    std::string name() const override { return "Balance"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles)
            out.push_back(-p.balance());
        return out;
    }
};

/**
 * The paper's experimental fit:
 *
 *   0.9 / min(FQ/lowFQ, FP/lowFP, Sum2/lowSum2)  +  0.1 / Balance
 *
 * smoothness-dominated with weight on the critical FP resources (the
 * typeset formula in the paper is ambiguous; DESIGN.md records this
 * literal fractional reading).
 */
class CompositePredictor : public Predictor
{
  public:
    std::string name() const override { return "Composite"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        double low_fq = 1e300;
        double low_fp = 1e300;
        double low_sum2 = 1e300;
        for (const auto &p : profiles) {
            const double fq =
                p.counters.conflictPct(p.counters.confFpQueue);
            const double fp =
                p.counters.conflictPct(p.counters.confFpUnits);
            low_fq = std::min(low_fq, fq);
            low_fp = std::min(low_fp, fp);
            low_sum2 = std::min(low_sum2, fq + fp);
        }
        low_fq = std::max(low_fq, confFloor);
        low_fp = std::max(low_fp, confFloor);
        low_sum2 = std::max(low_sum2, confFloor);

        std::vector<double> out;
        out.reserve(profiles.size());
        for (const auto &p : profiles) {
            const double fq = std::max(
                p.counters.conflictPct(p.counters.confFpQueue), confFloor);
            const double fp = std::max(
                p.counters.conflictPct(p.counters.confFpUnits), confFloor);
            const double sum2 = std::max(fq + fp, confFloor);
            const double ratio = std::min(
                {fq / low_fq, fp / low_fp, sum2 / low_sum2});
            const double balance = std::max(p.balance(), balanceFloor);
            out.push_back(0.9 / ratio + 0.1 / balance);
        }
        return out;
    }
};

/**
 * Score: one vote per base predictor for its top-ranked schedule;
 * ties broken by the summed min-max-normalized goodness across all
 * base predictors ("relative magnitude of goodness").
 */
class ScorePredictor : public Predictor
{
  public:
    ScorePredictor() : components_(makeBasePredictors()) {}

    std::string name() const override { return "Score"; }

    std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const override
    {
        SOS_ASSERT(!profiles.empty());
        std::vector<double> votes(profiles.size(), 0.0);
        std::vector<double> magnitude(profiles.size(), 0.0);
        for (const auto &predictor : components_) {
            const std::vector<double> raw = predictor->score(profiles);
            const auto [mn_it, mx_it] =
                std::minmax_element(raw.begin(), raw.end());
            const double mn = *mn_it;
            const double span = *mx_it - mn;
            int best_index = 0;
            for (std::size_t i = 0; i < raw.size(); ++i) {
                if (raw[i] >
                    raw[static_cast<std::size_t>(best_index)]) {
                    best_index = static_cast<int>(i);
                }
                if (span > 0.0)
                    magnitude[i] += (raw[i] - mn) / span;
            }
            votes[static_cast<std::size_t>(best_index)] += 1.0;
        }
        // Fold normalized magnitude in below the quantum of one vote.
        const double tiebreak =
            0.5 / static_cast<double>(components_.size());
        for (std::size_t i = 0; i < votes.size(); ++i) {
            votes[i] += tiebreak * magnitude[i] /
                        static_cast<double>(components_.size());
        }
        return votes;
    }

  private:
    std::vector<std::unique_ptr<Predictor>> components_;
};

} // namespace

std::vector<std::unique_ptr<Predictor>>
makeBasePredictors()
{
    std::vector<std::unique_ptr<Predictor>> out;
    out.push_back(std::make_unique<IpcPredictor>());
    out.push_back(std::make_unique<AllConfPredictor>());
    out.push_back(std::make_unique<DcachePredictor>());
    out.push_back(std::make_unique<FqPredictor>());
    out.push_back(std::make_unique<FpPredictor>());
    out.push_back(std::make_unique<Sum2Predictor>());
    out.push_back(std::make_unique<DiversityPredictor>());
    out.push_back(std::make_unique<BalancePredictor>());
    out.push_back(std::make_unique<CompositePredictor>());
    return out;
}

std::unique_ptr<Predictor>
makeScorePredictor()
{
    return std::make_unique<ScorePredictor>();
}

std::vector<std::unique_ptr<Predictor>>
makeAllPredictors()
{
    std::vector<std::unique_ptr<Predictor>> out = makeBasePredictors();
    out.push_back(makeScorePredictor());
    return out;
}

std::unique_ptr<Predictor>
makePredictor(const std::string &name)
{
    if (name == "SliceDiversity")
        return std::make_unique<SliceDiversityPredictor>();
    for (auto &predictor : makeAllPredictors()) {
        if (predictor->name() == name)
            return std::move(predictor);
    }
    std::string known;
    for (const std::string &key : predictorNames()) {
        if (!known.empty())
            known += ", ";
        known += key;
    }
    fatal("unknown predictor '", name, "' (known: ", known, ")");
}

const std::vector<std::string> &
predictorNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> out;
        out.push_back("SliceDiversity");
        for (const auto &predictor : makeAllPredictors())
            out.push_back(predictor->name());
        return out;
    }();
    return names;
}

} // namespace sos
