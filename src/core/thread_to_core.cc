#include "thread_to_core.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sos {

namespace {

void
checkContext(const AllocationContext &ctx)
{
    SOS_ASSERT(ctx.numJobs >= 1 && ctx.numCores >= 1,
               "allocation needs jobs and cores");
    SOS_ASSERT(ctx.numJobs % ctx.numCores == 0,
               "allocation requires the cores to divide the jobs");
}

Partition
packInOrder(const std::vector<int> &jobs, int num_cores)
{
    const int group = static_cast<int>(jobs.size()) / num_cores;
    Partition out;
    for (int k = 0; k < num_cores; ++k) {
        std::vector<int> g(jobs.begin() + k * group,
                           jobs.begin() + (k + 1) * group);
        std::sort(g.begin(), g.end());
        out.push_back(std::move(g));
    }
    return out;
}

std::vector<int>
identityJobs(int n)
{
    std::vector<int> jobs(static_cast<std::size_t>(n));
    std::iota(jobs.begin(), jobs.end(), 0);
    return jobs;
}

class NaivePolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "naive"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        return packInOrder(identityJobs(ctx.numJobs), ctx.numCores);
    }
};

class RandomPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "random"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        std::vector<int> jobs = identityJobs(ctx.numJobs);
        Rng rng(ctx.seed ^ 0x7c0a110cULL);
        rng.shuffle(jobs);
        return packInOrder(jobs, ctx.numCores);
    }
};

/**
 * LPT greedy over solo IPC: visit jobs from the highest solo
 * instruction rate down, always placing onto the least-loaded core
 * with capacity left. No core ends up hoarding the fast jobs, so the
 * per-core ICOUNT pressure is as even as a greedy pass can make it.
 */
class BalancedIcountPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "balanced-icount"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        SOS_ASSERT(static_cast<int>(ctx.soloIpc.size()) == ctx.numJobs,
                   "balanced-icount needs a solo IPC per job");
        const int group = ctx.numJobs / ctx.numCores;

        std::vector<int> order = identityJobs(ctx.numJobs);
        std::stable_sort(order.begin(), order.end(),
                         [&ctx](int a, int b) {
                             return ctx.soloIpc[static_cast<std::size_t>(
                                        a)] >
                                    ctx.soloIpc[static_cast<std::size_t>(
                                        b)];
                         });

        Partition out(static_cast<std::size_t>(ctx.numCores));
        std::vector<double> load(static_cast<std::size_t>(ctx.numCores),
                                 0.0);
        for (const int job : order) {
            int best = -1;
            for (int k = 0; k < ctx.numCores; ++k) {
                if (static_cast<int>(out[static_cast<std::size_t>(k)]
                                         .size()) >= group) {
                    continue;
                }
                if (best < 0 || load[static_cast<std::size_t>(k)] <
                                    load[static_cast<std::size_t>(best)]) {
                    best = k;
                }
            }
            SOS_ASSERT(best >= 0, "capacity accounting broke");
            out[static_cast<std::size_t>(best)].push_back(job);
            load[static_cast<std::size_t>(best)] +=
                ctx.soloIpc[static_cast<std::size_t>(job)];
        }
        for (auto &g : out)
            std::sort(g.begin(), g.end());
        return out;
    }
};

/**
 * SYNPA-style counter-driven grouping: estimate a pair affinity from
 * the sample phase (mean WS of the machine schedules in which the
 * pair shared a core), then greedily build each core's group around
 * the jobs that measured best together. With no samples every
 * affinity is zero and the policy degenerates to naive packing --
 * the honest cold-start behaviour.
 */
class SynpaPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "synpa"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        const std::size_t n = static_cast<std::size_t>(ctx.numJobs);
        const int group = ctx.numJobs / ctx.numCores;

        // Mean sampled WS per coscheduled pair.
        std::vector<std::vector<double>> sum(n,
                                             std::vector<double>(n, 0.0));
        std::vector<std::vector<int>> cnt(n, std::vector<int>(n, 0));
        for (const CoscheduleSample &sample : ctx.samples) {
            for (const std::vector<int> &tuple : sample.tuples) {
                for (std::size_t i = 0; i < tuple.size(); ++i) {
                    for (std::size_t j = i + 1; j < tuple.size(); ++j) {
                        const auto a =
                            static_cast<std::size_t>(tuple[i]);
                        const auto b =
                            static_cast<std::size_t>(tuple[j]);
                        SOS_ASSERT(a < n && b < n,
                                   "sampled job outside the mix");
                        sum[a][b] += sample.ws;
                        sum[b][a] += sample.ws;
                        ++cnt[a][b];
                        ++cnt[b][a];
                    }
                }
            }
        }
        const auto affinity = [&](std::size_t a, std::size_t b) {
            return cnt[a][b] ? sum[a][b] / cnt[a][b] : 0.0;
        };

        std::vector<bool> placed(n, false);
        Partition out;
        for (int k = 0; k < ctx.numCores; ++k) {
            // Anchor each group on the lowest unplaced index, then add
            // the job with the best mean affinity to the group so far
            // (ties to the lowest index: deterministic).
            std::vector<int> g;
            for (std::size_t j = 0; j < n; ++j) {
                if (!placed[j]) {
                    g.push_back(static_cast<int>(j));
                    placed[j] = true;
                    break;
                }
            }
            while (static_cast<int>(g.size()) < group) {
                int best = -1;
                double best_score = 0.0;
                for (std::size_t j = 0; j < n; ++j) {
                    if (placed[j])
                        continue;
                    double score = 0.0;
                    for (const int member : g)
                        score += affinity(
                            static_cast<std::size_t>(member), j);
                    if (best < 0 || score > best_score) {
                        best = static_cast<int>(j);
                        best_score = score;
                    }
                }
                SOS_ASSERT(best >= 0, "ran out of jobs to place");
                g.push_back(best);
                placed[static_cast<std::size_t>(best)] = true;
            }
            std::sort(g.begin(), g.end());
            out.push_back(std::move(g));
        }
        return out;
    }
};

using PolicyFactory =
    std::function<std::unique_ptr<ThreadToCorePolicy>()>;

const std::map<std::string, PolicyFactory> &
registry()
{
    static const std::map<std::string, PolicyFactory> table = {
        {"naive", [] { return std::make_unique<NaivePolicy>(); }},
        {"random", [] { return std::make_unique<RandomPolicy>(); }},
        {"balanced-icount",
         [] { return std::make_unique<BalancedIcountPolicy>(); }},
        {"synpa", [] { return std::make_unique<SynpaPolicy>(); }},
    };
    return table;
}

} // namespace

std::unique_ptr<ThreadToCorePolicy>
makeThreadToCorePolicy(const std::string &name)
{
    const auto it = registry().find(name);
    if (it == registry().end()) {
        std::string known;
        for (const auto &[key, factory] : registry()) {
            if (!known.empty())
                known += ", ";
            known += key;
        }
        fatal("unknown thread-to-core policy '", name, "' (known: ",
              known, ")");
    }
    return it->second();
}

std::vector<std::string>
threadToCorePolicyNames()
{
    std::vector<std::string> names;
    for (const auto &[key, factory] : registry())
        names.push_back(key);
    return names;
}

} // namespace sos
