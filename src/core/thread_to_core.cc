#include "thread_to_core.hh"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>

#include "common/logging.hh"
#include "common/rng.hh"
#include "model/features.hh"

namespace sos {

namespace {

void
checkContext(const AllocationContext &ctx)
{
    SOS_ASSERT(ctx.numJobs >= 1 && ctx.numCores >= 1,
               "allocation needs jobs and cores");
    SOS_ASSERT(ctx.numJobs % ctx.numCores == 0,
               "allocation requires the cores to divide the jobs");
}

Partition
packInOrder(const std::vector<int> &jobs, int num_cores)
{
    const int group = static_cast<int>(jobs.size()) / num_cores;
    Partition out;
    for (int k = 0; k < num_cores; ++k) {
        std::vector<int> g(jobs.begin() + k * group,
                           jobs.begin() + (k + 1) * group);
        std::sort(g.begin(), g.end());
        out.push_back(std::move(g));
    }
    return out;
}

std::vector<int>
identityJobs(int n)
{
    std::vector<int> jobs(static_cast<std::size_t>(n));
    std::iota(jobs.begin(), jobs.end(), 0);
    return jobs;
}

class NaivePolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "naive"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        return packInOrder(identityJobs(ctx.numJobs), ctx.numCores);
    }
};

class RandomPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "random"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        std::vector<int> jobs = identityJobs(ctx.numJobs);
        Rng rng(ctx.seed ^ 0x7c0a110cULL);
        rng.shuffle(jobs);
        return packInOrder(jobs, ctx.numCores);
    }
};

/**
 * LPT greedy over solo IPC: visit jobs from the highest solo
 * instruction rate down, always placing onto the least-loaded core
 * with capacity left. No core ends up hoarding the fast jobs, so the
 * per-core ICOUNT pressure is as even as a greedy pass can make it.
 */
class BalancedIcountPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "balanced-icount"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        SOS_ASSERT(static_cast<int>(ctx.soloIpc.size()) == ctx.numJobs,
                   "balanced-icount needs a solo IPC per job");
        const int group = ctx.numJobs / ctx.numCores;

        std::vector<int> order = identityJobs(ctx.numJobs);
        std::stable_sort(order.begin(), order.end(),
                         [&ctx](int a, int b) {
                             return ctx.soloIpc[static_cast<std::size_t>(
                                        a)] >
                                    ctx.soloIpc[static_cast<std::size_t>(
                                        b)];
                         });

        Partition out(static_cast<std::size_t>(ctx.numCores));
        std::vector<double> load(static_cast<std::size_t>(ctx.numCores),
                                 0.0);
        for (const int job : order) {
            int best = -1;
            for (int k = 0; k < ctx.numCores; ++k) {
                if (static_cast<int>(out[static_cast<std::size_t>(k)]
                                         .size()) >= group) {
                    continue;
                }
                if (best < 0 || load[static_cast<std::size_t>(k)] <
                                    load[static_cast<std::size_t>(best)]) {
                    best = k;
                }
            }
            SOS_ASSERT(best >= 0, "capacity accounting broke");
            out[static_cast<std::size_t>(best)].push_back(job);
            load[static_cast<std::size_t>(best)] +=
                ctx.soloIpc[static_cast<std::size_t>(job)];
        }
        for (auto &g : out)
            std::sort(g.begin(), g.end());
        return out;
    }
};

/**
 * SYNPA-style counter-driven grouping: estimate a pair affinity from
 * the sample phase (mean WS of the machine schedules in which the
 * pair shared a core), then greedily build each core's group around
 * the jobs that measured best together. With no samples every
 * affinity is zero and the policy degenerates to naive packing --
 * the honest cold-start behaviour.
 */
/**
 * Rank cores by the capability of their class: mean per-class solo
 * IPC over the mix, descending (ties and missing per-class references
 * fall back to class id, then core index -- deterministic, and the
 * identity order on a homogeneous machine).
 */
std::vector<int>
coresByCapability(const AllocationContext &ctx)
{
    std::vector<int> cores = identityJobs(ctx.numCores);
    if (ctx.coreClass.empty())
        return cores;
    SOS_ASSERT(static_cast<int>(ctx.coreClass.size()) == ctx.numCores,
               "one class id per core required");
    const auto capability = [&ctx](int core) {
        const auto c =
            static_cast<std::size_t>(ctx.coreClass[
                static_cast<std::size_t>(core)]);
        if (c >= ctx.soloIpcByClass.size() ||
            ctx.soloIpcByClass[c].empty()) {
            return 0.0;
        }
        double sum = 0.0;
        for (const double ipc : ctx.soloIpcByClass[c])
            sum += ipc;
        return sum / static_cast<double>(ctx.soloIpcByClass[c].size());
    };
    std::stable_sort(cores.begin(), cores.end(),
                     [&](int a, int b) {
                         return capability(a) > capability(b);
                     });
    return cores;
}

/**
 * Big-core-first: visit jobs from the highest solo-IPC reference down
 * and pack them onto cores in capability order, so the jobs with the
 * most instruction throughput to lose get the most capable cores.
 * On a homogeneous machine this is IPC-sorted in-order packing.
 */
class BigCoreFirstPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "big-core-first"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        SOS_ASSERT(static_cast<int>(ctx.soloIpc.size()) == ctx.numJobs,
                   "big-core-first needs a solo IPC per job");
        const int group = ctx.numJobs / ctx.numCores;

        std::vector<int> order = identityJobs(ctx.numJobs);
        std::stable_sort(order.begin(), order.end(),
                         [&ctx](int a, int b) {
                             return ctx.soloIpc[static_cast<std::size_t>(
                                        a)] >
                                    ctx.soloIpc[static_cast<std::size_t>(
                                        b)];
                         });

        const std::vector<int> cores = coresByCapability(ctx);
        Partition out(static_cast<std::size_t>(ctx.numCores));
        for (int k = 0; k < ctx.numCores; ++k) {
            const auto core =
                static_cast<std::size_t>(cores[static_cast<std::size_t>(k)]);
            out[core].assign(order.begin() + k * group,
                             order.begin() + (k + 1) * group);
            std::sort(out[core].begin(), out[core].end());
        }
        return out;
    }
};

class SynpaPolicy : public ThreadToCorePolicy
{
  public:
    std::string name() const override { return "synpa"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        checkContext(ctx);
        const std::size_t n = static_cast<std::size_t>(ctx.numJobs);
        const int group = ctx.numJobs / ctx.numCores;

        // Mean sampled WS per coscheduled pair (the shared
        // PairAffinity table, model/features.hh).
        model::PairAffinity table(n);
        for (const CoscheduleSample &sample : ctx.samples) {
            for (const std::vector<int> &tuple : sample.tuples) {
                for (const int job : tuple) {
                    SOS_ASSERT(static_cast<std::size_t>(job) < n,
                               "sampled job outside the mix");
                }
                table.observe(tuple, sample.ws);
            }
        }
        const auto affinity = [&table](std::size_t a, std::size_t b) {
            return table.mean(a, b);
        };

        std::vector<bool> placed(n, false);
        Partition out;
        for (int k = 0; k < ctx.numCores; ++k) {
            // Anchor each group on the lowest unplaced index, then add
            // the job with the best mean affinity to the group so far
            // (ties to the lowest index: deterministic).
            std::vector<int> g;
            for (std::size_t j = 0; j < n; ++j) {
                if (!placed[j]) {
                    g.push_back(static_cast<int>(j));
                    placed[j] = true;
                    break;
                }
            }
            while (static_cast<int>(g.size()) < group) {
                int best = -1;
                double best_score = 0.0;
                for (std::size_t j = 0; j < n; ++j) {
                    if (placed[j])
                        continue;
                    double score = 0.0;
                    for (const int member : g)
                        score += affinity(
                            static_cast<std::size_t>(member), j);
                    if (best < 0 || score > best_score) {
                        best = static_cast<int>(j);
                        best_score = score;
                    }
                }
                SOS_ASSERT(best >= 0, "ran out of jobs to place");
                g.push_back(best);
                placed[static_cast<std::size_t>(best)] = true;
            }
            std::sort(g.begin(), g.end());
            out.push_back(std::move(g));
        }
        return out;
    }
};

/**
 * SYNPA crossed with core classes: groups still form from sampled
 * pair affinities (exactly SynpaPolicy's greedy), but instead of
 * landing on cores in anchor order, the groups with the highest
 * aggregate solo-IPC demand are placed on the most capable core
 * class.  On a homogeneous machine the capability order is the
 * identity, so only the demand reordering differs from "synpa".
 */
class SynpaClassPolicy : public SynpaPolicy
{
  public:
    std::string name() const override { return "synpa-class"; }

    Partition
    allocate(const AllocationContext &ctx) const override
    {
        const Partition groups = SynpaPolicy::allocate(ctx);

        const auto demand = [&ctx](const std::vector<int> &g) {
            if (static_cast<int>(ctx.soloIpc.size()) != ctx.numJobs)
                return 0.0;
            double sum = 0.0;
            for (const int job : g)
                sum += ctx.soloIpc[static_cast<std::size_t>(job)];
            return sum;
        };
        std::vector<int> order = identityJobs(ctx.numCores);
        std::stable_sort(order.begin(), order.end(),
                         [&](int a, int b) {
                             return demand(groups[static_cast<std::size_t>(
                                        a)]) >
                                    demand(groups[static_cast<std::size_t>(
                                        b)]);
                         });

        const std::vector<int> cores = coresByCapability(ctx);
        Partition out(static_cast<std::size_t>(ctx.numCores));
        for (int k = 0; k < ctx.numCores; ++k) {
            out[static_cast<std::size_t>(
                cores[static_cast<std::size_t>(k)])] =
                groups[static_cast<std::size_t>(
                    order[static_cast<std::size_t>(k)])];
        }
        return out;
    }
};

using PolicyFactory =
    std::function<std::unique_ptr<ThreadToCorePolicy>()>;

const std::map<std::string, PolicyFactory> &
registry()
{
    static const std::map<std::string, PolicyFactory> table = {
        {"naive", [] { return std::make_unique<NaivePolicy>(); }},
        {"random", [] { return std::make_unique<RandomPolicy>(); }},
        {"balanced-icount",
         [] { return std::make_unique<BalancedIcountPolicy>(); }},
        {"synpa", [] { return std::make_unique<SynpaPolicy>(); }},
        {"big-core-first",
         [] { return std::make_unique<BigCoreFirstPolicy>(); }},
        {"synpa-class",
         [] { return std::make_unique<SynpaClassPolicy>(); }},
    };
    return table;
}

} // namespace

std::unique_ptr<ThreadToCorePolicy>
makeThreadToCorePolicy(const std::string &name)
{
    const auto it = registry().find(name);
    if (it == registry().end()) {
        std::string known;
        for (const auto &[key, factory] : registry()) {
            if (!known.empty())
                known += ", ";
            known += key;
        }
        fatal("unknown thread-to-core policy '", name, "' (known: ",
              known, ")");
    }
    return it->second();
}

std::vector<std::string>
threadToCorePolicyNames()
{
    std::vector<std::string> names;
    for (const auto &[key, factory] : registry())
        names.push_back(key);
    return names;
}

} // namespace sos
