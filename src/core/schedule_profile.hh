/**
 * @file
 * What the sample phase learns about one schedule.
 */

#ifndef SOS_CORE_SCHEDULE_PROFILE_HH
#define SOS_CORE_SCHEDULE_PROFILE_HH

#include <string>
#include <vector>

#include "common/stats_util.hh"
#include "cpu/perf_counters.hh"

namespace sos {

/**
 * Counter snapshot gathered while one candidate schedule ran during
 * the sample phase. This is all a predictor may look at: the paper's
 * scheduler has no advance knowledge of the workload, only what the
 * hardware counters reveal.
 */
struct ScheduleProfile
{
    /** Paper-style schedule label (e.g. "012_345"). */
    std::string label;

    /** Counters accumulated over the schedule's sample run. */
    PerfCounters counters;

    /** IPC of each timeslice, in order (the Balance signal). */
    std::vector<double> sliceIpc;

    /**
     * FP/integer mix imbalance of each timeslice (the Diversity
     * signal). The paper asks for a diverse mix "in all of its
     * timeslices": aggregated over a whole period, a segregated
     * schedule would look deceptively balanced.
     */
    std::vector<double> sliceMixImbalance;

    /**
     * Weighted speedup observed during the sample itself. Recorded
     * for reporting; predictors other than those defined on it do not
     * consult it.
     */
    double sampleWs = 0.0;

    /**
     * True when this profile came from detail simulation. The samplek
     * screen (see SimConfig::samplek) fills the skipped candidates
     * with synthetic profiles (model-predicted sampleWs, no counters)
     * so candidate indices stay stable; predictors only ever score
     * the detailed ones.
     */
    bool detailed = true;

    /** Standard deviation of per-timeslice IPC (lower = smoother). */
    double
    balance() const
    {
        return stddev(sliceIpc);
    }

    /**
     * Mean per-timeslice mix imbalance (lower = more diverse); falls
     * back to the aggregate imbalance when no slice data is present.
     */
    double
    diversity() const
    {
        if (sliceMixImbalance.empty())
            return counters.mixImbalance();
        return mean(sliceMixImbalance);
    }
};

} // namespace sos

#endif // SOS_CORE_SCHEDULE_PROFILE_HH
