#include "core/resample_policy.hh"

namespace sos {

namespace {

/** The paper's exponential-backoff timer (Section 9). */
class BackoffTimer : public ResampleTimer
{
  public:
    explicit BackoffTimer(std::uint64_t base_interval)
        : policy_(base_interval)
    {
    }

    std::string name() const override { return "backoff"; }
    std::uint64_t baseInterval() const override
    {
        return policy_.baseInterval();
    }
    std::uint64_t symbiosDuration() const override
    {
        return policy_.symbiosDuration();
    }
    void onJobChange() override { policy_.onJobChange(); }
    void
    onTimerSample(bool prediction_changed) override
    {
        policy_.onTimerSample(prediction_changed);
    }

  private:
    ResamplePolicy policy_;
};

/** Constant symbios duration: resample at a fixed cadence. */
class FixedTimer : public ResampleTimer
{
  public:
    explicit FixedTimer(std::uint64_t base_interval)
        : base_(base_interval)
    {
        SOS_ASSERT(base_interval > 0);
    }

    std::string name() const override { return "fixed"; }
    std::uint64_t baseInterval() const override { return base_; }
    std::uint64_t symbiosDuration() const override { return base_; }
    void onJobChange() override {}
    void onTimerSample(bool) override {}

  private:
    std::uint64_t base_;
};

} // namespace

std::unique_ptr<ResampleTimer>
makeResamplePolicy(const std::string &name,
                   std::uint64_t base_interval)
{
    if (name == "backoff")
        return std::make_unique<BackoffTimer>(base_interval);
    if (name == "fixed")
        return std::make_unique<FixedTimer>(base_interval);
    std::string known;
    for (const std::string &key : resamplePolicyNames()) {
        if (!known.empty())
            known += ", ";
        known += key;
    }
    fatal("unknown resample policy '", name, "' (known: ", known,
          ")");
}

const std::vector<std::string> &
resamplePolicyNames()
{
    static const std::vector<std::string> names = {"backoff",
                                                   "fixed"};
    return names;
}

} // namespace sos
