/**
 * @file
 * Thread-to-core allocation policies for the machine model.
 *
 * On a CMP of SMT cores the OS faces a choice the single-core paper
 * does not have: which jobs share a core at all. Jobs on one core
 * interact through every pipeline resource; jobs on different cores
 * only through the shared L2. A ThreadToCorePolicy picks the
 * partition of jobs onto cores; the per-core schedule spaces then
 * apply unchanged (see MachineScheduleSpace).
 *
 * The family is string-keyed so experiments and benches select
 * policies by name, mirroring predictor selection:
 *
 *  - "naive":           pack jobs onto cores in index order (what an
 *                       SOS-oblivious OS would do);
 *  - "random":          a seeded uniform partition;
 *  - "balanced-icount": LPT greedy balancing the jobs' solo
 *                       instruction throughput across cores, so no
 *                       core hoards the high-ICOUNT jobs;
 *  - "synpa":           counter-driven, SYNPA-style: build pair
 *                       affinities from sample-phase coschedule
 *                       measurements and greedily group jobs that
 *                       measured well together (falls back to naive
 *                       packing when no samples exist yet);
 *  - "big-core-first":  heterogeneity-aware: rank core classes by
 *                       their measured per-class solo IPC and hand
 *                       the highest-reference jobs to the most
 *                       capable cores (degenerates to IPC-sorted
 *                       packing on a homogeneous machine);
 *  - "synpa-class":     SYNPA affinity grouping crossed with core
 *                       classes: groups form from sampled pair
 *                       affinities, then the most demanding groups
 *                       land on the most capable core class.
 */

#ifndef SOS_CORE_THREAD_TO_CORE_HH
#define SOS_CORE_THREAD_TO_CORE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/combinatorics.hh"

namespace sos {

/** One sample-phase observation: who ran together, and how well. */
struct CoscheduleSample
{
    /** Coschedule tuples of the sampled machine schedule's period. */
    std::vector<std::vector<int>> tuples;

    /** Weighted speedup measured while that schedule ran. */
    double ws = 0.0;
};

/** Everything a policy may consult when placing jobs on cores. */
struct AllocationContext
{
    int numJobs = 0;
    int numCores = 0;

    /** Solo IPC per job (calibrated); required by balanced-icount. */
    std::vector<double> soloIpc;

    /** Sample-phase measurements; consulted by synpa. */
    std::vector<CoscheduleSample> samples;

    /** Deterministic seed; consulted by random. */
    std::uint64_t seed = 0;

    /**
     * Per-core equivalence class (MachineParams::coreClasses); empty
     * on homogeneous machines.  Consulted by the heterogeneity-aware
     * policies, which must know *which* core a group lands on.
     */
    std::vector<int> coreClass;

    /**
     * Solo IPC per job as measured on each core class:
     * soloIpcByClass[c][j] is job j's reference on a class-c core.
     * Empty on homogeneous machines (soloIpc suffices).  The spread
     * across classes is what ranks big cores above little ones.
     */
    std::vector<std::vector<double>> soloIpcByClass;
};

/** Places jobs onto cores: one group of job indices per core. */
class ThreadToCorePolicy
{
  public:
    virtual ~ThreadToCorePolicy() = default;

    /** Registry key, e.g. "balanced-icount". */
    virtual std::string name() const = 0;

    /**
     * Partition {0..numJobs-1} into numCores groups of equal size
     * (numCores must divide numJobs), groups sorted ascending.
     * Group k is core k's group -- on a heterogeneous machine the
     * order is the placement.  Deterministic for a given context.
     */
    virtual Partition allocate(const AllocationContext &ctx) const = 0;
};

/**
 * Instantiate a policy by registry key; fatal() on an unknown name
 * (the message lists the known keys).
 */
std::unique_ptr<ThreadToCorePolicy>
makeThreadToCorePolicy(const std::string &name);

/** All registry keys, sorted. */
std::vector<std::string> threadToCorePolicyNames();

} // namespace sos

#endif // SOS_CORE_THREAD_TO_CORE_HH
