#include "core/learned_predictor.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace sos {

LearnedPredictor::LearnedPredictor()
{
    const char *path = std::getenv("SOS_MODEL");
    if (path == nullptr || *path == '\0')
        return; // inert until a model arrives
    try {
        model_ = model::loadModel(path);
    } catch (const model::ModelError &error) {
        fatal("SOS_MODEL: ", error.what());
    }
}

LearnedPredictor::LearnedPredictor(
    std::shared_ptr<const model::WsModel> ws_model)
    : model_(std::move(ws_model))
{
}

void
LearnedPredictor::setCandidateFeatures(
    std::vector<model::FeatureVector> features)
{
    features_ = std::move(features);
}

std::vector<double>
LearnedPredictor::score(const std::vector<ScheduleProfile> &profiles) const
{
    if (!model_) {
        fatal("the 'learned' predictor needs a model: set SOS_MODEL or "
              "pass --model");
    }
    if (features_.size() != profiles.size()) {
        fatal("the 'learned' predictor has features for ",
              features_.size(), " candidates but was asked to rank ",
              profiles.size(),
              " (the driver must call setCandidateFeatures first)");
    }
    std::vector<double> out;
    out.reserve(features_.size());
    for (const model::FeatureVector &features : features_)
        out.push_back(model_->predict(features));
    return out;
}

} // namespace sos
