/**
 * @file
 * When should SOS leave the symbios phase and resample? (Section 9.)
 *
 * Three events trigger a new sample phase: a job arrival, a job
 * departure, or expiry of the symbiosis-phase timer. The timer starts
 * at a base interval (the paper uses the mean interarrival time); if
 * it expires and the fresh sample yields the *same* prediction as
 * before, the interval doubles (exponential backoff) -- a stable
 * jobmix is sampled ever less often. Any job change, or a changed
 * prediction, resets the interval to its base value.
 */

#ifndef SOS_CORE_RESAMPLE_POLICY_HH
#define SOS_CORE_RESAMPLE_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace sos {

/** Exponential-backoff resampling timer. */
class ResamplePolicy
{
  public:
    /** @param base_interval Initial symbios duration in cycles. */
    explicit ResamplePolicy(std::uint64_t base_interval)
        : base_(base_interval), current_(base_interval)
    {
        SOS_ASSERT(base_interval > 0);
    }

    /** Cycles the current symbios phase should run before resampling. */
    std::uint64_t symbiosDuration() const { return current_; }

    /** A job arrived or departed: resample immediately, reset backoff. */
    void
    onJobChange()
    {
        current_ = base_;
    }

    /**
     * A timer-triggered sample completed.
     *
     * @param prediction_changed True if the new best schedule differs
     *        from the previous one.
     */
    void
    onTimerSample(bool prediction_changed)
    {
        if (prediction_changed) {
            current_ = base_;
        } else {
            // Cap the doubling well below overflow.
            if (current_ < (std::uint64_t{1} << 60))
                current_ *= 2;
        }
    }

    std::uint64_t baseInterval() const { return base_; }

  private:
    std::uint64_t base_;
    std::uint64_t current_;
};

/**
 * A named resampling timer behind the registry. "backoff" wraps
 * ResamplePolicy (the paper's policy, the default); "fixed" keeps a
 * constant symbios duration for ablations.
 */
class ResampleTimer
{
  public:
    virtual ~ResampleTimer() = default;

    virtual std::string name() const = 0;

    /** The configured base symbios interval in cycles. */
    virtual std::uint64_t baseInterval() const = 0;

    /** Cycles the current symbios phase runs before resampling. */
    virtual std::uint64_t symbiosDuration() const = 0;

    /** A job arrived or departed. */
    virtual void onJobChange() = 0;

    /** A timer-triggered sample completed; did the pick change? */
    virtual void onTimerSample(bool prediction_changed) = 0;
};

/**
 * Build a resample timer by registry name; fatal() -- listing the
 * registered names -- when @p name is unknown.
 */
std::unique_ptr<ResampleTimer>
makeResamplePolicy(const std::string &name,
                   std::uint64_t base_interval);

/** Names makeResamplePolicy() accepts, in registry order. */
const std::vector<std::string> &resamplePolicyNames();

} // namespace sos

#endif // SOS_CORE_RESAMPLE_POLICY_HH
