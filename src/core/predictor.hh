/**
 * @file
 * Schedule-goodness predictors (the heart of SOS's symbios phase).
 *
 * After the sample phase has profiled a set of candidate schedules,
 * a Predictor ranks them; SOS then runs the top-ranked schedule for
 * the symbios phase. The paper evaluates nine predictors (Section 5)
 * plus Score, a majority vote over the others.
 */

#ifndef SOS_CORE_PREDICTOR_HH
#define SOS_CORE_PREDICTOR_HH

#include <memory>
#include <string>
#include <vector>

#include "core/schedule_profile.hh"

namespace sos {

/** Ranks sampled schedules; higher score = predicted better. */
class Predictor
{
  public:
    virtual ~Predictor() = default;

    /** Name as used in the paper's Table 3 / Figure 2. */
    virtual std::string name() const = 0;

    /**
     * Goodness score per profile (higher is better). Scores are only
     * comparable within one call: predictors like Composite normalize
     * against the best value observed across the sampled set.
     */
    virtual std::vector<double>
    score(const std::vector<ScheduleProfile> &profiles) const = 0;

    /** Index of the predicted-best profile (ties: lowest index). */
    int best(const std::vector<ScheduleProfile> &profiles) const;
};

/**
 * The paper's individual predictors, in Table 3 column order:
 * IPC, AllConf, Dcache, FQ, FP, Sum2, Diversity, Balance, Composite.
 */
std::vector<std::unique_ptr<Predictor>> makeBasePredictors();

/**
 * The Score predictor: each base predictor casts a vote for its best
 * schedule; most votes wins, with ties broken by the relative
 * magnitude of predicted goodness.
 */
std::unique_ptr<Predictor> makeScorePredictor();

/** All ten predictors, Score last. */
std::vector<std::unique_ptr<Predictor>> makeAllPredictors();

/**
 * Look up one predictor by its paper name; fatal() if unknown. Also
 * resolves "SliceDiversity", this library's per-timeslice repair of
 * the paper's (ineffective) aggregate Diversity predictor.
 */
std::unique_ptr<Predictor> makePredictor(const std::string &name);

/** Names makePredictor() accepts, in lookup order. */
const std::vector<std::string> &predictorNames();

} // namespace sos

#endif // SOS_CORE_PREDICTOR_HH
