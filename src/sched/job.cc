#include "job.hh"

#include "common/logging.hh"
#include "common/rng.hh"

namespace sos {

Job::Job(std::uint32_t id, const WorkloadProfile &profile,
         std::uint64_t seed, int num_threads, bool adaptive)
    : id_(id), profile_(&profile), seed_(seed), adaptive_(adaptive)
{
    SOS_ASSERT(num_threads >= 1);
    spawnThreads(num_threads);
}

Job::Job(const Job &other)
    : arrivalCycle(other.arrivalCycle),
      completionCycle(other.completionCycle),
      sizeInstructions(other.sizeInstructions),
      finished(other.finished), soloIpc(other.soloIpc), id_(other.id_),
      profile_(other.profile_), seed_(other.seed_),
      adaptive_(other.adaptive_), retired_(other.retired_),
      residentCycles_(other.residentCycles_)
{
    threads_.reserve(other.threads_.size());
    for (const auto &thread : other.threads_)
        threads_.push_back(std::make_unique<TraceGenerator>(*thread));
    if (other.sync_)
        sync_ = std::make_unique<SyncDomain>(*other.sync_);
}

void
Job::spawnThreads(int num_threads)
{
    threads_.clear();
    for (int t = 0; t < num_threads; ++t) {
        // Siblings share the program (code seed) but not the data
        // stream: they execute the same binary over different work.
        threads_.push_back(std::make_unique<TraceGenerator>(
            *profile_, seed_,
            seed_ ^ mix64(static_cast<std::uint64_t>(t) + 1)));
    }
    // Any synchronizing workload needs a domain, even single-threaded
    // (a lone thread's barriers complete immediately).
    if (profile_->syncInterval > 0)
        sync_ = std::make_unique<SyncDomain>(num_threads);
    else
        sync_.reset();
}

TraceGenerator &
Job::generator(int thread)
{
    SOS_ASSERT(thread >= 0 && thread < numThreads(), "bad thread index");
    return *threads_[static_cast<std::size_t>(thread)];
}

void
Job::setThreadCount(int num_threads)
{
    SOS_ASSERT(adaptive_, "only adaptive jobs can be re-spawned");
    SOS_ASSERT(num_threads >= 1);
    if (num_threads == numThreads())
        return;
    spawnThreads(num_threads);
}

void
Job::addRetired(std::uint64_t instructions)
{
    retired_ += instructions;
}

void
Job::addResidentCycles(std::uint64_t cycles)
{
    residentCycles_ += cycles;
}

} // namespace sos
