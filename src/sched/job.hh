/**
 * @file
 * Jobs and schedulable thread units.
 *
 * A Job is one workload instance. Sequential jobs have one thread;
 * parallel jobs (the paper's ARRAY) have several threads that share an
 * address space and a barrier domain but are scheduled as individual
 * units -- whether to coschedule them is precisely the decision the
 * paper studies in Section 6. Adaptive jobs (mt_* in Section 7) can
 * be re-spawned with any thread count, modelling an MTA-style compiler
 * that adapts to however many hardware contexts the scheduler grants.
 */

#ifndef SOS_SCHED_JOB_HH
#define SOS_SCHED_JOB_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cpu/sync_domain.hh"
#include "trace/trace_generator.hh"
#include "trace/workload_profile.hh"

namespace sos {

/** One workload instance owned by the system. */
class Job
{
  public:
    /**
     * Create a job.
     *
     * @param id Unique job id (also its ASID).
     * @param profile Workload model (must outlive the job).
     * @param seed Base seed; threads derive their own streams from it.
     * @param num_threads Software threads (>= 1).
     * @param adaptive True if the thread count may be changed by the
     *        scheduler (hierarchical symbiosis).
     */
    Job(std::uint32_t id, const WorkloadProfile &profile,
        std::uint64_t seed, int num_threads = 1, bool adaptive = false);

    /**
     * Snapshot copy: clones the generators (mid-stream) and the sync
     * domain along with all progress accounting, so the copy resumes
     * exactly where @p other stood.
     */
    Job(const Job &other);

    std::uint32_t id() const { return id_; }
    const std::string &name() const { return profile_->name; }
    const WorkloadProfile &profile() const { return *profile_; }
    std::uint16_t asid() const { return static_cast<std::uint16_t>(id_); }

    int numThreads() const { return static_cast<int>(threads_.size()); }
    bool adaptive() const { return adaptive_; }
    bool parallel() const { return numThreads() > 1 || adaptive_; }

    /** Instruction stream of one thread. */
    TraceGenerator &generator(int thread);

    /** Barrier domain; nullptr when the job never synchronizes. */
    SyncDomain *syncDomain() { return sync_.get(); }

    /**
     * Re-spawn the job with a different thread count (adaptive jobs
     * only). Progress already made is kept; generators restart.
     */
    void setThreadCount(int num_threads);

    /** @name Progress accounting @{ */
    void addRetired(std::uint64_t instructions);
    std::uint64_t retired() const { return retired_; }

    /** Cycles during which the job had at least one thread scheduled. */
    void addResidentCycles(std::uint64_t cycles);
    std::uint64_t residentCycles() const { return residentCycles_; }
    /** @} */

    /** @name Open-system bookkeeping (Section 9) @{ */
    std::uint64_t arrivalCycle = 0;
    std::uint64_t completionCycle = 0;
    std::uint64_t sizeInstructions = 0; ///< retire this many, then done
    bool finished = false;
    /** @} */

    /**
     * Reference IPC of the job running alone with its current thread
     * count (the weighted-speedup denominator); set by the Calibrator.
     */
    double soloIpc = 0.0;

  private:
    void spawnThreads(int num_threads);

    std::uint32_t id_;
    const WorkloadProfile *profile_;
    std::uint64_t seed_;
    bool adaptive_;
    std::vector<std::unique_ptr<TraceGenerator>> threads_;
    std::unique_ptr<SyncDomain> sync_;
    std::uint64_t retired_ = 0;
    std::uint64_t residentCycles_ = 0;
};

/** Reference to one schedulable unit: a specific thread of a job. */
struct ThreadRef
{
    Job *job = nullptr;
    int thread = 0;

    bool
    operator==(const ThreadRef &other) const
    {
        return job == other.job && thread == other.thread;
    }
};

} // namespace sos

#endif // SOS_SCHED_JOB_HH
