#include "schedule.hh"

#include <algorithm>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sos {

namespace {

std::string
formatTuple(const std::vector<int> &tuple, bool wide)
{
    std::string out;
    for (std::size_t i = 0; i < tuple.size(); ++i) {
        if (wide && i > 0)
            out += '.';
        out += std::to_string(tuple[i]);
    }
    return out;
}

bool
anyWide(const std::vector<std::vector<int>> &tuples)
{
    for (const auto &tuple : tuples) {
        for (int j : tuple) {
            if (j > 9)
                return true;
        }
    }
    return false;
}

std::string
formatTuples(const std::vector<std::vector<int>> &tuples)
{
    const bool wide = anyWide(tuples); // consistent across the label
    std::string out;
    for (std::size_t i = 0; i < tuples.size(); ++i) {
        if (i > 0)
            out += '_';
        out += formatTuple(tuples[i], wide);
    }
    return out;
}

} // namespace

Schedule
Schedule::fromPartition(const Partition &partition)
{
    SOS_ASSERT(!partition.empty());
    Schedule s;
    const Partition canon = canonicalPartition(partition);
    s.tuples_.assign(canon.begin(), canon.end());
    s.label_ = formatTuples(s.tuples_);
    s.key_ = "P:" + s.label_;
    return s;
}

Schedule
Schedule::fromRotation(const std::vector<int> &order, int window, int step)
{
    const int x = static_cast<int>(order.size());
    SOS_ASSERT(x >= 2 && window >= 1 && window <= x);
    SOS_ASSERT(step >= 1 && step <= window);
    // Fairness precondition: window starts fall on multiples of
    // gcd(x, step); every job is covered by the same number of windows
    // exactly when that gcd divides the window size.
    SOS_ASSERT(window % gcdInt(x, step) == 0,
               "rotation J(X,Y,Z) is unfair unless gcd(X,Z) divides Y");
    Schedule s;
    const std::vector<int> canon =
        x >= 3 ? canonicalCircular(order) : order;
    const int period = x / gcdInt(x, step);
    for (int t = 0; t < period; ++t) {
        std::vector<int> tuple;
        tuple.reserve(static_cast<std::size_t>(window));
        for (int j = 0; j < window; ++j)
            tuple.push_back(
                canon[static_cast<std::size_t>((t * step + j) % x)]);
        s.tuples_.push_back(std::move(tuple));
    }
    s.label_ = formatTuples(s.tuples_);
    s.key_ = "R:" + formatTuple(canon, anyWide({canon})) + ":" +
             std::to_string(window) +
             ":" + std::to_string(step);
    return s;
}

int
Schedule::appearancesPerPeriod(int job) const
{
    int n = 0;
    for (const auto &tuple : tuples_)
        n += static_cast<int>(
            std::count(tuple.begin(), tuple.end(), job));
    return n;
}

ScheduleSpace::ScheduleSpace(int num_jobs, int level, int swap)
    : numJobs_(num_jobs), level_(level), swap_(swap)
{
    SOS_ASSERT(num_jobs >= 1, "need at least one job");
    SOS_ASSERT(level >= 1, "need at least one context");
    SOS_ASSERT(swap >= 1 && swap <= level, "1 <= Z <= Y required");
    SOS_ASSERT(num_jobs >= level, "fewer jobs than contexts: trivial");
    fullSwap_ = (swap == level) && (num_jobs % level == 0);
}

std::uint64_t
ScheduleSpace::distinctCount() const
{
    if (numJobs_ == level_)
        return 1; // everything runs together; nothing to choose
    // Beyond ~20 jobs the exact count overflows 64 bits; sampling
    // code only needs "far more than we would ever sample".
    if (numJobs_ > 20)
        return ~std::uint64_t{0};
    if (fullSwap_)
        return equalPartitionCount(numJobs_, level_);
    if (numJobs_ < 3)
        return 1;
    return circularOrderCount(numJobs_);
}

std::uint64_t
ScheduleSpace::periodTimeslices() const
{
    if (numJobs_ == level_)
        return 1;
    if (fullSwap_)
        return static_cast<std::uint64_t>(numJobs_ / level_);
    return static_cast<std::uint64_t>(numJobs_ /
                                      gcdInt(numJobs_, swap_));
}

std::vector<Schedule>
ScheduleSpace::enumerateAll(std::uint64_t limit) const
{
    const std::uint64_t count = distinctCount();
    if (count > limit) {
        fatal("schedule space of ", count,
              " schedules exceeds the enumeration limit of ", limit);
    }
    std::vector<Schedule> out;
    if (numJobs_ == level_) {
        std::vector<int> everyone(static_cast<std::size_t>(numJobs_));
        for (int j = 0; j < numJobs_; ++j)
            everyone[static_cast<std::size_t>(j)] = j;
        out.push_back(Schedule::fromPartition({everyone}));
        return out;
    }
    if (fullSwap_) {
        for (const Partition &p :
             enumerateEqualPartitions(numJobs_, level_))
            out.push_back(Schedule::fromPartition(p));
        return out;
    }
    for (const auto &order : enumerateCircularOrders(numJobs_))
        out.push_back(Schedule::fromRotation(order, level_, swap_));
    return out;
}

Schedule
ScheduleSpace::random(Rng &rng) const
{
    if (numJobs_ == level_)
        return enumerateAll().front();
    if (fullSwap_) {
        return Schedule::fromPartition(
            randomEqualPartition(numJobs_, level_, rng));
    }
    return Schedule::fromRotation(randomCircularOrder(numJobs_, rng),
                                  level_, swap_);
}

std::vector<Schedule>
ScheduleSpace::sample(int count, Rng &rng) const
{
    SOS_ASSERT(count >= 1);
    const std::uint64_t total = distinctCount();
    if (total <= static_cast<std::uint64_t>(count))
        return enumerateAll();

    std::vector<Schedule> out;
    std::set<std::string> seen;
    // Rejection sampling over canonical keys; the spaces involved are
    // far larger than the sample, so collisions are rare.
    while (out.size() < static_cast<std::size_t>(count)) {
        Schedule s = random(rng);
        if (seen.insert(s.key()).second)
            out.push_back(std::move(s));
    }
    return out;
}

} // namespace sos
