#include "machine_schedule.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sos {

namespace {

/** Map a local partition of {0..g-1} through a sorted group. */
Schedule
scheduleFromLocalPartition(const Partition &local,
                           const std::vector<int> &group)
{
    Partition mapped;
    mapped.reserve(local.size());
    for (const std::vector<int> &tuple : local)
        mapped.push_back(mapThroughGroup(tuple, group));
    return Schedule::fromPartition(mapped);
}

/** Every distinct schedule of one core's (sorted) group. */
std::vector<Schedule>
groupSchedules(const std::vector<int> &group, int level, int swap)
{
    const int g = static_cast<int>(group.size());
    if (g == level)
        return {Schedule::fromPartition({group})};
    const ScheduleSpace local(g, level, swap);
    std::vector<Schedule> out;
    if (local.fullSwap()) {
        for (const Partition &p : enumerateEqualPartitions(g, level))
            out.push_back(scheduleFromLocalPartition(p, group));
        return out;
    }
    for (const std::vector<int> &order : enumerateCircularOrders(g)) {
        out.push_back(Schedule::fromRotation(
            mapThroughGroup(order, group), level, swap));
    }
    return out;
}

/** One uniformly random schedule of one core's (sorted) group. */
Schedule
randomGroupSchedule(const std::vector<int> &group, int level, int swap,
                    Rng &rng)
{
    const int g = static_cast<int>(group.size());
    if (g == level)
        return Schedule::fromPartition({group});
    const ScheduleSpace local(g, level, swap);
    if (local.fullSwap()) {
        return scheduleFromLocalPartition(
            randomEqualPartition(g, level, rng), group);
    }
    return Schedule::fromRotation(
        mapThroughGroup(randomCircularOrder(g, rng), group), level,
        swap);
}

std::vector<int>
sortedGroup(const std::vector<int> &group)
{
    std::vector<int> s = group;
    std::sort(s.begin(), s.end());
    return s;
}

} // namespace

MachineSchedule::MachineSchedule(Partition allocation,
                                 std::vector<Schedule> per_core)
    : allocation_(std::move(allocation)), perCore_(std::move(per_core))
{
    SOS_ASSERT(!perCore_.empty(), "machine schedule needs cores");
    SOS_ASSERT(allocation_.size() == perCore_.size(),
               "one group per core required");
    for (std::size_t k = 0; k < perCore_.size(); ++k) {
        SOS_ASSERT(!allocation_[k].empty(), "a core with no jobs");
        SOS_ASSERT(perCore_[k].valid(), "invalid per-core schedule");
        if (k > 0)
            label_ += '|';
        label_ += 'c' + std::to_string(k) + '[' +
                  perCore_[k].label() + ']';
    }
    // Cores are interchangeable: key on the sorted per-core schedule
    // keys (each key names its global job ids, hence its group).
    std::vector<std::string> parts;
    parts.reserve(perCore_.size());
    for (const Schedule &s : perCore_)
        parts.push_back(s.key());
    std::sort(parts.begin(), parts.end());
    key_ = "M:";
    for (std::size_t k = 0; k < parts.size(); ++k) {
        if (k > 0)
            key_ += '|';
        key_ += parts[k];
    }
}

std::uint64_t
MachineSchedule::periodTimeslices() const
{
    std::uint64_t period = 1;
    for (const Schedule &s : perCore_)
        period = std::max(period, s.periodTimeslices());
    return period;
}

MachineScheduleSpace::MachineScheduleSpace(int num_jobs, int num_cores,
                                           int level, int swap)
    : numJobs_(num_jobs), numCores_(num_cores), level_(level),
      swap_(swap)
{
    SOS_ASSERT(num_cores >= 1, "need at least one core");
    SOS_ASSERT(num_jobs >= 1, "need at least one job");
    SOS_ASSERT(num_jobs % num_cores == 0,
               "machine spaces require the cores to divide the jobs");
    groupSize_ = num_jobs / num_cores;
    SOS_ASSERT(groupSize_ >= level,
               "fewer jobs per core than contexts: trivial");
    SOS_ASSERT(swap >= 1 && swap <= level, "1 <= Z <= Y required");
}

std::uint64_t
MachineScheduleSpace::distinctCount() const
{
    if (numJobs_ > 20)
        return ~std::uint64_t{0};
    std::uint64_t count =
        numCores_ == 1 ? 1
                       : equalPartitionCount(numJobs_, groupSize_);
    const std::uint64_t per_core =
        ScheduleSpace(groupSize_, level_, swap_).distinctCount();
    for (int k = 0; k < numCores_; ++k)
        count = mulSaturating(count, per_core);
    return count;
}

std::uint64_t
MachineScheduleSpace::periodTimeslices() const
{
    return ScheduleSpace(groupSize_, level_, swap_).periodTimeslices();
}

std::vector<MachineSchedule>
MachineScheduleSpace::enumerateAll(std::uint64_t limit) const
{
    const std::uint64_t count = distinctCount();
    if (count > limit) {
        fatal("machine schedule space of ", count,
              " schedules exceeds the enumeration limit of ", limit);
    }
    std::vector<MachineSchedule> out;
    out.reserve(static_cast<std::size_t>(count));
    for (const Partition &allocation :
         enumerateEqualPartitions(numJobs_, groupSize_)) {
        const std::vector<MachineSchedule> fixed =
            schedulesForAllocation(allocation, limit);
        out.insert(out.end(), fixed.begin(), fixed.end());
    }
    return out;
}

std::vector<MachineSchedule>
MachineScheduleSpace::schedulesForAllocation(const Partition &allocation,
                                             std::uint64_t limit) const
{
    SOS_ASSERT(static_cast<int>(allocation.size()) == numCores_,
               "allocation must cover every core");
    std::vector<std::vector<Schedule>> choices;
    std::vector<std::uint64_t> radices;
    Partition groups;
    for (const std::vector<int> &raw : allocation) {
        SOS_ASSERT(static_cast<int>(raw.size()) == groupSize_,
                   "allocation groups must hold X/C jobs each");
        groups.push_back(sortedGroup(raw));
        choices.push_back(groupSchedules(groups.back(), level_, swap_));
        radices.push_back(choices.back().size());
    }
    std::uint64_t count = 1;
    for (const std::uint64_t r : radices)
        count = mulSaturating(count, r);
    if (count > limit) {
        fatal("allocation's schedule product of ", count,
              " exceeds the enumeration limit of ", limit);
    }
    std::vector<MachineSchedule> out;
    out.reserve(static_cast<std::size_t>(count));
    for (const std::vector<std::uint64_t> &digits :
         enumerateMixedRadix(radices)) {
        std::vector<Schedule> per_core;
        per_core.reserve(digits.size());
        for (std::size_t k = 0; k < digits.size(); ++k) {
            per_core.push_back(
                choices[k][static_cast<std::size_t>(digits[k])]);
        }
        out.emplace_back(groups, std::move(per_core));
    }
    return out;
}

MachineSchedule
MachineScheduleSpace::allocationRandom(const Partition &allocation,
                                       Rng &rng) const
{
    SOS_ASSERT(static_cast<int>(allocation.size()) == numCores_,
               "allocation must cover every core");
    Partition groups;
    std::vector<Schedule> per_core;
    for (const std::vector<int> &raw : allocation) {
        SOS_ASSERT(static_cast<int>(raw.size()) == groupSize_,
                   "allocation groups must hold X/C jobs each");
        groups.push_back(sortedGroup(raw));
        per_core.push_back(
            randomGroupSchedule(groups.back(), level_, swap_, rng));
    }
    return MachineSchedule(std::move(groups), std::move(per_core));
}

MachineSchedule
MachineScheduleSpace::random(Rng &rng) const
{
    Partition allocation;
    if (numCores_ == 1) {
        std::vector<int> everyone(static_cast<std::size_t>(numJobs_));
        std::iota(everyone.begin(), everyone.end(), 0);
        allocation.push_back(std::move(everyone));
    } else {
        allocation = randomEqualPartition(numJobs_, groupSize_, rng);
    }
    return allocationRandom(allocation, rng);
}

std::vector<MachineSchedule>
MachineScheduleSpace::sample(int count, Rng &rng) const
{
    SOS_ASSERT(count >= 1);
    const std::uint64_t total = distinctCount();
    if (total <= static_cast<std::uint64_t>(count))
        return enumerateAll();

    std::vector<MachineSchedule> out;
    std::set<std::string> seen;
    // Rejection sampling over canonical keys, as in ScheduleSpace.
    while (out.size() < static_cast<std::size_t>(count)) {
        MachineSchedule s = random(rng);
        if (seen.insert(s.key()).second)
            out.push_back(std::move(s));
    }
    return out;
}

} // namespace sos
