#include "machine_schedule.hh"

#include <algorithm>
#include <numeric>
#include <set>

#include "common/logging.hh"
#include "common/rng.hh"

namespace sos {

namespace {

/** Map a local partition of {0..g-1} through a sorted group. */
Schedule
scheduleFromLocalPartition(const Partition &local,
                           const std::vector<int> &group)
{
    Partition mapped;
    mapped.reserve(local.size());
    for (const std::vector<int> &tuple : local)
        mapped.push_back(mapThroughGroup(tuple, group));
    return Schedule::fromPartition(mapped);
}

/** Every distinct schedule of one core's (sorted) group. */
std::vector<Schedule>
groupSchedules(const std::vector<int> &group, int level, int swap)
{
    const int g = static_cast<int>(group.size());
    if (g == level)
        return {Schedule::fromPartition({group})};
    const ScheduleSpace local(g, level, swap);
    std::vector<Schedule> out;
    if (local.fullSwap()) {
        for (const Partition &p : enumerateEqualPartitions(g, level))
            out.push_back(scheduleFromLocalPartition(p, group));
        return out;
    }
    for (const std::vector<int> &order : enumerateCircularOrders(g)) {
        out.push_back(Schedule::fromRotation(
            mapThroughGroup(order, group), level, swap));
    }
    return out;
}

/** One uniformly random schedule of one core's (sorted) group. */
Schedule
randomGroupSchedule(const std::vector<int> &group, int level, int swap,
                    Rng &rng)
{
    const int g = static_cast<int>(group.size());
    if (g == level)
        return Schedule::fromPartition({group});
    const ScheduleSpace local(g, level, swap);
    if (local.fullSwap()) {
        return scheduleFromLocalPartition(
            randomEqualPartition(g, level, rng), group);
    }
    return Schedule::fromRotation(
        mapThroughGroup(randomCircularOrder(g, rng), group), level,
        swap);
}

std::vector<int>
sortedGroup(const std::vector<int> &group)
{
    std::vector<int> s = group;
    std::sort(s.begin(), s.end());
    return s;
}

} // namespace

MachineSchedule::MachineSchedule(Partition allocation,
                                 std::vector<Schedule> per_core)
    : MachineSchedule(std::move(allocation), std::move(per_core), {})
{
}

MachineSchedule::MachineSchedule(Partition allocation,
                                 std::vector<Schedule> per_core,
                                 const std::vector<int> &core_classes)
    : allocation_(std::move(allocation)), perCore_(std::move(per_core))
{
    SOS_ASSERT(!perCore_.empty(), "machine schedule needs cores");
    SOS_ASSERT(allocation_.size() == perCore_.size(),
               "one group per core required");
    SOS_ASSERT(core_classes.empty() ||
                   core_classes.size() == perCore_.size(),
               "one class id per core required");
    for (std::size_t k = 0; k < perCore_.size(); ++k) {
        SOS_ASSERT(!allocation_[k].empty(), "a core with no jobs");
        SOS_ASSERT(perCore_[k].valid(), "invalid per-core schedule");
        if (k > 0)
            label_ += '|';
        label_ += 'c' + std::to_string(k) + '[' +
                  perCore_[k].label() + ']';
    }
    const bool uniform =
        core_classes.empty() ||
        std::all_of(core_classes.begin(), core_classes.end(),
                    [&core_classes](int c) {
                        return c == core_classes.front();
                    });
    if (uniform) {
        // Cores are interchangeable: key on the sorted per-core
        // schedule keys (each key names its global job ids, hence its
        // group).
        std::vector<std::string> parts;
        parts.reserve(perCore_.size());
        for (const Schedule &s : perCore_)
            parts.push_back(s.key());
        std::sort(parts.begin(), parts.end());
        key_ = "M:";
        for (std::size_t k = 0; k < parts.size(); ++k) {
            if (k > 0)
                key_ += '|';
            key_ += parts[k];
        }
        return;
    }
    // Heterogeneous: only same-class cores are interchangeable, so
    // sort (class, schedule key) pairs and tag every part with its
    // class -- permuting unlike cores changes the key.
    std::vector<std::pair<int, std::string>> parts;
    parts.reserve(perCore_.size());
    for (std::size_t k = 0; k < perCore_.size(); ++k)
        parts.emplace_back(core_classes[k], perCore_[k].key());
    std::sort(parts.begin(), parts.end());
    key_ = "M:";
    for (std::size_t k = 0; k < parts.size(); ++k) {
        if (k > 0)
            key_ += '|';
        key_ += std::to_string(parts[k].first) + ':' + parts[k].second;
    }
}

std::uint64_t
MachineSchedule::periodTimeslices() const
{
    std::uint64_t period = 1;
    for (const Schedule &s : perCore_)
        period = std::max(period, s.periodTimeslices());
    return period;
}

MachineScheduleSpace::MachineScheduleSpace(int num_jobs, int num_cores,
                                           int level, int swap)
    : MachineScheduleSpace(num_jobs, num_cores, level, swap, {})
{
}

MachineScheduleSpace::MachineScheduleSpace(int num_jobs, int num_cores,
                                           int level, int swap,
                                           std::vector<int> core_classes)
    : numJobs_(num_jobs), numCores_(num_cores), level_(level),
      swap_(swap)
{
    SOS_ASSERT(num_cores >= 1, "need at least one core");
    SOS_ASSERT(num_jobs >= 1, "need at least one job");
    SOS_ASSERT(num_jobs % num_cores == 0,
               "machine spaces require the cores to divide the jobs");
    groupSize_ = num_jobs / num_cores;
    SOS_ASSERT(groupSize_ >= level,
               "fewer jobs per core than contexts: trivial");
    SOS_ASSERT(swap >= 1 && swap <= level, "1 <= Z <= Y required");
    if (!core_classes.empty()) {
        SOS_ASSERT(static_cast<int>(core_classes.size()) == num_cores,
                   "one class id per core required");
        // Normalise labels to first-appearance order so keys are a
        // function of the partition, not the caller's numbering, and
        // collapse the single-class case onto the homogeneous path.
        std::vector<int> seen;
        classes_.reserve(core_classes.size());
        for (const int label : core_classes) {
            const auto it =
                std::find(seen.begin(), seen.end(), label);
            if (it == seen.end()) {
                classes_.push_back(static_cast<int>(seen.size()));
                seen.push_back(label);
            } else {
                classes_.push_back(
                    static_cast<int>(it - seen.begin()));
            }
        }
        if (seen.size() < 2)
            classes_.clear();
    }
}

std::vector<std::vector<int>>
MachineScheduleSpace::classCores() const
{
    const int num_classes =
        classes_.empty()
            ? 1
            : 1 + *std::max_element(classes_.begin(), classes_.end());
    std::vector<std::vector<int>> out(
        static_cast<std::size_t>(num_classes));
    for (int k = 0; k < numCores_; ++k) {
        const int c = classes_.empty()
                          ? 0
                          : classes_[static_cast<std::size_t>(k)];
        out[static_cast<std::size_t>(c)].push_back(k);
    }
    return out;
}

Partition
MachineScheduleSpace::allocationFromLabels(
    const Partition &groups, const std::vector<int> &labels) const
{
    SOS_ASSERT(groups.size() == labels.size(),
               "one class label per group required");
    const std::vector<std::vector<int>> by_class = classCores();
    Partition allocation(static_cast<std::size_t>(numCores_));
    std::vector<std::size_t> next(by_class.size(), 0);
    // Groups of one class keep their canonical relative order and land
    // on the class's cores in ascending core index: the dedup
    // representative of every within-class permutation.
    for (std::size_t g = 0; g < groups.size(); ++g) {
        const auto c = static_cast<std::size_t>(labels[g]);
        SOS_ASSERT(c < by_class.size() &&
                       next[c] < by_class[c].size(),
                   "class labels do not match the core classes");
        const int core = by_class[c][next[c]++];
        allocation[static_cast<std::size_t>(core)] = groups[g];
    }
    return allocation;
}

std::uint64_t
MachineScheduleSpace::distinctCount() const
{
    if (numJobs_ > 20)
        return ~std::uint64_t{0};
    std::uint64_t count =
        numCores_ == 1 ? 1
                       : equalPartitionCount(numJobs_, groupSize_);
    if (heterogeneous()) {
        // Each unordered partition is additionally coloured by core
        // class: C! / prod_c(n_c!) distinct labelings.
        std::uint64_t ways = factorial(numCores_);
        for (const std::vector<int> &cores : classCores())
            ways /= factorial(static_cast<int>(cores.size()));
        count = mulSaturating(count, ways);
    }
    const std::uint64_t per_core =
        ScheduleSpace(groupSize_, level_, swap_).distinctCount();
    for (int k = 0; k < numCores_; ++k)
        count = mulSaturating(count, per_core);
    return count;
}

std::uint64_t
MachineScheduleSpace::periodTimeslices() const
{
    return ScheduleSpace(groupSize_, level_, swap_).periodTimeslices();
}

std::vector<MachineSchedule>
MachineScheduleSpace::enumerateAll(std::uint64_t limit) const
{
    const std::uint64_t count = distinctCount();
    if (count > limit) {
        fatal("machine schedule space of ", count,
              " schedules exceeds the enumeration limit of ", limit);
    }
    std::vector<MachineSchedule> out;
    out.reserve(static_cast<std::size_t>(count));
    if (!heterogeneous()) {
        for (const Partition &allocation :
             enumerateEqualPartitions(numJobs_, groupSize_)) {
            const std::vector<MachineSchedule> fixed =
                schedulesForAllocation(allocation, limit);
            out.insert(out.end(), fixed.begin(), fixed.end());
        }
        return out;
    }
    // Heterogeneous: every canonical partition is visited under every
    // distinct class labeling of its groups (lexicographic label
    // order via next_permutation over the sorted label multiset).
    std::vector<int> base_labels;
    {
        const std::vector<std::vector<int>> by_class = classCores();
        for (std::size_t c = 0; c < by_class.size(); ++c) {
            base_labels.insert(base_labels.end(), by_class[c].size(),
                               static_cast<int>(c));
        }
        std::sort(base_labels.begin(), base_labels.end());
    }
    for (const Partition &groups :
         enumerateEqualPartitions(numJobs_, groupSize_)) {
        std::vector<int> labels = base_labels;
        do {
            const std::vector<MachineSchedule> fixed =
                schedulesForAllocation(
                    allocationFromLabels(groups, labels), limit);
            out.insert(out.end(), fixed.begin(), fixed.end());
        } while (std::next_permutation(labels.begin(), labels.end()));
    }
    return out;
}

std::vector<MachineSchedule>
MachineScheduleSpace::schedulesForAllocation(const Partition &allocation,
                                             std::uint64_t limit) const
{
    SOS_ASSERT(static_cast<int>(allocation.size()) == numCores_,
               "allocation must cover every core");
    std::vector<std::vector<Schedule>> choices;
    std::vector<std::uint64_t> radices;
    Partition groups;
    for (const std::vector<int> &raw : allocation) {
        SOS_ASSERT(static_cast<int>(raw.size()) == groupSize_,
                   "allocation groups must hold X/C jobs each");
        groups.push_back(sortedGroup(raw));
        choices.push_back(groupSchedules(groups.back(), level_, swap_));
        radices.push_back(choices.back().size());
    }
    std::uint64_t count = 1;
    for (const std::uint64_t r : radices)
        count = mulSaturating(count, r);
    if (count > limit) {
        fatal("allocation's schedule product of ", count,
              " exceeds the enumeration limit of ", limit);
    }
    std::vector<MachineSchedule> out;
    out.reserve(static_cast<std::size_t>(count));
    for (const std::vector<std::uint64_t> &digits :
         enumerateMixedRadix(radices)) {
        std::vector<Schedule> per_core;
        per_core.reserve(digits.size());
        for (std::size_t k = 0; k < digits.size(); ++k) {
            per_core.push_back(
                choices[k][static_cast<std::size_t>(digits[k])]);
        }
        out.emplace_back(groups, std::move(per_core), classes_);
    }
    return out;
}

MachineSchedule
MachineScheduleSpace::allocationRandom(const Partition &allocation,
                                       Rng &rng) const
{
    SOS_ASSERT(static_cast<int>(allocation.size()) == numCores_,
               "allocation must cover every core");
    Partition groups;
    std::vector<Schedule> per_core;
    for (const std::vector<int> &raw : allocation) {
        SOS_ASSERT(static_cast<int>(raw.size()) == groupSize_,
                   "allocation groups must hold X/C jobs each");
        groups.push_back(sortedGroup(raw));
        per_core.push_back(
            randomGroupSchedule(groups.back(), level_, swap_, rng));
    }
    return MachineSchedule(std::move(groups), std::move(per_core),
                           classes_);
}

MachineSchedule
MachineScheduleSpace::random(Rng &rng) const
{
    Partition allocation;
    if (numCores_ == 1) {
        std::vector<int> everyone(static_cast<std::size_t>(numJobs_));
        std::iota(everyone.begin(), everyone.end(), 0);
        allocation.push_back(std::move(everyone));
    } else {
        allocation = randomEqualPartition(numJobs_, groupSize_, rng);
        if (heterogeneous()) {
            // Colour the canonical groups with a uniformly random
            // class labeling: every distinct (partition, labeling)
            // pair -- i.e. every distinct allocation -- is equally
            // likely.
            std::vector<int> labels;
            for (const int c : classes_)
                labels.push_back(c);
            std::sort(labels.begin(), labels.end());
            rng.shuffle(labels);
            allocation = allocationFromLabels(allocation, labels);
        }
    }
    return allocationRandom(allocation, rng);
}

std::vector<MachineSchedule>
MachineScheduleSpace::sample(int count, Rng &rng) const
{
    SOS_ASSERT(count >= 1);
    const std::uint64_t total = distinctCount();
    if (total <= static_cast<std::uint64_t>(count))
        return enumerateAll();

    std::vector<MachineSchedule> out;
    std::set<std::string> seen;
    // Rejection sampling over canonical keys, as in ScheduleSpace.
    while (out.size() < static_cast<std::size_t>(count)) {
        MachineSchedule s = random(rng);
        if (seen.insert(s.key()).second)
            out.push_back(std::move(s));
    }
    return out;
}

} // namespace sos
