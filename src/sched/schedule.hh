/**
 * @file
 * Schedules and the schedule space of a jobmix.
 *
 * Following the paper's Section 3, a schedule for the experiment tuple
 * J(X, Y, Z) -- X runnable jobs, multithreading level Y, Z jobs
 * swapped per timeslice -- is a covering, circular sequence of
 * coschedule tuples in which every job appears equally often.
 *
 * Two representations cover the paper's cases exactly:
 *
 *  - Z == Y and Y | X (full swap): an unordered partition of the X
 *    jobs into X/Y tuples cycled round-robin. Distinct schedules:
 *    X! / ((Y!)^(X/Y) (X/Y)!), e.g. 10 for Jsb(6,3,3).
 *
 *  - otherwise (rotating / "warmstart" swap): a circular order of the
 *    X jobs; the running set is a window of Y advanced by Z each
 *    timeslice (FIFO replacement of the oldest Z residents).
 *    Schedules are identical up to rotation and reflection of the
 *    order, giving (X-1)!/2 distinct schedules, e.g. 60 for
 *    Jsb(6,3,1) and 12 for Jsb(5,2,2).
 *
 * Both match the paper's Table 2 counts; tests verify every row.
 */

#ifndef SOS_SCHED_SCHEDULE_HH
#define SOS_SCHED_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/combinatorics.hh"

namespace sos {

class Rng;

/** One covering schedule: the tuple sequence of a full period. */
class Schedule
{
  public:
    Schedule() = default;

    /** Build a full-swap schedule from a canonical partition. */
    static Schedule fromPartition(const Partition &partition);

    /**
     * Build a rotating schedule: window of @p window jobs over the
     * circular @p order, advanced by @p step per timeslice.
     */
    static Schedule fromRotation(const std::vector<int> &order, int window,
                                 int step);

    /** Coschedule tuple for a given timeslice (wraps at the period). */
    const std::vector<int> &
    tupleAt(std::uint64_t timeslice) const
    {
        return tuples_[timeslice % tuples_.size()];
    }

    /** Tuples in one period. */
    std::uint64_t
    periodTimeslices() const
    {
        return tuples_.size();
    }

    /** All tuples of one period, in order. */
    const std::vector<std::vector<int>> &tuples() const { return tuples_; }

    /** Number of tuples each job appears in per period. */
    int appearancesPerPeriod(int job) const;

    /** Paper-style label, e.g. "012_345". */
    const std::string &label() const { return label_; }

    /** Canonical identity key (schedules equal up to tuple order). */
    const std::string &key() const { return key_; }

    bool valid() const { return !tuples_.empty(); }

  private:
    std::vector<std::vector<int>> tuples_;
    std::string label_;
    std::string key_;
};

/** The set of distinct schedules for an experiment J(X, Y, Z). */
class ScheduleSpace
{
  public:
    /**
     * @param num_jobs X, the runnable jobs.
     * @param level Y, the multithreading level (tuple size).
     * @param swap Z, jobs replaced per timeslice (1 <= Z <= Y).
     */
    ScheduleSpace(int num_jobs, int level, int swap);

    int numJobs() const { return numJobs_; }
    int level() const { return level_; }
    int swap() const { return swap_; }

    /** True when the space is partition-based (Z == Y, Y | X). */
    bool fullSwap() const { return fullSwap_; }

    /** Exact number of distinct schedules (paper Table 2 column 2). */
    std::uint64_t distinctCount() const;

    /** Timeslices needed to run one full period of any schedule. */
    std::uint64_t periodTimeslices() const;

    /**
     * Enumerate every distinct schedule. fatal() if the space holds
     * more than @p limit schedules.
     */
    std::vector<Schedule> enumerateAll(std::uint64_t limit = 100000) const;

    /** Draw one schedule uniformly at random. */
    Schedule random(Rng &rng) const;

    /**
     * Draw up to @p count distinct schedules: the whole space when it
     * is small, otherwise distinct uniform samples (the paper samples
     * 10 in every experiment but Jsb(4,2,2), which has only 3).
     */
    std::vector<Schedule> sample(int count, Rng &rng) const;

  private:
    int numJobs_;
    int level_;
    int swap_;
    bool fullSwap_;
};

} // namespace sos

#endif // SOS_SCHED_SCHEDULE_HH
