#include "jobmix.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/workload_library.hh"

namespace sos {

JobMix::JobMix(const JobMix &other) : seed_(other.seed_)
{
    jobs_.reserve(other.jobs_.size());
    for (const auto &job : other.jobs_)
        jobs_.push_back(std::make_unique<Job>(*job));
}

Job &
JobMix::addInternal(const std::string &workload, int threads, bool adaptive)
{
    const WorkloadProfile &profile = WorkloadLibrary::instance().get(
        workload);
    const auto id = static_cast<std::uint32_t>(jobs_.size() + 1);
    jobs_.push_back(std::make_unique<Job>(
        id, profile, seed_ ^ mix64(id), threads, adaptive));
    return *jobs_.back();
}

Job &
JobMix::addJob(const std::string &workload)
{
    return addInternal(workload, 1, false);
}

Job &
JobMix::addParallelJob(const std::string &workload, int threads)
{
    SOS_ASSERT(threads >= 2, "parallel jobs have at least two threads");
    return addInternal(workload, threads, false);
}

Job &
JobMix::addAdaptiveJob(const std::string &workload)
{
    return addInternal(workload, 1, true);
}

int
JobMix::numUnits() const
{
    int n = 0;
    for (const auto &job : jobs_)
        n += job->numThreads();
    return n;
}

ThreadRef
JobMix::unit(int index) const
{
    SOS_ASSERT(index >= 0, "bad unit index");
    int remaining = index;
    for (const auto &job : jobs_) {
        if (remaining < job->numThreads())
            return ThreadRef{job.get(), remaining};
        remaining -= job->numThreads();
    }
    panic("unit index ", index, " out of range");
}

std::string
JobMix::unitName(int index) const
{
    const ThreadRef ref = unit(index);
    std::string name = ref.job->name();
    if (ref.job->numThreads() > 1)
        name += "." + std::to_string(ref.thread);
    return name;
}

std::vector<ThreadRef>
JobMix::units() const
{
    std::vector<ThreadRef> out;
    out.reserve(static_cast<std::size_t>(numUnits()));
    for (const auto &job : jobs_) {
        for (int t = 0; t < job->numThreads(); ++t)
            out.push_back(ThreadRef{job.get(), t});
    }
    return out;
}

} // namespace sos
