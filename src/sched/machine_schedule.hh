/**
 * @file
 * Machine-level schedules: one coschedule sequence per core of a CMP.
 *
 * A machine schedule for Jm(X, C, Y, Z) -- X runnable jobs on C SMT
 * cores of multithreading level Y swapping Z jobs per timeslice --
 * has two nested choices:
 *
 *  1. a thread-to-core *allocation*: an unordered partition of the X
 *     jobs into C groups of X/C (the cores are identical, so the
 *     partition is unordered and canonical partition order is the
 *     dedup representative);
 *
 *  2. per core, an ordinary single-core schedule (Schedule) over its
 *     group, in the group's global job indices.
 *
 * Distinct machine schedules therefore number
 *   equalPartitionCount(X, X/C) * ScheduleSpace(X/C, Y, Z)^C
 * e.g. Jm(8,2,2,2): 35 * 3 * 3 = 315, and Jm(8,4,2,2): 105 * 1 = 105
 * -- the spaces the multicore figure sweeps.
 *
 * On a heterogeneous machine the cores are only interchangeable
 * within equivalence classes of identical configuration (see
 * MachineParams::coreClasses), so an allocation additionally chooses
 * which groups land on which class: distinct allocations number
 *   equalPartitionCount(X, X/C) * C! / prod_c(n_c!)
 * where n_c counts the cores of class c -- e.g. 8 jobs on a 2+2
 * big.LITTLE machine: 105 * 4!/(2!*2!) = 630 allocations.
 */

#ifndef SOS_SCHED_MACHINE_SCHEDULE_HH
#define SOS_SCHED_MACHINE_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/combinatorics.hh"
#include "sched/schedule.hh"

namespace sos {

class Rng;

/** One machine schedule: an allocation plus per-core schedules. */
class MachineSchedule
{
  public:
    MachineSchedule() = default;

    /**
     * @param allocation One group of global job indices per core, in
     *        core order (groups need not be canonical; each must be
     *        non-empty and the groups disjoint).
     * @param per_core One Schedule per core over that core's group,
     *        aligned with @p allocation.
     */
    MachineSchedule(Partition allocation,
                    std::vector<Schedule> per_core);

    /**
     * Heterogeneity-aware constructor: @p core_classes gives each
     * core's equivalence class (see MachineParams::coreClasses).
     * Cores are only interchangeable within a class, so the canonical
     * key sorts per-core schedules within class partitions instead of
     * globally.  An empty or single-class vector reproduces the
     * homogeneous key byte-for-byte.
     */
    MachineSchedule(Partition allocation, std::vector<Schedule> per_core,
                    const std::vector<int> &core_classes);

    int
    numCores() const
    {
        return static_cast<int>(perCore_.size());
    }

    /** Global job indices assigned to each core, in core order. */
    const Partition &allocation() const { return allocation_; }

    const Schedule &
    coreSchedule(int core) const
    {
        return perCore_.at(static_cast<std::size_t>(core));
    }

    /**
     * Readable per-core label, e.g. "c0[01_23]|c1[45_67]" -- reflects
     * the actual core assignment.
     */
    const std::string &label() const { return label_; }

    /**
     * Canonical identity key. Identical cores are interchangeable, so
     * the key sorts the (group, schedule) pairs within each core
     * class; two machine schedules that differ only by a permutation
     * of same-class cores share a key.  On a homogeneous machine that
     * is full core-permutation invariance ("M:" + sorted schedule
     * keys); heterogeneous keys tag every part with its core class.
     */
    const std::string &key() const { return key_; }

    bool valid() const { return !perCore_.empty(); }

    /** Timeslices of one full period (max over the cores' periods). */
    std::uint64_t periodTimeslices() const;

  private:
    Partition allocation_;
    std::vector<Schedule> perCore_;
    std::string label_;
    std::string key_;
};

/** The set of distinct machine schedules for Jm(X, C, Y, Z). */
class MachineScheduleSpace
{
  public:
    /**
     * @param num_jobs X, the runnable jobs.
     * @param num_cores C, cores of the machine (C must divide X).
     * @param level Y, per-core multithreading level.
     * @param swap Z, jobs replaced per core per timeslice.
     */
    MachineScheduleSpace(int num_jobs, int num_cores, int level,
                         int swap);

    /**
     * Heterogeneity-aware space: @p core_classes gives each core's
     * equivalence class (any labels; normalised internally to
     * first-appearance order, as MachineParams::coreClasses emits).
     * Allocations then count distinct *class-labelled* partitions --
     * moving a group between unlike cores is a new schedule -- and
     * enumeration, sampling and dedup follow the class-aware keys.
     * An empty or single-class vector is exactly the homogeneous
     * space, bit-identical keys and RNG stream included.
     */
    MachineScheduleSpace(int num_jobs, int num_cores, int level,
                         int swap, std::vector<int> core_classes);

    int numJobs() const { return numJobs_; }
    int numCores() const { return numCores_; }
    int level() const { return level_; }
    int swap() const { return swap_; }

    /** Per-core class ids; empty for a homogeneous space. */
    const std::vector<int> &coreClasses() const { return classes_; }

    /** True when the space distinguishes at least two core classes. */
    bool heterogeneous() const { return !classes_.empty(); }

    /** Jobs per core, X/C. */
    int groupSize() const { return groupSize_; }

    /** Exact distinct count (saturates at 2^64-1 for huge spaces). */
    std::uint64_t distinctCount() const;

    /** Timeslices needed to run one full period of any schedule. */
    std::uint64_t periodTimeslices() const;

    /**
     * Enumerate every distinct machine schedule, allocations in
     * canonical partition order. fatal() beyond @p limit schedules.
     */
    std::vector<MachineSchedule>
    enumerateAll(std::uint64_t limit = 100000) const;

    /** Draw one machine schedule uniformly at random. */
    MachineSchedule random(Rng &rng) const;

    /**
     * Draw up to @p count distinct machine schedules: the whole space
     * when it is small, otherwise distinct uniform samples (dedup on
     * the canonical key).
     */
    std::vector<MachineSchedule> sample(int count, Rng &rng) const;

    /**
     * All machine schedules with the given fixed allocation (the
     * cartesian product of each core's schedule choices). Used by
     * allocation policies, which choose the partition and then sweep
     * or sample only the per-core schedules.
     */
    std::vector<MachineSchedule>
    schedulesForAllocation(const Partition &allocation,
                           std::uint64_t limit = 100000) const;

    /** One random machine schedule with the given fixed allocation. */
    MachineSchedule allocationRandom(const Partition &allocation,
                                     Rng &rng) const;

  private:
    /** Jobs of each class's cores, ascending core index per class. */
    std::vector<std::vector<int>> classCores() const;

    /** Turn per-group class labels into a per-core allocation. */
    Partition allocationFromLabels(const Partition &groups,
                                   const std::vector<int> &labels) const;

    int numJobs_;
    int numCores_;
    int level_;
    int swap_;
    int groupSize_;
    std::vector<int> classes_; ///< per-core class id; empty = uniform
};

} // namespace sos

#endif // SOS_SCHED_MACHINE_SCHEDULE_HH
