/**
 * @file
 * A jobmix: the set of runnable jobs presented to the jobscheduler.
 */

#ifndef SOS_SCHED_JOBMIX_HH
#define SOS_SCHED_JOBMIX_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/job.hh"

namespace sos {

/**
 * Owns the jobs of one experiment and exposes the flat list of
 * schedulable units (threads) the schedule's job identifiers index.
 * Unit order follows insertion order, matching the paper's labels
 * (job 0 is the first workload listed in Table 1, and the two threads
 * of a parallel job are adjacent units).
 */
class JobMix
{
  public:
    /** @param seed Base seed; jobs derive deterministic streams. */
    explicit JobMix(std::uint64_t seed = 0x50505050ULL) : seed_(seed) {}

    /**
     * Snapshot copy: deep-copies every job mid-stream (see Job's copy
     * constructor).  Unit indices, job ids and ASIDs are preserved, so
     * a schedule valid for @p other is valid for the copy.
     */
    JobMix(const JobMix &other);

    JobMix(JobMix &&) = default;
    JobMix &operator=(JobMix &&) = default;

    /** Add a sequential (single-thread) job. */
    Job &addJob(const std::string &workload);

    /** Add a parallel job whose threads are separate units. */
    Job &addParallelJob(const std::string &workload, int threads);

    /**
     * Add an adaptive multithreaded job (Section 7); it appears as one
     * unit per current thread, and the hierarchical scheduler may call
     * setThreadCount() on it between timeslices.
     */
    Job &addAdaptiveJob(const std::string &workload);

    int numJobs() const { return static_cast<int>(jobs_.size()); }
    Job &job(int index) { return *jobs_.at(static_cast<std::size_t>(index)); }
    const Job &
    job(int index) const
    {
        return *jobs_.at(static_cast<std::size_t>(index));
    }

    /** Number of schedulable units (threads across all jobs). */
    int numUnits() const;

    /** The unit with the given flat index. */
    ThreadRef unit(int index) const;

    /** Display name of a unit, e.g. "ARRAY#8.1" for its second thread. */
    std::string unitName(int index) const;

    /** All units in order. */
    std::vector<ThreadRef> units() const;

  private:
    Job &addInternal(const std::string &workload, int threads,
                     bool adaptive);

    std::uint64_t seed_;
    std::vector<std::unique_ptr<Job>> jobs_;
};

} // namespace sos

#endif // SOS_SCHED_JOBMIX_HH
