#include "stats.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <stdexcept>

#include "stats/json.hh"

namespace sos::stats {

Stat::Stat(std::string path, std::string desc, Kind kind)
    : path_(std::move(path)), desc_(std::move(desc)), kind_(kind)
{
}

void
Scalar::writeJson(JsonWriter &json) const
{
    json.number(value());
}

std::string
Scalar::renderText() const
{
    return std::to_string(value());
}

void
Value::writeJson(JsonWriter &json) const
{
    json.number(value());
}

std::string
Value::renderText() const
{
    return formatDouble(value());
}

Formula::Formula(std::string path, std::string desc,
                 std::function<double()> fn)
    : Stat(std::move(path), std::move(desc), Kind::Formula),
      fn_(std::move(fn))
{
    if (!fn_)
        throw std::invalid_argument("stats: Formula '" + this->path() +
                                    "' needs a callable");
}

void
Formula::writeJson(JsonWriter &json) const
{
    json.number(value());
}

std::string
Formula::renderText() const
{
    return formatDouble(value());
}

void
Distribution::sample(double x)
{
    // Welford, matching RunningStat's population convention.
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (n_ == 1) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
}

double
Distribution::stddev() const
{
    if (n_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(n_));
}

void
Distribution::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("count");
    json.number(static_cast<std::uint64_t>(n_));
    json.key("mean");
    json.number(mean());
    json.key("stddev");
    json.number(stddev());
    json.key("min");
    json.number(min());
    json.key("max");
    json.number(max());
    json.endObject();
}

std::string
Distribution::renderText() const
{
    return "n=" + std::to_string(n_) + " mean=" + formatDouble(mean()) +
           " sd=" + formatDouble(stddev()) + " min=" +
           formatDouble(min()) + " max=" + formatDouble(max());
}

Quantile::Quantile(std::string path, std::string desc)
    : Stat(std::move(path), std::move(desc), Kind::Quantile),
      // Unit buckets below 2^kSubBits, then 2^kSubBits sub-buckets for
      // each of the remaining (64 - kSubBits) octaves.
      buckets_((64 - kSubBits + 1) << kSubBits, 0)
{
}

std::size_t
Quantile::bucketOf(std::uint64_t v)
{
    if (v < (1ULL << kSubBits))
        return static_cast<std::size_t>(v);
    int msb = 0;
    for (std::uint64_t t = v; t >>= 1;)
        ++msb;
    const int shift = msb - kSubBits;
    const auto sub = static_cast<std::size_t>(
        (v >> shift) & ((1ULL << kSubBits) - 1));
    return (static_cast<std::size_t>(msb - kSubBits) << kSubBits) +
           (1ULL << kSubBits) + sub;
}

double
Quantile::bucketMid(std::size_t index)
{
    constexpr std::size_t sub_count = 1ULL << kSubBits;
    if (index < sub_count)
        return static_cast<double>(index); // unit buckets are exact
    const std::size_t octave = (index - sub_count) >> kSubBits;
    const std::size_t sub = (index - sub_count) & (sub_count - 1);
    const int shift = static_cast<int>(octave);
    const double lo = static_cast<double>((sub_count + sub)) *
                      static_cast<double>(1ULL << shift);
    const double width = static_cast<double>(1ULL << shift);
    return lo + width / 2.0;
}

void
Quantile::sample(double x)
{
    const double clamped = x < 0.0 ? 0.0 : x;
    // Quantize to an integer; response times and cycle counts (the
    // intended samples) already are.
    const double ceiling = 9.2e18; // < 2^63, keeps the cast defined
    const auto v = static_cast<std::uint64_t>(
        clamped < ceiling ? clamped : ceiling);
    ++buckets_[bucketOf(v)];
    ++n_;
    sum_ += static_cast<double>(v);
    if (n_ == 1) {
        min_ = max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
}

double
Quantile::quantile(double q) const
{
    if (n_ == 0)
        return 0.0;
    const double clamped = std::min(1.0, std::max(0.0, q));
    auto target = static_cast<std::uint64_t>(
        std::ceil(clamped * static_cast<double>(n_)));
    target = std::max<std::uint64_t>(1, target);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        cum += buckets_[b];
        if (cum >= target)
            return bucketMid(b);
    }
    return static_cast<double>(max_);
}

void
Quantile::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("count");
    json.number(static_cast<std::uint64_t>(n_));
    json.key("mean");
    json.number(mean());
    json.key("min");
    json.number(min());
    json.key("max");
    json.number(max());
    json.key("p50");
    json.number(quantile(0.50));
    json.key("p95");
    json.number(quantile(0.95));
    json.key("p99");
    json.number(quantile(0.99));
    json.endObject();
}

std::string
Quantile::renderText() const
{
    return "n=" + std::to_string(n_) + " mean=" + formatDouble(mean()) +
           " p50=" + formatDouble(quantile(0.50)) +
           " p95=" + formatDouble(quantile(0.95)) +
           " p99=" + formatDouble(quantile(0.99)) +
           " max=" + formatDouble(max());
}

Vector &
Vector::push(double v)
{
    if (!names_.empty())
        throw std::invalid_argument(
            "stats: Vector '" + path() +
            "' mixes named and unnamed elements");
    values_.push_back(v);
    return *this;
}

Vector &
Vector::push(const std::string &name, double v)
{
    if (names_.size() != values_.size())
        throw std::invalid_argument(
            "stats: Vector '" + path() +
            "' mixes named and unnamed elements");
    names_.push_back(name);
    values_.push_back(v);
    return *this;
}

void
Vector::writeJson(JsonWriter &json) const
{
    if (names_.empty()) {
        json.beginArray();
        for (const double v : values_)
            json.number(v);
        json.endArray();
    } else {
        json.beginObject();
        for (std::size_t i = 0; i < values_.size(); ++i) {
            json.key(names_[i]);
            json.number(values_[i]);
        }
        json.endObject();
    }
}

std::string
Vector::renderText() const
{
    std::string out = "[";
    for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i > 0)
            out += " ";
        if (!names_.empty())
            out += names_[i] + "=";
        out += formatDouble(values_[i]);
    }
    return out + "]";
}

void
Info::writeJson(JsonWriter &json) const
{
    json.string(value_);
}

std::string
Info::renderText() const
{
    return value_;
}

std::string
sanitizeSegment(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        const bool keep =
            (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
            (c >= 'A' && c <= 'Z') || c == '_' || c == '-' ||
            c == '(' || c == ')' || c == '[' || c == ']' || c == ',' ||
            c == '+' || c == '=';
        out += keep ? c : '_';
    }
    return out.empty() ? std::string("_") : out;
}

void
Registry::checkInsertable(const std::string &path) const
{
    if (path.empty())
        throw std::invalid_argument("stats: empty path");
    if (path.front() == '.' || path.back() == '.' ||
        path.find("..") != std::string::npos)
        throw std::invalid_argument("stats: malformed path '" + path +
                                    "' (empty segment)");
    for (const char c : path) {
        if (c == '"' || c == '\\' || std::isspace(
                static_cast<unsigned char>(c)))
            throw std::invalid_argument(
                "stats: path '" + path +
                "' contains whitespace or quoting characters");
    }
    if (stats_.count(path))
        throw std::invalid_argument("stats: duplicate path '" + path +
                                    "'");
    // A leaf may not also be an interior node of the JSON tree: no
    // registered path may be a dotted prefix of another.
    const auto after = stats_.lower_bound(path);
    if (after != stats_.end() &&
        after->first.compare(0, path.size() + 1, path + ".") == 0)
        throw std::invalid_argument(
            "stats: '" + path + "' would shadow existing subtree '" +
            after->first + "'");
    for (std::size_t dot = path.find('.'); dot != std::string::npos;
         dot = path.find('.', dot + 1)) {
        if (stats_.count(path.substr(0, dot)))
            throw std::invalid_argument(
                "stats: '" + path + "' nests under existing leaf '" +
                path.substr(0, dot) + "'");
    }
}

template <typename StatT, typename... Args>
StatT &
Registry::add(const std::string &path, Args &&...args)
{
    checkInsertable(path);
    auto stat =
        std::make_unique<StatT>(path, std::forward<Args>(args)...);
    StatT &ref = *stat;
    stats_.emplace(path, std::move(stat));
    return ref;
}

Scalar &
Registry::scalar(const std::string &path, std::string desc)
{
    return add<Scalar>(path, std::move(desc), Kind::Scalar);
}

Value &
Registry::value(const std::string &path, std::string desc)
{
    return add<Value>(path, std::move(desc), Kind::Value);
}

Formula &
Registry::formula(const std::string &path, std::string desc,
                  std::function<double()> fn)
{
    return add<Formula>(path, std::move(desc), std::move(fn));
}

Distribution &
Registry::distribution(const std::string &path, std::string desc)
{
    return add<Distribution>(path, std::move(desc), Kind::Distribution);
}

Quantile &
Registry::quantile(const std::string &path, std::string desc)
{
    return add<Quantile>(path, std::move(desc));
}

Vector &
Registry::vector(const std::string &path, std::string desc)
{
    return add<Vector>(path, std::move(desc), Kind::Vector);
}

Info &
Registry::info(const std::string &path, std::string desc)
{
    return add<Info>(path, std::move(desc), Kind::Info);
}

const Stat *
Registry::find(const std::string &path) const
{
    const auto it = stats_.find(path);
    return it == stats_.end() ? nullptr : it->second.get();
}

std::vector<const Stat *>
Registry::sorted() const
{
    std::vector<const Stat *> out;
    out.reserve(stats_.size());
    for (const auto &[path, stat] : stats_)
        out.push_back(stat.get());
    return out;
}

Group
Group::group(const std::string &name) const
{
    return Group(*registry_, join(name));
}

std::string
Group::join(const std::string &name) const
{
    const std::string segment = sanitizeSegment(name);
    return prefix_.empty() ? segment : prefix_ + "." + segment;
}

Scalar &
Group::scalar(const std::string &name, std::string desc) const
{
    return registry_->scalar(join(name), std::move(desc));
}

Value &
Group::value(const std::string &name, std::string desc) const
{
    return registry_->value(join(name), std::move(desc));
}

Formula &
Group::formula(const std::string &name, std::string desc,
               std::function<double()> fn) const
{
    return registry_->formula(join(name), std::move(desc),
                              std::move(fn));
}

Distribution &
Group::distribution(const std::string &name, std::string desc) const
{
    return registry_->distribution(join(name), std::move(desc));
}

Quantile &
Group::quantile(const std::string &name, std::string desc) const
{
    return registry_->quantile(join(name), std::move(desc));
}

Vector &
Group::vector(const std::string &name, std::string desc) const
{
    return registry_->vector(join(name), std::move(desc));
}

Info &
Group::info(const std::string &name, std::string desc) const
{
    return registry_->info(join(name), std::move(desc));
}

std::string
renderText(const Registry &registry)
{
    std::size_t width = 0;
    for (const Stat *stat : registry.sorted())
        width = std::max(width, stat->path().size());
    std::string out;
    for (const Stat *stat : registry.sorted()) {
        std::string line = stat->path();
        line.append(width - line.size() + 2, ' ');
        line += stat->renderText();
        if (!stat->desc().empty()) {
            line += "  # ";
            line += stat->desc();
        }
        out += line;
        out += '\n';
    }
    return out;
}

void
writeJsonTree(const Registry &registry, JsonWriter &json)
{
    // Sorted paths visit the tree depth-first, so a simple stack of
    // open prefixes reproduces the nesting.
    std::vector<std::string> open;
    json.beginObject();
    for (const Stat *stat : registry.sorted()) {
        // Split the path into segments.
        std::vector<std::string> segments;
        const std::string &path = stat->path();
        std::size_t start = 0;
        for (std::size_t dot = path.find('.');;
             dot = path.find('.', start)) {
            if (dot == std::string::npos) {
                segments.push_back(path.substr(start));
                break;
            }
            segments.push_back(path.substr(start, dot - start));
            start = dot + 1;
        }
        // Close groups that the new path has left.
        std::size_t common = 0;
        while (common < open.size() && common + 1 < segments.size() &&
               open[common] == segments[common])
            ++common;
        while (open.size() > common) {
            json.endObject();
            open.pop_back();
        }
        // Open the new path's groups.
        for (std::size_t s = common; s + 1 < segments.size(); ++s) {
            json.key(segments[s]);
            json.beginObject();
            open.push_back(segments[s]);
        }
        json.key(segments.back());
        stat->writeJson(json);
    }
    while (!open.empty()) {
        json.endObject();
        open.pop_back();
    }
    json.endObject();
}

} // namespace sos::stats
