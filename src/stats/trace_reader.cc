#include "stats/trace_reader.hh"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

namespace sos::stats {

namespace {

[[noreturn]] void
throwAt(const std::string &context, int line, const std::string &message)
{
    std::ostringstream os;
    os << context << ":" << line << ": " << message;
    throw TraceReadError(os.str());
}

/** Cursor over one JSONL line. */
class LineParser
{
  public:
    LineParser(const std::string &line, const std::string &context,
               int line_number)
        : line_(line), context_(context), number_(line_number)
    {
    }

    [[noreturn]] void
    fail(const std::string &message) const
    {
        throwAt(context_, number_, message);
    }

    void
    skipSpace()
    {
        while (at_ < line_.size() &&
               std::isspace(static_cast<unsigned char>(line_[at_]))) {
            ++at_;
        }
    }

    bool done() const { return at_ >= line_.size(); }

    char
    peek() const
    {
        if (done())
            fail("unexpected end of line (truncated trace?)");
        return line_[at_];
    }

    char
    take()
    {
        const char c = peek();
        ++at_;
        return c;
    }

    void
    expect(char c)
    {
        const char got = take();
        if (got != c) {
            fail(std::string("expected '") + c + "', got '" + got + "'");
        }
    }

    /** Parse a quoted JSON string (cursor on the opening quote). */
    std::string
    quoted()
    {
        expect('"');
        std::string out;
        while (true) {
            const char c = take();
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = take();
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                int code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = take();
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code += h - '0';
                    else if (h >= 'a' && h <= 'f')
                        code += 10 + (h - 'a');
                    else if (h >= 'A' && h <= 'F')
                        code += 10 + (h - 'A');
                    else
                        fail("bad \\u escape");
                }
                // EventTrace only escapes control characters, so the
                // code point always fits one byte.
                out += static_cast<char>(code);
                break;
              }
              default:
                fail(std::string("unknown escape '\\") + esc + "'");
            }
        }
    }

    /** Parse one scalar value into @p field. */
    void
    value(TraceEvent::Field &field)
    {
        skipSpace();
        const char c = peek();
        if (c == '"') {
            field.isString = true;
            field.text = quoted();
            return;
        }
        if (c == '{' || c == '[')
            fail("nested containers are not valid trace values");
        if (literal("true")) {
            field.number = 1.0;
            return;
        }
        if (literal("false")) {
            field.number = 0.0;
            return;
        }
        if (literal("null")) {
            // formatDouble renders non-finite values as null.
            field.number = std::numeric_limits<double>::quiet_NaN();
            return;
        }
        const std::size_t start = at_;
        while (at_ < line_.size() && line_[at_] != ',' && line_[at_] != '}' &&
               !std::isspace(static_cast<unsigned char>(line_[at_]))) {
            ++at_;
        }
        const std::string token = line_.substr(start, at_ - start);
        char *end = nullptr;
        field.number = std::strtod(token.c_str(), &end);
        if (token.empty() || end != token.c_str() + token.size())
            fail("expected a JSON value, got '" + token + "'");
    }

  private:
    /** Consume @p word if it appears at the cursor. */
    bool
    literal(const std::string &word)
    {
        if (line_.compare(at_, word.size(), word) != 0)
            return false;
        at_ += word.size();
        return true;
    }

    const std::string &line_;
    const std::string &context_;
    int number_;
    std::size_t at_ = 0;
};

TraceEvent
parseLine(const std::string &line, const std::string &context,
          int line_number, const std::vector<std::string> &known_types)
{
    LineParser parser(line, context, line_number);
    TraceEvent event;
    event.line = line_number;

    parser.skipSpace();
    parser.expect('{');
    parser.skipSpace();
    if (parser.peek() == '}') {
        parser.fail("event object has no fields");
    }
    while (true) {
        parser.skipSpace();
        TraceEvent::Field field;
        field.name = parser.quoted();
        parser.skipSpace();
        parser.expect(':');
        parser.value(field);
        event.fields.push_back(std::move(field));
        parser.skipSpace();
        const char c = parser.take();
        if (c == '}')
            break;
        if (c != ',')
            parser.fail(std::string("expected ',' or '}', got '") + c + "'");
    }
    parser.skipSpace();
    if (!parser.done())
        parser.fail("trailing content after the event object");

    // EventTrace writes the event type under the "event" key.
    const TraceEvent::Field *type = nullptr;
    for (const TraceEvent::Field &field : event.fields) {
        if (field.name == "event") {
            type = &field;
            break;
        }
    }
    if (type == nullptr)
        parser.fail("event has no \"event\" field");
    if (!type->isString)
        parser.fail("event \"event\" must be a string");
    event.type = type->text;

    if (!known_types.empty()) {
        bool known = false;
        for (const std::string &candidate : known_types)
            known = known || candidate == event.type;
        if (!known) {
            std::string listed;
            for (const std::string &candidate : known_types)
                listed += (listed.empty() ? "" : ", ") + candidate;
            parser.fail("unknown event type \"" + event.type +
                        "\" (known: " + listed + ")");
        }
    }
    return event;
}

} // namespace

const TraceEvent::Field *
TraceEvent::find(const std::string &name) const
{
    for (const Field &field : fields) {
        if (field.name == name)
            return &field;
    }
    return nullptr;
}

bool
TraceEvent::has(const std::string &name) const
{
    return find(name) != nullptr;
}

double
TraceEvent::number(const std::string &name) const
{
    const Field *field = find(name);
    if (!field) {
        throw TraceReadError("trace line " + std::to_string(line) + ": \"" +
                             type + "\" event has no \"" + name + "\" field");
    }
    if (field->isString) {
        throw TraceReadError("trace line " + std::to_string(line) + ": \"" +
                             type + "\" field \"" + name +
                             "\" is a string, expected a number");
    }
    return field->number;
}

const std::string &
TraceEvent::text(const std::string &name) const
{
    const Field *field = find(name);
    if (!field) {
        throw TraceReadError("trace line " + std::to_string(line) + ": \"" +
                             type + "\" event has no \"" + name + "\" field");
    }
    if (!field->isString) {
        throw TraceReadError("trace line " + std::to_string(line) + ": \"" +
                             type + "\" field \"" + name +
                             "\" is not a string");
    }
    return field->text;
}

std::vector<TraceEvent>
parseTraceText(const std::string &text, const std::string &context,
               const std::vector<std::string> &known_types)
{
    std::vector<TraceEvent> events;
    std::size_t start = 0;
    int line_number = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        if (end == std::string::npos)
            end = text.size();
        ++line_number;
        const std::string line = text.substr(start, end - start);
        start = end + 1;
        bool blank = true;
        for (const char c : line)
            blank = blank && std::isspace(static_cast<unsigned char>(c));
        if (blank)
            continue;
        events.push_back(parseLine(line, context, line_number, known_types));
    }
    return events;
}

std::vector<TraceEvent>
readTraceFile(const std::string &path,
              const std::vector<std::string> &known_types)
{
    std::ifstream file(path);
    if (!file)
        throw TraceReadError(path + ":0: cannot open trace file");
    std::ostringstream text;
    text << file.rdbuf();
    return parseTraceText(text.str(), path, known_types);
}

} // namespace sos::stats
