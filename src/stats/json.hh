/**
 * @file
 * Minimal deterministic JSON emission for the stats sinks.
 *
 * The writer is a thin streaming layer over a std::string: callers
 * push objects/arrays/keys/values and commas are inserted
 * automatically. Output is deterministic by construction -- no
 * pointer-keyed containers, no locale dependence, and doubles are
 * rendered with a fixed shortest-round-trip rule -- which is what
 * lets run manifests be compared bit-for-bit across worker counts
 * (DESIGN.md section 5b).
 */

#ifndef SOS_STATS_JSON_HH
#define SOS_STATS_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace sos::stats {

/** Escape a string for inclusion in a JSON document (no quotes). */
std::string escapeJson(const std::string &raw);

/**
 * Render a double deterministically: the shortest of %.15g / %.16g /
 * %.17g that parses back to the same bits. Non-finite values render
 * as null (JSON has no literal for them).
 */
std::string formatDouble(double value);

/** Streaming JSON writer with automatic comma placement. */
class JsonWriter
{
  public:
    /** Appends everything to @p out (not owned). */
    explicit JsonWriter(std::string *out);

    /** @name Containers @{ */
    void beginObject();
    void endObject();
    void beginArray();
    void endArray();
    /** @} */

    /** Emit an object key; the next value call supplies its value. */
    void key(const std::string &name);

    /** @name Values @{ */
    void string(const std::string &value);
    void number(double value);
    void number(std::uint64_t value);
    void number(std::int64_t value);
    void number(int value) { number(static_cast<std::int64_t>(value)); }
    void boolean(bool value);
    void null();
    /** @} */

    /** True once every container has been closed. */
    bool complete() const { return stack_.empty() && wroteValue_; }

  private:
    /** Insert a comma if the enclosing container needs one. */
    void separate();

    struct Level
    {
        bool array = false;
        bool hasEntries = false;
        bool keyPending = false;
    };

    std::string *out_;
    std::vector<Level> stack_;
    bool wroteValue_ = false;
};

} // namespace sos::stats

#endif // SOS_STATS_JSON_HH
