#include "json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.hh"

namespace sos::stats {

std::string
escapeJson(const std::string &raw)
{
    std::string out;
    out.reserve(raw.size());
    for (const char c : raw) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatDouble(double value)
{
    if (!std::isfinite(value))
        return "null";
    char buffer[40];
    for (const int precision : {15, 16, 17}) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
        if (std::strtod(buffer, nullptr) == value)
            break;
    }
    return buffer;
}

JsonWriter::JsonWriter(std::string *out) : out_(out)
{
    SOS_ASSERT(out != nullptr);
}

void
JsonWriter::separate()
{
    if (stack_.empty())
        return;
    Level &level = stack_.back();
    if (level.array) {
        if (level.hasEntries)
            *out_ += ',';
        level.hasEntries = true;
    } else {
        SOS_ASSERT(level.keyPending,
                   "object values need a preceding key()");
        level.keyPending = false;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    *out_ += '{';
    stack_.push_back(Level{});
}

void
JsonWriter::endObject()
{
    SOS_ASSERT(!stack_.empty() && !stack_.back().array);
    SOS_ASSERT(!stack_.back().keyPending, "key() without a value");
    stack_.pop_back();
    *out_ += '}';
    wroteValue_ = true;
}

void
JsonWriter::beginArray()
{
    separate();
    *out_ += '[';
    stack_.push_back(Level{true, false, false});
}

void
JsonWriter::endArray()
{
    SOS_ASSERT(!stack_.empty() && stack_.back().array);
    stack_.pop_back();
    *out_ += ']';
    wroteValue_ = true;
}

void
JsonWriter::key(const std::string &name)
{
    SOS_ASSERT(!stack_.empty() && !stack_.back().array,
               "key() is only valid inside an object");
    Level &level = stack_.back();
    SOS_ASSERT(!level.keyPending, "two key() calls in a row");
    if (level.hasEntries)
        *out_ += ',';
    level.hasEntries = true;
    level.keyPending = true;
    *out_ += '"';
    *out_ += escapeJson(name);
    *out_ += "\":";
}

void
JsonWriter::string(const std::string &value)
{
    separate();
    *out_ += '"';
    *out_ += escapeJson(value);
    *out_ += '"';
    wroteValue_ = true;
}

void
JsonWriter::number(double value)
{
    separate();
    *out_ += formatDouble(value);
    wroteValue_ = true;
}

void
JsonWriter::number(std::uint64_t value)
{
    separate();
    *out_ += std::to_string(value);
    wroteValue_ = true;
}

void
JsonWriter::number(std::int64_t value)
{
    separate();
    *out_ += std::to_string(value);
    wroteValue_ = true;
}

void
JsonWriter::boolean(bool value)
{
    separate();
    *out_ += value ? "true" : "false";
    wroteValue_ = true;
}

void
JsonWriter::null()
{
    separate();
    *out_ += "null";
    wroteValue_ = true;
}

} // namespace sos::stats
