/**
 * @file
 * Hierarchical statistics registry (gem5-style, much smaller).
 *
 * Every measurable quantity in the simulator registers under a dotted
 * path ("core0.mem.l1d.hits", "sweep.candidate3.ws") in a Registry.
 * Sinks then walk the registry in sorted path order and render the
 * same values as aligned text, a JSON run manifest, or both -- one
 * source of numbers for every output format.
 *
 * The hot-path-free binding rule: stats never sit on the simulator's
 * fast paths. A Scalar can *bind* to a live counter (a pointer to the
 * raw std::uint64_t the simulator already increments); the registry
 * reads through the pointer only when a sink dumps. SmtCore::run and
 * friends keep incrementing plain struct fields with zero added
 * indirection or allocation.
 *
 * Registration errors (duplicate paths, a path nested under an
 * existing leaf, malformed segments) throw std::invalid_argument:
 * they are programming errors in experiment wiring, and throwing --
 * rather than fatal() -- keeps them testable.
 */

#ifndef SOS_STATS_STATS_HH
#define SOS_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sos::stats {

class JsonWriter;
class Registry;

/** What kind of quantity a Stat renders. */
enum class Kind
{
    Scalar,       ///< unsigned integer counter (bindable)
    Value,        ///< floating-point result
    Formula,      ///< computed on demand at dump time
    Distribution, ///< count/mean/stddev/min/max summary
    Quantile,     ///< streaming p50/p95/p99 (log-histogram)
    Vector,       ///< ordered (optionally named) series of doubles
    Info,         ///< free-form string metadata (labels, names)
};

/** One registered statistic. */
class Stat
{
  public:
    Stat(std::string path, std::string desc, Kind kind);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &path() const { return path_; }
    const std::string &desc() const { return desc_; }
    Kind kind() const { return kind_; }

    /** Emit this stat's value into an open JSON value position. */
    virtual void writeJson(JsonWriter &json) const = 0;

    /** Render the value for the aligned-text sink. */
    virtual std::string renderText() const = 0;

  private:
    std::string path_;
    std::string desc_;
    Kind kind_;
};

/**
 * Unsigned counter. Either holds its own value or binds to a live
 * counter owned by the simulator (read only at dump time).
 */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    /** Read through @p source at dump time; source must outlive dumps. */
    Scalar &
    bind(const std::uint64_t *source)
    {
        bound_ = source;
        return *this;
    }

    Scalar &
    operator=(std::uint64_t v)
    {
        own_ = v;
        return *this;
    }

    Scalar &
    operator+=(std::uint64_t v)
    {
        own_ += v;
        return *this;
    }

    std::uint64_t value() const { return bound_ ? *bound_ : own_; }

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    const std::uint64_t *bound_ = nullptr;
    std::uint64_t own_ = 0;
};

/** Floating-point result (a WS, a percentage, a mean). */
class Value : public Stat
{
  public:
    using Stat::Stat;

    Value &
    operator=(double v)
    {
        own_ = v;
        return *this;
    }

    /** Read through @p source at dump time. */
    Value &
    bind(const double *source)
    {
        bound_ = source;
        return *this;
    }

    double value() const { return bound_ ? *bound_ : own_; }

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    const double *bound_ = nullptr;
    double own_ = 0.0;
};

/** Derived quantity evaluated when a sink dumps (e.g. a rate). */
class Formula : public Stat
{
  public:
    Formula(std::string path, std::string desc,
            std::function<double()> fn);

    double value() const { return fn_(); }

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    std::function<double()> fn_;
};

/** Sample summary: count, mean, stddev (population), min, max. */
class Distribution : public Stat
{
  public:
    using Stat::Stat;

    void sample(double x);

    /** Convenience: sample every element. */
    void
    samples(const std::vector<double> &xs)
    {
        for (const double x : xs)
            sample(x);
    }

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Streaming quantile estimator over non-negative samples.
 *
 * An HdrHistogram-style log-histogram: values below 2^kSubBits land in
 * exact unit-width buckets, larger values in 2^kSubBits sub-buckets
 * per power of two, so every bucket's width is at most 1/2^kSubBits of
 * its value. Memory is a fixed ~15 KiB regardless of sample count --
 * the property that lets million-job cluster runs record response-time
 * percentiles -- and quantile() is exact to within one bucket
 * (relative error <= 2^-kSubBits). Bucket indexing is pure integer
 * arithmetic, so accumulation order and host libm cannot perturb the
 * rendered percentiles; count/mean/min/max are tracked exactly.
 */
class Quantile : public Stat
{
  public:
    /** Sub-bucket resolution: 2^5 buckets per octave, ~3.1% error. */
    static constexpr int kSubBits = 5;

    Quantile(std::string path, std::string desc);

    /** Record one sample; negative values clamp to zero. */
    void sample(double x);

    /** Convenience: sample every element. */
    void
    samples(const std::vector<double> &xs)
    {
        for (const double x : xs)
            sample(x);
    }

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? static_cast<double>(min_) : 0.0; }
    double max() const { return n_ ? static_cast<double>(max_) : 0.0; }

    /**
     * The smallest bucket whose cumulative count covers rank
     * ceil(q * count), rendered as the bucket midpoint. 0 when empty.
     */
    double quantile(double q) const;

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    static std::size_t bucketOf(std::uint64_t v);
    /** Midpoint of bucket @p index's value range. */
    static double bucketMid(std::size_t index);

    std::vector<std::uint64_t> buckets_;
    std::size_t n_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Ordered series of doubles, optionally with per-element names. */
class Vector : public Stat
{
  public:
    using Stat::Stat;

    Vector &push(double v);
    Vector &push(const std::string &name, double v);

    std::size_t size() const { return values_.size(); }
    const std::vector<double> &values() const { return values_; }

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    std::vector<double> values_;
    std::vector<std::string> names_; ///< empty, or one per value
};

/** String metadata (schedule labels, workload names). */
class Info : public Stat
{
  public:
    using Stat::Stat;

    Info &
    operator=(std::string v)
    {
        value_ = std::move(v);
        return *this;
    }

    const std::string &value() const { return value_; }

    void writeJson(JsonWriter &json) const override;
    std::string renderText() const override;

  private:
    std::string value_;
};

/**
 * Make a string usable as one path segment: dots, whitespace and
 * control characters become '_'. Parentheses, commas and brackets
 * (as in "Jsb(6,3,3)" or "012_345") pass through.
 */
std::string sanitizeSegment(const std::string &raw);

/** Owns every Stat of one run, keyed by dotted path. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** @name Typed registration (throws on path conflicts) @{ */
    Scalar &scalar(const std::string &path, std::string desc = "");
    Value &value(const std::string &path, std::string desc = "");
    Formula &formula(const std::string &path, std::string desc,
                     std::function<double()> fn);
    Distribution &distribution(const std::string &path,
                               std::string desc = "");
    Quantile &quantile(const std::string &path, std::string desc = "");
    Vector &vector(const std::string &path, std::string desc = "");
    Info &info(const std::string &path, std::string desc = "");
    /** @} */

    /** Look up a stat by exact path; nullptr when absent. */
    const Stat *find(const std::string &path) const;

    /** Every stat in sorted (lexicographic) path order. */
    std::vector<const Stat *> sorted() const;

    std::size_t size() const { return stats_.size(); }
    bool empty() const { return stats_.empty(); }

  private:
    /** Validate @p path and reject leaf/subtree conflicts. */
    void checkInsertable(const std::string &path) const;

    template <typename StatT, typename... Args>
    StatT &add(const std::string &path, Args &&...args);

    std::map<std::string, std::unique_ptr<Stat>> stats_;
};

/**
 * A registration handle carrying a path prefix, so subsystems can
 * register relative names ("hits") under a caller-chosen subtree
 * ("core0.mem.l1d"). Cheap to copy; the Registry must outlive it.
 */
class Group
{
  public:
    /** Root group: no prefix, paths register verbatim. */
    explicit Group(Registry &registry) : registry_(&registry) {}

    Group(Registry &registry, std::string prefix)
        : registry_(&registry), prefix_(std::move(prefix))
    {
    }

    /** Child group: this group's prefix plus one (sanitized) segment. */
    Group group(const std::string &name) const;

    Registry &registry() const { return *registry_; }
    const std::string &prefix() const { return prefix_; }

    /** @name Registration under the prefix @{ */
    Scalar &scalar(const std::string &name, std::string desc = "") const;
    Value &value(const std::string &name, std::string desc = "") const;
    Formula &formula(const std::string &name, std::string desc,
                     std::function<double()> fn) const;
    Distribution &distribution(const std::string &name,
                               std::string desc = "") const;
    Quantile &quantile(const std::string &name,
                       std::string desc = "") const;
    Vector &vector(const std::string &name, std::string desc = "") const;
    Info &info(const std::string &name, std::string desc = "") const;
    /** @} */

  private:
    std::string join(const std::string &name) const;

    Registry *registry_;
    std::string prefix_;
};

/**
 * Render every stat as aligned "path  value  # desc" text lines
 * (the human-readable registry dump).
 */
std::string renderText(const Registry &registry);

/**
 * Emit the registry as a nested JSON object: dotted paths become
 * object nesting, leaves render per stat kind. Appends one JSON value
 * (an object) at the writer's current position.
 */
void writeJsonTree(const Registry &registry, JsonWriter &json);

} // namespace sos::stats

#endif // SOS_STATS_STATS_HH
