/**
 * @file
 * JSONL event trace of scheduler decisions.
 *
 * Every decision the symbiotic scheduler takes -- which candidates a
 * sample phase profiled, what each predictor voted, which schedule
 * the symbios phase ran, why a resample was triggered -- can be
 * recorded as one JSON object per line. The trace is append-only and
 * events carry their fields in insertion order, so a trace is as
 * deterministic as the code that emits it; experiments append events
 * from merged, index-ordered sweep results, never from inside worker
 * threads (DESIGN.md section 5b).
 */

#ifndef SOS_STATS_TRACE_HH
#define SOS_STATS_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sos::stats {

/** Collects scheduler-decision events; renders them as JSONL. */
class EventTrace
{
  public:
    /** One event under construction; chain field() calls. */
    class Event
    {
      public:
        Event &field(const std::string &name, const std::string &value);
        Event &field(const std::string &name, const char *value);
        Event &field(const std::string &name, std::uint64_t value);
        Event &field(const std::string &name, std::int64_t value);
        Event &field(const std::string &name, int value);
        Event &field(const std::string &name, double value);
        Event &field(const std::string &name, bool value);

      private:
        friend class EventTrace;
        explicit Event(std::string *line) : line_(line) {}
        std::string *line_; ///< the growing JSON object (no brace yet)
    };

    /** Begin a new event of the given type. */
    Event event(const std::string &type);

    std::size_t size() const { return lines_.size(); }
    bool empty() const { return lines_.empty(); }

    /** The whole trace as JSONL ("{...}\n" per event). */
    std::string render() const;

    /** Write the trace to @p path; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::string> lines_; ///< one "key":value,... body each
};

} // namespace sos::stats

#endif // SOS_STATS_TRACE_HH
