/**
 * @file
 * JSONL event trace of scheduler decisions.
 *
 * Every decision the symbiotic scheduler takes -- which candidates a
 * sample phase profiled, what each predictor voted, which schedule
 * the symbios phase ran, why a resample was triggered -- can be
 * recorded as one JSON object per line. The trace is append-only and
 * events carry their fields in insertion order, so a trace is as
 * deterministic as the code that emits it; experiments append events
 * from merged, index-ordered sweep results, never from inside worker
 * threads (DESIGN.md section 5b).
 */

#ifndef SOS_STATS_TRACE_HH
#define SOS_STATS_TRACE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace sos::stats {

/** Collects scheduler-decision events; renders them as JSONL. */
class EventTrace
{
  public:
    /** One event under construction; chain field() calls. */
    class Event
    {
      public:
        Event &field(const std::string &name, const std::string &value);
        Event &field(const std::string &name, const char *value);
        Event &field(const std::string &name, std::uint64_t value);
        Event &field(const std::string &name, std::int64_t value);
        Event &field(const std::string &name, int value);
        Event &field(const std::string &name, double value);
        Event &field(const std::string &name, bool value);

      private:
        friend class EventTrace;
        explicit Event(std::string *line) : line_(line) {}
        std::string *line_; ///< the growing JSON object (no brace yet)
    };

    /**
     * Begin a new event of the given type. With a phase stride above 1
     * (setPhaseStride), phase-opener events -- "sample_phase_begin"
     * and "dispatch_epoch" -- open the gate only every Nth time;
     * events emitted while the gate is closed (the skipped opener and
     * its followers, e.g. "symbios_pick") are dropped. Events emitted
     * before the first opener always record.
     */
    Event event(const std::string &type);

    /**
     * Keep every Nth sample-phase decision group (SOS_TRACE_SAMPLE).
     * 1 (the default) records everything -- long cluster runs sample
     * the trace down to a fixed budget without touching what any
     * recorded event contains.
     */
    void setPhaseStride(std::uint64_t stride);

    /**
     * Fields appended to every subsequent event, e.g. a cluster
     * node id. @p rendered_value must be valid JSON (a number or a
     * quoted string).
     */
    void setContextField(const std::string &name,
                         const std::string &rendered_value);

    /** Append every line of @p other (already gated at its source). */
    void append(const EventTrace &other);

    std::size_t size() const { return lines_.size(); }
    bool empty() const { return lines_.empty(); }

    /** The whole trace as JSONL ("{...}\n" per event). */
    std::string render() const;

    /** Write the trace to @p path; fatal() on I/O failure. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<std::string> lines_; ///< one "key":value,... body each
    std::string context_;  ///< pre-rendered fields stamped on every event
    std::string discard_;  ///< scratch body for gated-out events
    std::uint64_t phaseStride_ = 1;
    std::uint64_t phasesSeen_ = 0;
    bool gateOpen_ = true;
};

} // namespace sos::stats

#endif // SOS_STATS_TRACE_HH
