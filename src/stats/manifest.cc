#include "manifest.hh"

#include <cstdio>

#include "common/logging.hh"
#include "stats/json.hh"

#ifndef SOS_GIT_REV
#define SOS_GIT_REV "unknown"
#endif

namespace sos::stats {

std::string
Manifest::buildGitRev()
{
    return SOS_GIT_REV;
}

std::string
renderManifest(const Manifest &manifest, const Registry &registry)
{
    std::string out;
    JsonWriter json(&out);
    json.beginObject();
    json.key("schema");
    json.string(Manifest::schemaName());
    json.key("schema_version");
    json.number(Manifest::schemaVersion);
    json.key("tool");
    json.string(manifest.tool);
    json.key("git_rev");
    json.string(manifest.gitRev);
    json.key("seed");
    json.number(manifest.seed);
    json.key("config");
    json.beginObject();
    for (const auto &[key, value] : manifest.config) {
        json.key(key);
        json.string(value);
    }
    json.endObject();
    json.key("stats");
    writeJsonTree(registry, json);
    json.endObject();
    SOS_ASSERT(json.complete());
    out += '\n';
    return out;
}

void
writeManifestFile(const std::string &path, const Manifest &manifest,
                  const Registry &registry)
{
    const std::string document = renderManifest(manifest, registry);
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open manifest output '", path, "'");
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool ok = written == document.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write to manifest output '", path, "'");
}

} // namespace sos::stats
