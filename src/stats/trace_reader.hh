/**
 * @file
 * Reader for the JSONL decision traces the stats layer emits.
 *
 * EventTrace writes one flat JSON object per line: string, number, or
 * boolean values only, never nested containers. This reader parses
 * exactly that dialect back into TraceEvent records so offline tools
 * (sostrain) can consume a trace without a JSON dependency. It is
 * strict on purpose: a malformed line, an unknown event type, or a
 * truncated file is a named TraceReadError carrying "<file>:<line>:"
 * context (mirroring MachineConfigError), never a crash or a silently
 * skipped record -- training data that parses wrong is worse than no
 * training data.
 */

#ifndef SOS_STATS_TRACE_READER_HH
#define SOS_STATS_TRACE_READER_HH

#include <cstddef>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace sos::stats {

/** Raised on malformed traces; what() carries file:line context. */
class TraceReadError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One parsed trace event: the type plus its fields in file order. */
struct TraceEvent
{
    /** One field; numbers and booleans are normalized to double. */
    struct Field
    {
        std::string name;
        std::string text;    ///< string value ("" for numbers)
        double number = 0.0; ///< numeric value (booleans: 0/1)
        bool isString = false;
    };

    std::string type;
    std::vector<Field> fields;
    int line = 0; ///< 1-based source line (for caller diagnostics)

    /** True when a field of that name exists. */
    bool has(const std::string &name) const;

    /**
     * Numeric field accessor; throws TraceReadError naming the field
     * when it is missing or holds a string.
     */
    double number(const std::string &name) const;

    /** String field accessor; throws like number(). */
    const std::string &text(const std::string &name) const;

  private:
    const Field *find(const std::string &name) const;
};

/**
 * Parse a JSONL trace. @p context names the source in errors. When
 * @p known_types is non-empty, an event whose type is not listed is a
 * TraceReadError ("unknown event type") -- tools declare the schema
 * they understand so a renamed event fails loudly instead of fitting
 * a model on partial data.
 */
std::vector<TraceEvent>
parseTraceText(const std::string &text, const std::string &context,
               const std::vector<std::string> &known_types = {});

/** Read @p path and parseTraceText() it. */
std::vector<TraceEvent>
readTraceFile(const std::string &path,
              const std::vector<std::string> &known_types = {});

} // namespace sos::stats

#endif // SOS_STATS_TRACE_READER_HH
