#include "trace.hh"

#include <cstdio>

#include "common/logging.hh"
#include "stats/json.hh"

namespace sos::stats {

namespace {

void
appendField(std::string *line, const std::string &name,
            const std::string &rendered_value)
{
    *line += ",\"";
    *line += escapeJson(name);
    *line += "\":";
    *line += rendered_value;
}

} // namespace

EventTrace::Event &
EventTrace::Event::field(const std::string &name,
                         const std::string &value)
{
    appendField(line_, name, "\"" + escapeJson(value) + "\"");
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, const char *value)
{
    return field(name, std::string(value));
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, std::uint64_t value)
{
    appendField(line_, name, std::to_string(value));
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, std::int64_t value)
{
    appendField(line_, name, std::to_string(value));
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, int value)
{
    return field(name, static_cast<std::int64_t>(value));
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, double value)
{
    appendField(line_, name, formatDouble(value));
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, bool value)
{
    appendField(line_, name, value ? "true" : "false");
    return *this;
}

EventTrace::Event
EventTrace::event(const std::string &type)
{
    lines_.emplace_back("\"event\":\"" + escapeJson(type) + "\"");
    return Event(&lines_.back());
}

std::string
EventTrace::render() const
{
    std::string out;
    for (const std::string &line : lines_) {
        out += '{';
        out += line;
        out += "}\n";
    }
    return out;
}

void
EventTrace::writeFile(const std::string &path) const
{
    const std::string document = render();
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open trace output '", path, "'");
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool ok = written == document.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write to trace output '", path, "'");
}

} // namespace sos::stats
