#include "trace.hh"

#include <cstdio>

#include "common/logging.hh"
#include "stats/json.hh"

namespace sos::stats {

namespace {

void
appendField(std::string *line, const std::string &name,
            const std::string &rendered_value)
{
    *line += ",\"";
    *line += escapeJson(name);
    *line += "\":";
    *line += rendered_value;
}

} // namespace

EventTrace::Event &
EventTrace::Event::field(const std::string &name,
                         const std::string &value)
{
    appendField(line_, name, "\"" + escapeJson(value) + "\"");
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, const char *value)
{
    return field(name, std::string(value));
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, std::uint64_t value)
{
    appendField(line_, name, std::to_string(value));
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, std::int64_t value)
{
    appendField(line_, name, std::to_string(value));
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, int value)
{
    return field(name, static_cast<std::int64_t>(value));
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, double value)
{
    appendField(line_, name, formatDouble(value));
    return *this;
}

EventTrace::Event &
EventTrace::Event::field(const std::string &name, bool value)
{
    appendField(line_, name, value ? "true" : "false");
    return *this;
}

namespace {

/** True for the event types that begin a sampled decision group. */
bool
isPhaseOpener(const std::string &type)
{
    return type == "sample_phase_begin" || type == "dispatch_epoch";
}

} // namespace

void
EventTrace::setPhaseStride(std::uint64_t stride)
{
    SOS_ASSERT(stride > 0, "trace phase stride must be positive");
    phaseStride_ = stride;
}

void
EventTrace::setContextField(const std::string &name,
                            const std::string &rendered_value)
{
    appendField(&context_, name, rendered_value);
}

void
EventTrace::append(const EventTrace &other)
{
    lines_.insert(lines_.end(), other.lines_.begin(),
                  other.lines_.end());
}

EventTrace::Event
EventTrace::event(const std::string &type)
{
    if (phaseStride_ > 1 && isPhaseOpener(type)) {
        gateOpen_ = phasesSeen_ % phaseStride_ == 0;
        ++phasesSeen_;
    }
    if (!gateOpen_) {
        discard_.clear();
        return Event(&discard_);
    }
    lines_.emplace_back("\"event\":\"" + escapeJson(type) + "\"" +
                        context_);
    return Event(&lines_.back());
}

std::string
EventTrace::render() const
{
    std::string out;
    for (const std::string &line : lines_) {
        out += '{';
        out += line;
        out += "}\n";
    }
    return out;
}

void
EventTrace::writeFile(const std::string &path) const
{
    const std::string document = render();
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal("cannot open trace output '", path, "'");
    const std::size_t written =
        std::fwrite(document.data(), 1, document.size(), file);
    const bool ok = written == document.size() && std::fclose(file) == 0;
    if (!ok)
        fatal("short write to trace output '", path, "'");
}

} // namespace sos::stats
