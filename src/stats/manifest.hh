/**
 * @file
 * Schema-versioned JSON run manifests.
 *
 * A manifest is the machine-readable record of one harness run: what
 * binary ran, at which git revision, with which configuration and
 * seed, and every stat the run registered. Manifests are emitted next
 * to the human-readable tables (--out FILE / SOS_OUT=FILE) and are
 * the substrate cross-PR performance comparisons are built on.
 *
 * Determinism: a manifest is a pure function of (tool, config, seed,
 * registry contents). There is deliberately no timestamp or hostname,
 * so two runs of the same binary with the same seed -- at any worker
 * count -- produce bit-identical files (the PR-1 determinism contract
 * extended to observability output).
 *
 * Schema (version 1):
 * {
 *   "schema": "sos.run-manifest",
 *   "schema_version": 1,
 *   "tool": "<binary name>",
 *   "git_rev": "<short rev or 'unknown'>",
 *   "seed": <uint>,
 *   "config": { "<key>": "<value>", ... },
 *   "stats": { <nested tree; leaves per stat kind> }
 * }
 */

#ifndef SOS_STATS_MANIFEST_HH
#define SOS_STATS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "stats/stats.hh"

namespace sos::stats {

/** Identity of one run, written at the top of its manifest. */
struct Manifest
{
    /** Current manifest schema version. */
    static constexpr int schemaVersion = 1;

    /** Value of the "schema" discriminator field. */
    static const char *schemaName() { return "sos.run-manifest"; }

    /** Binary that produced the run ("fig1_ws_range", "sossim"). */
    std::string tool;

    /** Git revision baked in at build time; "unknown" outside git. */
    std::string gitRev = buildGitRev();

    /** Master seed of the run. */
    std::uint64_t seed = 0;

    /** Effective configuration as ordered key/value pairs. */
    std::vector<std::pair<std::string, std::string>> config;

    /** The short revision the library was built from. */
    static std::string buildGitRev();
};

/** Render the manifest plus registry as one JSON document. */
std::string renderManifest(const Manifest &manifest,
                           const Registry &registry);

/**
 * Write the manifest to @p path (fatal() on I/O failure, as a bad
 * --out destination is a user error).
 */
void writeManifestFile(const std::string &path, const Manifest &manifest,
                       const Registry &registry);

} // namespace sos::stats

#endif // SOS_STATS_MANIFEST_HH
