#include "functional_executor.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "cpu/smt_core.hh"
#include "cpu/sync_domain.hh"

namespace sos {

namespace {

/**
 * Uops executed per slot before rotating to the next: small enough
 * that barrier partners release each other within one pass, large
 * enough that the rotation overhead disappears in the noise.
 */
constexpr std::uint64_t Chunk = 64;

} // namespace

void
FunctionalExecutor::run(std::uint64_t cycles, const Rates &rates,
                        PerfCounters &counters)
{
    SmtCore &c = core_;
    if (cycles == 0)
        return;
    SOS_ASSERT(c.inFlightCount() == 0,
               "functional fast-forward needs a drained core");

    // Memory-system counters are component deltas, exactly as in the
    // detailed SmtCore::run -- the warming traffic is real traffic.
    const std::uint64_t l1i_h0 = c.mem_.l1i().hits();
    const std::uint64_t l1i_m0 = c.mem_.l1i().misses();
    const std::uint64_t l1d_h0 = c.mem_.l1d().hits();
    const std::uint64_t l1d_m0 = c.mem_.l1d().misses();
    const std::uint64_t l2_h0 = c.mem_.l2CoreCounters().hits;
    const std::uint64_t l2_m0 = c.mem_.l2CoreCounters().misses;
    const std::uint64_t itlb_m0 = c.mem_.itlb().misses();
    const std::uint64_t dtlb_m0 = c.mem_.dtlb().misses();

    PerfCounters d;

    // The rate (detailed uops/cycle) converts the cycle span into the
    // uop count full detail would have retired in it.
    std::array<std::uint64_t, MaxContexts> budget{};
    for (int i = 0; i < c.numActive_; ++i) {
        const auto s = static_cast<std::size_t>(
            c.activeList_[static_cast<std::size_t>(i)]);
        budget[s] = static_cast<std::uint64_t>(
            std::llround(rates[s] * static_cast<double>(cycles)));
    }

    bool progress = true;
    while (progress) {
        progress = false;
        for (int i = 0; i < c.numActive_; ++i) {
            const auto s = static_cast<std::size_t>(
                c.activeList_[static_cast<std::size_t>(i)]);
            if (budget[s] == 0)
                continue;
            SmtCore::CtxCold &cold = c.cold_[s];
            const ThreadBinding &bind = cold.bind;
            if (c.atBarrier_[s]) {
                // Parked threads spend no budget: functionally the
                // spin loop is pure waiting. The partner that must
                // release them keeps running in this same pass.
                if (bind.sync->blocked(bind.syncIndex))
                    continue;
                c.atBarrier_[s] = 0;
            }
            std::uint64_t n = std::min(Chunk, budget[s]);
            while (n > 0) {
                const UOp op = bind.gen->next();
                if (op.cls == OpClass::Barrier) {
                    // Consumed for free, as at detailed fetch. An
                    // arrival is progress even when it blocks this
                    // thread: it may have released a partner already
                    // passed over in this rotation.
                    bind.sync->arrive(bind.syncIndex);
                    ++d.barriers;
                    progress = true;
                    if (bind.sync->blocked(bind.syncIndex)) {
                        c.atBarrier_[s] = 1;
                        break;
                    }
                    continue;
                }

                // Warm the instruction side on line changes (the same
                // filter detailed fetch applies) and the data side,
                // TLBs and prefetcher on every memory op; latencies
                // are ignored, the state updates are the point.
                const std::uint64_t line = op.pc >> c.l1iLineShift_;
                if (line != cold.lastFetchLine) {
                    cold.lastFetchLine = line;
                    (void)c.mem_.instAccess(c.asid_[s], op.pc);
                }
                if (op.isMem()) {
                    (void)c.mem_.dataAccess(c.asid_[s], op.addr,
                                            op.cls == OpClass::Store,
                                            op.pc);
                }
                switch (op.cls) {
                  case OpClass::IntAlu:
                  case OpClass::IntMult:
                    ++d.intOps;
                    break;
                  case OpClass::Branch:
                    ++d.intOps;
                    ++d.branches;
                    if (c.bpred_.predictAndUpdate(cold.predSalt, op.pc,
                                                  op.taken) != op.taken)
                        ++d.branchMispredicts;
                    break;
                  case OpClass::FpAdd:
                  case OpClass::FpMult:
                  case OpClass::FpDiv:
                    ++d.fpOps;
                    break;
                  case OpClass::Load:
                    ++d.loads;
                    break;
                  case OpClass::Store:
                    ++d.stores;
                    break;
                  case OpClass::Barrier:
                    panic("barrier handled above");
                }
                ++d.fetched;
                ++d.dispatched;
                ++d.issued;
                ++d.retired;
                ++d.slotRetired[s];
                --budget[s];
                --n;
                progress = true;
            }
        }
        // A full rotation without a single retired uop means every
        // slot with budget left is parked behind a barrier whose
        // partners ran dry: the remaining span is idle time.
    }

    c.cycle_ += cycles;
    d.cycles = cycles;
    d.l1iHits = c.mem_.l1i().hits() - l1i_h0;
    d.l1iMisses = c.mem_.l1i().misses() - l1i_m0;
    d.l1dHits = c.mem_.l1d().hits() - l1d_h0;
    d.l1dMisses = c.mem_.l1d().misses() - l1d_m0;
    d.l2Hits = c.mem_.l2CoreCounters().hits - l2_h0;
    d.l2Misses = c.mem_.l2CoreCounters().misses - l2_m0;
    d.itlbMisses = c.mem_.itlb().misses() - itlb_m0;
    d.dtlbMisses = c.mem_.dtlb().misses() - dtlb_m0;
    counters += d;
}

} // namespace sos
