/**
 * @file
 * Shared branch direction predictor.
 *
 * A per-address table of 2-bit saturating counters (bimodal), salted
 * with a per-thread hash so that coscheduled jobs -- whose synthetic
 * code occupies the same virtual addresses -- spread across the shared
 * table and interfere only through genuine capacity pressure, as on a
 * real SMT front end. History-based indexing is deliberately not used:
 * the synthetic branch outcomes are per-site biases, so history bits
 * would only alias the table without adding predictable correlation.
 *
 * Targets are not predicted: the trace carries the architectural
 * target, and a taken branch simply ends the thread's fetch block for
 * the cycle, which is the first-order cost.
 */

#ifndef SOS_CPU_BRANCH_PREDICTOR_HH
#define SOS_CPU_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

namespace sos {

/** ASID-salted bimodal predictor with 2-bit saturating counters. */
class BranchPredictor
{
  public:
    /** @param index_bits log2 of the counter-table size. */
    explicit BranchPredictor(int index_bits);

    /**
     * Predict a branch and train the table with the actual outcome.
     * Defined inline below: runs for every branch fetched
     * (DESIGN.md section 9).
     *
     * @param salt Per-thread table salt (hash of the ASID).
     * @param pc Branch instruction address.
     * @param taken Architectural outcome from the trace.
     * @return The predicted direction (before training).
     */
    bool predictAndUpdate(std::uint32_t salt, std::uint64_t pc,
                          bool taken);

    /** Reset all counters to weakly not-taken. */
    void reset();

    /** Lifetime predictions made. */
    std::uint64_t lookups() const { return lookups_; }

    /** Lifetime mispredictions. */
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::vector<std::uint8_t> table_;
    std::uint32_t mask_;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

inline bool
BranchPredictor::predictAndUpdate(std::uint32_t salt, std::uint64_t pc,
                                  bool taken)
{
    const std::uint32_t index =
        (static_cast<std::uint32_t>(pc >> 2) ^ salt) & mask_;
    std::uint8_t &counter = table_[index];
    const bool predicted = counter >= 2;

    ++lookups_;
    if (predicted != taken)
        ++mispredicts_;

    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
    return predicted;
}

} // namespace sos

#endif // SOS_CPU_BRANCH_PREDICTOR_HH
