/**
 * @file
 * Static configuration of the SMT core.
 *
 * Defaults model the Compaq Alpha 21264 with the modest SMT additions
 * the paper assumes: per-context architectural state, shared rename
 * register pools, shared issue queues and functional units, and
 * ICOUNT.2.8 fetch (up to 8 instructions from up to 2 threads per
 * cycle, favouring threads with the fewest in-flight instructions).
 */

#ifndef SOS_CPU_CORE_PARAMS_HH
#define SOS_CPU_CORE_PARAMS_HH

namespace sos {

/** Maximum number of hardware contexts any core can be built with. */
constexpr int MaxContexts = 8;

/** Microarchitectural parameters of the SMT core. */
struct CoreParams
{
    /** Hardware contexts (the multithreading level). */
    int numContexts = 4;

    /** @name Front end @{ */
    int fetchWidth = 8;          ///< instructions fetched per cycle
    int fetchThreads = 2;        ///< threads fetched from per cycle
    int fetchQueueSize = 32;     ///< per-context fetch/decode buffer
    int frontendDelay = 4;       ///< fetch-to-dispatch pipeline depth
    int mispredictRedirect = 2;  ///< redirect cycles after resolution
    /** @} */

    /** @name Dispatch / issue / commit @{ */
    int dispatchWidth = 8;
    int commitWidth = 8;
    int intQueueSize = 20;  ///< 21264 integer issue queue
    int fpQueueSize = 15;   ///< 21264 FP issue queue
    int intRenameRegs = 48; ///< shared INT rename pool (80 - 32 arch)
    int fpRenameRegs = 40;  ///< shared FP rename pool (72 - 32 arch)
    int robSize = 128;      ///< shared reorder/scoreboard entries
    /** @} */

    /** @name Functional units @{ */
    int numIntUnits = 4; ///< integer ALUs (branches resolve here)
    /**
     * FP pipelines, split by type as on the 21264: adds/compares go
     * down the add pipe, multiplies (and the non-pipelined divide)
     * down the multiply pipe. The split is what makes FP-concentrated
     * coschedules saturate -- the conflict signature the paper's FQ /
     * FP / Sum2 predictors key on.
     */
    int fpAddPipes = 1;
    int fpMulPipes = 1;
    int numLsPorts = 2; ///< load/store ports into the L1D
    /** @} */

    /** @name Operation latencies (cycles) @{ */
    int intAluLat = 1;
    int intMultLat = 7;
    int fpAddLat = 4;
    int fpMultLat = 4;
    int fpDivLat = 12;
    int l1dHitLat = 3; ///< load-to-use on an L1D hit
    /** @} */

    /** @name Branch prediction @{ */
    int predictorBits = 16; ///< log2 of predictor counter-table entries
    /** @} */

    /**
     * Fetch-policy ablation: when true, fetch rotates round-robin over
     * the active contexts instead of favouring low-ICOUNT threads.
     */
    bool roundRobinFetch = false;

    /**
     * Field-wise equality.  Machine::coreClasses partitions cores by
     * comparing params, so every behavioural field participates; any
     * new member is automatically included by the defaulted operator.
     */
    bool operator==(const CoreParams &) const = default;
};

/**
 * Check a core configuration for structural validity: context count
 * within [1, MaxContexts], FP pipe counts the issue stage can track,
 * and positive widths, queue depths and latencies.  Called at SmtCore
 * construction, so a misconfigured experiment fails loudly instead of
 * simulating nonsense.
 *
 * @throws std::invalid_argument describing the first violation.
 */
void validateCoreParams(const CoreParams &params);

} // namespace sos

#endif // SOS_CPU_CORE_PARAMS_HH
