/**
 * @file
 * SMARTS-style sampling controller over the fidelity-polymorphic
 * execution stack (DESIGN.md section 10).
 *
 * A sampled interval alternates detailed and functional execution:
 * run W detailed warm-up cycles and M detailed measured cycles, take
 * each slot's retirement rate from the M window, then drain the
 * pipeline and fast-forward U cycles functionally (the
 * FunctionalExecutor retires rate * U uops per slot, warming caches,
 * TLBs and the branch predictor), and repeat until the interval is
 * spent. Stage and memory counters are real everywhere; only the
 * per-cycle conflict counters -- which exist solely in the detailed
 * windows -- are extrapolated over the full interval by the cycle
 * ratio.
 *
 * Rates are local to each controller call (one timeslice), never
 * carried across calls: the controller holds no mutable state, so
 * snapshot forks and engine adoption stay trivially deterministic.
 */

#ifndef SOS_CPU_SAMPLING_HH
#define SOS_CPU_SAMPLING_HH

#include <atomic>
#include <cstdint>

#include "cpu/functional_executor.hh"
#include "cpu/sample_windows.hh"
#include "cpu/smt_core.hh"

namespace sos {

namespace stats {
class Group;
} // namespace stats

/**
 * Process-wide sampled-mode bookkeeping, the raw material of the
 * manifest's "sampling" stats group. Counters are integers
 * accumulated with relaxed atomics, so totals are independent of
 * worker count and scheduling order (the determinism contract); warm
 * runs are excluded by the callers (recording off), which keeps the
 * totals identical across the snapshot fast path too.
 */
struct SamplingStats
{
    std::atomic<std::uint64_t> periods{0}; ///< fast-forward windows run
    std::atomic<std::uint64_t> fastForwardCycles{0};
    std::atomic<std::uint64_t> detailedCycles{0};
    /** Full-length measurement windows (truncated tails excluded). */
    std::atomic<std::uint64_t> measureWindows{0};
    /** Sum and sum of squares of per-window retired uop counts. */
    std::atomic<std::uint64_t> windowRetired{0};
    std::atomic<std::uint64_t> windowRetiredSq{0};

    void reset();
};

/** The process-wide accumulator. */
SamplingStats &samplingStats();

/** Zero the accumulator (between in-process experiments/tests). */
void resetSamplingStats();

/**
 * Register the sampled-mode stats group under @p group: the
 * configured windows, the cycle split between fidelity levels, and
 * the error-estimate fields (ipc_cv, the coefficient of variation of
 * IPC across full measurement windows -- the within-run estimate of
 * sampled-vs-full error -- and detailed_fraction, the share of cycles
 * actually simulated in detail).
 */
void publishSamplingStats(const stats::Group &group,
                          const SampleWindows &sample);

/** Drives one core through an interval at the configured fidelity. */
class SamplingController
{
  public:
    SamplingController(SmtCore &core, const SampleWindows &sample)
        : core_(core), fx_(core), sample_(sample)
    {
    }

    /**
     * Run @p cycles simulated cycles, accumulating counters exactly
     * like SmtCore::run would (cycles, slotRetired and memory deltas
     * included). With sampling disabled this IS SmtCore::run; enabled,
     * conflict counters are extrapolated as documented above.
     */
    void run(std::uint64_t cycles, PerfCounters &counters);

    /**
     * Record into the global SamplingStats (default on). Callers turn
     * it off for warm-up intervals so the totals stay independent of
     * how warm state is shared (snapshot forks run the warmup once).
     */
    void setRecording(bool recording) { recording_ = recording; }

    /** Swap the window configuration (engines wire it post-build). */
    void setSample(const SampleWindows &sample) { sample_ = sample; }

    const SampleWindows &sample() const { return sample_; }

  private:
    SmtCore &core_;
    FunctionalExecutor fx_;
    SampleWindows sample_;
    bool recording_ = true;
};

} // namespace sos

#endif // SOS_CPU_SAMPLING_HH
