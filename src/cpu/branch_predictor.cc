#include "branch_predictor.hh"

#include "common/logging.hh"

namespace sos {

BranchPredictor::BranchPredictor(int index_bits)
{
    SOS_ASSERT(index_bits >= 4 && index_bits <= 24);
    table_.assign(std::size_t{1} << index_bits, 1); // weakly not-taken
    mask_ = static_cast<std::uint32_t>(table_.size() - 1);
}

void
BranchPredictor::reset()
{
    for (auto &counter : table_)
        counter = 1;
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace sos
