#include "core_params.hh"

#include <stdexcept>
#include <string>

namespace sos {

namespace {

/** The fpBusyUntil_ tracking capacity of SmtCore's issue stage. */
constexpr int MaxFpMulPipes = 8;

[[noreturn]] void
bad(const std::string &what)
{
    throw std::invalid_argument("CoreParams: " + what);
}

void
requirePositive(int value, const char *name)
{
    if (value < 1) {
        bad(std::string(name) + " must be >= 1, got " +
            std::to_string(value));
    }
}

} // namespace

void
validateCoreParams(const CoreParams &params)
{
    if (params.numContexts < 1 || params.numContexts > MaxContexts) {
        bad("numContexts must be in [1, " +
            std::to_string(MaxContexts) + "], got " +
            std::to_string(params.numContexts));
    }
    if (params.fpMulPipes > MaxFpMulPipes) {
        bad("fpMulPipes exceeds the issue stage's busy-tracking "
            "capacity of " +
            std::to_string(MaxFpMulPipes) + ", got " +
            std::to_string(params.fpMulPipes));
    }
    requirePositive(params.fetchWidth, "fetchWidth");
    requirePositive(params.fetchThreads, "fetchThreads");
    requirePositive(params.fetchQueueSize, "fetchQueueSize");
    requirePositive(params.frontendDelay, "frontendDelay");
    if (params.mispredictRedirect < 0) {
        bad("mispredictRedirect must be >= 0, got " +
            std::to_string(params.mispredictRedirect));
    }
    requirePositive(params.dispatchWidth, "dispatchWidth");
    requirePositive(params.commitWidth, "commitWidth");
    requirePositive(params.intQueueSize, "intQueueSize");
    requirePositive(params.fpQueueSize, "fpQueueSize");
    requirePositive(params.intRenameRegs, "intRenameRegs");
    requirePositive(params.fpRenameRegs, "fpRenameRegs");
    requirePositive(params.robSize, "robSize");
    requirePositive(params.numIntUnits, "numIntUnits");
    requirePositive(params.fpAddPipes, "fpAddPipes");
    requirePositive(params.fpMulPipes, "fpMulPipes");
    requirePositive(params.numLsPorts, "numLsPorts");
    requirePositive(params.intAluLat, "intAluLat");
    requirePositive(params.intMultLat, "intMultLat");
    requirePositive(params.fpAddLat, "fpAddLat");
    requirePositive(params.fpMultLat, "fpMultLat");
    requirePositive(params.fpDivLat, "fpDivLat");
    requirePositive(params.l1dHitLat, "l1dHitLat");
    requirePositive(params.predictorBits, "predictorBits");
    if (params.predictorBits > 30) {
        bad("predictorBits above 30 would allocate a >8 GiB table, "
            "got " +
            std::to_string(params.predictorBits));
    }
}

} // namespace sos
