#include "machine.hh"

#include <stdexcept>
#include <string>

#include "stats/stats.hh"

namespace sos {

bool
MachineParams::homogeneous() const
{
    for (int k = 0; k < numCores; ++k) {
        if (!(coreParams(k) == coreParams(0)) ||
            !(memParams(k) == memParams(0))) {
            return false;
        }
    }
    return true;
}

std::vector<int>
MachineParams::coreClasses() const
{
    std::vector<int> ids(static_cast<std::size_t>(numCores), -1);
    std::vector<int> representatives; // core index of each class
    for (int k = 0; k < numCores; ++k) {
        for (std::size_t c = 0; c < representatives.size(); ++c) {
            const int rep = representatives[c];
            if (coreParams(k) == coreParams(rep) &&
                memParams(k) == memParams(rep)) {
                ids[static_cast<std::size_t>(k)] = static_cast<int>(c);
                break;
            }
        }
        if (ids[static_cast<std::size_t>(k)] < 0) {
            ids[static_cast<std::size_t>(k)] =
                static_cast<int>(representatives.size());
            representatives.push_back(k);
        }
    }
    return ids;
}

void
validateMachineParams(const MachineParams &params)
{
    if (params.numCores < 1 || params.numCores > MaxCores) {
        throw std::invalid_argument(
            "MachineParams: numCores must be in [1, " +
            std::to_string(MaxCores) + "], got " +
            std::to_string(params.numCores));
    }
    const auto checkSize = [&params](std::size_t size,
                                     const char *field) {
        if (size != 0 &&
            size != static_cast<std::size_t>(params.numCores)) {
            throw std::invalid_argument(
                "MachineParams: " + std::string(field) +
                " must be empty or hold one entry per core (" +
                std::to_string(params.numCores) + "), got " +
                std::to_string(size));
        }
    };
    checkSize(params.cores.size(), "cores");
    checkSize(params.coreMem.size(), "coreMem");
    validateCoreParams(params.core);
    validateMemParams(params.mem);
    for (int k = 0; k < params.numCores; ++k) {
        try {
            validateCoreParams(params.coreParams(k));
            validateMemParams(params.memParams(k));
        } catch (const std::invalid_argument &err) {
            throw std::invalid_argument(
                "core " + std::to_string(k) + ": " + err.what());
        }
    }
}

Machine::Machine(const MachineParams &params)
    : params_((validateMachineParams(params), params)),
      l2_(params.mem, params.numCores)
{
    views_.reserve(static_cast<std::size_t>(params.numCores));
    cores_.reserve(static_cast<std::size_t>(params.numCores));
    for (int k = 0; k < params.numCores; ++k) {
        views_.push_back(std::make_unique<CacheHierarchy>(
            params.memParams(k), l2_, k));
        cores_.push_back(std::make_unique<SmtCore>(
            params.coreParams(k), *views_.back()));
    }
}

Machine::Machine(const CoreParams &core, const MemParams &mem,
                 int num_cores)
    : Machine(MachineParams{num_cores, core, mem})
{
}

Machine::Machine(const Machine &other)
    : params_(other.params_), l2_(other.l2_)
{
    views_.reserve(other.views_.size());
    cores_.reserve(other.cores_.size());
    for (int k = 0; k < other.numCores(); ++k) {
        views_.push_back(
            std::make_unique<CacheHierarchy>(other.memory(k), l2_));
        cores_.push_back(
            std::make_unique<SmtCore>(other.core(k), *views_.back()));
    }
}

void
Machine::detachAll()
{
    for (auto &core : cores_)
        core->detachAll();
}

void
Machine::flushAll()
{
    for (auto &view : views_)
        view->flushAll(); // each view also flushes the shared L2
}

void
Machine::registerStats(const stats::Group &group) const
{
    l2_.cache().registerStats(group.group("l2"));
    for (int k = 0; k < numCores(); ++k) {
        const stats::Group core_group =
            group.group("core" + std::to_string(k));
        const CacheHierarchy &view = *views_[static_cast<std::size_t>(k)];
        view.l1i().registerStats(core_group.group("l1i"));
        view.l1d().registerStats(core_group.group("l1d"));
        view.itlb().registerStats(core_group.group("itlb"));
        view.dtlb().registerStats(core_group.group("dtlb"));
        core_group.group("prefetcher")
            .formula("issued", "prefetches issued", [&view] {
                return static_cast<double>(view.prefetcher().issued());
            });
        l2_.registerCoreStats(core_group.group("l2_contention"), k);
    }
}

} // namespace sos
