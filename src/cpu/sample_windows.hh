/**
 * @file
 * Window configuration of the sampled (SMARTS-style) execution mode.
 *
 * Lives at the cpu layer so everything that drives a core -- the sim
 * engines, but also the solo-IPC Calibrator in metrics -- can speak
 * both fidelity levels without reaching up into sim configuration.
 */

#ifndef SOS_CPU_SAMPLE_WINDOWS_HH
#define SOS_CPU_SAMPLE_WINDOWS_HH

#include <cstdint>

namespace sos {

/**
 * Sampled-simulation window lengths (simulated cycles), the SMARTS
 * pattern: fast-forward U cycles functionally (caches, TLBs and the
 * branch predictor stay warm, architectural state and RNG streams
 * advance, but no per-cycle pipeline modeling), then run W cycles of
 * detailed warm-up and M cycles of detailed measurement. The detailed
 * windows' counters are real; only the per-cycle conflict counters
 * are extrapolated over the fast-forwarded span. fastForward == 0
 * disables sampling entirely (the default), leaving the full-detail
 * path untouched.
 */
struct SampleWindows
{
    std::uint64_t fastForward = 0; ///< U: functional cycles per period
    std::uint64_t warm = 0;        ///< W: detailed warm-up cycles
    std::uint64_t measure = 0;     ///< M: detailed measured cycles

    bool enabled() const { return fastForward > 0; }

    /** Detailed cycles per period (rate estimation spans both). */
    std::uint64_t detailed() const { return warm + measure; }

    bool operator==(const SampleWindows &) const = default;
};

} // namespace sos

#endif // SOS_CPU_SAMPLE_WINDOWS_HH
