#include "sampling.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "stats/stats.hh"

namespace sos {

namespace {

/** Relaxed add: totals are sums, order never matters. */
void
add(std::atomic<std::uint64_t> &counter, std::uint64_t v)
{
    counter.fetch_add(v, std::memory_order_relaxed);
}

} // namespace

void
SamplingStats::reset()
{
    periods.store(0, std::memory_order_relaxed);
    fastForwardCycles.store(0, std::memory_order_relaxed);
    detailedCycles.store(0, std::memory_order_relaxed);
    measureWindows.store(0, std::memory_order_relaxed);
    windowRetired.store(0, std::memory_order_relaxed);
    windowRetiredSq.store(0, std::memory_order_relaxed);
}

SamplingStats &
samplingStats()
{
    static SamplingStats stats;
    return stats;
}

void
resetSamplingStats()
{
    samplingStats().reset();
}

void
publishSamplingStats(const stats::Group &group,
                     const SampleWindows &sample)
{
    const SamplingStats &s = samplingStats();
    const std::uint64_t periods =
        s.periods.load(std::memory_order_relaxed);
    const std::uint64_t ff =
        s.fastForwardCycles.load(std::memory_order_relaxed);
    const std::uint64_t detailed =
        s.detailedCycles.load(std::memory_order_relaxed);
    const std::uint64_t windows =
        s.measureWindows.load(std::memory_order_relaxed);
    const std::uint64_t retired =
        s.windowRetired.load(std::memory_order_relaxed);
    const std::uint64_t retired_sq =
        s.windowRetiredSq.load(std::memory_order_relaxed);

    const stats::Group config = group.group("config");
    config.scalar("fast_forward", "U window (simulated cycles)") =
        sample.fastForward;
    config.scalar("warm", "W window (simulated cycles)") = sample.warm;
    config.scalar("measure", "M window (simulated cycles)") =
        sample.measure;

    group.scalar("periods", "fast-forward windows run") = periods;
    group.scalar("fast_forward_cycles",
                 "cycles executed functionally") = ff;
    group.scalar("detailed_cycles", "cycles executed in detail") =
        detailed;
    group.scalar("measure_windows",
                 "full-length measurement windows") = windows;

    const stats::Group error = group.group("error");
    error.value("detailed_fraction",
                "share of cycles simulated in detail") =
        ff + detailed > 0
            ? static_cast<double>(detailed) /
                  static_cast<double>(ff + detailed)
            : 1.0;
    // Coefficient of variation of retired uops (equivalently IPC --
    // the window length is fixed) across full measurement windows:
    // the within-run estimate of the error the extrapolation commits.
    double cv = 0.0;
    if (windows > 1 && retired > 0) {
        const double n = static_cast<double>(windows);
        const double mean = static_cast<double>(retired) / n;
        const double var = std::max(
            0.0, static_cast<double>(retired_sq) / n - mean * mean);
        cv = std::sqrt(var) / mean;
    }
    error.value("ipc_cv",
                "IPC coefficient of variation across measurement "
                "windows") = cv;
}

void
SamplingController::run(std::uint64_t cycles, PerfCounters &counters)
{
    if (!sample_.enabled()) {
        core_.run(cycles, counters);
        return;
    }

    // Accumulate locally: the conflict extrapolation below must scale
    // only this interval's conflict cycles, not the caller's history.
    PerfCounters d;
    FunctionalExecutor::Rates rates{};
    std::uint64_t remaining = cycles;
    std::uint64_t detailed_total = 0;
    std::uint64_t fast_total = 0;
    while (remaining > 0) {
        const std::uint64_t w = std::min(sample_.warm, remaining);
        if (w > 0) {
            core_.run(w, d);
            remaining -= w;
            detailed_total += w;
        }
        if (remaining == 0)
            break;

        const std::uint64_t m = std::min(sample_.measure, remaining);
        PerfCounters mc;
        core_.run(m, mc);
        remaining -= m;
        detailed_total += m;
        for (std::size_t slot = 0; slot < MaxContexts; ++slot) {
            rates[slot] = static_cast<double>(mc.slotRetired[slot]) /
                          static_cast<double>(m);
        }
        if (recording_ && m == sample_.measure) {
            SamplingStats &s = samplingStats();
            add(s.measureWindows, 1);
            add(s.windowRetired, mc.retired);
            add(s.windowRetiredSq, mc.retired * mc.retired);
        }
        d += mc;
        if (remaining == 0)
            break;

        const std::uint64_t u = std::min(sample_.fastForward, remaining);
        core_.drainInFlight(d);
        fx_.run(u, rates, d);
        remaining -= u;
        fast_total += u;
        if (recording_)
            add(samplingStats().periods, 1);
    }

    if (fast_total > 0 && detailed_total > 0) {
        // Conflict counters increment at most once per detailed cycle;
        // extrapolate them over the fast-forwarded span by the cycle
        // ratio (integer math; counts are far below overflow range).
        const auto scale = [&](std::uint64_t &conf) {
            conf = conf * cycles / detailed_total;
        };
        scale(d.confIntQueue);
        scale(d.confFpQueue);
        scale(d.confIntRegs);
        scale(d.confFpRegs);
        scale(d.confRob);
        scale(d.confIntUnits);
        scale(d.confFpUnits);
        scale(d.confLsPorts);
    }
    if (recording_) {
        SamplingStats &s = samplingStats();
        add(s.detailedCycles, detailed_total);
        add(s.fastForwardCycles, fast_total);
    }
    counters += d;
}

} // namespace sos
