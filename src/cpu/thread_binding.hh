/**
 * @file
 * What the jobscheduler attaches to a hardware context for a timeslice.
 */

#ifndef SOS_CPU_THREAD_BINDING_HH
#define SOS_CPU_THREAD_BINDING_HH

#include <cstdint>

namespace sos {

class TraceGenerator;
class SyncDomain;

/**
 * Binding of one software thread to one hardware context.
 *
 * The generator and sync domain are owned by the Job; the core only
 * borrows them for the duration of the timeslice.
 */
struct ThreadBinding
{
    /** Instruction stream of the thread (must outlive the binding). */
    TraceGenerator *gen = nullptr;

    /** Barrier domain for parallel jobs; nullptr for sequential. */
    SyncDomain *sync = nullptr;

    /** This thread's index within its sync domain. */
    int syncIndex = 0;

    /** Address space id (per job; siblings share one). */
    std::uint16_t asid = 0;
};

} // namespace sos

#endif // SOS_CPU_THREAD_BINDING_HH
