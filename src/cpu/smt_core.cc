#include "smt_core.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"
#include "cpu/sync_domain.hh"

namespace sos {

SmtCore::SmtCore(const CoreParams &params, CacheHierarchy &mem)
    : params_(params), mem_(mem), bpred_(params.predictorBits)
{
    validateCoreParams(params);
    const auto n = static_cast<std::size_t>(params.numContexts);
    cold_.resize(n);
    fetchStride_ = static_cast<std::uint32_t>(params.fetchQueueSize);
    robStride_ = static_cast<std::uint32_t>(params.robSize);
    fetchSlab_.resize(n * fetchStride_);
    robSlab_.resize(n * robStride_);

    const std::size_t slab_size = static_cast<std::size_t>(
        params.robSize + params.numContexts * params.fetchQueueSize + 8);
    slab_.resize(slab_size);
    freeList_.reserve(slab_size);
    for (std::size_t i = 0; i < slab_size; ++i)
        freeList_.push_back(static_cast<std::uint32_t>(slab_size - 1 - i));

    intQ_.reserve(static_cast<std::size_t>(params.intQueueSize));
    fpQ_.reserve(static_cast<std::size_t>(params.fpQueueSize));
    intPend_.reserve(static_cast<std::size_t>(params.intQueueSize));
    fpPend_.reserve(static_cast<std::size_t>(params.fpQueueSize));

    intRenameFree_ = params.intRenameRegs;
    fpRenameFree_ = params.fpRenameRegs;
    robFree_ = params.robSize;

    l1iLineShift_ = static_cast<std::uint32_t>(
        std::countr_zero(mem.params().l1i.lineBytes));
    roundRobinFetch_ = params.roundRobinFetch;
}

SmtCore::SmtCore(const SmtCore &other, CacheHierarchy &mem)
    : params_(other.params_), mem_(mem), bpred_(other.bpred_),
      active_(other.active_), atBarrier_(other.atBarrier_),
      asid_(other.asid_), icount_(other.icount_),
      fetchStall_(other.fetchStall_),
      lastFetchCycle_(other.lastFetchCycle_), retired_(other.retired_),
      fqHead_(other.fqHead_), fqCount_(other.fqCount_),
      robHead_(other.robHead_), robCount_(other.robCount_),
      cold_(other.cold_), fetchSlab_(other.fetchSlab_),
      robSlab_(other.robSlab_), fetchStride_(other.fetchStride_),
      robStride_(other.robStride_), activeList_(other.activeList_),
      numActive_(other.numActive_), slab_(other.slab_),
      freeList_(other.freeList_), ageCounter_(other.ageCounter_),
      intQ_(other.intQ_), fpQ_(other.fpQ_),
      intPend_(other.intPend_), fpPend_(other.fpPend_),
      intQCount_(other.intQCount_), fpQCount_(other.fpQCount_),
      intQWake_(other.intQWake_), fpQWake_(other.fpQWake_),
      intRenameFree_(other.intRenameFree_),
      fpRenameFree_(other.fpRenameFree_), robFree_(other.robFree_),
      fpBusyUntil_(other.fpBusyUntil_),
      l1iLineShift_(other.l1iLineShift_),
      roundRobinFetch_(other.roundRobinFetch_), cycle_(other.cycle_),
      commitRR_(other.commitRR_), dispatchRR_(other.dispatchRR_)
{
    intQ_.reserve(static_cast<std::size_t>(params_.intQueueSize));
    fpQ_.reserve(static_cast<std::size_t>(params_.fpQueueSize));
    intPend_.reserve(static_cast<std::size_t>(params_.intQueueSize));
    fpPend_.reserve(static_cast<std::size_t>(params_.fpQueueSize));
}

void
SmtCore::rebuildActiveList()
{
    numActive_ = 0;
    for (int slot = 0; slot < params_.numContexts; ++slot) {
        if (active_[static_cast<std::size_t>(slot)])
            activeList_[static_cast<std::size_t>(numActive_++)] = slot;
    }
}

void
SmtCore::rebindThread(int slot, const ThreadBinding &binding)
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    const auto s = static_cast<std::size_t>(slot);
    SOS_ASSERT(active_[s], "rebind needs a bound slot");
    SOS_ASSERT(binding.gen != nullptr, "binding needs a generator");
    SOS_ASSERT(binding.asid == cold_[s].bind.asid,
               "rebind must preserve the thread's address space");
    SOS_ASSERT((binding.sync != nullptr) ==
                   (cold_[s].bind.sync != nullptr),
               "rebind must preserve the sync domain shape");
    cold_[s].bind = binding;
}

void
SmtCore::attachThread(int slot, const ThreadBinding &binding)
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    const auto s = static_cast<std::size_t>(slot);
    SOS_ASSERT(!active_[s], "slot already bound");
    SOS_ASSERT(binding.gen != nullptr, "binding needs a generator");

    CtxCold &cold = cold_[s];
    active_[s] = 1;
    cold.bind = binding;
    asid_[s] = binding.asid;
    fqHead_[s] = 0;
    fqCount_[s] = 0;
    robHead_[s] = 0;
    robCount_[s] = 0;
    cold.regs.fill(RegEntry{});
    icount_[s] = 0;
    fetchStall_[s] = 0;
    // A thread parked at a barrier stays parked across scheduling.
    atBarrier_[s] =
        binding.sync != nullptr && binding.sync->blocked(binding.syncIndex)
            ? 1
            : 0;
    cold.hasPending = false;
    cold.lastFetchLine = ~std::uint64_t{0};
    cold.predSalt =
        static_cast<std::uint32_t>(mix64(binding.asid) >> 17);
    retired_[s] = 0;
    rebuildActiveList();
}

void
SmtCore::squashCtx(int slot)
{
    const auto s = static_cast<std::size_t>(slot);
    const auto byCtx = [this, slot](const QEntry &e) {
        return slab_[e.id].ctx == static_cast<std::uint8_t>(slot);
    };
    // Queue wakes are left alone: removing entries can only push the
    // true wake later, and a too-early wake just costs a no-op scan.
    intQ_.erase(std::remove_if(intQ_.begin(), intQ_.end(), byCtx),
                intQ_.end());
    fpQ_.erase(std::remove_if(fpQ_.begin(), fpQ_.end(), byCtx),
               fpQ_.end());
    intPend_.erase(
        std::remove_if(intPend_.begin(), intPend_.end(), byCtx),
        intPend_.end());
    fpPend_.erase(std::remove_if(fpPend_.begin(), fpPend_.end(), byCtx),
                  fpPend_.end());
    std::uint32_t head = robHead_[s];
    const std::uint32_t *const rob = &robSlab_[s * robStride_];
    for (std::uint32_t i = 0; i < robCount_[s]; ++i) {
        const std::uint32_t id = rob[head];
        const InFlight &inst = slab_[id];
        if (!inst.completed) {
            // Dispatched but never issued: still held queue capacity.
            if (inst.op.isFp())
                --fpQCount_;
            else
                --intQCount_;
        }
        releaseResources(inst);
        freeList_.push_back(id);
        head = wrapRob(head);
    }
    robHead_[s] = 0;
    robCount_[s] = 0;
    fqHead_[s] = 0;
    fqCount_[s] = 0;
    cold_[s].hasPending = false;
    icount_[s] = 0;
}

void
SmtCore::detachThread(int slot)
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    const auto s = static_cast<std::size_t>(slot);
    SOS_ASSERT(active_[s], "slot not bound");
    squashCtx(slot);
    active_[s] = 0;
    cold_[s].bind = ThreadBinding();
    rebuildActiveList();
}

void
SmtCore::detachAll()
{
    for (int slot = 0; slot < params_.numContexts; ++slot) {
        if (active_[static_cast<std::size_t>(slot)])
            detachThread(slot);
    }
}

bool
SmtCore::slotActive(int slot) const
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    return active_[static_cast<std::size_t>(slot)] != 0;
}

int
SmtCore::inFlightCount() const
{
    int n = 0;
    for (int slot = 0; slot < params_.numContexts; ++slot)
        n += static_cast<int>(robCount_[static_cast<std::size_t>(slot)]);
    return n;
}

void
SmtCore::debugDump() const
{
    std::fprintf(stderr, "cycle=%llu intQ=%d fpQ=%d robFree=%d "
                         "intRen=%d fpRen=%d\n",
                 static_cast<unsigned long long>(cycle_), intQCount_,
                 fpQCount_, robFree_, intRenameFree_, fpRenameFree_);
    auto dumpQ = [&](const char *name,
                     const std::vector<QEntry> &queue) {
        for (std::size_t i = 0; i < std::min<std::size_t>(queue.size(), 6);
             ++i) {
            const InFlight &inst = slab_[queue[i].id];
            std::fprintf(stderr,
                         "  %s[%zu] cls=%d srcA=%d srcB=%d dst=%d "
                         "age=%u readyAt=%llu\n",
                         name, i, static_cast<int>(inst.op.cls),
                         inst.op.srcA, inst.op.srcB, inst.op.dst,
                         queue[i].age,
                         static_cast<unsigned long long>(
                             queue[i].readyAt));
        }
    };
    dumpQ("intQ", intQ_);
    dumpQ("fpQ", fpQ_);
    for (int slot = 0; slot < params_.numContexts; ++slot) {
        const auto s = static_cast<std::size_t>(slot);
        std::fprintf(
            stderr,
            "  ctx%d active=%d fq=%u rob=%u icount=%d stall=%llu "
            "barrier=%d pending=%d\n",
            slot, active_[s] ? 1 : 0, fqCount_[s], robCount_[s],
            icount_[s],
            static_cast<unsigned long long>(fetchStall_[s]),
            atBarrier_[s] ? 1 : 0, cold_[s].hasPending ? 1 : 0);
    }
}

std::uint32_t
SmtCore::allocInst()
{
    SOS_ASSERT(!freeList_.empty(), "instruction slab exhausted");
    const std::uint32_t id = freeList_.back();
    freeList_.pop_back();
    slab_[id].age = ++ageCounter_;
    return id;
}

void
SmtCore::releaseResources(const InFlight &inst)
{
    ++robFree_;
    if (inst.op.dst != NoReg) {
        if (isFpReg(inst.op.dst))
            ++fpRenameFree_;
        else
            ++intRenameFree_;
    }
}

namespace {

/** Dispatch-stage class bookkeeping for a drained (non-spin) uop. */
void
creditDispatchClass(const UOp &op, PerfCounters &pc)
{
    switch (op.cls) {
      case OpClass::IntAlu:
      case OpClass::IntMult:
        ++pc.intOps;
        break;
      case OpClass::Branch:
        ++pc.intOps;
        ++pc.branches;
        break;
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        ++pc.fpOps;
        break;
      case OpClass::Load:
        ++pc.loads;
        break;
      case OpClass::Store:
        ++pc.stores;
        break;
      case OpClass::Barrier:
        panic("barriers never enter the fetch queue");
    }
    ++pc.dispatched;
}

} // namespace

void
SmtCore::drainInFlight(PerfCounters &counters)
{
    for (int i = 0; i < numActive_; ++i) {
        const auto s = static_cast<std::size_t>(
            activeList_[static_cast<std::size_t>(i)]);
        CtxCold &cold = cold_[s];

        // Uops the generator emitted but the pipeline has not finished
        // are retired instantly: the generator cannot rewind, so every
        // emitted uop must be accounted exactly once. Spin ops are
        // synthetic busy-wait filler and vanish uncounted (as in a
        // squash). An op parked behind an icache miss was never even
        // counted as fetched; credit its whole pipeline walk.
        if (cold.hasPending) {
            ++counters.fetched;
            creditDispatchClass(cold.pendingOp, counters);
            ++counters.issued;
            ++counters.retired;
            ++counters.slotRetired[s];
            cold.hasPending = false;
        }
        std::uint32_t fhead = fqHead_[s];
        const Fetched *const fq = &fetchSlab_[s * fetchStride_];
        for (std::uint32_t k = 0; k < fqCount_[s]; ++k) {
            const Fetched &front = fq[fhead];
            if (!front.spin) {
                creditDispatchClass(front.op, counters);
                ++counters.issued;
                ++counters.retired;
                ++counters.slotRetired[s];
            }
            fhead = wrapFetch(fhead);
        }
        fqHead_[s] = 0;
        fqCount_[s] = 0;

        std::uint32_t head = robHead_[s];
        const std::uint32_t *const rob = &robSlab_[s * robStride_];
        for (std::uint32_t k = 0; k < robCount_[s]; ++k) {
            const std::uint32_t id = rob[head];
            const InFlight &inst = slab_[id];
            if (!inst.completed) {
                // Dispatched but never issued: still holds queue
                // capacity and owes its issue credit.
                if (inst.op.isFp())
                    --fpQCount_;
                else
                    --intQCount_;
                if (!inst.spin)
                    ++counters.issued;
            }
            if (!inst.spin) {
                ++counters.retired;
                ++counters.slotRetired[s];
            }
            releaseResources(inst);
            freeList_.push_back(id);
            head = wrapRob(head);
        }
        robHead_[s] = 0;
        robCount_[s] = 0;

        // Values of drained writers are architecturally available now;
        // pendingReg entries would otherwise point at freed slab ids.
        cold.regs.fill(RegEntry{});
        icount_[s] = 0;
        // Clears icache-miss stalls and -- crucially -- the
        // redirectPending parking of drained mispredicted branches,
        // which would otherwise never resolve.
        fetchStall_[s] = 0;
    }

    intQ_.clear();
    fpQ_.clear();
    intPend_.clear();
    fpPend_.clear();
    intQWake_ = noWake;
    fpQWake_ = noWake;
    SOS_ASSERT(intQCount_ == 0 && fpQCount_ == 0,
               "issue-queue occupancy leaked through a drain");
    SOS_ASSERT(robFree_ == params_.robSize, "ROB leaked through a drain");
    fpBusyUntil_.fill(0);
}

void
SmtCore::run(std::uint64_t cycles, PerfCounters &counters)
{
    if (numActive_ == 0) {
        // Nothing bound, nothing in flight (detach squashes): the
        // whole interval is architecturally empty.
        cycle_ += cycles;
        counters.cycles += cycles;
        return;
    }

    // Memory-system counters are derived from component deltas.
    const std::uint64_t l1i_h0 = mem_.l1i().hits();
    const std::uint64_t l1i_m0 = mem_.l1i().misses();
    const std::uint64_t l1d_h0 = mem_.l1d().hits();
    const std::uint64_t l1d_m0 = mem_.l1d().misses();
    // L2 counts come from this core's contention counters, not the
    // shared cache's aggregate: on a multicore machine the aggregate
    // mixes in other cores' traffic.
    const std::uint64_t l2_h0 = mem_.l2CoreCounters().hits;
    const std::uint64_t l2_m0 = mem_.l2CoreCounters().misses;
    const std::uint64_t itlb_m0 = mem_.itlb().misses();
    const std::uint64_t dtlb_m0 = mem_.dtlb().misses();

    retired_.fill(0);

    // Stage bookkeeping lands in a stack-local delta; one += at the
    // end makes it visible (every PerfCounters field is additive).
    PerfCounters d;
    const std::uint64_t end = cycle_ + cycles;
    while (cycle_ < end) {
        const bool committed = doCommit(d);
        const bool scanned = intQWake_ <= cycle_ || fpQWake_ <= cycle_;
        doIssue(d);
        const std::uint32_t disp = doDispatch(d);
        const bool fetched = doFetch(d);
        ++cycle_;
        if (committed || scanned || (disp & dispAny) != 0 || fetched)
            continue;

        // Idle cycle: every stage either did nothing or (dispatch)
        // raised the same per-cycle conflict flags it will keep
        // raising while the pipeline is frozen.  Jump straight to the
        // next scheduled event, crediting the skipped cycles' flags
        // and round-robin rotation arithmetically -- the simulated
        // machine cannot tell the difference.
        std::uint64_t event = nextEventCycle();
        if (event > end)
            event = end;
        if (event <= cycle_)
            continue;
        const std::uint64_t k = event - cycle_;
        if ((disp & dispConfRob) != 0)
            d.confRob += k;
        if ((disp & dispConfIntQ) != 0)
            d.confIntQueue += k;
        if ((disp & dispConfFpQ) != 0)
            d.confFpQueue += k;
        if ((disp & dispConfIntRegs) != 0)
            d.confIntRegs += k;
        if ((disp & dispConfFpRegs) != 0)
            d.confFpRegs += k;
        cycle_ = event;
        const int n = numActive_;
        if (n > 0) {
            commitRR_ = static_cast<int>(
                (static_cast<std::uint64_t>(commitRR_) + k) % n);
            dispatchRR_ = static_cast<int>(
                (static_cast<std::uint64_t>(dispatchRR_) + k) % n);
        }
    }
    d.cycles = cycles;

    for (int slot = 0; slot < params_.numContexts; ++slot) {
        d.slotRetired[static_cast<std::size_t>(slot)] =
            retired_[static_cast<std::size_t>(slot)];
    }
    d.l1iHits = mem_.l1i().hits() - l1i_h0;
    d.l1iMisses = mem_.l1i().misses() - l1i_m0;
    d.l1dHits = mem_.l1d().hits() - l1d_h0;
    d.l1dMisses = mem_.l1d().misses() - l1d_m0;
    d.l2Hits = mem_.l2CoreCounters().hits - l2_h0;
    d.l2Misses = mem_.l2CoreCounters().misses - l2_m0;
    d.itlbMisses = mem_.itlb().misses() - itlb_m0;
    d.dtlbMisses = mem_.dtlb().misses() - dtlb_m0;
    counters += d;
}

std::uint64_t
SmtCore::nextEventCycle() const
{
    // Only called after an idle cycle (cycle_ already advanced past
    // it): queue wakes are in the future, every completed ROB head
    // completes in the future, every fetchable context is stalled.
    // Ready-but-resource-blocked dispatch fronts are deliberately
    // excluded -- the resources they wait for are freed only by
    // commit or issue events, which are already in the minimum.
    std::uint64_t event = std::min(intQWake_, fpQWake_);
    for (int i = 0; i < numActive_; ++i) {
        const auto s = static_cast<std::size_t>(
            activeList_[static_cast<std::size_t>(i)]);
        if (robCount_[s] > 0) {
            const InFlight &head =
                slab_[robSlab_[s * robStride_ + robHead_[s]]];
            if (head.completed)
                event = std::min(event, head.when);
        }
        if (fqCount_[s] > 0) {
            const Fetched &front =
                fetchSlab_[s * fetchStride_ + fqHead_[s]];
            if (front.readyAt >= cycle_)
                event = std::min(event, front.readyAt);
        }
        if (fqCount_[s] < fetchStride_ &&
            fetchStall_[s] != redirectPending) {
            event = std::min(event, fetchStall_[s]);
        }
    }
    return event;
}

bool
SmtCore::doCommit(PerfCounters &pc)
{
    bool committed = false;
    int budget = params_.commitWidth;
    // Rotate priority over the *active* contexts; rotating over all
    // slots would hand the lowest-numbered context first pick whenever
    // the rotation lands on an empty slot.
    const int n = numActive_;
    // The cursor is stored reduced; it can exceed n only right after a
    // rebind shrank the active set, so the divide runs once per rebind
    // rather than once per context per cycle.
    int rr = commitRR_;
    if (rr >= n && n > 0)
        rr %= n;
    for (int i = 0; i < n && budget > 0; ++i) {
        int idx = rr + i;
        if (idx >= n)
            idx -= n;
        const int slot = activeList_[static_cast<std::size_t>(idx)];
        const auto s = static_cast<std::size_t>(slot);
        std::uint32_t head = robHead_[s];
        std::uint32_t count = robCount_[s];
        const std::uint32_t *const rob = &robSlab_[s * robStride_];
        while (budget > 0 && count > 0) {
            const std::uint32_t id = rob[head];
            const InFlight &inst = slab_[id];
            if (!inst.completed || inst.when > cycle_)
                break;
            releaseResources(inst);
            head = wrapRob(head);
            --count;
            freeList_.push_back(id);
            if (!inst.spin) {
                ++retired_[s];
                ++pc.retired;
            }
            --budget;
            committed = true;
        }
        robHead_[s] = head;
        robCount_[s] = count;
    }
    if (n > 0) {
        ++rr;
        commitRR_ = rr >= n ? 0 : rr;
    }
    return committed;
}

void
SmtCore::wakeWaiters(std::uint32_t id, std::uint64_t complete_cycle)
{
    std::uint32_t cid = slab_[id].waiterHead;
    slab_[id].waiterHead = noInst;
    while (cid != noInst) {
        InFlight &c = slab_[cid];
        SOS_ASSERT(c.prodA == id || c.prodB == id,
                   "stale waiter chain");
        const std::uint32_t next = c.prodA == id ? c.nextA : c.nextB;
        if (c.prodA == id) {
            c.prodA = noInst;
            c.when = std::max(c.when, complete_cycle);
            --c.waitCount;
        }
        if (c.prodB == id) {
            c.prodB = noInst;
            c.when = std::max(c.when, complete_cycle);
            --c.waitCount;
        }
        if (c.waitCount == 0) {
            // Fully resolved: becomes a queue entry (via the pending
            // buffer -- the queue may be mid-scan right now).
            if (c.op.isFp()) {
                fpPend_.push_back(QEntry{c.when, cid, c.age});
                fpQWake_ = std::min(fpQWake_, c.when);
            } else {
                intPend_.push_back(QEntry{c.when, cid, c.age});
                intQWake_ = std::min(intQWake_, c.when);
            }
        }
        cid = next;
    }
}

void
SmtCore::mergePending(std::vector<QEntry> &queue,
                      std::vector<QEntry> &pending)
{
    // Wrapping age compare: older (smaller) dispatch stamp first.
    const auto older = [](const QEntry &a, const QEntry &b) {
        return static_cast<std::int32_t>(a.age - b.age) < 0;
    };
    // The pending buffer arrives in wake order, not dispatch order;
    // it is tiny (consumers of this cycle's issues), so insertion
    // sort, then a backward in-place merge into the queue.
    for (std::size_t i = 1; i < pending.size(); ++i) {
        const QEntry e = pending[i];
        std::size_t j = i;
        while (j > 0 && older(e, pending[j - 1])) {
            pending[j] = pending[j - 1];
            --j;
        }
        pending[j] = e;
    }
    std::size_t i = queue.size();
    std::size_t j = pending.size();
    queue.resize(i + j);
    std::size_t k = queue.size();
    while (j > 0) {
        if (i > 0 && older(pending[j - 1], queue[i - 1]))
            queue[--k] = queue[--i];
        else
            queue[--k] = pending[--j];
    }
    pending.clear();
}

void
SmtCore::doIssue(PerfCounters &pc)
{
    bool conf_int_units = false;
    bool conf_fp_units = false;
    bool conf_ls_ports = false;
    const std::uint64_t next_cycle = cycle_ + 1;

    // Integer queue: oldest first. Loads and stores live here (their
    // address generation is integer work) but issue through the
    // load/store ports. The queue holds only schedulable entries, so
    // the slab is touched exactly at issue attempts; issued entries
    // are compacted out in the same pass (order-preserving). The
    // whole scan is skipped while the queue's wake cycle lies in the
    // future: every entry would be passed over by the readiness
    // guard, which mutates nothing and raises no conflict flag, so
    // the skip is architecturally invisible.
    if (intQWake_ <= cycle_) {
        if (!intPend_.empty())
            mergePending(intQ_, intPend_);
        int int_used = 0;
        int ls_used = 0;
        std::uint64_t wake = noWake;
        std::size_t keep = 0;
        for (std::size_t qi = 0; qi < intQ_.size(); ++qi) {
            const QEntry e = intQ_[qi];
            if (e.readyAt > cycle_) {
                wake = std::min(wake, e.readyAt);
                intQ_[keep++] = e;
                continue;
            }
            InFlight &inst = slab_[e.id];
            const UOp &op = inst.op;
            std::uint64_t completion;
            if (op.isMem()) {
                if (ls_used >= params_.numLsPorts) {
                    conf_ls_ports = true;
                    wake = next_cycle;
                    intQ_[keep++] = e;
                    continue;
                }
                ++ls_used;
                const std::uint32_t extra =
                    mem_.dataAccess(asid_[inst.ctx], op.addr,
                                    op.cls == OpClass::Store, op.pc);
                if (op.cls == OpClass::Load) {
                    completion =
                        cycle_ +
                        static_cast<std::uint64_t>(params_.l1dHitLat) +
                        extra;
                } else {
                    // Stores retire through a write buffer.
                    completion = cycle_ + 1;
                }
            } else {
                if (int_used >= params_.numIntUnits) {
                    conf_int_units = true;
                    wake = next_cycle;
                    intQ_[keep++] = e;
                    continue;
                }
                ++int_used;
                const int lat = op.cls == OpClass::IntMult
                                    ? params_.intMultLat
                                    : params_.intAluLat;
                completion = cycle_ + static_cast<std::uint64_t>(lat);
            }

            inst.completed = true;
            inst.when = completion;
            if (inst.mispredicted) {
                // The front end was parked on this branch; release it
                // when the branch resolves, plus the redirect penalty.
                fetchStall_[inst.ctx] =
                    completion +
                    static_cast<std::uint64_t>(params_.mispredictRedirect);
            }
            if (op.dst != NoReg) {
                RegEntry &r = cold_[inst.ctx].regs[op.dst];
                if (r.ready == pendingReg && r.writer == e.id)
                    r.ready = completion;
            }
            --icount_[inst.ctx];
            if (!inst.spin)
                ++pc.issued;
            --intQCount_;
            wakeWaiters(e.id, completion);
        }
        intQ_.resize(keep);
        // Consumers woken by this very scan sit in the pending buffer
        // (emptied at the top); their ready cycles must survive the
        // wake recomputation.
        for (const QEntry &p : intPend_)
            wake = std::min(wake, p.readyAt);
        intQWake_ = wake;
    }

    // FP queue: same order-preserving single-pass compaction.
    if (fpQWake_ <= cycle_) {
        if (!fpPend_.empty())
            mergePending(fpQ_, fpPend_);
        int fp_add_used = 0;
        int fp_mul_used = 0;
        // Multiply pipes still executing a non-pipelined divide are
        // unavailable this cycle.
        int fp_mul_open = 0;
        for (int u = 0; u < params_.fpMulPipes; ++u) {
            if (fpBusyUntil_[static_cast<std::size_t>(u)] <= cycle_)
                ++fp_mul_open;
        }
        std::uint64_t wake = noWake;
        std::size_t keep = 0;
        for (std::size_t qi = 0; qi < fpQ_.size(); ++qi) {
            const QEntry e = fpQ_[qi];
            if (e.readyAt > cycle_) {
                wake = std::min(wake, e.readyAt);
                fpQ_[keep++] = e;
                continue;
            }
            InFlight &inst = slab_[e.id];
            const UOp &op = inst.op;
            int lat;
            if (op.cls == OpClass::FpAdd) {
                if (fp_add_used >= params_.fpAddPipes) {
                    conf_fp_units = true;
                    wake = next_cycle;
                    fpQ_[keep++] = e;
                    continue;
                }
                ++fp_add_used;
                lat = params_.fpAddLat;
            } else if (op.cls == OpClass::FpMult) {
                if (fp_mul_used >= fp_mul_open) {
                    conf_fp_units = true;
                    wake = next_cycle;
                    fpQ_[keep++] = e;
                    continue;
                }
                ++fp_mul_used;
                lat = params_.fpMultLat;
            } else { // FpDiv
                if (fp_mul_used >= fp_mul_open) {
                    conf_fp_units = true;
                    wake = next_cycle;
                    fpQ_[keep++] = e;
                    continue;
                }
                lat = params_.fpDivLat;
                // Divide monopolizes a multiply pipe (non-pipelined).
                for (int u = 0; u < params_.fpMulPipes; ++u) {
                    auto &busy =
                        fpBusyUntil_[static_cast<std::size_t>(u)];
                    if (busy <= cycle_) {
                        busy = cycle_ + static_cast<std::uint64_t>(lat);
                        --fp_mul_open;
                        break;
                    }
                }
            }
            const std::uint64_t completion =
                cycle_ + static_cast<std::uint64_t>(lat);
            inst.completed = true;
            inst.when = completion;
            if (op.dst != NoReg) {
                RegEntry &r = cold_[inst.ctx].regs[op.dst];
                if (r.ready == pendingReg && r.writer == e.id)
                    r.ready = completion;
            }
            --icount_[inst.ctx];
            if (!inst.spin)
                ++pc.issued;
            --fpQCount_;
            wakeWaiters(e.id, completion);
        }
        fpQ_.resize(keep);
        for (const QEntry &p : fpPend_)
            wake = std::min(wake, p.readyAt);
        fpQWake_ = wake;
    }

    if (conf_int_units)
        ++pc.confIntUnits;
    if (conf_fp_units)
        ++pc.confFpUnits;
    if (conf_ls_ports)
        ++pc.confLsPorts;
}

void
SmtCore::resolveOperand(InFlight &inst, std::uint32_t id,
                        const CtxCold &cold, std::uint8_t reg,
                        bool is_second)
{
    if (reg == NoReg)
        return;
    const RegEntry &r = cold.regs[reg];
    if (r.ready != pendingReg) {
        // Last writer already issued (or long retired): its value
        // arrives at a known cycle, possibly in the past (dispatch+1
        // already dominates a value available now).
        inst.when = std::max(inst.when, r.ready);
        return;
    }
    // Writer dispatched but not issued: wait for its wakeWaiters()
    // walk.  A pending scoreboard entry always names a live, un-issued
    // same-context instruction (issue finalizes it, a younger writer
    // replaces it, a squash resets the scoreboard), so no staleness
    // check is needed.
    const std::uint32_t pid = r.writer;
    InFlight &producer = slab_[pid];
    if (is_second) {
        inst.prodB = pid;
        if (inst.prodA == pid) {
            // Both operands name the same producer: one registration,
            // the wake resolves both.
            ++inst.waitCount;
            return;
        }
        inst.nextB = producer.waiterHead;
    } else {
        inst.prodA = pid;
        inst.nextA = producer.waiterHead;
    }
    producer.waiterHead = id;
    ++inst.waitCount;
}

std::uint32_t
SmtCore::doDispatch(PerfCounters &pc)
{
    int budget = params_.dispatchWidth;
    const int n = numActive_;

    std::uint32_t result = 0;

    int rr = dispatchRR_;
    if (rr >= n && n > 0)
        rr %= n;
    for (int i = 0; i < n && budget > 0; ++i) {
        int idx = rr + i;
        if (idx >= n)
            idx -= n;
        const int slot = activeList_[static_cast<std::size_t>(idx)];
        const auto s = static_cast<std::size_t>(slot);
        CtxCold &cold = cold_[s];
        std::uint32_t head = fqHead_[s];
        std::uint32_t count = fqCount_[s];
        Fetched *const fq = &fetchSlab_[s * fetchStride_];
        while (budget > 0 && count > 0) {
            const Fetched &front = fq[head];
            if (front.readyAt > cycle_)
                break;
            const UOp &op = front.op;

            if (robFree_ == 0) {
                result |= dispConfRob;
                break;
            }
            const bool is_fp_q = op.isFp();
            if (is_fp_q) {
                if (fpQCount_ >= params_.fpQueueSize) {
                    result |= dispConfFpQ;
                    break;
                }
            } else {
                if (intQCount_ >= params_.intQueueSize) {
                    result |= dispConfIntQ;
                    break;
                }
            }
            if (op.dst != NoReg) {
                if (isFpReg(op.dst)) {
                    if (fpRenameFree_ == 0) {
                        result |= dispConfFpRegs;
                        break;
                    }
                } else {
                    if (intRenameFree_ == 0) {
                        result |= dispConfIntRegs;
                        break;
                    }
                }
            }

            // All resources available: dispatch.
            const std::uint32_t id = allocInst();
            InFlight &inst = slab_[id];
            inst.op = op;
            inst.ctx = static_cast<std::uint8_t>(slot);
            inst.completed = false;
            inst.mispredicted = front.mispredicted;
            inst.spin = front.spin;
            inst.when = cycle_ + 1; // earliest possible issue scan
            inst.waitCount = 0;
            inst.prodA = noInst;
            inst.prodB = noInst;
            inst.waiterHead = noInst;

            // Resolve the program-order producers now; the register
            // name may be recycled by a younger writer before this
            // instruction issues.
            resolveOperand(inst, id, cold, op.srcA, false);
            resolveOperand(inst, id, cold, op.srcB, true);

            --robFree_;
            if (op.dst != NoReg) {
                if (isFpReg(op.dst))
                    --fpRenameFree_;
                else
                    --intRenameFree_;
                cold.regs[op.dst] = RegEntry{pendingReg, id};
            }
            std::uint32_t tail = robHead_[s] + robCount_[s];
            if (tail >= robStride_)
                tail -= robStride_;
            robSlab_[s * robStride_ + tail] = id;
            ++robCount_[s];
            // A dispatch-time-ready instruction goes straight onto the
            // queue tail: it carries the youngest age, so dispatch
            // order is preserved no matter what sits in the pending
            // buffer.
            if (is_fp_q) {
                ++fpQCount_;
                if (inst.waitCount == 0) {
                    fpQ_.push_back(QEntry{inst.when, id, inst.age});
                    fpQWake_ = std::min(fpQWake_, inst.when);
                }
            } else {
                ++intQCount_;
                if (inst.waitCount == 0) {
                    intQ_.push_back(QEntry{inst.when, id, inst.age});
                    intQWake_ = std::min(intQWake_, inst.when);
                }
            }

            if (front.spin) {
                ++pc.spinOps;
            } else {
                switch (op.cls) {
                  case OpClass::IntAlu:
                  case OpClass::IntMult:
                    ++pc.intOps;
                    break;
                  case OpClass::Branch:
                    ++pc.intOps;
                    ++pc.branches;
                    break;
                  case OpClass::FpAdd:
                  case OpClass::FpMult:
                  case OpClass::FpDiv:
                    ++pc.fpOps;
                    break;
                  case OpClass::Load:
                    ++pc.loads;
                    break;
                  case OpClass::Store:
                    ++pc.stores;
                    break;
                  case OpClass::Barrier:
                    panic("barriers never enter the dispatch stream");
                }
                ++pc.dispatched;
            }
            head = wrapFetch(head);
            --count;
            --budget;
            result |= dispAny;
        }
        fqHead_[s] = head;
        fqCount_[s] = count;
    }
    if (n > 0) {
        ++rr;
        dispatchRR_ = rr >= n ? 0 : rr;
    }

    if ((result & dispConfRob) != 0)
        ++pc.confRob;
    if ((result & dispConfIntQ) != 0)
        ++pc.confIntQueue;
    if ((result & dispConfFpQ) != 0)
        ++pc.confFpQueue;
    if ((result & dispConfIntRegs) != 0)
        ++pc.confIntRegs;
    if ((result & dispConfFpRegs) != 0)
        ++pc.confFpRegs;
    return result;
}

bool
SmtCore::tryFetchOne(int slot, PerfCounters &pc)
{
    // Returns true if fetch for this thread may continue this cycle.
    const auto s = static_cast<std::size_t>(slot);
    CtxCold &cold = cold_[s];
    UOp op;
    bool spin = false;
    if (atBarrier_[s]) {
        // Busy-wait: a parked thread spins on the barrier flag. With
        // ICOUNT fetch the spinner's near-empty window gives it top
        // fetch priority every cycle, so the loop (flag load, a few
        // dependent test ops, a taken branch) soaks up fetch slots,
        // queue entries and a load port -- the resource drag that
        // makes splitting tightly-synchronized threads so expensive on
        // an SMT (Section 6).
        spin = true;
        op = UOp();
        const std::uint32_t phase = cold.spinPhase++ % 5;
        op.pc = 0xf00 + 4 * phase;
        switch (phase) {
          case 0:
            op.cls = OpClass::Load;
            op.addr = 0x7c0; // barrier flag: L1-resident
            op.dst = 30;
            break;
          case 1:
          case 2:
          case 3:
            op.cls = OpClass::IntAlu;
            op.srcA = static_cast<std::uint8_t>(31 - phase);
            op.dst = static_cast<std::uint8_t>(30 - phase);
            break;
          default:
            op.cls = OpClass::Branch;
            op.srcA = 27;
            op.taken = true; // loop back to the flag load
            break;
        }
    } else if (cold.hasPending) {
        op = cold.pendingOp;
        cold.hasPending = false;
    } else {
        op = cold.bind.gen->next();
    }

    if (op.cls == OpClass::Barrier) {
        SOS_ASSERT(cold.bind.sync != nullptr,
                   "barrier from a thread with no sync domain");
        cold.bind.sync->arrive(cold.bind.syncIndex);
        ++pc.barriers;
        if (cold.bind.sync->blocked(cold.bind.syncIndex)) {
            atBarrier_[s] = 1;
            return false;
        }
        return true; // barrier consumed for free; keep fetching
    }

    const std::uint64_t line = op.pc >> l1iLineShift_;
    if (line != cold.lastFetchLine) {
        cold.lastFetchLine = line;
        const std::uint32_t extra = mem_.instAccess(asid_[s], op.pc);
        if (extra > 0) {
            cold.pendingOp = op;
            cold.hasPending = true;
            fetchStall_[s] = cycle_ + extra;
            return false;
        }
    }

    Fetched fetched;
    fetched.op = op;
    fetched.readyAt = cycle_ + static_cast<std::uint64_t>(
                                   params_.frontendDelay);
    fetched.mispredicted = false;
    fetched.spin = spin;

    bool stop = false;
    if (op.cls == OpClass::Branch) {
        const bool predicted =
            bpred_.predictAndUpdate(cold.predSalt, op.pc, op.taken);
        if (predicted != op.taken) {
            fetched.mispredicted = true;
            if (!spin)
                ++pc.branchMispredicts;
            // Park the front end until the branch resolves at issue.
            fetchStall_[s] = redirectPending;
            stop = true;
        } else if (op.taken) {
            stop = true; // a taken branch ends the fetch block
        }
    }

    std::uint32_t tail = fqHead_[s] + fqCount_[s];
    if (tail >= fetchStride_)
        tail -= fetchStride_;
    fetchSlab_[s * fetchStride_ + tail] = fetched;
    ++fqCount_[s];
    ++icount_[s];
    if (!spin)
        ++pc.fetched;
    return !stop;
}

bool
SmtCore::doFetch(PerfCounters &pc)
{
    // ICOUNT: fetch from the threads with the fewest in-flight
    // pre-issue instructions.
    std::array<int, MaxContexts> picked{};
    int num_candidates = 0;
    bool unblocked = false;
    for (int i = 0; i < numActive_; ++i) {
        const int slot = activeList_[static_cast<std::size_t>(i)];
        const auto s = static_cast<std::size_t>(slot);
        if (atBarrier_[s]) {
            const ThreadBinding &bind = cold_[s].bind;
            if (!bind.sync->blocked(bind.syncIndex)) {
                atBarrier_[s] = 0; // barrier released; resume for real
                unblocked = true;
            }
        }
        if (fetchStall_[s] > cycle_)
            continue;
        if (fqCount_[s] >= fetchStride_)
            continue;
        picked[static_cast<std::size_t>(num_candidates++)] = slot;
    }
    // Insertion sort by icount; ties go to the least-recently-fetched
    // context so equal threads share the front end evenly. The
    // round-robin ablation ignores occupancy entirely.
    const bool round_robin = roundRobinFetch_;
    const auto before = [this, round_robin](int a, int b) {
        const auto sa = static_cast<std::size_t>(a);
        const auto sb = static_cast<std::size_t>(b);
        if (!round_robin && icount_[sa] != icount_[sb])
            return icount_[sa] < icount_[sb];
        return lastFetchCycle_[sa] < lastFetchCycle_[sb];
    };
    for (int i = 1; i < num_candidates; ++i) {
        const int slot = picked[static_cast<std::size_t>(i)];
        int j = i - 1;
        while (j >= 0 &&
               before(slot, picked[static_cast<std::size_t>(j)])) {
            picked[static_cast<std::size_t>(j + 1)] =
                picked[static_cast<std::size_t>(j)];
            --j;
        }
        picked[static_cast<std::size_t>(j + 1)] = slot;
    }

    const int num_threads = std::min(num_candidates, params_.fetchThreads);
    int budget = params_.fetchWidth;
    for (int t = 0; t < num_threads && budget > 0; ++t) {
        const int slot = picked[static_cast<std::size_t>(t)];
        const auto s = static_cast<std::size_t>(slot);
        bool fetched_any = false;
        while (budget > 0 && fqCount_[s] < fetchStride_) {
            const std::uint32_t before_count = fqCount_[s];
            const bool keep_going = tryFetchOne(slot, pc);
            if (fqCount_[s] > before_count) {
                --budget;
                fetched_any = true;
            }
            if (!keep_going)
                break;
        }
        if (fetched_any)
            lastFetchCycle_[s] = cycle_;
    }
    return num_candidates > 0 || unblocked;
}

} // namespace sos
