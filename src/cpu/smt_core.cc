#include "smt_core.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/sync_domain.hh"

namespace sos {

SmtCore::SmtCore(const CoreParams &params, CacheHierarchy &mem)
    : params_(params), mem_(mem), bpred_(params.predictorBits)
{
    validateCoreParams(params);
    ctxs_.resize(static_cast<std::size_t>(params.numContexts));

    const std::size_t slab_size = static_cast<std::size_t>(
        params.robSize + params.numContexts * params.fetchQueueSize + 8);
    slab_.resize(slab_size);
    freeList_.reserve(slab_size);
    for (std::size_t i = 0; i < slab_size; ++i)
        freeList_.push_back(static_cast<std::uint32_t>(slab_size - 1 - i));

    intQ_.reserve(static_cast<std::size_t>(params.intQueueSize));
    fpQ_.reserve(static_cast<std::size_t>(params.fpQueueSize));

    intRenameFree_ = params.intRenameRegs;
    fpRenameFree_ = params.fpRenameRegs;
    robFree_ = params.robSize;
}

SmtCore::SmtCore(const SmtCore &other, CacheHierarchy &mem)
    : params_(other.params_), mem_(mem), bpred_(other.bpred_),
      ctxs_(other.ctxs_), slab_(other.slab_), freeList_(other.freeList_),
      seqCounter_(other.seqCounter_), intQ_(other.intQ_),
      fpQ_(other.fpQ_), intRenameFree_(other.intRenameFree_),
      fpRenameFree_(other.fpRenameFree_), robFree_(other.robFree_),
      fpBusyUntil_(other.fpBusyUntil_), cycle_(other.cycle_),
      commitRR_(other.commitRR_), dispatchRR_(other.dispatchRR_)
{
    intQ_.reserve(static_cast<std::size_t>(params_.intQueueSize));
    fpQ_.reserve(static_cast<std::size_t>(params_.fpQueueSize));
}

void
SmtCore::rebindThread(int slot, const ThreadBinding &binding)
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
    SOS_ASSERT(ctx.active, "rebind needs a bound slot");
    SOS_ASSERT(binding.gen != nullptr, "binding needs a generator");
    SOS_ASSERT(binding.asid == ctx.bind.asid,
               "rebind must preserve the thread's address space");
    SOS_ASSERT((binding.sync != nullptr) == (ctx.bind.sync != nullptr),
               "rebind must preserve the sync domain shape");
    ctx.bind = binding;
}

void
SmtCore::attachThread(int slot, const ThreadBinding &binding)
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
    SOS_ASSERT(!ctx.active, "slot already bound");
    SOS_ASSERT(binding.gen != nullptr, "binding needs a generator");

    ctx.active = true;
    ctx.bind = binding;
    ctx.fetchQ.clear();
    ctx.rob.clear();
    ctx.lastWriter.fill(noInst);
    ctx.lastWriterSeq.fill(0);
    ctx.icount = 0;
    ctx.fetchStallUntil = 0;
    // A thread parked at a barrier stays parked across scheduling.
    ctx.atBarrier =
        binding.sync != nullptr && binding.sync->blocked(binding.syncIndex);
    ctx.hasPending = false;
    ctx.lastFetchLine = ~std::uint64_t{0};
    ctx.predSalt =
        static_cast<std::uint32_t>(mix64(binding.asid) >> 17);
    ctx.retired = 0;
}

void
SmtCore::squashCtx(int slot)
{
    Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
    const auto byCtx = [slot](const InFlight &inst) {
        return inst.ctx == static_cast<std::uint8_t>(slot);
    };
    auto strip = [&](std::vector<QEntry> &queue) {
        queue.erase(std::remove_if(queue.begin(), queue.end(),
                                   [&](const QEntry &entry) {
                                       return byCtx(slab_[entry.id]);
                                   }),
                    queue.end());
    };
    strip(intQ_);
    strip(fpQ_);
    for (std::uint32_t id : ctx.rob) {
        releaseResources(slab_[id]);
        freeList_.push_back(id);
    }
    ctx.rob.clear();
    ctx.fetchQ.clear();
    ctx.hasPending = false;
    ctx.icount = 0;
}

void
SmtCore::detachThread(int slot)
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
    SOS_ASSERT(ctx.active, "slot not bound");
    squashCtx(slot);
    ctx.active = false;
    ctx.bind = ThreadBinding();
}

void
SmtCore::detachAll()
{
    for (int slot = 0; slot < params_.numContexts; ++slot) {
        if (ctxs_[static_cast<std::size_t>(slot)].active)
            detachThread(slot);
    }
}

bool
SmtCore::slotActive(int slot) const
{
    SOS_ASSERT(slot >= 0 && slot < params_.numContexts, "bad slot");
    return ctxs_[static_cast<std::size_t>(slot)].active;
}

int
SmtCore::inFlightCount() const
{
    int n = 0;
    for (const Ctx &ctx : ctxs_)
        n += static_cast<int>(ctx.rob.size());
    return n;
}

bool
SmtCore::producerDone(std::uint32_t pid, std::uint64_t seq) const
{
    if (pid == noInst)
        return true;
    const InFlight &producer = slab_[pid];
    if (producer.seq != seq)
        return true; // producer retired (or squashed); value available
    return producer.completed && producer.completeCycle <= cycle_;
}

std::uint64_t
SmtCore::producerRecheck(std::uint32_t pid, std::uint64_t seq) const
{
    if (pid == noInst)
        return 0;
    const InFlight &producer = slab_[pid];
    if (producer.seq != seq)
        return 0; // producer retired (or squashed); value available
    if (!producer.completed)
        return cycle_ + 1; // completion time unknown: recheck soon
    return producer.completeCycle <= cycle_ ? 0 : producer.completeCycle;
}

std::uint64_t
SmtCore::readyOrRecheck(InFlight &inst) const
{
    std::uint64_t recheck = 0;
    if (!inst.aDone) {
        const std::uint64_t r =
            producerRecheck(inst.prodA, inst.prodASeq);
        if (r == 0)
            inst.aDone = true;
        else
            recheck = r;
    }
    if (!inst.bDone) {
        const std::uint64_t r =
            producerRecheck(inst.prodB, inst.prodBSeq);
        if (r == 0)
            inst.bDone = true;
        else
            recheck = std::max(recheck, r);
    }
    return recheck;
}

void
SmtCore::debugDump() const
{
    std::fprintf(stderr, "cycle=%llu intQ=%zu fpQ=%zu robFree=%d "
                         "intRen=%d fpRen=%d\n",
                 static_cast<unsigned long long>(cycle_), intQ_.size(),
                 fpQ_.size(), robFree_, intRenameFree_, fpRenameFree_);
    auto dumpQ = [&](const char *name,
                     const std::vector<QEntry> &queue) {
        for (std::size_t i = 0; i < std::min<std::size_t>(queue.size(), 6);
             ++i) {
            const InFlight &inst = slab_[queue[i].id];
            std::fprintf(stderr,
                         "  %s[%zu] cls=%d srcA=%d(%d) srcB=%d(%d) "
                         "dst=%d issued=%d\n",
                         name, i, static_cast<int>(inst.op.cls),
                         inst.op.srcA,
                         producerDone(inst.prodA, inst.prodASeq) ? 1 : 0,
                         inst.op.srcB,
                         producerDone(inst.prodB, inst.prodBSeq) ? 1 : 0,
                         inst.op.dst, inst.issued ? 1 : 0);
        }
    };
    dumpQ("intQ", intQ_);
    dumpQ("fpQ", fpQ_);
    for (std::size_t s = 0; s < ctxs_.size(); ++s) {
        const Ctx &ctx = ctxs_[s];
        std::fprintf(
            stderr,
            "  ctx%zu active=%d fq=%zu rob=%zu icount=%d stall=%llu "
            "barrier=%d pending=%d\n",
            s, ctx.active ? 1 : 0, ctx.fetchQ.size(), ctx.rob.size(),
            ctx.icount,
            static_cast<unsigned long long>(ctx.fetchStallUntil),
            ctx.atBarrier ? 1 : 0, ctx.hasPending ? 1 : 0);
    }
}

std::uint32_t
SmtCore::allocInst()
{
    SOS_ASSERT(!freeList_.empty(), "instruction slab exhausted");
    const std::uint32_t id = freeList_.back();
    freeList_.pop_back();
    slab_[id].seq = ++seqCounter_;
    return id;
}

void
SmtCore::releaseResources(const InFlight &inst)
{
    ++robFree_;
    if (inst.op.dst != NoReg) {
        if (isFpReg(inst.op.dst))
            ++fpRenameFree_;
        else
            ++intRenameFree_;
    }
}

void
SmtCore::run(std::uint64_t cycles, PerfCounters &counters)
{
    // Memory-system counters are derived from component deltas.
    const std::uint64_t l1i_h0 = mem_.l1i().hits();
    const std::uint64_t l1i_m0 = mem_.l1i().misses();
    const std::uint64_t l1d_h0 = mem_.l1d().hits();
    const std::uint64_t l1d_m0 = mem_.l1d().misses();
    // L2 counts come from this core's contention counters, not the
    // shared cache's aggregate: on a multicore machine the aggregate
    // mixes in other cores' traffic.
    const std::uint64_t l2_h0 = mem_.l2CoreCounters().hits;
    const std::uint64_t l2_m0 = mem_.l2CoreCounters().misses;
    const std::uint64_t itlb_m0 = mem_.itlb().misses();
    const std::uint64_t dtlb_m0 = mem_.dtlb().misses();

    for (Ctx &ctx : ctxs_)
        ctx.retired = 0;

    const std::uint64_t end = cycle_ + cycles;
    while (cycle_ < end) {
        doCommit(counters);
        doIssue(counters);
        doDispatch(counters);
        doFetch(counters);
        ++cycle_;
        ++counters.cycles;
    }

    for (int slot = 0; slot < params_.numContexts; ++slot) {
        counters.slotRetired[static_cast<std::size_t>(slot)] +=
            ctxs_[static_cast<std::size_t>(slot)].retired;
    }
    counters.l1iHits += mem_.l1i().hits() - l1i_h0;
    counters.l1iMisses += mem_.l1i().misses() - l1i_m0;
    counters.l1dHits += mem_.l1d().hits() - l1d_h0;
    counters.l1dMisses += mem_.l1d().misses() - l1d_m0;
    counters.l2Hits += mem_.l2CoreCounters().hits - l2_h0;
    counters.l2Misses += mem_.l2CoreCounters().misses - l2_m0;
    counters.itlbMisses += mem_.itlb().misses() - itlb_m0;
    counters.dtlbMisses += mem_.dtlb().misses() - dtlb_m0;
}

int
SmtCore::activeSlots(std::array<int, MaxContexts> &slots) const
{
    int n = 0;
    for (int slot = 0; slot < params_.numContexts; ++slot) {
        if (ctxs_[static_cast<std::size_t>(slot)].active)
            slots[static_cast<std::size_t>(n++)] = slot;
    }
    return n;
}

void
SmtCore::doCommit(PerfCounters &pc)
{
    int budget = params_.commitWidth;
    // Rotate priority over the *active* contexts; rotating over all
    // slots would hand the lowest-numbered context first pick whenever
    // the rotation lands on an empty slot.
    std::array<int, MaxContexts> slots{};
    const int n = activeSlots(slots);
    for (int i = 0; i < n && budget > 0; ++i) {
        const int slot = slots[static_cast<std::size_t>(
            (commitRR_ + i) % n)];
        Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
        while (budget > 0 && !ctx.rob.empty()) {
            const std::uint32_t id = ctx.rob.front();
            const InFlight &inst = slab_[id];
            if (!inst.completed || inst.completeCycle > cycle_)
                break;
            releaseResources(inst);
            ctx.rob.pop_front();
            freeList_.push_back(id);
            if (!inst.spin) {
                ++ctx.retired;
                ++pc.retired;
            }
            --budget;
        }
    }
    if (n > 0)
        commitRR_ = (commitRR_ + 1) % n;
}

void
SmtCore::doIssue(PerfCounters &pc)
{
    int int_used = 0;
    int ls_used = 0;
    int fp_add_used = 0;
    int fp_mul_used = 0;
    // Multiply pipes still executing a non-pipelined divide are
    // unavailable this cycle.
    int fp_mul_open = 0;
    for (int u = 0; u < params_.fpMulPipes; ++u) {
        if (fpBusyUntil_[static_cast<std::size_t>(u)] <= cycle_)
            ++fp_mul_open;
    }

    bool conf_int_units = false;
    bool conf_fp_units = false;
    bool conf_ls_ports = false;

    // Integer queue: oldest first. Loads and stores live here (their
    // address generation is integer work) but issue through the
    // load/store ports. Issued entries are compacted out in the same
    // pass (order-preserving), not erased mid-scan -- the erase made
    // this loop quadratic in the queue depth.
    std::size_t keep = 0;
    for (std::size_t qi = 0; qi < intQ_.size(); ++qi) {
        QEntry &entry = intQ_[qi];
        const auto retain = [&] {
            if (keep != qi)
                intQ_[keep] = entry;
            ++keep;
        };
        if (entry.recheckAt > cycle_) {
            retain();
            continue;
        }
        const std::uint32_t id = entry.id;
        InFlight &inst = slab_[id];
        Ctx &ctx = ctxs_[inst.ctx];
        const UOp &op = inst.op;

        if (const std::uint64_t recheck = readyOrRecheck(inst)) {
            entry.recheckAt = recheck;
            retain();
            continue;
        }

        if (op.isMem()) {
            if (ls_used >= params_.numLsPorts) {
                conf_ls_ports = true;
                retain();
                continue;
            }
            ++ls_used;
            const std::uint32_t extra =
                mem_.dataAccess(ctx.bind.asid, op.addr,
                                op.cls == OpClass::Store, op.pc);
            if (op.cls == OpClass::Load) {
                inst.completeCycle =
                    cycle_ + static_cast<std::uint64_t>(params_.l1dHitLat) +
                    extra;
            } else {
                // Stores retire through a write buffer.
                inst.completeCycle = cycle_ + 1;
            }
        } else {
            if (int_used >= params_.numIntUnits) {
                conf_int_units = true;
                retain();
                continue;
            }
            ++int_used;
            const int lat = op.cls == OpClass::IntMult ? params_.intMultLat
                                                       : params_.intAluLat;
            inst.completeCycle = cycle_ + static_cast<std::uint64_t>(lat);
        }

        inst.issued = true;
        inst.completed = true;
        if (inst.mispredicted) {
            // The front end was parked on this branch; release it when
            // the branch resolves, plus the redirect penalty.
            ctx.fetchStallUntil =
                inst.completeCycle +
                static_cast<std::uint64_t>(params_.mispredictRedirect);
        }
        --ctx.icount;
        if (!inst.spin)
            ++pc.issued;
    }
    intQ_.resize(keep);

    // FP queue: same order-preserving single-pass compaction.
    keep = 0;
    for (std::size_t qi = 0; qi < fpQ_.size(); ++qi) {
        QEntry &entry = fpQ_[qi];
        const auto retain = [&] {
            if (keep != qi)
                fpQ_[keep] = entry;
            ++keep;
        };
        if (entry.recheckAt > cycle_) {
            retain();
            continue;
        }
        const std::uint32_t id = entry.id;
        InFlight &inst = slab_[id];
        Ctx &ctx = ctxs_[inst.ctx];
        const UOp &op = inst.op;

        if (const std::uint64_t recheck = readyOrRecheck(inst)) {
            entry.recheckAt = recheck;
            retain();
            continue;
        }
        int lat;
        if (op.cls == OpClass::FpAdd) {
            if (fp_add_used >= params_.fpAddPipes) {
                conf_fp_units = true;
                retain();
                continue;
            }
            ++fp_add_used;
            lat = params_.fpAddLat;
        } else if (op.cls == OpClass::FpMult) {
            if (fp_mul_used >= fp_mul_open) {
                conf_fp_units = true;
                retain();
                continue;
            }
            ++fp_mul_used;
            lat = params_.fpMultLat;
        } else { // FpDiv
            if (fp_mul_used >= fp_mul_open) {
                conf_fp_units = true;
                retain();
                continue;
            }
            lat = params_.fpDivLat;
            // Divide monopolizes a multiply pipe (non-pipelined).
            for (int u = 0; u < params_.fpMulPipes; ++u) {
                auto &busy = fpBusyUntil_[static_cast<std::size_t>(u)];
                if (busy <= cycle_) {
                    busy = cycle_ + static_cast<std::uint64_t>(lat);
                    --fp_mul_open;
                    break;
                }
            }
        }
        inst.issued = true;
        inst.completed = true;
        inst.completeCycle = cycle_ + static_cast<std::uint64_t>(lat);
        --ctx.icount;
        if (!inst.spin)
            ++pc.issued;
    }
    fpQ_.resize(keep);

    if (conf_int_units)
        ++pc.confIntUnits;
    if (conf_fp_units)
        ++pc.confFpUnits;
    if (conf_ls_ports)
        ++pc.confLsPorts;
}

void
SmtCore::doDispatch(PerfCounters &pc)
{
    int budget = params_.dispatchWidth;
    std::array<int, MaxContexts> slots{};
    const int n = activeSlots(slots);

    bool conf_rob = false;
    bool conf_int_q = false;
    bool conf_fp_q = false;
    bool conf_int_regs = false;
    bool conf_fp_regs = false;

    for (int i = 0; i < n && budget > 0; ++i) {
        const int slot = slots[static_cast<std::size_t>(
            (dispatchRR_ + i) % n)];
        Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
        while (budget > 0 && !ctx.fetchQ.empty()) {
            const Fetched &front = ctx.fetchQ.front();
            if (front.readyAt > cycle_)
                break;
            const UOp &op = front.op;

            if (robFree_ == 0) {
                conf_rob = true;
                break;
            }
            const bool is_fp_q = op.isFp();
            if (is_fp_q) {
                if (static_cast<int>(fpQ_.size()) >= params_.fpQueueSize) {
                    conf_fp_q = true;
                    break;
                }
            } else {
                if (static_cast<int>(intQ_.size()) >=
                    params_.intQueueSize) {
                    conf_int_q = true;
                    break;
                }
            }
            if (op.dst != NoReg) {
                if (isFpReg(op.dst)) {
                    if (fpRenameFree_ == 0) {
                        conf_fp_regs = true;
                        break;
                    }
                } else {
                    if (intRenameFree_ == 0) {
                        conf_int_regs = true;
                        break;
                    }
                }
            }

            // All resources available: dispatch.
            const std::uint32_t id = allocInst();
            InFlight &inst = slab_[id];
            inst.op = op;
            inst.ctx = static_cast<std::uint8_t>(slot);
            inst.issued = false;
            inst.completed = false;
            inst.completeCycle = 0;
            inst.mispredicted = front.mispredicted;
            inst.spin = front.spin;

            // Capture the program-order producers now; the register
            // name may be recycled by a younger writer before this
            // instruction issues.
            inst.prodA = noInst;
            inst.prodB = noInst;
            if (op.srcA != NoReg) {
                inst.prodA = ctx.lastWriter[op.srcA];
                inst.prodASeq = ctx.lastWriterSeq[op.srcA];
            }
            if (op.srcB != NoReg) {
                inst.prodB = ctx.lastWriter[op.srcB];
                inst.prodBSeq = ctx.lastWriterSeq[op.srcB];
            }
            inst.aDone = producerDone(inst.prodA, inst.prodASeq);
            inst.bDone = producerDone(inst.prodB, inst.prodBSeq);

            --robFree_;
            if (op.dst != NoReg) {
                if (isFpReg(op.dst))
                    --fpRenameFree_;
                else
                    --intRenameFree_;
                ctx.lastWriter[op.dst] = id;
                ctx.lastWriterSeq[op.dst] = inst.seq;
            }
            ctx.rob.push_back(id);
            if (is_fp_q)
                fpQ_.push_back(QEntry{id, 0});
            else
                intQ_.push_back(QEntry{id, 0});

            if (front.spin) {
                ++pc.spinOps;
            } else {
                switch (op.cls) {
                  case OpClass::IntAlu:
                  case OpClass::IntMult:
                    ++pc.intOps;
                    break;
                  case OpClass::Branch:
                    ++pc.intOps;
                    ++pc.branches;
                    break;
                  case OpClass::FpAdd:
                  case OpClass::FpMult:
                  case OpClass::FpDiv:
                    ++pc.fpOps;
                    break;
                  case OpClass::Load:
                    ++pc.loads;
                    break;
                  case OpClass::Store:
                    ++pc.stores;
                    break;
                  case OpClass::Barrier:
                    panic("barriers never enter the dispatch stream");
                }
                ++pc.dispatched;
            }
            ctx.fetchQ.pop_front();
            --budget;
        }
    }
    if (n > 0)
        dispatchRR_ = (dispatchRR_ + 1) % n;

    if (conf_rob)
        ++pc.confRob;
    if (conf_int_q)
        ++pc.confIntQueue;
    if (conf_fp_q)
        ++pc.confFpQueue;
    if (conf_int_regs)
        ++pc.confIntRegs;
    if (conf_fp_regs)
        ++pc.confFpRegs;
}

bool
SmtCore::tryFetchOne(Ctx &ctx, PerfCounters &pc)
{
    // Returns true if fetch for this thread may continue this cycle.
    UOp op;
    bool spin = false;
    if (ctx.atBarrier) {
        // Busy-wait: a parked thread spins on the barrier flag. With
        // ICOUNT fetch the spinner's near-empty window gives it top
        // fetch priority every cycle, so the loop (flag load, a few
        // dependent test ops, a taken branch) soaks up fetch slots,
        // queue entries and a load port -- the resource drag that
        // makes splitting tightly-synchronized threads so expensive on
        // an SMT (Section 6).
        spin = true;
        op = UOp();
        const std::uint32_t phase = ctx.spinPhase++ % 5;
        op.pc = 0xf00 + 4 * phase;
        switch (phase) {
          case 0:
            op.cls = OpClass::Load;
            op.addr = 0x7c0; // barrier flag: L1-resident
            op.dst = 30;
            break;
          case 1:
          case 2:
          case 3:
            op.cls = OpClass::IntAlu;
            op.srcA = static_cast<std::uint8_t>(31 - phase);
            op.dst = static_cast<std::uint8_t>(30 - phase);
            break;
          default:
            op.cls = OpClass::Branch;
            op.srcA = 27;
            op.taken = true; // loop back to the flag load
            break;
        }
    } else if (ctx.hasPending) {
        op = ctx.pendingOp;
        ctx.hasPending = false;
    } else {
        op = ctx.bind.gen->next();
    }

    if (op.cls == OpClass::Barrier) {
        SOS_ASSERT(ctx.bind.sync != nullptr,
                   "barrier from a thread with no sync domain");
        ctx.bind.sync->arrive(ctx.bind.syncIndex);
        ++pc.barriers;
        if (ctx.bind.sync->blocked(ctx.bind.syncIndex)) {
            ctx.atBarrier = true;
            return false;
        }
        return true; // barrier consumed for free; keep fetching
    }

    const std::uint64_t line = op.pc / mem_.params().l1i.lineBytes;
    if (line != ctx.lastFetchLine) {
        ctx.lastFetchLine = line;
        const std::uint32_t extra = mem_.instAccess(ctx.bind.asid, op.pc);
        if (extra > 0) {
            ctx.pendingOp = op;
            ctx.hasPending = true;
            ctx.fetchStallUntil = cycle_ + extra;
            return false;
        }
    }

    Fetched fetched;
    fetched.op = op;
    fetched.readyAt = cycle_ + static_cast<std::uint64_t>(
                                   params_.frontendDelay);
    fetched.mispredicted = false;
    fetched.spin = spin;

    bool stop = false;
    if (op.cls == OpClass::Branch) {
        const bool predicted =
            bpred_.predictAndUpdate(ctx.predSalt, op.pc, op.taken);
        if (predicted != op.taken) {
            fetched.mispredicted = true;
            if (!spin)
                ++pc.branchMispredicts;
            // Park the front end until the branch resolves at issue.
            ctx.fetchStallUntil = redirectPending;
            stop = true;
        } else if (op.taken) {
            stop = true; // a taken branch ends the fetch block
        }
    }

    ctx.fetchQ.push_back(fetched);
    ++ctx.icount;
    if (!spin)
        ++pc.fetched;
    return !stop;
}

void
SmtCore::doFetch(PerfCounters &pc)
{
    // ICOUNT: fetch from the threads with the fewest in-flight
    // pre-issue instructions.
    std::array<int, MaxContexts> picked{};
    int num_candidates = 0;
    for (int slot = 0; slot < params_.numContexts; ++slot) {
        Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
        if (!ctx.active)
            continue;
        if (ctx.atBarrier &&
            !ctx.bind.sync->blocked(ctx.bind.syncIndex)) {
            ctx.atBarrier = false; // barrier released; resume for real
        }
        if (ctx.fetchStallUntil > cycle_)
            continue;
        if (static_cast<int>(ctx.fetchQ.size()) >= params_.fetchQueueSize)
            continue;
        picked[static_cast<std::size_t>(num_candidates++)] = slot;
    }
    // Insertion sort by icount; ties go to the least-recently-fetched
    // context so equal threads share the front end evenly. The
    // round-robin ablation ignores occupancy entirely.
    const bool round_robin = params_.roundRobinFetch;
    const auto before = [this, round_robin](int a, int b) {
        const Ctx &ca = ctxs_[static_cast<std::size_t>(a)];
        const Ctx &cb = ctxs_[static_cast<std::size_t>(b)];
        if (!round_robin && ca.icount != cb.icount)
            return ca.icount < cb.icount;
        return ca.lastFetchCycle < cb.lastFetchCycle;
    };
    for (int i = 1; i < num_candidates; ++i) {
        const int slot = picked[static_cast<std::size_t>(i)];
        int j = i - 1;
        while (j >= 0 &&
               before(slot, picked[static_cast<std::size_t>(j)])) {
            picked[static_cast<std::size_t>(j + 1)] =
                picked[static_cast<std::size_t>(j)];
            --j;
        }
        picked[static_cast<std::size_t>(j + 1)] = slot;
    }

    const int num_threads = std::min(num_candidates, params_.fetchThreads);
    int budget = params_.fetchWidth;
    for (int t = 0; t < num_threads && budget > 0; ++t) {
        const int slot = picked[static_cast<std::size_t>(t)];
        Ctx &ctx = ctxs_[static_cast<std::size_t>(slot)];
        bool fetched_any = false;
        while (budget > 0 &&
               static_cast<int>(ctx.fetchQ.size()) <
                   params_.fetchQueueSize) {
            const std::size_t before = ctx.fetchQ.size();
            const bool keep_going = tryFetchOne(ctx, pc);
            if (ctx.fetchQ.size() > before) {
                --budget;
                fetched_any = true;
            }
            if (!keep_going)
                break;
        }
        if (fetched_any)
            ctx.lastFetchCycle = cycle_;
    }
}

} // namespace sos
