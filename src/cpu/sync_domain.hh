/**
 * @file
 * Barrier synchronization domain of a parallel job.
 *
 * Each multithreaded job owns one SyncDomain shared by its threads.
 * A thread arriving at its k-th barrier blocks until every sibling has
 * also arrived at barrier k. Arrival state lives with the job, not
 * the hardware context, so it persists across descheduling: a thread
 * whose sibling is not coscheduled simply stays blocked until the
 * sibling eventually runs -- which is exactly why splitting the
 * paper's tightly-synchronized ARRAY threads across timeslices
 * collapses their throughput (Section 6).
 */

#ifndef SOS_CPU_SYNC_DOMAIN_HH
#define SOS_CPU_SYNC_DOMAIN_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace sos {

/** Tracks barrier arrivals of one parallel job's threads. */
class SyncDomain
{
  public:
    /** @param num_threads Sibling threads in the job (>= 1). */
    explicit SyncDomain(int num_threads) { reset(num_threads); }

    /** Restart with a (possibly different) thread count. */
    void
    reset(int num_threads)
    {
        SOS_ASSERT(num_threads >= 1);
        arrived_.assign(static_cast<std::size_t>(num_threads), 0);
        released_ = 0;
    }

    /** Thread t announces arrival at its next barrier. */
    void
    arrive(int t)
    {
        auto &count = arrived_.at(static_cast<std::size_t>(t));
        ++count;
        released_ = *std::min_element(arrived_.begin(), arrived_.end());
    }

    /**
     * True while thread t has arrived at a barrier that some sibling
     * has not yet reached.
     */
    bool
    blocked(int t) const
    {
        return arrived_.at(static_cast<std::size_t>(t)) > released_;
    }

    /** Number of barrier generations fully completed. */
    std::uint64_t completed() const { return released_; }

    /** Sibling thread count. */
    int
    numThreads() const
    {
        return static_cast<int>(arrived_.size());
    }

  private:
    std::vector<std::uint64_t> arrived_;
    std::uint64_t released_ = 0;
};

} // namespace sos

#endif // SOS_CPU_SYNC_DOMAIN_HH
