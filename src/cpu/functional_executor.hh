/**
 * @file
 * Functional fast-forward executor for sampled simulation.
 *
 * The low-fidelity half of the fidelity-polymorphic execution stack
 * (DESIGN.md section 10). It advances exactly the state a later
 * detailed window depends on -- TraceGenerator streams (the RNG
 * streams ARE the program), barrier arrivals, caches, TLBs, the
 * stride prefetcher and the branch predictor -- while skipping
 * everything that only yields per-cycle timing: issue queues,
 * dependence wakeups, rename/ROB occupancy, fetch policy. Each
 * retired uop is a handful of RNG draws plus at most two cache
 * probes, versus ~800 host cycles through the detailed pipeline.
 *
 * It deliberately has no timing model of its own: the caller (the
 * SamplingController) converts a fast-forwarded cycle span into
 * per-slot uop budgets using retirement rates measured in the
 * preceding detailed window, which keeps instruction counts and job
 * progress consistent with what full detail would have retired.
 */

#ifndef SOS_CPU_FUNCTIONAL_EXECUTOR_HH
#define SOS_CPU_FUNCTIONAL_EXECUTOR_HH

#include <array>
#include <cstdint>

#include "cpu/core_params.hh"
#include "cpu/perf_counters.hh"

namespace sos {

class SmtCore;

/** Advances an SmtCore's threads functionally (no pipeline timing). */
class FunctionalExecutor
{
  public:
    /** Per-slot retirement rates (uops per cycle, from detail). */
    using Rates = std::array<double, MaxContexts>;

    explicit FunctionalExecutor(SmtCore &core) : core_(core) {}

    /**
     * Fast-forward @p cycles simulated cycles: each active slot
     * retires ~rates[slot] * cycles uops (warming the memory system
     * and branch predictor along the way), barriers arrive and
     * release exactly as the generators dictate, and the core's clock
     * jumps by @p cycles. The core must be drained
     * (SmtCore::drainInFlight) first -- the executor feeds straight
     * from the generators and asserts nothing is in flight.
     *
     * Counter semantics: every retired uop is credited through all
     * four stage counters (fetched/dispatched/issued/retired), class
     * counters, branch and memory counters, and slotRetired; cycles
     * and the memory-component deltas accrue exactly as in a detailed
     * run. Per-cycle conflict counters stay untouched (the controller
     * extrapolates those). Threads parked at a barrier make no
     * progress and synthesize no spin filler; their unspent budget is
     * simply idle time, and partners they are waiting on keep running
     * in the same pass (execution is interleaved in small chunks so
     * no barrier deadlocks on budget ordering).
     */
    void run(std::uint64_t cycles, const Rates &rates,
             PerfCounters &counters);

  private:
    SmtCore &core_;
};

} // namespace sos

#endif // SOS_CPU_FUNCTIONAL_EXECUTOR_HH
