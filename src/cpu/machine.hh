/**
 * @file
 * The machine model: a CMP of homogeneous SMT cores behind one L2.
 *
 * A Machine owns N SmtCores, one private CacheHierarchy view per core
 * (L1s, TLBs, prefetcher) and the SharedL2 all views route their
 * misses through.  Everything above this layer -- engines, schedule
 * sweeps, experiments -- borrows cores by reference, so the one-core
 * machine is exactly the old single-core simulator with its ownership
 * inverted, and reproduces it bit-for-bit.
 *
 * Determinism: the machine itself holds no scheduling state.  Drivers
 * step cores in core-index order (see MachineEngine), so any run is a
 * pure function of (params, bound workloads), never of wall-clock or
 * worker count.
 */

#ifndef SOS_CPU_MACHINE_HH
#define SOS_CPU_MACHINE_HH

#include <memory>
#include <vector>

#include "cpu/smt_core.hh"
#include "mem/cache_hierarchy.hh"

namespace sos {

namespace stats {
class Group;
} // namespace stats

/** Most cores any machine can be built with. */
constexpr int MaxCores = 16;

/** Static configuration of a machine. */
struct MachineParams
{
    /** Number of SMT cores sharing the L2. */
    int numCores = 1;

    /**
     * Default per-core microarchitecture.  When @c cores is empty this
     * is every core's configuration (homogeneous CMP, the pre-config
     * behaviour); otherwise it is only the template heterogeneous
     * configs start from.
     */
    CoreParams core;

    /**
     * Default memory configuration.  Always supplies the shared-L2
     * geometry (@c mem.l2); when @c coreMem is empty it also supplies
     * every core's private levels and latencies.
     */
    MemParams mem;

    /**
     * Per-core microarchitecture overrides.  Empty for a homogeneous
     * machine; otherwise exactly @c numCores entries, one per core in
     * core-index order.  Kept after the original members so aggregate
     * initialisation `MachineParams{n, core, mem}` stays valid.
     */
    std::vector<CoreParams> cores;

    /**
     * Per-core private-memory overrides (L1s, TLBs, latencies,
     * prefetcher).  Empty for uniform memory; otherwise exactly
     * @c numCores entries.  The shared-L2 geometry always comes from
     * @c mem.l2 -- a per-core entry's .l2 field is ignored.
     */
    std::vector<MemParams> coreMem;

    /** Core @p k's microarchitecture (override or shared default). */
    const CoreParams &
    coreParams(int k) const
    {
        return cores.empty() ? core
                             : cores.at(static_cast<std::size_t>(k));
    }

    /** Core @p k's private-memory configuration. */
    const MemParams &
    memParams(int k) const
    {
        return coreMem.empty() ? mem
                               : coreMem.at(static_cast<std::size_t>(k));
    }

    /** True when every core is identical (the pre-config fast path). */
    bool homogeneous() const;

    /**
     * Partition cores into equivalence classes of identical
     * configuration: classIds[k] is core k's class, numbered 0.. in
     * order of first appearance (so class 0 always contains core 0).
     * Two cores are in one class iff their CoreParams and effective
     * MemParams compare equal -- the invariance classes under which
     * MachineScheduleSpace keys may still treat cores as
     * interchangeable.
     */
    std::vector<int> coreClasses() const;
};

/**
 * Check a machine configuration: core count within [1, MaxCores] plus
 * the per-core and memory validations.
 *
 * @throws std::invalid_argument describing the first violation.
 */
void validateMachineParams(const MachineParams &params);

/** A chip multiprocessor of SMT cores with a shared L2. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    /** Single- or multi-core convenience constructor. */
    Machine(const CoreParams &core, const MemParams &mem,
            int num_cores = 1);

    /**
     * Snapshot copy: a value copy of the whole machine -- shared L2,
     * per-core memory views and cores with their complete pipeline
     * state.  Cores and views are rebuilt against the copy's own
     * SharedL2, so the two machines share nothing and can run
     * concurrently.  Active contexts still reference the original
     * run's generators; see SmtCore::rebindThread (the snapshot layer
     * handles this -- see sim/snapshot.hh).
     */
    Machine(const Machine &other);

    int numCores() const { return static_cast<int>(cores_.size()); }

    SmtCore &core(int k) { return *cores_.at(static_cast<std::size_t>(k)); }
    const SmtCore &
    core(int k) const
    {
        return *cores_.at(static_cast<std::size_t>(k));
    }

    /** Core @p k's private view of memory. */
    CacheHierarchy &
    memory(int k)
    {
        return *views_.at(static_cast<std::size_t>(k));
    }
    const CacheHierarchy &
    memory(int k) const
    {
        return *views_.at(static_cast<std::size_t>(k));
    }

    SharedL2 &sharedL2() { return l2_; }
    const SharedL2 &sharedL2() const { return l2_; }

    const MachineParams &params() const { return params_; }

    /** Detach every thread from every core. */
    void detachAll();

    /** Invalidate every cache on the machine (between experiments). */
    void flushAll();

    /**
     * Register the machine's memory-system counters under @p group:
     * the shared cache's aggregate counters under "l2", and one
     * "core<k>" subgroup per core holding that core's private levels
     * plus its shared-L2 contention counters ("core0.l2_contention.*").
     * Stats bind to live counters; the machine must outlive dumps.
     */
    void registerStats(const stats::Group &group) const;

  private:
    MachineParams params_;
    SharedL2 l2_;
    std::vector<std::unique_ptr<CacheHierarchy>> views_;
    std::vector<std::unique_ptr<SmtCore>> cores_;
};

} // namespace sos

#endif // SOS_CPU_MACHINE_HH
