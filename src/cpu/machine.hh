/**
 * @file
 * The machine model: a CMP of homogeneous SMT cores behind one L2.
 *
 * A Machine owns N SmtCores, one private CacheHierarchy view per core
 * (L1s, TLBs, prefetcher) and the SharedL2 all views route their
 * misses through.  Everything above this layer -- engines, schedule
 * sweeps, experiments -- borrows cores by reference, so the one-core
 * machine is exactly the old single-core simulator with its ownership
 * inverted, and reproduces it bit-for-bit.
 *
 * Determinism: the machine itself holds no scheduling state.  Drivers
 * step cores in core-index order (see MachineEngine), so any run is a
 * pure function of (params, bound workloads), never of wall-clock or
 * worker count.
 */

#ifndef SOS_CPU_MACHINE_HH
#define SOS_CPU_MACHINE_HH

#include <memory>
#include <vector>

#include "cpu/smt_core.hh"
#include "mem/cache_hierarchy.hh"

namespace sos {

namespace stats {
class Group;
} // namespace stats

/** Most cores any machine can be built with. */
constexpr int MaxCores = 16;

/** Static configuration of a machine. */
struct MachineParams
{
    /** Number of identical SMT cores sharing the L2. */
    int numCores = 1;

    /** Per-core microarchitecture (homogeneous CMP). */
    CoreParams core;

    /** Memory configuration: private-level geometry + shared L2. */
    MemParams mem;
};

/**
 * Check a machine configuration: core count within [1, MaxCores] plus
 * the per-core and memory validations.
 *
 * @throws std::invalid_argument describing the first violation.
 */
void validateMachineParams(const MachineParams &params);

/** A chip multiprocessor of SMT cores with a shared L2. */
class Machine
{
  public:
    explicit Machine(const MachineParams &params);

    /** Single- or multi-core convenience constructor. */
    Machine(const CoreParams &core, const MemParams &mem,
            int num_cores = 1);

    /**
     * Snapshot copy: a value copy of the whole machine -- shared L2,
     * per-core memory views and cores with their complete pipeline
     * state.  Cores and views are rebuilt against the copy's own
     * SharedL2, so the two machines share nothing and can run
     * concurrently.  Active contexts still reference the original
     * run's generators; see SmtCore::rebindThread (the snapshot layer
     * handles this -- see sim/snapshot.hh).
     */
    Machine(const Machine &other);

    int numCores() const { return static_cast<int>(cores_.size()); }

    SmtCore &core(int k) { return *cores_.at(static_cast<std::size_t>(k)); }
    const SmtCore &
    core(int k) const
    {
        return *cores_.at(static_cast<std::size_t>(k));
    }

    /** Core @p k's private view of memory. */
    CacheHierarchy &
    memory(int k)
    {
        return *views_.at(static_cast<std::size_t>(k));
    }
    const CacheHierarchy &
    memory(int k) const
    {
        return *views_.at(static_cast<std::size_t>(k));
    }

    SharedL2 &sharedL2() { return l2_; }
    const SharedL2 &sharedL2() const { return l2_; }

    const MachineParams &params() const { return params_; }

    /** Detach every thread from every core. */
    void detachAll();

    /** Invalidate every cache on the machine (between experiments). */
    void flushAll();

    /**
     * Register the machine's memory-system counters under @p group:
     * the shared cache's aggregate counters under "l2", and one
     * "core<k>" subgroup per core holding that core's private levels
     * plus its shared-L2 contention counters ("core0.l2_contention.*").
     * Stats bind to live counters; the machine must outlive dumps.
     */
    void registerStats(const stats::Group &group) const;

  private:
    MachineParams params_;
    SharedL2 l2_;
    std::vector<std::unique_ptr<CacheHierarchy>> views_;
    std::vector<std::unique_ptr<SmtCore>> cores_;
};

} // namespace sos

#endif // SOS_CPU_MACHINE_HH
