/**
 * @file
 * Cycle-level simultaneous multithreading out-of-order core.
 *
 * Models the pipeline the paper's evaluation rests on: ICOUNT.2.8
 * fetch across hardware contexts, shared rename register pools,
 * shared INT/FP issue queues (20/15 entries as on the 21264), a
 * shared reorder buffer ("scoreboard"), a pool of functional units,
 * and a shared memory hierarchy. Every structure a thread can be
 * denied in a cycle has a conflict counter; those counters are the
 * raw material of the SOS predictors.
 *
 * Deliberate simplifications (documented in DESIGN.md):
 *  - wrong-path instructions are not executed; a mispredicted branch
 *    stalls its thread's fetch until the branch resolves, plus a
 *    redirect penalty;
 *  - loads and stores occupy a load/store port rather than an integer
 *    unit subcluster;
 *  - rename registers are released at commit of the writing
 *    instruction.
 *
 * Hot-path layout (DESIGN.md section 9): per-thread pipeline state is
 * struct-of-arrays (`active_`, `icount_`, `fetchStall_`, ... indexed
 * by slot), fetch queues and per-thread ROBs are ring buffers in flat
 * slabs, operand readiness is event-driven (a producer wakes its
 * waiting consumers when it issues, so the issue scan never polls),
 * and each issue queue carries a wake cycle that lets whole scans be
 * skipped when provably nothing can change. All of it is layout and
 * scheduling of the *simulator*, not the simulated machine: counters
 * and manifests are bit-identical to the pre-rewrite core (pinned by
 * tests/test_smt_core_fastpath.cpp).
 */

#ifndef SOS_CPU_SMT_CORE_HH
#define SOS_CPU_SMT_CORE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/core_params.hh"
#include "cpu/perf_counters.hh"
#include "cpu/thread_binding.hh"
#include "mem/cache_hierarchy.hh"
#include "trace/trace_generator.hh"
#include "trace/uop.hh"

namespace sos {

/** The simulated SMT processor. */
class SmtCore
{
  public:
    /**
     * @param params Core configuration (validated; throws
     *        std::invalid_argument on a structurally invalid one).
     * @param mem This core's view of the machine's memory system
     *        (must outlive the core; see Machine).
     */
    SmtCore(const CoreParams &params, CacheHierarchy &mem);

    /**
     * Snapshot copy: duplicate @p other's complete pipeline state --
     * contexts, in-flight slab, issue queues, rename/ROB occupancy,
     * predictor, cycle and round-robin cursors -- on top of @p mem
     * (the copying Machine's matching memory view).  Active contexts
     * still point at the *original* mix's generators and sync domains;
     * the owner must rebindThread() every active slot to its own mix
     * copy before running the core.
     */
    SmtCore(const SmtCore &other, CacheHierarchy &mem);

    /** Bind a software thread to context slot (slot must be free). */
    void attachThread(int slot, const ThreadBinding &binding);

    /**
     * Swap the thread bound to an active slot for an equivalent one
     * (same ASID, a generator/sync-domain copy at the same position in
     * its stream).  Unlike attachThread this preserves every bit of
     * pipeline state -- nothing is squashed, no salt recomputed -- so
     * a snapshot fork resumes exactly where the original would.
     */
    void rebindThread(int slot, const ThreadBinding &binding);

    /**
     * Unbind the thread in the given slot, squashing its in-flight
     * instructions (the pipeline drain of a context switch).
     */
    void detachThread(int slot);

    /** Detach every bound thread. */
    void detachAll();

    /** True if the slot currently has a thread bound. */
    bool slotActive(int slot) const;

    /**
     * Simulate the given number of cycles, accumulating counters.
     * Per-slot retired counts land in counters.slotRetired.
     *
     * Stage bookkeeping accumulates into a local delta and flushes
     * into @p counters when the call returns (the batched-counter
     * contract: deltas become visible at run() boundaries, and every
     * counter is additive, so any partition of an interval across
     * run() calls sums to the same totals).
     */
    void run(std::uint64_t cycles, PerfCounters &counters);

    /** Absolute simulated cycle count since construction. */
    std::uint64_t now() const { return cycle_; }

    /** This core's memory view (for flushing and inspection). */
    CacheHierarchy &memory() { return mem_; }
    const CacheHierarchy &memory() const { return mem_; }

    /** The shared branch predictor (for inspection). */
    const BranchPredictor &predictor() const { return bpred_; }

    const CoreParams &params() const { return params_; }

    /** Instructions currently dispatched but not committed. */
    int inFlightCount() const;

    /**
     * Instantly retire everything in flight -- fetch queues, pending
     * icache-miss ops and the ROB -- crediting each non-spin
     * instruction's remaining stage counters into @p counters
     * (including slotRetired), so the fetch streams stay exactly where
     * the generators left them: a generator cannot rewind, so a
     * fidelity switch must account for every emitted uop exactly once.
     * Spin-loop ops are synthetic and are discarded uncounted, like a
     * squash. Clears fetch stalls (including mispredict redirects) and
     * the register scoreboards; barrier parking (atBarrier_) and fetch
     * line state survive. Used by the sampling controller right before
     * handing the core to the functional executor.
     */
    void drainInFlight(PerfCounters &counters);

    /** Print internal pipeline state to stderr (debugging aid). */
    void debugDump() const;

  private:
    /**
     * The functional fast-forward executor advances the same context
     * state (generators, barriers, fetch lines, predictor salts)
     * without per-cycle pipeline modeling; see
     * cpu/functional_executor.hh.
     */
    friend class FunctionalExecutor;

    /** Fetched, pre-dispatch instruction (fetch-queue ring element). */
    struct Fetched
    {
        UOp op;
        std::uint64_t readyAt = 0; ///< earliest dispatch cycle
        bool mispredicted = false;
        bool spin = false; ///< busy-wait op: consumes resources only
    };

    /**
     * Dispatched instruction tracked until commit.
     *
     * Operand readiness is event-driven: a consumer whose producer has
     * not issued yet registers itself on the producer's intrusive
     * waiter list (`waiterHead`/`nextA`/`nextB`); when the producer
     * issues, it walks the list and converts each waiting operand into
     * an exact ready cycle.  `when` does double duty across the entry's
     * two disjoint phases: before issue it accumulates the max of the
     * resolved operand-available cycles (and dispatch+1); at issue it
     * becomes the completion cycle.  The instruction is schedulable
     * once `waitCount` drops to zero.  Producers are always older
     * same-context instructions, so a waiter list can never outlive
     * its members: a waiting consumer cannot issue or commit, and a
     * context squash frees producers and consumers together.
     *
     * The whole entry fits one cache line; the per-cycle issue scan
     * never touches it (see QEntry), only issue/wake/commit do.
     */
    struct InFlight
    {
        UOp op;
        /** Ready cycle before issue; completion cycle after. */
        std::uint64_t when = 0;
        /** Producers still being waited on (noInst once resolved). */
        std::uint32_t prodA = ~std::uint32_t{0};
        std::uint32_t prodB = ~std::uint32_t{0};
        /** Head of this instruction's waiting-consumer list. */
        std::uint32_t waiterHead = ~std::uint32_t{0};
        /** Waiter-list links (one per operand this entry waits with). */
        std::uint32_t nextA = ~std::uint32_t{0};
        std::uint32_t nextB = ~std::uint32_t{0};
        /** Dispatch-order stamp (wrapping; compared via int32 diff). */
        std::uint32_t age = 0;
        std::uint8_t ctx = 0;
        std::uint8_t waitCount = 0; ///< unresolved operands
        bool completed = false;
        bool mispredicted = false;
        /**
         * Busy-wait instruction from a barrier spin loop: occupies
         * pipeline resources like any other op but retires without
         * being counted as progress.
         */
        bool spin = false;
    };
    static_assert(sizeof(InFlight) <= 64,
                  "InFlight must stay within one cache line");

    /**
     * Issue-queue record: everything the per-cycle scan needs without
     * touching the instruction slab.  Queues hold only schedulable
     * instructions (operands resolved), in dispatch order; an entry
     * whose ready cycle lies in the future is skipped right here, so
     * the scan's slab accesses are exactly the issue attempts.
     */
    struct QEntry
    {
        std::uint64_t readyAt = 0;
        std::uint32_t id = 0;
        std::uint32_t age = 0;
    };

    /**
     * Architectural register scoreboard entry.  `ready` is the cycle
     * the last written value becomes available (0 if the writer has
     * long retired), or the pendingReg sentinel while the writer is
     * dispatched but not yet issued -- in which case `writer` names
     * the slab entry a consumer must wait on.
     */
    struct RegEntry
    {
        std::uint64_t ready = 0;
        std::uint32_t writer = ~std::uint32_t{0};
    };

    /**
     * Cold per-context state: touched at fetch/dispatch of individual
     * instructions, not scanned per cycle (the per-cycle stage loops
     * run over the struct-of-arrays members below instead).
     */
    struct CtxCold
    {
        ThreadBinding bind;
        UOp pendingOp; ///< op stalled behind an icache miss
        std::array<RegEntry, NumArchRegs> regs{};
        std::uint64_t lastFetchLine = ~std::uint64_t{0};
        std::uint32_t predSalt = 0; ///< per-thread predictor salt
        std::uint32_t spinPhase = 0; ///< spin-loop op alternator
        bool hasPending = false;
    };

    /** Sentinel: fetch stalled until a mispredicted branch resolves. */
    static constexpr std::uint64_t redirectPending = ~std::uint64_t{0};

    /** Sentinel: no instruction. */
    static constexpr std::uint32_t noInst = ~std::uint32_t{0};

    /** Sentinel: no wake scheduled (queue empty or all waiting). */
    static constexpr std::uint64_t noWake = ~std::uint64_t{0};

    /** Sentinel RegEntry::ready: writer dispatched, not yet issued. */
    static constexpr std::uint64_t pendingReg = ~std::uint64_t{0};

    /** doDispatch() result bits (conflict flags + activity). */
    static constexpr std::uint32_t dispConfRob = 1u << 0;
    static constexpr std::uint32_t dispConfIntQ = 1u << 1;
    static constexpr std::uint32_t dispConfFpQ = 1u << 2;
    static constexpr std::uint32_t dispConfIntRegs = 1u << 3;
    static constexpr std::uint32_t dispConfFpRegs = 1u << 4;
    static constexpr std::uint32_t dispAny = 1u << 5;

    /** @return true if anything committed. */
    bool doCommit(PerfCounters &pc);
    void doIssue(PerfCounters &pc);
    /** @return dispConf* flags raised plus dispAny on any dispatch. */
    std::uint32_t doDispatch(PerfCounters &pc);
    /** @return true if any fetch slot was exercised or unblocked. */
    bool doFetch(PerfCounters &pc);

    /**
     * The executed cycle was architecturally idle: no commit, both
     * issue scans skipped, nothing dispatched, no fetch candidate.
     * Pipeline state is then frozen until the next event; @return the
     * earliest cycle at which any stage could act again (noWake if
     * none is scheduled -- the caller treats that as "run out the
     * interval").
     */
    std::uint64_t nextEventCycle() const;

    std::uint32_t allocInst();
    void releaseResources(const InFlight &inst);
    bool tryFetchOne(int slot, PerfCounters &pc);
    void squashCtx(int slot);

    /** Rebuild the cached ascending active-slot list. */
    void rebuildActiveList();

    /**
     * Resolve one source operand at dispatch against the context's
     * register scoreboard: immediately available, available at a known
     * future cycle (folded into the ready cycle), or waiting on an
     * un-issued producer (registered on its waiter list).
     */
    void resolveOperand(InFlight &inst, std::uint32_t id,
                        const CtxCold &cold, std::uint8_t reg,
                        bool is_second);

    /**
     * Producer @p id issued with known completion @p complete_cycle:
     * walk its waiter list and convert each waiting operand into an
     * exact ready cycle; a consumer whose last operand resolves is
     * appended to its queue's pending buffer and the queue woken.
     */
    void wakeWaiters(std::uint32_t id, std::uint64_t complete_cycle);

    /**
     * Fold the pending-wake buffer into the age-ordered queue (stable
     * dispatch-order merge; called at the top of a queue scan).
     */
    static void mergePending(std::vector<QEntry> &queue,
                             std::vector<QEntry> &pending);

    /** Ring-buffer helpers (capacities are per-context strides). */
    std::uint32_t
    wrapFetch(std::uint32_t i) const
    {
        return i + 1 == fetchStride_ ? 0 : i + 1;
    }
    std::uint32_t
    wrapRob(std::uint32_t i) const
    {
        return i + 1 == robStride_ ? 0 : i + 1;
    }

    CoreParams params_;
    CacheHierarchy &mem_;
    BranchPredictor bpred_;

    /** @name Per-context state, struct-of-arrays (indexed by slot) @{ */
    std::array<std::uint8_t, MaxContexts> active_{};
    std::array<std::uint8_t, MaxContexts> atBarrier_{};
    std::array<std::uint16_t, MaxContexts> asid_{};
    std::array<std::int32_t, MaxContexts> icount_{};
    std::array<std::uint64_t, MaxContexts> fetchStall_{};
    std::array<std::uint64_t, MaxContexts> lastFetchCycle_{};
    std::array<std::uint64_t, MaxContexts> retired_{};
    /** Fetch-queue rings: ctx c owns fetchSlab_[c*fetchStride_ ...]. */
    std::array<std::uint32_t, MaxContexts> fqHead_{};
    std::array<std::uint32_t, MaxContexts> fqCount_{};
    /** Per-thread ROB rings: ctx c owns robSlab_[c*robStride_ ...]. */
    std::array<std::uint32_t, MaxContexts> robHead_{};
    std::array<std::uint32_t, MaxContexts> robCount_{};
    /** @} */

    std::vector<CtxCold> cold_;
    std::vector<Fetched> fetchSlab_;
    std::vector<std::uint32_t> robSlab_;
    std::uint32_t fetchStride_ = 0;
    std::uint32_t robStride_ = 0;

    /** Cached ascending list of active slots (rebuilt on attach). */
    std::array<std::int32_t, MaxContexts> activeList_{};
    int numActive_ = 0;

    std::vector<InFlight> slab_;
    std::vector<std::uint32_t> freeList_;
    std::uint32_t ageCounter_ = 0;

    /**
     * Issue queues: schedulable instructions only, in dispatch (age)
     * order.  Consumers woken by a producer's issue land in the
     * pending buffer and are merged -- stable, by age -- at the top of
     * the next scan, so mid-scan wakes never mutate the queue being
     * walked.  Queue capacity counts every dispatched-not-issued
     * instruction of the class, whether it currently sits in the
     * queue, the pending buffer, or only on producers' waiter lists.
     */
    std::vector<QEntry> intQ_;
    std::vector<QEntry> fpQ_;
    std::vector<QEntry> intPend_;
    std::vector<QEntry> fpPend_;
    int intQCount_ = 0;
    int fpQCount_ = 0;
    /**
     * Earliest cycle the queue's scan could do anything: min over
     * schedulable entries of readyAt, clamped to cycle+1 for entries
     * denied a unit this cycle.  A scan at a cycle below the wake is
     * provably a no-op (every entry would be skipped by the readyAt
     * guard, which mutates nothing and raises no conflict flag), so
     * doIssue skips it wholesale.
     */
    std::uint64_t intQWake_ = noWake;
    std::uint64_t fpQWake_ = noWake;

    int intRenameFree_;
    int fpRenameFree_;
    int robFree_;

    std::array<std::uint64_t, 8> fpBusyUntil_{};

    /** L1I line shift, pre-resolved from the memory geometry. */
    std::uint32_t l1iLineShift_ = 0;
    /** Fetch policy, pre-resolved at construction (not per cycle). */
    bool roundRobinFetch_ = false;

    std::uint64_t cycle_ = 0;
    int commitRR_ = 0;
    int dispatchRR_ = 0;
};

} // namespace sos

#endif // SOS_CPU_SMT_CORE_HH
