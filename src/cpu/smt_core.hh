/**
 * @file
 * Cycle-level simultaneous multithreading out-of-order core.
 *
 * Models the pipeline the paper's evaluation rests on: ICOUNT.2.8
 * fetch across hardware contexts, shared rename register pools,
 * shared INT/FP issue queues (20/15 entries as on the 21264), a
 * shared reorder buffer ("scoreboard"), a pool of functional units,
 * and a shared memory hierarchy. Every structure a thread can be
 * denied in a cycle has a conflict counter; those counters are the
 * raw material of the SOS predictors.
 *
 * Deliberate simplifications (documented in DESIGN.md):
 *  - wrong-path instructions are not executed; a mispredicted branch
 *    stalls its thread's fetch until the branch resolves, plus a
 *    redirect penalty;
 *  - loads and stores occupy a load/store port rather than an integer
 *    unit subcluster;
 *  - rename registers are released at commit of the writing
 *    instruction.
 */

#ifndef SOS_CPU_SMT_CORE_HH
#define SOS_CPU_SMT_CORE_HH

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "cpu/branch_predictor.hh"
#include "cpu/core_params.hh"
#include "cpu/perf_counters.hh"
#include "cpu/thread_binding.hh"
#include "mem/cache_hierarchy.hh"
#include "trace/trace_generator.hh"
#include "trace/uop.hh"

namespace sos {

/** The simulated SMT processor. */
class SmtCore
{
  public:
    /**
     * @param params Core configuration (validated; throws
     *        std::invalid_argument on a structurally invalid one).
     * @param mem This core's view of the machine's memory system
     *        (must outlive the core; see Machine).
     */
    SmtCore(const CoreParams &params, CacheHierarchy &mem);

    /**
     * Snapshot copy: duplicate @p other's complete pipeline state --
     * contexts, in-flight slab, issue queues, rename/ROB occupancy,
     * predictor, cycle and round-robin cursors -- on top of @p mem
     * (the copying Machine's matching memory view).  Active contexts
     * still point at the *original* mix's generators and sync domains;
     * the owner must rebindThread() every active slot to its own mix
     * copy before running the core.
     */
    SmtCore(const SmtCore &other, CacheHierarchy &mem);

    /** Bind a software thread to context slot (slot must be free). */
    void attachThread(int slot, const ThreadBinding &binding);

    /**
     * Swap the thread bound to an active slot for an equivalent one
     * (same ASID, a generator/sync-domain copy at the same position in
     * its stream).  Unlike attachThread this preserves every bit of
     * pipeline state -- nothing is squashed, no salt recomputed -- so
     * a snapshot fork resumes exactly where the original would.
     */
    void rebindThread(int slot, const ThreadBinding &binding);

    /**
     * Unbind the thread in the given slot, squashing its in-flight
     * instructions (the pipeline drain of a context switch).
     */
    void detachThread(int slot);

    /** Detach every bound thread. */
    void detachAll();

    /** True if the slot currently has a thread bound. */
    bool slotActive(int slot) const;

    /**
     * Simulate the given number of cycles, accumulating counters.
     * Per-slot retired counts land in counters.slotRetired.
     */
    void run(std::uint64_t cycles, PerfCounters &counters);

    /** Absolute simulated cycle count since construction. */
    std::uint64_t now() const { return cycle_; }

    /** This core's memory view (for flushing and inspection). */
    CacheHierarchy &memory() { return mem_; }
    const CacheHierarchy &memory() const { return mem_; }

    /** The shared branch predictor (for inspection). */
    const BranchPredictor &predictor() const { return bpred_; }

    const CoreParams &params() const { return params_; }

    /** Instructions currently dispatched but not committed. */
    int inFlightCount() const;

    /** Print internal pipeline state to stderr (debugging aid). */
    void debugDump() const;

  private:
    /** Fetched, pre-dispatch instruction. */
    struct Fetched
    {
        UOp op;
        std::uint64_t readyAt = 0; ///< earliest dispatch cycle
        bool mispredicted = false;
        bool spin = false; ///< busy-wait op: consumes resources only
    };

    /** Dispatched instruction tracked until commit. */
    struct InFlight
    {
        UOp op;
        std::uint64_t completeCycle = 0;
        std::uint64_t seq = 0; ///< allocation stamp (detects slab reuse)
        /**
         * Program-order producers of the sources, captured at dispatch
         * (slab id + its seq). Capturing at dispatch avoids the false
         * write-after-read waits that re-reading a register scoreboard
         * at issue time would introduce once architectural registers
         * are reused by younger instructions.
         */
        std::uint32_t prodA = ~std::uint32_t{0};
        std::uint64_t prodASeq = 0;
        std::uint32_t prodB = ~std::uint32_t{0};
        std::uint64_t prodBSeq = 0;
        std::uint8_t ctx = 0;
        bool issued = false;
        bool completed = false;
        bool mispredicted = false;
        /**
         * Busy-wait instruction from a barrier spin loop: occupies
         * pipeline resources like any other op but retires without
         * being counted as progress.
         */
        bool spin = false;
        /**
         * Sticky operand-ready flags: once a producer's value is
         * available it stays available, so the issue scan only pays
         * the producer lookup until the first success.
         */
        bool aDone = false;
        bool bDone = false;
    };

    /** Per-hardware-context state. */
    struct Ctx
    {
        bool active = false;
        ThreadBinding bind;
        std::deque<Fetched> fetchQ;
        std::deque<std::uint32_t> rob; ///< in-order slab ids
        std::array<std::uint32_t, NumArchRegs> lastWriter{};
        std::array<std::uint64_t, NumArchRegs> lastWriterSeq{};
        int icount = 0; ///< instructions in pre-issue stages + queues
        std::uint64_t fetchStallUntil = 0;
        bool atBarrier = false;
        bool hasPending = false;
        UOp pendingOp; ///< op stalled behind an icache miss
        std::uint64_t lastFetchLine = ~std::uint64_t{0};
        std::uint32_t predSalt = 0; ///< per-thread predictor salt
        std::uint64_t retired = 0; ///< within the current run()
        std::uint32_t spinPhase = 0; ///< spin-loop op alternator
        std::uint64_t lastFetchCycle = 0; ///< ICOUNT tie-breaking
    };

    /** Sentinel: fetch stalled until a mispredicted branch resolves. */
    static constexpr std::uint64_t redirectPending = ~std::uint64_t{0};

    /** Sentinel: no instruction. */
    static constexpr std::uint32_t noInst = ~std::uint32_t{0};

    /** Collect active slot indices; returns how many. */
    int activeSlots(std::array<int, MaxContexts> &slots) const;

    void doCommit(PerfCounters &pc);
    void doIssue(PerfCounters &pc);
    void doDispatch(PerfCounters &pc);
    void doFetch(PerfCounters &pc);

    std::uint32_t allocInst();
    void releaseResources(const InFlight &inst);
    bool tryFetchOne(Ctx &ctx, PerfCounters &pc);
    void squashCtx(int slot);

    /** True once the captured producer's value is available. */
    bool producerDone(std::uint32_t pid, std::uint64_t seq) const;

    /**
     * 0 when the producer's value is available; otherwise the earliest
     * cycle at which re-examining it could succeed.
     */
    std::uint64_t producerRecheck(std::uint32_t pid,
                                  std::uint64_t seq) const;

    /**
     * 0 when both operands are ready; otherwise the earliest cycle at
     * which the instruction could become ready.
     */
    std::uint64_t readyOrRecheck(InFlight &inst) const;

    CoreParams params_;
    CacheHierarchy &mem_;
    BranchPredictor bpred_;
    std::vector<Ctx> ctxs_;

    std::vector<InFlight> slab_;
    std::vector<std::uint32_t> freeList_;
    std::uint64_t seqCounter_ = 0;

    /** Issue-queue entry: slab id plus a readiness-recheck hint. */
    struct QEntry
    {
        std::uint32_t id = 0;
        /**
         * Do not re-examine before this cycle: when an operand waits
         * on an already-issued producer, its completion time is known,
         * so the scan can skip the entry without touching the slab.
         */
        std::uint64_t recheckAt = 0;
    };

    std::vector<QEntry> intQ_; ///< age-ordered
    std::vector<QEntry> fpQ_;

    int intRenameFree_;
    int fpRenameFree_;
    int robFree_;

    std::array<std::uint64_t, 8> fpBusyUntil_{};

    std::uint64_t cycle_ = 0;
    int commitRR_ = 0;
    int dispatchRR_ = 0;
};

} // namespace sos

#endif // SOS_CPU_SMT_CORE_HH
