#include "perf_counters.hh"

#include <cmath>

#include "common/stats_util.hh"

namespace sos {

PerfCounters &
PerfCounters::operator+=(const PerfCounters &other)
{
    cycles += other.cycles;
    fetched += other.fetched;
    dispatched += other.dispatched;
    issued += other.issued;
    retired += other.retired;
    intOps += other.intOps;
    fpOps += other.fpOps;
    loads += other.loads;
    stores += other.stores;
    branches += other.branches;
    barriers += other.barriers;
    branchMispredicts += other.branchMispredicts;
    spinOps += other.spinOps;
    confIntQueue += other.confIntQueue;
    confFpQueue += other.confFpQueue;
    confIntRegs += other.confIntRegs;
    confFpRegs += other.confFpRegs;
    confRob += other.confRob;
    confIntUnits += other.confIntUnits;
    confFpUnits += other.confFpUnits;
    confLsPorts += other.confLsPorts;
    l1iHits += other.l1iHits;
    l1iMisses += other.l1iMisses;
    l1dHits += other.l1dHits;
    l1dMisses += other.l1dMisses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    itlbMisses += other.itlbMisses;
    dtlbMisses += other.dtlbMisses;
    for (std::size_t s = 0; s < slotRetired.size(); ++s)
        slotRetired[s] += other.slotRetired[s];
    return *this;
}

double
PerfCounters::ipc() const
{
    return safeDiv(static_cast<double>(retired),
                   static_cast<double>(cycles));
}

double
PerfCounters::l1dHitRate() const
{
    return safeDiv(static_cast<double>(l1dHits),
                   static_cast<double>(l1dHits + l1dMisses));
}

double
PerfCounters::conflictPct(std::uint64_t conflict_cycles) const
{
    return 100.0 * safeDiv(static_cast<double>(conflict_cycles),
                           static_cast<double>(cycles));
}

double
PerfCounters::allConflictPct() const
{
    return conflictPct(confIntQueue) + conflictPct(confFpQueue) +
           conflictPct(confIntRegs) + conflictPct(confFpRegs) +
           conflictPct(confRob) + conflictPct(confIntUnits) +
           conflictPct(confFpUnits) + conflictPct(confLsPorts);
}

double
PerfCounters::mixImbalance() const
{
    const double arith = static_cast<double>(intOps + fpOps);
    if (arith == 0.0)
        return 0.0;
    const double fp_share = static_cast<double>(fpOps) / arith;
    const double int_share = static_cast<double>(intOps) / arith;
    return std::abs(fp_share - int_share);
}

} // namespace sos
