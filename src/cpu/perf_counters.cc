#include "perf_counters.hh"

#include <cmath>

#include "common/stats_util.hh"
#include "stats/stats.hh"

namespace sos {

PerfCounters &
PerfCounters::operator+=(const PerfCounters &other)
{
    cycles += other.cycles;
    fetched += other.fetched;
    dispatched += other.dispatched;
    issued += other.issued;
    retired += other.retired;
    intOps += other.intOps;
    fpOps += other.fpOps;
    loads += other.loads;
    stores += other.stores;
    branches += other.branches;
    barriers += other.barriers;
    branchMispredicts += other.branchMispredicts;
    spinOps += other.spinOps;
    confIntQueue += other.confIntQueue;
    confFpQueue += other.confFpQueue;
    confIntRegs += other.confIntRegs;
    confFpRegs += other.confFpRegs;
    confRob += other.confRob;
    confIntUnits += other.confIntUnits;
    confFpUnits += other.confFpUnits;
    confLsPorts += other.confLsPorts;
    l1iHits += other.l1iHits;
    l1iMisses += other.l1iMisses;
    l1dHits += other.l1dHits;
    l1dMisses += other.l1dMisses;
    l2Hits += other.l2Hits;
    l2Misses += other.l2Misses;
    itlbMisses += other.itlbMisses;
    dtlbMisses += other.dtlbMisses;
    for (std::size_t s = 0; s < slotRetired.size(); ++s)
        slotRetired[s] += other.slotRetired[s];
    return *this;
}

double
PerfCounters::ipc() const
{
    return safeDiv(static_cast<double>(retired),
                   static_cast<double>(cycles));
}

double
PerfCounters::l1dHitRate() const
{
    return safeDiv(static_cast<double>(l1dHits),
                   static_cast<double>(l1dHits + l1dMisses));
}

double
PerfCounters::conflictPct(std::uint64_t conflict_cycles) const
{
    return 100.0 * safeDiv(static_cast<double>(conflict_cycles),
                           static_cast<double>(cycles));
}

double
PerfCounters::allConflictPct() const
{
    return conflictPct(confIntQueue) + conflictPct(confFpQueue) +
           conflictPct(confIntRegs) + conflictPct(confFpRegs) +
           conflictPct(confRob) + conflictPct(confIntUnits) +
           conflictPct(confFpUnits) + conflictPct(confLsPorts);
}

double
PerfCounters::mixImbalance() const
{
    const double arith = static_cast<double>(intOps + fpOps);
    if (arith == 0.0)
        return 0.0;
    const double fp_share = static_cast<double>(fpOps) / arith;
    const double int_share = static_cast<double>(intOps) / arith;
    return std::abs(fp_share - int_share);
}

void
PerfCounters::registerStats(const stats::Group &group) const
{
    group.scalar("cycles", "simulated cycles in the interval")
        .bind(&cycles);

    const stats::Group pipeline = group.group("pipeline");
    pipeline.scalar("fetched", "instructions fetched").bind(&fetched);
    pipeline.scalar("dispatched", "instructions dispatched")
        .bind(&dispatched);
    pipeline.scalar("issued", "instructions issued").bind(&issued);
    pipeline.scalar("retired", "instructions retired").bind(&retired);

    const stats::Group mix = group.group("mix");
    mix.scalar("int_ops", "integer ops at dispatch").bind(&intOps);
    mix.scalar("fp_ops", "FP ops at dispatch").bind(&fpOps);
    mix.scalar("loads", "loads at dispatch").bind(&loads);
    mix.scalar("stores", "stores at dispatch").bind(&stores);
    mix.scalar("branches", "branches at dispatch").bind(&branches);
    mix.scalar("barriers", "barriers at dispatch").bind(&barriers);
    mix.scalar("branch_mispredicts", "mispredicted branches")
        .bind(&branchMispredicts);
    mix.scalar("spin_ops", "busy-wait ops dispatched").bind(&spinOps);

    const stats::Group conflicts = group.group("conflicts");
    conflicts.scalar("int_queue", "INT issue-queue conflict cycles")
        .bind(&confIntQueue);
    conflicts.scalar("fp_queue", "FP issue-queue conflict cycles")
        .bind(&confFpQueue);
    conflicts.scalar("int_regs", "INT rename-register conflict cycles")
        .bind(&confIntRegs);
    conflicts.scalar("fp_regs", "FP rename-register conflict cycles")
        .bind(&confFpRegs);
    conflicts.scalar("rob", "reorder-buffer conflict cycles")
        .bind(&confRob);
    conflicts.scalar("int_units", "integer-unit conflict cycles")
        .bind(&confIntUnits);
    conflicts.scalar("fp_units", "FP-unit conflict cycles")
        .bind(&confFpUnits);
    conflicts.scalar("ls_ports", "load/store-port conflict cycles")
        .bind(&confLsPorts);

    // Cache and TLB counters, one subgroup per level.
    const stats::Group mem = group.group("mem");
    const stats::Group l1i = mem.group("l1i");
    l1i.scalar("hits", "L1I demand hits").bind(&l1iHits);
    l1i.scalar("misses", "L1I demand misses").bind(&l1iMisses);
    const stats::Group l1d = mem.group("l1d");
    l1d.scalar("hits", "L1D demand hits").bind(&l1dHits);
    l1d.scalar("misses", "L1D demand misses").bind(&l1dMisses);
    const stats::Group l2 = mem.group("l2");
    l2.scalar("hits", "L2 demand hits").bind(&l2Hits);
    l2.scalar("misses", "L2 demand misses").bind(&l2Misses);
    mem.group("itlb")
        .scalar("misses", "ITLB misses")
        .bind(&itlbMisses);
    mem.group("dtlb")
        .scalar("misses", "DTLB misses")
        .bind(&dtlbMisses);

    // Derived rates, evaluated only when a sink dumps.
    const stats::Group derived = group.group("derived");
    derived.formula("ipc", "retired instructions per cycle",
                    [this] { return ipc(); });
    derived.formula("l1d_hit_rate", "L1D demand hit rate",
                    [this] { return l1dHitRate(); });
    derived.formula("all_conflict_pct",
                    "sum of the eight conflict percentages",
                    [this] { return allConflictPct(); });
    derived.formula("mix_imbalance", "|fp - int| dispatch share",
                    [this] { return mixImbalance(); });

    stats::Vector &slots = group.vector(
        "slot_retired", "retired instructions per context slot");
    for (const std::uint64_t slot : slotRetired)
        slots.push(static_cast<double>(slot));
}

} // namespace sos
