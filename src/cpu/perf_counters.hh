/**
 * @file
 * The hardware performance counters SOS reads.
 *
 * These mirror the 21264-style counters the paper's scheduler samples:
 * per-resource conflict cycles (a resource "conflicts" in a cycle when
 * some instruction wanted it and could not have it), cache and TLB
 * hits/misses, instruction class mix, and per-context retired
 * instruction counts (the basis of weighted speedup).
 */

#ifndef SOS_CPU_PERF_COUNTERS_HH
#define SOS_CPU_PERF_COUNTERS_HH

#include <array>
#include <cstdint>

#include "cpu/core_params.hh"

namespace sos {

namespace stats {
class Group;
} // namespace stats

/** Counter snapshot accumulated over a measurement interval. */
struct PerfCounters
{
    std::uint64_t cycles = 0;

    /** @name Pipeline activity @{ */
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;
    std::uint64_t retired = 0;
    /** @} */

    /** @name Instruction classes (at dispatch) @{ */
    std::uint64_t intOps = 0; ///< IntAlu + IntMult + Branch
    std::uint64_t fpOps = 0;  ///< FpAdd + FpMult + FpDiv
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t barriers = 0;
    std::uint64_t branchMispredicts = 0;
    /** Busy-wait ops dispatched by threads spinning at a barrier. */
    std::uint64_t spinOps = 0;
    /** @} */

    /**
     * @name Conflict cycles
     * Each increments at most once per cycle, so dividing by cycles
     * yields the paper's "percentage of cycles for which the schedule
     * conflicts on the resource".
     * @{
     */
    std::uint64_t confIntQueue = 0;
    std::uint64_t confFpQueue = 0;
    std::uint64_t confIntRegs = 0;
    std::uint64_t confFpRegs = 0;
    std::uint64_t confRob = 0; ///< shared scoreboard/reorder entries
    std::uint64_t confIntUnits = 0;
    std::uint64_t confFpUnits = 0;
    std::uint64_t confLsPorts = 0;
    /** @} */

    /** @name Memory system @{ */
    std::uint64_t l1iHits = 0, l1iMisses = 0;
    std::uint64_t l1dHits = 0, l1dMisses = 0;
    std::uint64_t l2Hits = 0, l2Misses = 0;
    std::uint64_t itlbMisses = 0, dtlbMisses = 0;
    /** @} */

    /** Retired instructions per hardware context slot. */
    std::array<std::uint64_t, MaxContexts> slotRetired{};

    /** Zero every counter. */
    void clear() { *this = PerfCounters(); }

    /**
     * Field-wise equality: two intervals measured the same execution
     * iff every counter matches (the determinism tests' definition of
     * "bit-identical").
     */
    bool operator==(const PerfCounters &other) const = default;

    /** Accumulate another interval into this one. */
    PerfCounters &operator+=(const PerfCounters &other);

    /** Retired instructions per cycle over the interval. */
    double ipc() const;

    /** L1 data-cache hit rate in [0, 1]. */
    double l1dHitRate() const;

    /** Conflict count as a percentage of interval cycles. */
    double conflictPct(std::uint64_t conflict_cycles) const;

    /**
     * Sum of all eight resource-conflict percentages (the paper's
     * AllConf predictor input).
     */
    double allConflictPct() const;

    /**
     * Absolute difference between the FP and integer shares of the
     * dispatched arithmetic mix (the Diversity predictor input).
     */
    double mixImbalance() const;

    /**
     * Register every counter (and the derived rates) under @p group,
     * e.g. "<group>.pipeline.retired", "<group>.mem.l1d.misses",
     * "<group>.derived.ipc".
     *
     * Stats *bind* to the raw fields: registration stores pointers
     * that sinks read only at dump time, so the core's hot loops keep
     * incrementing plain struct members with zero added indirection
     * (the hot-path-free binding rule, DESIGN.md section 5b). This
     * object must therefore outlive any dump of the registry, and
     * must not be moved after registration.
     */
    void registerStats(const stats::Group &group) const;
};

} // namespace sos

#endif // SOS_CPU_PERF_COUNTERS_HH
