/**
 * @file
 * A small fixed-size thread pool for deterministic fan-out.
 *
 * The pool is deliberately work-stealing-free: a run() hands the
 * workers one batch of index-addressed tasks which they claim from a
 * single atomic counter. Because every task must be a pure function
 * of its index (no shared mutable state), results are bit-identical
 * regardless of worker count or claim order -- the property the
 * parallel sweep layer's determinism contract rests on.
 */

#ifndef SOS_COMMON_THREAD_POOL_HH
#define SOS_COMMON_THREAD_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sos {

/**
 * Resolve a worker-count request to a concrete positive count.
 *
 * @param requested Explicit count; 0 means "auto": the SOS_JOBS
 *        environment variable when set, else the hardware concurrency.
 */
int resolveJobs(int requested = 0);

/** Fixed set of workers executing index-addressed task batches. */
class ThreadPool
{
  public:
    /** @param workers Worker threads; <= 1 makes run() fully inline. */
    explicit ThreadPool(int workers);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    ~ThreadPool();

    int workers() const { return workers_; }

    /**
     * Execute task(0) .. task(count - 1) and block until all are done.
     * Tasks must not touch shared mutable state. If any task throws,
     * the first exception (in claim order) is rethrown here after the
     * batch drains.
     */
    void run(std::size_t count,
             const std::function<void(std::size_t)> &task);

  private:
    void workerLoop();
    void drain(const std::function<void(std::size_t)> &task);

    int workers_;
    std::vector<std::thread> threads_;

    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    bool shutdown_ = false;
    std::uint64_t batchId_ = 0;

    // State of the in-flight batch.
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t count_ = 0;
    int active_ = 0; ///< workers currently inside drain() (guarded)
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> finished_{0};
    std::exception_ptr firstError_;
};

} // namespace sos

#endif // SOS_COMMON_THREAD_POOL_HH
