#include "combinatorics.hh"

#include <algorithm>
#include <numeric>

#include "logging.hh"
#include "rng.hh"

namespace sos {

std::uint64_t
factorial(int n)
{
    SOS_ASSERT(n >= 0 && n <= 20, "factorial overflow");
    std::uint64_t result = 1;
    for (int i = 2; i <= n; ++i)
        result *= static_cast<std::uint64_t>(i);
    return result;
}

std::uint64_t
binomial(int n, int k)
{
    SOS_ASSERT(n >= 0 && k >= 0);
    if (k > n)
        return 0;
    k = std::min(k, n - k);
    std::uint64_t result = 1;
    for (int i = 1; i <= k; ++i) {
        result = result * static_cast<std::uint64_t>(n - k + i) /
                 static_cast<std::uint64_t>(i);
    }
    return result;
}

std::uint64_t
equalPartitionCount(int n, int k)
{
    SOS_ASSERT(n > 0 && k > 0 && n % k == 0,
               "partition requires k to divide n");
    // Build the count multiplicatively by repeatedly choosing the group
    // containing the smallest remaining element: C(n-1, k-1) choices,
    // then recurse on n-k elements. This avoids 64-bit overflow that a
    // direct factorial quotient would hit for n > 20.
    std::uint64_t count = 1;
    for (int remaining = n; remaining > 0; remaining -= k)
        count *= binomial(remaining - 1, k - 1);
    return count;
}

std::uint64_t
circularOrderCount(int n)
{
    SOS_ASSERT(n >= 3);
    return factorial(n - 1) / 2;
}

namespace {

void
partitionRecurse(std::vector<int> &pool, int k, Partition &current,
                 std::vector<Partition> &out)
{
    if (pool.empty()) {
        out.push_back(current);
        return;
    }
    // The smallest remaining element anchors the next group; choose its
    // k-1 companions. Anchoring guarantees each unordered partition is
    // produced exactly once, already in canonical order.
    const int anchor = pool.front();
    std::vector<int> rest(pool.begin() + 1, pool.end());
    const int m = static_cast<int>(rest.size());

    std::vector<int> pick(static_cast<std::size_t>(k - 1));
    std::iota(pick.begin(), pick.end(), 0);
    while (true) {
        std::vector<int> group{anchor};
        std::vector<bool> used(static_cast<std::size_t>(m), false);
        for (int idx : pick) {
            group.push_back(rest[static_cast<std::size_t>(idx)]);
            used[static_cast<std::size_t>(idx)] = true;
        }
        std::vector<int> next_pool;
        for (int i = 0; i < m; ++i) {
            if (!used[static_cast<std::size_t>(i)])
                next_pool.push_back(rest[static_cast<std::size_t>(i)]);
        }
        current.push_back(group);
        partitionRecurse(next_pool, k, current, out);
        current.pop_back();

        // Advance the combination (lexicographic successor).
        int i = k - 2;
        while (i >= 0 && pick[static_cast<std::size_t>(i)] ==
                             m - (k - 1) + i) {
            --i;
        }
        if (i < 0)
            break;
        ++pick[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < k - 1; ++j) {
            pick[static_cast<std::size_t>(j)] =
                pick[static_cast<std::size_t>(j - 1)] + 1;
        }
    }
}

} // namespace

std::vector<Partition>
enumerateEqualPartitions(int n, int k)
{
    SOS_ASSERT(n > 0 && k > 0 && n % k == 0);
    if (k == 1) {
        Partition singletons;
        for (int i = 0; i < n; ++i)
            singletons.push_back({i});
        return {singletons};
    }
    std::vector<Partition> out;
    std::vector<int> pool(static_cast<std::size_t>(n));
    std::iota(pool.begin(), pool.end(), 0);
    Partition current;
    partitionRecurse(pool, k, current, out);
    return out;
}

std::vector<std::vector<int>>
enumerateCircularOrders(int n)
{
    SOS_ASSERT(n >= 3);
    // Fix element 0 first (rotation), keep orders with second element
    // smaller than the last (reflection); permute the remaining n-1.
    std::vector<int> rest(static_cast<std::size_t>(n - 1));
    std::iota(rest.begin(), rest.end(), 1);
    std::vector<std::vector<int>> out;
    do {
        if (rest.front() < rest.back()) {
            std::vector<int> order{0};
            order.insert(order.end(), rest.begin(), rest.end());
            out.push_back(std::move(order));
        }
    } while (std::next_permutation(rest.begin(), rest.end()));
    return out;
}

Partition
randomEqualPartition(int n, int k, Rng &rng)
{
    SOS_ASSERT(n > 0 && k > 0 && n % k == 0);
    std::vector<int> pool(static_cast<std::size_t>(n));
    std::iota(pool.begin(), pool.end(), 0);
    rng.shuffle(pool);
    Partition p;
    for (int g = 0; g < n / k; ++g) {
        p.emplace_back(pool.begin() + g * k, pool.begin() + (g + 1) * k);
    }
    return canonicalPartition(std::move(p));
}

std::vector<int>
randomCircularOrder(int n, Rng &rng)
{
    SOS_ASSERT(n >= 3);
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    rng.shuffle(order);
    return canonicalCircular(std::move(order));
}

Partition
canonicalPartition(Partition p)
{
    for (auto &group : p)
        std::sort(group.begin(), group.end());
    std::sort(p.begin(), p.end());
    return p;
}

std::vector<int>
canonicalCircular(std::vector<int> order)
{
    SOS_ASSERT(order.size() >= 3);
    const auto smallest = std::min_element(order.begin(), order.end());
    std::rotate(order.begin(), smallest, order.end());
    if (order[1] > order.back())
        std::reverse(order.begin() + 1, order.end());
    return order;
}

std::uint64_t
mulSaturating(std::uint64_t a, std::uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    if (a > ~std::uint64_t{0} / b)
        return ~std::uint64_t{0};
    return a * b;
}

std::vector<std::vector<std::uint64_t>>
enumerateMixedRadix(const std::vector<std::uint64_t> &radices)
{
    std::uint64_t total = 1;
    for (const std::uint64_t r : radices) {
        SOS_ASSERT(r > 0, "mixed-radix digit needs a positive radix");
        total = mulSaturating(total, r);
    }
    SOS_ASSERT(total <= 1u << 20, "mixed-radix space too large");

    std::vector<std::vector<std::uint64_t>> out;
    out.reserve(static_cast<std::size_t>(total));
    std::vector<std::uint64_t> digits(radices.size(), 0);
    for (std::uint64_t i = 0; i < total; ++i) {
        out.push_back(digits);
        for (std::size_t d = digits.size(); d-- > 0;) {
            if (++digits[d] < radices[d])
                break;
            digits[d] = 0;
        }
    }
    return out;
}

std::vector<int>
mapThroughGroup(const std::vector<int> &local,
                const std::vector<int> &group)
{
    std::vector<int> out;
    out.reserve(local.size());
    for (const int i : local) {
        SOS_ASSERT(i >= 0 && i < static_cast<int>(group.size()),
                   "local index outside the group");
        out.push_back(group[static_cast<std::size_t>(i)]);
    }
    return out;
}

int
gcdInt(int a, int b)
{
    SOS_ASSERT(a > 0 && b > 0);
    while (b != 0) {
        const int t = a % b;
        a = b;
        b = t;
    }
    return a;
}

} // namespace sos
