#include "thread_pool.hh"

#include <cstdlib>

#include "logging.hh"

namespace sos {

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("SOS_JOBS")) {
        char *end = nullptr;
        const long parsed = std::strtol(env, &end, 10);
        if (end == env || *end != '\0' || parsed <= 0)
            fatal("SOS_JOBS must be a positive integer, got '", env,
                  "'");
        return static_cast<int>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int workers) : workers_(workers)
{
    SOS_ASSERT(workers >= 0);
    // The submitting thread participates in every batch, so N workers
    // means N - 1 spawned threads plus the submitter.
    for (int w = 1; w < workers_; ++w)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        shutdown_ = true;
    }
    wake_.notify_all();
    for (std::thread &thread : threads_)
        thread.join();
}

void
ThreadPool::drain(const std::function<void(std::size_t)> &task)
{
    for (;;) {
        const std::size_t index =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (index >= count_)
            break;
        try {
            task(index);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        finished_.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seen = 0; // last batch this worker took part in
    for (;;) {
        const std::function<void(std::size_t)> *task = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return shutdown_ ||
                       (task_ != nullptr && batchId_ != seen);
            });
            if (shutdown_)
                return;
            seen = batchId_;
            task = task_;
            ++active_;
        }
        drain(*task);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
        done_.notify_one();
    }
}

void
ThreadPool::run(std::size_t count,
                const std::function<void(std::size_t)> &task)
{
    if (count == 0)
        return;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    finished_.store(0, std::memory_order_relaxed);
    if (threads_.empty()) {
        // Serial mode: the same claim loop, no threads involved.
        drain(task);
    } else {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            SOS_ASSERT(task_ == nullptr, "pool batch already running");
            task_ = &task;
            ++batchId_;
        }
        wake_.notify_all();
        drain(task);
        // Wait for completion AND for every participant to leave
        // drain(), so the next batch cannot reset the counters under a
        // straggler that has claimed past the end but not returned.
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return active_ == 0 &&
                   finished_.load(std::memory_order_acquire) == count_;
        });
        task_ = nullptr;
    }
    if (firstError_) {
        std::exception_ptr error = firstError_;
        firstError_ = nullptr;
        std::rethrow_exception(error);
    }
}

} // namespace sos
