/**
 * @file
 * Small statistics helpers shared across the simulator.
 */

#ifndef SOS_COMMON_STATS_UTIL_HH
#define SOS_COMMON_STATS_UTIL_HH

#include <cstddef>
#include <vector>

namespace sos {

/**
 * Single-pass running mean / variance accumulator (Welford).
 *
 * Used for per-timeslice IPC series (the Balance predictor), response
 * time aggregation, and reporting.
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void push(double x);

    /** Number of observations so far. */
    std::size_t count() const { return n_; }

    /** Arithmetic mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Population variance (0 with fewer than two samples). */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    /** Smallest observation (0 when empty). */
    double min() const { return n_ ? min_ : 0.0; }

    /** Largest observation (0 when empty). */
    double max() const { return n_ ? max_ : 0.0; }

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Forget all observations. */
    void reset();

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Mean of a vector (0 when empty). */
double mean(const std::vector<double> &xs);

/** Population standard deviation of a vector (0 when size < 2). */
double stddev(const std::vector<double> &xs);

/** Ratio a/b that returns 0 when b is 0 (counter-safe division). */
double safeDiv(double a, double b);

/** Percentile (0..100) by linear interpolation; input need not be sorted. */
double percentile(std::vector<double> xs, double pct);

} // namespace sos

#endif // SOS_COMMON_STATS_UTIL_HH
