#include "rng.hh"

#include <cmath>

namespace sos {

double
Rng::exponential(double mean)
{
    SOS_ASSERT(mean > 0.0);
    // Inversion; clamp the uniform away from 0 to avoid log(0).
    double u = uniform();
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

std::uint64_t
Rng::geometric(double mean)
{
    SOS_ASSERT(mean >= 1.0);
    const double value = exponential(mean);
    const double rounded = std::floor(value) + 1.0;
    return static_cast<std::uint64_t>(rounded);
}

} // namespace sos
