#include "logging.hh"

#include <cstdio>

namespace sos {
namespace detail {

void
logMessage(const char *level, const std::string &msg)
{
    std::fprintf(stderr, "[sos:%s] %s\n", level, msg.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace sos
