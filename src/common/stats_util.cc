#include "stats_util.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace sos {

void
RunningStat::push(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::reset()
{
    *this = RunningStat();
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double total = 0.0;
    for (double x : xs)
        total += x;
    return total / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - m) * (x - m);
    return std::sqrt(m2 / static_cast<double>(xs.size()));
}

double
safeDiv(double a, double b)
{
    return b == 0.0 ? 0.0 : a / b;
}

double
percentile(std::vector<double> xs, double pct)
{
    SOS_ASSERT(pct >= 0.0 && pct <= 100.0);
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    if (xs.size() == 1)
        return xs[0];
    const double rank = pct / 100.0 * static_cast<double>(xs.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, xs.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

} // namespace sos
