/**
 * @file
 * Enumeration and counting of the combinatorial objects underlying SMT
 * job schedules.
 *
 * Two families of objects appear in the paper's schedule space
 * (Table 2):
 *
 *  - Full-swap schedules (Z == Y, Y | X): unordered partitions of X
 *    jobs into X/Y groups of exactly Y. Count:
 *    X! / ((Y!)^(X/Y) * (X/Y)!).
 *
 *  - Rotating schedules (Z < Y, or X not divisible by Y): circular
 *    orders of the X jobs up to rotation and reflection; the running
 *    set is a window of Y jobs advanced by Z each timeslice. Count:
 *    (X-1)!/2 for X >= 3.
 */

#ifndef SOS_COMMON_COMBINATORICS_HH
#define SOS_COMMON_COMBINATORICS_HH

#include <cstdint>
#include <vector>

namespace sos {

class Rng;

/** A grouping of element indices into equal-size groups. */
using Partition = std::vector<std::vector<int>>;

/** n! as a 64-bit value; panics on overflow (n <= 20). */
std::uint64_t factorial(int n);

/** Binomial coefficient C(n, k) as a 64-bit value. */
std::uint64_t binomial(int n, int k);

/**
 * Number of unordered partitions of n distinct elements into groups of
 * exactly k (requires k | n): n! / ((k!)^(n/k) * (n/k)!).
 */
std::uint64_t equalPartitionCount(int n, int k);

/** Number of circular orders of n elements up to rotation+reflection. */
std::uint64_t circularOrderCount(int n);

/**
 * Enumerate all unordered partitions of {0..n-1} into groups of
 * exactly k, each group sorted ascending and groups sorted by their
 * first element (canonical form). Requires k | n and a total count
 * small enough to materialize.
 */
std::vector<Partition> enumerateEqualPartitions(int n, int k);

/**
 * Enumerate all circular orders of {0..n-1} up to rotation and
 * reflection, in canonical form: element 0 first and second element
 * smaller than the last (n >= 3).
 */
std::vector<std::vector<int>> enumerateCircularOrders(int n);

/**
 * Draw a uniformly random partition of {0..n-1} into groups of k, in
 * canonical form.
 */
Partition randomEqualPartition(int n, int k, Rng &rng);

/**
 * Draw a uniformly random circular order of {0..n-1} in canonical
 * form (element 0 first, second element < last element).
 */
std::vector<int> randomCircularOrder(int n, Rng &rng);

/** Canonicalize a partition: sort members, then sort groups. */
Partition canonicalPartition(Partition p);

/**
 * Canonicalize a circular sequence up to rotation and reflection:
 * rotate so the smallest element is first, then reflect if that makes
 * the second element smaller.
 */
std::vector<int> canonicalCircular(std::vector<int> order);

/** Greatest common divisor of two positive integers. */
int gcdInt(int a, int b);

/**
 * a * b with saturation at 2^64-1 (machine schedule spaces multiply a
 * partition count by per-core schedule counts; the product overflows
 * long before anything could enumerate it).
 */
std::uint64_t mulSaturating(std::uint64_t a, std::uint64_t b);

/**
 * Enumerate every digit tuple of a mixed-radix system, least
 * significant digit last ({0,0}, {0,1}, ..., like counting). Used to
 * form the cartesian product of per-core schedule choices. Requires
 * every radix positive and a total count small enough to materialize.
 */
std::vector<std::vector<std::uint64_t>>
enumerateMixedRadix(const std::vector<std::uint64_t> &radices);

/**
 * Relabel local indices {0..group.size()-1} through a sorted group of
 * global identifiers. Order-preserving, so canonical local objects
 * (partitions, circular orders) stay canonical after mapping.
 */
std::vector<int> mapThroughGroup(const std::vector<int> &local,
                                 const std::vector<int> &group);

} // namespace sos

#endif // SOS_COMMON_COMBINATORICS_HH
