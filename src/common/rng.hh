/**
 * @file
 * Deterministic random number generation for simulation.
 *
 * Every stochastic component of the simulator (synthetic address
 * streams, schedule sampling, arrival processes) draws from its own
 * seeded Rng instance so experiments are bit-reproducible and
 * independent components do not perturb each other's streams.
 *
 * The generator is xoshiro256** seeded through SplitMix64, a standard
 * high-quality small-state combination.
 */

#ifndef SOS_COMMON_RNG_HH
#define SOS_COMMON_RNG_HH

#include <cstdint>

#include "logging.hh"

namespace sos {

/** SplitMix64 step, used for seeding and cheap hashing. */
inline std::uint64_t
splitMix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a value, for deterministic hashing. */
inline std::uint64_t
mix64(std::uint64_t x)
{
    std::uint64_t s = x;
    return splitMix64(s);
}

/**
 * xoshiro256** pseudo-random generator.
 *
 * Copyable so that generator state can be checkpointed along with a
 * paused job and resumed exactly where it left off.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit output. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be positive. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        SOS_ASSERT(bound > 0);
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // is irrelevant for simulation workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        SOS_ASSERT(lo <= hi);
        return lo + static_cast<std::int64_t>(
                        below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /** Exponentially distributed value with the given mean. */
    double exponential(double mean);

    /** Geometric-ish positive integer with the given mean (>= 1). */
    std::uint64_t geometric(double mean);

    /** Fisher-Yates shuffle of a random-access container. */
    template <typename Container>
    void
    shuffle(Container &c)
    {
        for (std::size_t i = c.size(); i > 1; --i) {
            const std::size_t j = static_cast<std::size_t>(below(i));
            using std::swap;
            swap(c[i - 1], c[j]);
        }
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace sos

#endif // SOS_COMMON_RNG_HH
