/**
 * @file
 * Status and error reporting for the sossim libraries.
 *
 * Follows the gem5 discipline:
 *  - inform(): normal operating messages, no connotation of error.
 *  - warn():   something may not be modelled as well as it could be.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits with
 *              status 1.
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              aborts so a core dump / debugger can be used.
 */

#ifndef SOS_COMMON_LOGGING_HH
#define SOS_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace sos {

namespace detail {

/** Emit one formatted log record to stderr. */
void logMessage(const char *level, const std::string &msg);

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** Print an informational message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::logMessage("info", detail::concat(std::forward<Args>(args)...));
}

/** Print a warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::logMessage("warn", detail::concat(std::forward<Args>(args)...));
}

/**
 * Terminate because of a user-caused error (bad configuration or
 * arguments). Exits with status 1; does not dump core.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::logMessage("fatal", detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Terminate because an internal invariant was violated -- a bug in the
 * simulator itself. Aborts so the failure can be debugged.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::logMessage("panic", detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** panic() unless the given condition holds. */
#define SOS_ASSERT(cond, ...)                                               \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sos::panic("assertion failed: ", #cond, " at ", __FILE__,     \
                         ":", __LINE__, " ", ##__VA_ARGS__);                \
        }                                                                   \
    } while (0)

} // namespace sos

#endif // SOS_COMMON_LOGGING_HH
