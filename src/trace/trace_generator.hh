/**
 * @file
 * Deterministic, resumable synthetic instruction stream generator.
 *
 * One TraceGenerator produces the dynamic micro-op stream of one
 * software thread. The stream is a pure function of (profile, seed),
 * and the generator object is copyable, so a job that is descheduled
 * resumes exactly where it stopped -- a requirement of the paper's
 * experimental setup, where every job must receive the same number of
 * cycles and progress is accounted per timeslice.
 */

#ifndef SOS_TRACE_TRACE_GENERATOR_HH
#define SOS_TRACE_TRACE_GENERATOR_HH

#include <array>
#include <cstdint>

#include "common/rng.hh"
#include "trace/uop.hh"
#include "trace/workload_profile.hh"

namespace sos {

/** Emits the deterministic micro-op stream of one software thread. */
class TraceGenerator
{
  public:
    /**
     * Create a generator.
     *
     * @param profile Workload model; must outlive the generator.
     * @param code_seed Identity of the *program*: block lengths,
     *        branch targets and per-site branch biases derive from it.
     *        Threads of one parallel job share it -- they execute the
     *        same code (and so train the same predictor entries and
     *        icache lines).
     * @param data_seed Identity of the *execution*: instruction-mix
     *        draws and data addresses derive from it, so sibling
     *        threads work through different data. 0 means "same as
     *        code_seed" (the common sequential-job case).
     */
    TraceGenerator(const WorkloadProfile &profile,
                   std::uint64_t code_seed, std::uint64_t data_seed = 0);

    /** Produce the next micro-op of the stream. */
    UOp next();

    /** Number of micro-ops generated so far. */
    std::uint64_t count() const { return count_; }

    /** The workload model driving this stream. */
    const WorkloadProfile &profile() const { return *profile_; }

  private:
    /** Dedicated chase register creating serialized load chains. */
    static constexpr std::uint8_t chaseReg = 31;

    /** Number of code blocks the synthetic CFG jumps between. */
    static constexpr std::uint64_t blockBytes = 64;

    /** Entries in the precomputed geometric sampling tables. */
    static constexpr std::size_t geomTableSize = 512;

    std::uint8_t allocDst(bool fp);
    std::uint8_t pickSrc(bool fp);
    std::uint64_t dataAddress(bool &serialized);
    void advancePc(const UOp &op);
    void fillGeometricTable(
        std::array<std::uint16_t, geomTableSize> &table, double mean,
        double floor);
    std::uint64_t
    sampleTable(const std::array<std::uint16_t, geomTableSize> &table);
    std::uint64_t blockLen(std::uint64_t entry_pc) const;

    std::array<std::uint16_t, geomTableSize> bbTable_{};
    std::array<std::uint16_t, geomTableSize> depTable_{};

    const WorkloadProfile *profile_;
    Rng rng_;
    std::uint64_t seed_;

    std::uint64_t count_ = 0;
    std::uint64_t pc_;
    std::uint64_t bbRemaining_;
    std::uint64_t branchCount_ = 0;

    /**
     * Calls remaining until the next barrier (0 when the profile has
     * no syncInterval). A countdown instead of `count_ % syncInterval`
     * keeps a 64-bit division off the per-op path.
     */
    std::uint64_t toSync_ = 0;

    /** Cached max(workingSetBytes, 64): hoisted off the per-op path. */
    std::uint64_t wsBytes_ = 64;

    /** Ring of recently produced register ids, per class. */
    std::array<std::uint8_t, 32> intRing_{};
    std::array<std::uint8_t, 32> fpRing_{};
    std::uint32_t intProduced_ = 0;
    std::uint32_t fpProduced_ = 0;

    /** Round-robin destination allocation cursors. */
    std::uint32_t intDstCursor_ = 0;
    std::uint32_t fpDstCursor_ = 0;

    /** Sequential stream pointers into the working set. */
    std::array<std::uint64_t, 4> streamPos_{};
    std::uint32_t streamCursor_ = 0;
};

} // namespace sos

#endif // SOS_TRACE_TRACE_GENERATOR_HH
