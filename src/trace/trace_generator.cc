#include "trace_generator.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace sos {

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               std::uint64_t code_seed,
                               std::uint64_t data_seed)
    : profile_(&profile),
      rng_((data_seed == 0 ? code_seed : data_seed) ^
           0xabcddcba12344321ULL),
      seed_(code_seed)
{
    SOS_ASSERT(profile.avgBasicBlock >= 2.0,
               "basic blocks must hold at least a branch and one op");
    SOS_ASSERT(profile.syncInterval == 0 || profile.syncInterval >= 2,
               "sync interval of 1 would emit only barriers");
    fillGeometricTable(bbTable_, profile.avgBasicBlock, 2.0);
    fillGeometricTable(depTable_, profile.avgDepDistance, 1.0);
    pc_ = 0x1000;
    bbRemaining_ = blockLen(pc_);
    // First barrier fires on the call where count_ reaches the
    // interval, i.e. syncInterval + 1 calls from now.
    toSync_ = profile.syncInterval > 0 ? profile.syncInterval + 1 : 0;
    wsBytes_ = std::max<std::uint64_t>(profile.workingSetBytes, 64);
    for (std::size_t s = 0; s < streamPos_.size(); ++s)
        streamPos_[s] = wsBytes_ / streamPos_.size() * s;
}

void
TraceGenerator::fillGeometricTable(
    std::array<std::uint16_t, geomTableSize> &table, double mean,
    double floor)
{
    // Precomputed inverse-CDF samples of a shifted geometric
    // distribution; sampling then costs one RNG draw and one load
    // instead of a logarithm (this sits on the simulator's innermost
    // path, several calls per micro-op).
    for (std::size_t i = 0; i < table.size(); ++i) {
        const double u =
            (static_cast<double>(i) + 0.5) / static_cast<double>(
                                                 table.size());
        const double value = std::max(floor, -mean * std::log(1.0 - u));
        table[i] = static_cast<std::uint16_t>(std::min(
            value, 60000.0));
    }
}

std::uint64_t
TraceGenerator::sampleTable(
    const std::array<std::uint16_t, geomTableSize> &table)
{
    return table[rng_.next() & (geomTableSize - 1)];
}

std::uint64_t
TraceGenerator::blockLen(std::uint64_t entry_pc) const
{
    // Deterministic per entry point: the synthetic CFG is a fixed
    // graph, so branch *sites* are stable addresses a real predictor
    // can train on, and their count scales with the code footprint.
    return bbTable_[mix64(entry_pc ^ seed_) & (geomTableSize - 1)];
}

std::uint8_t
TraceGenerator::allocDst(bool fp)
{
    if (fp) {
        // FP destinations rotate through f0..f23 (arch ids 32..55).
        const std::uint8_t reg = static_cast<std::uint8_t>(
            NumIntArchRegs + (fpDstCursor_++ % 24));
        fpRing_[fpProduced_++ % fpRing_.size()] = reg;
        return reg;
    }
    // Integer destinations rotate through r0..r23; r31 is reserved for
    // pointer-chase chains.
    const std::uint8_t reg = static_cast<std::uint8_t>(intDstCursor_++ % 24);
    intRing_[intProduced_++ % intRing_.size()] = reg;
    return reg;
}

std::uint8_t
TraceGenerator::pickSrc(bool fp)
{
    const auto &ring = fp ? fpRing_ : intRing_;
    const std::uint32_t produced = fp ? fpProduced_ : intProduced_;
    if (produced == 0)
        return NoReg;
    // Distance to the producer: geometric around the profile mean,
    // clamped to the producers actually in the ring. Small distances
    // serialize the stream; large distances expose ILP.
    std::uint64_t dist = sampleTable(depTable_);
    const std::uint64_t max_dist =
        std::min<std::uint64_t>(produced, ring.size());
    dist = std::min<std::uint64_t>(dist, max_dist);
    const std::uint32_t index =
        (produced - static_cast<std::uint32_t>(dist)) %
        static_cast<std::uint32_t>(ring.size());
    return ring[index];
}

std::uint64_t
TraceGenerator::dataAddress(bool &serialized)
{
    serialized = false;
    const WorkloadProfile &p = *profile_;
    const std::uint64_t ws = wsBytes_;
    const double u = rng_.uniform();
    std::uint64_t addr;
    if (u < p.streamFraction) {
        // Unit-stride walk; four interleaved streams model the several
        // concurrent array traversals of a loop nest. The pointers
        // stay below ws, so the wrap is a conditional subtract rather
        // than a modulo.
        const std::size_t s = streamCursor_++ % streamPos_.size();
        std::uint64_t pos = streamPos_[s] + 8;
        if (pos >= ws)
            pos -= ws;
        streamPos_[s] = pos;
        addr = pos;
    } else if (u < p.streamFraction + p.hotFraction) {
        const std::uint64_t hot = std::max<std::uint64_t>(p.hotBytes, 64);
        addr = ws + rng_.below(hot); // hot region sits above the arrays
    } else {
        addr = rng_.below(ws);
        serialized = rng_.chance(p.chaseFraction);
    }
    return addr & ~std::uint64_t{7};
}

void
TraceGenerator::advancePc(const UOp &op)
{
    if (op.cls == OpClass::Branch && op.taken) {
        // Deterministic target per branch PC: the synthetic CFG is a
        // fixed graph, so the BTB and icache see stable code.
        const std::uint64_t code =
            std::max<std::uint64_t>(profile_->codeBytes, blockBytes);
        const std::uint64_t num_blocks = code / blockBytes;
        const std::uint64_t target_block =
            mix64(op.pc ^ seed_ ^ 0x5ca1ab1eULL) % num_blocks;
        pc_ = 0x1000 + target_block * blockBytes;
    } else {
        pc_ += 4;
        const std::uint64_t code =
            std::max<std::uint64_t>(profile_->codeBytes, blockBytes);
        if (pc_ >= 0x1000 + code)
            pc_ = 0x1000;
    }
}

UOp
TraceGenerator::next()
{
    const WorkloadProfile &p = *profile_;
    UOp op;
    op.pc = pc_;

    // Barriers fire on a fixed instruction period so sibling threads
    // of a parallel job reach them in lockstep amounts of work.
    if (toSync_ != 0 && --toSync_ == 0) {
        toSync_ = p.syncInterval;
        op.cls = OpClass::Barrier;
        ++count_;
        advancePc(op);
        return op;
    }

    if (bbRemaining_ == 0) {
        // Terminate the basic block with a conditional branch.
        op.cls = OpClass::Branch;
        op.srcA = pickSrc(false);
        ++branchCount_;
        if (rng_.chance(p.branchPredictability)) {
            // Predictable instances follow a fixed per-PC bias (the
            // strongly-biased loop and guard branches of real code,
            // which saturating counters learn perfectly); the biases
            // themselves are distributed to honour branchTakenRate.
            const std::uint64_t bias_hash =
                mix64(op.pc ^ seed_ ^ 0xb1a5b1a5ULL);
            op.taken = static_cast<double>(bias_hash & 0xffff) <
                       65536.0 * p.branchTakenRate;
        } else {
            op.taken = rng_.chance(p.branchTakenRate);
        }
        ++count_;
        advancePc(op);
        bbRemaining_ = blockLen(pc_);
        return op;
    }
    --bbRemaining_;

    const double u = rng_.uniform();
    double acc = p.fracFpAdd;
    if (u < acc) {
        op.cls = OpClass::FpAdd;
    } else if (u < (acc += p.fracFpMult)) {
        op.cls = OpClass::FpMult;
    } else if (u < (acc += p.fracFpDiv)) {
        op.cls = OpClass::FpDiv;
    } else if (u < (acc += p.fracIntMult)) {
        op.cls = OpClass::IntMult;
    } else if (u < (acc += p.fracLoad)) {
        op.cls = OpClass::Load;
    } else if (u < (acc += p.fracStore)) {
        op.cls = OpClass::Store;
    } else {
        op.cls = OpClass::IntAlu;
    }

    switch (op.cls) {
      case OpClass::FpAdd:
      case OpClass::FpMult:
      case OpClass::FpDiv:
        op.srcA = pickSrc(true);
        op.srcB = pickSrc(true);
        op.dst = allocDst(true);
        break;
      case OpClass::IntAlu:
      case OpClass::IntMult:
        op.srcA = pickSrc(false);
        op.srcB = pickSrc(false);
        op.dst = allocDst(false);
        break;
      case OpClass::Load: {
        bool serialized = false;
        op.addr = dataAddress(serialized);
        if (serialized) {
            // Pointer chase: the address depends on the previous chase
            // load, and the result feeds the next one.
            op.srcA = chaseReg;
            op.dst = chaseReg;
        } else {
            op.srcA = pickSrc(false); // address register
            const bool fp_dest =
                rng_.chance(std::min(1.0, p.fpFraction() * 1.5));
            op.dst = allocDst(fp_dest);
        }
        break;
      }
      case OpClass::Store: {
        bool serialized = false;
        op.addr = dataAddress(serialized);
        op.srcA = pickSrc(false); // address register
        op.srcB = pickSrc(p.fpFraction() > 0.0 && rng_.chance(0.5));
        break;
      }
      default:
        panic("unreachable op class");
    }

    ++count_;
    advancePc(op);
    return op;
}

} // namespace sos
