/**
 * @file
 * Micro-operation model consumed by the SMT core.
 *
 * The simulator is trace-driven: a TraceGenerator emits a deterministic
 * stream of UOps per thread, and the core models their flow through the
 * pipeline and memory hierarchy. A UOp carries exactly the information
 * contention modelling needs: operation class (which functional unit
 * and issue queue it wants), register dependences, a fetch PC (icache
 * and branch predictor), an effective address for memory operations,
 * and the architectural branch outcome.
 */

#ifndef SOS_TRACE_UOP_HH
#define SOS_TRACE_UOP_HH

#include <cstdint>

namespace sos {

/** Functional classes of micro-operations. */
enum class OpClass : std::uint8_t
{
    IntAlu,   ///< single-cycle integer op
    IntMult,  ///< pipelined integer multiply
    FpAdd,    ///< pipelined FP add/compare
    FpMult,   ///< pipelined FP multiply
    FpDiv,    ///< non-pipelined FP divide
    Load,     ///< memory read through L1D
    Store,    ///< memory write through L1D
    Branch,   ///< conditional branch (resolved in an integer unit)
    Barrier,  ///< synchronization point of a parallel job
};

/** Sentinel register id meaning "no register". */
constexpr std::uint8_t NoReg = 0xff;

/** Number of architectural integer registers per thread. */
constexpr int NumIntArchRegs = 32;

/** Number of architectural FP registers per thread. */
constexpr int NumFpArchRegs = 32;

/**
 * Total architectural register namespace per thread: integer registers
 * occupy ids [0, 32), FP registers [32, 64).
 */
constexpr int NumArchRegs = NumIntArchRegs + NumFpArchRegs;

/** True if the register id names an FP architectural register. */
inline bool
isFpReg(std::uint8_t reg)
{
    return reg != NoReg && reg >= NumIntArchRegs;
}

/** One micro-operation of a synthetic instruction stream. */
struct UOp
{
    /** Virtual address of the instruction, for icache and prediction. */
    std::uint64_t pc = 0;

    /** Effective data address (Load/Store only). */
    std::uint64_t addr = 0;

    /** Operation class. */
    OpClass cls = OpClass::IntAlu;

    /** First source architectural register, or NoReg. */
    std::uint8_t srcA = NoReg;

    /** Second source architectural register, or NoReg. */
    std::uint8_t srcB = NoReg;

    /** Destination architectural register, or NoReg. */
    std::uint8_t dst = NoReg;

    /** Architectural outcome for Branch uops. */
    bool taken = false;

    /** True for FP-pipeline operations (FP queue, FP units). */
    bool
    isFp() const
    {
        return cls == OpClass::FpAdd || cls == OpClass::FpMult ||
               cls == OpClass::FpDiv;
    }

    /** True for memory operations. */
    bool
    isMem() const
    {
        return cls == OpClass::Load || cls == OpClass::Store;
    }
};

} // namespace sos

#endif // SOS_TRACE_UOP_HH
