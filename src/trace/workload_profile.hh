/**
 * @file
 * Parameterized description of a synthetic benchmark.
 *
 * The paper evaluates SOS on SPEC95 INT/FP and NAS Parallel Benchmark
 * programs run under SMTSIM. Those binaries (and an Alpha toolchain)
 * are unavailable, so each benchmark is replaced by a WorkloadProfile:
 * a statistical model whose instruction mix, dependence structure,
 * control behaviour, and memory footprint are tuned to the published
 * characteristics of the original program. The scheduler never sees
 * the profile -- only the performance-counter signature the profile
 * produces on the simulated core -- so the reproduction exercises the
 * same code paths as the paper's system.
 */

#ifndef SOS_TRACE_WORKLOAD_PROFILE_HH
#define SOS_TRACE_WORKLOAD_PROFILE_HH

#include <cstdint>
#include <string>

namespace sos {

/** Statistical model of one benchmark's dynamic instruction stream. */
struct WorkloadProfile
{
    /** Benchmark name as used in the paper's Table 1 (e.g. "FP"). */
    std::string name;

    /**
     * @name Instruction mix
     * Fractions of the dynamic stream; IntAlu receives the remainder
     * after all listed classes. Branch frequency is implied by
     * avgBasicBlock (one branch terminates each block).
     * @{
     */
    double fracFpAdd = 0.0;
    double fracFpMult = 0.0;
    double fracFpDiv = 0.0;
    double fracIntMult = 0.0;
    double fracLoad = 0.25;
    double fracStore = 0.10;
    /** @} */

    /**
     * @name Control flow
     * @{
     */
    /** Mean instructions per basic block (block ends with a branch). */
    double avgBasicBlock = 12.0;
    /** Fraction of branches taken. */
    double branchTakenRate = 0.6;
    /**
     * Fraction of branch instances whose outcome follows a short
     * periodic (loop-like) pattern that a gshare predictor can learn;
     * the rest are independent coin flips at branchTakenRate.
     */
    double branchPredictability = 0.9;
    /** Static code footprint in bytes (drives icache behaviour). */
    std::uint64_t codeBytes = 16 * 1024;
    /** @} */

    /**
     * @name Dependences / ILP
     * @{
     */
    /**
     * Mean register-dependence distance in instructions; larger means
     * more independent work in flight (higher ILP).
     */
    double avgDepDistance = 4.0;
    /** @} */

    /**
     * @name Memory behaviour
     * @{
     */
    /** Total data footprint in bytes. */
    std::uint64_t workingSetBytes = 64 * 1024;
    /** Fraction of accesses that stream sequentially (unit stride). */
    double streamFraction = 0.5;
    /** Fraction hitting a small hot region (stack / scalars). */
    double hotFraction = 0.3;
    /** Size of the hot region in bytes. */
    std::uint64_t hotBytes = 2 * 1024;
    /**
     * Among non-stream non-hot accesses, fraction that are
     * pointer-chasing loads serialized on the previous chase load.
     */
    double chaseFraction = 0.0;
    /** @} */

    /**
     * @name Parallelism
     * @{
     */
    /**
     * Instructions between barrier synchronizations for threads of a
     * parallel job; 0 means the workload never synchronizes.
     */
    std::uint64_t syncInterval = 0;
    /** @} */

    /** Fraction of the dynamic stream that is FP arithmetic. */
    double
    fpFraction() const
    {
        return fracFpAdd + fracFpMult + fracFpDiv;
    }
};

} // namespace sos

#endif // SOS_TRACE_WORKLOAD_PROFILE_HH
