#include "workload_library.hh"

#include "common/logging.hh"

namespace sos {

const WorkloadLibrary &
WorkloadLibrary::instance()
{
    static const WorkloadLibrary library;
    return library;
}

const WorkloadProfile &
WorkloadLibrary::get(const std::string &name) const
{
    const auto it = profiles_.find(name);
    if (it == profiles_.end())
        fatal("unknown workload '", name, "'");
    return it->second;
}

bool
WorkloadLibrary::has(const std::string &name) const
{
    return profiles_.count(name) != 0;
}

std::vector<std::string>
WorkloadLibrary::names() const
{
    std::vector<std::string> out;
    out.reserve(profiles_.size());
    for (const auto &[name, profile] : profiles_)
        out.push_back(name);
    return out;
}

void
WorkloadLibrary::add(WorkloadProfile profile)
{
    SOS_ASSERT(profiles_.count(profile.name) == 0, "duplicate workload");
    profiles_.emplace(profile.name, std::move(profile));
}

WorkloadLibrary::WorkloadLibrary()
{
    const std::uint64_t KiB = 1024;

    // FP is fpppp (SPEC95): famously huge basic blocks, FP-dense, high
    // ILP, small data footprint. The archetypal high-IPC FP job.
    {
        WorkloadProfile p;
        p.name = "FP";
        p.fracFpAdd = 0.30;
        p.fracFpMult = 0.24;
        p.fracFpDiv = 0.010;
        p.fracIntMult = 0.0;
        p.fracLoad = 0.24;
        p.fracStore = 0.08;
        p.avgBasicBlock = 40.0;
        p.branchTakenRate = 0.70;
        p.branchPredictability = 0.97;
        p.codeBytes = 48 * KiB;
        p.avgDepDistance = 6.5;
        p.workingSetBytes = 24 * KiB;
        p.streamFraction = 0.30;
        p.hotFraction = 0.50;
        p.hotBytes = 4 * KiB;
        add(p);
    }

    // MG is mgrid (SPEC95): multigrid solver, long unit-stride sweeps
    // over a large grid, very regular control.
    {
        WorkloadProfile p;
        p.name = "MG";
        p.fracFpAdd = 0.26;
        p.fracFpMult = 0.16;
        p.fracLoad = 0.33;
        p.fracStore = 0.09;
        p.avgBasicBlock = 28.0;
        p.branchTakenRate = 0.80;
        p.branchPredictability = 0.97;
        p.codeBytes = 8 * KiB;
        p.avgDepDistance = 5.5;
        p.workingSetBytes = 128 * KiB;
        p.streamFraction = 0.88;
        p.hotFraction = 0.06;
        p.hotBytes = 2 * KiB;
        add(p);
    }

    // WAVE is wave5 (SPEC95): particle-in-cell plasma code; FP with a
    // mix of regular and scattered access.
    {
        WorkloadProfile p;
        p.name = "WAVE";
        p.fracFpAdd = 0.22;
        p.fracFpMult = 0.14;
        p.fracFpDiv = 0.008;
        p.fracLoad = 0.30;
        p.fracStore = 0.10;
        p.avgBasicBlock = 18.0;
        p.branchTakenRate = 0.70;
        p.branchPredictability = 0.95;
        p.codeBytes = 24 * KiB;
        p.avgDepDistance = 4.5;
        p.workingSetBytes = 96 * KiB;
        p.streamFraction = 0.70;
        p.hotFraction = 0.15;
        p.hotBytes = 4 * KiB;
        add(p);
    }

    // SWIM (SPEC95): shallow-water model; bandwidth-bound streaming
    // over big arrays, modest ILP.
    {
        WorkloadProfile p;
        p.name = "SWIM";
        p.fracFpAdd = 0.20;
        p.fracFpMult = 0.14;
        p.fracLoad = 0.36;
        p.fracStore = 0.14;
        p.avgBasicBlock = 30.0;
        p.branchTakenRate = 0.85;
        p.branchPredictability = 0.98;
        p.codeBytes = 6 * KiB;
        p.avgDepDistance = 4.0;
        p.workingSetBytes = 160 * KiB;
        p.streamFraction = 0.92;
        p.hotFraction = 0.04;
        p.hotBytes = 2 * KiB;
        add(p);
    }

    // SU2COR (SPEC95): quantum physics Monte Carlo; FP with moderate
    // irregularity and occasional divides.
    {
        WorkloadProfile p;
        p.name = "SU2COR";
        p.fracFpAdd = 0.18;
        p.fracFpMult = 0.12;
        p.fracFpDiv = 0.010;
        p.fracLoad = 0.32;
        p.fracStore = 0.10;
        p.avgBasicBlock = 16.0;
        p.branchTakenRate = 0.65;
        p.branchPredictability = 0.94;
        p.codeBytes = 24 * KiB;
        p.avgDepDistance = 4.0;
        p.workingSetBytes = 128 * KiB;
        p.streamFraction = 0.60;
        p.hotFraction = 0.20;
        p.hotBytes = 4 * KiB;
        add(p);
    }

    // TURB3D (SPEC95): turbulence simulation; FFT-like strided FP.
    {
        WorkloadProfile p;
        p.name = "TURB3D";
        p.fracFpAdd = 0.19;
        p.fracFpMult = 0.13;
        p.fracFpDiv = 0.012;
        p.fracLoad = 0.30;
        p.fracStore = 0.11;
        p.avgBasicBlock = 16.0;
        p.branchTakenRate = 0.70;
        p.branchPredictability = 0.94;
        p.codeBytes = 28 * KiB;
        p.avgDepDistance = 4.5;
        p.workingSetBytes = 112 * KiB;
        p.streamFraction = 0.60;
        p.hotFraction = 0.20;
        p.hotBytes = 4 * KiB;
        add(p);
    }

    // GCC (SPEC95 INT): compiler; branchy, pointer-heavy, large code
    // footprint, low IPC. The archetypal workstation integer job.
    {
        WorkloadProfile p;
        p.name = "GCC";
        p.fracIntMult = 0.010;
        p.fracLoad = 0.26;
        p.fracStore = 0.12;
        p.avgBasicBlock = 6.0;
        p.branchTakenRate = 0.60;
        p.branchPredictability = 0.88;
        p.codeBytes = 192 * KiB;
        p.avgDepDistance = 3.0;
        p.workingSetBytes = 64 * KiB;
        p.streamFraction = 0.20;
        p.hotFraction = 0.35;
        p.hotBytes = 4 * KiB;
        p.chaseFraction = 0.10;
        add(p);
    }

    // GO (SPEC95 INT): game tree search; the least predictable
    // branches in the suite, small data, low IPC.
    {
        WorkloadProfile p;
        p.name = "GO";
        p.fracIntMult = 0.005;
        p.fracLoad = 0.22;
        p.fracStore = 0.08;
        p.avgBasicBlock = 5.0;
        p.branchTakenRate = 0.55;
        p.branchPredictability = 0.82;
        p.codeBytes = 96 * KiB;
        p.avgDepDistance = 3.0;
        p.workingSetBytes = 32 * KiB;
        p.streamFraction = 0.15;
        p.hotFraction = 0.40;
        p.hotBytes = 4 * KiB;
        p.chaseFraction = 0.05;
        add(p);
    }

    // IS (NPB): integer bucket sort; integer, memory bound, highly
    // irregular access over a large key array -- a cache sweeper.
    {
        WorkloadProfile p;
        p.name = "IS";
        p.fracFpAdd = 0.02;
        p.fracIntMult = 0.01;
        p.fracLoad = 0.34;
        p.fracStore = 0.16;
        p.avgBasicBlock = 20.0;
        p.branchTakenRate = 0.80;
        p.branchPredictability = 0.97;
        p.codeBytes = 4 * KiB;
        p.avgDepDistance = 3.5;
        p.workingSetBytes = 176 * KiB;
        p.streamFraction = 0.25;
        p.hotFraction = 0.10;
        p.hotBytes = 2 * KiB;
        add(p);
    }

    // CG (NPB): conjugate gradient on a sparse matrix; latency bound
    // with serialized indirections (gather through an index vector).
    {
        WorkloadProfile p;
        p.name = "CG";
        p.fracFpAdd = 0.16;
        p.fracFpMult = 0.08;
        p.fracLoad = 0.40;
        p.fracStore = 0.06;
        p.avgBasicBlock = 14.0;
        p.branchTakenRate = 0.80;
        p.branchPredictability = 0.96;
        p.codeBytes = 6 * KiB;
        p.avgDepDistance = 3.0;
        p.workingSetBytes = 144 * KiB;
        p.streamFraction = 0.30;
        p.hotFraction = 0.10;
        p.hotBytes = 2 * KiB;
        p.chaseFraction = 0.35;
        add(p);
    }

    // EP (NPB): embarrassingly parallel random-number kernel; compute
    // bound, tiny footprint, high ILP -- the perfect SMT partner.
    {
        WorkloadProfile p;
        p.name = "EP";
        p.fracFpAdd = 0.25;
        p.fracFpMult = 0.20;
        p.fracFpDiv = 0.020;
        p.fracLoad = 0.12;
        p.fracStore = 0.04;
        p.avgBasicBlock = 22.0;
        p.branchTakenRate = 0.75;
        p.branchPredictability = 0.97;
        p.codeBytes = 4 * KiB;
        p.avgDepDistance = 7.0;
        p.workingSetBytes = 12 * KiB;
        p.streamFraction = 0.50;
        p.hotFraction = 0.40;
        p.hotBytes = 2 * KiB;
        add(p);
    }

    // FT (NPB): 3-D FFT; FP streaming with a large footprint.
    {
        WorkloadProfile p;
        p.name = "FT";
        p.fracFpAdd = 0.24;
        p.fracFpMult = 0.18;
        p.fracLoad = 0.32;
        p.fracStore = 0.12;
        p.avgBasicBlock = 24.0;
        p.branchTakenRate = 0.80;
        p.branchPredictability = 0.96;
        p.codeBytes = 10 * KiB;
        p.avgDepDistance = 5.0;
        p.workingSetBytes = 176 * KiB;
        p.streamFraction = 0.75;
        p.hotFraction = 0.10;
        p.hotBytes = 2 * KiB;
        add(p);
    }

    // ARRAY: the paper's hand-written parallel prefix program; its
    // threads synchronize tightly, so descheduling one sibling stalls
    // the other at the next barrier.
    {
        WorkloadProfile p;
        p.name = "ARRAY";
        p.fracFpAdd = 0.14;
        p.fracFpMult = 0.06;
        p.fracLoad = 0.30;
        p.fracStore = 0.14;
        p.avgBasicBlock = 20.0;
        p.branchTakenRate = 0.80;
        p.branchPredictability = 0.97;
        p.codeBytes = 4 * KiB;
        p.avgDepDistance = 5.0;
        p.workingSetBytes = 64 * KiB;
        p.streamFraction = 0.80;
        p.hotFraction = 0.10;
        p.hotBytes = 2 * KiB;
        p.syncInterval = 1500;
        add(p);
    }

    // ARRAY2: the J2pb variant of ARRAY "that does little
    // synchronization"; its threads barely interact, so splitting them
    // across timeslices is free (and often profitable).
    {
        WorkloadProfile p = get("ARRAY");
        p.name = "ARRAY2";
        p.syncInterval = 400000;
        add(p);
    }

    // Adaptive multithreaded variants for hierarchical symbiosis
    // (Section 7): the job runs with as many threads as the scheduler
    // allocates contexts.
    {
        WorkloadProfile p = get("ARRAY");
        p.name = "mt_ARRAY";
        add(p);
    }
    {
        WorkloadProfile p = get("EP");
        p.name = "mt_EP";
        p.syncInterval = 200000; // rare coordination only
        add(p);
    }
}

} // namespace sos
