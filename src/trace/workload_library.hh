/**
 * @file
 * Registry of the benchmark models used by the paper's jobmixes.
 *
 * Names follow the paper's Table 1: FP (fpppp), MG (mgrid), WAVE
 * (wave5), SWIM, SU2COR, TURB3D, GCC, GO, IS, CG, EP, FT, ARRAY, plus
 * the low-synchronization ARRAY2 used by jobmix J2pb(10,2,2) and the
 * adaptive multithreaded variants mt_ARRAY / mt_EP of Section 7.
 */

#ifndef SOS_TRACE_WORKLOAD_LIBRARY_HH
#define SOS_TRACE_WORKLOAD_LIBRARY_HH

#include <map>
#include <string>
#include <vector>

#include "trace/workload_profile.hh"

namespace sos {

/** Immutable library of named workload profiles. */
class WorkloadLibrary
{
  public:
    /** The process-wide library instance. */
    static const WorkloadLibrary &instance();

    /** Look up a profile by name; fatal() on an unknown name. */
    const WorkloadProfile &get(const std::string &name) const;

    /** True if the library defines the given name. */
    bool has(const std::string &name) const;

    /** All registered names, sorted. */
    std::vector<std::string> names() const;

  private:
    WorkloadLibrary();

    void add(WorkloadProfile profile);

    std::map<std::string, WorkloadProfile> profiles_;
};

} // namespace sos

#endif // SOS_TRACE_WORKLOAD_LIBRARY_HH
