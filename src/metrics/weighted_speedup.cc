#include "weighted_speedup.hh"

#include "common/logging.hh"
#include "sched/jobmix.hh"

namespace sos {

double
weightedSpeedup(const std::vector<JobProgress> &jobs, std::uint64_t cycles)
{
    SOS_ASSERT(cycles > 0, "weighted speedup needs a non-empty interval");
    double ws = 0.0;
    for (const JobProgress &job : jobs) {
        SOS_ASSERT(job.soloIpc > 0.0,
                   "job must be calibrated before computing WS");
        const double realized =
            static_cast<double>(job.retired) / static_cast<double>(cycles);
        ws += realized / job.soloIpc;
    }
    return ws;
}

double
weightedSpeedup(const JobMix &mix,
                const std::vector<std::uint64_t> &job_retired,
                std::uint64_t cycles)
{
    SOS_ASSERT(static_cast<int>(job_retired.size()) == mix.numJobs(),
               "retired counts must cover every job");
    std::vector<JobProgress> jobs;
    jobs.reserve(job_retired.size());
    for (int j = 0; j < mix.numJobs(); ++j) {
        // A parallel job's threads are separate entries in the paper's
        // jobmix, but summing per-thread terms normalized by the
        // per-thread share of the job's solo rate is algebraically the
        // same as one whole-job term, so jobs are accounted whole.
        jobs.push_back(JobProgress{
            job_retired[static_cast<std::size_t>(j)],
            mix.job(j).soloIpc});
    }
    return weightedSpeedup(jobs, cycles);
}

} // namespace sos
