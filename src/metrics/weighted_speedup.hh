/**
 * @file
 * Weighted speedup, the paper's progress metric (Section 4).
 *
 *   WS(t) = sum_i realizedIPC_i / singleThreadedIPC_i
 *
 * over all jobs i of the mix, where realizedIPC_i is the job's retired
 * instructions divided by the *total* interval cycles (not just the
 * cycles the job was resident). WS of any fair or unfair time-shared
 * single-threaded system is 1; values above 1 measure genuine
 * multithreading speedup, and pathological interference can push WS
 * below 1.
 */

#ifndef SOS_METRICS_WEIGHTED_SPEEDUP_HH
#define SOS_METRICS_WEIGHTED_SPEEDUP_HH

#include <cstdint>
#include <vector>

namespace sos {

class JobMix;

/** Per-job inputs to the weighted-speedup sum. */
struct JobProgress
{
    /** Instructions the job retired in the interval (all threads). */
    std::uint64_t retired = 0;
    /** The job's reference IPC running alone (its "natural offer rate"). */
    double soloIpc = 1.0;
};

/**
 * Weighted speedup of an interval.
 *
 * @param jobs Progress of every job in the mix.
 * @param cycles Length of the interval in cycles.
 */
double weightedSpeedup(const std::vector<JobProgress> &jobs,
                       std::uint64_t cycles);

/**
 * Convenience overload: compute WS from per-job retired counts and a
 * calibrated JobMix (every job's soloIpc must be set).
 */
double weightedSpeedup(const JobMix &mix,
                       const std::vector<std::uint64_t> &job_retired,
                       std::uint64_t cycles);

} // namespace sos

#endif // SOS_METRICS_WEIGHTED_SPEEDUP_HH
