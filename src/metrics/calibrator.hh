/**
 * @file
 * Single-job reference IPC calibration.
 *
 * Weighted speedup divides each job's realized IPC by its "natural
 * offer rate" -- the IPC it achieves running alone on the machine.
 * The paper extends the definition to multithreaded jobs by using the
 * issue rate of the job running alone with no other jobs coscheduled
 * (Section 7), so a parallel job's reference depends on its thread
 * count. The Calibrator measures these references on a private core
 * with the same configuration as the experiment's core, and memoizes
 * them per (workload, thread count).
 *
 * Measurements are also shared process-wide through a thread-safe
 * table keyed by the full (core, memory, intervals, workload,
 * threads) configuration: a solo run is a pure function of that key
 * (private job, fixed internal seed, private machine), so Calibrator
 * instances built by different experiments -- or on different sweep
 * worker threads -- reuse each other's references instead of
 * re-simulating them.
 */

#ifndef SOS_METRICS_CALIBRATOR_HH
#define SOS_METRICS_CALIBRATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "cpu/core_params.hh"
#include "cpu/sample_windows.hh"
#include "mem/cache_hierarchy.hh"

namespace sos {

class Job;
class JobMix;

/** Measures and caches solo IPC references. */
class Calibrator
{
  public:
    /**
     * @param core Core configuration the experiment uses.
     * @param mem Memory configuration the experiment uses.
     * @param warmup_cycles Cycles run before measuring (cache warmup).
     * @param measure_cycles Measurement interval length.
     */
    Calibrator(const CoreParams &core, const MemParams &mem,
               std::uint64_t warmup_cycles = 300000,
               std::uint64_t measure_cycles = 500000);

    /**
     * Measure references at sampled fidelity (default: full detail).
     * A sweep that runs its co-schedules sampled scores them against
     * references measured the same way, so fidelity error largely
     * cancels in the weighted-speedup ratio. Sampled and full-detail
     * references are cached under distinct keys and never mix.
     */
    void setSampling(const SampleWindows &sample) { sample_ = sample; }

    /**
     * Reference IPC of a workload running alone with the given number
     * of threads (1 for sequential jobs).
     */
    double soloIpc(const std::string &workload, int threads = 1);

    /** Set job.soloIpc from its workload and current thread count. */
    void calibrate(Job &job);

    /** Calibrate every job of a mix. */
    void calibrate(JobMix &mix);

  private:
    CoreParams coreParams_;
    MemParams memParams_;
    std::uint64_t warmupCycles_;
    std::uint64_t measureCycles_;
    SampleWindows sample_;
    std::map<std::pair<std::string, int>, double> cache_;
};

} // namespace sos

#endif // SOS_METRICS_CALIBRATOR_HH
