#include "calibrator.hh"

#include <algorithm>

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "sched/job.hh"
#include "sched/jobmix.hh"
#include "trace/workload_library.hh"

namespace sos {

Calibrator::Calibrator(const CoreParams &core, const MemParams &mem,
                       std::uint64_t warmup_cycles,
                       std::uint64_t measure_cycles)
    : coreParams_(core), memParams_(mem), warmupCycles_(warmup_cycles),
      measureCycles_(measure_cycles)
{
    SOS_ASSERT(measure_cycles > 0);
}

double
Calibrator::soloIpc(const std::string &workload, int threads)
{
    SOS_ASSERT(threads >= 1 && threads <= coreParams_.numContexts,
               "solo run cannot use more threads than contexts");
    const auto key = std::make_pair(workload, threads);
    const auto cached = cache_.find(key);
    if (cached != cache_.end())
        return cached->second;

    // A private job on a private core: the reference must not perturb
    // or observe the experiment's machine state.
    const WorkloadProfile &profile =
        WorkloadLibrary::instance().get(workload);
    Job job(1, profile, 0xca11b7a7eULL, threads,
            /*adaptive=*/false);
    Machine machine(coreParams_, memParams_);
    SmtCore &core = machine.core(0);
    for (int t = 0; t < threads; ++t) {
        ThreadBinding binding;
        binding.gen = &job.generator(t);
        binding.sync = job.syncDomain();
        binding.syncIndex = t;
        binding.asid = job.asid();
        core.attachThread(t, binding);
    }

    PerfCounters warmup;
    core.run(warmupCycles_, warmup);
    PerfCounters measured;
    core.run(measureCycles_, measured);

    const double ipc = measured.ipc();
    SOS_ASSERT(ipc > 0.0, "calibration produced zero IPC for ", workload);
    cache_.emplace(key, ipc);
    return ipc;
}

void
Calibrator::calibrate(Job &job)
{
    job.soloIpc = soloIpc(job.name(), job.numThreads());
}

void
Calibrator::calibrate(JobMix &mix)
{
    for (int j = 0; j < mix.numJobs(); ++j)
        calibrate(mix.job(j));
}

} // namespace sos
