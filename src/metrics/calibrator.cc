#include "calibrator.hh"

#include <algorithm>
#include <mutex>
#include <type_traits>

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "cpu/sampling.hh"
#include "sched/job.hh"
#include "sched/jobmix.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

void
appendField(std::string &key, const std::string &value)
{
    key += value;
    key += ';';
}

template <typename Int,
          typename = std::enable_if_t<std::is_integral_v<Int>>>
void
appendField(std::string &key, Int value)
{
    appendField(key, std::to_string(value));
}

void
appendCache(std::string &key, const CacheParams &cache)
{
    appendField(key, cache.name);
    appendField(key, cache.sizeBytes);
    appendField(key, cache.lineBytes);
    appendField(key, cache.assoc);
}

/**
 * Canonical rendering of everything a solo-IPC measurement depends
 * on. Collision-free by construction (unlike a hash), so a cache hit
 * is always the right reference. Must enumerate every CoreParams and
 * MemParams field: a missed field would alias configurations.
 */
std::string
soloIpcKey(const CoreParams &core, const MemParams &mem,
           std::uint64_t warmup_cycles, std::uint64_t measure_cycles,
           const SampleWindows &sample, const std::string &workload,
           int threads)
{
    std::string key;
    key.reserve(256);
    appendField(key, workload);
    appendField(key, threads);
    appendField(key, warmup_cycles);
    appendField(key, measure_cycles);
    appendField(key, sample.fastForward);
    appendField(key, sample.warm);
    appendField(key, sample.measure);

    appendField(key, core.numContexts);
    appendField(key, core.fetchWidth);
    appendField(key, core.fetchThreads);
    appendField(key, core.fetchQueueSize);
    appendField(key, core.frontendDelay);
    appendField(key, core.mispredictRedirect);
    appendField(key, core.dispatchWidth);
    appendField(key, core.commitWidth);
    appendField(key, core.intQueueSize);
    appendField(key, core.fpQueueSize);
    appendField(key, core.intRenameRegs);
    appendField(key, core.fpRenameRegs);
    appendField(key, core.robSize);
    appendField(key, core.numIntUnits);
    appendField(key, core.fpAddPipes);
    appendField(key, core.fpMulPipes);
    appendField(key, core.numLsPorts);
    appendField(key, core.intAluLat);
    appendField(key, core.intMultLat);
    appendField(key, core.fpAddLat);
    appendField(key, core.fpMultLat);
    appendField(key, core.fpDivLat);
    appendField(key, core.l1dHitLat);
    appendField(key, core.predictorBits);
    appendField(key, core.roundRobinFetch ? 1 : 0);

    appendCache(key, mem.l1i);
    appendCache(key, mem.l1d);
    appendCache(key, mem.l2);
    appendCache(key, mem.itlb);
    appendCache(key, mem.dtlb);
    appendField(key, mem.l2HitLatency);
    appendField(key, mem.memLatency);
    appendField(key, mem.tlbMissLatency);
    appendField(key, mem.prefetch.enabled ? 1 : 0);
    appendField(key, mem.prefetch.tableBits);
    appendField(key, mem.prefetch.confidenceThreshold);
    appendField(key, mem.prefetch.degree);
    return key;
}

/**
 * Process-wide reference table. A solo IPC is a pure function of its
 * key (the measurement runs a private job with a fixed internal seed
 * on a private machine), so experiments sharing a configuration --
 * every figure harness builds several Calibrators with the same one --
 * can share measurements across instances and threads.
 */
std::mutex soloIpcCacheMutex;
std::map<std::string, double> soloIpcCache;

} // namespace

Calibrator::Calibrator(const CoreParams &core, const MemParams &mem,
                       std::uint64_t warmup_cycles,
                       std::uint64_t measure_cycles)
    : coreParams_(core), memParams_(mem), warmupCycles_(warmup_cycles),
      measureCycles_(measure_cycles)
{
    SOS_ASSERT(measure_cycles > 0);
}

double
Calibrator::soloIpc(const std::string &workload, int threads)
{
    SOS_ASSERT(threads >= 1 && threads <= coreParams_.numContexts,
               "solo run cannot use more threads than contexts");
    const auto key = std::make_pair(workload, threads);
    const auto cached = cache_.find(key);
    if (cached != cache_.end())
        return cached->second;

    const std::string global_key =
        soloIpcKey(coreParams_, memParams_, warmupCycles_,
                   measureCycles_, sample_, workload, threads);
    {
        const std::lock_guard<std::mutex> lock(soloIpcCacheMutex);
        const auto shared = soloIpcCache.find(global_key);
        if (shared != soloIpcCache.end()) {
            cache_.emplace(key, shared->second);
            return shared->second;
        }
    }

    // A private job on a private core: the reference must not perturb
    // or observe the experiment's machine state.
    const WorkloadProfile &profile =
        WorkloadLibrary::instance().get(workload);
    Job job(1, profile, 0xca11b7a7eULL, threads,
            /*adaptive=*/false);
    Machine machine(coreParams_, memParams_);
    SmtCore &core = machine.core(0);
    for (int t = 0; t < threads; ++t) {
        ThreadBinding binding;
        binding.gen = &job.generator(t);
        binding.sync = job.syncDomain();
        binding.syncIndex = t;
        binding.asid = job.asid();
        core.attachThread(t, binding);
    }

    // References are measured at the experiment's fidelity (see
    // setSampling), but never recorded into the run's sampling stats:
    // a reference is cached machinery, not part of any one run.
    SamplingController sampler(core, sample_);
    sampler.setRecording(false);
    PerfCounters warmup;
    sampler.run(warmupCycles_, warmup);
    PerfCounters measured;
    sampler.run(measureCycles_, measured);

    const double ipc = measured.ipc();
    SOS_ASSERT(ipc > 0.0, "calibration produced zero IPC for ", workload);
    cache_.emplace(key, ipc);
    {
        // The measurement is deterministic, so concurrent callers that
        // raced past the lookup computed the same value; last writer
        // wins harmlessly.
        const std::lock_guard<std::mutex> lock(soloIpcCacheMutex);
        soloIpcCache.emplace(global_key, ipc);
    }
    return ipc;
}

void
Calibrator::calibrate(Job &job)
{
    job.soloIpc = soloIpc(job.name(), job.numThreads());
}

void
Calibrator::calibrate(JobMix &mix)
{
    for (int j = 0; j < mix.numJobs(); ++j)
        calibrate(mix.job(j));
}

} // namespace sos
