/**
 * @file
 * Cluster dispatch policies: which node gets the next job?
 *
 * A dispatcher runs serially at each epoch barrier and routes every
 * arrival due in the coming epoch to one node. It sees a NodeView per
 * node -- queue depth, outstanding work, and the performance-counter
 * signature the node's SOS kernel accumulated over its recent live
 * slices -- and nothing else, so a policy decision is a pure function
 * of (arrival, views, policy state) and the cluster stays bit-identical
 * across host worker counts.
 *
 * Registered policies:
 *  - "random":       uniform node draw from a private RNG stream;
 *  - "round-robin":  rotate through nodes in id order;
 *  - "least-loaded": fewest resident jobs, ties by outstanding work
 *                    then id (classic join-the-shortest-queue);
 *  - "signature":    least load, discounted when the job's static mix
 *                    complements the node's measured counter signature
 *                    (FP/int balance, L1D pressure) -- the symbiosis
 *                    argument of the paper lifted one level up: route
 *                    jobs so each node's SOS kernel has friendly mixes
 *                    to coschedule;
 *  - "learned":      the load term of "signature" with the hand-tuned
 *                    discount replaced by a trained WS model's
 *                    prediction for the (job, node) tuple; the model
 *                    file comes from SOS_MODEL (see sostrain).
 */

#ifndef SOS_CLUSTER_DISPATCH_HH
#define SOS_CLUSTER_DISPATCH_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/arrival.hh"
#include "cpu/perf_counters.hh"

namespace sos {

/** What a dispatcher may know about one node at a barrier. */
struct NodeView
{
    int id = 0;

    /** Jobs resident (arrived, not finished) plus routed this epoch. */
    int poolSize = 0;

    /** Instructions outstanding across resident and routed jobs. */
    std::uint64_t queuedWork = 0;

    /**
     * Counters the node accumulated over its live slices since the
     * previous barrier (PerfCounters::cycles == 0 until the node has
     * run any -- policies must tolerate an empty signature).
     */
    PerfCounters signature;
};

/** One routing policy; stateful policies keep private members. */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    virtual std::string name() const = 0;

    /**
     * Node id that receives @p arrival. @p views holds one entry per
     * node in id order; the caller folds the pick back into the view
     * (poolSize, queuedWork) before the next call so batch dispatches
     * spread instead of dogpiling.
     */
    virtual int pick(const ClusterArrival &arrival,
                     const std::vector<NodeView> &views) = 0;
};

/**
 * Build a dispatcher by registry name; fatal() -- listing the
 * registered names -- when @p name is unknown. @p seed feeds the
 * "random" policy's private stream (others ignore it).
 */
std::unique_ptr<Dispatcher> makeDispatcher(const std::string &name,
                                           std::uint64_t seed);

/** Registered dispatch-policy names. */
const std::vector<std::string> &dispatcherNames();

} // namespace sos

#endif // SOS_CLUSTER_DISPATCH_HH
