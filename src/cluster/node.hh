/**
 * @file
 * One cluster node: a machine, its SOS kernel loop, and a calibrated
 * job factory, advanced between dispatch barriers.
 *
 * A node owns the full single-machine stack -- an EngineBackend (one
 * SMT core or a CMP), an OpenRun (the kernel's arrival-driven loop in
 * resumable form) and the Calibrator its job factory sizes solo-IPC
 * references from. dispatch() queues a routed arrival; advanceTo()
 * runs the node's event loop to the epoch barrier. The node performs
 * no synchronization of its own, so the cluster may advance all nodes
 * concurrently on a thread pool (one task per node, a pure function
 * of node state) and remain bit-identical to a serial sweep.
 *
 * The inner ParallelScheduleRunner is pinned to one worker: node-level
 * parallelism replaces fork-level parallelism -- nesting both would
 * oversubscribe the host and the inner fan-out would buy nothing.
 */

#ifndef SOS_CLUSTER_NODE_HH
#define SOS_CLUSTER_NODE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/arrival.hh"
#include "cluster/dispatch.hh"
#include "metrics/calibrator.hh"
#include "sim/sim_config.hh"
#include "sos/open_run.hh"
#include "stats/trace.hh"

namespace sos {

/** One machine of the cluster, advanced between dispatch epochs. */
class ClusterNode
{
  public:
    /** Kernel knobs shared by every node of a cluster. */
    struct Params
    {
        int level = 3;
        int numCores = 1;
        int sampleSchedules = 10;
        std::string predictor = "IPC";
        std::string resamplePolicy = "backoff";
        /** Base symbios interval in simulated cycles. */
        std::uint64_t baseIntervalCycles = 1;
        std::uint64_t seed = 0;
        /** Record this node's kernel decisions (gated upstream). */
        bool wantTrace = false;
        std::uint64_t traceStride = 1;
    };

    /**
     * @param id      Node index; tags the trace and salts the seed.
     * @param sim     This node's simulation config (a cluster with
     *                per-node machine files passes distinct configs).
     * @param params  Shared kernel knobs.
     * @param arrivals The cluster-wide trace; the factory materializes
     *                jobs from it by global index. Must outlive the
     *                node.
     */
    ClusterNode(int id, const SimConfig &sim, const Params &params,
                const std::vector<ClusterArrival> &arrivals);

    ClusterNode(const ClusterNode &) = delete;
    ClusterNode &operator=(const ClusterNode &) = delete;

    int id() const { return id_; }

    /** Route one arrival here (cycles nondecreasing per node). */
    void dispatch(std::size_t global_index);

    /** Advance the node's event loop to the barrier cycle. */
    void advanceTo(std::uint64_t limit) { run_->advanceTo(limit); }

    /** Every routed job completed. */
    bool drained() const { return run_->drained(); }

    /** Close the node's phase machine (requires drained()). */
    void finalize() { run_->finalize(); }

    /** The dispatcher's snapshot of this node, taken at a barrier. */
    NodeView view();

    /** @name Results (read after the run) @{ */
    std::size_t dispatched() const { return run_->injected(); }
    std::size_t completed() const { return run_->completed(); }
    std::uint64_t now() const { return run_->now(); }
    std::uint64_t slicesRun() const { return run_->slicesRun(); }
    std::uint64_t sampleSlices() const { return run_->sampleSlices(); }
    int samplePhases() const { return run_->samplePhases(); }
    std::uint64_t timesliceCycles() const { return timeslice_; }

    /** (global index, response cycles) per completion, retire order. */
    const std::vector<std::pair<int, std::uint64_t>> &
    responses() const
    {
        return run_->responses();
    }

    /** This node's decision trace (node-tagged, stride-gated). */
    const stats::EventTrace &trace() const { return trace_; }
    /** @} */

  private:
    int id_;
    const std::vector<ClusterArrival> &arrivals_;
    Calibrator calibrator_;
    std::unique_ptr<EngineBackend> backend_;
    stats::EventTrace trace_;
    std::unique_ptr<OpenRun> run_;
    std::uint64_t timeslice_;
};

} // namespace sos

#endif // SOS_CLUSTER_NODE_HH
