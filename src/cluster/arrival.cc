#include "cluster/arrival.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/rng.hh"
#include "metrics/calibrator.hh"
#include "sim/experiment_defs.hh"

namespace sos {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/** Draw one class index by weight (classes are few; linear scan). */
int
drawClass(Rng &rng, const std::vector<ArrivalClass> &classes,
          double total_weight)
{
    const double u = rng.uniform() * total_weight;
    double cumulative = 0.0;
    for (std::size_t c = 0; c < classes.size(); ++c) {
        cumulative += classes[c].weight;
        if (u < cumulative)
            return static_cast<int>(c);
    }
    return static_cast<int>(classes.size()) - 1;
}

/**
 * Stateful interarrival draw: each process advances its own notion of
 * "current rate" and returns the gap to the next arrival.
 */
class ArrivalProcess
{
  public:
    virtual ~ArrivalProcess() = default;
    virtual double nextGap(Rng &rng, double clock) = 0;
};

class PoissonProcess : public ArrivalProcess
{
  public:
    explicit PoissonProcess(double mean) : mean_(mean) {}

    double
    nextGap(Rng &rng, double) override
    {
        return rng.exponential(mean_);
    }

  private:
    double mean_;
};

/**
 * Two-state MMPP: a burst state arriving burstRateFactor times faster
 * than the lull state, with exponentially distributed sojourns sized
 * so the long-run mean interarrival matches the spec (bursty traffic,
 * same offered load).
 */
class MmppProcess : public ArrivalProcess
{
  public:
    MmppProcess(const ArrivalSpec &spec)
        : burstFraction_(std::clamp(spec.burstFraction, 0.01, 0.99))
    {
        // Solve rate_burst/rate_lull = factor with the time-weighted
        // mean rate equal to 1/mean: the burst mean interarrival is
        // mean/scale_b, the lull mean/scale_l.
        const double factor = std::max(1.0, spec.burstRateFactor);
        const double mean_rate = 1.0 / spec.meanInterarrivalCycles;
        const double lull_rate =
            mean_rate /
            (1.0 + burstFraction_ * (factor - 1.0));
        burstMean_ = 1.0 / (lull_rate * factor);
        lullMean_ = 1.0 / lull_rate;
        burstSojourn_ = spec.burstLengthArrivals *
                        spec.meanInterarrivalCycles;
        lullSojourn_ = burstSojourn_ * (1.0 - burstFraction_) /
                       burstFraction_;
    }

    double
    nextGap(Rng &rng, double clock) override
    {
        if (clock >= stateEnd_) {
            // Enter the other state for a fresh exponential sojourn.
            inBurst_ = !inBurst_;
            stateEnd_ = clock + rng.exponential(
                                    inBurst_ ? burstSojourn_
                                             : lullSojourn_);
        }
        return rng.exponential(inBurst_ ? burstMean_ : lullMean_);
    }

  private:
    double burstFraction_;
    double burstMean_ = 0.0;
    double lullMean_ = 0.0;
    double burstSojourn_ = 0.0;
    double lullSojourn_ = 0.0;
    bool inBurst_ = false;
    double stateEnd_ = 0.0;
};

/**
 * Sinusoidal rate modulation: the instantaneous rate swings by
 * +/- amplitude around the mean over one period (day/night load).
 */
class DiurnalProcess : public ArrivalProcess
{
  public:
    explicit DiurnalProcess(const ArrivalSpec &spec)
        : mean_(spec.meanInterarrivalCycles),
          amplitude_(std::clamp(spec.diurnalAmplitude, 0.0, 0.95)),
          period_(std::max(1.0, spec.diurnalPeriodArrivals) *
                  spec.meanInterarrivalCycles)
    {
    }

    double
    nextGap(Rng &rng, double clock) override
    {
        const double rate_scale =
            1.0 + amplitude_ * std::sin(kTwoPi * clock / period_);
        return rng.exponential(mean_ / rate_scale);
    }

  private:
    double mean_;
    double amplitude_;
    double period_;
};

std::unique_ptr<ArrivalProcess>
makeProcess(const ArrivalSpec &spec)
{
    if (spec.process == "poisson") {
        return std::make_unique<PoissonProcess>(
            spec.meanInterarrivalCycles);
    }
    if (spec.process == "mmpp")
        return std::make_unique<MmppProcess>(spec);
    if (spec.process == "diurnal")
        return std::make_unique<DiurnalProcess>(spec);
    std::string known;
    for (const std::string &name : arrivalProcessNames())
        known += (known.empty() ? "" : ", ") + name;
    fatal("unknown arrival process '", spec.process, "' (known: ",
          known, ")");
}

} // namespace

ArrivalClass
defaultArrivalClass()
{
    return ArrivalClass{"all", 1.0, 1.0};
}

const std::vector<std::string> &
arrivalProcessNames()
{
    static const std::vector<std::string> names = {"poisson", "mmpp",
                                                   "diurnal"};
    return names;
}

std::vector<ArrivalClass>
effectiveClasses(const ArrivalSpec &spec)
{
    if (spec.classes.empty())
        return {defaultArrivalClass()};
    return spec.classes;
}

std::vector<ClusterArrival>
makeClusterArrivals(const SimConfig &sim, const ArrivalSpec &spec)
{
    SOS_ASSERT(spec.numJobs > 0);
    SOS_ASSERT(spec.meanInterarrivalCycles > 0.0 &&
                   spec.meanJobCycles > 0.0,
               "arrival spec needs positive means");

    const std::vector<ArrivalClass> classes = effectiveClasses(spec);
    double total_weight = 0.0;
    for (const ArrivalClass &klass : classes) {
        SOS_ASSERT(klass.weight > 0.0 && klass.sizeFactor > 0.0,
                   "arrival classes need positive weight and size");
        total_weight += klass.weight;
    }

    Rng rng(spec.seed ^ 0xc1a57e7ceULL);
    const std::unique_ptr<ArrivalProcess> process = makeProcess(spec);
    Calibrator calibrator(sim.referenceCoreFor(spec.level),
                          sim.referenceMem(), sim.calibWarmupCycles,
                          sim.calibMeasureCycles);
    const auto &workloads = openSystemWorkloads();

    std::vector<ClusterArrival> trace;
    trace.reserve(static_cast<std::size_t>(spec.numJobs));
    double clock = 0.0;
    for (int j = 0; j < spec.numJobs; ++j) {
        clock += process->nextGap(rng, clock);
        ClusterArrival arrival;
        arrival.arrivalCycle = static_cast<std::uint64_t>(clock);
        arrival.workload = workloads[rng.below(workloads.size())];
        arrival.klass = drawClass(rng, classes, total_weight);
        // Duration in solo cycles around the class mean, clamped like
        // the single-machine trace so no job degenerates.
        const double mean =
            spec.meanJobCycles *
            classes[static_cast<std::size_t>(arrival.klass)].sizeFactor;
        double duration = rng.exponential(mean);
        duration = std::clamp(duration, mean * 0.05, mean * 6.0);
        const double solo = calibrator.soloIpc(arrival.workload);
        arrival.sizeInstructions = std::max<std::uint64_t>(
            1000, static_cast<std::uint64_t>(duration * solo));
        trace.push_back(std::move(arrival));
    }
    return trace;
}

} // namespace sos
