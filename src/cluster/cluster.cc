#include "cluster/cluster.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "config/machine_config.hh"
#include "sim/open_system.hh"

namespace sos {

Cluster::Cluster(const SimConfig &base, const ClusterConfig &config)
    : base_(base), config_(config)
{
    SOS_ASSERT(config.numNodes > 0, "a cluster needs at least one node");
    SOS_ASSERT(config.epochSlices > 0,
               "a dispatch epoch needs at least one timeslice");
    SOS_ASSERT(static_cast<int>(config.nodeMachineConfigs.size()) <=
                   config.numNodes,
               "more per-node machine configs than nodes");
    classes_ = effectiveClasses(ArrivalSpec{.classes = config.classes});
    dispatcher_ = makeDispatcher(config.dispatch, config.seed);

    // Per-node configuration: the base machine unless a per-node
    // machine-config file overrides it.
    double cluster_rate = 0.0;
    for (int k = 0; k < config.numNodes; ++k) {
        SimConfig sim = base;
        // Cluster nodes advance concurrently; each node's inner
        // fork sweep stays serial (see ClusterNode).
        if (k < static_cast<int>(config.nodeMachineConfigs.size()) &&
            !config.nodeMachineConfigs[static_cast<std::size_t>(k)]
                 .empty()) {
            applyMachineConfig(
                sim,
                config.nodeMachineConfigs[static_cast<std::size_t>(k)]);
        }
        const int cores = sim.machineCores > 0 ? sim.machineCores
                                               : config.numCores;
        // The stable single-machine interarrival doubles as this
        // node's resample base interval and its capacity share of the
        // front-door rate.
        OpenSystemConfig open;
        open.level = config.level;
        open.numCores = cores;
        open.meanJobPaperCycles = config.meanJobPaperCycles;
        const std::uint64_t stable =
            open.effectiveInterarrivalPaper(sim);
        cluster_rate += 1.0 / static_cast<double>(stable);
        nodeSims_.push_back(std::move(sim));
        nodeCores_.push_back(cores);
        nodeBaseIntervals_.push_back(base.scaled(stable));
    }

    interarrivalPaper_ =
        config.meanInterarrivalPaper > 0
            ? config.meanInterarrivalPaper
            : static_cast<std::uint64_t>(1.0 / cluster_rate);
    SOS_ASSERT(interarrivalPaper_ > 0);

    ArrivalSpec spec;
    spec.process = config.process;
    spec.numJobs = config.numJobs;
    spec.meanInterarrivalCycles = std::max(
        1.0, static_cast<double>(interarrivalPaper_) /
                 static_cast<double>(base.cycleScale));
    spec.meanJobCycles =
        static_cast<double>(base.scaled(config.meanJobPaperCycles));
    spec.level = config.level;
    spec.classes = config.classes;
    spec.seed = config.seed;
    arrivals_ = makeClusterArrivals(base, spec);
}

void
Cluster::dispatchDue(std::uint64_t horizon,
                     std::vector<NodeView> &views,
                     stats::EventTrace *trace)
{
    while (nextArrival_ < arrivals_.size() &&
           arrivals_[nextArrival_].arrivalCycle < horizon) {
        const ClusterArrival &arrival = arrivals_[nextArrival_];
        const int node = dispatcher_->pick(arrival, views);
        SOS_ASSERT(node >= 0 && node < config_.numNodes,
                   "dispatcher picked a node outside the cluster");
        nodes_[static_cast<std::size_t>(node)]->dispatch(nextArrival_);
        result_.nodeByArrival[nextArrival_] = node;
        // Fold the pick into the view so one barrier's batch spreads.
        NodeView &view = views[static_cast<std::size_t>(node)];
        ++view.poolSize;
        view.queuedWork += arrival.sizeInstructions;
        if (trace != nullptr) {
            trace->event("dispatch")
                .field("job", static_cast<std::uint64_t>(nextArrival_))
                .field("workload", arrival.workload)
                .field(
                    "class",
                    classes_[static_cast<std::size_t>(arrival.klass)]
                        .name)
                .field("node", node);
        }
        ++nextArrival_;
    }
}

ClusterResult
Cluster::run(stats::EventTrace *events)
{
    SOS_ASSERT(!ran_, "a cluster instance runs once");
    ran_ = true;

    const bool want_trace = events != nullptr;
    stats::EventTrace dispatch_trace;
    dispatch_trace.setPhaseStride(base_.traceSample);

    ClusterNode::Params params;
    params.level = config_.level;
    params.sampleSchedules = config_.sampleSchedules;
    params.predictor = config_.predictor;
    params.resamplePolicy = config_.resamplePolicy;
    params.seed = config_.seed;
    params.wantTrace = want_trace;
    params.traceStride = base_.traceSample;
    for (int k = 0; k < config_.numNodes; ++k) {
        params.numCores = nodeCores_[static_cast<std::size_t>(k)];
        params.baseIntervalCycles =
            nodeBaseIntervals_[static_cast<std::size_t>(k)];
        nodes_.push_back(std::make_unique<ClusterNode>(
            k, nodeSims_[static_cast<std::size_t>(k)], params,
            arrivals_));
    }

    const std::uint64_t timeslice = base_.timesliceCycles();
    for (const auto &node : nodes_) {
        SOS_ASSERT(node->timesliceCycles() == timeslice,
                   "cluster nodes must share the timeslice grid");
    }
    const std::uint64_t epoch_cycles =
        static_cast<std::uint64_t>(config_.epochSlices) * timeslice;

    result_.nodeByArrival.assign(arrivals_.size(), -1);
    result_.responseByArrival.assign(arrivals_.size(), 0);

    // One pool for the whole run; nodes are the unit of fan-out.
    const auto node_count = static_cast<std::size_t>(config_.numNodes);
    ThreadPool pool(
        std::min(resolveJobs(base_.jobs), config_.numNodes));
    const auto advanceAll = [&](std::uint64_t limit) {
        pool.run(node_count, [&](std::size_t k) {
            nodes_[k]->advanceTo(limit);
        });
    };

    std::uint64_t reached = 0; ///< limit of the last advanceAll
    while (nextArrival_ < arrivals_.size()) {
        // Jump straight to the epoch of the next undispatched arrival
        // (unobservable barriers with nothing to dispatch are skipped).
        const std::uint64_t epoch =
            arrivals_[nextArrival_].arrivalCycle / epoch_cycles;
        const std::uint64_t barrier = epoch * epoch_cycles;
        const std::uint64_t horizon = barrier + epoch_cycles;
        if (barrier > reached) {
            advanceAll(barrier);
            reached = barrier;
        }

        std::vector<NodeView> views;
        views.reserve(node_count);
        for (const auto &node : nodes_)
            views.push_back(node->view());

        if (want_trace) {
            // The opener must precede its "dispatch" followers so a
            // trace stride gates whole epoch groups.
            dispatch_trace.event("dispatch_epoch")
                .field("epoch", epoch)
                .field("cycle", barrier)
                .field("policy", dispatcher_->name());
        }
        dispatchDue(horizon,
                    views, want_trace ? &dispatch_trace : nullptr);

        advanceAll(horizon);
        reached = horizon;
        ++result_.epochs;
    }

    // Everything is routed: drain without further barriers.
    advanceAll(OpenRun::kNoLimit);
    for (const auto &node : nodes_)
        node->finalize();

    // Harvest.
    std::uint64_t makespan = 0;
    for (const auto &node : nodes_)
        makespan = std::max(makespan, node->now());
    double total_response = 0.0;
    for (const auto &node : nodes_) {
        ClusterNodeSummary summary;
        summary.id = node->id();
        summary.dispatched = node->dispatched();
        summary.completed = node->completed();
        summary.busyCycles = node->slicesRun() * timeslice;
        summary.sampleCycles = node->sampleSlices() * timeslice;
        summary.samplePhases = node->samplePhases();
        summary.utilization =
            makespan > 0 ? static_cast<double>(summary.busyCycles) /
                               static_cast<double>(makespan)
                         : 0.0;
        result_.nodes.push_back(summary);
        result_.completed += node->completed();
        for (const auto &[index, response] : node->responses()) {
            result_.responseByArrival[static_cast<std::size_t>(
                index)] = response;
            total_response += static_cast<double>(response);
        }
    }
    result_.meanResponseCycles =
        arrivals_.empty()
            ? 0.0
            : total_response / static_cast<double>(arrivals_.size());
    result_.totalCycles = makespan;

    if (events != nullptr) {
        events->append(dispatch_trace);
        for (const auto &node : nodes_)
            events->append(node->trace());
    }
    return result_;
}

void
Cluster::publishStats(const stats::Group &group) const
{
    SOS_ASSERT(ran_, "publishStats() before run()");

    group.info("dispatch", "dispatch policy") = dispatcher_->name();
    group.info("arrival_process", "front-door arrival process") =
        config_.process;
    group.scalar("nodes", "machines in the cluster") =
        static_cast<std::uint64_t>(config_.numNodes);
    group.scalar("jobs", "arrivals simulated") =
        static_cast<std::uint64_t>(arrivals_.size());
    group.scalar("completed", "jobs drained") =
        static_cast<std::uint64_t>(result_.completed);
    group.scalar("epochs", "dispatch barriers executed") =
        result_.epochs;
    group.scalar("epoch_slices", "timeslices per dispatch epoch") =
        static_cast<std::uint64_t>(config_.epochSlices);
    group.scalar("interarrival_paper_cycles",
                 "front-door mean interarrival (paper cycles)") =
        interarrivalPaper_;
    group.scalar("total_cycles", "cluster makespan") =
        result_.totalCycles;
    group.value("mean_response_cycles", "mean job response time") =
        result_.meanResponseCycles;

    // Response-time percentiles, cluster-wide and per class.
    stats::Quantile &all = group.quantile(
        "response_cycles", "job response time (streaming quantiles)");
    const stats::Group by_class = group.group("class");
    std::vector<stats::Quantile *> class_quantiles;
    for (const ArrivalClass &klass : classes_) {
        class_quantiles.push_back(&by_class.group(klass.name).quantile(
            "response_cycles", "response time of this class"));
    }
    for (std::size_t i = 0; i < arrivals_.size(); ++i) {
        const auto response =
            static_cast<double>(result_.responseByArrival[i]);
        all.sample(response);
        class_quantiles[static_cast<std::size_t>(
                            arrivals_[i].klass)]
            ->sample(response);
    }

    for (const ClusterNodeSummary &node : result_.nodes) {
        const stats::Group node_group =
            group.group("node" + std::to_string(node.id));
        node_group.scalar("dispatched", "jobs routed here") =
            static_cast<std::uint64_t>(node.dispatched);
        node_group.scalar("completed", "jobs finished here") =
            static_cast<std::uint64_t>(node.completed);
        node_group.scalar("busy_cycles",
                          "cycles spent running timeslices") =
            node.busyCycles;
        node_group.scalar("sample_cycles",
                          "cycles spent in sample phases") =
            node.sampleCycles;
        node_group.scalar("sample_phases", "sample phases run") =
            static_cast<std::uint64_t>(node.samplePhases);
        node_group.value("utilization",
                         "busy cycles over the cluster makespan") =
            node.utilization;
    }
}

} // namespace sos
