/**
 * @file
 * The cluster layer: N machines, one arrival stream, epoch dispatch.
 *
 * A Cluster owns N ClusterNodes (homogeneous, or heterogeneous via
 * per-node machine-config files) and replays one deterministic
 * ClusterArrival trace through a Dispatcher. Time is divided into
 * dispatch epochs of a fixed number of timeslices; the run alternates
 *
 *   barrier:  (serial) snapshot a NodeView per node, route every
 *             arrival due in the coming epoch through the dispatcher,
 *             folding each pick back into the views;
 *   epoch:    (parallel) advance every node's OpenRun to the epoch
 *             horizon, one ThreadPool task per node.
 *
 * Nodes share no mutable state and a node's advance is a pure
 * function of its own (config, injected arrivals), so the wall clock
 * scales with host threads while results stay bit-identical to a
 * serial execution at any SOS_JOBS -- the same determinism contract
 * the fork-level sweeps honor, one level up. Epochs with no arrivals
 * due are skipped in one jump (no barrier is observable when nothing
 * is dispatched at it).
 *
 * Response-time percentiles are accumulated per SLA class into
 * streaming stats::Quantile histograms, and each node reports its
 * utilization (busy slices over the cluster makespan); publishStats()
 * writes both to the manifest.
 */

#ifndef SOS_CLUSTER_CLUSTER_HH
#define SOS_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/arrival.hh"
#include "cluster/dispatch.hh"
#include "cluster/node.hh"
#include "sim/sim_config.hh"
#include "stats/stats.hh"
#include "stats/trace.hh"

namespace sos {

/** Parameters of one cluster run. */
struct ClusterConfig
{
    /** Machines in the cluster. */
    int numNodes = 2;

    /** Dispatch policy (see dispatcherNames()). */
    std::string dispatch = "signature";

    /** Arrival process (see arrivalProcessNames()). */
    std::string process = "poisson";

    /** Arrivals to generate and drain. */
    int numJobs = 1000;

    /** SMT level of every node's cores. */
    int level = 3;

    /** SMT cores per node (per-node machine configs may override). */
    int numCores = 1;

    /** Mean job length in paper cycles of solo execution. */
    std::uint64_t meanJobPaperCycles = 150000000;

    /**
     * Mean interarrival time in paper cycles at the cluster front
     * door; 0 derives the stable value from the summed measured
     * capacity of all nodes (each node then sees roughly the load the
     * single-machine open system calls stable).
     */
    std::uint64_t meanInterarrivalPaper = 0;

    /** Timeslices per dispatch epoch. */
    int epochSlices = 8;

    /** @name Kernel knobs forwarded to every node @{ */
    int sampleSchedules = 10;
    std::string predictor = "IPC";
    std::string resamplePolicy = "backoff";
    /** @} */

    std::uint64_t seed = 0x0b5e55edULL;

    /** Priority/SLA classes; empty = one implicit class. */
    std::vector<ArrivalClass> classes;

    /**
     * Per-node machine-config paths ("" entries keep the base
     * machine). Shorter than numNodes is fine; extra entries are an
     * error.
     */
    std::vector<std::string> nodeMachineConfigs;
};

/** Per-node outcome of a cluster run. */
struct ClusterNodeSummary
{
    int id = 0;
    std::size_t dispatched = 0;
    std::size_t completed = 0;
    std::uint64_t busyCycles = 0;   ///< slices run x timeslice
    std::uint64_t sampleCycles = 0; ///< spent in sample phases
    int samplePhases = 0;
    /** busyCycles over the cluster makespan, in [0, 1]. */
    double utilization = 0.0;
};

/** Outcome of one cluster run. */
struct ClusterResult
{
    std::vector<ClusterNodeSummary> nodes;
    /** Response time per arrival index (matches the trace order). */
    std::vector<std::uint64_t> responseByArrival;
    /** Node that served each arrival. */
    std::vector<int> nodeByArrival;
    std::size_t completed = 0;
    double meanResponseCycles = 0.0;
    std::uint64_t totalCycles = 0; ///< makespan: max node clock
    std::uint64_t epochs = 0;      ///< dispatch barriers executed
};

/** N machines fed from one arrival trace through a dispatcher. */
class Cluster
{
  public:
    /**
     * Generates the arrival trace and per-node configurations; the
     * simulation itself runs in run(). @p base supplies cycle scale,
     * seeds, worker count (SOS_JOBS bounds the node fan-out) and the
     * default machine.
     */
    Cluster(const SimConfig &base, const ClusterConfig &config);

    Cluster(const Cluster &) = delete;
    Cluster &operator=(const Cluster &) = delete;

    /** The deterministic arrival trace every policy replays. */
    const std::vector<ClusterArrival> &arrivals() const
    {
        return arrivals_;
    }

    /** Effective front-door mean interarrival in paper cycles. */
    std::uint64_t meanInterarrivalPaper() const
    {
        return interarrivalPaper_;
    }

    /**
     * Drain the whole trace. When @p events is non-null the cluster's
     * dispatch decisions and every node's kernel decisions (tagged
     * with their node id) are appended to it, cluster first, then
     * nodes in id order; SOS_TRACE_SAMPLE gates both at the source.
     * A cluster instance runs once.
     */
    ClusterResult run(stats::EventTrace *events = nullptr);

    /** The stored result (run() must have completed). */
    const ClusterResult &result() const { return result_; }

    /**
     * Register the run's manifest stats under @p group: cluster-wide
     * and per-class response-time quantiles (p50/p95/p99), per-node
     * dispatch counts and utilization, and the run configuration.
     */
    void publishStats(const stats::Group &group) const;

  private:
    void dispatchDue(std::uint64_t horizon,
                     std::vector<NodeView> &views,
                     stats::EventTrace *trace);

    SimConfig base_;
    ClusterConfig config_;
    std::vector<SimConfig> nodeSims_;
    std::vector<int> nodeCores_;
    std::vector<std::uint64_t> nodeBaseIntervals_;
    std::uint64_t interarrivalPaper_ = 0;
    std::vector<ClusterArrival> arrivals_;
    std::vector<ArrivalClass> classes_;
    std::unique_ptr<Dispatcher> dispatcher_;
    std::vector<std::unique_ptr<ClusterNode>> nodes_;
    std::size_t nextArrival_ = 0;
    bool ran_ = false;
    ClusterResult result_;
};

} // namespace sos

#endif // SOS_CLUSTER_CLUSTER_HH
