#include "cluster/dispatch.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

class RandomDispatcher : public Dispatcher
{
  public:
    explicit RandomDispatcher(std::uint64_t seed)
        : rng_(seed ^ 0xd15a7c4edULL)
    {
    }

    std::string name() const override { return "random"; }

    int
    pick(const ClusterArrival &,
         const std::vector<NodeView> &views) override
    {
        return static_cast<int>(rng_.below(views.size()));
    }

  private:
    Rng rng_;
};

class RoundRobinDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "round-robin"; }

    int
    pick(const ClusterArrival &,
         const std::vector<NodeView> &views) override
    {
        const int node = cursor_ % static_cast<int>(views.size());
        cursor_ = (cursor_ + 1) % static_cast<int>(views.size());
        return node;
    }

  private:
    int cursor_ = 0;
};

class LeastLoadedDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "least-loaded"; }

    int
    pick(const ClusterArrival &,
         const std::vector<NodeView> &views) override
    {
        const NodeView *best = &views.front();
        for (const NodeView &view : views) {
            if (view.poolSize < best->poolSize ||
                (view.poolSize == best->poolSize &&
                 view.queuedWork < best->queuedWork)) {
                best = &view;
            }
        }
        return best->id;
    }
};

/**
 * Symbiosis-aware routing: start from the normalized load and discount
 * nodes whose measured signature complements the job's static mix.
 * A node heavy in FP issue pairs well with an integer-leaning job
 * (and vice versa: disjoint functional units, the paper's Figure 3
 * observation), while a node already missing in L1D is a bad home for
 * a large-working-set job. Weights are mild on purpose -- load
 * balance dominates, symbiosis breaks the ties it can.
 */
class SignatureDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "signature"; }

    int
    pick(const ClusterArrival &arrival,
         const std::vector<NodeView> &views) override
    {
        const WorkloadProfile &profile =
            WorkloadLibrary::instance().get(arrival.workload);
        const double job_fp = profile.fpFraction();
        // Working sets land in [0, 1] against a 64 KiB yardstick (the
        // largest Table 1 sets; anything bigger is equally "large").
        const double job_ws = std::min(
            1.0,
            static_cast<double>(profile.workingSetBytes) / 65536.0);

        double mean_pool = 0.0;
        for (const NodeView &view : views)
            mean_pool += static_cast<double>(view.poolSize);
        mean_pool =
            std::max(1.0, mean_pool /
                              static_cast<double>(views.size()));

        const NodeView *best = nullptr;
        double best_score = 0.0;
        for (const NodeView &view : views) {
            double score =
                static_cast<double>(view.poolSize) / mean_pool;
            if (view.signature.cycles > 0) {
                const std::uint64_t arith = view.signature.intOps +
                                            view.signature.fpOps;
                const double node_fp =
                    arith > 0 ? static_cast<double>(
                                    view.signature.fpOps) /
                                    static_cast<double>(arith)
                              : 0.0;
                // Complementary mixes attract, cache pressure repels.
                score -= 0.3 * std::abs(node_fp - job_fp);
                score += 0.3 * job_ws *
                         (1.0 - view.signature.l1dHitRate());
            }
            if (best == nullptr || score < best_score) {
                best = &view;
                best_score = score;
            }
        }
        return best->id;
    }
};

} // namespace

std::unique_ptr<Dispatcher>
makeDispatcher(const std::string &name, std::uint64_t seed)
{
    if (name == "random")
        return std::make_unique<RandomDispatcher>(seed);
    if (name == "round-robin")
        return std::make_unique<RoundRobinDispatcher>();
    if (name == "least-loaded")
        return std::make_unique<LeastLoadedDispatcher>();
    if (name == "signature")
        return std::make_unique<SignatureDispatcher>();
    std::string known;
    for (const std::string &registered : dispatcherNames())
        known += (known.empty() ? "" : ", ") + registered;
    fatal("unknown dispatch policy '", name, "' (known: ", known, ")");
}

const std::vector<std::string> &
dispatcherNames()
{
    static const std::vector<std::string> names = {
        "random", "round-robin", "least-loaded", "signature"};
    return names;
}

} // namespace sos
