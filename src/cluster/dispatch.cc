#include "cluster/dispatch.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "common/logging.hh"
#include "common/rng.hh"
#include "model/features.hh"
#include "model/model.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

class RandomDispatcher : public Dispatcher
{
  public:
    explicit RandomDispatcher(std::uint64_t seed)
        : rng_(seed ^ 0xd15a7c4edULL)
    {
    }

    std::string name() const override { return "random"; }

    int
    pick(const ClusterArrival &,
         const std::vector<NodeView> &views) override
    {
        return static_cast<int>(rng_.below(views.size()));
    }

  private:
    Rng rng_;
};

class RoundRobinDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "round-robin"; }

    int
    pick(const ClusterArrival &,
         const std::vector<NodeView> &views) override
    {
        const int node = cursor_ % static_cast<int>(views.size());
        cursor_ = (cursor_ + 1) % static_cast<int>(views.size());
        return node;
    }

  private:
    int cursor_ = 0;
};

class LeastLoadedDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "least-loaded"; }

    int
    pick(const ClusterArrival &,
         const std::vector<NodeView> &views) override
    {
        const NodeView *best = &views.front();
        for (const NodeView &view : views) {
            if (view.poolSize < best->poolSize ||
                (view.poolSize == best->poolSize &&
                 view.queuedWork < best->queuedWork)) {
                best = &view;
            }
        }
        return best->id;
    }
};

/**
 * Symbiosis-aware routing: start from the normalized load and discount
 * nodes whose measured signature complements the job's static mix.
 * A node heavy in FP issue pairs well with an integer-leaning job
 * (and vice versa: disjoint functional units, the paper's Figure 3
 * observation), while a node already missing in L1D is a bad home for
 * a large-working-set job. Weights are mild on purpose -- load
 * balance dominates, symbiosis breaks the ties it can.
 */
class SignatureDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "signature"; }

    int
    pick(const ClusterArrival &arrival,
         const std::vector<NodeView> &views) override
    {
        const WorkloadProfile &profile =
            WorkloadLibrary::instance().get(arrival.workload);
        const double job_fp = profile.fpFraction();
        const double job_ws =
            model::normalizedWorkingSet(profile.workingSetBytes);

        double mean_pool = 0.0;
        for (const NodeView &view : views)
            mean_pool += static_cast<double>(view.poolSize);
        mean_pool =
            std::max(1.0, mean_pool /
                              static_cast<double>(views.size()));

        const NodeView *best = nullptr;
        double best_score = 0.0;
        for (const NodeView &view : views) {
            double score =
                static_cast<double>(view.poolSize) / mean_pool;
            if (view.signature.cycles > 0) {
                const double node_fp =
                    model::counterFpShare(view.signature);
                // Complementary mixes attract, cache pressure repels.
                score -= 0.3 * std::abs(node_fp - job_fp);
                score += 0.3 * job_ws *
                         (1.0 - view.signature.l1dHitRate());
            }
            if (best == nullptr || score < best_score) {
                best = &view;
                best_score = score;
            }
        }
        return best->id;
    }
};

/**
 * Model-driven routing: the load term of "signature", but with the
 * hand-tuned symbiosis discount replaced by a trained WS model's
 * prediction for the (job, node) coschedule tuple. The job side is
 * its static ThreadSignature; the node side is the proxy signature of
 * its recent counter measurements. Like the learned predictor, the
 * model arrives via SOS_MODEL; construction without one succeeds
 * (every registered name must construct) and pick() fails loudly.
 */
class LearnedDispatcher : public Dispatcher
{
  public:
    LearnedDispatcher()
    {
        const char *path = std::getenv("SOS_MODEL");
        if (path == nullptr || *path == '\0')
            return;
        try {
            model_ = model::loadModel(path);
        } catch (const model::ModelError &error) {
            fatal("SOS_MODEL: ", error.what());
        }
    }

    std::string name() const override { return "learned"; }

    int
    pick(const ClusterArrival &arrival,
         const std::vector<NodeView> &views) override
    {
        if (!model_) {
            fatal("the 'learned' dispatcher needs a model: set "
                  "SOS_MODEL to a file written by sostrain");
        }
        const WorkloadProfile &profile =
            WorkloadLibrary::instance().get(arrival.workload);
        const model::ThreadSignature job =
            model::makeThreadSignature(arrival.klass, profile, 0.0);

        double mean_pool = 0.0;
        for (const NodeView &view : views)
            mean_pool += static_cast<double>(view.poolSize);
        mean_pool =
            std::max(1.0, mean_pool /
                              static_cast<double>(views.size()));

        const NodeView *best = nullptr;
        double best_score = 0.0;
        for (const NodeView &view : views) {
            double score =
                static_cast<double>(view.poolSize) / mean_pool;
            if (view.signature.cycles > 0) {
                const model::FeatureVector features =
                    model::composeTupleFeatures(
                        {job,
                         model::signatureFromCounters(view.signature)});
                // Higher predicted WS makes the node more attractive;
                // the weight matches "signature" so load still rules.
                score -= 0.3 * model_->predict(features);
            }
            if (best == nullptr || score < best_score) {
                best = &view;
                best_score = score;
            }
        }
        return best->id;
    }

  private:
    std::shared_ptr<const model::WsModel> model_;
};

} // namespace

std::unique_ptr<Dispatcher>
makeDispatcher(const std::string &name, std::uint64_t seed)
{
    if (name == "random")
        return std::make_unique<RandomDispatcher>(seed);
    if (name == "round-robin")
        return std::make_unique<RoundRobinDispatcher>();
    if (name == "least-loaded")
        return std::make_unique<LeastLoadedDispatcher>();
    if (name == "signature")
        return std::make_unique<SignatureDispatcher>();
    if (name == "learned")
        return std::make_unique<LearnedDispatcher>();
    std::string known;
    for (const std::string &registered : dispatcherNames())
        known += (known.empty() ? "" : ", ") + registered;
    fatal("unknown dispatch policy '", name, "' (known: ", known, ")");
}

const std::vector<std::string> &
dispatcherNames()
{
    static const std::vector<std::string> names = {
        "random", "round-robin", "least-loaded", "signature", "learned"};
    return names;
}

} // namespace sos
