#include "cluster/node.hh"

#include <string>
#include <utility>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sos/open_backend.hh"
#include "trace/workload_library.hh"

namespace sos {

namespace {

std::unique_ptr<EngineBackend>
makeNodeBackend(const SimConfig &sim, int level, int num_cores)
{
    std::unique_ptr<EngineBackend> backend;
    if (num_cores <= 1) {
        backend = std::make_unique<TimesliceBackend>(
            sim.machineFor(level, 1), sim.timesliceCycles());
    } else {
        backend = std::make_unique<MachineBackend>(
            sim.machineFor(level, num_cores), sim.timesliceCycles());
    }
    backend->setSampling(sim.sample);
    return backend;
}

} // namespace

ClusterNode::ClusterNode(int id, const SimConfig &sim,
                         const Params &params,
                         const std::vector<ClusterArrival> &arrivals)
    : id_(id), arrivals_(arrivals),
      calibrator_(sim.referenceCoreFor(params.level),
                  sim.referenceMem(), sim.calibWarmupCycles,
                  sim.calibMeasureCycles),
      backend_(makeNodeBackend(sim, params.level, params.numCores)),
      timeslice_(sim.timesliceCycles())
{
    trace_.setPhaseStride(params.traceStride);
    trace_.setContextField("node", std::to_string(id));

    SosKernel::OpenConfig kernel_config;
    kernel_config.sampleSchedules = params.sampleSchedules;
    kernel_config.predictor = params.predictor;
    kernel_config.resamplePolicy = params.resamplePolicy;
    kernel_config.baseIntervalCycles = params.baseIntervalCycles;
    // Distinct per-node decision streams, derived from the cluster
    // seed alone (never from dispatch order): node identity is part
    // of the configuration, so runs replay bit-identically.
    kernel_config.seed = params.seed ^ 0x5051d67eULL ^
                         mix64(static_cast<std::uint64_t>(id) + 0x90deULL);
    // Node-level parallelism replaces fork-level parallelism.
    kernel_config.jobs = 1;

    const std::uint64_t job_seed = params.seed;
    run_ = std::make_unique<OpenRun>(
        *backend_, kernel_config, OpenPolicy::Sos,
        [this, job_seed](std::size_t index) {
            const ClusterArrival &arrival = arrivals_[index];
            const WorkloadProfile &profile =
                WorkloadLibrary::instance().get(arrival.workload);
            auto job = std::make_unique<Job>(
                static_cast<std::uint32_t>(index + 1), profile,
                job_seed ^ mix64(index + 101), 1, false);
            job->arrivalCycle = arrival.arrivalCycle;
            job->sizeInstructions = arrival.sizeInstructions;
            job->soloIpc = calibrator_.soloIpc(arrival.workload);
            return job;
        },
        params.wantTrace ? &trace_ : nullptr);
}

void
ClusterNode::dispatch(std::size_t global_index)
{
    SOS_ASSERT(global_index < arrivals_.size());
    run_->inject(arrivals_[global_index].arrivalCycle,
                 static_cast<int>(global_index));
}

NodeView
ClusterNode::view()
{
    NodeView view;
    view.id = id_;
    // injected - completed counts resident *and* still-queued jobs --
    // exactly the load a new arrival will contend with.
    view.poolSize = static_cast<int>(run_->injected() -
                                     run_->completed());
    view.queuedWork = run_->remainingInstructions();
    view.signature = run_->takeRecentCounters();
    return view;
}

} // namespace sos
