/**
 * @file
 * Cluster arrival traces: large deterministic job streams.
 *
 * The single-machine open system (sim/open_system.hh) draws Poisson
 * arrivals sized for one machine. A cluster front door sees orders of
 * magnitude more jobs and less well-behaved processes, so this module
 * generalizes trace generation along three axes:
 *
 *  - process: "poisson" (memoryless, the paper's model), "mmpp" (a
 *    two-state Markov-modulated Poisson process alternating bursts
 *    and lulls), and "diurnal" (sinusoidal rate modulation, the
 *    day/night load swing of a shared cluster);
 *  - classes: optional priority/SLA classes drawn by weight, each
 *    scaling the mean job length (interactive jobs are short, batch
 *    jobs long) -- response-time percentiles are reported per class;
 *  - scale: traces of 10^5..10^6 arrivals are routine, so arrivals
 *    are plain value structs and generation is a single pass.
 *
 * Determinism: a trace is a pure function of (SimConfig, ArrivalSpec).
 * The generator owns a private RNG stream seeded from the spec alone;
 * two calls with equal inputs return equal traces, byte for byte
 * (test-pinned), which is what lets every dispatch policy and worker
 * count replay the identical job stream.
 */

#ifndef SOS_CLUSTER_ARRIVAL_HH
#define SOS_CLUSTER_ARRIVAL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_config.hh"

namespace sos {

/** One job at the cluster front door. */
struct ClusterArrival
{
    std::string workload;               ///< Table 1 application name
    std::uint64_t arrivalCycle = 0;     ///< simulated cycles
    std::uint64_t sizeInstructions = 0; ///< retire this many to finish
    int klass = 0;                      ///< index into the class list

    bool operator==(const ClusterArrival &) const = default;
};

/** One priority/SLA class of the arrival mix. */
struct ArrivalClass
{
    std::string name;
    double weight = 1.0;     ///< relative draw probability
    double sizeFactor = 1.0; ///< scales the mean job length
};

/** The single implicit class of an unclassed arrival spec. */
ArrivalClass defaultArrivalClass();

/** Parameters of one cluster arrival trace. */
struct ArrivalSpec
{
    /** "poisson", "mmpp" or "diurnal" (see processNames()). */
    std::string process = "poisson";

    /** Arrivals to generate. */
    int numJobs = 1000;

    /** Mean interarrival time in simulated cycles (all processes). */
    double meanInterarrivalCycles = 0.0;

    /** Mean job length in simulated solo cycles (before sizeFactor). */
    double meanJobCycles = 0.0;

    /** SMT level sizing the solo-IPC reference (Calibrator). */
    int level = 3;

    /** Empty = one implicit class (defaultArrivalClass()). */
    std::vector<ArrivalClass> classes;

    std::uint64_t seed = 0;

    /** @name MMPP shape (burst state arrives this much faster) @{ */
    double burstRateFactor = 4.0;
    /** Fraction of time spent in the burst state. */
    double burstFraction = 0.25;
    /** Mean burst sojourn, in units of the mean interarrival. @{ */
    double burstLengthArrivals = 16.0;
    /** @} */

    /** @name Diurnal shape @{ */
    /** Peak-to-mean rate swing in [0, 1). */
    double diurnalAmplitude = 0.5;
    /** Modulation period, in units of the mean interarrival. */
    double diurnalPeriodArrivals = 256.0;
    /** @} */
};

/** Registered arrival-process names. */
const std::vector<std::string> &arrivalProcessNames();

/**
 * Generate the deterministic arrival trace the whole cluster replays.
 * Arrival cycles are nondecreasing; job sizes are drawn exponentially
 * around meanJobCycles x the class sizeFactor (clamped like the
 * single-machine trace) and converted to instructions through the
 * memoized solo-IPC calibration of @p sim's reference core.
 */
std::vector<ClusterArrival> makeClusterArrivals(const SimConfig &sim,
                                                const ArrivalSpec &spec);

/** The effective class list: spec.classes or the implicit default. */
std::vector<ArrivalClass> effectiveClasses(const ArrivalSpec &spec);

} // namespace sos

#endif // SOS_CLUSTER_ARRIVAL_HH

