#include "model/trainer.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace sos::model {

namespace {

constexpr const char *kFeaturePrefix = "feat_";

/** Average-rank vector of @p values (ties share their mean rank). */
std::vector<double>
averageRanks(const std::vector<double> &values)
{
    const std::size_t n = values.size();
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::stable_sort(order.begin(), order.end(),
                     [&values](std::size_t a, std::size_t b) {
                         return values[a] < values[b];
                     });
    std::vector<double> ranks(n, 0.0);
    std::size_t i = 0;
    while (i < n) {
        std::size_t j = i;
        while (j + 1 < n && values[order[j + 1]] == values[order[i]])
            ++j;
        const double rank =
            (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
        for (std::size_t k = i; k <= j; ++k)
            ranks[order[k]] = rank;
        i = j + 1;
    }
    return ranks;
}

double
pearson(const std::vector<double> &a, const std::vector<double> &b)
{
    const double n = static_cast<double>(a.size());
    if (a.size() < 2)
        return 0.0;
    double mean_a = 0.0, mean_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        mean_a += a[i];
        mean_b += b[i];
    }
    mean_a /= n;
    mean_b /= n;
    double cov = 0.0, var_a = 0.0, var_b = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - mean_a;
        const double db = b[i] - mean_b;
        cov += da * db;
        var_a += da * da;
        var_b += db * db;
    }
    if (var_a <= 0.0 || var_b <= 0.0)
        return 0.0;
    return cov / std::sqrt(var_a * var_b);
}

/** Training-set quantile of per-row model uncertainty. */
double
uncertaintyQuantile(const WsModel &model, const std::vector<TrainRow> &rows,
                    double quantile)
{
    if (rows.empty())
        return 0.0;
    std::vector<double> values;
    values.reserve(rows.size());
    for (const TrainRow &row : rows)
        values.push_back(model.uncertainty(row.features));
    std::sort(values.begin(), values.end());
    const double clamped = std::min(1.0, std::max(0.0, quantile));
    const auto index = static_cast<std::size_t>(
        clamped * static_cast<double>(values.size() - 1));
    return values[index];
}

/**
 * Solve the symmetric system A x = b with partial-pivot Gaussian
 * elimination (A is small: one row/column per feature).
 */
std::vector<double>
solveLinearSystem(std::vector<std::vector<double>> a, std::vector<double> b)
{
    const std::size_t d = b.size();
    for (std::size_t col = 0; col < d; ++col) {
        std::size_t pivot = col;
        for (std::size_t row = col + 1; row < d; ++row) {
            if (std::abs(a[row][col]) > std::abs(a[pivot][col]))
                pivot = row;
        }
        std::swap(a[col], a[pivot]);
        std::swap(b[col], b[pivot]);
        const double diag = a[col][col];
        if (diag == 0.0)
            continue; // the ridge term keeps this from happening
        for (std::size_t row = col + 1; row < d; ++row) {
            const double factor = a[row][col] / diag;
            if (factor == 0.0)
                continue;
            for (std::size_t k = col; k < d; ++k)
                a[row][k] -= factor * a[col][k];
            b[row] -= factor * b[col];
        }
    }
    std::vector<double> x(d, 0.0);
    for (std::size_t col = d; col-- > 0;) {
        double sum = b[col];
        for (std::size_t k = col + 1; k < d; ++k)
            sum -= a[col][k] * x[k];
        x[col] = a[col][col] != 0.0 ? sum / a[col][col] : 0.0;
    }
    return x;
}

/** Recursive CART builder over row indices. */
class TreeBuilder
{
  public:
    TreeBuilder(const std::vector<TrainRow> &rows, const FitOptions &options)
        : rows_(rows), options_(options)
    {
    }

    std::vector<RegressionTree::Node>
    build()
    {
        std::vector<std::size_t> all(rows_.size());
        std::iota(all.begin(), all.end(), std::size_t{0});
        grow(all, 0);
        return std::move(nodes_);
    }

  private:
    struct Moments
    {
        double mean = 0.0;
        double stddev = 0.0;
        double sse = 0.0;
    };

    Moments
    moments(const std::vector<std::size_t> &members) const
    {
        Moments m;
        if (members.empty())
            return m;
        for (const std::size_t i : members)
            m.mean += rows_[i].ws;
        m.mean /= static_cast<double>(members.size());
        for (const std::size_t i : members) {
            const double d = rows_[i].ws - m.mean;
            m.sse += d * d;
        }
        m.stddev = std::sqrt(m.sse / static_cast<double>(members.size()));
        return m;
    }

    int
    grow(const std::vector<std::size_t> &members, int depth)
    {
        const int self = static_cast<int>(nodes_.size());
        nodes_.emplace_back();
        const Moments m = moments(members);

        int best_feature = -1;
        double best_threshold = 0.0;
        double best_sse = m.sse - 1e-12;
        std::vector<std::size_t> best_left, best_right;

        const std::size_t min_leaf =
            static_cast<std::size_t>(std::max(1, options_.minLeaf));
        const bool splittable = depth < options_.maxDepth &&
                                members.size() >= 2 * min_leaf &&
                                m.sse > 0.0;
        if (splittable) {
            const std::size_t nfeat = rows_[members[0]].features.size();
            std::vector<std::size_t> order = members;
            for (std::size_t f = 0; f < nfeat; ++f) {
                std::stable_sort(
                    order.begin(), order.end(),
                    [this, f](std::size_t a, std::size_t b) {
                        return rows_[a].features[f] < rows_[b].features[f];
                    });
                // Prefix sums let every boundary be scored in O(1).
                double left_sum = 0.0, left_sq = 0.0;
                double total_sum = 0.0, total_sq = 0.0;
                for (const std::size_t i : order) {
                    total_sum += rows_[i].ws;
                    total_sq += rows_[i].ws * rows_[i].ws;
                }
                for (std::size_t cut = 0; cut + 1 < order.size(); ++cut) {
                    const double y = rows_[order[cut]].ws;
                    left_sum += y;
                    left_sq += y * y;
                    const double lo = rows_[order[cut]].features[f];
                    const double hi = rows_[order[cut + 1]].features[f];
                    if (lo == hi)
                        continue; // no threshold separates equal values
                    const std::size_t nl = cut + 1;
                    const std::size_t nr = order.size() - nl;
                    if (nl < min_leaf || nr < min_leaf)
                        continue;
                    const double right_sum = total_sum - left_sum;
                    const double right_sq = total_sq - left_sq;
                    const double sse_l =
                        left_sq - left_sum * left_sum /
                                      static_cast<double>(nl);
                    const double sse_r =
                        right_sq - right_sum * right_sum /
                                       static_cast<double>(nr);
                    const double sse = sse_l + sse_r;
                    if (sse < best_sse) {
                        best_sse = sse;
                        best_feature = static_cast<int>(f);
                        best_threshold = (lo + hi) / 2.0;
                    }
                }
            }
        }

        if (best_feature < 0) {
            RegressionTree::Node &leaf =
                nodes_[static_cast<std::size_t>(self)];
            leaf.feature = -1;
            leaf.mean = m.mean;
            leaf.stddev = m.stddev;
            leaf.count = static_cast<int>(members.size());
            return self;
        }

        std::vector<std::size_t> left, right;
        for (const std::size_t i : members) {
            const auto f = static_cast<std::size_t>(best_feature);
            if (rows_[i].features[f] <= best_threshold)
                left.push_back(i);
            else
                right.push_back(i);
        }
        const int left_node = grow(left, depth + 1);
        const int right_node = grow(right, depth + 1);
        RegressionTree::Node &node = nodes_[static_cast<std::size_t>(self)];
        node.feature = best_feature;
        node.threshold = best_threshold;
        node.left = left_node;
        node.right = right_node;
        return self;
    }

    const std::vector<TrainRow> &rows_;
    const FitOptions &options_;
    std::vector<RegressionTree::Node> nodes_;
};

/**
 * FitOptions::contrast applied: each row's target becomes
 * ws + contrast * (ws - mean ws of its experiment). Per-experiment
 * means are unchanged, so cross-mix levels survive; within-mix
 * deviations -- the part the argmax depends on -- are amplified.
 */
std::vector<TrainRow>
amplifyContrast(const std::vector<TrainRow> &rows, double contrast)
{
    if (contrast == 0.0)
        return rows;
    std::map<std::string, std::pair<double, int>> totals;
    for (const TrainRow &row : rows) {
        totals[row.experiment].first += row.ws;
        totals[row.experiment].second += 1;
    }
    std::vector<TrainRow> out = rows;
    for (TrainRow &row : out) {
        const auto &[sum, count] = totals[row.experiment];
        const double mean = sum / static_cast<double>(count);
        row.ws += contrast * (row.ws - mean);
    }
    return out;
}

} // namespace

Dataset
datasetFromTrace(const std::vector<stats::TraceEvent> &events)
{
    Dataset dataset;
    std::map<std::pair<std::string, int>, double> realized;
    for (const stats::TraceEvent &event : events) {
        if (event.type != "symbios_result")
            continue;
        const std::pair<std::string, int> key(
            event.text("experiment"),
            static_cast<int>(event.number("index")));
        realized[key] = event.number("ws");
    }

    for (const stats::TraceEvent &event : events) {
        if (event.type != "sample_candidate")
            continue;
        std::vector<std::string> names;
        FeatureVector features;
        for (const stats::TraceEvent::Field &field : event.fields) {
            if (field.name.rfind(kFeaturePrefix, 0) != 0)
                continue;
            names.push_back(field.name.substr(
                std::string(kFeaturePrefix).size()));
            features.push_back(field.isString ? 0.0 : field.number);
        }
        if (names.empty()) {
            // e.g. the hierarchical driver's allocation candidates.
            ++dataset.skippedNoFeatures;
            continue;
        }
        const auto version =
            static_cast<int>(event.number("features_version"));
        if (version != kFeatureSchemaVersion) {
            throw ModelError(
                "trace line " + std::to_string(event.line) +
                ": features_version " + std::to_string(version) +
                " does not match this build's feature schema " +
                std::to_string(kFeatureSchemaVersion));
        }
        if (dataset.featureNames.empty()) {
            dataset.featureNames = names;
        } else if (dataset.featureNames != names) {
            throw ModelError("trace line " + std::to_string(event.line) +
                             ": sample_candidate feature set differs from "
                             "earlier events in the same trace");
        }

        TrainRow row;
        row.experiment = event.text("experiment");
        row.index = static_cast<int>(event.number("index"));
        row.features = std::move(features);
        row.sampleWs = event.number("sample_ws");
        const auto it = realized.find({row.experiment, row.index});
        if (it == realized.end()) {
            ++dataset.skippedNoResult;
            continue;
        }
        row.ws = it->second;
        dataset.rows.push_back(std::move(row));
    }
    return dataset;
}

void
splitDataset(const std::vector<TrainRow> &rows, int holdout_stride,
             std::vector<TrainRow> &train, std::vector<TrainRow> &holdout)
{
    train.clear();
    holdout.clear();
    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (holdout_stride > 1 &&
            (i + 1) % static_cast<std::size_t>(holdout_stride) == 0) {
            holdout.push_back(rows[i]);
        } else {
            train.push_back(rows[i]);
        }
    }
}

std::unique_ptr<LinearModel>
fitLinearModel(const std::vector<std::string> &feature_names,
               const std::vector<TrainRow> &raw_rows,
               const FitOptions &options)
{
    const std::vector<TrainRow> rows =
        amplifyContrast(raw_rows, options.contrast);
    const std::size_t d = feature_names.size();
    const std::size_t n = rows.size();
    auto model = std::make_unique<LinearModel>();
    model->setFeatureNames(feature_names);
    model->mean.assign(d, 0.0);
    model->stddev.assign(d, 0.0);
    model->weights.assign(d, 0.0);
    if (n == 0)
        return model;

    for (const TrainRow &row : rows) {
        for (std::size_t f = 0; f < d; ++f)
            model->mean[f] += row.features[f];
    }
    for (std::size_t f = 0; f < d; ++f)
        model->mean[f] /= static_cast<double>(n);
    for (const TrainRow &row : rows) {
        for (std::size_t f = 0; f < d; ++f) {
            const double dv = row.features[f] - model->mean[f];
            model->stddev[f] += dv * dv;
        }
    }
    for (std::size_t f = 0; f < d; ++f)
        model->stddev[f] = std::sqrt(model->stddev[f] /
                                     static_cast<double>(n));

    double mean_y = 0.0;
    for (const TrainRow &row : rows)
        mean_y += row.ws;
    mean_y /= static_cast<double>(n);
    model->bias = mean_y;

    // Z-scored design matrix; normal equations with a ridge term.
    const auto z = [&model](const TrainRow &row, std::size_t f) {
        const double sd = model->stddev[f] > 0.0 ? model->stddev[f] : 1.0;
        return (row.features[f] - model->mean[f]) / sd;
    };
    std::vector<std::vector<double>> a(d, std::vector<double>(d, 0.0));
    std::vector<double> b(d, 0.0);
    for (const TrainRow &row : rows) {
        for (std::size_t i = 0; i < d; ++i) {
            const double zi = z(row, i);
            b[i] += zi * (row.ws - mean_y);
            for (std::size_t j = i; j < d; ++j)
                a[i][j] += zi * z(row, j);
        }
    }
    for (std::size_t i = 0; i < d; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            a[i][j] = a[j][i];
        a[i][i] += options.ridge * static_cast<double>(n);
    }
    model->weights = solveLinearSystem(std::move(a), std::move(b));

    double sse = 0.0;
    for (const TrainRow &row : rows) {
        const double err = model->predict(row.features) - row.ws;
        sse += err * err;
    }
    model->residualStd = std::sqrt(sse / static_cast<double>(n));
    model->setUncertaintyThreshold(uncertaintyQuantile(
        *model, rows, options.uncertaintyQuantile));
    return model;
}

std::unique_ptr<RegressionTree>
fitRegressionTree(const std::vector<std::string> &feature_names,
                  const std::vector<TrainRow> &raw_rows,
                  const FitOptions &options)
{
    const std::vector<TrainRow> rows =
        amplifyContrast(raw_rows, options.contrast);
    auto model = std::make_unique<RegressionTree>();
    model->setFeatureNames(feature_names);
    if (rows.empty()) {
        model->nodes.push_back(RegressionTree::Node{});
        return model;
    }
    TreeBuilder builder(rows, options);
    model->nodes = builder.build();
    model->setUncertaintyThreshold(uncertaintyQuantile(
        *model, rows, options.uncertaintyQuantile));
    return model;
}

double
meanAbsoluteError(const WsModel &model, const std::vector<TrainRow> &rows)
{
    if (rows.empty())
        return 0.0;
    double sum = 0.0;
    for (const TrainRow &row : rows)
        sum += std::abs(model.predict(row.features) - row.ws);
    return sum / static_cast<double>(rows.size());
}

double
rankCorrelation(const WsModel &model, const std::vector<TrainRow> &rows)
{
    if (rows.size() < 2)
        return 0.0;
    std::vector<double> predicted;
    std::vector<double> actual;
    predicted.reserve(rows.size());
    actual.reserve(rows.size());
    for (const TrainRow &row : rows) {
        predicted.push_back(model.predict(row.features));
        actual.push_back(row.ws);
    }
    return pearson(averageRanks(predicted), averageRanks(actual));
}

} // namespace sos::model
