#include "model/features.hh"

#include <algorithm>
#include <cmath>

namespace sos::model {

ProfileSignature profileSignature(const ScheduleProfile &profile)
{
    ProfileSignature sig;
    sig.ipc = profile.counters.ipc();
    sig.allConflictPct = profile.counters.allConflictPct();
    sig.l1dHitRate = profile.counters.l1dHitRate();
    sig.fqConflictPct = profile.counters.conflictPct(profile.counters.confFpQueue);
    sig.fpConflictPct = profile.counters.conflictPct(profile.counters.confFpUnits);
    sig.sum2ConflictPct = sig.fqConflictPct + sig.fpConflictPct;
    sig.mixImbalance = profile.counters.mixImbalance();
    sig.balance = profile.balance();
    sig.sliceDiversity = profile.diversity();
    return sig;
}

double normalizedWorkingSet(std::uint64_t working_set_bytes)
{
    return std::min(1.0, static_cast<double>(working_set_bytes) / 65536.0);
}

double counterFpShare(const PerfCounters &counters)
{
    const double arith =
        static_cast<double>(counters.intOps) + static_cast<double>(counters.fpOps);
    if (arith <= 0.0)
        return 0.0;
    return static_cast<double>(counters.fpOps) / arith;
}

ThreadSignature makeThreadSignature(int job_id,
                                    const WorkloadProfile &profile,
                                    double solo_ipc)
{
    ThreadSignature sig;
    sig.jobId = job_id;
    sig.soloIpc = solo_ipc;
    sig.fp = profile.fpFraction();
    sig.load = profile.fracLoad;
    sig.store = profile.fracStore;
    sig.workingSet = normalizedWorkingSet(profile.workingSetBytes);
    sig.stream = profile.streamFraction;
    sig.chase = profile.chaseFraction;
    sig.ilp = std::min(1.0, profile.avgDepDistance / 16.0);
    sig.branchRate =
        profile.avgBasicBlock > 0 ? 1.0 / static_cast<double>(profile.avgBasicBlock) : 0.0;
    sig.branchPredictability = profile.branchPredictability;
    sig.code = std::min(1.0, static_cast<double>(profile.codeBytes) / 65536.0);
    sig.syncs = profile.syncInterval > 0;
    return sig;
}

ThreadSignature signatureFromCounters(const PerfCounters &counters)
{
    ThreadSignature sig;
    sig.soloIpc = counters.ipc();
    sig.fp = counterFpShare(counters);
    const double retired = static_cast<double>(counters.retired);
    if (retired > 0.0) {
        sig.load = static_cast<double>(counters.loads) / retired;
        sig.store = static_cast<double>(counters.stores) / retired;
        sig.branchRate = static_cast<double>(counters.branches) / retired;
    }
    // Counters cannot see the static footprint; L1D pressure is the
    // closest observable stand-in for a large working set.
    sig.workingSet = 1.0 - counters.l1dHitRate();
    const double branches = static_cast<double>(counters.branches);
    if (branches > 0.0) {
        sig.branchPredictability =
            1.0 - static_cast<double>(counters.branchMispredicts) / branches;
    }
    return sig;
}

namespace {

const std::vector<std::string> kFeatureNames = {
    "units",          // schedulable units in the mix
    "tuple_size",     // mean coscheduled-tuple cardinality
    "solo_mean",      // mean over tuples of mean member solo IPC
    "solo_min",       // mean over tuples of min member solo IPC
    "solo_spread",    // mean over tuples of (max - min) solo IPC
    "solo_balance",   // stddev over tuples of tuple-mean solo IPC
    "fp_mean",        // mean over tuples of mean member FP fraction
    "fp_imbalance",   // mean over tuples of |2*fp_mean - 1|
    "fp_spread",      // mean over tuples of mean pairwise |fp_i - fp_j|
    "mem_mean",       // mean over tuples of mean (load + store) fraction
    "ws_pressure",    // mean over tuples of summed working-set norm
    "ws_overlap",     // mean over tuples of mean pairwise min(ws_i, ws_j)
    "stream_mean",    // mean over tuples of mean streaming fraction
    "chase_mean",     // mean over tuples of mean pointer-chase fraction
    "ilp_mean",       // mean over tuples of mean ILP norm
    "branch_payload", // mean over tuples of mean branch*(1-predictability)
    "code_pressure",  // mean over tuples of summed code-footprint norm
    "sibling_pairs",  // mean over tuples of same-job pair fraction
    "sync_pairs",     // mean over tuples of syncing-sibling pair fraction
};

} // namespace

const std::vector<std::string> &featureNames() { return kFeatureNames; }

std::size_t numFeatures() { return kFeatureNames.size(); }

FeatureVector
composeScheduleFeatures(const std::vector<ThreadSignature> &signatures,
                        const std::vector<std::vector<int>> &tuples)
{
    FeatureVector out(kFeatureNames.size(), 0.0);
    out[0] = static_cast<double>(signatures.size());
    if (tuples.empty())
        return out;

    double sum_size = 0.0;
    double sum_solo_mean = 0.0;
    double sum_solo_sq = 0.0;
    double sum_solo_min = 0.0;
    double sum_solo_spread = 0.0;
    double sum_fp_mean = 0.0;
    double sum_fp_imbalance = 0.0;
    double sum_fp_spread = 0.0;
    double sum_mem = 0.0;
    double sum_ws_pressure = 0.0;
    double sum_ws_overlap = 0.0;
    double sum_stream = 0.0;
    double sum_chase = 0.0;
    double sum_ilp = 0.0;
    double sum_branch = 0.0;
    double sum_code = 0.0;
    double sum_sibling = 0.0;
    double sum_sync = 0.0;

    for (const std::vector<int> &tuple : tuples) {
        if (tuple.empty())
            continue;
        const double size = static_cast<double>(tuple.size());
        sum_size += size;

        double solo = 0.0;
        double solo_min = 0.0;
        double solo_max = 0.0;
        double fp = 0.0;
        double mem = 0.0;
        double ws_sum = 0.0;
        double stream = 0.0;
        double chase = 0.0;
        double ilp = 0.0;
        double branch = 0.0;
        double code = 0.0;
        bool first = true;
        for (int unit : tuple) {
            const ThreadSignature &sig = signatures[static_cast<std::size_t>(unit)];
            solo += sig.soloIpc;
            if (first || sig.soloIpc < solo_min)
                solo_min = sig.soloIpc;
            if (first || sig.soloIpc > solo_max)
                solo_max = sig.soloIpc;
            first = false;
            fp += sig.fp;
            mem += sig.load + sig.store;
            ws_sum += sig.workingSet;
            stream += sig.stream;
            chase += sig.chase;
            ilp += sig.ilp;
            branch += sig.branchRate * (1.0 - sig.branchPredictability);
            code += sig.code;
        }
        const double tuple_solo_mean = solo / size;
        const double tuple_fp_mean = fp / size;
        sum_solo_mean += tuple_solo_mean;
        sum_solo_sq += tuple_solo_mean * tuple_solo_mean;
        sum_solo_min += solo_min;
        sum_solo_spread += solo_max - solo_min;
        sum_fp_mean += tuple_fp_mean;
        sum_fp_imbalance += std::abs(2.0 * tuple_fp_mean - 1.0);
        sum_mem += mem / size;
        sum_ws_pressure += ws_sum;
        sum_stream += stream / size;
        sum_chase += chase / size;
        sum_ilp += ilp / size;
        sum_branch += branch / size;
        sum_code += code;

        // Pairwise interaction terms; singleton tuples contribute 0.
        double fp_spread = 0.0;
        double ws_overlap = 0.0;
        double sibling = 0.0;
        double sync = 0.0;
        int pairs = 0;
        for (std::size_t a = 0; a + 1 < tuple.size(); ++a) {
            const ThreadSignature &sa = signatures[static_cast<std::size_t>(tuple[a])];
            for (std::size_t b = a + 1; b < tuple.size(); ++b) {
                const ThreadSignature &sb =
                    signatures[static_cast<std::size_t>(tuple[b])];
                fp_spread += std::abs(sa.fp - sb.fp);
                ws_overlap += std::min(sa.workingSet, sb.workingSet);
                const bool same_job =
                    sa.jobId >= 0 && sa.jobId == sb.jobId;
                if (same_job)
                    sibling += 1.0;
                if (same_job && sa.syncs && sb.syncs)
                    sync += 1.0;
                ++pairs;
            }
        }
        if (pairs > 0) {
            const double denom = static_cast<double>(pairs);
            sum_fp_spread += fp_spread / denom;
            sum_ws_overlap += ws_overlap / denom;
            sum_sibling += sibling / denom;
            sum_sync += sync / denom;
        }
    }

    const double n = static_cast<double>(tuples.size());
    out[1] = sum_size / n;
    out[2] = sum_solo_mean / n;
    out[3] = sum_solo_min / n;
    out[4] = sum_solo_spread / n;
    const double mean_solo = sum_solo_mean / n;
    const double var = std::max(0.0, sum_solo_sq / n - mean_solo * mean_solo);
    out[5] = std::sqrt(var);
    out[6] = sum_fp_mean / n;
    out[7] = sum_fp_imbalance / n;
    out[8] = sum_fp_spread / n;
    out[9] = sum_mem / n;
    out[10] = sum_ws_pressure / n;
    out[11] = sum_ws_overlap / n;
    out[12] = sum_stream / n;
    out[13] = sum_chase / n;
    out[14] = sum_ilp / n;
    out[15] = sum_branch / n;
    out[16] = sum_code / n;
    out[17] = sum_sibling / n;
    out[18] = sum_sync / n;
    return out;
}

FeatureVector
composeTupleFeatures(const std::vector<ThreadSignature> &signatures)
{
    std::vector<int> tuple(signatures.size());
    for (std::size_t i = 0; i < signatures.size(); ++i)
        tuple[i] = static_cast<int>(i);
    return composeScheduleFeatures(signatures, {tuple});
}

PairAffinity::PairAffinity(std::size_t num_units)
    : n_(num_units), sum_(num_units * num_units, 0.0),
      count_(num_units * num_units, 0)
{
}

void PairAffinity::observe(const std::vector<int> &tuple, double ws)
{
    for (std::size_t a = 0; a < tuple.size(); ++a) {
        for (std::size_t b = a + 1; b < tuple.size(); ++b) {
            const std::size_t i = static_cast<std::size_t>(tuple[a]);
            const std::size_t j = static_cast<std::size_t>(tuple[b]);
            sum_[i * n_ + j] += ws;
            sum_[j * n_ + i] += ws;
            ++count_[i * n_ + j];
            ++count_[j * n_ + i];
        }
    }
}

double PairAffinity::mean(std::size_t a, std::size_t b) const
{
    const std::size_t idx = a * n_ + b;
    return count_[idx] > 0 ? sum_[idx] / count_[idx] : 0.0;
}

} // namespace sos::model
