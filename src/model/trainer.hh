/**
 * @file
 * Offline fitting of WS models from JSONL decision traces.
 *
 * The batch drivers record one `sample_candidate` event per profiled
 * schedule (carrying the composed feature vector, feat_* fields) and
 * one `symbios_result` event per candidate from the full-length
 * validation sweep (carrying the realized WS). Joining the two on
 * (experiment, index) yields exactly the supervised dataset the
 * ROADMAP's learned-predictor item calls for: static signature
 * features -> realized weighted speedup.
 *
 * Everything here is deterministic: rows keep trace order, the
 * held-out split takes every Nth row, ridge systems are solved with
 * partial-pivot Gaussian elimination, and CART split search visits
 * features and thresholds in fixed order (first strict improvement
 * wins). Fitting the same trace twice produces byte-identical model
 * files.
 */

#ifndef SOS_MODEL_TRAINER_HH
#define SOS_MODEL_TRAINER_HH

#include <memory>
#include <string>
#include <vector>

#include "model/features.hh"
#include "model/model.hh"
#include "stats/trace_reader.hh"

namespace sos::model {

/** One training row: features, realized WS, and its provenance. */
struct TrainRow
{
    FeatureVector features;
    double ws = 0.0;          ///< realized WS (symbios validation)
    double sampleWs = 0.0;    ///< sample-phase WS estimate
    std::string experiment;   ///< source mix label
    int index = 0;            ///< candidate index within the experiment
};

/** The joined dataset plus bookkeeping about what the join skipped. */
struct Dataset
{
    std::vector<std::string> featureNames;
    std::vector<TrainRow> rows;

    /** sample_candidate events without feature fields (e.g. the
     * hierarchical driver's allocation candidates). */
    int skippedNoFeatures = 0;
    /** sample_candidate events with features but no symbios_result. */
    int skippedNoResult = 0;
};

/**
 * Join sample_candidate features with symbios_result WS. Throws
 * ModelError when a features_version field does not match this
 * build's kFeatureSchemaVersion, or when feature-carrying events
 * disagree on the feature set.
 */
Dataset datasetFromTrace(const std::vector<stats::TraceEvent> &events);

/**
 * Split @p rows into train/holdout: every @p holdout_stride-th row
 * (1-based) is held out. A stride of 0 or 1 holds out nothing.
 */
void splitDataset(const std::vector<TrainRow> &rows, int holdout_stride,
                  std::vector<TrainRow> &train,
                  std::vector<TrainRow> &holdout);

/** Knobs for the two fitters. */
struct FitOptions
{
    double ridge = 1e-3;          ///< per-row ridge strength (linear)
    int maxDepth = 4;             ///< split depth cap (tree)
    int minLeaf = 3;              ///< min rows per leaf (tree)
    double uncertaintyQuantile = 0.9; ///< training quantile stored as
                                      ///< the screening threshold

    /**
     * Within-mix contrast amplification: fit against
     * ws + contrast * (ws - mean ws of the row's experiment) instead
     * of raw ws. A predictor is judged by its within-mix argmax, not
     * by absolute accuracy; amplifying the within-mix deviations
     * makes the least-squares objective weight exactly that, while
     * keeping cross-mix levels (so pooled rank metrics stay
     * meaningful). 0 restores plain least squares on raw WS.
     */
    double contrast = 1.0;
};

/** Ridge regression over z-scored features. */
std::unique_ptr<LinearModel>
fitLinearModel(const std::vector<std::string> &feature_names,
               const std::vector<TrainRow> &rows, const FitOptions &options);

/** Depth-capped CART by variance reduction. */
std::unique_ptr<RegressionTree>
fitRegressionTree(const std::vector<std::string> &feature_names,
                  const std::vector<TrainRow> &rows,
                  const FitOptions &options);

/** Mean absolute prediction error over @p rows (0 when empty). */
double meanAbsoluteError(const WsModel &model,
                         const std::vector<TrainRow> &rows);

/**
 * Spearman rank correlation between predictions and realized WS over
 * @p rows (average ranks on ties; 0 when degenerate). Rank quality is
 * what matters to a predictor: the schedule picked is the argmax.
 */
double rankCorrelation(const WsModel &model,
                       const std::vector<TrainRow> &rows);

} // namespace sos::model

#endif // SOS_MODEL_TRAINER_HH
